package diffserve

import (
	"bytes"
	"fmt"
	"os"
	"testing"
)

// TestServeMatchesPreRefactorGolden locks the end-to-end Serve summary
// and timeline to the values the pre-streaming-metrics implementation
// produced at the same seed (testdata/serve_seed5.golden). The
// streaming-moments pipeline, memoized generation, and timeline
// re-bucketing must not change any reported number at the precision
// the figures use.
func TestServeMatchesPreRefactorGolden(t *testing.T) {
	want, err := os.ReadFile("testdata/serve_seed5.golden")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Serve(Config{
		Cascade: "cascade1", Approach: DiffServe,
		Workers: 16, TraceMinQPS: 4, TraceMaxQPS: 24,
		TraceDurationSeconds: 60, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	fmt.Fprintf(&got, "queries %d\n", rep.Queries)
	fmt.Fprintf(&got, "fid %.6f\n", rep.FID)
	fmt.Fprintf(&got, "violation %.6f\n", rep.SLOViolationRatio)
	fmt.Fprintf(&got, "drop %.6f\n", rep.DropRatio)
	fmt.Fprintf(&got, "defer %.6f\n", rep.DeferRatio)
	fmt.Fprintf(&got, "meanlat %.6f\n", rep.MeanLatency)
	fmt.Fprintf(&got, "p99lat %.6f\n", rep.P99Latency)
	fmt.Fprintf(&got, "timeline %d\n", len(rep.Timeline))
	for _, p := range rep.Timeline {
		fmt.Fprintf(&got, "bucket %.0f %.4f %.4f %.4f %.4f\n", p.StartSeconds, p.DemandQPS, p.FID, p.ViolationRatio, p.DeferRatio)
	}
	if got.String() != string(want) {
		t.Errorf("Serve summary diverged from pre-refactor golden.\ngot:\n%s\nwant:\n%s", got.String(), want)
	}
}
