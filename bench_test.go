package diffserve

// The benchmark harness regenerates every table and figure of the
// paper's evaluation (run with `go test -bench=. -benchmem`). Each
// benchmark executes the corresponding experiment end to end at
// reduced ("Short") sizes so the whole suite completes in minutes;
// run cmd/diffserve-sim with full sizes to reproduce the numbers in
// EXPERIMENTS.md.

import (
	"fmt"
	"io"
	"testing"

	"diffserve/internal/allocator"
	"diffserve/internal/baselines"
	"diffserve/internal/cascade"
	"diffserve/internal/discriminator"
	"diffserve/internal/experiments"
	"diffserve/internal/fid"
	"diffserve/internal/imagespace"
	"diffserve/internal/model"
	"diffserve/internal/stats"
)

func benchCfg() experiments.Config {
	return experiments.Config{Seed: 20250610, Short: true}
}

func runRenderable(b *testing.B, run func(experiments.Config) (interface{ Render(io.Writer) }, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := run(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		res.Render(io.Discard)
	}
}

// BenchmarkFig1a regenerates Figure 1a (scorer quality-latency curves).
func BenchmarkFig1a(b *testing.B) {
	runRenderable(b, func(c experiments.Config) (interface{ Render(io.Writer) }, error) {
		return experiments.Fig1a(c)
	})
}

// BenchmarkFig1b regenerates Figure 1b (quality-difference CDFs).
func BenchmarkFig1b(b *testing.B) {
	runRenderable(b, func(c experiments.Config) (interface{ Render(io.Writer) }, error) {
		return experiments.Fig1b(c)
	})
}

// BenchmarkFig1c regenerates Figure 1c (configuration Pareto frontier).
func BenchmarkFig1c(b *testing.B) {
	runRenderable(b, func(c experiments.Config) (interface{ Render(io.Writer) }, error) {
		return experiments.Fig1c(c)
	})
}

// BenchmarkFig4 regenerates Figure 4 (static traces, three loads).
func BenchmarkFig4(b *testing.B) {
	runRenderable(b, func(c experiments.Config) (interface{ Render(io.Writer) }, error) {
		return experiments.Fig4(c)
	})
}

// BenchmarkFig5 regenerates Figure 5 (dynamic-trace timeline).
func BenchmarkFig5(b *testing.B) {
	runRenderable(b, func(c experiments.Config) (interface{ Render(io.Writer) }, error) {
		return experiments.Fig5(c)
	})
}

// BenchmarkFig6 regenerates Figure 6 (cascades 2 and 3).
func BenchmarkFig6(b *testing.B) {
	runRenderable(b, func(c experiments.Config) (interface{ Render(io.Writer) }, error) {
		return experiments.Fig6(c)
	})
}

// BenchmarkFig7 regenerates Figure 7 (discriminator ablation).
func BenchmarkFig7(b *testing.B) {
	runRenderable(b, func(c experiments.Config) (interface{ Render(io.Writer) }, error) {
		return experiments.Fig7(c)
	})
}

// BenchmarkFig8 regenerates Figure 8 (allocator ablation).
func BenchmarkFig8(b *testing.B) {
	runRenderable(b, func(c experiments.Config) (interface{ Render(io.Writer) }, error) {
		return experiments.Fig8(c)
	})
}

// BenchmarkFig9 regenerates Figure 9 (SLO sensitivity).
func BenchmarkFig9(b *testing.B) {
	runRenderable(b, func(c experiments.Config) (interface{ Render(io.Writer) }, error) {
		return experiments.Fig9(c)
	})
}

// BenchmarkMILPSolve measures one resource-allocation solve (§4.5
// reports ~10 ms under Gurobi).
func BenchmarkMILPSolve(b *testing.B) {
	env, err := baselines.NewEnv("cascade1", 1, 2000)
	if err != nil {
		b.Fatal(err)
	}
	a, err := allocator.NewMILP(allocator.Config{
		Light: env.Light, Heavy: env.Heavy,
		DiscPerImage: env.Scorer.PerImageLatency(),
		Deferral:     env.Deferral,
		TotalWorkers: 16,
		SLO:          5,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Allocate(allocator.Observation{Demand: float64(4 + i%28)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkControlTickSolve measures the allocation slice of a full
// control tick at 1× and 10× the current pool count: K independent
// controllers (one per model pool, the forthcoming N-pool layout)
// each re-solve their MILP against a drifting demand walk. The
// reported ns/op is one tick across all K pools, so ticks/sec =
// 1e9/ns — the solve-rate headroom number PERFORMANCE.md tracks.
func BenchmarkControlTickSolve(b *testing.B) {
	env, err := baselines.NewEnv("cascade1", 1, 2000)
	if err != nil {
		b.Fatal(err)
	}
	for _, pools := range []int{1, 10} {
		b.Run(fmt.Sprintf("pools=%d", pools), func(b *testing.B) {
			allocs := make([]*allocator.MILPAllocator, pools)
			for k := range allocs {
				a, err := allocator.NewMILP(allocator.Config{
					Light: env.Light, Heavy: env.Heavy,
					DiscPerImage: env.Scorer.PerImageLatency(),
					Deferral:     env.Deferral,
					TotalWorkers: 16,
					SLO:          5,
				})
				if err != nil {
					b.Fatal(err)
				}
				allocs[k] = a
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for k, a := range allocs {
					d := float64(4 + (i+7*k)%28)
					if _, err := a.Allocate(allocator.Observation{Demand: d}); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkAllocatorMILPVsGrid is the solver-strategy ablation: the
// exhaustive grid enumeration that cross-validates the MILP.
func BenchmarkAllocatorMILPVsGrid(b *testing.B) {
	env, err := baselines.NewEnv("cascade1", 1, 2000)
	if err != nil {
		b.Fatal(err)
	}
	cfg := allocator.Config{
		Light: env.Light, Heavy: env.Heavy,
		DiscPerImage: env.Scorer.PerImageLatency(),
		Deferral:     env.Deferral,
		TotalWorkers: 16,
		SLO:          5,
	}
	g, err := allocator.NewGrid(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Allocate(allocator.Observation{Demand: float64(4 + i%28)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFIDExactVsDiagonal_Exact measures the exact full-covariance
// FID over a 5000-image set (the design-choice ablation's exact arm;
// see also the micro-benchmarks in internal/fid).
func BenchmarkFIDExactVsDiagonal_Exact(b *testing.B) {
	ref, feats := fidFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ref.Score(feats); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFIDExactVsDiagonal_Diagonal measures the diagonal
// approximation on the same set.
func BenchmarkFIDExactVsDiagonal_Diagonal(b *testing.B) {
	ref, feats := fidFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ref.ScoreDiagonal(feats); err != nil {
			b.Fatal(err)
		}
	}
}

func fidFixture(b *testing.B) (*fid.Reference, [][]float64) {
	b.Helper()
	rng := stats.NewRNG(3)
	space, err := imagespace.NewSpace(imagespace.DefaultSpaceConfig(), rng.Stream("space"))
	if err != nil {
		b.Fatal(err)
	}
	v := model.BuiltinRegistry().MustGet("sdturbo")
	queries := space.SampleQueries(0, 5000)
	feats := make([][]float64, len(queries))
	real := make([][]float64, len(queries))
	for i, q := range queries {
		feats[i] = space.GenerateDeterministic(q, v.Name, v.Gen).Features
		real[i] = space.RealImage(q)
	}
	ref, err := fid.NewReference(real)
	if err != nil {
		b.Fatal(err)
	}
	return ref, feats
}

// BenchmarkMomentsStreaming measures the streaming-moments path the
// metrics pipeline now uses for FID: accumulate a 5000-image feature
// set and finalize the covariance.
func BenchmarkMomentsStreaming(b *testing.B) {
	_, feats := fidFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc := stats.NewMomentAccumulator(len(feats[0]))
		for _, f := range feats {
			acc.Add(f)
		}
		if _, err := acc.CovarianceInto(nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMomentsBatch is the pre-streaming batch moment computation
// on the same data, kept for comparison.
func BenchmarkMomentsBatch(b *testing.B) {
	_, feats := fidFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := imagespace.Moments(feats); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGenerateCached measures memoized deterministic generation:
// steady-state replay of a query population through one variant, as
// every threshold/approach sweep does after its first pass.
func BenchmarkGenerateCached(b *testing.B) {
	rng := stats.NewRNG(3)
	space, err := imagespace.NewSpace(imagespace.DefaultSpaceConfig(), rng.Stream("space"))
	if err != nil {
		b.Fatal(err)
	}
	v := model.BuiltinRegistry().MustGet("sdturbo")
	queries := space.SampleQueries(0, 1024)
	for _, q := range queries {
		space.GenerateDeterministic(q, v.Name, v.Gen)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		img := space.GenerateDeterministic(queries[i%len(queries)], v.Name, v.Gen)
		if img.Features == nil {
			b.Fatal("missing features")
		}
	}
}

// benchFig8At runs the Fig 8 ablation suite at a fixed worker-pool
// size (the serial-vs-parallel experiment harness comparison).
func benchFig8At(b *testing.B, parallelism int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		cfg := benchCfg()
		cfg.Parallelism = parallelism
		r, err := experiments.Fig8(cfg)
		if err != nil {
			b.Fatal(err)
		}
		r.Render(io.Discard)
	}
}

// BenchmarkExperimentsSerial runs Fig 8's four independent simulation
// runs on one worker.
func BenchmarkExperimentsSerial(b *testing.B) { benchFig8At(b, 1) }

// BenchmarkExperimentsParallel runs the same four simulation runs on
// one worker per available CPU.
func BenchmarkExperimentsParallel(b *testing.B) { benchFig8At(b, 0) }

// BenchmarkCascadeProcess measures one query through the cascade's
// offline data path (generate light image, score, maybe defer).
func BenchmarkCascadeProcess(b *testing.B) {
	rng := stats.NewRNG(4)
	space, err := imagespace.NewSpace(imagespace.DefaultSpaceConfig(), rng.Stream("space"))
	if err != nil {
		b.Fatal(err)
	}
	reg := model.BuiltinRegistry()
	d, err := discriminator.New(discriminator.Config{
		Arch: discriminator.ArchEfficientNet, Train: discriminator.TrainGT,
	}, rng.Stream("d"))
	if err != nil {
		b.Fatal(err)
	}
	c, err := cascade.New(space, reg.MustGet("sdturbo"), reg.MustGet("sdv15"), d)
	if err != nil {
		b.Fatal(err)
	}
	queries := space.SampleQueries(0, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Process(queries[i%len(queries)], 0.5)
	}
}

// BenchmarkServeDiffServe measures a full simulated serving run of
// DiffServe on a short dynamic trace.
func BenchmarkServeDiffServe(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Serve(Config{
			Cascade: "cascade1", Approach: DiffServe,
			Workers: 16, TraceMinQPS: 4, TraceMaxQPS: 24,
			TraceDurationSeconds: 60, Seed: 5,
		}); err != nil {
			b.Fatal(err)
		}
	}
}
