# DiffServe reproduction — tier-1 verification and benchmark targets.

GO ?= go

# verify is the tier-1 gate: formatting, static checks, build, tests,
# and the diffvet invariant suite.
.PHONY: verify
verify: fmt-check vet lint build test

.PHONY: fmt-check
fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

.PHONY: vet
vet:
	$(GO) vet ./...

# lint runs the diffvet static-analysis suite (internal/analysis):
# codecparity, poolownership, walltime, and globalrand. Exit 1 on any
# finding; suppress only with //diffvet:allow <analyzer> — <reason>.
.PHONY: lint
lint:
	$(GO) run ./cmd/diffvet ./...

.PHONY: build
build:
	$(GO) build ./...

.PHONY: test
test:
	$(GO) test ./...

# bench regenerates every figure benchmark (minutes).
.PHONY: bench
bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# bench-perf runs just the perf-pipeline benchmarks this refactor
# tracks (see PERFORMANCE.md).
.PHONY: bench-perf
bench-perf:
	$(GO) test -run '^$$' -bench 'Fig5$$|MomentsStreaming|MomentsBatch|GenerateCached|ExperimentsSerial|ExperimentsParallel' -benchmem .

# bench-wire runs the cluster wire-path benchmarks: codec
# encode/decode and the end-to-end submit/pull/complete/results cycle
# across the json, binary, tcp, and inproc transports (see
# PERFORMANCE.md). The machine-readable summary lands in
# BENCH_wire.json via cmd/benchjson.
.PHONY: bench-wire
bench-wire:
	@out="$$($(GO) test -run '^$$' -bench 'BenchmarkCodec|BenchmarkWirePath' -benchmem ./internal/cluster/)" \
		|| { echo "$$out"; exit 1; }; \
	printf '%s\n' "$$out" | $(GO) run ./cmd/benchjson -out BENCH_wire.json

# bench-shard measures aggregate submit throughput of the sharded LB
# tier vs a single LBServer (see PERFORMANCE.md's "Sharded LB tier"
# table; acceptance bar: >= 1.5x at 2 shards). Summary in
# BENCH_shard.json.
.PHONY: bench-shard
bench-shard:
	@out="$$($(GO) test -run '^$$' -bench 'BenchmarkShardedSubmit' -benchmem ./internal/cluster/)" \
		|| { echo "$$out"; exit 1; }; \
	printf '%s\n' "$$out" | $(GO) run ./cmd/benchjson -out BENCH_shard.json

# bench-milp runs the allocation-solver benchmarks: the Fig 5
# allocation slice (one full Allocate: threshold binary search over
# warm-started MILP subproblems) and the control-tick solve rate at
# 1x and 10x the current pool count (see PERFORMANCE.md's
# "Warm-started MILP" tables). Summary in BENCH_milp.json.
.PHONY: bench-milp
bench-milp:
	@out="$$($(GO) test -run '^$$' -bench 'BenchmarkMILPSolve|BenchmarkControlTickSolve' -benchmem .)" \
		|| { echo "$$out"; exit 1; }; \
	printf '%s\n' "$$out" | $(GO) run ./cmd/benchjson -out BENCH_milp.json

# allocs-gate pins the zero-allocation wire path: the end-to-end
# tcp/binary cycle must stay within 16 allocs/op (8 queries/op, so
# <= 2 allocs per query) and the in-process transport within 8.
# Baseline before pooling: tcp 73 allocs/op (see PERFORMANCE.md).
.PHONY: allocs-gate
allocs-gate:
	@out="$$($(GO) test -run '^$$' -bench 'BenchmarkWirePath' -benchmem -count=1 ./internal/cluster/)" \
		|| { echo "$$out"; exit 1; }; \
	printf '%s\n' "$$out" | $(GO) run ./cmd/benchjson \
		-max-allocs 'BenchmarkWirePath/tcp=16,BenchmarkWirePath/inproc=8'

# poison-test re-runs the cluster suite with recycled buffers filled
# with NaN sentinels on release (see pool_poison.go): any read or
# resolve of a buffer the pool already owns fails loudly instead of
# silently serving stale floats. The full suite runs without the race
# detector; the race leg is -short because the ~10x slowdown distorts
# the wall-clock-calibrated harness assertions.
.PHONY: poison-test
poison-test:
	$(GO) test -tags poolpoison ./internal/cluster/
	$(GO) test -race -short -tags poolpoison ./internal/cluster/

# bench-ring compares the consistent-hash ring lookup against the
# static-modulus ShardOf baseline (acceptance bar: ring within 2x).
.PHONY: bench-ring
bench-ring:
	$(GO) test -run '^$$' -bench 'BenchmarkRingLookup|BenchmarkShardOf' -benchmem ./internal/loadbalancer/

# race-reshard hammers the dynamic-membership machinery — epoch
# flips, drain migration, retired-shard sweeps, worker re-pinning —
# under the race detector (the newest concurrency surface).
.PHONY: race-reshard
race-reshard:
	$(GO) test -race -short -count=2 \
		-run 'TestReshardChaosNoLostOrDoubleResolve|TestTransportConformance/.*/epoch-flip-atomic-submit|TestTransportConformance/.*/drain-pull-ownership' \
		./internal/cluster/

# race-autoscale soaks the elasticity loop under the race detector:
# the controller alone scales a 1-shard frontend to 4 and back under a
# bursty trace (zero lost/double-resolved queries, bounded epochs),
# plus the epoch-collapse and retired-pump-termination regressions and
# the membership-endpoint follower sync.
.PHONY: race-autoscale
race-autoscale:
	$(GO) test -race -count=2 \
		-run 'TestHarnessAutoscaleTopology|TestManyReshardsCollapseEpochs|TestRetiredPumpsTerminate|TestMembershipEndpointHTTP|TestMembershipFollowerSyncsOverTCP' \
		./internal/cluster/

# chaos-soak runs the fault-tolerance suite under the race detector:
# the worker-churn soak (killed workers, severed conns, injected
# drops/latency — exactly-once accounting), the lease-reclaim and
# retry-after-sever conformance rows on every transport, and the
# controller/shard failover units. Raise COUNT for a longer hunt.
COUNT ?= 2
.PHONY: chaos-soak
chaos-soak:
	$(GO) test -race -count=$(COUNT) \
		-run 'TestChaosWorkerChurnNoLostQueries|TestTransportConformance/.*/lease-reclaim-exactly-once|TestTransportConformance/.*/retry-after-sever|TestControllerConservativeFailover|TestShardedLBDegradeSpill' \
		./internal/cluster/

# fuzz-smoke runs each decoder fuzz target briefly on top of the
# committed seed corpus (testdata/fuzz). CI runs this on every push;
# raise -fuzztime for a deeper local hunt.
.PHONY: fuzz-smoke
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzCodecRoundTrip -fuzztime=10s ./internal/cluster/
	$(GO) test -run '^$$' -fuzz FuzzDecodeFrame -fuzztime=10s ./internal/cluster/
	$(GO) test -run '^$$' -fuzz FuzzRingLookup -fuzztime=10s ./internal/loadbalancer/
