# DiffServe reproduction — tier-1 verification and benchmark targets.

GO ?= go

.PHONY: verify fmt-check vet build test bench bench-perf bench-wire bench-shard bench-ring race-reshard chaos-soak fuzz-smoke

# verify is the tier-1 gate: formatting, static checks, build, tests.
verify: fmt-check vet build test

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# bench regenerates every figure benchmark (minutes).
bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# bench-perf runs just the perf-pipeline benchmarks this refactor
# tracks (see PERFORMANCE.md).
bench-perf:
	$(GO) test -run '^$$' -bench 'Fig5$$|MomentsStreaming|MomentsBatch|GenerateCached|ExperimentsSerial|ExperimentsParallel' -benchmem .

# bench-wire runs the cluster wire-path benchmarks: codec
# encode/decode and the end-to-end submit/pull/complete/results cycle
# across the json, binary, tcp, and inproc transports (see
# PERFORMANCE.md).
bench-wire:
	$(GO) test -run '^$$' -bench 'BenchmarkCodec|BenchmarkWirePath' -benchmem ./internal/cluster/

# bench-shard measures aggregate submit throughput of the sharded LB
# tier vs a single LBServer (see PERFORMANCE.md's "Sharded LB tier"
# table; acceptance bar: >= 1.5x at 2 shards).
bench-shard:
	$(GO) test -run '^$$' -bench 'BenchmarkShardedSubmit' -benchmem ./internal/cluster/

# bench-ring compares the consistent-hash ring lookup against the
# static-modulus ShardOf baseline (acceptance bar: ring within 2x).
bench-ring:
	$(GO) test -run '^$$' -bench 'BenchmarkRingLookup|BenchmarkShardOf' -benchmem ./internal/loadbalancer/

# race-reshard hammers the dynamic-membership machinery — epoch
# flips, drain migration, retired-shard sweeps, worker re-pinning —
# under the race detector (the newest concurrency surface).
race-reshard:
	$(GO) test -race -short -count=2 \
		-run 'TestReshardChaosNoLostOrDoubleResolve|TestTransportConformance/.*/epoch-flip-atomic-submit|TestTransportConformance/.*/drain-pull-ownership' \
		./internal/cluster/

# chaos-soak runs the fault-tolerance suite under the race detector:
# the worker-churn soak (killed workers, severed conns, injected
# drops/latency — exactly-once accounting), the lease-reclaim and
# retry-after-sever conformance rows on every transport, and the
# controller/shard failover units. Raise COUNT for a longer hunt.
COUNT ?= 2
chaos-soak:
	$(GO) test -race -count=$(COUNT) \
		-run 'TestChaosWorkerChurnNoLostQueries|TestTransportConformance/.*/lease-reclaim-exactly-once|TestTransportConformance/.*/retry-after-sever|TestControllerConservativeFailover|TestShardedLBDegradeSpill' \
		./internal/cluster/

# fuzz-smoke runs each decoder fuzz target briefly on top of the
# committed seed corpus (testdata/fuzz). CI runs this on every push;
# raise -fuzztime for a deeper local hunt.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzCodecRoundTrip -fuzztime=10s ./internal/cluster/
	$(GO) test -run '^$$' -fuzz FuzzDecodeFrame -fuzztime=10s ./internal/cluster/
	$(GO) test -run '^$$' -fuzz FuzzRingLookup -fuzztime=10s ./internal/loadbalancer/
