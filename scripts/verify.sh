#!/bin/sh
# Tier-1 verification: gofmt, vet, build, tests — one command.
set -e
cd "$(dirname "$0")/.."
out="$(gofmt -l .)"
if [ -n "$out" ]; then
	echo "gofmt needed on:"
	echo "$out"
	exit 1
fi
go vet ./...
go build ./...
go test ./...
