#!/bin/sh
# Tier-1 verification: gofmt, vet, build, tests — one command.
set -e
cd "$(dirname "$0")/.."
out="$(gofmt -l .)"
if [ -n "$out" ]; then
	echo "gofmt needed on:"
	echo "$out"
	exit 1
fi
go vet ./...
# diffvet: the repo's own invariant analyzers (internal/analysis) —
# wire/codec field parity, pooled-message ownership, trace-time
# wall-clock bans, and global-rand bans. Exit 1 on any finding.
go run ./cmd/diffvet ./...
go build ./...
go test ./...
# The cluster runtime is the one heavily concurrent package (long-poll
# waiters, per-pool LB locks, sharded LB frontend, multiplexed TCP
# connections, broadcast wakeups, shared clock): run its data-path
# tests — including the TestLBServerPerPoolLockStress
# submit/pull/complete hammer and the transport conformance matrix —
# under the race detector. -short skips the wall-clock-calibrated
# end-to-end harness assertions, which the ~10x race slowdown would
# distort.
go test -race -short ./internal/cluster/ ./internal/parallel/
# Sharded-LB stress leg: the frontend fan-out/merge paths, the
# missed-wakeup notifier, and the drain/complete idempotency guard get
# an extra -count=2 hammering under -race (they are the newest
# concurrency surface).
go test -race -short -count=2 \
	-run 'TestShardedLBStress|TestLBPoolWakeupStress|TestDrainCompleteRaceNoDoubleResolve|TestNotifierCoalescing' \
	./internal/cluster/
# race-reshard leg: dynamic shard membership — consistent-hash ring
# epoch flips, drain migration with ownership transfer, retired-shard
# straggler sweeps, and worker re-pinning — raced under the detector,
# plus the ring's property tests.
go test -race -short -count=2 \
	-run 'TestReshardChaosNoLostOrDoubleResolve|TestTransportConformance/.*/epoch-flip-atomic-submit|TestTransportConformance/.*/drain-pull-ownership' \
	./internal/cluster/
# race-autoscale leg: the elasticity loop — the controller alone
# scales a 1-shard frontend to 4 and back under a bursty trace with
# exactly-once accounting, plus the epoch-quiescence collapse,
# retired-pump-termination, and membership-endpoint regressions. Not
# -short: the soak is the point, and its clock headroom tolerates the
# race slowdown.
go test -race -count=1 \
	-run 'TestHarnessAutoscaleTopology|TestManyReshardsCollapseEpochs|TestRetiredPumpsTerminate|TestMembershipEndpointHTTP|TestMembershipFollowerSyncsOverTCP' \
	./internal/cluster/
# race-chaos leg: the fault-tolerance machinery — pull-lease expiry
# sweeps and reclamation, retrying conns healing through scripted
# severs, worker churn under injected drops/latency, controller
# conservative failover, and shard degradation/spill — raced under the
# detector with exactly-once accounting.
go test -race -count=2 \
	-run 'TestChaosWorkerChurnNoLostQueries|TestTransportConformance/.*/lease-reclaim-exactly-once|TestTransportConformance/.*/retry-after-sever|TestControllerConservativeFailover|TestShardedLBDegradeSpill' \
	./internal/cluster/
go test -race ./internal/loadbalancer/
# race-milp leg: the warm-started incremental solver and its
# allocator threading — warm-vs-cold equivalence, node-limit
# degradation, and concurrent Allocate calls serializing on one
# solver — raced under the detector (ISSUE 10 acceptance bar).
go test -race ./internal/milp/ ./internal/allocator/
# poolpoison leg: recycled wire buffers are filled with NaN sentinels
# on release, so any handler that reads or resolves through a buffer
# the pool already owns fails loudly instead of serving stale floats.
# -short for the same wall-clock reason as the other race legs.
go test -race -short -tags poolpoison ./internal/cluster/
# bench-ring smoke: the consistent-hash lookup must stay within 2x of
# the static-modulus ShardOf (full numbers in PERFORMANCE.md).
go test -run '^$' -bench 'BenchmarkRingLookup|BenchmarkShardOf' -benchtime 100x ./internal/loadbalancer/ >/dev/null
