// Command diffserve-lb runs the DiffServe load balancer as a
// standalone process (the artifact's start_load_balancer.sh).
//
// Workers pull batches from this process; the controller pushes
// thresholds; clients POST /query and block until completion.
//
// With -transport=tcp the process serves the same API over the raw
// framed-TCP protocol (persistent multiplexed connections) instead of
// HTTP; every peer must then dial with -transport=tcp too.
//
// With -lb-shards N the process serves N independent LB shards on
// consecutive ports (port, port+1, …, port+N-1), each owning the
// slice of query IDs that loadbalancer.ShardOf assigns it and drawing
// routing randomness from its own "lb/<shard>" stream of the shared
// seed. Peers pass the same shard list via their -shard-addrs flags:
// workers pin to one shard, the controller and client fan out across
// all of them. Run one shard per host for multi-host layouts.
//
// With -admin-port the process serves a small admin API for dynamic
// shard membership: POST /add-shard brings up one more LB shard on
// the next consecutive port and reports its address, ready to be
// joined into the ring via diffserve-controller's /add-shard RPC
// (the tier must run with matching -ring-vnodes on the frontends).
//
//	diffserve-lb -port 8100 -cascade cascade1 -slo 5 -timescale 0.1
//	diffserve-lb -port 8100 -transport tcp -codec binary
//	diffserve-lb -port 8100 -lb-shards 2 -transport tcp
//	diffserve-lb -port 8100 -lb-shards 2 -admin-port 9101
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"sync"

	"diffserve/internal/baselines"
	"diffserve/internal/cluster"
	"diffserve/internal/loadbalancer"
)

func main() {
	var (
		port      = flag.Int("port", 8100, "listen port (shard i listens on port+i)")
		shards    = flag.Int("lb-shards", 1, "number of LB shards to serve on consecutive ports")
		cascadeN  = flag.String("cascade", "cascade1", "cascade: cascade1|cascade2|cascade3")
		slo       = flag.Float64("slo", 0, "SLO seconds (0 = cascade default)")
		seed      = flag.Uint64("seed", 20250610, "shared experiment seed")
		timescale = flag.Float64("timescale", 0.1, "wall seconds per trace second")
		mode      = flag.String("mode", "cascade", "routing: cascade|all-light|all-heavy|random-split")
		transport = flag.String("transport", "http", "wire transport: http|tcp (raw framed TCP)")
		codecName = flag.String("codec", "json", "advertised wire codec: json|binary (the server answers each request in the codec it arrived in)")
		lease     = flag.Float64("lease", 0, "pull-lease duration in trace seconds: a worker that pulls a batch and never completes it forfeits the queries to the expiry sweep (0 = 4x the SLO, negative disables leasing)")
		leaseRed  = flag.Int("lease-redeliveries", 0, "times an unlucky query is reclaimed and re-queued before it is shed as a drop (0 = default 3)")
		adminPort = flag.Int("admin-port", 0, "admin API port: POST /add-shard serves one more shard on the next consecutive port (0 = disabled)")
		advertise = flag.String("advertise", "", "host other processes should dial this LB's shards at; /add-shard reports addresses as <advertise>:<port> (empty: port-only, same-host layouts)")
	)
	flag.Parse()

	codec, err := cluster.CodecByName(*codecName)
	if err != nil {
		fatal(err)
	}
	if *shards < 1 {
		fatal(fmt.Errorf("-lb-shards must be at least 1, got %d", *shards))
	}
	switch *transport {
	case "", "http", cluster.TransportTCP:
	default:
		fatal(fmt.Errorf("unknown -transport %q (have http, tcp)", *transport))
	}
	env, err := baselines.NewEnv(*cascadeN, *seed, 2000)
	if err != nil {
		fatal(err)
	}
	deadline := env.Spec.SLOSeconds
	if *slo > 0 {
		deadline = *slo
	}
	lbMode := map[string]loadbalancer.Mode{
		"cascade":      loadbalancer.ModeCascade,
		"all-light":    loadbalancer.ModeAllLight,
		"all-heavy":    loadbalancer.ModeAllHeavy,
		"random-split": loadbalancer.ModeRandomSplit,
	}[*mode]

	clock := cluster.NewClock(*timescale)
	fmt.Printf("diffserve-lb: %s, %d shard(s) from port %d (cascade %s, SLO %.1fs, mode %s, %s transport, %s codec)\n",
		env.Spec.Name, *shards, *port, *cascadeN, deadline, *mode, *transport, codec.Name())

	errc := make(chan error, 64)
	var serveMu sync.Mutex
	nextShard := 0
	nextPort := *port
	// bind serves lb on addr, failing synchronously when the port is
	// occupied (the admin /add-shard must not report an address that
	// never came up).
	bind := func(addr string, lb *cluster.LBServer) error {
		switch *transport {
		case "", "http":
			ln, err := net.Listen("tcp", addr)
			if err != nil {
				return err
			}
			go func(ln net.Listener, lb *cluster.LBServer) {
				errc <- http.Serve(ln, lb.Mux())
			}(ln, lb)
			return nil
		case cluster.TransportTCP:
			_, err := cluster.ServeLBTCP(addr, lb)
			return err
		}
		return fmt.Errorf("unknown -transport %q (have http, tcp)", *transport)
	}
	serveShard := func() (int, string, error) {
		serveMu.Lock()
		defer serveMu.Unlock()
		i := nextShard
		cfg := cluster.LBConfig{
			Mode: lbMode, SLO: deadline,
			LightMinExec: env.Light.Latency.Latency(1) + env.Scorer.PerImageLatency(),
			HeavyMinExec: env.Heavy.Latency.Latency(1),
			Clock:        clock, Seed: *seed,
			RNGStream:     fmt.Sprintf("lb/%d", i),
			LeaseDuration: *lease, LeaseRedeliveries: *leaseRed,
		}
		if *shards == 1 && i == 0 {
			cfg.RNGStream = "" // classic single-LB stream name
		}
		lb := cluster.NewLBServer(cfg)
		// Consecutive port allocation can land on a port another
		// process already holds — long-lived admin APIs add shards far
		// from the initial block. Skip occupied ports (each port is
		// tried once; the cursor never moves backwards) instead of
		// failing the add and re-failing on the same port forever.
		const maxPortTries = 64
		var lastErr error
		for try := 0; try < maxPortTries; try++ {
			addr := fmt.Sprintf(":%d", nextPort)
			nextPort++
			if err := bind(addr, lb); err != nil {
				lastErr = err
				fmt.Printf("diffserve-lb: shard %d: port %s occupied, trying next (%v)\n", i, addr, err)
				continue
			}
			nextShard++
			fmt.Printf("diffserve-lb: shard %d on %s\n", i, addr)
			// Report a dialable address: ":port" only resolves to the
			// right machine when the dialer shares this host, so
			// multi-host layouts set -advertise.
			return i, *advertise + addr, nil
		}
		return 0, "", fmt.Errorf("no bindable port for shard %d in [%d, %d): last error: %w",
			i, nextPort-maxPortTries, nextPort, lastErr)
	}
	for i := 0; i < *shards; i++ {
		if _, _, err := serveShard(); err != nil {
			fatal(err)
		}
	}
	if *adminPort > 0 {
		mux := http.NewServeMux()
		mux.HandleFunc("/add-shard", func(w http.ResponseWriter, r *http.Request) {
			shard, addr, err := serveShard()
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			json.NewEncoder(w).Encode(map[string]interface{}{"shard": shard, "addr": addr})
		})
		go func() {
			errc <- http.ListenAndServe(fmt.Sprintf(":%d", *adminPort), mux)
		}()
		fmt.Printf("diffserve-lb: admin API on :%d\n", *adminPort)
	}
	// Serve until the process is killed or an HTTP listener fails.
	if err := <-errc; err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "diffserve-lb:", err)
	os.Exit(1)
}
