// Command diffserve-lb runs the DiffServe load balancer as a
// standalone process (the artifact's start_load_balancer.sh).
//
// Workers pull batches from this process; the controller pushes
// thresholds; clients POST /query and block until completion.
//
// With -transport=tcp the process serves the same API over the raw
// framed-TCP protocol (persistent multiplexed connections) instead of
// HTTP; every peer must then dial with -transport=tcp too.
//
// With -lb-shards N the process serves N independent LB shards on
// consecutive ports (port, port+1, …, port+N-1), each owning the
// slice of query IDs that loadbalancer.ShardOf assigns it and drawing
// routing randomness from its own "lb/<shard>" stream of the shared
// seed. Peers pass the same shard list via their -shard-addrs flags:
// workers pin to one shard, the controller and client fan out across
// all of them. Run one shard per host for multi-host layouts.
//
//	diffserve-lb -port 8100 -cascade cascade1 -slo 5 -timescale 0.1
//	diffserve-lb -port 8100 -transport tcp -codec binary
//	diffserve-lb -port 8100 -lb-shards 2 -transport tcp
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	"diffserve/internal/baselines"
	"diffserve/internal/cluster"
	"diffserve/internal/loadbalancer"
)

func main() {
	var (
		port      = flag.Int("port", 8100, "listen port (shard i listens on port+i)")
		shards    = flag.Int("lb-shards", 1, "number of LB shards to serve on consecutive ports")
		cascadeN  = flag.String("cascade", "cascade1", "cascade: cascade1|cascade2|cascade3")
		slo       = flag.Float64("slo", 0, "SLO seconds (0 = cascade default)")
		seed      = flag.Uint64("seed", 20250610, "shared experiment seed")
		timescale = flag.Float64("timescale", 0.1, "wall seconds per trace second")
		mode      = flag.String("mode", "cascade", "routing: cascade|all-light|all-heavy|random-split")
		transport = flag.String("transport", "http", "wire transport: http|tcp (raw framed TCP)")
		codecName = flag.String("codec", "json", "advertised wire codec: json|binary (the server answers each request in the codec it arrived in)")
	)
	flag.Parse()

	codec, err := cluster.CodecByName(*codecName)
	if err != nil {
		fatal(err)
	}
	if *shards < 1 {
		fatal(fmt.Errorf("-lb-shards must be at least 1, got %d", *shards))
	}
	env, err := baselines.NewEnv(*cascadeN, *seed, 2000)
	if err != nil {
		fatal(err)
	}
	deadline := env.Spec.SLOSeconds
	if *slo > 0 {
		deadline = *slo
	}
	lbMode := map[string]loadbalancer.Mode{
		"cascade":      loadbalancer.ModeCascade,
		"all-light":    loadbalancer.ModeAllLight,
		"all-heavy":    loadbalancer.ModeAllHeavy,
		"random-split": loadbalancer.ModeRandomSplit,
	}[*mode]

	clock := cluster.NewClock(*timescale)
	fmt.Printf("diffserve-lb: %s, %d shard(s) from port %d (cascade %s, SLO %.1fs, mode %s, %s transport, %s codec)\n",
		env.Spec.Name, *shards, *port, *cascadeN, deadline, *mode, *transport, codec.Name())

	errc := make(chan error, *shards)
	for i := 0; i < *shards; i++ {
		cfg := cluster.LBConfig{
			Mode: lbMode, SLO: deadline,
			LightMinExec: env.Light.Latency.Latency(1) + env.Scorer.PerImageLatency(),
			HeavyMinExec: env.Heavy.Latency.Latency(1),
			Clock:        clock, Seed: *seed,
		}
		if *shards > 1 {
			cfg.RNGStream = fmt.Sprintf("lb/%d", i)
		}
		lb := cluster.NewLBServer(cfg)
		addr := fmt.Sprintf(":%d", *port+i)
		fmt.Printf("diffserve-lb: shard %d on %s\n", i, addr)
		switch *transport {
		case "", "http":
			go func(addr string, lb *cluster.LBServer) {
				errc <- http.ListenAndServe(addr, lb.Mux())
			}(addr, lb)
		case cluster.TransportTCP:
			if _, err := cluster.ServeLBTCP(addr, lb); err != nil {
				fatal(err)
			}
		default:
			fatal(fmt.Errorf("unknown -transport %q (have http, tcp)", *transport))
		}
	}
	// Serve until the process is killed or an HTTP listener fails.
	if err := <-errc; err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "diffserve-lb:", err)
	os.Exit(1)
}
