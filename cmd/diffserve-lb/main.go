// Command diffserve-lb runs the DiffServe load balancer as a
// standalone process (the artifact's start_load_balancer.sh).
//
// Workers pull batches from this process; the controller pushes
// thresholds; clients POST /query and block until completion.
//
// With -transport=tcp the process serves the same API over the raw
// framed-TCP protocol (persistent multiplexed connections) instead of
// HTTP; every peer must then dial with -transport=tcp too.
//
//	diffserve-lb -port 8100 -cascade cascade1 -slo 5 -timescale 0.1
//	diffserve-lb -port 8100 -transport tcp -codec binary
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	"diffserve/internal/baselines"
	"diffserve/internal/cluster"
	"diffserve/internal/loadbalancer"
)

func main() {
	var (
		port      = flag.Int("port", 8100, "listen port")
		cascadeN  = flag.String("cascade", "cascade1", "cascade: cascade1|cascade2|cascade3")
		slo       = flag.Float64("slo", 0, "SLO seconds (0 = cascade default)")
		seed      = flag.Uint64("seed", 20250610, "shared experiment seed")
		timescale = flag.Float64("timescale", 0.1, "wall seconds per trace second")
		mode      = flag.String("mode", "cascade", "routing: cascade|all-light|all-heavy|random-split")
		transport = flag.String("transport", "http", "wire transport: http|tcp (raw framed TCP)")
		codecName = flag.String("codec", "json", "advertised wire codec: json|binary (the server answers each request in the codec it arrived in)")
	)
	flag.Parse()

	codec, err := cluster.CodecByName(*codecName)
	if err != nil {
		fatal(err)
	}
	env, err := baselines.NewEnv(*cascadeN, *seed, 2000)
	if err != nil {
		fatal(err)
	}
	deadline := env.Spec.SLOSeconds
	if *slo > 0 {
		deadline = *slo
	}
	lbMode := map[string]loadbalancer.Mode{
		"cascade":      loadbalancer.ModeCascade,
		"all-light":    loadbalancer.ModeAllLight,
		"all-heavy":    loadbalancer.ModeAllHeavy,
		"random-split": loadbalancer.ModeRandomSplit,
	}[*mode]

	clock := cluster.NewClock(*timescale)
	lb := cluster.NewLBServer(cluster.LBConfig{
		Mode: lbMode, SLO: deadline,
		LightMinExec: env.Light.Latency.Latency(1) + env.Scorer.PerImageLatency(),
		HeavyMinExec: env.Heavy.Latency.Latency(1),
		Clock:        clock, Seed: *seed,
	})
	addr := fmt.Sprintf(":%d", *port)
	fmt.Printf("diffserve-lb: %s on %s (cascade %s, SLO %.1fs, mode %s, %s transport, %s codec)\n",
		env.Spec.Name, addr, *cascadeN, deadline, *mode, *transport, codec.Name())
	switch *transport {
	case "", "http":
		if err := http.ListenAndServe(addr, lb.Mux()); err != nil {
			fatal(err)
		}
	case cluster.TransportTCP:
		if _, err := cluster.ServeLBTCP(addr, lb); err != nil {
			fatal(err)
		}
		select {} // serve until the process is killed
	default:
		fatal(fmt.Errorf("unknown -transport %q (have http, tcp)", *transport))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "diffserve-lb:", err)
	os.Exit(1)
}
