package main

import (
	"strings"
	"testing"
)

func TestParseBenchLine(t *testing.T) {
	r, ok := parseBenchLine("BenchmarkWirePath/tcp-8   \t 1234\t     43210 ns/op\t    6409 B/op\t      14 allocs/op")
	if !ok {
		t.Fatal("line not recognized")
	}
	want := benchResult{Name: "BenchmarkWirePath/tcp", Iterations: 1234, NsPerOp: 43210, BytesPerOp: 6409, AllocsPerOp: 14}
	if r != want {
		t.Fatalf("parsed %+v, want %+v", r, want)
	}

	// Without -benchmem the memory columns are absent, not zero.
	r, ok = parseBenchLine("BenchmarkRingLookup-8   999   55.5 ns/op")
	if !ok || r.NsPerOp != 55.5 || r.BytesPerOp != -1 || r.AllocsPerOp != -1 {
		t.Fatalf("parsed %+v", r)
	}

	for _, line := range []string{
		"goos: linux",
		"PASS",
		"ok  \tdiffserve/internal/cluster\t4.2s",
		"--- BENCH: BenchmarkX",
		"BenchmarkBroken notanumber 1 ns/op",
		"",
	} {
		if _, ok := parseBenchLine(line); ok {
			t.Fatalf("non-result line parsed: %q", line)
		}
	}
}

func TestTrimProcs(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkWirePath/tcp-8":  "BenchmarkWirePath/tcp",
		"BenchmarkWirePath/tcp-16": "BenchmarkWirePath/tcp",
		"BenchmarkFig5":            "BenchmarkFig5",
		"BenchmarkX/sub-case":      "BenchmarkX/sub-case",
	} {
		if got := trimProcs(in); got != want {
			t.Errorf("trimProcs(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestGate(t *testing.T) {
	results := []benchResult{
		{Name: "BenchmarkWirePath/tcp", AllocsPerOp: 14},
		{Name: "BenchmarkWirePath/json", AllocsPerOp: 552},
		{Name: "BenchmarkNoMem", AllocsPerOp: -1},
	}
	if err := gate(results, map[string]int64{"BenchmarkWirePath/tcp": 16}); err != nil {
		t.Fatalf("within budget but failed: %v", err)
	}
	if err := gate(results, map[string]int64{"BenchmarkWirePath/tcp": 13}); err == nil {
		t.Fatal("over budget but passed")
	}
	if err := gate(results, map[string]int64{"BenchmarkGone": 1}); err == nil || !strings.Contains(err.Error(), "not found") {
		t.Fatalf("missing benchmark must fail the gate, got %v", err)
	}
	if err := gate(results, map[string]int64{"BenchmarkNoMem": 1}); err == nil || !strings.Contains(err.Error(), "-benchmem") {
		t.Fatalf("missing allocs column must fail the gate, got %v", err)
	}
}

func TestParseBudgets(t *testing.T) {
	b, err := parseBudgets("BenchmarkWirePath/tcp=16, BenchmarkWirePath/inproc=8")
	if err != nil || b["BenchmarkWirePath/tcp"] != 16 || b["BenchmarkWirePath/inproc"] != 8 {
		t.Fatalf("parseBudgets = %v, %v", b, err)
	}
	if _, err := parseBudgets("nobudget"); err == nil {
		t.Fatal("malformed spec accepted")
	}
	// Sub-benchmark names may contain '=' themselves; the budget is
	// after the LAST one.
	if b, err := parseBudgets("BenchmarkControlTickSolve/pools=10=2600"); err != nil || b["BenchmarkControlTickSolve/pools=10"] != 2600 {
		t.Fatalf("name-with-equals spec: %v, %v", b, err)
	}
	if _, err := parseBudgets("x=abc"); err == nil {
		t.Fatal("non-numeric budget accepted")
	}
	if b, err := parseBudgets(""); err != nil || len(b) != 0 {
		t.Fatalf("empty spec: %v, %v", b, err)
	}
}
