// Command benchjson converts `go test -bench` output into a JSON
// summary and optionally enforces an allocation budget.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./... | benchjson -out BENCH.json
//	go test -run '^$' -bench WirePath -benchmem ./... | benchjson -max-allocs 'BenchmarkWirePath/tcp=16'
//
// The benchmark text passes through to stdout unchanged, so the tool
// can sit at the end of a Makefile pipe without hiding the readable
// report. -max-allocs takes comma-separated name=budget pairs (names
// without the -GOMAXPROCS suffix); a named benchmark that is missing
// from the input or exceeds its budget fails the run.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// benchResult is one benchmark line. B/op and allocs/op are -1 when
// the run did not use -benchmem.
type benchResult struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

type benchReport struct {
	Unit       string        `json:"unit"`
	Benchmarks []benchResult `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "", "write the JSON summary to this file")
	maxAllocs := flag.String("max-allocs", "", "comma-separated name=budget allocs/op gates, e.g. 'BenchmarkWirePath/tcp=16'")
	flag.Parse()

	budgets, err := parseBudgets(*maxAllocs)
	if err != nil {
		fatal(err)
	}

	report := benchReport{Unit: "ns/op, B/op, allocs/op", Benchmarks: []benchResult{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // passthrough: keep the readable report
		if r, ok := parseBenchLine(line); ok {
			report.Benchmarks = append(report.Benchmarks, r)
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}

	if *out != "" {
		data, err := json.MarshalIndent(&report, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(report.Benchmarks), *out)
	}

	if len(budgets) > 0 {
		if err := gate(report.Benchmarks, budgets); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}

func parseBudgets(spec string) (map[string]int64, error) {
	budgets := map[string]int64{}
	if spec == "" {
		return budgets, nil
	}
	for _, pair := range strings.Split(spec, ",") {
		// Split at the LAST '=': sub-benchmark names may themselves
		// contain one (BenchmarkControlTickSolve/pools=10=2600).
		pair = strings.TrimSpace(pair)
		cut := strings.LastIndexByte(pair, '=')
		if cut < 0 {
			return nil, fmt.Errorf("bad -max-allocs entry %q (want name=budget)", pair)
		}
		name, val := pair[:cut], pair[cut+1:]
		n, err := strconv.ParseInt(val, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad -max-allocs budget %q: %v", pair, err)
		}
		budgets[name] = n
	}
	return budgets, nil
}

// parseBenchLine parses one `go test -bench` result line:
//
//	BenchmarkWirePath/tcp-8   1234   43210 ns/op   6409 B/op   14 allocs/op
func parseBenchLine(line string) (benchResult, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return benchResult{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return benchResult{}, false
	}
	r := benchResult{Name: trimProcs(f[0]), Iterations: iters, BytesPerOp: -1, AllocsPerOp: -1}
	for i := 2; i+1 < len(f); i += 2 {
		switch f[i+1] {
		case "ns/op":
			r.NsPerOp, _ = strconv.ParseFloat(f[i], 64)
		case "B/op":
			r.BytesPerOp, _ = strconv.ParseInt(f[i], 10, 64)
		case "allocs/op":
			r.AllocsPerOp, _ = strconv.ParseInt(f[i], 10, 64)
		}
	}
	return r, true
}

// trimProcs drops the -GOMAXPROCS suffix go test appends to each
// benchmark name.
func trimProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// gate enforces the allocs/op budgets. Every named benchmark must be
// present — a gate that silently passes when its benchmark vanished
// is worse than no gate.
func gate(results []benchResult, budgets map[string]int64) error {
	byName := map[string]benchResult{}
	for _, r := range results {
		byName[r.Name] = r
	}
	var failures []string
	for name, budget := range budgets {
		r, ok := byName[name]
		switch {
		case !ok:
			failures = append(failures, fmt.Sprintf("%s: not found in input", name))
		case r.AllocsPerOp < 0:
			failures = append(failures, fmt.Sprintf("%s: no allocs/op (run with -benchmem)", name))
		case r.AllocsPerOp > budget:
			failures = append(failures, fmt.Sprintf("%s: %d allocs/op exceeds budget %d", name, r.AllocsPerOp, budget))
		default:
			fmt.Fprintf(os.Stderr, "allocs-gate: %s %d allocs/op <= budget %d\n", name, r.AllocsPerOp, budget)
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("allocation budget exceeded:\n  %s", strings.Join(failures, "\n  "))
	}
	return nil
}
