// Command diffvet runs the diffserve static-analysis suite over the
// module: custom analyzers that mechanically enforce the invariants
// this codebase's correctness arguments lean on — wire/codec parity,
// pool ownership, trace-time purity, and seeded randomness.
//
// Usage:
//
//	go run ./cmd/diffvet [-C dir] [-only name[,name...]] [-list] [patterns...]
//
// Patterns default to ./... . Exit status: 0 clean, 1 findings, 2
// operational error. Findings print as
//
//	path/file.go:line:col: message (diffvet/analyzer)
//
// and any finding can be suppressed, with a mandatory reason, by
//
//	//diffvet:allow analyzer — reason
//
// on the offending line or the line above it.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"diffserve/internal/analysis"
	"diffserve/internal/analysis/codecparity"
	"diffserve/internal/analysis/globalrand"
	"diffserve/internal/analysis/poolownership"
	"diffserve/internal/analysis/walltime"
)

// analyzers is the full suite, in report order.
var analyzers = []*analysis.Analyzer{
	codecparity.Analyzer,
	globalrand.Analyzer,
	poolownership.Analyzer,
	walltime.Analyzer,
}

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("diffvet", flag.ContinueOnError)
	dir := fs.String("C", "", "directory to run in (must be inside the module)")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := fs.Bool("list", false, "list analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	suite := analyzers
	if *only != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		suite = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "diffvet: unknown analyzer %q\n", name)
				return 2
			}
			suite = append(suite, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader := &analysis.Loader{Dir: *dir}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "diffvet: %v\n", err)
		return 2
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].ImportPath < pkgs[j].ImportPath })

	findings := 0
	for _, pkg := range pkgs {
		diags, err := analysis.RunPackage(pkg, suite)
		if err != nil {
			fmt.Fprintf(os.Stderr, "diffvet: %s: %v\n", pkg.ImportPath, err)
			return 2
		}
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			fmt.Printf("%s: %s (diffvet/%s)\n", pos, d.Message, d.Analyzer)
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "diffvet: %d finding(s)\n", findings)
		return 1
	}
	return 0
}
