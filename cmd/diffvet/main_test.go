package main

import "testing"

// TestSuiteCleanOnRepo is the smoke gate: the full analyzer suite must
// build and exit 0 over the whole module. Any new finding either gets
// fixed or gets an explicit //diffvet:allow with a reason — silent
// drift is not an option.
func TestSuiteCleanOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module sweep skipped in -short mode")
	}
	if code := run([]string{"-C", "../..", "./..."}); code != 0 {
		t.Fatalf("diffvet ./... exited %d; the tree must be diffvet-clean", code)
	}
}

// TestListAndOnly covers the operational flags.
func TestListAndOnly(t *testing.T) {
	if code := run([]string{"-list"}); code != 0 {
		t.Fatalf("-list exited %d", code)
	}
	if code := run([]string{"-only", "nosuch"}); code != 2 {
		t.Fatalf("unknown -only analyzer exited %d, want 2", code)
	}
}
