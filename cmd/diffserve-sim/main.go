// Command diffserve-sim regenerates the DiffServe paper's tables and
// figures from the command line.
//
// Usage:
//
//	diffserve-sim -experiment fig5                # one figure
//	diffserve-sim -experiment all -short          # everything, reduced sizes
//	diffserve-sim -list                           # list experiments
//	diffserve-sim -serve diffserve -cascade cascade1   # one serving run
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"diffserve"
)

func main() {
	var (
		experiment = flag.String("experiment", "", "experiment to run (see -list)")
		list       = flag.Bool("list", false, "list available experiments")
		serve      = flag.String("serve", "", "run one serving approach (e.g. diffserve, clipper-light)")
		cascadeN   = flag.String("cascade", "cascade1", "cascade for -serve: cascade1|cascade2|cascade3")
		workers    = flag.Int("workers", 16, "worker (GPU) budget")
		queries    = flag.Int("queries", 5000, "offline evaluation set size")
		duration   = flag.Float64("duration", 360, "dynamic trace duration (seconds)")
		seed       = flag.Uint64("seed", 20250610, "root random seed")
		short      = flag.Bool("short", false, "reduced sizes for quick runs")
		slo        = flag.Float64("slo", 0, "SLO override in seconds (0 = cascade default)")
		minQPS     = flag.Float64("min-qps", 4, "trace minimum rate for -serve")
		maxQPS     = flag.Float64("max-qps", 32, "trace maximum rate for -serve")
		transport  = flag.String("transport", "json", "cluster transport for sim-vs-cluster: json|binary|inproc|tcp")
		lbShards   = flag.Int("lb-shards", 1, "LB shard count for sim-vs-cluster (>1 runs the sharded LB tier plus static and mid-trace-resharding parity checks)")
		ringVNodes = flag.Int("ring-vnodes", 0, "virtual nodes per LB shard on the consistent-hash ring for sim-vs-cluster (0 = legacy static modulus; the resharding leg defaults to 128)")
	)
	flag.Parse()

	if *list {
		fmt.Println("experiments:", strings.Join(diffserve.ExperimentNames(), " "))
		return
	}

	switch {
	case *serve != "":
		report, err := diffserve.Serve(diffserve.Config{
			Cascade:              *cascadeN,
			Approach:             diffserve.Approach(*serve),
			Workers:              *workers,
			SLOSeconds:           *slo,
			Seed:                 *seed,
			TraceMinQPS:          *minQPS,
			TraceMaxQPS:          *maxQPS,
			TraceDurationSeconds: *duration,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s on %s: %d queries\n", report.Approach, report.Cascade, report.Queries)
		fmt.Printf("  FID               %.2f\n", report.FID)
		fmt.Printf("  SLO violations    %.3f (drops %.3f)\n", report.SLOViolationRatio, report.DropRatio)
		fmt.Printf("  deferred to heavy %.2f\n", report.DeferRatio)
		fmt.Printf("  latency mean/p99  %.2fs / %.2fs\n", report.MeanLatency, report.P99Latency)
		fmt.Println("\ntimeline (10s buckets):")
		for _, p := range report.Timeline {
			fmt.Printf("  t=%4.0f demand=%5.1f FID=%6.2f viol=%.3f defer=%.2f\n",
				p.StartSeconds, p.DemandQPS, p.FID, p.ViolationRatio, p.DeferRatio)
		}
	case *experiment != "":
		err := diffserve.RunExperiment(*experiment, diffserve.ExperimentConfig{
			Seed:                 *seed,
			Queries:              *queries,
			Workers:              *workers,
			TraceDurationSeconds: *duration,
			Short:                *short,
			ClusterTransport:     *transport,
			ClusterLBShards:      *lbShards,
			ClusterRingVNodes:    *ringVNodes,
		}, os.Stdout)
		if err != nil {
			fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "diffserve-sim:", err)
	os.Exit(1)
}
