// Command diffserve-client replays a workload trace against a running
// DiffServe cluster (the artifact's start_client.sh) and reports
// end-to-end quality and SLO statistics when the trace ends.
//
//	diffserve-client -lb http://localhost:8100 -trace trace_4to32qps.txt -timescale 0.1
//	diffserve-client -lb http://localhost:8100 -min 4 -max 32 -duration 360
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"sync"
	"time"

	"diffserve/internal/baselines"
	"diffserve/internal/cluster"
	"diffserve/internal/fid"
	"diffserve/internal/metrics"
	"diffserve/internal/stats"
	"diffserve/internal/trace"
)

func main() {
	var (
		lbURL     = flag.String("lb", "http://localhost:8100", "load balancer base URL")
		traceFile = flag.String("trace", "", "trace file (empty: generate an Azure-like trace)")
		cascadeN  = flag.String("cascade", "cascade1", "cascade (for query content + SLO)")
		minQPS    = flag.Float64("min", 4, "generated trace minimum QPS")
		maxQPS    = flag.Float64("max", 32, "generated trace maximum QPS")
		duration  = flag.Float64("duration", 360, "generated trace duration (seconds)")
		seed      = flag.Uint64("seed", 20250610, "shared experiment seed")
		timescale = flag.Float64("timescale", 0.1, "wall seconds per trace second")
	)
	flag.Parse()

	env, err := baselines.NewEnv(*cascadeN, *seed, 500)
	if err != nil {
		fatal(err)
	}
	var tr *trace.Trace
	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			fatal(err)
		}
		tr, err = trace.Read(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	} else {
		raw, err := trace.AzureLike(stats.NewRNG(*seed+1), *duration, 1)
		if err != nil {
			fatal(err)
		}
		tr, err = raw.ScaleTo(*minQPS, *maxQPS)
		if err != nil {
			fatal(err)
		}
	}

	arrivals := tr.Arrivals(stats.NewRNG(*seed + 17).Stream("trace"))
	fmt.Printf("diffserve-client: replaying %s (%d queries) at %gx speed\n",
		tr.Name(), len(arrivals), 1 / *timescale)

	clock := cluster.NewClock(*timescale)
	client := &http.Client{Timeout: 10 * time.Minute}
	col := metrics.NewCollector()
	var mu sync.Mutex
	realFeats := make([][]float64, len(arrivals))
	var wg sync.WaitGroup
	for i, at := range arrivals {
		q := env.Space.SampleQuery(i)
		realFeats[i] = env.Space.RealImage(q)
		wg.Add(1)
		go func(id int, at float64) {
			defer wg.Done()
			clock.SleepTrace(at - clock.Now())
			var resp cluster.QueryResponse
			err := postJSON(client, *lbURL+"/query", cluster.QueryMsg{ID: id, Arrival: at}, &resp)
			mu.Lock()
			defer mu.Unlock()
			if err != nil || resp.Dropped {
				col.Record(metrics.QueryRecord{ID: id, Arrival: at, Deadline: at + env.Spec.SLOSeconds, Dropped: true})
				return
			}
			col.Record(metrics.QueryRecord{
				ID: id, Arrival: at, Completion: resp.Completion,
				Deadline: at + env.Spec.SLOSeconds, Deferred: resp.Deferred,
				ServedBy: resp.Variant, Confidence: resp.Confidence,
				Features: resp.Features, Artifact: resp.Artifact,
			})
		}(i, at)
	}
	wg.Wait()
	fmt.Println("Trace ended")

	ref, err := fid.NewReference(realFeats)
	if err != nil {
		fatal(err)
	}
	sum := col.Summarize(ref)
	fmt.Printf("queries          %d\n", sum.Queries)
	fmt.Printf("FID              %.2f\n", sum.FID)
	fmt.Printf("SLO violations   %.3f (drops %.3f)\n", sum.ViolationRatio, sum.DropRatio)
	fmt.Printf("deferred         %.2f\n", sum.DeferRatio)
	fmt.Printf("latency mean/p99 %.2fs / %.2fs\n", sum.MeanLatency, sum.P99Latency)
}

func postJSON(c *http.Client, url string, in, out interface{}) error {
	return cluster.PostJSON(c, url, in, out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "diffserve-client:", err)
	os.Exit(1)
}
