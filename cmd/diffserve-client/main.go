// Command diffserve-client replays a workload trace against a running
// DiffServe cluster (the artifact's start_client.sh) and reports
// end-to-end quality and SLO statistics when the trace ends.
//
// The replay uses the batched data path: queries due at the same
// moment are submitted in one request over a persistent connection,
// and completions stream back through long-poll result fetches.
//
// Against a sharded LB tier, pass the full shard list via
// -shard-addrs (same order on every process): submissions are
// partitioned by query ID across the shards and results are merged
// back into one stream.
//
//	diffserve-client -lb http://localhost:8100 -trace trace_4to32qps.txt -timescale 0.1
//	diffserve-client -lb http://localhost:8100 -min 4 -max 32 -duration 360 -codec binary
//	diffserve-client -lb localhost:8100 -transport tcp -codec binary
//	diffserve-client -shard-addrs localhost:8100,localhost:8101 -transport tcp
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"diffserve/internal/baselines"
	"diffserve/internal/cluster"
	"diffserve/internal/fid"
	"diffserve/internal/metrics"
	"diffserve/internal/stats"
	"diffserve/internal/trace"
)

func main() {
	var (
		lbURL      = flag.String("lb", "http://localhost:8100", "load balancer base URL (host:port with -transport tcp)")
		shardAddrs = flag.String("shard-addrs", "", "comma-separated LB shard addresses; overrides -lb and partitions the replay across the shards")
		ringVNodes = flag.Int("ring-vnodes", 0, "virtual nodes per LB shard on the consistent-hash ring (0 = legacy static modulus); must match every peer")
		transport  = flag.String("transport", "http", "wire transport: http|tcp (raw framed TCP)")
		traceFile  = flag.String("trace", "", "trace file (empty: generate an Azure-like trace)")
		cascadeN   = flag.String("cascade", "cascade1", "cascade (for query content + SLO)")
		minQPS     = flag.Float64("min", 4, "generated trace minimum QPS")
		maxQPS     = flag.Float64("max", 32, "generated trace maximum QPS")
		duration   = flag.Float64("duration", 360, "generated trace duration (seconds)")
		seed       = flag.Uint64("seed", 20250610, "shared experiment seed")
		timescale  = flag.Float64("timescale", 0.1, "wall seconds per trace second")
		codecName  = flag.String("codec", "json", "wire codec: json|binary")
	)
	flag.Parse()

	env, err := baselines.NewEnv(*cascadeN, *seed, 500)
	if err != nil {
		fatal(err)
	}
	var tr *trace.Trace
	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			fatal(err)
		}
		tr, err = trace.Read(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	} else {
		raw, err := trace.AzureLike(stats.NewRNG(*seed+1), *duration, 1)
		if err != nil {
			fatal(err)
		}
		tr, err = raw.ScaleTo(*minQPS, *maxQPS)
		if err != nil {
			fatal(err)
		}
	}
	codec, err := cluster.CodecByName(*codecName)
	if err != nil {
		fatal(err)
	}

	arrivals := tr.Arrivals(stats.NewRNG(*seed + 17).Stream("trace"))
	fmt.Printf("diffserve-client: replaying %s (%d queries) at %gx speed, %s transport, %s codec\n",
		tr.Name(), len(arrivals), 1 / *timescale, *transport, codec.Name())

	clock := cluster.NewClock(*timescale)
	var conn cluster.LBConn
	if *shardAddrs != "" {
		frontend, err := cluster.DialShardedLB(*transport, *shardAddrs, codec, clock, *ringVNodes)
		if err != nil {
			fatal(err)
		}
		defer frontend.Close()
		conn = frontend
		fmt.Printf("diffserve-client: partitioning across %d LB shards\n", frontend.Shards())
	} else if conn, err = cluster.DialLB(*transport, *lbURL, codec); err != nil {
		fatal(err)
	}
	col := metrics.NewCollector()
	realFeats := make([][]float64, len(arrivals))
	for i := range arrivals {
		q := env.Space.SampleQuery(i)
		realFeats[i] = env.Space.RealImage(q)
	}

	// The collector stops at a hard deadline (trace end plus a drain
	// grace) even if some results never arrive — a lost long-poll
	// response loses its popped results, and an unbounded wait would
	// hang the binary. Unaccounted queries are recorded as drops,
	// like the old per-query path did on request errors.
	grace := 3*env.Spec.SLOSeconds + env.Heavy.Latency.Latency(env.Heavy.Latency.MaxBatch())
	wallDeadline := time.Now().Add(clock.WallDuration(tr.Duration()+grace) + 5*time.Second)
	ctx := context.Background()
	done := make(chan struct{})
	go func() { // collector: long-poll completions until all accounted
		defer close(done)
		seen := make(map[int]bool, len(arrivals))
		for len(seen) < len(arrivals) && time.Now().Before(wallDeadline) {
			resp, err := conn.PollResults(ctx, cluster.ResultsRequest{Max: 1024, Wait: 2})
			if err != nil {
				clock.SleepTrace(0.1)
				continue
			}
			// Arrival/Completion both come from the LB's trace clock:
			// the processes' clocks start at different wall times, so
			// only server-side stamps are mutually consistent.
			for _, r := range resp.Results {
				if seen[r.ID] {
					continue
				}
				seen[r.ID] = true
				if r.Dropped {
					col.Record(metrics.QueryRecord{ID: r.ID, Arrival: r.Arrival, Deadline: r.Arrival + env.Spec.SLOSeconds, Dropped: true})
					continue
				}
				col.Record(metrics.QueryRecord{
					ID: r.ID, Arrival: r.Arrival, Completion: r.Completion,
					Deadline: r.Arrival + env.Spec.SLOSeconds, Deferred: r.Deferred,
					ServedBy: r.Variant, Confidence: r.Confidence,
					Features: r.Features, Artifact: r.Artifact,
				})
			}
		}
		for id, at := range arrivals {
			if !seen[id] {
				col.Record(metrics.QueryRecord{ID: id, Arrival: at, Deadline: at + env.Spec.SLOSeconds, Dropped: true})
			}
		}
	}()

	batch := make([]cluster.QueryMsg, 0, 64)
	i := 0
	for i < len(arrivals) {
		clock.SleepTrace(arrivals[i] - clock.Now())
		now := clock.Now()
		batch = batch[:0]
		for i < len(arrivals) && arrivals[i] <= now {
			// Zero arrival: the LB stamps the query with its own trace
			// clock on admission. Sending the client's arrival value
			// would mix two clocks that started at different wall
			// times and shed everything as instantly expired.
			batch = append(batch, cluster.QueryMsg{ID: i})
			i++
		}
		if err := conn.SubmitBatch(ctx, cluster.SubmitRequest{Queries: batch}); err != nil {
			fatal(err)
		}
	}
	<-done
	fmt.Println("Trace ended")

	ref, err := fid.NewReference(realFeats)
	if err != nil {
		fatal(err)
	}
	sum := col.Summarize(ref)
	fmt.Printf("queries          %d\n", sum.Queries)
	fmt.Printf("FID              %.2f\n", sum.FID)
	fmt.Printf("SLO violations   %.3f (drops %.3f)\n", sum.ViolationRatio, sum.DropRatio)
	fmt.Printf("deferred         %.2f\n", sum.DeferRatio)
	fmt.Printf("latency mean/p99 %.2fs / %.2fs\n", sum.MeanLatency, sum.P99Latency)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "diffserve-client:", err)
	os.Exit(1)
}
