// Command diffserve-trace generates, scales, and inspects workload
// trace files in the artifact's trace_{A}to{B}qps format.
//
// Usage:
//
//	diffserve-trace -gen azure -duration 360 -min 4 -max 32 -o trace_4to32qps.txt
//	diffserve-trace -gen static -qps 10 -duration 120 -o steady.txt
//	diffserve-trace -scale trace.txt -min 1 -max 8 -o trace_1to8qps.txt
//	diffserve-trace -info trace_4to32qps.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"diffserve/internal/stats"
	"diffserve/internal/trace"
)

func main() {
	var (
		gen      = flag.String("gen", "", "generate a trace: azure|static")
		scale    = flag.String("scale", "", "trace file to rescale")
		info     = flag.String("info", "", "trace file to describe")
		out      = flag.String("o", "", "output file (default stdout)")
		duration = flag.Float64("duration", 360, "trace duration in seconds")
		interval = flag.Float64("interval", 1, "seconds per rate step")
		minQPS   = flag.Float64("min", 4, "minimum rate after scaling")
		maxQPS   = flag.Float64("max", 32, "maximum rate after scaling")
		qps      = flag.Float64("qps", 10, "rate for -gen static")
		seed     = flag.Uint64("seed", 20250610, "random seed for -gen azure")
	)
	flag.Parse()

	switch {
	case *info != "":
		tr := readTrace(*info)
		fmt.Printf("%s: %d steps x %gs, duration %.0fs\n", tr.Name(), len(tr.Rates), tr.Interval, tr.Duration())
		fmt.Printf("rates: min %.2f  mean %.2f  peak %.2f QPS\n", tr.MinRate(), tr.MeanRate(), tr.PeakRate())
		fmt.Printf("expected queries: %.0f\n", tr.ExpectedQueries())
	case *scale != "":
		tr := readTrace(*scale)
		scaled, err := tr.ScaleTo(*minQPS, *maxQPS)
		if err != nil {
			fatal(err)
		}
		writeTrace(*out, scaled)
	case *gen == "azure":
		raw, err := trace.AzureLike(stats.NewRNG(*seed), *duration, *interval)
		if err != nil {
			fatal(err)
		}
		scaled, err := raw.ScaleTo(*minQPS, *maxQPS)
		if err != nil {
			fatal(err)
		}
		writeTrace(*out, scaled)
	case *gen == "static":
		tr, err := trace.Static(*qps, *duration, *interval)
		if err != nil {
			fatal(err)
		}
		writeTrace(*out, tr)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func readTrace(path string) *trace.Trace {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	tr, err := trace.Read(f)
	if err != nil {
		fatal(err)
	}
	return tr
}

func writeTrace(path string, tr *trace.Trace) {
	w := os.Stdout
	if path != "" {
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := trace.Write(w, tr); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "diffserve-trace:", err)
	os.Exit(1)
}
