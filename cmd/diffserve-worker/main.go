// Command diffserve-worker runs one simulated GPU worker process (the
// artifact's start_worker.sh with --do_simulate).
//
// The worker pulls batches from the load balancer, sleeps for the
// profiled execution latency (timescale-adjusted), and reports
// generated images and discriminator confidences. All processes must
// share the same -seed so query content is regenerated consistently.
//
// With -transport=tcp the worker dials the load balancer over the raw
// framed-TCP protocol (-lb takes a host:port) and serves its own
// control plane over framed TCP as well.
//
// Against a sharded LB tier, pass the full shard list via
// -shard-addrs (same order on every process): the worker pins itself
// to shard (id mod len(addrs)) and pulls, completes, and defers only
// within that shard — the multi-host layout runs one shard plus its
// worker group per host with no cross-host data traffic.
//
// When the tier reshards (a ring epoch flip driven by the
// controller's admin RPC), every pull response carries the new ring
// epoch; a standalone worker logs the flip but keeps its static pin —
// re-pinning standalone workers onto new shard addresses is the
// operator's move (restart with the new -shard-addrs), while the
// in-process harness re-pins automatically.
//
// Data-path calls to the LB retry transient failures with jittered
// exponential backoff (-retry-attempts, -retry-base-ms), and a conn
// whose pulls keep failing is redialed in place (-redial-after); a
// completion report that exhausts -complete-retries abandons its
// batch to the LB's lease sweep, which re-queues the queries for
// another worker.
//
//	diffserve-worker -port 50051 -id 0 -lb http://localhost:8100 -cascade cascade1
//	diffserve-worker -port 50051 -id 0 -lb localhost:8100 -transport tcp -codec binary
//	diffserve-worker -port 50051 -id 3 -shard-addrs localhost:8100,localhost:8101 -transport tcp
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"diffserve/internal/baselines"
	"diffserve/internal/cluster"
)

func main() {
	var (
		port       = flag.Int("port", 50051, "listen port (control API)")
		id         = flag.Int("id", 0, "worker ID")
		lbURL      = flag.String("lb", "http://localhost:8100", "load balancer base URL (host:port with -transport tcp)")
		shardAddrs = flag.String("shard-addrs", "", "comma-separated LB shard addresses; the worker pins to shard (id mod count), overriding -lb")
		cascadeN   = flag.String("cascade", "cascade1", "cascade: cascade1|cascade2|cascade3")
		seed       = flag.Uint64("seed", 20250610, "shared experiment seed")
		timescale  = flag.Float64("timescale", 0.1, "wall seconds per trace second")
		fastLoad   = flag.Bool("fast-load", false, "skip model-switch load delays")
		transport  = flag.String("transport", "http", "wire transport to the LB and for the control API: http|tcp (raw framed TCP)")
		codecName  = flag.String("codec", "json", "wire codec to the LB: json|binary")

		retryAttempts = flag.Int("retry-attempts", 0, "tries per LB data-path call before the transient failure surfaces (0 = default 4, 1 disables retries)")
		retryBaseMs   = flag.Float64("retry-base-ms", 0, "first retry backoff in milliseconds, doubling with jitter up to a 50x cap (0 = default 5ms)")
		redialAfter   = flag.Int("redial-after", 0, "consecutive pull failures before the worker drops its LB conn and redials (0 = default 3, negative disables)")
		completeRetry = flag.Int("complete-retries", 0, "tries a completion report gets before its batch is abandoned to the lease sweep (0 = default 4)")
	)
	flag.Parse()

	env, err := baselines.NewEnv(*cascadeN, *seed, 2000)
	if err != nil {
		fatal(err)
	}
	codec, err := cluster.CodecByName(*codecName)
	if err != nil {
		fatal(err)
	}
	lbAddr := *lbURL
	if *shardAddrs != "" {
		addrs := cluster.SplitShardAddrs(*shardAddrs)
		if len(addrs) == 0 {
			fatal(fmt.Errorf("no shard addresses in -shard-addrs %q", *shardAddrs))
		}
		shard := *id % len(addrs)
		lbAddr = addrs[shard]
		fmt.Printf("diffserve-worker %d: pinned to LB shard %d of %d (%s)\n", *id, shard, len(addrs), lbAddr)
	}
	// Every data-path call retries transient failures with jittered
	// exponential backoff; the jitter stream is seeded per worker so a
	// fleet sharing a seed does not retry in lockstep.
	pol := cluster.RetryPolicy{
		Attempts: *retryAttempts,
		Base:     time.Duration(*retryBaseMs * float64(time.Millisecond)),
		Seed:     *seed ^ uint64(*id)<<32,
	}
	dialLB := func() (cluster.LBConn, error) {
		conn, err := cluster.DialLB(*transport, lbAddr, codec)
		if err != nil {
			return nil, err
		}
		return cluster.NewRetryingLBConn(conn, pol), nil
	}
	lbConn, err := dialLB()
	if err != nil {
		fatal(err)
	}
	clock := cluster.NewClock(*timescale)
	wcfg := cluster.WorkerConfig{
		ID: *id, LB: lbConn,
		Space: env.Space, Light: env.Light, Heavy: env.Heavy,
		Scorer: env.Scorer, Clock: clock,
		DisableLoadDelay: *fastLoad,
		CompleteRetries:  *completeRetry,
		// A standalone worker cannot dial shards it was never told
		// about, so an epoch flip is surfaced to the operator and the
		// static pin kept (nil return).
		RePin: func(epoch int) cluster.LBConn {
			fmt.Printf("diffserve-worker %d: LB tier resharded to ring epoch %d; keeping static pin %s (restart with the new -shard-addrs to re-pin)\n", *id, epoch, lbAddr)
			return nil
		},
	}
	if *redialAfter >= 0 {
		wcfg.RedialAfter = *redialAfter
		// A conn whose pulls keep failing past the threshold is dropped
		// for a fresh dial of the same shard address; keeping the old
		// conn (nil return) is the fallback when the redial itself fails.
		wcfg.Redial = func(epoch int) cluster.LBConn {
			conn, err := dialLB()
			if err != nil {
				fmt.Printf("diffserve-worker %d: redial of %s failed: %v (keeping the dead conn for the next round)\n", *id, lbAddr, err)
				return nil
			}
			fmt.Printf("diffserve-worker %d: redialed %s after repeated pull failures\n", *id, lbAddr)
			return conn
		}
	}
	ws := cluster.NewWorkerServer(wcfg)
	go ws.Loop(context.Background())

	addr := fmt.Sprintf(":%d", *port)
	fmt.Printf("diffserve-worker %d: ready on %s (%s transport, pulling from %s)\n", *id, addr, *transport, lbAddr)
	if *transport == cluster.TransportTCP {
		if _, err := cluster.ServeWorkerTCP(addr, ws); err != nil {
			fatal(err)
		}
		select {} // serve until the process is killed
	}
	if err := http.ListenAndServe(addr, ws.Mux()); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "diffserve-worker:", err)
	os.Exit(1)
}
