// Command diffserve-controller runs the DiffServe control plane as a
// standalone process (the artifact's start_controller.sh): it polls
// the load balancer's runtime statistics, re-solves the MILP resource
// allocation every control interval, and pushes plans to the load
// balancer and workers.
//
//	diffserve-controller -lb http://localhost:8100 \
//	    -workers http://localhost:50051,http://localhost:50052 \
//	    -cascade cascade1 -timescale 0.1
//
// With -transport=tcp the controller dials the load balancer and the
// workers over the raw framed-TCP protocol; -lb and -workers then
// take host:port addresses.
//
// Against a sharded LB tier, pass the full shard list via
// -shard-addrs (same order on every process): the controller
// broadcasts policy to every shard, merges their stats, and stripes
// worker roles so each shard keeps both pools served (worker i is
// assumed pinned to shard i mod shards, matching diffserve-worker's
// -shard-addrs behavior).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"diffserve/internal/allocator"
	"diffserve/internal/baselines"
	"diffserve/internal/cluster"
	"diffserve/internal/controller"
	"diffserve/internal/loadbalancer"
)

func main() {
	var (
		lbURL      = flag.String("lb", "http://localhost:8100", "load balancer base URL (host:port with -transport tcp)")
		shardAddrs = flag.String("shard-addrs", "", "comma-separated LB shard addresses; overrides -lb and enables shard-striped role assignment")
		workerCSV  = flag.String("workers", "", "comma-separated worker base URLs (host:port with -transport tcp)")
		transport  = flag.String("transport", "http", "wire transport to LB and workers: http|tcp (raw framed TCP)")
		cascadeN   = flag.String("cascade", "cascade1", "cascade: cascade1|cascade2|cascade3")
		slo        = flag.Float64("slo", 0, "SLO seconds (0 = cascade default)")
		seed       = flag.Uint64("seed", 20250610, "shared experiment seed")
		timescale  = flag.Float64("timescale", 0.1, "wall seconds per trace second")
		interval   = flag.Float64("interval", 2, "control period in trace seconds")
		codecName  = flag.String("codec", "json", "wire codec to LB and workers: json|binary")
	)
	flag.Parse()

	workerURLs := strings.Split(*workerCSV, ",")
	if *workerCSV == "" || len(workerURLs) == 0 {
		fatal(fmt.Errorf("need -workers URLs"))
	}

	env, err := baselines.NewEnv(*cascadeN, *seed, 2000)
	if err != nil {
		fatal(err)
	}
	deadline := env.Spec.SLOSeconds
	if *slo > 0 {
		deadline = *slo
	}
	alloc, err := allocator.NewMILP(allocator.Config{
		Light: env.Light, Heavy: env.Heavy,
		DiscPerImage: env.Scorer.PerImageLatency(),
		Deferral:     env.Deferral,
		TotalWorkers: len(workerURLs),
		SLO:          deadline,
	})
	if err != nil {
		fatal(err)
	}
	ctrl, err := controller.New(controller.Config{Alloc: alloc, Interval: *interval})
	if err != nil {
		fatal(err)
	}
	codec, err := cluster.CodecByName(*codecName)
	if err != nil {
		fatal(err)
	}
	clock := cluster.NewClock(*timescale)
	var lbConn cluster.LBConn
	shards := 1
	if *shardAddrs != "" {
		frontend, err := cluster.DialShardedLB(*transport, *shardAddrs, codec, clock)
		if err != nil {
			fatal(err)
		}
		lbConn, shards = frontend, frontend.Shards()
	} else if lbConn, err = cluster.DialLB(*transport, *lbURL, codec); err != nil {
		fatal(err)
	}
	workerConns := make([]cluster.WorkerConn, len(workerURLs))
	for i, u := range workerURLs {
		if workerConns[i], err = cluster.DialWorker(*transport, u, codec); err != nil {
			fatal(err)
		}
	}
	loop := cluster.NewControllerLoop(cluster.ControllerConfig{
		Ctrl: ctrl, LB: lbConn, Workers: workerConns,
		Mode: loadbalancer.ModeCascade, Clock: clock, Shards: shards,
	})
	fmt.Printf("diffserve-controller: %d workers, %d LB shard(s), SLO %.1fs, interval %.1fs\n",
		len(workerURLs), shards, deadline, *interval)
	loop.Run(context.Background())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "diffserve-controller:", err)
	os.Exit(1)
}
