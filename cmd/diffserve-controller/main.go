// Command diffserve-controller runs the DiffServe control plane as a
// standalone process (the artifact's start_controller.sh): it polls
// the load balancer's runtime statistics, re-solves the MILP resource
// allocation every control interval, and pushes plans to the load
// balancer and workers.
//
//	diffserve-controller -lb http://localhost:8100 \
//	    -workers http://localhost:50051,http://localhost:50052 \
//	    -cascade cascade1 -timescale 0.1
//
// With -transport=tcp the controller dials the load balancer and the
// workers over the raw framed-TCP protocol; -lb and -workers then
// take host:port addresses.
//
// Against a sharded LB tier, pass the full shard list via
// -shard-addrs (same order on every process): the controller
// broadcasts policy to every shard, merges their stats, and stripes
// worker roles so each shard keeps both pools served (worker i is
// assumed pinned to shard i mod shards, matching diffserve-worker's
// -shard-addrs behavior). With -ring-vnodes N the tier partitions by
// consistent-hash ring instead of the static modulus, which makes
// membership elastic: the -admin-port RPC can then add or remove a
// shard at runtime without restarting the tier —
//
//	curl -X POST localhost:9100/add-shard \
//	    -d '{"member": 2, "addr": "localhost:8102"}'
//	curl -X POST localhost:9100/remove-shard -d '{"member": 0}'
//
// The controller installs the new ring epoch on its frontend, drains
// a removed shard's queued work to the survivors, and re-stripes
// worker roles on the next control tick.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"

	"diffserve/internal/allocator"
	"diffserve/internal/baselines"
	"diffserve/internal/cluster"
	"diffserve/internal/controller"
	"diffserve/internal/loadbalancer"
)

func main() {
	var (
		lbURL      = flag.String("lb", "http://localhost:8100", "load balancer base URL (host:port with -transport tcp)")
		shardAddrs = flag.String("shard-addrs", "", "comma-separated LB shard addresses; overrides -lb and enables shard-striped role assignment")
		ringVNodes = flag.Int("ring-vnodes", 0, "virtual nodes per LB shard on the consistent-hash ring (0 = legacy static modulus); must match every peer")
		adminPort  = flag.Int("admin-port", 0, "admin API port for runtime add-shard/remove-shard (0 = disabled; needs -shard-addrs)")
		workerCSV  = flag.String("workers", "", "comma-separated worker base URLs (host:port with -transport tcp)")
		transport  = flag.String("transport", "http", "wire transport to LB and workers: http|tcp (raw framed TCP)")
		cascadeN   = flag.String("cascade", "cascade1", "cascade: cascade1|cascade2|cascade3")
		slo        = flag.Float64("slo", 0, "SLO seconds (0 = cascade default)")
		seed       = flag.Uint64("seed", 20250610, "shared experiment seed")
		timescale  = flag.Float64("timescale", 0.1, "wall seconds per trace second")
		interval   = flag.Float64("interval", 2, "control period in trace seconds")
		codecName  = flag.String("codec", "json", "wire codec to LB and workers: json|binary")
	)
	flag.Parse()

	workerURLs := strings.Split(*workerCSV, ",")
	if *workerCSV == "" || len(workerURLs) == 0 {
		fatal(fmt.Errorf("need -workers URLs"))
	}

	env, err := baselines.NewEnv(*cascadeN, *seed, 2000)
	if err != nil {
		fatal(err)
	}
	deadline := env.Spec.SLOSeconds
	if *slo > 0 {
		deadline = *slo
	}
	alloc, err := allocator.NewMILP(allocator.Config{
		Light: env.Light, Heavy: env.Heavy,
		DiscPerImage: env.Scorer.PerImageLatency(),
		Deferral:     env.Deferral,
		TotalWorkers: len(workerURLs),
		SLO:          deadline,
	})
	if err != nil {
		fatal(err)
	}
	ctrl, err := controller.New(controller.Config{Alloc: alloc, Interval: *interval})
	if err != nil {
		fatal(err)
	}
	codec, err := cluster.CodecByName(*codecName)
	if err != nil {
		fatal(err)
	}
	clock := cluster.NewClock(*timescale)
	var lbConn cluster.LBConn
	var frontend *cluster.ShardedLB
	shards := 1
	if *shardAddrs != "" {
		if frontend, err = cluster.DialShardedLB(*transport, *shardAddrs, codec, clock, *ringVNodes); err != nil {
			fatal(err)
		}
		lbConn, shards = frontend, frontend.Shards()
	} else if lbConn, err = cluster.DialLB(*transport, *lbURL, codec); err != nil {
		fatal(err)
	}
	workerConns := make([]cluster.WorkerConn, len(workerURLs))
	for i, u := range workerURLs {
		if workerConns[i], err = cluster.DialWorker(*transport, u, codec); err != nil {
			fatal(err)
		}
	}
	loop := cluster.NewControllerLoop(cluster.ControllerConfig{
		Ctrl: ctrl, LB: lbConn, Workers: workerConns,
		Mode: loadbalancer.ModeCascade, Clock: clock, Shards: shards,
	})
	if *adminPort > 0 {
		if frontend == nil {
			fatal(fmt.Errorf("-admin-port needs a sharded tier (-shard-addrs)"))
		}
		go serveAdmin(*adminPort, frontend, loop, *transport, codec)
	}
	fmt.Printf("diffserve-controller: %d workers, %d LB shard(s), SLO %.1fs, interval %.1fs\n",
		len(workerURLs), shards, deadline, *interval)
	loop.Run(context.Background())
}

// serveAdmin exposes the runtime resharding RPC: POST /add-shard
// {"member": N, "addr": "host:port"} dials the new shard and installs
// a grown ring epoch; POST /remove-shard {"member": N} shrinks the
// ring and migrates the departing shard's queued work. Role striping
// follows on the next control tick.
func serveAdmin(port int, fe *cluster.ShardedLB, loop *cluster.ControllerLoop, transport string, codec cluster.Codec) {
	type reshardReq struct {
		Member int    `json:"member"`
		Addr   string `json:"addr"`
	}
	reply := func(w http.ResponseWriter, err error) {
		if err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		loop.SetShards(fe.Shards())
		json.NewEncoder(w).Encode(map[string]interface{}{
			"epoch": fe.Epoch(), "members": fe.Members(),
		})
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/add-shard", func(w http.ResponseWriter, r *http.Request) {
		var req reshardReq
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		conn, err := cluster.DialLB(transport, req.Addr, codec)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		reply(w, fe.AddShard(r.Context(), req.Member, conn))
	})
	mux.HandleFunc("/remove-shard", func(w http.ResponseWriter, r *http.Request) {
		var req reshardReq
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		reply(w, fe.RemoveShard(r.Context(), req.Member))
	})
	mux.HandleFunc("/ring", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]interface{}{
			"epoch": fe.Epoch(), "members": fe.Members(),
		})
	})
	if err := http.ListenAndServe(fmt.Sprintf(":%d", port), mux); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "diffserve-controller:", err)
	os.Exit(1)
}
