// Cluster example: run the full DiffServe system as real networked
// components — a sharded load-balancer tier (two LB shards
// partitioning the query stream by ID hash), eight workers pinned to
// their shards, and the MILP controller — wired over loopback
// sockets, then replay a trace through the network data path at 10x
// speed. The example uses the raw framed-TCP transport (persistent
// multiplexed connections, binary codec), the fastest wire path; swap
// the Transport field for the HTTP or in-process alternatives, or set
// LBShards to 1 for the classic single-balancer topology.
//
//	go run ./examples/cluster
package main

import (
	"fmt"
	"log"

	"diffserve/internal/allocator"
	"diffserve/internal/baselines"
	"diffserve/internal/cluster"
	"diffserve/internal/controller"
	"diffserve/internal/loadbalancer"
	"diffserve/internal/stats"
	"diffserve/internal/trace"
)

func main() {
	const workers = 8

	env, err := baselines.NewEnv("cascade1", 42, 1500)
	if err != nil {
		log.Fatal(err)
	}
	raw, err := trace.AzureLike(stats.NewRNG(7), 120, 1)
	if err != nil {
		log.Fatal(err)
	}
	tr, err := raw.ScaleTo(4, 16)
	if err != nil {
		log.Fatal(err)
	}

	alloc, err := allocator.NewMILP(allocator.Config{
		Light: env.Light, Heavy: env.Heavy,
		DiscPerImage: env.Scorer.PerImageLatency(),
		Deferral:     env.Deferral,
		TotalWorkers: workers,
		SLO:          env.Spec.SLOSeconds,
	})
	if err != nil {
		log.Fatal(err)
	}
	ctrl, err := controller.New(controller.Config{Alloc: alloc})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("replaying %s through 2 LB shards + %d workers + controller over raw TCP with the binary codec (10x speed)...\n",
		tr.Name(), workers)
	res, err := cluster.Run(cluster.HarnessConfig{
		Space: env.Space, Light: env.Light, Heavy: env.Heavy, Scorer: env.Scorer,
		Mode: loadbalancer.ModeCascade, Workers: workers, SLO: env.Spec.SLOSeconds,
		Trace: tr, Ctrl: ctrl, Timescale: 0.1, Seed: 99,
		DisableLoadDelay: true,
		// Other transports: cluster.TransportBinary (HTTP + binary
		// codec), cluster.TransportJSON (the pre-codec wire format),
		// and cluster.TransportInproc (zero-serialization direct
		// dispatch for maximum replay speed).
		Transport: cluster.TransportTCP,
		// Sharded LB tier: queries are partitioned by ID hash across
		// two independent balancer shards; each worker pins to the
		// shard (worker ID mod 2) and the client merges both result
		// streams.
		LBShards: 2,
	})
	if err != nil {
		log.Fatal(err)
	}

	sum := res.Summary()
	fmt.Printf("\ncompleted in %.1fs wall time (%s transport, %d LB shards)\n", res.WallSeconds, res.Transport, res.LBShards)
	fmt.Printf("queries          %d\n", sum.Queries)
	fmt.Printf("FID              %.2f\n", sum.FID)
	fmt.Printf("SLO violations   %.3f (drops %.3f)\n", sum.ViolationRatio, sum.DropRatio)
	fmt.Printf("deferred         %.2f\n", sum.DeferRatio)
	fmt.Printf("latency mean/p99 %.2fs / %.2fs\n", sum.MeanLatency, sum.P99Latency)
	fmt.Printf("plans applied    %d\n", len(res.Plans))
}
