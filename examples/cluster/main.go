// Cluster example: run the full DiffServe system as real networked
// components — a sharded load-balancer tier (two LB shards
// partitioning the query stream on a consistent-hash ring), eight
// workers pinned to their shards, and the MILP controller — wired
// over loopback sockets, then replay a trace through the network data
// path at 10x speed, growing the tier to three shards mid-trace: the
// reshard installs a new ring epoch, workers re-pin off the epoch
// their pull responses carry, and the controller re-stripes roles.
// The example uses the raw framed-TCP transport (persistent
// multiplexed connections, binary codec), the fastest wire path; swap
// the Transport field for the HTTP or in-process alternatives, or set
// LBShards to 1 (and drop Reshard) for the classic single-balancer
// topology.
//
//	go run ./examples/cluster
package main

import (
	"fmt"
	"log"

	"diffserve/internal/allocator"
	"diffserve/internal/baselines"
	"diffserve/internal/cluster"
	"diffserve/internal/controller"
	"diffserve/internal/loadbalancer"
	"diffserve/internal/stats"
	"diffserve/internal/trace"
)

func main() {
	const workers = 8

	env, err := baselines.NewEnv("cascade1", 42, 1500)
	if err != nil {
		log.Fatal(err)
	}
	raw, err := trace.AzureLike(stats.NewRNG(7), 120, 1)
	if err != nil {
		log.Fatal(err)
	}
	tr, err := raw.ScaleTo(4, 16)
	if err != nil {
		log.Fatal(err)
	}

	alloc, err := allocator.NewMILP(allocator.Config{
		Light: env.Light, Heavy: env.Heavy,
		DiscPerImage: env.Scorer.PerImageLatency(),
		Deferral:     env.Deferral,
		TotalWorkers: workers,
		SLO:          env.Spec.SLOSeconds,
	})
	if err != nil {
		log.Fatal(err)
	}
	ctrl, err := controller.New(controller.Config{Alloc: alloc})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("replaying %s through 2 LB shards (growing to 3 at t=60s) + %d workers + controller over raw TCP with the binary codec (10x speed)...\n",
		tr.Name(), workers)
	res, err := cluster.Run(cluster.HarnessConfig{
		Space: env.Space, Light: env.Light, Heavy: env.Heavy, Scorer: env.Scorer,
		Mode: loadbalancer.ModeCascade, Workers: workers, SLO: env.Spec.SLOSeconds,
		Trace: tr, Ctrl: ctrl, Timescale: 0.1, Seed: 99,
		DisableLoadDelay: true,
		// Other transports: cluster.TransportBinary (HTTP + binary
		// codec), cluster.TransportJSON (the pre-codec wire format),
		// and cluster.TransportInproc (zero-serialization direct
		// dispatch for maximum replay speed).
		Transport: cluster.TransportTCP,
		// Sharded LB tier: queries are partitioned across independent
		// balancer shards on a consistent-hash ring (128 virtual nodes
		// per shard); each worker pins to its member of the current
		// ring and the client merges every shard's result stream.
		LBShards:   2,
		RingVNodes: 128,
		// Mid-trace resharding: at t=60s a third shard joins. The ring
		// epoch flips atomically for submit batches, ~1/3 of the key
		// space moves to the new shard, and the workers and role plan
		// follow within a pull round trip.
		Reshard: []cluster.ReshardEvent{{At: 60, Action: "add", Member: 2}},
	})
	if err != nil {
		log.Fatal(err)
	}

	sum := res.Summary()
	fmt.Printf("\ncompleted in %.1fs wall time (%s transport, %d LB shards)\n", res.WallSeconds, res.Transport, res.LBShards)
	fmt.Printf("queries          %d\n", sum.Queries)
	fmt.Printf("FID              %.2f\n", sum.FID)
	fmt.Printf("SLO violations   %.3f (drops %.3f)\n", sum.ViolationRatio, sum.DropRatio)
	fmt.Printf("deferred         %.2f\n", sum.DeferRatio)
	fmt.Printf("latency mean/p99 %.2fs / %.2fs\n", sum.MeanLatency, sum.P99Latency)
	fmt.Printf("plans applied    %d\n", len(res.Plans))
}
