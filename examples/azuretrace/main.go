// Azure-trace walkthrough: watch DiffServe's controller adapt the
// confidence threshold and worker split as an Azure Functions-shaped
// diurnal workload ramps from 4 to 32 QPS and back — the paper's
// Figure 5 scenario.
//
//	go run ./examples/azuretrace
package main

import (
	"fmt"
	"log"

	"diffserve"
)

func main() {
	report, err := diffserve.Serve(diffserve.Config{
		Cascade:              "cascade1",
		Approach:             diffserve.DiffServe,
		Workers:              16,
		TraceMinQPS:          4,
		TraceMaxQPS:          32,
		TraceDurationSeconds: 360,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("DiffServe on the Azure-shaped trace (cascade 1, SLO 5s)")
	fmt.Printf("overall: FID %.2f, violations %.3f, deferred %.2f\n\n",
		report.FID, report.SLOViolationRatio, report.DeferRatio)

	fmt.Println("timeline — demand vs. quality vs. violations:")
	fmt.Printf("%6s %8s %8s %8s %8s\n", "t(s)", "demand", "FID", "viol", "defer")
	for _, p := range report.Timeline {
		fmt.Printf("%6.0f %8.1f %8.2f %8.3f %8.2f\n",
			p.StartSeconds, p.DemandQPS, p.FID, p.ViolationRatio, p.DeferRatio)
	}

	fmt.Println("\ncontroller decisions (every 5th plan):")
	fmt.Printf("%6s %8s %10s %8s %16s\n", "t(s)", "demand", "threshold", "defer", "light/heavy")
	for i, p := range report.Plans {
		if i%5 != 0 {
			continue
		}
		fmt.Printf("%6.0f %8.1f %10.3f %8.2f %9dx b%-2d/%dx b%-2d\n",
			p.TimeSeconds, p.DemandQPS, p.Threshold, p.DeferFraction,
			p.LightWorkers, p.LightBatch, p.HeavyWorkers, p.HeavyBatch)
	}
}
