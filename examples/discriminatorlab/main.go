// Discriminator lab: compare every cascade-scoring design from the
// paper — the trained discriminators (EfficientNet/ResNet/ViT, trained
// against ground-truth or heavy-model "real" samples) and the
// PickScore/CLIPScore/Random baselines — on routing quality for the
// SD-Turbo -> SDv1.5 cascade.
//
//	go run ./examples/discriminatorlab
package main

import (
	"fmt"
	"log"

	"diffserve/internal/cascade"
	"diffserve/internal/discriminator"
	"diffserve/internal/fid"
	"diffserve/internal/imagespace"
	"diffserve/internal/model"
	"diffserve/internal/stats"
)

func main() {
	rng := stats.NewRNG(11)
	space, err := imagespace.NewSpace(imagespace.DefaultSpaceConfig(), rng.Stream("space"))
	if err != nil {
		log.Fatal(err)
	}
	reg := model.BuiltinRegistry()
	light, heavy := reg.MustGet("sdturbo"), reg.MustGet("sdv15")
	queries := space.SampleQueries(0, 3000)
	real := make([][]float64, len(queries))
	for i, q := range queries {
		real[i] = space.RealImage(q)
	}
	ref, err := fid.NewReference(real)
	if err != nil {
		log.Fatal(err)
	}

	heavyMean := space.MeanArtifact(heavy.Gen)
	scorers := []discriminator.Scorer{
		mustDisc(discriminator.Config{Arch: discriminator.ArchEfficientNet, Train: discriminator.TrainGT}, rng),
		mustDisc(discriminator.Config{Arch: discriminator.ArchViT, Train: discriminator.TrainGT}, rng),
		mustDisc(discriminator.Config{Arch: discriminator.ArchResNet, Train: discriminator.TrainGT}, rng),
		mustDisc(discriminator.Config{Arch: discriminator.ArchEfficientNet, Train: discriminator.TrainFake, HeavyMeanArtifact: heavyMean}, rng),
		discriminator.NewPickScore(rng),
		discriminator.NewClipScore(rng),
		discriminator.NewRandom(rng),
		discriminator.NewOracle(),
	}

	fmt.Println("cascade SD-Turbo -> SDv1.5, 3000 queries, 50% deferral")
	fmt.Printf("%-20s %10s %10s\n", "scorer", "FID@f=0.5", "latency/img")
	for _, s := range scorers {
		c, err := cascade.New(space, light, heavy, s)
		if err != nil {
			log.Fatal(err)
		}
		prof, err := cascade.ProfileDeferral(c, queries)
		if err != nil {
			log.Fatal(err)
		}
		thr := prof.ThresholdForFraction(0.5)
		feats := make([][]float64, len(queries))
		for i, q := range queries {
			feats[i] = c.Process(q, thr).Served.Features
		}
		score, err := ref.Score(feats)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-20s %10.2f %9.0fms\n", s.Name(), score, s.PerImageLatency()*1000)
	}
	fmt.Println("\nlower FID is better; the paper's choice (EfficientNet w GT) should")
	fmt.Println("lead every practical design, with only the cheating Oracle ahead.")
}

func mustDisc(cfg discriminator.Config, rng *stats.RNG) discriminator.Scorer {
	d, err := discriminator.New(cfg, rng)
	if err != nil {
		log.Fatal(err)
	}
	return d
}
