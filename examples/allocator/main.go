// Allocator walkthrough: watch the MILP resource allocator trade the
// confidence threshold against worker placement and batch sizes as
// demand sweeps from idle to overload — the paper's §3.3 optimization
// in isolation.
//
//	go run ./examples/allocator
package main

import (
	"fmt"
	"log"

	"diffserve/internal/allocator"
	"diffserve/internal/baselines"
)

func main() {
	env, err := baselines.NewEnv("cascade1", 2026, 2000)
	if err != nil {
		log.Fatal(err)
	}
	milp, err := allocator.NewMILP(allocator.Config{
		Light: env.Light, Heavy: env.Heavy,
		DiscPerImage: env.Scorer.PerImageLatency(),
		Deferral:     env.Deferral,
		TotalWorkers: 16,
		SLO:          env.Spec.SLOSeconds,
	})
	if err != nil {
		log.Fatal(err)
	}
	grid, err := allocator.NewGrid(milp.Config())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("DiffServe MILP allocation across a demand sweep (16 workers, SLO 5s)")
	fmt.Printf("%8s | %10s %7s | %12s %12s | %9s | %s\n",
		"demand", "threshold", "f(t)", "light", "heavy", "solve", "grid agrees")
	for _, demand := range []float64{2, 4, 8, 12, 16, 20, 24, 28, 32, 40, 60, 120} {
		obs := allocator.Observation{Demand: demand}
		plan, err := milp.Allocate(obs)
		if err != nil {
			log.Fatal(err)
		}
		gp, err := grid.Allocate(obs)
		if err != nil {
			log.Fatal(err)
		}
		agrees := "yes"
		if plan.Feasible != gp.Feasible || (plan.Feasible && plan.Threshold != gp.Threshold) {
			agrees = "NO"
		}
		status := fmt.Sprintf("%10.3f", plan.Threshold)
		if !plan.Feasible {
			status = " overloaded"
		}
		fmt.Printf("%6.0fqps | %s %7.2f | %8dx b%-2d %8dx b%-2d | %7.1fms | %s\n",
			demand, status, plan.DeferFraction,
			plan.LightWorkers, plan.LightBatch, plan.HeavyWorkers, plan.HeavyBatch,
			plan.SolveTime.Seconds()*1000, agrees)
	}
	fmt.Println("\nhigher demand -> lower threshold (less deferral) until the system")
	fmt.Println("falls back to all-light best effort: query-aware model scaling.")
}
