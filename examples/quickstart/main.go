// Quickstart: serve a dynamic text-to-image workload with DiffServe
// and compare it against the all-heavy baseline.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"diffserve"
)

func main() {
	cfg := diffserve.Config{
		Cascade:              "cascade1", // SD-Turbo cascaded into SDv1.5
		Workers:              16,
		TraceMinQPS:          4,
		TraceMaxQPS:          32,
		TraceDurationSeconds: 180,
	}

	cfg.Approach = diffserve.DiffServe
	ours, err := diffserve.Serve(cfg)
	if err != nil {
		log.Fatal(err)
	}
	cfg.Approach = diffserve.ClipperHeavy
	heavy, err := diffserve.Serve(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("served %d queries on a %g-%g QPS diurnal trace\n\n",
		ours.Queries, cfg.TraceMinQPS, cfg.TraceMaxQPS)
	fmt.Printf("%-14s %8s %12s %10s\n", "approach", "FID", "violations", "deferred")
	for _, r := range []*diffserve.Report{ours, heavy} {
		fmt.Printf("%-14s %8.2f %12.3f %10.2f\n",
			r.Approach, r.FID, r.SLOViolationRatio, r.DeferRatio)
	}
	fmt.Printf("\nDiffServe quality improvement over Clipper-Heavy: %.1f%%\n",
		diffserve.QualityImprovementPct(ours, heavy))
	fmt.Printf("DiffServe violation reduction: %.1fx\n",
		heavy.SLOViolationRatio/maxF(ours.SLOViolationRatio, 1e-6))
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
