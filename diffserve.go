package diffserve

import (
	"fmt"
	"math"

	"diffserve/internal/baselines"
	"diffserve/internal/stats"
	"diffserve/internal/trace"
)

// Approach selects a serving policy.
type Approach string

// Serving approaches from the paper's evaluation (Table 1) plus the
// §4.5 allocator ablations.
const (
	ClipperLight    Approach = "clipper-light"
	ClipperHeavy    Approach = "clipper-heavy"
	Proteus         Approach = "proteus"
	DiffServeStatic Approach = "diffserve-static"
	DiffServe       Approach = "diffserve"

	AblationStaticThreshold Approach = "diffserve-static-threshold"
	AblationAIMD            Approach = "diffserve-aimd"
	AblationNoQueue         Approach = "diffserve-no-queue"
)

// Approaches lists the five headline approaches in presentation order.
func Approaches() []Approach {
	return []Approach{ClipperLight, ClipperHeavy, Proteus, DiffServeStatic, DiffServe}
}

// Config describes one serving run.
type Config struct {
	// Cascade names the light-heavy pair: "cascade1" (SD-Turbo +
	// SDv1.5), "cascade2" (SDXS + SDv1.5), or "cascade3"
	// (SDXL-Lightning + SDXL). Default "cascade1".
	Cascade string
	// Approach selects the serving policy. Default DiffServe.
	Approach Approach
	// Workers is the GPU budget. Default 16 (the paper's testbed).
	Workers int
	// SLOSeconds overrides the cascade's default deadline.
	SLOSeconds float64
	// Seed makes the run reproducible. Default 20250610.
	Seed uint64

	// Workload: either a constant load (StaticQPS > 0) or an
	// Azure-shaped diurnal trace between TraceMinQPS and TraceMaxQPS.
	StaticQPS                float64
	TraceMinQPS, TraceMaxQPS float64
	// TraceDurationSeconds is the workload length. Default 360.
	TraceDurationSeconds float64
}

func (c Config) withDefaults() Config {
	if c.Cascade == "" {
		c.Cascade = "cascade1"
	}
	if c.Approach == "" {
		c.Approach = DiffServe
	}
	if c.Seed == 0 {
		c.Seed = 20250610
	}
	if c.TraceDurationSeconds <= 0 {
		c.TraceDurationSeconds = 360
	}
	if c.StaticQPS <= 0 && c.TraceMaxQPS <= 0 {
		c.TraceMinQPS, c.TraceMaxQPS = 4, 32
	}
	return c
}

// TimelinePoint is one 10-second window of a serving run.
type TimelinePoint struct {
	StartSeconds   float64
	DemandQPS      float64
	FID            float64 // NaN when too few images completed
	ViolationRatio float64
	DeferRatio     float64
}

// PlanDecision is one controller allocation decision.
type PlanDecision struct {
	TimeSeconds   float64
	DemandQPS     float64
	Threshold     float64
	DeferFraction float64
	LightWorkers  int
	HeavyWorkers  int
	LightBatch    int
	HeavyBatch    int
	Feasible      bool
}

// Report is the outcome of a serving run.
type Report struct {
	Approach          Approach
	Cascade           string
	Queries           int
	FID               float64
	SLOViolationRatio float64
	DropRatio         float64
	DeferRatio        float64
	MeanLatency       float64
	P99Latency        float64
	Timeline          []TimelinePoint
	Plans             []PlanDecision
}

// Serve runs one serving configuration through the discrete-event
// simulator and reports quality and SLO statistics.
func Serve(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	env, err := baselines.NewEnv(cfg.Cascade, cfg.Seed, 2000)
	if err != nil {
		return nil, err
	}
	var tr *trace.Trace
	if cfg.StaticQPS > 0 {
		tr, err = trace.Static(cfg.StaticQPS, cfg.TraceDurationSeconds, 1)
	} else {
		var raw *trace.Trace
		raw, err = trace.AzureLike(stats.NewRNG(cfg.Seed+1), cfg.TraceDurationSeconds, 1)
		if err == nil {
			tr, err = raw.ScaleTo(cfg.TraceMinQPS, cfg.TraceMaxQPS)
		}
	}
	if err != nil {
		return nil, err
	}
	sys, err := env.NewSystem(baselines.Approach(cfg.Approach), tr, baselines.Options{
		Workers: cfg.Workers,
		SLO:     cfg.SLOSeconds,
	})
	if err != nil {
		return nil, err
	}
	res, err := sys.Run()
	if err != nil {
		return nil, err
	}
	sum := res.Collector.Summarize(res.Reference)
	report := &Report{
		Approach:          cfg.Approach,
		Cascade:           cfg.Cascade,
		Queries:           sum.Queries,
		FID:               sum.FID,
		SLOViolationRatio: sum.ViolationRatio,
		DropRatio:         sum.DropRatio,
		DeferRatio:        sum.DeferRatio,
		MeanLatency:       sum.MeanLatency,
		P99Latency:        sum.P99Latency,
	}
	buckets, err := res.Collector.Timeline(10, res.Reference, 48)
	if err != nil {
		return nil, err
	}
	for _, b := range buckets {
		report.Timeline = append(report.Timeline, TimelinePoint{
			StartSeconds: b.Start, DemandQPS: b.DemandQPS,
			FID: b.FID, ViolationRatio: b.ViolationRatio, DeferRatio: b.DeferRatio,
		})
	}
	for _, pa := range res.Plans {
		report.Plans = append(report.Plans, PlanDecision{
			TimeSeconds: pa.Time, DemandQPS: pa.Demand,
			Threshold: pa.Plan.Threshold, DeferFraction: pa.Plan.DeferFraction,
			LightWorkers: pa.Plan.LightWorkers, HeavyWorkers: pa.Plan.HeavyWorkers,
			LightBatch: pa.Plan.LightBatch, HeavyBatch: pa.Plan.HeavyBatch,
			Feasible: pa.Plan.Feasible,
		})
	}
	return report, nil
}

// Compare runs every headline approach on the same workload and
// returns the reports in presentation order.
func Compare(cfg Config) ([]*Report, error) {
	var out []*Report
	for _, app := range Approaches() {
		c := cfg
		c.Approach = app
		r, err := Serve(c)
		if err != nil {
			return nil, fmt.Errorf("diffserve: %s: %w", app, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// QualityImprovementPct returns the FID improvement of a over b in
// percent (positive means a is better). NaN inputs yield NaN.
func QualityImprovementPct(a, b *Report) float64 {
	if b.FID == 0 || math.IsNaN(a.FID) || math.IsNaN(b.FID) {
		return math.NaN()
	}
	return 100 * (b.FID - a.FID) / b.FID
}
