module diffserve

go 1.22
