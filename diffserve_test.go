package diffserve

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestServeDefaults(t *testing.T) {
	report, err := Serve(Config{
		StaticQPS:            6,
		TraceDurationSeconds: 40,
		Workers:              8,
		Seed:                 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Approach != DiffServe || report.Cascade != "cascade1" {
		t.Errorf("defaults wrong: %s/%s", report.Approach, report.Cascade)
	}
	if report.Queries == 0 {
		t.Fatal("no queries served")
	}
	if math.IsNaN(report.FID) {
		t.Error("FID missing")
	}
	if len(report.Timeline) == 0 || len(report.Plans) == 0 {
		t.Error("timeline or plans missing")
	}
}

func TestServeUnknownCascade(t *testing.T) {
	if _, err := Serve(Config{Cascade: "cascade9"}); err == nil {
		t.Error("unknown cascade should fail")
	}
}

func TestServeUnknownApproach(t *testing.T) {
	if _, err := Serve(Config{Approach: "bogus", StaticQPS: 2, TraceDurationSeconds: 10}); err == nil {
		t.Error("unknown approach should fail")
	}
}

func TestCompareOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("compare run skipped in -short mode")
	}
	reports, err := Compare(Config{
		TraceMinQPS: 4, TraceMaxQPS: 20,
		TraceDurationSeconds: 90,
		Workers:              8,
		Seed:                 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != len(Approaches()) {
		t.Fatalf("reports = %d", len(reports))
	}
	byApp := map[Approach]*Report{}
	for _, r := range reports {
		byApp[r.Approach] = r
	}
	// DiffServe quality must beat the query-agnostic baselines.
	dd := byApp[DiffServe]
	for _, other := range []Approach{ClipperLight, Proteus} {
		if imp := QualityImprovementPct(dd, byApp[other]); !(imp > 0) {
			t.Errorf("DiffServe should improve on %s, got %.1f%%", other, imp)
		}
	}
}

func TestQualityImprovementPct(t *testing.T) {
	a := &Report{FID: 16}
	b := &Report{FID: 20}
	if got := QualityImprovementPct(a, b); math.Abs(got-20) > 1e-9 {
		t.Errorf("improvement = %v, want 20", got)
	}
	if !math.IsNaN(QualityImprovementPct(a, &Report{FID: 0})) {
		t.Error("zero base should be NaN")
	}
}

func TestRunExperimentTable1(t *testing.T) {
	var buf bytes.Buffer
	if err := RunExperiment("table1", ExperimentConfig{}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Query-aware") {
		t.Error("table 1 render missing content")
	}
}

func TestRunExperimentUnknown(t *testing.T) {
	var buf bytes.Buffer
	if err := RunExperiment("fig99", ExperimentConfig{}, &buf); err == nil {
		t.Error("unknown experiment should fail")
	}
}

func TestRunExperimentShort(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run skipped in -short mode")
	}
	var buf bytes.Buffer
	if err := RunExperiment("fig1b", ExperimentConfig{Short: true, Seed: 3}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Figure 1b") {
		t.Error("fig1b output missing")
	}
}

func TestExperimentNames(t *testing.T) {
	names := ExperimentNames()
	want := map[string]bool{"fig1a": true, "fig5": true, "table1": true, "all": true, "milp": true, "sim-vs-cluster": true}
	have := map[string]bool{}
	for _, n := range names {
		have[n] = true
	}
	for n := range want {
		if !have[n] {
			t.Errorf("missing experiment %q", n)
		}
	}
}
