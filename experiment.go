package diffserve

import (
	"fmt"
	"io"
	"sort"

	"diffserve/internal/experiments"
)

// ExperimentConfig sizes experiment reproduction runs.
type ExperimentConfig struct {
	// Seed drives all randomness (default 20250610).
	Seed uint64
	// Queries is the offline evaluation set size (default 5000).
	Queries int
	// Workers is the cluster size (default 16).
	Workers int
	// TraceDurationSeconds is the dynamic trace length (default 360).
	TraceDurationSeconds float64
	// Short shrinks everything for quick runs.
	Short bool
	// ClusterTransport selects the cluster runtime's wire path for
	// the sim-vs-cluster experiment: "json" (default), "binary",
	// "tcp", or "inproc".
	ClusterTransport string
	// ClusterLBShards runs the sim-vs-cluster experiment's cluster
	// side through the sharded LB tier with this many shards (0 or 1:
	// the single-LB topology) and adds single-vs-sharded and
	// mid-trace-resharding outcome parity checks.
	ClusterLBShards int
	// ClusterRingVNodes selects the sharded tier's consistent-hash
	// ring density (0 = legacy static modulus for the static runs;
	// the resharding parity leg defaults to 128).
	ClusterRingVNodes int
}

func (c ExperimentConfig) internal() experiments.Config {
	return experiments.Config{
		Seed:              c.Seed,
		Queries:           c.Queries,
		Workers:           c.Workers,
		TraceDuration:     c.TraceDurationSeconds,
		Short:             c.Short,
		ClusterTransport:  c.ClusterTransport,
		ClusterLBShards:   c.ClusterLBShards,
		ClusterRingVNodes: c.ClusterRingVNodes,
	}
}

// renderable is an experiment result that can print itself.
type renderable interface{ Render(io.Writer) }

// experimentRunners maps experiment names to their runners.
var experimentRunners = map[string]func(experiments.Config) (renderable, error){
	"fig1a": func(c experiments.Config) (renderable, error) { return experiments.Fig1a(c) },
	"fig1b": func(c experiments.Config) (renderable, error) { return experiments.Fig1b(c) },
	"fig1c": func(c experiments.Config) (renderable, error) { return experiments.Fig1c(c) },
	"fig4":  func(c experiments.Config) (renderable, error) { return experiments.Fig4(c) },
	"fig5":  func(c experiments.Config) (renderable, error) { return experiments.Fig5(c) },
	"fig6":  func(c experiments.Config) (renderable, error) { return experiments.Fig6(c) },
	"fig7":  func(c experiments.Config) (renderable, error) { return experiments.Fig7(c) },
	"fig8":  func(c experiments.Config) (renderable, error) { return experiments.Fig8(c) },
	"fig9":  func(c experiments.Config) (renderable, error) { return experiments.Fig9(c) },
	"milp":  func(c experiments.Config) (renderable, error) { return experiments.MILPOverhead(c) },
	"sim-vs-cluster": func(c experiments.Config) (renderable, error) {
		return experiments.SimVsCluster(c)
	},
	"reuse": func(c experiments.Config) (renderable, error) {
		return experiments.ReuseStudy(c)
	},
	"multilevel": func(c experiments.Config) (renderable, error) {
		return experiments.MultiLevelStudy(c)
	},
}

// ExperimentNames lists all runnable experiments, sorted, including
// "table1" and the meta-experiment "all".
func ExperimentNames() []string {
	names := []string{"table1"}
	for n := range experimentRunners {
		names = append(names, n)
	}
	sort.Strings(names)
	return append(names, "all")
}

// RunExperiment regenerates the named table or figure of the paper and
// renders it to w. Name "all" runs everything in order.
func RunExperiment(name string, cfg ExperimentConfig, w io.Writer) error {
	if name == "all" {
		for _, n := range ExperimentNames() {
			if n == "all" {
				continue
			}
			if err := RunExperiment(n, cfg, w); err != nil {
				return err
			}
			fmt.Fprintln(w)
		}
		return nil
	}
	if name == "table1" {
		experiments.RenderTable1(w)
		return nil
	}
	run, ok := experimentRunners[name]
	if !ok {
		return fmt.Errorf("diffserve: unknown experiment %q (have %v)", name, ExperimentNames())
	}
	res, err := run(cfg.internal())
	if err != nil {
		return fmt.Errorf("diffserve: experiment %s: %w", name, err)
	}
	res.Render(w)
	return nil
}
