package diffserve_test

import (
	"fmt"
	"os"

	"diffserve"
)

// ExampleServe runs DiffServe on a short constant-rate workload and
// reports SLO compliance. (FID varies by a few hundredths across Go
// releases' math/rand usage, so the example prints only stable facts.)
func ExampleServe() {
	report, err := diffserve.Serve(diffserve.Config{
		Cascade:              "cascade1",
		Approach:             diffserve.DiffServe,
		Workers:              8,
		StaticQPS:            6,
		TraceDurationSeconds: 30,
		Seed:                 1,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("cascade: %s\n", report.Cascade)
	fmt.Printf("served everything: %v\n", report.Queries > 0 && report.DropRatio == 0)
	fmt.Printf("quality better than all-light baseline: %v\n", report.FID < 22)
	// Output:
	// cascade: cascade1
	// served everything: true
	// quality better than all-light baseline: true
}

// ExampleRunExperiment regenerates the paper's Table 1.
func ExampleRunExperiment() {
	if err := diffserve.RunExperiment("table1", diffserve.ExperimentConfig{}, os.Stdout); err != nil {
		fmt.Println("error:", err)
	}
	// Output:
	// Table 1 — Comparison of DiffServe with baselines
	// Approach           Allocation Query-aware
	// Clipper-Light      Static     No
	// Clipper-Heavy      Static     No
	// Proteus            Dynamic    No
	// DiffServe-Static   Static     Yes
	// DiffServe          Dynamic    Yes
}
