package allocator

import (
	"math"
	"testing"

	"diffserve/internal/cascade"
	"diffserve/internal/discriminator"
	"diffserve/internal/imagespace"
	"diffserve/internal/model"
	"diffserve/internal/stats"
)

// buildConfig assembles a realistic cascade-1 allocator config backed
// by a profiled deferral curve.
func buildConfig(t testing.TB, workers int, slo float64) Config {
	t.Helper()
	rng := stats.NewRNG(2026)
	space, err := imagespace.NewSpace(imagespace.DefaultSpaceConfig(), rng.Stream("space"))
	if err != nil {
		t.Fatal(err)
	}
	reg := model.BuiltinRegistry()
	light, heavy := reg.MustGet("sdturbo"), reg.MustGet("sdv15")
	d, err := discriminator.New(discriminator.Config{
		Arch: discriminator.ArchEfficientNet, Train: discriminator.TrainGT,
	}, rng.Stream("disc"))
	if err != nil {
		t.Fatal(err)
	}
	c, err := cascade.New(space, light, heavy, d)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := cascade.ProfileDeferral(c, space.SampleQueries(0, 2000))
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Light: light, Heavy: heavy,
		DiscPerImage: d.PerImageLatency(),
		Deferral:     prof,
		TotalWorkers: workers,
		SLO:          slo,
	}
}

func TestConfigValidation(t *testing.T) {
	good := buildConfig(t, 16, 5)
	bad := good
	bad.Light = nil
	if _, err := NewMILP(bad); err == nil {
		t.Error("nil light should fail")
	}
	bad = good
	bad.Deferral = nil
	if _, err := NewMILP(bad); err == nil {
		t.Error("nil deferral should fail")
	}
	bad = good
	bad.TotalWorkers = 0
	if _, err := NewGrid(bad); err == nil {
		t.Error("zero workers should fail")
	}
	bad = good
	bad.SLO = 0
	if _, err := NewProteus(bad); err == nil {
		t.Error("zero SLO should fail")
	}
}

func TestMILPPlanSatisfiesConstraints(t *testing.T) {
	cfg := buildConfig(t, 16, 5)
	a, err := NewMILP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, demand := range []float64{2, 8, 16, 24, 32} {
		plan, err := a.Allocate(Observation{Demand: demand})
		if err != nil {
			t.Fatal(err)
		}
		if !plan.Feasible {
			t.Fatalf("demand %v: expected feasible plan, got %v", demand, plan)
		}
		checkPlanFeasible(t, &a.cfg, Observation{Demand: demand}, plan)
	}
}

// checkPlanFeasible re-verifies the paper's four constraints on a plan.
func checkPlanFeasible(t *testing.T, c *Config, obs Observation, p Plan) {
	t.Helper()
	demand := obs.Demand * c.OverProvision
	if p.LightWorkers+p.HeavyWorkers > c.TotalWorkers {
		t.Errorf("budget violated: %d + %d > %d", p.LightWorkers, p.HeavyWorkers, c.TotalWorkers)
	}
	lightCap := float64(p.LightWorkers) * lightThroughput(c, p.LightBatch)
	if lightCap+1e-9 < demand {
		t.Errorf("light throughput violated: %v < %v (plan %v)", lightCap, demand, p)
	}
	heavyCap := float64(p.HeavyWorkers) * heavyThroughput(c, p.HeavyBatch)
	if heavyCap+1e-9 < demand*p.DeferFraction {
		t.Errorf("heavy throughput violated: %v < %v (plan %v)", heavyCap, demand*p.DeferFraction, p)
	}
	q1, q2 := queueDelays(c, obs, p.LightBatch, p.HeavyBatch)
	lat := lightExec(c, p.LightBatch) + q1 + heavyExec(c, p.HeavyBatch) + q2
	if lat > c.SLO+1e-9 {
		t.Errorf("latency violated: %v > %v (plan %v)", lat, c.SLO, p)
	}
}

func TestMILPMatchesGridThreshold(t *testing.T) {
	cfg := buildConfig(t, 16, 5)
	m, err := NewMILP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGrid(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, demand := range []float64{1, 4, 10, 18, 26, 32, 40} {
		for _, obs := range []Observation{
			{Demand: demand},
			{Demand: demand, LightQueueLen: 10, HeavyQueueLen: 4, LightArrivalRate: demand, HeavyArrivalRate: demand * 0.4},
		} {
			mp, err := m.Allocate(obs)
			if err != nil {
				t.Fatal(err)
			}
			gp, err := g.Allocate(obs)
			if err != nil {
				t.Fatal(err)
			}
			if mp.Feasible != gp.Feasible {
				t.Fatalf("demand %v: feasibility disagrees: milp %v vs grid %v", demand, mp, gp)
			}
			if !mp.Feasible {
				continue
			}
			if math.Abs(mp.Threshold-gp.Threshold) > 1e-9 {
				t.Errorf("demand %v: thresholds disagree: milp %v vs grid %v", demand, mp.Threshold, gp.Threshold)
			}
		}
	}
}

func TestThresholdDecreasesWithDemand(t *testing.T) {
	// Model scaling: as demand rises, the optimizer must lower the
	// threshold (defer less) to fit the worker budget.
	cfg := buildConfig(t, 16, 5)
	a, err := NewMILP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(1)
	for _, demand := range []float64{4, 12, 20, 28, 36, 44} {
		plan, err := a.Allocate(Observation{Demand: demand})
		if err != nil {
			t.Fatal(err)
		}
		if plan.Threshold > prev+1e-9 {
			t.Errorf("threshold increased with demand at %v: %v > %v", demand, plan.Threshold, prev)
		}
		prev = plan.Threshold
	}
}

func TestLowDemandMaximizesDeferralCap(t *testing.T) {
	cfg := buildConfig(t, 16, 5)
	a, err := NewMILP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := a.Allocate(Observation{Demand: 2})
	if err != nil {
		t.Fatal(err)
	}
	if plan.DeferFraction < cfg.withDefaults().MaxDeferFraction-0.05 {
		t.Errorf("low demand should push deferral to the cap, got %v", plan.DeferFraction)
	}
}

func TestBestEffortOnOverload(t *testing.T) {
	cfg := buildConfig(t, 2, 5)
	a, err := NewMILP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 2 workers cannot serve 500 QPS even all-light.
	plan, err := a.Allocate(Observation{Demand: 500})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Feasible {
		t.Fatalf("expected infeasible best-effort plan, got %v", plan)
	}
	if plan.LightWorkers != 2 || plan.HeavyWorkers != 0 {
		t.Errorf("best effort should go all-light: %v", plan)
	}
	g, err := NewGrid(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gp, err := g.Allocate(Observation{Demand: 500})
	if err != nil {
		t.Fatal(err)
	}
	if gp.Feasible {
		t.Errorf("grid should agree on infeasibility: %v", gp)
	}
}

func TestQueueBacklogTightensLatency(t *testing.T) {
	// A huge observed backlog should make the latency constraint
	// unsatisfiable and force the best-effort path.
	cfg := buildConfig(t, 16, 5)
	a, err := NewMILP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	obs := Observation{
		Demand:        8,
		LightQueueLen: 1000, LightArrivalRate: 8,
		HeavyQueueLen: 0, HeavyArrivalRate: 2,
	}
	plan, err := a.Allocate(obs)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Feasible {
		t.Errorf("125s backlog should be infeasible under a 5s SLO: %v", plan)
	}
}

func TestFixedThresholdPins(t *testing.T) {
	cfg := buildConfig(t, 16, 5)
	fixed := 0.35
	cfg.FixedThreshold = &fixed
	a, err := NewMILP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := a.Allocate(Observation{Demand: 10})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Threshold != fixed {
		t.Errorf("threshold = %v, want pinned %v", plan.Threshold, fixed)
	}
}

func TestFixedBatchesPinned(t *testing.T) {
	cfg := buildConfig(t, 16, 5)
	cfg.FixedLightBatch = 4
	cfg.FixedHeavyBatch = 2
	a, err := NewMILP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := a.Allocate(Observation{Demand: 10})
	if err != nil {
		t.Fatal(err)
	}
	if plan.LightBatch != 4 || plan.HeavyBatch != 2 {
		t.Errorf("batches = %d/%d, want 4/2", plan.LightBatch, plan.HeavyBatch)
	}
}

func TestTwiceExecQueueModel(t *testing.T) {
	cfg := buildConfig(t, 16, 5)
	cfg.Queue = QueueModelTwiceExec
	a, err := NewMILP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Backlog must be ignored under the heuristic model.
	obs := Observation{Demand: 8, LightQueueLen: 1000, LightArrivalRate: 8}
	plan, err := a.Allocate(obs)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Feasible {
		t.Errorf("2x-exec model ignores backlog; plan should be feasible: %v", plan)
	}
}

func TestClipperAllocators(t *testing.T) {
	reg := model.BuiltinRegistry()
	lightA, err := NewClipper(reg.MustGet("sdturbo"), false, 16, 5)
	if err != nil {
		t.Fatal(err)
	}
	p, err := lightA.Allocate(Observation{Demand: 100})
	if err != nil {
		t.Fatal(err)
	}
	if p.LightWorkers != 16 || p.HeavyWorkers != 0 || p.DeferFraction != 0 {
		t.Errorf("clipper-light plan wrong: %v", p)
	}
	heavyA, err := NewClipper(reg.MustGet("sdv15"), true, 16, 5)
	if err != nil {
		t.Fatal(err)
	}
	p, err = heavyA.Allocate(Observation{})
	if err != nil {
		t.Fatal(err)
	}
	if p.HeavyWorkers != 16 || p.LightWorkers != 0 || p.DeferFraction != 1 {
		t.Errorf("clipper-heavy plan wrong: %v", p)
	}
	if lightA.Name() != "clipper-light" || heavyA.Name() != "clipper-heavy" {
		t.Error("names wrong")
	}
	if _, err := NewClipper(nil, false, 16, 5); err == nil {
		t.Error("nil variant should fail")
	}
	if _, err := NewClipper(reg.MustGet("sdv15"), true, 0, 5); err == nil {
		t.Error("zero workers should fail")
	}
}

func TestProteusScalesHeavyShareWithDemand(t *testing.T) {
	cfg := buildConfig(t, 16, 5)
	a, err := NewProteus(cfg)
	if err != nil {
		t.Fatal(err)
	}
	low, err := a.Allocate(Observation{Demand: 4})
	if err != nil {
		t.Fatal(err)
	}
	high, err := a.Allocate(Observation{Demand: 30})
	if err != nil {
		t.Fatal(err)
	}
	if !low.Feasible || !high.Feasible {
		t.Fatalf("plans should be feasible: %v / %v", low, high)
	}
	if low.DeferFraction <= high.DeferFraction {
		t.Errorf("heavy share should shrink with demand: low %v vs high %v", low.DeferFraction, high.DeferFraction)
	}
	if low.LightWorkers+low.HeavyWorkers > cfg.TotalWorkers {
		t.Errorf("budget violated: %v", low)
	}
}

func TestDiffServeStaticFrozen(t *testing.T) {
	cfg := buildConfig(t, 16, 5)
	s, err := NewDiffServeStatic(cfg, 32, 0)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := s.Allocate(Observation{Demand: 2})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := s.Allocate(Observation{Demand: 32})
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("static allocator must return identical plans")
	}
	if s.Name() != "diffserve-static" {
		t.Errorf("name = %q", s.Name())
	}
}

func TestAIMDBatcher(t *testing.T) {
	b := NewAIMDBatcher([]int{1, 2, 4, 8})
	if b.Batch() != 1 {
		t.Errorf("start batch = %d", b.Batch())
	}
	b.Observe(false)
	b.Observe(false)
	if b.Batch() != 4 {
		t.Errorf("after 2 good intervals = %d, want 4", b.Batch())
	}
	b.Observe(true)
	if b.Batch() != 2 {
		t.Errorf("after timeout = %d, want 2", b.Batch())
	}
	// Bounds.
	for i := 0; i < 10; i++ {
		b.Observe(false)
	}
	if b.Batch() != 8 {
		t.Errorf("cap = %d, want 8", b.Batch())
	}
	for i := 0; i < 10; i++ {
		b.Observe(true)
	}
	if b.Batch() != 1 {
		t.Errorf("floor = %d, want 1", b.Batch())
	}
	if NewAIMDBatcher(nil).Batch() != 1 {
		t.Error("default grid should start at 1")
	}
}

func TestMILPSolveTimeReported(t *testing.T) {
	cfg := buildConfig(t, 16, 5)
	a, err := NewMILP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := a.Allocate(Observation{Demand: 16})
	if err != nil {
		t.Fatal(err)
	}
	if plan.SolveTime <= 0 {
		t.Error("SolveTime not recorded")
	}
}

func TestPlanString(t *testing.T) {
	p := Plan{Threshold: 0.5, DeferFraction: 0.3, LightWorkers: 10, HeavyWorkers: 6, LightBatch: 8, HeavyBatch: 4, Feasible: true}
	s := p.String()
	if s == "" {
		t.Error("empty String()")
	}
}
