package allocator

import (
	"testing"
)

func heteroClasses() []DeviceClass {
	return []DeviceClass{
		{Name: "a100", Count: 8, SpeedFactor: 1.0},
		{Name: "v100", Count: 8, SpeedFactor: 0.5},
	}
}

func TestNewHeteroValidation(t *testing.T) {
	cfg := buildConfig(t, 16, 5)
	if _, err := NewHetero(cfg, nil); err == nil {
		t.Error("no classes should fail")
	}
	if _, err := NewHetero(cfg, []DeviceClass{{Name: "x", Count: 0, SpeedFactor: 1}}); err == nil {
		t.Error("zero count should fail")
	}
	if _, err := NewHetero(cfg, []DeviceClass{{Name: "x", Count: 1, SpeedFactor: 0}}); err == nil {
		t.Error("zero speed should fail")
	}
	a, err := NewHetero(cfg, heteroClasses())
	if err != nil {
		t.Fatal(err)
	}
	if a.Name() != "diffserve-hetero" {
		t.Errorf("name = %q", a.Name())
	}
	// Classes sorted fastest first.
	cls := a.Classes()
	if cls[0].SpeedFactor < cls[1].SpeedFactor {
		t.Error("classes not sorted by speed")
	}
}

func TestHeteroPlanFeasibleAndConsistent(t *testing.T) {
	cfg := buildConfig(t, 16, 5)
	a, err := NewHetero(cfg, heteroClasses())
	if err != nil {
		t.Fatal(err)
	}
	for _, demand := range []float64{2, 8, 16, 24} {
		hp, err := a.AllocateHetero(Observation{Demand: demand})
		if err != nil {
			t.Fatal(err)
		}
		if !hp.Feasible {
			t.Fatalf("demand %v: expected feasible plan, got %v", demand, hp.Plan)
		}
		// Per-class counts sum to the aggregated counts and respect
		// class capacity.
		light, heavy := 0, 0
		for i, cl := range hp.Classes {
			if hp.ClassLight[i] < 0 || hp.ClassHeavy[i] < 0 {
				t.Fatalf("negative class counts: %+v", hp)
			}
			if hp.ClassLight[i]+hp.ClassHeavy[i] > cl.Count {
				t.Fatalf("class %s over-allocated: %d+%d > %d",
					cl.Name, hp.ClassLight[i], hp.ClassHeavy[i], cl.Count)
			}
			light += hp.ClassLight[i]
			heavy += hp.ClassHeavy[i]
		}
		if light != hp.LightWorkers || heavy != hp.HeavyWorkers {
			t.Fatalf("aggregate mismatch: %d/%d vs %d/%d", light, heavy, hp.LightWorkers, hp.HeavyWorkers)
		}
		// Speed-weighted capacity must satisfy the demands.
		lightCap, heavyCap := 0.0, 0.0
		for i, cl := range hp.Classes {
			lightCap += float64(hp.ClassLight[i]) * lightThroughput(&a.cfg, hp.LightBatch) * cl.SpeedFactor
			heavyCap += float64(hp.ClassHeavy[i]) * heavyThroughput(&a.cfg, hp.HeavyBatch) * cl.SpeedFactor
		}
		d := demand * a.cfg.OverProvision
		if lightCap+1e-9 < d {
			t.Errorf("demand %v: light capacity %v < %v", demand, lightCap, d)
		}
		if heavyCap+1e-9 < d*hp.DeferFraction {
			t.Errorf("demand %v: heavy capacity %v < %v", demand, heavyCap, d*hp.DeferFraction)
		}
	}
}

func TestHeteroPrefersFastDevicesForHeavyPool(t *testing.T) {
	cfg := buildConfig(t, 16, 5)
	a, err := NewHetero(cfg, heteroClasses())
	if err != nil {
		t.Fatal(err)
	}
	hp, err := a.AllocateHetero(Observation{Demand: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Class 0 is the fast one after sorting: the heavy pool should be
	// drawn from it before touching slow devices.
	if hp.ClassHeavy[0] == 0 {
		t.Errorf("heavy pool ignored the fast class: %+v", hp)
	}
	if hp.ClassHeavy[1] > 0 && hp.ClassHeavy[0] < hp.Classes[0].Count {
		t.Errorf("heavy pool used slow devices before exhausting fast ones: %+v", hp)
	}
}

func TestHeteroMatchesHomogeneousWhenUniform(t *testing.T) {
	// A single class at speed 1.0 must reproduce the homogeneous
	// allocator's threshold.
	cfg := buildConfig(t, 16, 5)
	hetero, err := NewHetero(cfg, []DeviceClass{{Name: "a100", Count: 16, SpeedFactor: 1.0}})
	if err != nil {
		t.Fatal(err)
	}
	homo, err := NewGrid(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, demand := range []float64{4, 12, 24} {
		hp, err := hetero.Allocate(Observation{Demand: demand})
		if err != nil {
			t.Fatal(err)
		}
		gp, err := homo.Allocate(Observation{Demand: demand})
		if err != nil {
			t.Fatal(err)
		}
		if hp.Feasible != gp.Feasible || hp.Threshold != gp.Threshold {
			t.Errorf("demand %v: hetero %v vs homogeneous %v", demand, hp, gp)
		}
	}
}

func TestHeteroSlowClusterLowersThreshold(t *testing.T) {
	// Halving every device's speed must not raise the threshold; at
	// high demand it must lower it (less effective capacity).
	cfg := buildConfig(t, 16, 5)
	fast, err := NewHetero(cfg, []DeviceClass{{Name: "a100", Count: 16, SpeedFactor: 1.0}})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := NewHetero(cfg, []DeviceClass{{Name: "old", Count: 16, SpeedFactor: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	for _, demand := range []float64{8, 16, 24} {
		fp, err := fast.Allocate(Observation{Demand: demand})
		if err != nil {
			t.Fatal(err)
		}
		sp, err := slow.Allocate(Observation{Demand: demand})
		if err != nil {
			t.Fatal(err)
		}
		if sp.Threshold > fp.Threshold+1e-9 {
			t.Errorf("demand %v: slow cluster threshold %v exceeds fast %v", demand, sp.Threshold, fp.Threshold)
		}
	}
	// Overload: the slow cluster must hit best-effort sooner.
	sp, err := slow.Allocate(Observation{Demand: 150})
	if err != nil {
		t.Fatal(err)
	}
	if sp.Feasible {
		t.Errorf("150 QPS on a half-speed cluster should be infeasible: %v", sp)
	}
}

func TestHeteroBestEffortUsesAllDevices(t *testing.T) {
	cfg := buildConfig(t, 16, 5)
	a, err := NewHetero(cfg, heteroClasses())
	if err != nil {
		t.Fatal(err)
	}
	hp, err := a.AllocateHetero(Observation{Demand: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if hp.Feasible {
		t.Fatal("1000 QPS should be infeasible")
	}
	total := 0
	for i := range hp.Classes {
		total += hp.ClassLight[i]
	}
	if total != 16 || hp.HeavyWorkers != 0 {
		t.Errorf("best effort should go all-light on every device: %+v", hp)
	}
}
