package allocator

import (
	"math"
	"sync"
	"testing"
)

// TestPersistentSolverMatchesFreshOverDemandWalk is the allocator-
// level warm-vs-cold equivalence pin: one long-lived MILPAllocator
// (whose incremental solver carries basis and incumbent across ticks)
// must produce plans equivalent to a freshly constructed allocator at
// every step of a demand walk.
func TestPersistentSolverMatchesFreshOverDemandWalk(t *testing.T) {
	cfg := buildConfig(t, 16, 5)
	warm, err := NewMILP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	demands := []float64{4, 6, 9, 14, 22, 30, 22, 14, 9, 6, 4, 0, 4, 18, 31, 2}
	for step, d := range demands {
		obs := Observation{Demand: d, LightQueueLen: step % 5, HeavyQueueLen: step % 3}
		got, err := warm.Allocate(obs)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		fresh, err := NewMILP(cfg)
		if err != nil {
			t.Fatal(err)
		}
		want, err := fresh.Allocate(obs)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if got.Feasible != want.Feasible {
			t.Fatalf("step %d (D=%v): warm feasible=%v fresh feasible=%v", step, d, got.Feasible, want.Feasible)
		}
		// Threshold is the MILP's true objective; the worker/batch
		// tie-breaks below it are pinned too since the solver is
		// deterministic either way.
		if math.Abs(got.Threshold-want.Threshold) > 1e-9 {
			t.Fatalf("step %d (D=%v): warm threshold %v != fresh %v", step, d, got.Threshold, want.Threshold)
		}
		if got.LightWorkers != want.LightWorkers || got.HeavyWorkers != want.HeavyWorkers ||
			got.LightBatch != want.LightBatch || got.HeavyBatch != want.HeavyBatch {
			t.Fatalf("step %d (D=%v): warm plan %v != fresh plan %v", step, d, got, want)
		}
		if got.Feasible {
			checkPlanFeasible(t, &cfg, obs, got)
		}
	}
	if st := warm.SolveStats(); st.WarmLPs == 0 {
		t.Fatalf("demand walk never exercised the warm path: %+v", st)
	}
}

// TestAllocateConcurrentSafe drives one allocator from many
// goroutines; calls must serialize on the internal solver without
// racing (run under -race in CI).
func TestAllocateConcurrentSafe(t *testing.T) {
	cfg := buildConfig(t, 16, 5)
	a, err := NewMILP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				if _, err := a.Allocate(Observation{Demand: float64(3 + (g*7+i*5)%25)}); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestNodeLimitDegradesToPlan pins the satellite bugfix end to end:
// with a tiny node budget the allocator still produces a usable
// feasible plan (from the analytic warm-start incumbent) instead of
// failing the control tick.
func TestNodeLimitDegradesToPlan(t *testing.T) {
	cfg := buildConfig(t, 16, 5)
	cfg.NodeLimit = 2
	a, err := NewMILP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	obs := Observation{Demand: 18}
	plan, err := a.Allocate(obs)
	if err != nil {
		t.Fatalf("node-limited tick should degrade, not fail: %v", err)
	}
	if !plan.Feasible {
		t.Fatalf("node-limited tick returned infeasible plan: %v", plan)
	}
	checkPlanFeasible(t, &cfg, obs, plan)

	// The degraded plan should still be in the ballpark of the
	// unconstrained optimum: same demand, full node budget.
	full, err := NewMILP(buildConfig(t, 16, 5))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := full.Allocate(obs)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Threshold > ref.Threshold+1e-9 {
		t.Fatalf("degraded plan threshold %v exceeds optimal %v", plan.Threshold, ref.Threshold)
	}
}
