package allocator

import (
	"math"
	"sync"
	"time"

	"diffserve/internal/milp"
)

// MILPAllocator is the DiffServe resource allocator: it formulates the
// paper's optimization (maximize the confidence threshold subject to
// latency, throughput, and budget constraints) as a mixed-integer
// linear program and solves it with the internal branch-and-bound
// solver.
//
// The allocator holds one milp.IncrementalSolver for its lifetime:
// successive subproblems — the candidate thresholds of one Allocate's
// binary search, and the nearly-identical problems of successive
// control ticks — share the same shape, so the solver warm-starts
// each from the previous optimal basis and incumbent instead of
// re-deriving everything from scratch. Allocate is safe for
// concurrent use; calls serialize on the solver.
type MILPAllocator struct {
	cfg Config

	mu  sync.Mutex
	inc milp.IncrementalSolver
}

// NewMILP constructs the DiffServe MILP allocator.
func NewMILP(cfg Config) (*MILPAllocator, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &MILPAllocator{cfg: cfg.withDefaults()}, nil
}

// Name implements Allocator.
func (a *MILPAllocator) Name() string { return "diffserve-milp" }

// Config returns the allocator's effective configuration.
func (a *MILPAllocator) Config() Config { return a.cfg }

// SolveStats returns the cumulative solver path counters (warm vs
// cold LP solves, pivots, branch-and-bound nodes) for benchmarks and
// controller telemetry.
func (a *MILPAllocator) SolveStats() milp.IncrementalStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.inc.Stats()
}

// Allocate implements Allocator.
//
// The paper's optimization maximizes the confidence threshold t
// subject to Eqs. 1-4. Feasibility is monotone in t (a higher
// threshold only increases the heavy pool's required throughput), so
// the allocator binary-searches the discretized threshold grid; each
// candidate threshold yields a mixed-integer subproblem over
//
//	w1[b]  (|B1| integers) — light workers running batch b
//	w2[b]  (|B2| integers) — heavy workers running batch b
//	y1[b]  (|B1| binaries) — light batch selector
//	y2[b]  (|B2| binaries) — heavy batch selector
//	h      (continuous)    — normalized capacity headroom
//
// solved by the internal branch-and-bound solver. The single-batch-
// size-per-pool rule is enforced by w_i[b] <= S·y_i[b] and sum y_i = 1;
// worker-count products x_i·T_i(b_i) linearize as sum_b w_i[b]·T_i(b);
// the latency constraint selects per-batch execution+queueing costs
// through the y binaries. Within each subproblem the objective
// maximizes the minimum normalized capacity headroom h
// (sum w1·T1 >= h·D and sum w2·T2 >= h·f·D), which co-optimizes batch
// sizes for throughput and spreads every available worker across the
// pools so neither runs at razor-thin utilization.
func (a *MILPAllocator) Allocate(obs Observation) (Plan, error) {
	start := time.Now()
	a.mu.Lock()
	defer a.mu.Unlock()
	c := &a.cfg
	demand := math.Max(obs.Demand, 0) * c.OverProvision
	ts, fs := thresholdGrid(c)

	// Binary search the largest feasible threshold index. Feasibility
	// is monotone non-increasing in the index.
	solve := func(j int) (Plan, bool, error) {
		return a.solveAtThreshold(obs, demand, ts[j], fs[j])
	}
	loPlan, loOK, err := solve(0)
	if err != nil {
		return Plan{}, err
	}
	if !loOK {
		p := bestEffortPlan(c)
		p.SolveTime = time.Since(start)
		return p, nil
	}
	bestPlan := loPlan
	if hiPlan, hiOK, err := solve(len(ts) - 1); err != nil {
		return Plan{}, err
	} else if hiOK {
		bestPlan = hiPlan
	} else {
		lo, hi := 0, len(ts)-1 // feasible at lo, infeasible at hi
		for hi-lo > 1 {
			mid := (lo + hi) / 2
			midPlan, midOK, err := solve(mid)
			if err != nil {
				return Plan{}, err
			}
			if midOK {
				lo = mid
				bestPlan = midPlan
			} else {
				hi = mid
			}
		}
	}
	bestPlan.SolveTime = time.Since(start)
	return bestPlan, nil
}

// solveAtThreshold solves the fixed-threshold MILP subproblem.
func (a *MILPAllocator) solveAtThreshold(obs Observation, demand, t, f float64) (Plan, bool, error) {
	c := &a.cfg
	lightBs, heavyBs := batchCandidates(c)
	nB1, nB2 := len(lightBs), len(heavyBs)
	// Variable layout offsets.
	w1 := 0
	w2 := w1 + nB1
	y1 := w2 + nB2
	y2 := y1 + nB1
	h := y2 + nB2
	nVars := h + 1

	S := float64(c.TotalWorkers)
	obj := make([]float64, nVars)
	obj[h] = 1
	// Tiny bonus per allocated worker so spare devices beyond the
	// headroom cap still get used, weighted against the heavy pool so
	// ties leave capacity on the cheap pool.
	for b := 0; b < nB1; b++ {
		obj[w1+b] = 1e-4
	}
	for b := 0; b < nB2; b++ {
		obj[w2+b] = 9e-5
	}

	upper := make([]float64, nVars)
	integer := make([]bool, nVars)
	for b := 0; b < nB1; b++ {
		upper[w1+b] = S
		integer[w1+b] = true
		upper[y1+b] = 1
		integer[y1+b] = true
	}
	for b := 0; b < nB2; b++ {
		upper[w2+b] = S
		integer[w2+b] = true
		upper[y2+b] = 1
		integer[y2+b] = true
	}
	upper[h] = 20 // cap headroom so the LP stays bounded

	var cons []milp.Constraint
	row := func() []float64 { return make([]float64, nVars) }

	// sum_b y1[b] == 1 and sum_b y2[b] == 1.
	r := row()
	for b := 0; b < nB1; b++ {
		r[y1+b] = 1
	}
	cons = append(cons, milp.Constraint{Coeffs: r, Rel: milp.EQ, RHS: 1, Name: "one-light-batch"})
	r = row()
	for b := 0; b < nB2; b++ {
		r[y2+b] = 1
	}
	cons = append(cons, milp.Constraint{Coeffs: r, Rel: milp.EQ, RHS: 1, Name: "one-heavy-batch"})

	// w_i[b] <= S * y_i[b]: workers only on the selected batch size.
	for b := 0; b < nB1; b++ {
		r = row()
		r[w1+b] = 1
		r[y1+b] = -S
		cons = append(cons, milp.Constraint{Coeffs: r, Rel: milp.LE, RHS: 0, Name: "light-batch-link"})
	}
	for b := 0; b < nB2; b++ {
		r = row()
		r[w2+b] = 1
		r[y2+b] = -S
		cons = append(cons, milp.Constraint{Coeffs: r, Rel: milp.LE, RHS: 0, Name: "heavy-batch-link"})
	}

	// Light throughput (Eq. 2): sum_b w1[b]·T1(b) >= D'.
	r = row()
	for b, bs := range lightBs {
		r[w1+b] = lightThroughput(c, bs)
	}
	cons = append(cons, milp.Constraint{Coeffs: r, Rel: milp.GE, RHS: demand, Name: "light-throughput"})

	// Keep at least one light worker warm so arrivals always have an
	// entry point even when the demand estimate dips to zero.
	r = row()
	for b := 0; b < nB1; b++ {
		r[w1+b] = 1
	}
	cons = append(cons, milp.Constraint{Coeffs: r, Rel: milp.GE, RHS: 1, Name: "min-light"})

	// Heavy throughput (Eq. 3): sum_b w2[b]·T2(b) >= D'·f.
	r = row()
	for b, bs := range heavyBs {
		r[w2+b] = heavyThroughput(c, bs)
	}
	cons = append(cons, milp.Constraint{Coeffs: r, Rel: milp.GE, RHS: demand * f, Name: "heavy-throughput"})

	// Budget (Eq. 4): sum w1 + sum w2 <= S.
	r = row()
	for b := 0; b < nB1; b++ {
		r[w1+b] = 1
	}
	for b := 0; b < nB2; b++ {
		r[w2+b] = 1
	}
	cons = append(cons, milp.Constraint{Coeffs: r, Rel: milp.LE, RHS: S, Name: "budget"})

	// Latency (Eq. 1): sum_b y1[b]·(e1+q1)(b) + sum_b y2[b]·(e2+q2)(b) <= L.
	r = row()
	for b, bs := range lightBs {
		q1, _ := queueDelays(c, obs, bs, heavyBs[0])
		r[y1+b] = lightExec(c, bs) + q1
	}
	for b, bs := range heavyBs {
		_, q2 := queueDelays(c, obs, lightBs[0], bs)
		r[y2+b] = heavyExec(c, bs) + q2
	}
	cons = append(cons, milp.Constraint{Coeffs: r, Rel: milp.LE, RHS: c.SLO, Name: "latency"})

	// Headroom rows: sum w1·T1 >= h·D and sum w2·T2 >= h·f·D.
	r = row()
	for b, bs := range lightBs {
		r[w1+b] = lightThroughput(c, bs)
	}
	r[h] = -math.Max(demand, 0.5)
	cons = append(cons, milp.Constraint{Coeffs: r, Rel: milp.GE, RHS: 0, Name: "light-headroom"})
	// Emitted even when demand*f == 0 (where it is trivially satisfied)
	// so the problem shape is identical at every threshold and the
	// incremental solver's warm state survives the binary search.
	r = row()
	for b, bs := range heavyBs {
		r[w2+b] = heavyThroughput(c, bs)
	}
	r[h] = -demand * f
	cons = append(cons, milp.Constraint{Coeffs: r, Rel: milp.GE, RHS: 0, Name: "heavy-headroom"})

	prob := &milp.Problem{
		Sense:       milp.Maximize,
		Objective:   obj,
		Constraints: cons,
		Upper:       upper,
		Integer:     integer,
		Initial:     a.warmStart(obs, demand, f, nVars, w1, w2, y1, y2, h),
		NodeLimit:   c.NodeLimit,
	}
	sol, err := a.inc.Solve(prob)
	if err != nil {
		return Plan{}, false, err
	}
	// StatusNodeLimit is a best-effort feasible integral plan: the
	// node budget ran out before proving optimality. A control tick
	// needs *a* plan, so accept it like an optimal one.
	if sol.Status != milp.StatusOptimal && sol.Status != milp.StatusNodeLimit {
		return Plan{}, false, nil
	}

	plan := Plan{Feasible: true, Threshold: t, DeferFraction: f}
	for b, bs := range lightBs {
		if sol.X[y1+b] > 0.5 {
			plan.LightBatch = bs
		}
		plan.LightWorkers += int(math.Round(sol.X[w1+b]))
	}
	for b, bs := range heavyBs {
		if sol.X[y2+b] > 0.5 {
			plan.HeavyBatch = bs
		}
		plan.HeavyWorkers += int(math.Round(sol.X[w2+b]))
	}
	return plan, true, nil
}

// warmStart builds an analytic candidate solution for the fixed-
// threshold subproblem — the greedy allocation the grid solver would
// produce, with leftover workers distributed to balance headroom.
// A feasible warm start lets branch-and-bound prune from node one;
// returning nil (no feasible greedy point) is harmless.
func (a *MILPAllocator) warmStart(obs Observation, demand, f float64, nVars, w1, w2, y1, y2, h int) []float64 {
	c := &a.cfg
	lightBs, heavyBs := batchCandidates(c)
	bestH := -1.0
	var best []float64
	for bi1, b1 := range lightBs {
		for bi2, b2 := range heavyBs {
			q1, q2 := queueDelays(c, obs, b1, b2)
			if lightExec(c, b1)+q1+heavyExec(c, b2)+q2 > c.SLO {
				continue
			}
			t1, t2 := lightThroughput(c, b1), heavyThroughput(c, b2)
			x1 := int(math.Ceil(demand / t1))
			if x1 < 1 {
				x1 = 1
			}
			x2 := 0
			if demand*f > 0 {
				x2 = int(math.Ceil(demand * f / t2))
			}
			if x1+x2 > c.TotalWorkers {
				continue
			}
			// Distribute spare workers to the pool with less headroom.
			dl := math.Max(demand, 0.5)
			dh := demand * f
			for spare := c.TotalWorkers - x1 - x2; spare > 0; spare-- {
				hl := float64(x1) * t1 / dl
				hh := math.Inf(1)
				if dh > 0 {
					hh = float64(x2) * t2 / dh
				}
				if hh < hl {
					x2++
				} else {
					x1++
				}
			}
			hl := float64(x1) * t1 / dl
			hh := math.Inf(1)
			if dh > 0 {
				hh = float64(x2) * t2 / dh
			}
			hv := math.Min(20, math.Min(hl, hh))
			if hv > bestH {
				bestH = hv
				x := make([]float64, nVars)
				x[w1+bi1] = float64(x1)
				x[w2+bi2] = float64(x2)
				x[y1+bi1] = 1
				x[y2+bi2] = 1
				x[h] = hv
				best = x
			}
		}
	}
	return best
}

// GridAllocator solves the same optimization by exhaustive enumeration
// of (threshold, light batch, heavy batch) with analytically minimal
// worker counts. It exists to cross-validate the MILP formulation and
// as the ablation comparator for solver strategy.
type GridAllocator struct {
	cfg Config
}

// NewGrid constructs the exhaustive-search allocator.
func NewGrid(cfg Config) (*GridAllocator, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &GridAllocator{cfg: cfg.withDefaults()}, nil
}

// Name implements Allocator.
func (a *GridAllocator) Name() string { return "diffserve-grid" }

// Allocate implements Allocator.
func (a *GridAllocator) Allocate(obs Observation) (Plan, error) {
	start := time.Now()
	c := &a.cfg
	demand := math.Max(obs.Demand, 0) * c.OverProvision
	lightBs, heavyBs := batchCandidates(c)
	ts, fs := thresholdGrid(c)

	best := Plan{Feasible: false}
	found := false
	// Scan thresholds descending: the first feasible is optimal in t;
	// among equal t prefer fewer heavy workers (matching the MILP
	// tie-break).
	for j := len(ts) - 1; j >= 0 && !found; j-- {
		type cand struct {
			plan  Plan
			heavy int
		}
		var bestCand *cand
		for _, b1 := range lightBs {
			for _, b2 := range heavyBs {
				q1, q2 := queueDelays(c, obs, b1, b2)
				if lightExec(c, b1)+q1+heavyExec(c, b2)+q2 > c.SLO+1e-12 {
					continue
				}
				x1 := int(math.Ceil(demand / lightThroughput(c, b1)))
				if x1 < 1 {
					x1 = 1
				}
				need := demand * fs[j]
				x2 := 0
				if need > 0 {
					x2 = int(math.Ceil(need / heavyThroughput(c, b2)))
				}
				if x1+x2 > c.TotalWorkers {
					continue
				}
				p := Plan{
					Threshold: ts[j], DeferFraction: fs[j],
					LightWorkers: x1, HeavyWorkers: x2,
					LightBatch: b1, HeavyBatch: b2,
					Feasible: true,
				}
				if bestCand == nil || x2 < bestCand.heavy {
					bestCand = &cand{plan: p, heavy: x2}
				}
			}
		}
		if bestCand != nil {
			best = bestCand.plan
			found = true
		}
	}
	if !found {
		best = bestEffortPlan(c)
	}
	best.SolveTime = time.Since(start)
	return best, nil
}
