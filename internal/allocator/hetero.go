package allocator

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// DeviceClass describes one GPU class in a heterogeneous cluster (the
// paper's §5 deployment extension). SpeedFactor scales throughput
// relative to the profiled reference device: an A100-profiled model on
// a device with SpeedFactor 0.5 executes batches twice as slowly.
type DeviceClass struct {
	Name        string
	Count       int
	SpeedFactor float64
}

// HeteroPlan extends Plan with the per-class placement.
type HeteroPlan struct {
	Plan
	// ClassLight[i] and ClassHeavy[i] are the worker counts drawn from
	// class i for each pool.
	ClassLight, ClassHeavy []int
	Classes                []DeviceClass
}

// HeteroAllocator solves the §5 heterogeneous variant of the DiffServe
// allocation: maximize the confidence threshold over a cluster of
// mixed device classes. It extends the homogeneous search with a
// per-class placement step: for a candidate threshold and batch pair,
// classes are assigned to the heavy pool fastest-first (the heavy
// model's long execution dominates the latency budget, so it benefits
// most from fast devices), with the latency constraint evaluated at
// the slowest device class actually used by each pool.
type HeteroAllocator struct {
	cfg     Config
	classes []DeviceClass
}

// NewHetero builds the heterogeneous allocator. cfg.TotalWorkers is
// ignored; capacity comes from the device classes.
func NewHetero(cfg Config, classes []DeviceClass) (*HeteroAllocator, error) {
	cfg.TotalWorkers = 1 // satisfy base validation; unused afterwards
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(classes) == 0 {
		return nil, fmt.Errorf("allocator: need at least one device class")
	}
	total := 0
	for i, c := range classes {
		if c.Count <= 0 {
			return nil, fmt.Errorf("allocator: class %d (%s) has non-positive count", i, c.Name)
		}
		if c.SpeedFactor <= 0 {
			return nil, fmt.Errorf("allocator: class %d (%s) has non-positive speed", i, c.Name)
		}
		total += c.Count
	}
	out := &HeteroAllocator{cfg: cfg.withDefaults(), classes: append([]DeviceClass(nil), classes...)}
	out.cfg.TotalWorkers = total
	// Fastest classes first: the assignment loops below consume them
	// in order for the heavy pool.
	sort.SliceStable(out.classes, func(i, j int) bool {
		return out.classes[i].SpeedFactor > out.classes[j].SpeedFactor
	})
	return out, nil
}

// Name implements Allocator.
func (a *HeteroAllocator) Name() string { return "diffserve-hetero" }

// Classes returns the device classes, fastest first.
func (a *HeteroAllocator) Classes() []DeviceClass {
	return append([]DeviceClass(nil), a.classes...)
}

// Allocate implements Allocator, returning the aggregated plan. Use
// AllocateHetero for the per-class placement.
func (a *HeteroAllocator) Allocate(obs Observation) (Plan, error) {
	hp, err := a.AllocateHetero(obs)
	if err != nil {
		return Plan{}, err
	}
	return hp.Plan, nil
}

// AllocateHetero computes the per-class allocation.
func (a *HeteroAllocator) AllocateHetero(obs Observation) (HeteroPlan, error) {
	start := time.Now()
	c := &a.cfg
	demand := math.Max(obs.Demand, 0) * c.OverProvision
	ts, fs := thresholdGrid(c)
	lightBs, heavyBs := batchCandidates(c)

	best := HeteroPlan{Classes: a.Classes()}
	found := false
	for j := len(ts) - 1; j >= 0 && !found; j-- {
		for _, b1 := range lightBs {
			for _, b2 := range heavyBs {
				hp, ok := a.place(obs, demand, fs[j], b1, b2)
				if !ok {
					continue
				}
				hp.Threshold = ts[j]
				hp.DeferFraction = fs[j]
				hp.Feasible = true
				best = hp
				found = true
				break
			}
			if found {
				break
			}
		}
	}
	if !found {
		best.Plan = bestEffortPlan(c)
		// Best effort: every device serves the light model.
		best.ClassLight = make([]int, len(a.classes))
		best.ClassHeavy = make([]int, len(a.classes))
		light := 0
		for i, cl := range a.classes {
			best.ClassLight[i] = cl.Count
			light += cl.Count
		}
		best.LightWorkers = light
		best.HeavyWorkers = 0
	}
	best.SolveTime = time.Since(start)
	best.Classes = a.Classes()
	return best, nil
}

// place greedily assigns device classes for a fixed (f, b1, b2):
// heavy pool takes the fastest devices first, the light pool fills
// from the remainder slowest-first (the light model is cheap enough
// that slow devices still clear its latency budget). Returns false
// when capacity or latency cannot be met.
func (a *HeteroAllocator) place(obs Observation, demand, f float64, b1, b2 int) (HeteroPlan, bool) {
	c := &a.cfg
	n := len(a.classes)
	hp := HeteroPlan{
		Plan:       Plan{LightBatch: b1, HeavyBatch: b2},
		ClassLight: make([]int, n),
		ClassHeavy: make([]int, n),
	}
	avail := make([]int, n)
	for i, cl := range a.classes {
		avail[i] = cl.Count
	}

	// Heavy pool: fastest classes first.
	needHeavy := demand * f
	slowestHeavy := 0.0
	for i := 0; i < n && needHeavy > 1e-12; i++ {
		perWorker := heavyThroughput(c, b2) * a.classes[i].SpeedFactor
		take := int(math.Ceil(needHeavy / perWorker))
		if take > avail[i] {
			take = avail[i]
		}
		if take == 0 {
			continue
		}
		hp.ClassHeavy[i] = take
		avail[i] -= take
		needHeavy -= float64(take) * perWorker
		slowestHeavy = a.classes[i].SpeedFactor
	}
	if needHeavy > 1e-12 {
		return hp, false
	}

	// Light pool: slowest classes first, preserving fast devices.
	needLight := math.Max(demand, 1e-12)
	slowestLight := 0.0
	for i := n - 1; i >= 0 && needLight > 0; i-- {
		perWorker := lightThroughput(c, b1) * a.classes[i].SpeedFactor
		take := int(math.Ceil(needLight / perWorker))
		if take > avail[i] {
			take = avail[i]
		}
		if take == 0 {
			continue
		}
		hp.ClassLight[i] = take
		avail[i] -= take
		needLight -= float64(take) * perWorker
		if slowestLight == 0 || a.classes[i].SpeedFactor < slowestLight {
			slowestLight = a.classes[i].SpeedFactor
		}
	}
	if needLight > 1e-12 {
		return hp, false
	}
	if slowestLight == 0 { // no light workers assigned: keep one warm
		i := n - 1
		if avail[i] == 0 {
			for i = n - 1; i >= 0 && avail[i] == 0; i-- {
			}
			if i < 0 {
				return hp, false
			}
		}
		hp.ClassLight[i] = 1
		avail[i]--
		slowestLight = a.classes[i].SpeedFactor
	}

	// Latency (Eq. 1) at the slowest class used by each pool.
	q1, q2 := queueDelays(c, obs, b1, b2)
	lat := lightExec(c, b1)/slowestLight + q1
	if f > 0 {
		lat += heavyExec(c, b2)/slowestHeavy + q2
	}
	if lat > c.SLO {
		return hp, false
	}

	for i := range a.classes {
		hp.LightWorkers += hp.ClassLight[i]
		hp.HeavyWorkers += hp.ClassHeavy[i]
	}
	return hp, true
}
