// Package allocator implements DiffServe's resource-allocation
// algorithm (paper §3.3) and the alternatives it is evaluated against.
//
// The DiffServe allocator maximizes the confidence threshold t subject
// to the paper's constraints:
//
//	e(b1) + q(b1) + e(b2) + q(b2) <= L      (latency, Eq. 1)
//	x1 · T1(b1) >= D'                        (light throughput, Eq. 2)
//	x2 · T2(b2) >= D' · f(t)                 (heavy throughput, Eq. 3)
//	x1 + x2 <= S                             (worker budget, Eq. 4)
//
// with D' = lambda · D the over-provisioned demand estimate, q(·) the
// Little's-law queuing delay W = L/lambda from observed queue state,
// and f(t) the profiled deferral fraction. The threshold is discretized onto a
// grid; the resulting problem is a genuine MILP (binary batch and
// threshold selectors, integer worker counts, linearized products)
// solved by the internal/milp branch-and-bound solver. An exhaustive
// grid solver cross-validates optimality in tests and serves as an
// ablation baseline.
package allocator

import (
	"fmt"
	"math"
	"time"

	"diffserve/internal/cascade"
	"diffserve/internal/model"
)

// Observation is the runtime state the controller feeds an allocator.
type Observation struct {
	// Demand is the EWMA-estimated total arrival rate D (QPS).
	Demand float64
	// LightQueueLen and HeavyQueueLen are total queued queries per pool.
	LightQueueLen, HeavyQueueLen int
	// LightArrivalRate and HeavyArrivalRate are the observed per-pool
	// arrival rates used for Little's-law wait estimation; zero values
	// fall back to the demand estimate.
	LightArrivalRate, HeavyArrivalRate float64
}

// Plan is an allocation decision.
type Plan struct {
	// Threshold is the cascade confidence threshold t.
	Threshold float64
	// DeferFraction is f(t) under the deferral profile used to solve.
	DeferFraction float64
	// LightWorkers and HeavyWorkers are worker counts (x1, x2).
	LightWorkers, HeavyWorkers int
	// LightBatch and HeavyBatch are batch sizes (b1, b2).
	LightBatch, HeavyBatch int
	// Feasible is false when even the most permissive configuration
	// cannot satisfy the constraints; the returned plan is then a
	// best-effort all-light configuration and the load balancer is
	// expected to shed load.
	Feasible bool
	// SolveTime is the wall-clock optimization time.
	SolveTime time.Duration
}

func (p Plan) String() string {
	return fmt.Sprintf("t=%.3f f=%.2f light=%dx b%d heavy=%dx b%d feasible=%v",
		p.Threshold, p.DeferFraction, p.LightWorkers, p.LightBatch, p.HeavyWorkers, p.HeavyBatch, p.Feasible)
}

// Allocator computes allocation plans from runtime observations.
type Allocator interface {
	Name() string
	Allocate(obs Observation) (Plan, error)
}

// QueueModel selects how q(b) is estimated in the latency constraint.
type QueueModel int

const (
	// QueueModelLittle uses Little's law W = L/lambda from observed
	// queue state (the paper's model).
	QueueModelLittle QueueModel = iota
	// QueueModelTwiceExec uses the prior-work heuristic that a query's
	// total stage latency is twice the execution delay (queuing delay
	// equals one batch execution: "a query can always be executed in
	// the next batch after it arrives"), ignoring live queue state —
	// the "No queuing model" ablation of §4.5.
	QueueModelTwiceExec
)

// Config parameterizes the DiffServe allocator.
type Config struct {
	// Light and Heavy are the cascade's model variants.
	Light, Heavy *model.Variant
	// DiscPerImage is the discriminator's per-image latency, executed
	// on the light workers' accelerators.
	DiscPerImage float64
	// Deferral is the profiled deferral-fraction function f(t).
	Deferral *cascade.DeferralProfile
	// TotalWorkers is the device budget S.
	TotalWorkers int
	// SLO is the latency deadline L in seconds.
	SLO float64
	// OverProvision is the demand inflation factor lambda (default 1.05).
	OverProvision float64
	// ThresholdGridSize discretizes t (default 20 points).
	ThresholdGridSize int
	// MaxDeferFraction caps the threshold grid at the deferral level
	// found quality-optimal in offline FID profiling; beyond the FID
	// curve's dip, additional deferral wastes capacity and degrades
	// quality (Fig 1a). Default 0.65.
	MaxDeferFraction float64
	// BatchSizes are the candidate batch sizes (default the standard
	// profiled grid).
	BatchSizes []int
	// Queue selects the queuing-delay model.
	Queue QueueModel
	// FixedThreshold, when non-nil, pins t (the "Static threshold"
	// ablation); the optimizer still tunes workers and batches.
	FixedThreshold *float64
	// FixedLightBatch and FixedHeavyBatch, when positive, pin the
	// batch sizes (the AIMD ablation drives these externally).
	FixedLightBatch, FixedHeavyBatch int
	// NodeLimit caps branch-and-bound nodes per MILP subproblem (0
	// means the solver default). When the cap is hit with a feasible
	// incumbent in hand, the allocator uses the best-effort plan
	// rather than failing the tick.
	NodeLimit int
}

func (c *Config) validate() error {
	if c.Light == nil || c.Heavy == nil {
		return fmt.Errorf("allocator: light and heavy variants required")
	}
	if c.Deferral == nil {
		return fmt.Errorf("allocator: deferral profile required")
	}
	if c.TotalWorkers <= 0 {
		return fmt.Errorf("allocator: TotalWorkers must be positive")
	}
	if c.SLO <= 0 {
		return fmt.Errorf("allocator: SLO must be positive")
	}
	return nil
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.OverProvision <= 0 {
		out.OverProvision = 1.05
	}
	if out.ThresholdGridSize <= 0 {
		out.ThresholdGridSize = 20
	}
	if out.MaxDeferFraction <= 0 || out.MaxDeferFraction > 1 {
		out.MaxDeferFraction = 0.65
	}
	if len(out.BatchSizes) == 0 {
		out.BatchSizes = model.StandardBatchSizes
	}
	return out
}

// lightExec returns the light worker's batch execution latency
// including the discriminator pass over the batch.
func lightExec(c *Config, b int) float64 {
	return c.Light.Latency.Latency(b) + float64(b)*c.DiscPerImage
}

// lightThroughput returns a light worker's sustained QPS at batch b.
func lightThroughput(c *Config, b int) float64 {
	return float64(b) / lightExec(c, b)
}

// heavyExec returns the heavy worker's batch execution latency.
func heavyExec(c *Config, b int) float64 { return c.Heavy.Latency.Latency(b) }

// heavyThroughput returns a heavy worker's sustained QPS at batch b.
func heavyThroughput(c *Config, b int) float64 {
	return float64(b) / heavyExec(c, b)
}

// queueDelays returns the queuing-delay estimates (q1, q2) for the
// given batch sizes under the configured queue model.
func queueDelays(c *Config, obs Observation, b1, b2 int) (float64, float64) {
	switch c.Queue {
	case QueueModelTwiceExec:
		return lightExec(c, b1), heavyExec(c, b2)
	default:
		// Little's law W = L/lambda from the observed queue state, as
		// the paper specifies. W already includes the delay caused by
		// in-flight batches: it is the realized mean waiting time.
		l1 := obs.LightArrivalRate
		if l1 <= 0 {
			l1 = math.Max(obs.Demand, 1e-9)
		}
		l2 := obs.HeavyArrivalRate
		if l2 <= 0 {
			l2 = math.Max(obs.Demand*0.3, 1e-9)
		}
		return float64(obs.LightQueueLen) / l1, float64(obs.HeavyQueueLen) / l2
	}
}

// thresholdGrid returns the candidate thresholds (ascending) and their
// deferral fractions. Threshold 0 (defer nothing) is always included
// as the most permissive fallback.
func thresholdGrid(c *Config) (ts, fs []float64) {
	if c.FixedThreshold != nil {
		t := *c.FixedThreshold
		return []float64{t}, []float64{c.Deferral.Fraction(t)}
	}
	n := c.ThresholdGridSize
	ts = make([]float64, 0, n+1)
	fs = make([]float64, 0, n+1)
	ts = append(ts, 0)
	fs = append(fs, 0)
	for i := 1; i <= n; i++ {
		frac := c.MaxDeferFraction * float64(i) / float64(n)
		t := c.Deferral.ThresholdForFraction(frac)
		ts = append(ts, t)
		fs = append(fs, c.Deferral.Fraction(t))
	}
	return ts, fs
}

// batchCandidates returns the candidate batch lists honoring fixed
// batch overrides.
func batchCandidates(c *Config) (light, heavy []int) {
	light = c.BatchSizes
	heavy = c.BatchSizes
	if c.FixedLightBatch > 0 {
		light = []int{c.FixedLightBatch}
	}
	if c.FixedHeavyBatch > 0 {
		heavy = []int{c.FixedHeavyBatch}
	}
	return light, heavy
}

// bestEffortPlan is returned when no configuration is feasible: all
// workers serve the light model at the largest batch within the SLO
// (or the smallest batch if none fits), threshold 0.
func bestEffortPlan(c *Config) Plan {
	b := c.BatchSizes[0]
	if got, ok := c.Light.Latency.BestBatchWithin(c.SLO / 2); ok {
		b = got
	}
	if c.FixedLightBatch > 0 {
		b = c.FixedLightBatch
	}
	return Plan{
		Threshold: 0, DeferFraction: 0,
		LightWorkers: c.TotalWorkers, HeavyWorkers: 0,
		LightBatch: b, HeavyBatch: firstBatch(c),
		Feasible: false,
	}
}

func firstBatch(c *Config) int {
	if c.FixedHeavyBatch > 0 {
		return c.FixedHeavyBatch
	}
	return c.BatchSizes[0]
}
