package allocator

import (
	"fmt"
	"math"
	"time"

	"diffserve/internal/model"
)

// ClipperAllocator is the static single-model baseline (Clipper-Light
// / Clipper-Heavy): every worker hosts the same variant forever. The
// batch size is the largest whose execution latency fits within half
// the SLO, leaving headroom for queuing, re-planned cheaply per call
// (Clipper's AIMD batching is modeled separately by AIMDBatcher in the
// serving loop).
type ClipperAllocator struct {
	variant *model.Variant
	heavy   bool
	workers int
	slo     float64
	disc    float64
}

// NewClipper builds a Clipper baseline. heavy selects whether the
// hosted variant plays the heavy role (affects which pool the plan
// populates: Clipper-Light serves everything from the light pool with
// threshold 0, Clipper-Heavy defers everything with threshold 1).
func NewClipper(v *model.Variant, heavy bool, workers int, slo float64) (*ClipperAllocator, error) {
	if v == nil {
		return nil, fmt.Errorf("allocator: Clipper needs a variant")
	}
	if workers <= 0 || slo <= 0 {
		return nil, fmt.Errorf("allocator: Clipper needs positive workers and SLO")
	}
	return &ClipperAllocator{variant: v, heavy: heavy, workers: workers, slo: slo}, nil
}

// Name implements Allocator.
func (a *ClipperAllocator) Name() string {
	if a.heavy {
		return "clipper-heavy"
	}
	return "clipper-light"
}

// Allocate implements Allocator.
func (a *ClipperAllocator) Allocate(Observation) (Plan, error) {
	b, ok := a.variant.Latency.BestBatchWithin(a.slo / 2)
	if !ok {
		b = model.StandardBatchSizes[0]
	}
	if a.heavy {
		return Plan{
			Threshold: 1.01, DeferFraction: 1,
			LightWorkers: 0, HeavyWorkers: a.workers,
			LightBatch: model.StandardBatchSizes[0], HeavyBatch: b,
			Feasible: true,
		}, nil
	}
	return Plan{
		Threshold: 0, DeferFraction: 0,
		LightWorkers: a.workers, HeavyWorkers: 0,
		LightBatch: b, HeavyBatch: model.StandardBatchSizes[0],
		Feasible: true,
	}, nil
}

// ProteusAllocator models Proteus (Ahmad et al., 2024): dynamic model
// scaling that picks how many workers host each variant to maximize
// response quality subject to capacity, but routes queries to variants
// *randomly* in proportion to pool capacity — no query awareness.
// Its plan reuses the cascade Plan shape: DeferFraction is the
// probability a query is routed to the heavy pool, and Threshold is
// unused (the load balancer interprets Proteus plans with random
// routing).
type ProteusAllocator struct {
	cfg Config
}

// NewProteus builds a Proteus-style allocator from the same config as
// the DiffServe allocator (variants, SLO, worker budget).
func NewProteus(cfg Config) (*ProteusAllocator, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &ProteusAllocator{cfg: cfg.withDefaults()}, nil
}

// Name implements Allocator.
func (a *ProteusAllocator) Name() string { return "proteus" }

// Allocate implements Allocator. It maximizes the fraction rho of
// queries served by the heavy (higher-quality) variant subject to
//
//	x2·T2(b2) >= rho·D',  x1·T1(b1) >= (1-rho)·D',  x1+x2 <= S,
//	e_i(b_i) + q_i(b_i) <= L for each pool independently
//
// (no cascade dependency: each query runs exactly one model).
func (a *ProteusAllocator) Allocate(obs Observation) (Plan, error) {
	start := time.Now()
	c := &a.cfg
	demand := math.Max(obs.Demand, 1e-9) * c.OverProvision
	lightBs, heavyBs := batchCandidates(c)

	best := Plan{Feasible: false}
	bestRho := -1.0
	for _, b1 := range lightBs {
		for _, b2 := range heavyBs {
			q1, q2 := queueDelays(c, obs, b1, b2)
			// Independent pools: each path must fit the SLO alone.
			if lightExec(c, b1)+q1 > c.SLO || heavyExec(c, b2)+q2 > c.SLO {
				continue
			}
			// Greedily allocate heavy workers and check the light
			// remainder, sweeping the heavy share.
			for x2 := c.TotalWorkers - 1; x2 >= 0; x2-- {
				rho := math.Min(1, float64(x2)*heavyThroughput(c, b2)/demand)
				x1Need := int(math.Ceil((1 - rho) * demand / lightThroughput(c, b1)))
				if x1Need < 1 {
					x1Need = 1
				}
				if x1Need+x2 > c.TotalWorkers {
					continue
				}
				if rho > bestRho {
					bestRho = rho
					best = Plan{
						Threshold: rho, DeferFraction: rho,
						LightWorkers: x1Need, HeavyWorkers: x2,
						LightBatch: b1, HeavyBatch: b2,
						Feasible: true,
					}
				}
				break // smaller x2 only lowers rho for this (b1, b2)
			}
		}
	}
	if bestRho < 0 {
		best = bestEffortPlan(c)
	}
	best.SolveTime = time.Since(start)
	return best, nil
}

// StaticAllocator returns a fixed plan on every call: the
// DiffServe-Static baseline (provisioned for peak, query-aware but
// never adapting) or any other frozen configuration.
type StaticAllocator struct {
	name string
	plan Plan
}

// NewStatic wraps a fixed plan.
func NewStatic(name string, plan Plan) *StaticAllocator {
	return &StaticAllocator{name: name, plan: plan}
}

// NewDiffServeStatic builds the paper's DiffServe-Static baseline:
// query-aware (cascade + discriminator) but frozen. Worker allocation
// is provisioned for the given peak demand — the light pool is sized
// so the first cascade stage never saturates — while the confidence
// threshold stays pinned at deferTarget (default 0.55), the operator's
// quality-throughput compromise for typical load. At peak demand the
// heavy pool therefore receives more deferrals than it can absorb,
// which is exactly the SLO-violation behaviour the paper reports for
// this baseline (§4.3: up to 19% during peak).
func NewDiffServeStatic(cfg Config, peakDemand, deferTarget float64) (*StaticAllocator, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	c := cfg.withDefaults()
	if deferTarget <= 0 || deferTarget > 1 {
		deferTarget = 0.55
	}
	demand := peakDemand * c.OverProvision
	t := c.Deferral.ThresholdForFraction(deferTarget)
	f := c.Deferral.Fraction(t)

	best := Plan{}
	bestHeavyCap := -1.0
	for _, b1 := range c.BatchSizes {
		for _, b2 := range c.BatchSizes {
			// Provisioning uses the optimistic empty-queue latency
			// model: execution only, with 10% headroom.
			if lightExec(&c, b1)+heavyExec(&c, b2) > 0.9*c.SLO {
				continue
			}
			x1 := int(math.Ceil(demand / lightThroughput(&c, b1)))
			if x1 < 1 {
				x1 = 1
			}
			x2 := c.TotalWorkers - x1
			if x2 < 1 {
				continue
			}
			cap2 := float64(x2) * heavyThroughput(&c, b2)
			if cap2 > bestHeavyCap {
				bestHeavyCap = cap2
				best = Plan{
					Threshold: t, DeferFraction: f,
					LightWorkers: x1, HeavyWorkers: x2,
					LightBatch: b1, HeavyBatch: b2,
					Feasible: true,
				}
			}
		}
	}
	if bestHeavyCap < 0 {
		best = bestEffortPlan(&c)
	}
	return &StaticAllocator{name: "diffserve-static", plan: best}, nil
}

// Name implements Allocator.
func (a *StaticAllocator) Name() string { return a.name }

// Plan returns the frozen plan.
func (a *StaticAllocator) Plan() Plan { return a.plan }

// Allocate implements Allocator.
func (a *StaticAllocator) Allocate(Observation) (Plan, error) { return a.plan, nil }

// AIMDBatcher implements Clipper's additive-increase /
// multiplicative-decrease batch-size heuristic, the batching ablation
// of §4.5: on an SLO timeout the batch size halves; otherwise it grows
// by one profiled step.
type AIMDBatcher struct {
	sizes []int
	idx   int
}

// NewAIMDBatcher starts at the smallest batch size of the grid.
func NewAIMDBatcher(sizes []int) *AIMDBatcher {
	if len(sizes) == 0 {
		sizes = model.StandardBatchSizes
	}
	return &AIMDBatcher{sizes: append([]int(nil), sizes...)}
}

// Batch returns the current batch size.
func (a *AIMDBatcher) Batch() int { return a.sizes[a.idx] }

// Observe updates the batch size given whether the last interval saw
// an SLO timeout.
func (a *AIMDBatcher) Observe(sloTimeout bool) {
	if sloTimeout {
		// Multiplicative decrease: halve (one grid step down on the
		// power-of-two grid).
		if a.idx > 0 {
			a.idx--
		}
		return
	}
	// Additive increase: one step up.
	if a.idx < len(a.sizes)-1 {
		a.idx++
	}
}
