package cascade

import (
	"testing"

	"diffserve/internal/discriminator"
	"diffserve/internal/fid"
	"diffserve/internal/imagespace"
	"diffserve/internal/model"
	"diffserve/internal/parallel"
	"diffserve/internal/stats"
)

// calibSetup builds the shared fixtures for calibration checks.
func calibSetup(t testing.TB, n int) (*imagespace.Space, *model.Registry, []*imagespace.Query, *fid.Reference) {
	t.Helper()
	rng := stats.NewRNG(20250610)
	space, err := imagespace.NewSpace(imagespace.DefaultSpaceConfig(), rng.Stream("space"))
	if err != nil {
		t.Fatal(err)
	}
	reg := model.BuiltinRegistry()
	queries := space.SampleQueries(0, n)
	real := make([][]float64, n)
	for i, q := range queries {
		real[i] = space.RealImage(q)
	}
	ref, err := fid.NewReference(real)
	if err != nil {
		t.Fatal(err)
	}
	return space, reg, queries, ref
}

// cascadeFIDCurve sweeps deferral fractions — fanned out across CPUs
// with parallel.Map, since each fraction's pass over the query set is
// independent and deterministic — and returns FIDs of the served
// mixture under the cascade's scorer.
func cascadeFIDCurve(t testing.TB, c *Cascade, queries []*imagespace.Query, ref *fid.Reference, fracs []float64) []float64 {
	t.Helper()
	prof, err := ProfileDeferral(c, queries)
	if err != nil {
		t.Fatal(err)
	}
	out, err := parallel.Map(0, len(fracs), func(i int) (float64, error) {
		thr := prof.ThresholdForFraction(fracs[i])
		feats := make([][]float64, len(queries))
		for j, q := range queries {
			feats[j] = c.Process(q, thr).Served.Features
		}
		return ref.Score(feats)
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestCalibrationReport prints the calibration summary. Run with -v to
// inspect the numbers against the paper's figures.
func TestCalibrationReport(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration report skipped in -short mode")
	}
	space, reg, queries, ref := calibSetup(t, 5000)
	rng := stats.NewRNG(99)

	// Standalone per-variant FIDs are independent passes over the
	// query set: sweep them through the shared fan-out pool.
	names := reg.Names()
	scores, err := parallel.Map(0, len(names), func(i int) (float64, error) {
		v := reg.MustGet(names[i])
		feats := make([][]float64, len(queries))
		for j, q := range queries {
			feats[j] = space.GenerateDeterministic(q, v.Name, v.Gen).Features
		}
		return ref.Score(feats)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, name := range names {
		v := reg.MustGet(name)
		t.Logf("standalone FID %-16s = %6.2f (base latency %.3fs)", v.DisplayName, scores[i], v.BaseLatency())
	}

	for _, spec := range model.BuiltinCascades() {
		light, heavy := reg.MustGet(spec.Light), reg.MustGet(spec.Heavy)
		effnet, err := discriminator.New(discriminator.Config{
			Arch: discriminator.ArchEfficientNet, Train: discriminator.TrainGT,
		}, rng)
		if err != nil {
			t.Fatal(err)
		}
		c, err := New(space, light, heavy, effnet)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%s easy fraction = %.3f", spec.Name, c.EasyFraction(queries))
	}

	// FID-vs-deferral curves for cascade 1 under each scorer.
	spec := model.BuiltinCascades()[0]
	light, heavy := reg.MustGet(spec.Light), reg.MustGet(spec.Heavy)
	fracs := []float64{0, 0.2, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	scorers := []discriminator.Scorer{}
	effnet, err := discriminator.New(discriminator.Config{Arch: discriminator.ArchEfficientNet, Train: discriminator.TrainGT}, rng)
	if err != nil {
		t.Fatal(err)
	}
	scorers = append(scorers, effnet, discriminator.NewRandom(rng), discriminator.NewPickScore(rng), discriminator.NewClipScore(rng))
	for _, s := range scorers {
		c, err := New(space, light, heavy, s)
		if err != nil {
			t.Fatal(err)
		}
		curve := cascadeFIDCurve(t, c, queries, ref, fracs)
		t.Logf("%-14s FID curve over deferral %v = %v", s.Name(), fracs, fmtFloats(curve))
	}
}

func fmtFloats(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(int(x*100+0.5)) / 100
	}
	return out
}
