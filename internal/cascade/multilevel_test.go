package cascade

import (
	"math"
	"testing"

	"diffserve/internal/discriminator"
	"diffserve/internal/imagespace"
	"diffserve/internal/model"
	"diffserve/internal/stats"
)

func newMultiFixture(t *testing.T, n int) (*imagespace.Space, *MultiLevel, []*imagespace.Query) {
	t.Helper()
	rng := stats.NewRNG(606)
	space, err := imagespace.NewSpace(imagespace.DefaultSpaceConfig(), rng.Stream("space"))
	if err != nil {
		t.Fatal(err)
	}
	reg := model.BuiltinRegistry()
	mk := func(label string) discriminator.Scorer {
		d, err := discriminator.New(discriminator.Config{
			Arch: discriminator.ArchEfficientNet, Train: discriminator.TrainGT,
		}, rng.Stream(label))
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	ml, err := NewMultiLevel(space,
		[]*model.Variant{reg.MustGet("sdxs"), reg.MustGet("sdturbo"), reg.MustGet("sdv15")},
		[]discriminator.Scorer{mk("d0"), mk("d1")})
	if err != nil {
		t.Fatal(err)
	}
	return space, ml, space.SampleQueries(0, n)
}

func TestNewMultiLevelValidation(t *testing.T) {
	space, ml, _ := newMultiFixture(t, 1)
	reg := model.BuiltinRegistry()
	if _, err := NewMultiLevel(nil, ml.Variants, ml.Scorers); err == nil {
		t.Error("nil space should fail")
	}
	if _, err := NewMultiLevel(space, ml.Variants[:1], nil); err == nil {
		t.Error("single stage should fail")
	}
	if _, err := NewMultiLevel(space, ml.Variants, ml.Scorers[:1]); err == nil {
		t.Error("scorer count mismatch should fail")
	}
	// Out-of-order stages (heavy before light).
	bad := []*model.Variant{reg.MustGet("sdv15"), reg.MustGet("sdturbo")}
	if _, err := NewMultiLevel(space, bad, ml.Scorers[:1]); err == nil {
		t.Error("non-increasing latency should fail")
	}
	if _, err := NewMultiLevel(space, ml.Variants, []discriminator.Scorer{ml.Scorers[0], nil}); err == nil {
		t.Error("nil scorer should fail")
	}
	if ml.Stages() != 3 {
		t.Errorf("Stages = %d", ml.Stages())
	}
}

func TestMultiLevelThresholdExtremes(t *testing.T) {
	_, ml, queries := newMultiFixture(t, 100)
	for _, q := range queries {
		// Zero thresholds: first stage always serves.
		out, err := ml.Process(q, []float64{0, 0})
		if err != nil {
			t.Fatal(err)
		}
		if out.ServedStage != 0 || out.Served.Variant != "sdxs" {
			t.Fatalf("zero thresholds served stage %d (%s)", out.ServedStage, out.Served.Variant)
		}
		// Impossible thresholds: final stage serves.
		out, err = ml.Process(q, []float64{1.01, 1.01})
		if err != nil {
			t.Fatal(err)
		}
		if out.ServedStage != 2 || out.Served.Variant != "sdv15" {
			t.Fatalf("max thresholds served stage %d", out.ServedStage)
		}
		// Executed stages accumulate latency.
		if out.Latency <= 0 {
			t.Fatal("latency not accumulated")
		}
	}
}

func TestMultiLevelThresholdCountChecked(t *testing.T) {
	_, ml, queries := newMultiFixture(t, 1)
	if _, err := ml.Process(queries[0], []float64{0.5}); err == nil {
		t.Error("wrong threshold count should fail")
	}
}

func TestMultiLevelLatencyAccounting(t *testing.T) {
	_, ml, queries := newMultiFixture(t, 50)
	for _, q := range queries {
		out, err := ml.Process(q, []float64{0.5, 0.5})
		if err != nil {
			t.Fatal(err)
		}
		want := 0.0
		for i := 0; i <= out.ServedStage; i++ {
			want += ml.Variants[i].Latency.Latency(1)
			if i < len(ml.Scorers) && i < out.ServedStage+1 && i != ml.Stages()-1 {
				// Scorer runs on every non-final executed stage.
				if i <= out.ServedStage && i < len(ml.Scorers) {
					want += ml.Scorers[i].PerImageLatency()
				}
			}
		}
		// Served at final stage means both scorers ran; served at
		// stage i < final means scorers 0..i ran.
		if math.Abs(out.Latency-want) > 1e-9 {
			t.Fatalf("latency %v, want %v (stage %d)", out.Latency, want, out.ServedStage)
		}
	}
}

func TestStageFractionsSumToOne(t *testing.T) {
	_, ml, queries := newMultiFixture(t, 800)
	fracs, err := ml.StageFractions(queries, []float64{0.5, 0.4})
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, f := range fracs {
		if f < 0 {
			t.Fatalf("negative fraction %v", f)
		}
		sum += f
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("fractions sum to %v", sum)
	}
	// All stages should see traffic at moderate thresholds.
	for i, f := range fracs {
		if f == 0 {
			t.Errorf("stage %d starved", i)
		}
	}
	if _, err := ml.StageFractions(nil, []float64{0.5, 0.4}); err == nil {
		t.Error("empty query set should fail")
	}
}

func TestHigherThresholdsPushTrafficDownstream(t *testing.T) {
	_, ml, queries := newMultiFixture(t, 800)
	lo, err := ml.StageFractions(queries, []float64{0.2, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	hi, err := ml.StageFractions(queries, []float64{0.8, 0.8})
	if err != nil {
		t.Fatal(err)
	}
	if !(hi[2] > lo[2]) {
		t.Errorf("stricter thresholds should push more traffic to the final stage: %v vs %v", hi, lo)
	}
	if !(hi[0] < lo[0]) {
		t.Errorf("stricter thresholds should serve less at stage 0: %v vs %v", hi, lo)
	}
}

func TestProfileStageConditioning(t *testing.T) {
	_, ml, queries := newMultiFixture(t, 800)
	prof0, err := ml.ProfileStage(queries, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if prof0.Len() != len(queries) {
		t.Errorf("stage 0 profile over %d queries, want all %d", prof0.Len(), len(queries))
	}
	t0 := prof0.ThresholdForFraction(0.5)
	prof1, err := ml.ProfileStage(queries, []float64{t0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Only deferred (~half) queries reach stage 1.
	if prof1.Len() >= len(queries) || prof1.Len() == 0 {
		t.Errorf("stage 1 profile over %d queries, want ~half", prof1.Len())
	}
	if _, err := ml.ProfileStage(queries, nil, 5); err == nil {
		t.Error("out-of-range stage should fail")
	}
	if _, err := ml.ProfileStage(queries, nil, 1); err == nil {
		t.Error("missing upstream thresholds should fail")
	}
}

func TestMultiLevelDeterministic(t *testing.T) {
	_, ml, queries := newMultiFixture(t, 30)
	for _, q := range queries {
		a, err := ml.Process(q, []float64{0.5, 0.5})
		if err != nil {
			t.Fatal(err)
		}
		b, err := ml.Process(q, []float64{0.5, 0.5})
		if err != nil {
			t.Fatal(err)
		}
		if a.ServedStage != b.ServedStage || a.Latency != b.Latency {
			t.Fatal("multi-level process not deterministic")
		}
	}
}
