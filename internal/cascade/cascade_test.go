package cascade

import (
	"math"
	"testing"
	"testing/quick"

	"diffserve/internal/discriminator"
	"diffserve/internal/fid"
	"diffserve/internal/imagespace"
	"diffserve/internal/model"
	"diffserve/internal/stats"
)

func newFixture(t *testing.T, n int) (*imagespace.Space, *Cascade, []*imagespace.Query) {
	t.Helper()
	rng := stats.NewRNG(123)
	space, err := imagespace.NewSpace(imagespace.DefaultSpaceConfig(), rng.Stream("space"))
	if err != nil {
		t.Fatal(err)
	}
	reg := model.BuiltinRegistry()
	d, err := discriminator.New(discriminator.Config{
		Arch: discriminator.ArchEfficientNet, Train: discriminator.TrainGT,
	}, rng.Stream("disc"))
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(space, reg.MustGet("sdturbo"), reg.MustGet("sdv15"), d)
	if err != nil {
		t.Fatal(err)
	}
	return space, c, space.SampleQueries(0, n)
}

func TestNewValidation(t *testing.T) {
	space, c, _ := newFixture(t, 1)
	if _, err := New(nil, c.Light, c.Heavy, c.Scorer); err == nil {
		t.Error("nil space should fail")
	}
	if _, err := New(space, c.Light, c.Heavy, nil); err == nil {
		t.Error("nil scorer should fail")
	}
	// Light slower than heavy must be rejected.
	if _, err := New(space, c.Heavy, c.Light, c.Scorer); err == nil {
		t.Error("inverted light/heavy should fail")
	}
}

func TestProcessThresholdExtremes(t *testing.T) {
	_, c, queries := newFixture(t, 200)
	for _, q := range queries {
		// Threshold 0: everything has confidence >= 0, nothing deferred.
		out := c.Process(q, 0)
		if out.Deferred {
			t.Fatal("threshold 0 deferred a query")
		}
		if out.Served.Variant != c.Light.Name {
			t.Fatal("threshold 0 should serve the light image")
		}
		// Threshold > 1: everything deferred.
		out = c.Process(q, 1.01)
		if !out.Deferred {
			t.Fatal("threshold > 1 failed to defer")
		}
		if out.Served.Variant != c.Heavy.Name {
			t.Fatal("deferred query should serve the heavy image")
		}
	}
}

func TestProcessLatencyAccounting(t *testing.T) {
	_, c, queries := newFixture(t, 50)
	base := c.Light.Latency.Latency(1) + c.Scorer.PerImageLatency()
	withHeavy := base + c.Heavy.Latency.Latency(1)
	for _, q := range queries {
		out := c.Process(q, 0.5)
		want := base
		if out.Deferred {
			want = withHeavy
		}
		if math.Abs(out.Latency-want) > 1e-12 {
			t.Fatalf("latency = %v, want %v (deferred=%v)", out.Latency, want, out.Deferred)
		}
	}
}

func TestProcessDeterministic(t *testing.T) {
	_, c, queries := newFixture(t, 20)
	for _, q := range queries {
		a := c.Process(q, 0.5)
		b := c.Process(q, 0.5)
		if a.Confidence != b.Confidence || a.Deferred != b.Deferred {
			t.Fatal("Process is not deterministic")
		}
	}
}

func TestDeferralProfileMonotone(t *testing.T) {
	_, c, queries := newFixture(t, 1000)
	prof, err := ProfileDeferral(c, queries)
	if err != nil {
		t.Fatal(err)
	}
	f := func(aRaw, bRaw uint16) bool {
		a := float64(aRaw) / 65535
		b := float64(bRaw) / 65535
		if a > b {
			a, b = b, a
		}
		return prof.Fraction(a) <= prof.Fraction(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
	if got := prof.Fraction(0); got != 0 {
		t.Errorf("Fraction(0) = %v, want 0", got)
	}
	if got := prof.Fraction(1.01); got != 1 {
		t.Errorf("Fraction(1.01) = %v, want 1", got)
	}
}

func TestDeferralProfileInverse(t *testing.T) {
	_, c, queries := newFixture(t, 2000)
	prof, err := ProfileDeferral(c, queries)
	if err != nil {
		t.Fatal(err)
	}
	for _, frac := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		thr := prof.ThresholdForFraction(frac)
		got := prof.Fraction(thr)
		if math.Abs(got-frac) > 0.02 {
			t.Errorf("round trip fraction %v -> threshold %v -> %v", frac, thr, got)
		}
	}
	if prof.ThresholdForFraction(0) != 0 {
		t.Error("ThresholdForFraction(0) should be 0")
	}
	if prof.ThresholdForFraction(1) != 1 {
		t.Error("ThresholdForFraction(1) should be 1")
	}
}

func TestProfileDeferralErrors(t *testing.T) {
	_, c, _ := newFixture(t, 1)
	if _, err := ProfileDeferral(c, nil); err == nil {
		t.Error("empty query set should fail")
	}
	if _, err := NewDeferralProfileFromConfidences(nil); err == nil {
		t.Error("empty confidence set should fail")
	}
}

func TestThresholdsGridAscending(t *testing.T) {
	_, c, queries := newFixture(t, 1000)
	prof, err := ProfileDeferral(c, queries)
	if err != nil {
		t.Fatal(err)
	}
	ts := prof.Thresholds(15)
	if len(ts) != 15 {
		t.Fatalf("len = %d", len(ts))
	}
	for i := 1; i < len(ts); i++ {
		if ts[i] < ts[i-1] {
			t.Fatalf("thresholds not ascending: %v", ts)
		}
	}
	if prof.Thresholds(0) != nil {
		t.Error("Thresholds(0) should be nil")
	}
}

func TestOnlineDeferralBlending(t *testing.T) {
	_, c, queries := newFixture(t, 1000)
	prof, err := ProfileDeferral(c, queries)
	if err != nil {
		t.Fatal(err)
	}
	od := NewOnlineDeferral(prof, 100)
	// Before observations: pure offline.
	if od.Fraction(0.5) != prof.Fraction(0.5) {
		t.Error("pre-observation estimate should equal offline profile")
	}
	// Feed observations all below 0.5: live fraction at 0.5 becomes 1,
	// blend should move above the offline value.
	for i := 0; i < 100; i++ {
		od.Observe(0.1)
	}
	blended := od.Fraction(0.5)
	want := 0.5*prof.Fraction(0.5) + 0.5*1.0
	if math.Abs(blended-want) > 1e-12 {
		t.Errorf("blended = %v, want %v", blended, want)
	}
}

func TestOnlineDeferralRingWraps(t *testing.T) {
	prof, err := NewDeferralProfileFromConfidences([]float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	od := NewOnlineDeferral(prof, 10)
	for i := 0; i < 25; i++ {
		od.Observe(0.9)
	}
	// All live observations are 0.9 >= t=0.8 -> live fraction 0.
	got := od.Fraction(0.8)
	want := 0.5*prof.Fraction(0.8) + 0
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("after wrap = %v, want %v", got, want)
	}
}

func TestEasyFractionInPaperRange(t *testing.T) {
	// Paper Fig 1b: 20-40% of queries are easy for all cascades.
	rng := stats.NewRNG(321)
	space, err := imagespace.NewSpace(imagespace.DefaultSpaceConfig(), rng.Stream("space"))
	if err != nil {
		t.Fatal(err)
	}
	reg := model.BuiltinRegistry()
	queries := space.SampleQueries(0, 3000)
	d, err := discriminator.New(discriminator.Config{
		Arch: discriminator.ArchEfficientNet, Train: discriminator.TrainGT,
	}, rng.Stream("d"))
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range model.BuiltinCascades() {
		c, err := New(space, reg.MustGet(spec.Light), reg.MustGet(spec.Heavy), d)
		if err != nil {
			t.Fatal(err)
		}
		frac := c.EasyFraction(queries)
		if frac < 0.18 || frac > 0.45 {
			t.Errorf("%s easy fraction = %.3f, want ~[0.2, 0.4]", spec.Name, frac)
		}
	}
	if got := (&Cascade{}).EasyFraction(nil); got != 0 {
		t.Errorf("EasyFraction(nil) = %v", got)
	}
}

// TestFigure1aOrdering is the core qualitative regression: at matched
// deferral fractions, Discriminator < Random < PickScore/ClipScore in
// FID, and the discriminator curve dips below the all-heavy endpoint.
func TestFigure1aOrdering(t *testing.T) {
	rng := stats.NewRNG(555)
	space, err := imagespace.NewSpace(imagespace.DefaultSpaceConfig(), rng.Stream("space"))
	if err != nil {
		t.Fatal(err)
	}
	reg := model.BuiltinRegistry()
	queries := space.SampleQueries(0, 2500)
	real := make([][]float64, len(queries))
	for i, q := range queries {
		real[i] = space.RealImage(q)
	}
	ref, err := fid.NewReference(real)
	if err != nil {
		t.Fatal(err)
	}
	light, heavy := reg.MustGet("sdturbo"), reg.MustGet("sdv15")

	curve := func(s discriminator.Scorer, fracs []float64) []float64 {
		c, err := New(space, light, heavy, s)
		if err != nil {
			t.Fatal(err)
		}
		prof, err := ProfileDeferral(c, queries)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]float64, len(fracs))
		for i, f := range fracs {
			thr := prof.ThresholdForFraction(f)
			feats := make([][]float64, len(queries))
			for j, q := range queries {
				feats[j] = c.Process(q, thr).Served.Features
			}
			v, err := ref.Score(feats)
			if err != nil {
				t.Fatal(err)
			}
			out[i] = v
		}
		return out
	}

	fracs := []float64{0.4, 0.6, 0.8}
	effnet, err := discriminator.New(discriminator.Config{Arch: discriminator.ArchEfficientNet, Train: discriminator.TrainGT}, rng.Stream("d"))
	if err != nil {
		t.Fatal(err)
	}
	disc := curve(effnet, fracs)
	random := curve(discriminator.NewRandom(rng), fracs)
	pick := curve(discriminator.NewPickScore(rng), fracs)
	clip := curve(discriminator.NewClipScore(rng), fracs)

	for i := range fracs {
		if !(disc[i] < random[i]) {
			t.Errorf("frac %.1f: discriminator FID %.2f not below random %.2f", fracs[i], disc[i], random[i])
		}
		if !(pick[i] > random[i]-0.1) {
			t.Errorf("frac %.1f: PickScore FID %.2f should not beat random %.2f", fracs[i], pick[i], random[i])
		}
		if !(clip[i] > random[i]-0.1) {
			t.Errorf("frac %.1f: ClipScore FID %.2f should not beat random %.2f", fracs[i], clip[i], random[i])
		}
	}

	// All-heavy endpoint: the discriminator cascade must dip below it.
	allHeavyFeats := make([][]float64, len(queries))
	for j, q := range queries {
		allHeavyFeats[j] = space.GenerateDeterministic(q, heavy.Name, heavy.Gen).Features
	}
	allHeavy, err := ref.Score(allHeavyFeats)
	if err != nil {
		t.Fatal(err)
	}
	minDisc := disc[0]
	for _, v := range disc {
		if v < minDisc {
			minDisc = v
		}
	}
	if !(minDisc < allHeavy-0.5) {
		t.Errorf("discriminator cascade min FID %.2f should dip below all-heavy %.2f", minDisc, allHeavy)
	}
}
