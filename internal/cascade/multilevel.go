package cascade

import (
	"fmt"

	"diffserve/internal/discriminator"
	"diffserve/internal/imagespace"
	"diffserve/internal/model"
)

// MultiLevel is the paper's §5 extension to longer pipelines: a chain
// of model variants ordered light to heavy, with a discriminator after
// every stage except the last and one confidence threshold per
// discriminator. A query walks the chain until some stage's confidence
// clears its threshold (or the final stage serves unconditionally).
type MultiLevel struct {
	Space    *imagespace.Space
	Variants []*model.Variant
	// Scorers[i] evaluates the output of Variants[i]; the final stage
	// has no scorer.
	Scorers []discriminator.Scorer
}

// NewMultiLevel builds a multi-level cascade from variants ordered
// light to heavy. It requires at least two stages, strictly increasing
// batch-1 latency, and exactly len(variants)-1 scorers.
func NewMultiLevel(space *imagespace.Space, variants []*model.Variant, scorers []discriminator.Scorer) (*MultiLevel, error) {
	if space == nil {
		return nil, fmt.Errorf("cascade: space required")
	}
	if len(variants) < 2 {
		return nil, fmt.Errorf("cascade: multi-level needs >= 2 stages, got %d", len(variants))
	}
	if len(scorers) != len(variants)-1 {
		return nil, fmt.Errorf("cascade: need %d scorers for %d stages, got %d",
			len(variants)-1, len(variants), len(scorers))
	}
	for i, v := range variants {
		if v == nil {
			return nil, fmt.Errorf("cascade: nil variant at stage %d", i)
		}
		if i > 0 && variants[i-1].BaseLatency() >= v.BaseLatency() {
			return nil, fmt.Errorf("cascade: stage %d (%s) not heavier than stage %d (%s)",
				i, v.Name, i-1, variants[i-1].Name)
		}
	}
	for i, s := range scorers {
		if s == nil {
			return nil, fmt.Errorf("cascade: nil scorer at stage %d", i)
		}
	}
	return &MultiLevel{Space: space, Variants: variants, Scorers: scorers}, nil
}

// Stages returns the number of model stages.
func (m *MultiLevel) Stages() int { return len(m.Variants) }

// MultiOutcome records one query's walk through the chain.
type MultiOutcome struct {
	Query *imagespace.Query
	// StageImages holds the generation of every executed stage.
	StageImages []imagespace.Image
	// Confidences holds the scorer outputs for executed non-final stages.
	Confidences []float64
	// ServedStage is the index of the stage whose output was returned.
	ServedStage int
	Served      imagespace.Image
	// Latency is the end-to-end batch-1 latency across executed stages.
	Latency float64
}

// Process walks a query through the chain under the given per-stage
// thresholds (len = Stages()-1). Threshold i applies to stage i's
// confidence: meeting it serves stage i's output.
func (m *MultiLevel) Process(q *imagespace.Query, thresholds []float64) (MultiOutcome, error) {
	if len(thresholds) != len(m.Scorers) {
		return MultiOutcome{}, fmt.Errorf("cascade: need %d thresholds, got %d", len(m.Scorers), len(thresholds))
	}
	out := MultiOutcome{Query: q}
	for i, v := range m.Variants {
		img := m.Space.GenerateDeterministic(q, v.Name, v.Gen)
		out.StageImages = append(out.StageImages, img)
		out.Latency += v.Latency.Latency(1)
		if i == len(m.Variants)-1 {
			out.ServedStage = i
			out.Served = img
			return out, nil
		}
		conf := m.Scorers[i].Confidence(q, img)
		out.Confidences = append(out.Confidences, conf)
		out.Latency += m.Scorers[i].PerImageLatency()
		if conf >= thresholds[i] {
			out.ServedStage = i
			out.Served = img
			return out, nil
		}
	}
	// Unreachable: the final stage always serves.
	return out, fmt.Errorf("cascade: chain fell through")
}

// StageFractions estimates, for the given thresholds, the fraction of
// queries served by each stage — the multi-threshold generalization of
// the two-level deferral fraction f(t) that the extended MILP
// formulation consumes.
func (m *MultiLevel) StageFractions(queries []*imagespace.Query, thresholds []float64) ([]float64, error) {
	if len(queries) == 0 {
		return nil, fmt.Errorf("cascade: need queries")
	}
	counts := make([]int, m.Stages())
	for _, q := range queries {
		out, err := m.Process(q, thresholds)
		if err != nil {
			return nil, err
		}
		counts[out.ServedStage]++
	}
	fracs := make([]float64, m.Stages())
	for i, c := range counts {
		fracs[i] = float64(c) / float64(len(queries))
	}
	return fracs, nil
}

// ProfileStage builds the deferral profile of stage i's scorer over
// the query set: the fraction of queries whose stage-i confidence
// falls below a threshold, conditioned on reaching stage i under the
// given upstream thresholds.
func (m *MultiLevel) ProfileStage(queries []*imagespace.Query, upstream []float64, stage int) (*DeferralProfile, error) {
	if stage < 0 || stage >= len(m.Scorers) {
		return nil, fmt.Errorf("cascade: stage %d out of range", stage)
	}
	if len(upstream) < stage {
		return nil, fmt.Errorf("cascade: need %d upstream thresholds", stage)
	}
	var confs []float64
	for _, q := range queries {
		reached := true
		for i := 0; i < stage; i++ {
			img := m.Space.GenerateDeterministic(q, m.Variants[i].Name, m.Variants[i].Gen)
			if m.Scorers[i].Confidence(q, img) >= upstream[i] {
				reached = false
				break
			}
		}
		if !reached {
			continue
		}
		img := m.Space.GenerateDeterministic(q, m.Variants[stage].Name, m.Variants[stage].Gen)
		confs = append(confs, m.Scorers[stage].Confidence(q, img))
	}
	if len(confs) == 0 {
		return nil, fmt.Errorf("cascade: no queries reach stage %d", stage)
	}
	return NewDeferralProfileFromConfidences(confs)
}
