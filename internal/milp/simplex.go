package milp

import (
	"math"
)

// solveLPBounds solves the LP relaxation of p with the variable bounds
// overridden by lo/hi, via two-phase dense primal simplex.
//
// The problem is converted to standard form:
//   - each variable is shifted by its (finite) lower bound,
//   - finite upper bounds become explicit <= rows,
//   - <= rows gain slack variables, >= rows gain surplus+artificial,
//     == rows gain artificial variables,
//   - phase 1 minimizes the artificial sum; phase 2 the true objective.
func solveLPBounds(p *Problem, lo, hi []float64) (*Solution, error) {
	return solveLPBoundsBasis(p, lo, hi, nil)
}

// solveLPBoundsBasis is solveLPBounds with optional basis capture:
// when basisOut is non-nil and the solve ends optimal, it is filled
// with one entry per row (constraints first, then the bound rows of
// finite-upper variables in variable order) naming that row's basic
// column in canonical ids — structural variable i is i, the
// slack/surplus of constraint row k is n+k, the slack of variable i's
// bound row is n+m0+i, and an artificial left basic (a redundant row)
// is -1. A GE row's surplus and the negated-to-LE form's slack are
// the same variable, so the ids are stable across the sign
// normalizations below and the IncrementalSolver's all-LE layout.
func solveLPBoundsBasis(p *Problem, lo, hi []float64, basisOut *[]int) (*Solution, error) {
	n := p.NumVars()
	m0 := len(p.Constraints)
	if basisOut != nil {
		*basisOut = (*basisOut)[:0]
	}

	// Quick infeasibility: empty box.
	for i := 0; i < n; i++ {
		if lo[i] > hi[i] {
			return &Solution{Status: StatusInfeasible}, nil
		}
	}

	// Objective in minimize orientation over shifted variables.
	c := make([]float64, n)
	objShift := 0.0
	for i := 0; i < n; i++ {
		ci := p.Objective[i]
		if p.Sense == Maximize {
			ci = -ci
		}
		c[i] = ci
		objShift += ci * lo[i]
	}

	// Build rows: original constraints with RHS adjusted for the lower
	// bound shift, plus upper-bound rows x' <= hi - lo. Rows reference
	// the source coefficients (unit rows by index) instead of
	// materializing per-row slices; negation for non-negative RHS
	// normalization is recorded as a flag and applied when the tableau
	// is filled.
	type row struct {
		a    []float64 // source coefficients; nil for a unit row
		unit int       // unit-row variable index when a is nil
		neg  bool      // negate coefficients when filling the tableau
		rel  Rel
		b    float64
	}
	rows := make([]row, 0, len(p.Constraints)+n)
	for _, con := range p.Constraints {
		b := con.RHS
		for i := 0; i < n; i++ {
			b -= con.Coeffs[i] * lo[i]
		}
		rows = append(rows, row{a: con.Coeffs, rel: con.Rel, b: b})
	}
	for i := 0; i < n; i++ {
		if !math.IsInf(hi[i], 1) {
			// b = hi - lo >= 0 here (the empty box returned above), so
			// unit rows never need normalization.
			rows = append(rows, row{unit: i, rel: LE, b: hi[i] - lo[i]})
		}
	}

	m := len(rows)
	if m == 0 {
		// Unconstrained over the box: each variable at its best bound.
		x := make([]float64, n)
		obj := objShift
		for i := 0; i < n; i++ {
			if c[i] < 0 {
				if math.IsInf(hi[i], 1) {
					return &Solution{Status: StatusUnbounded}, nil
				}
				x[i] = hi[i]
				obj += c[i] * (hi[i] - lo[i])
			} else {
				x[i] = lo[i]
			}
		}
		if p.Sense == Maximize {
			obj = -obj
		}
		return &Solution{Status: StatusOptimal, X: x, Objective: obj}, nil
	}

	// Normalize rows to non-negative RHS first (flipping the relation
	// where needed), THEN count extra columns: one slack per LE, one
	// surplus per GE, one artificial per GE/EQ row.
	for ri := range rows {
		if rows[ri].b < 0 {
			rows[ri].neg = !rows[ri].neg
			rows[ri].b = -rows[ri].b
			switch rows[ri].rel {
			case LE:
				rows[ri].rel = GE
			case GE:
				rows[ri].rel = LE
			}
		}
	}
	nSlack := 0
	nArt := 0
	for _, r := range rows {
		switch r.rel {
		case LE:
			nSlack++
		case GE:
			nSlack++ // surplus
			nArt++
		case EQ:
			nArt++
		}
	}
	total := n + nSlack + nArt

	// Tableau: m rows x (total+1) columns, last column is RHS, all
	// rows carved out of one backing slab.
	stride := total + 1
	slab := make([]float64, m*stride)
	t := make([][]float64, m)
	basis := make([]int, m)
	// canonCol translates tableau columns to the canonical ids
	// documented on solveLPBoundsBasis (only needed for capture).
	var canonCol []int
	if basisOut != nil {
		canonCol = make([]int, total)
		for j := 0; j < n; j++ {
			canonCol[j] = j
		}
		for j := n; j < total; j++ {
			canonCol[j] = -1
		}
	}
	canonOf := func(ri int) int {
		if ri < m0 {
			return n + ri
		}
		return n + m0 + rows[ri].unit
	}
	slackCol := n
	artCol := n + nSlack
	artStart := artCol
	for ri, r := range rows {
		t[ri] = slab[ri*stride : (ri+1)*stride]
		switch {
		case r.a == nil:
			t[ri][r.unit] = 1
		case r.neg:
			for i, v := range r.a {
				t[ri][i] = -v
			}
		default:
			copy(t[ri], r.a)
		}
		t[ri][total] = r.b
		switch r.rel {
		case LE:
			t[ri][slackCol] = 1
			basis[ri] = slackCol
			if canonCol != nil {
				canonCol[slackCol] = canonOf(ri)
			}
			slackCol++
		case GE:
			t[ri][slackCol] = -1
			if canonCol != nil {
				canonCol[slackCol] = canonOf(ri)
			}
			slackCol++
			t[ri][artCol] = 1
			basis[ri] = artCol
			artCol++
		case EQ:
			t[ri][artCol] = 1
			basis[ri] = artCol
			artCol++
		}
	}

	iters := 0

	// Phase 1: minimize the sum of artificial variables.
	if nArt > 0 {
		phase1 := make([]float64, total)
		for j := artStart; j < artStart+nArt; j++ {
			phase1[j] = 1
		}
		status, it := runSimplex(t, basis, phase1, total)
		iters += it
		if status == StatusUnbounded {
			// Phase 1 objective is bounded below by 0; cannot happen
			// with consistent input.
			return &Solution{Status: StatusInfeasible, Iterations: iters}, nil
		}
		// Compute phase-1 objective value.
		sum := 0.0
		for ri, bi := range basis {
			if bi >= artStart {
				sum += t[ri][total]
			}
		}
		if sum > 1e-7 {
			return &Solution{Status: StatusInfeasible, Iterations: iters}, nil
		}
		// Drive remaining artificials out of the basis where possible.
		for ri, bi := range basis {
			if bi < artStart {
				continue
			}
			pivoted := false
			for j := 0; j < artStart; j++ {
				if math.Abs(t[ri][j]) > 1e-9 {
					pivot(t, basis, ri, j)
					iters++
					pivoted = true
					break
				}
			}
			if !pivoted {
				// Redundant row: harmless, leave the artificial basic
				// at value ~0 and forbid re-entry by zeroing columns.
				_ = ri
			}
		}
		// Remove artificial columns from consideration by truncating.
		for ri := range t {
			t[ri] = append(t[ri][:artStart], t[ri][total])
		}
		total = artStart
	}

	// Phase 2: minimize the real objective.
	c2 := make([]float64, total)
	copy(c2, c)
	status, it := runSimplex(t, basis, c2, total)
	iters += it
	if status == StatusUnbounded {
		return &Solution{Status: StatusUnbounded, Iterations: iters}, nil
	}

	// Extract the solution.
	if basisOut != nil {
		for _, bi := range basis {
			if bi < len(canonCol) {
				*basisOut = append(*basisOut, canonCol[bi])
			} else {
				*basisOut = append(*basisOut, -1) // artificial basic
			}
		}
	}
	xShift := make([]float64, total)
	for ri, bi := range basis {
		if bi < total {
			xShift[bi] = t[ri][total]
		}
	}
	x := make([]float64, n)
	obj := objShift
	for i := 0; i < n; i++ {
		x[i] = lo[i] + xShift[i]
		obj += c[i] * xShift[i]
	}
	if p.Sense == Maximize {
		obj = -obj
	}
	return &Solution{Status: StatusOptimal, X: x, Objective: obj, Iterations: iters}, nil
}

// runSimplex minimizes cost over the tableau in place using Bland's
// rule. total is the number of structural columns (RHS excluded). It
// returns StatusOptimal or StatusUnbounded plus the pivot count.
func runSimplex(t [][]float64, basis []int, cost []float64, total int) (Status, int) {
	m := len(t)
	// Reduced costs: z_j - c_j form. Maintain implicitly: compute the
	// reduced cost vector each iteration (dense, small problems). The
	// basic-cost scratch is allocated once and refilled per pivot.
	costB := make([]float64, m)
	iters := 0
	for {
		iters++
		if iters > 20000 {
			// Bland's rule guarantees termination; this is a backstop
			// against numerical pathologies.
			return StatusOptimal, iters
		}
		// Compute simplex multipliers via basic costs: reduced cost of
		// column j is cost[j] - sum_i costB[i] * t[i][j].
		for i, bi := range basis {
			if bi < total {
				costB[i] = cost[bi]
			} else {
				costB[i] = 0
			}
		}
		enter := -1
		for j := 0; j < total; j++ {
			red := cost[j]
			for i := 0; i < m; i++ {
				if costB[i] != 0 {
					red -= costB[i] * t[i][j]
				}
			}
			if red < -1e-9 {
				enter = j // Bland: first improving column
				break
			}
		}
		if enter < 0 {
			return StatusOptimal, iters
		}
		// Ratio test with Bland tie-break on the smallest basis index.
		leave := -1
		bestRatio := math.Inf(1)
		for i := 0; i < m; i++ {
			if t[i][enter] > 1e-9 {
				ratio := t[i][len(t[i])-1] / t[i][enter]
				if ratio < bestRatio-1e-12 || (math.Abs(ratio-bestRatio) <= 1e-12 && (leave < 0 || basis[i] < basis[leave])) {
					bestRatio = ratio
					leave = i
				}
			}
		}
		if leave < 0 {
			return StatusUnbounded, iters
		}
		pivot(t, basis, leave, enter)
	}
}

// pivot performs a Gauss-Jordan pivot on t[row][col] and updates basis.
func pivot(t [][]float64, basis []int, row, col int) {
	pr := t[row]
	pv := pr[col]
	for j := range pr {
		pr[j] /= pv
	}
	for i := range t {
		if i == row {
			continue
		}
		f := t[i][col]
		if f == 0 {
			continue
		}
		for j := range t[i] {
			t[i][j] -= f * pr[j]
		}
	}
	basis[row] = col
}
