package milp

import (
	"math"
)

// IncrementalSolver solves a sequence of related MILPs — the control
// loop's case, where successive ticks move only demand — reusing
// state across Solve calls instead of rebuilding it:
//
//   - the dense tableau slab, basis, and every scratch vector are
//     pooled, so a steady-state Solve allocates only its returned
//     Solution;
//   - the simplex warm-starts from the previous solve's optimal
//     basis: when only the RHS moved (branch-and-bound children, a
//     demand shift) the tableau is re-bound through B⁻¹ and repaired
//     with dual simplex pivots; when matrix coefficients moved the
//     tableau is refilled and the old basis re-pivoted in, skipping
//     phase 1 entirely;
//   - branch-and-bound nodes live in a pooled arena and carry their
//     bounds as a single-variable delta off the parent instead of
//     full lo/hi copies, with the best-bound frontier kept as a real
//     binary heap;
//   - the previous solve's integral solution seeds the incumbent, so
//     a tick whose optimum barely moved prunes from node one.
//
// The zero value is ready to use. A solver is NOT safe for concurrent
// use; guard it or use one per goroutine. Every Solve falls back to
// the cold two-phase path whenever the warm state is unusable (shape
// change, numerically failed re-pivot, stalled repair), so results
// are always the cold path's results up to floating-point tolerance —
// the warm/cold equivalence suite pins this.
type IncrementalSolver struct {
	// Adopted problem shape and matrix (GE rows pre-negated to LE so
	// every inequality's slack enters with +1).
	n       int    // structural variables
	m0      int    // constraint rows
	m       int    // m0 + bound rows
	isEQ    []bool // per constraint row
	hasBnd  []bool // per variable: finite root upper bound => bound row
	normA   []float64
	normRHS []float64
	cost    []float64 // minimize-oriented structural costs
	sense   Sense
	shaped  bool

	// Live tableau: m rows by total+1 columns in one slab. Columns are
	// the n structural variables then one helper per row — the slack
	// for inequality rows, a never-entering artificial for EQ rows —
	// so the helper block always holds B⁻¹ of the current basis.
	total            int
	stride           int
	slab             []float64
	t                [][]float64
	basis            []int
	noEnter          []bool
	valid            bool // tableau+basis represent the adopted matrix
	matrixDirty      bool // matrix changed since the tableau was filled
	lpsSinceRefactor int

	// Pooled scratch.
	costB      []float64 // basic costs (simplex multipliers source)
	bS         []float64 // raw per-row RHS
	loS, hiS   []float64 // materialized node bounds
	rootLo     []float64
	rootHi     []float64
	xS         []float64 // structural solution scratch
	claimS     []bool
	savedBasis []int
	coldBasis  []int

	// Warm incumbent carried across Solve calls.
	prevX []float64

	// Pooled branch-and-bound state.
	nodes []bbNode
	heap  []bbHeapEnt

	objScale float64 // max |objective coefficient| of the adopted problem

	stats IncrementalStats
}

// IncrementalStats counts the solver's path choices, for benchmarks
// and the warm-reuse regression tests.
type IncrementalStats struct {
	// Solves is the number of Solve calls.
	Solves int
	// ColdLPs counts LP relaxations solved by the two-phase cold path.
	ColdLPs int
	// WarmLPs counts LP relaxations served by the warm tableau.
	WarmLPs int
	// Repivots counts basis re-pivots after a matrix change.
	Repivots int
	// DualPivots and PrimalPivots count warm-path simplex pivots.
	DualPivots, PrimalPivots int
	// Nodes counts branch-and-bound nodes across all solves.
	Nodes int
}

// Stats returns the cumulative path counters.
func (s *IncrementalSolver) Stats() IncrementalStats { return s.stats }

// bbNode is one branch-and-bound node: a single-variable bound delta
// off its parent. Bounds are materialized by walking the parent chain
// over the pooled root copy, so a node costs a fixed 24 bytes in the
// arena instead of two n-length slices.
type bbNode struct {
	parent int32
	bvar   int32
	upper  bool // true: hi[bvar]=val, false: lo[bvar]=val
	val    float64
	bound  float64 // parent LP objective, minimize orientation
}

// bbHeapEnt is a best-bound frontier entry.
type bbHeapEnt struct {
	bound float64
	idx   int32
}

const (
	warmPivTol  = 1e-7
	dualFeasTol = 1e-7
	// relPruneEps is the bound-pruning tolerance, relative to the
	// larger of the incumbent magnitude and the objective coefficient
	// scale — an absolute epsilon over-prunes small-magnitude
	// objectives (a 1e-4-better incumbent under a 1e-6-scaled
	// objective falls inside an absolute 1e-9 band and is discarded)
	// and wastes work on large ones.
	relPruneEps = 1e-9
	// refactorEvery bounds floating-point drift: after this many warm
	// LP solves the tableau is rebuilt from a cold factorization.
	refactorEvery = 4096
)

// pruneEps returns the bound-pruning tolerance for the current
// incumbent objective (minimize orientation).
func (s *IncrementalSolver) pruneEps(bestObj float64) float64 {
	scale := s.objScale
	if !math.IsInf(bestObj, 0) {
		scale = math.Max(scale, math.Abs(bestObj))
	}
	return relPruneEps * scale
}

// Solve solves the mixed-integer program, reusing warm state from
// previous calls where the problem shape allows.
func (s *IncrementalSolver) Solve(p *Problem) (*Solution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	s.stats.Solves++
	s.adopt(p)

	if p.Integer == nil {
		st, x, obj, iters := s.solveLP(p, s.rootLo, s.rootHi)
		sol := &Solution{Status: st, Iterations: iters}
		if st == StatusOptimal {
			sol.X = append([]float64(nil), x...)
			sol.Objective = obj
		}
		return sol, nil
	}
	return s.branchAndBound(p)
}

func (s *IncrementalSolver) branchAndBound(p *Problem) (*Solution, error) {
	nodeCap := p.NodeLimit
	if nodeCap <= 0 {
		nodeCap = defaultCap
	}

	st, x, obj, totalIters := s.solveLP(p, s.rootLo, s.rootHi)
	if st != StatusOptimal {
		return &Solution{Status: st, Iterations: totalIters}, nil
	}
	rootBound := orient(p, obj)
	_ = x

	best := (*Solution)(nil)
	bestObj := math.Inf(1) // minimize orientation

	// Seed the incumbent: the caller's warm start and the previous
	// solve's integral solution both compete; the better feasible one
	// wins. Objectives are always recomputed from the snapped vector
	// so the reported cost matches the returned plan.
	seed := func(cand []float64) {
		if len(cand) != p.NumVars() || !isFeasible(p, cand) {
			return
		}
		raw := 0.0
		for i, v := range cand {
			if p.Integer[i] {
				v = math.Round(v)
			}
			s.xS[i] = v
			raw += p.Objective[i] * v
		}
		o := orient(p, raw)
		if best == nil || o < bestObj {
			bestObj = o
			best = &Solution{Status: StatusOptimal, X: append([]float64(nil), s.xS[:p.NumVars()]...), Objective: raw}
		}
	}
	seed(p.Initial)
	seed(s.prevX)

	s.nodes = s.nodes[:0]
	s.heap = s.heap[:0]
	s.nodes = append(s.nodes, bbNode{parent: -1, bvar: -1, bound: rootBound})
	s.heapPush(bbHeapEnt{bound: rootBound, idx: 0})

	nodes := 0
	for len(s.heap) > 0 {
		nodes++
		s.stats.Nodes++
		if nodes > nodeCap {
			if best != nil {
				// Degrade to the best-effort incumbent instead of
				// failing the solve: a controller tick needs a plan.
				best.Status = StatusNodeLimit
				best.Nodes = nodes
				best.Iterations = totalIters
				s.remember(best)
				return best, nil
			}
			return nil, ErrNodeLimit
		}
		ent := s.heapPop()
		if ent.bound >= bestObj-s.pruneEps(bestObj) {
			continue // pruned by bound
		}
		s.materialize(ent.idx)
		st, x, rawObj, iters := s.solveLP(p, s.loS, s.hiS)
		totalIters += iters
		if st != StatusOptimal {
			continue // infeasible subtree (unbounded cannot appear below root)
		}
		obj := orient(p, rawObj)
		if obj >= bestObj-s.pruneEps(bestObj) {
			continue
		}
		// Find the branching variable: prefer fractional binaries
		// (batch/threshold selectors), which fix problem structure,
		// over general integers; break ties by fractionality.
		branchVar := -1
		worstFrac := intTol
		branchBinary := false
		for i, isInt := range p.Integer {
			if !isInt {
				continue
			}
			f := math.Abs(x[i] - math.Round(x[i]))
			if f <= intTol {
				continue
			}
			binary := s.hiS[i]-s.loS[i] <= 1+intTol
			switch {
			case binary && !branchBinary:
				branchBinary = true
				worstFrac = f
				branchVar = i
			case binary == branchBinary && f > worstFrac:
				worstFrac = f
				branchVar = i
			}
		}
		if branchVar < 0 {
			// Integral: new incumbent. Snap and recompute the
			// objective from the snapped vector — the LP relaxation
			// value drifts from c·X by up to n·|c|·intTol.
			raw := 0.0
			for i := 0; i < p.NumVars(); i++ {
				v := x[i]
				if p.Integer[i] {
					v = math.Round(v)
				}
				s.xS[i] = v
				raw += p.Objective[i] * v
			}
			o := orient(p, raw)
			if best == nil || o < bestObj {
				bestObj = o
				best = &Solution{Status: StatusOptimal, X: append([]float64(nil), s.xS[:p.NumVars()]...), Objective: raw}
			}
			continue
		}
		v := x[branchVar]
		parent := ent.idx
		// Down child: x <= floor(v).
		if fl := math.Floor(v); s.loS[branchVar] <= fl {
			idx := int32(len(s.nodes))
			s.nodes = append(s.nodes, bbNode{parent: parent, bvar: int32(branchVar), upper: true, val: fl, bound: obj})
			s.heapPush(bbHeapEnt{bound: obj, idx: idx})
		}
		// Up child: x >= ceil(v).
		if ce := math.Ceil(v); ce <= s.hiS[branchVar] {
			idx := int32(len(s.nodes))
			s.nodes = append(s.nodes, bbNode{parent: parent, bvar: int32(branchVar), upper: false, val: ce, bound: obj})
			s.heapPush(bbHeapEnt{bound: obj, idx: idx})
		}
	}

	if best == nil {
		return &Solution{Status: StatusInfeasible, Nodes: nodes, Iterations: totalIters}, nil
	}
	best.Nodes = nodes
	best.Iterations = totalIters
	s.remember(best)
	return best, nil
}

// remember keeps the integral solution as the next solve's incumbent
// seed.
func (s *IncrementalSolver) remember(sol *Solution) {
	s.prevX = append(s.prevX[:0], sol.X...)
}

// materialize reconstructs node idx's bounds into loS/hiS by copying
// the root box and applying the single-variable deltas up the parent
// chain. Deltas only tighten, so application order is irrelevant.
func (s *IncrementalSolver) materialize(idx int32) {
	copy(s.loS, s.rootLo)
	copy(s.hiS, s.rootHi)
	for i := idx; i >= 0; i = s.nodes[i].parent {
		nd := &s.nodes[i]
		if nd.bvar < 0 {
			continue
		}
		if nd.upper {
			if nd.val < s.hiS[nd.bvar] {
				s.hiS[nd.bvar] = nd.val
			}
		} else if nd.val > s.loS[nd.bvar] {
			s.loS[nd.bvar] = nd.val
		}
	}
}

// heapPush/heapPop maintain the best-bound frontier as a binary
// min-heap on (bound, insertion index) — replacing the former O(n)
// frontier scan.
func (s *IncrementalSolver) heapPush(e bbHeapEnt) {
	h := append(s.heap, e)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h[p].bound < h[i].bound || (h[p].bound == h[i].bound && h[p].idx < h[i].idx) {
			break
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
	s.heap = h
}

func (s *IncrementalSolver) heapPop() bbHeapEnt {
	h := s.heap
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h) && (h[l].bound < h[small].bound || (h[l].bound == h[small].bound && h[l].idx < h[small].idx)) {
			small = l
		}
		if r < len(h) && (h[r].bound < h[small].bound || (h[r].bound == h[small].bound && h[r].idx < h[small].idx)) {
			small = r
		}
		if small == i {
			break
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
	s.heap = h
	return top
}

// adopt (re)derives the problem's normalized shape and matrix,
// invalidating only as much warm state as the change requires: a
// shape change drops everything, a coefficient change keeps the basis
// for re-pivoting, an identical matrix keeps the whole tableau.
func (s *IncrementalSolver) adopt(p *Problem) {
	n := p.NumVars()
	m0 := len(p.Constraints)

	shapeSame := s.shaped && n == s.n && m0 == s.m0
	if !shapeSame {
		s.n, s.m0 = n, m0
		s.isEQ = resizeBool(s.isEQ, m0)
		s.hasBnd = resizeBool(s.hasBnd, n)
		s.normA = resizeF(s.normA, m0*n)
		s.normRHS = resizeF(s.normRHS, m0)
		s.cost = resizeF(s.cost, n)
		s.rootLo = resizeF(s.rootLo, n)
		s.rootHi = resizeF(s.rootHi, n)
		s.loS = resizeF(s.loS, n)
		s.hiS = resizeF(s.hiS, n)
	}

	matrixSame := shapeSame
	nBnd := 0
	for i := 0; i < n; i++ {
		lo, hi := p.boundsAt(i)
		s.rootLo[i], s.rootHi[i] = lo, hi
		bnd := !math.IsInf(hi, 1)
		if bnd {
			nBnd++
		}
		if shapeSame && s.hasBnd[i] != bnd {
			shapeSame, matrixSame = false, false
		}
		s.hasBnd[i] = bnd
	}
	s.objScale = 0
	for i, c := range p.Objective {
		if p.Sense == Maximize {
			c = -c
		}
		if matrixSame && s.cost[i] != c {
			matrixSame = false
		}
		s.cost[i] = c
		s.objScale = math.Max(s.objScale, math.Abs(c))
	}
	for k, con := range p.Constraints {
		eq := con.Rel == EQ
		if shapeSame && s.isEQ[k] != eq {
			shapeSame, matrixSame = false, false
		}
		s.isEQ[k] = eq
		neg := con.Rel == GE
		row := s.normA[k*n : (k+1)*n]
		for i, v := range con.Coeffs {
			if neg {
				v = -v
			}
			if matrixSame && row[i] != v {
				matrixSame = false
			}
			row[i] = v
		}
		rhs := con.RHS
		if neg {
			rhs = -rhs
		}
		s.normRHS[k] = rhs // RHS-only changes keep the tableau warm
	}
	s.sense = p.Sense
	s.m = m0 + nBnd
	s.shaped = true

	if !shapeSame {
		s.valid = false
		s.matrixDirty = false
		m := s.m
		s.total = n + m
		s.stride = s.total + 1
		s.bS = resizeF(s.bS, m)
		s.costB = resizeF(s.costB, m)
		s.xS = resizeF(s.xS, maxInt(n, s.total))
		s.basis = resizeInt(s.basis, m)
		s.savedBasis = resizeInt(s.savedBasis, m)
		s.claimS = resizeBool(s.claimS, m)
		s.noEnter = resizeBool(s.noEnter, s.total)
		return
	}
	if !matrixSame && s.valid {
		s.matrixDirty = true
	}
	if s.lpsSinceRefactor >= refactorEvery {
		s.valid = false
		s.lpsSinceRefactor = 0
	}
}

// solveLP solves the LP relaxation at bounds (lo, hi). The returned X
// slice is scratch, valid only until the next call. Objective is in
// the problem's own orientation.
func (s *IncrementalSolver) solveLP(p *Problem, lo, hi []float64) (Status, []float64, float64, int) {
	for i := 0; i < s.n; i++ {
		if lo[i] > hi[i] {
			return StatusInfeasible, nil, 0, 0
		}
	}
	if s.m == 0 || !s.boundsSupported(hi) {
		// No rows at all, or a node introduced a finite bound on a
		// variable the tableau has no bound row for: pure cold solve,
		// warm state untouched.
		sol, _ := solveLPBounds(p, lo, hi)
		s.stats.ColdLPs++
		return sol.Status, sol.X, sol.Objective, sol.Iterations
	}

	if !s.valid {
		return s.coldAdopt(p, lo, hi)
	}
	if s.matrixDirty {
		copy(s.savedBasis, s.basis)
		s.fillTableau(lo, hi)
		if !s.repivot(s.savedBasis) {
			s.valid = false
			return s.coldAdopt(p, lo, hi)
		}
		s.matrixDirty = false
	} else {
		s.rebindRHS(lo, hi)
	}

	s.stats.WarmLPs++
	s.lpsSinceRefactor++
	st, iters := s.repair()
	if st == repairCold {
		s.valid = false
		cs, cx, cobj, citers := s.coldAdopt(p, lo, hi)
		return cs, cx, cobj, citers + iters
	}
	switch st {
	case repairInfeasible:
		return StatusInfeasible, nil, 0, iters
	case repairUnbounded:
		return StatusUnbounded, nil, 0, iters
	}
	x, obj := s.extract(lo)
	return StatusOptimal, x, obj, iters
}

// boundsSupported reports whether hi's finite pattern matches the
// adopted bound rows (branching can only shrink bounds, so only a
// finite bound appearing on an unbounded-at-root variable mismatches).
func (s *IncrementalSolver) boundsSupported(hi []float64) bool {
	for i := 0; i < s.n; i++ {
		if !s.hasBnd[i] && !math.IsInf(hi[i], 1) {
			return false
		}
	}
	return true
}

// coldAdopt runs the two-phase cold path and, when it yields a clean
// optimal basis, installs it into the warm tableau for the next call.
func (s *IncrementalSolver) coldAdopt(p *Problem, lo, hi []float64) (Status, []float64, float64, int) {
	s.stats.ColdLPs++
	sol, _ := solveLPBoundsBasis(p, lo, hi, &s.coldBasis)
	if sol.Status != StatusOptimal || len(s.coldBasis) != s.m {
		return sol.Status, sol.X, sol.Objective, sol.Iterations
	}
	for r, c := range s.coldBasis {
		if c < 0 {
			// A redundant row left an artificial basic: adoption would
			// install a singular basis, so stay cold this round.
			return sol.Status, sol.X, sol.Objective, sol.Iterations
		}
		s.savedBasis[r] = s.warmCol(c)
	}
	s.fillTableau(lo, hi)
	if s.repivot(s.savedBasis) {
		s.valid = true
		s.matrixDirty = false
		s.lpsSinceRefactor = 0
	}
	return sol.Status, sol.X, sol.Objective, sol.Iterations
}

// warmCol maps a canonical column id (see solveLPBoundsBasis) to this
// tableau's layout: structural ids are shared; row slacks map to the
// row's helper column.
func (s *IncrementalSolver) warmCol(canon int) int {
	if canon < s.n+s.m0 {
		if canon < s.n {
			return canon
		}
		return s.n + (canon - s.n) // constraint row k's slack -> helper k
	}
	// Bound-row slack of variable i: bound rows follow the constraint
	// rows in variable order.
	v := canon - s.n - s.m0
	r := s.m0
	for i := 0; i < v; i++ {
		if s.hasBnd[i] {
			r++
		}
	}
	return s.n + r
}

// fillTableau writes the normalized matrix, helper identity block,
// and raw RHS for bounds (lo, hi) into the pooled slab.
func (s *IncrementalSolver) fillTableau(lo, hi []float64) {
	need := s.m * s.stride
	if cap(s.slab) < need {
		s.slab = make([]float64, need)
	} else {
		s.slab = s.slab[:need]
		for i := range s.slab {
			s.slab[i] = 0
		}
	}
	if cap(s.t) < s.m {
		s.t = make([][]float64, s.m)
	} else {
		s.t = s.t[:s.m]
	}
	n, total := s.n, s.total
	for j := range s.noEnter {
		s.noEnter[j] = false
	}
	for k := 0; k < s.m0; k++ {
		row := s.slab[k*s.stride : (k+1)*s.stride]
		s.t[k] = row
		copy(row[:n], s.normA[k*n:(k+1)*n])
		row[n+k] = 1 // slack, or the never-entering EQ artificial
		if s.isEQ[k] {
			s.noEnter[n+k] = true
		}
		b := s.normRHS[k]
		for i := 0; i < n; i++ {
			if lo[i] != 0 {
				b -= s.normA[k*n+i] * lo[i]
			}
		}
		row[total] = b
		s.basis[k] = n + k
	}
	r := s.m0
	for i := 0; i < n; i++ {
		if !s.hasBnd[i] {
			continue
		}
		row := s.slab[r*s.stride : (r+1)*s.stride]
		s.t[r] = row
		row[i] = 1
		row[n+r] = 1
		row[total] = hi[i] - lo[i]
		s.basis[r] = n + r
		r++
	}
}

// rebindRHS recomputes the tableau RHS column for new bounds without
// touching the factorization: the helper block holds B⁻¹, so the new
// basic values are B⁻¹·b.
func (s *IncrementalSolver) rebindRHS(lo, hi []float64) {
	n, m, total := s.n, s.m, s.total
	for k := 0; k < s.m0; k++ {
		b := s.normRHS[k]
		row := s.normA[k*n : (k+1)*n]
		for i := 0; i < n; i++ {
			if lo[i] != 0 {
				b -= row[i] * lo[i]
			}
		}
		s.bS[k] = b
	}
	r := s.m0
	for i := 0; i < n; i++ {
		if s.hasBnd[i] {
			s.bS[r] = hi[i] - lo[i]
			r++
		}
	}
	for ri := 0; ri < m; ri++ {
		row := s.t[ri]
		sum := 0.0
		for k := 0; k < m; k++ {
			if s.bS[k] != 0 {
				sum += row[n+k] * s.bS[k]
			}
		}
		row[total] = sum
	}
}

// repivot drives the saved basis columns back into a freshly filled
// tableau. The saved basis is a column SET — the old row assignment
// means nothing against new matrix coefficients — so helper columns
// still basic in their fill row are claimed in place and every other
// column is pivoted into the unclaimed row where it has the largest
// magnitude (partial pivoting, which succeeds for any numerically
// nonsingular basis). Claimed rows are never pivoted in, so their
// unit columns stay unit. Returns false on a degenerate pivot (the
// caller falls back to a cold factorization).
func (s *IncrementalSolver) repivot(saved []int) bool {
	m := s.m
	claimed := s.claimS[:m]
	for i := range claimed {
		claimed[i] = false
	}
	// Helpers basic at fill time: claim their own row, no pivot needed.
	for _, c := range saved {
		if c >= s.n && c < s.total {
			r := c - s.n
			if s.basis[r] == c {
				claimed[r] = true
			}
		}
	}
	for _, c := range saved {
		if c < 0 || c >= s.total {
			return false
		}
		if c >= s.n && claimed[c-s.n] && s.basis[c-s.n] == c {
			continue // claimed in place above
		}
		best, bestAbs := -1, warmPivTol
		for r := 0; r < m; r++ {
			if claimed[r] {
				continue
			}
			if a := math.Abs(s.t[r][c]); a > bestAbs {
				bestAbs = a
				best = r
			}
		}
		if best < 0 {
			return false
		}
		pivot(s.t, s.basis, best, c)
		claimed[best] = true
		s.stats.Repivots++
	}
	return true
}

type repairStatus int

const (
	repairOptimal repairStatus = iota
	repairInfeasible
	repairUnbounded
	repairCold
)

// repair restores optimality after a RHS rebind or matrix refill:
// dual simplex while the basis is primal-infeasible (the warm-start
// case where demand moved), then primal simplex to optimality.
func (s *IncrementalSolver) repair() (repairStatus, int) {
	iters := 0
	primalInfeasible := false
	for r := 0; r < s.m; r++ {
		if s.t[r][s.total] < -feasTol {
			primalInfeasible = true
			break
		}
	}
	if primalInfeasible {
		if !s.dualFeasible() {
			return repairCold, iters
		}
		st, it := s.dualSimplex()
		iters += it
		switch st {
		case repairInfeasible:
			return repairInfeasible, iters
		case repairCold:
			return repairCold, iters
		}
	}
	st, it := s.primalSimplex()
	iters += it
	return st, iters
}

// reducedCost returns cost_j - c_B·(B⁻¹A)_j using the pooled basic
// cost vector (fill with fillCostB first).
func (s *IncrementalSolver) reducedCost(j int) float64 {
	red := 0.0
	if j < s.n {
		red = s.cost[j]
	}
	for i := 0; i < s.m; i++ {
		if cb := s.costB[i]; cb != 0 {
			red -= cb * s.t[i][j]
		}
	}
	return red
}

func (s *IncrementalSolver) fillCostB() {
	for i, bi := range s.basis {
		if bi < s.n {
			s.costB[i] = s.cost[bi]
		} else {
			s.costB[i] = 0
		}
	}
}

// dualFeasible reports whether every entering candidate's reduced
// cost is nonnegative within tolerance — the precondition for dual
// simplex repair.
func (s *IncrementalSolver) dualFeasible() bool {
	s.fillCostB()
	for j := 0; j < s.total; j++ {
		if s.noEnter[j] {
			continue
		}
		if s.reducedCost(j) < -dualFeasTol {
			return false
		}
	}
	return true
}

// dualSimplex pivots until the basis is primal feasible, maintaining
// dual feasibility: leave the most negative basic value, enter the
// minimum-ratio column. Returns repairInfeasible when a violated row
// has no negative entry (the LP is infeasible).
func (s *IncrementalSolver) dualSimplex() (repairStatus, int) {
	m, total := s.m, s.total
	iters := 0
	for {
		iters++
		if iters > 20000 {
			return repairCold, iters // numerical stall: refactor cold
		}
		r := -1
		most := -feasTol
		for i := 0; i < m; i++ {
			if v := s.t[i][total]; v < most {
				most = v
				r = i
			}
		}
		if r < 0 {
			return repairOptimal, iters
		}
		s.fillCostB()
		enter := -1
		bestRatio := math.Inf(1)
		row := s.t[r]
		for j := 0; j < total; j++ {
			if s.noEnter[j] {
				continue
			}
			a := row[j]
			if a >= -1e-9 {
				continue
			}
			red := s.reducedCost(j)
			if red < 0 {
				red = 0 // optimal-basis noise; the primal pass polishes
			}
			ratio := red / -a
			if ratio < bestRatio-1e-12 || (math.Abs(ratio-bestRatio) <= 1e-12 && (enter < 0 || j < enter)) {
				bestRatio = ratio
				enter = j
			}
		}
		if enter < 0 {
			return repairInfeasible, iters
		}
		pivot(s.t, s.basis, r, enter)
		s.stats.DualPivots++
	}
}

// primalSimplex minimizes over the warm tableau with Bland's rule,
// skipping the never-entering EQ helpers. Unlike the cold runSimplex
// it reports a stall instead of claiming optimality, so the caller
// can refactor.
func (s *IncrementalSolver) primalSimplex() (repairStatus, int) {
	m, total := s.m, s.total
	iters := 0
	for {
		iters++
		if iters > 20000 {
			return repairCold, iters
		}
		s.fillCostB()
		enter := -1
		for j := 0; j < total; j++ {
			if s.noEnter[j] {
				continue
			}
			if s.reducedCost(j) < -1e-9 {
				enter = j // Bland: first improving column
				break
			}
		}
		if enter < 0 {
			return repairOptimal, iters
		}
		leave := -1
		bestRatio := math.Inf(1)
		for i := 0; i < m; i++ {
			if s.t[i][enter] > 1e-9 {
				ratio := s.t[i][total] / s.t[i][enter]
				if ratio < bestRatio-1e-12 || (math.Abs(ratio-bestRatio) <= 1e-12 && (leave < 0 || s.basis[i] < s.basis[leave])) {
					bestRatio = ratio
					leave = i
				}
			}
		}
		if leave < 0 {
			return repairUnbounded, iters
		}
		pivot(s.t, s.basis, leave, enter)
		s.stats.PrimalPivots++
	}
}

// extract reads the structural solution out of the tableau. The
// returned slice is the solver's scratch.
func (s *IncrementalSolver) extract(lo []float64) ([]float64, float64) {
	n := s.n
	x := s.xS[:n]
	for i := range x {
		x[i] = 0
	}
	for r, bi := range s.basis {
		if bi < n {
			x[bi] = s.t[r][s.total]
		}
	}
	obj := 0.0
	for i := 0; i < n; i++ {
		x[i] += lo[i]
		obj += s.cost[i] * x[i]
	}
	if s.sense == Maximize {
		obj = -obj
	}
	return x, obj
}

func resizeF(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func resizeInt(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

func resizeBool(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
