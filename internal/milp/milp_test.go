package milp

import (
	"math"
	"testing"

	"diffserve/internal/stats"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestValidate(t *testing.T) {
	cases := []*Problem{
		{},
		{Objective: []float64{1}, Lower: []float64{0, 0}},
		{Objective: []float64{1}, Upper: []float64{1, 1}},
		{Objective: []float64{1}, Integer: []bool{true, false}},
		{Objective: []float64{1}, Constraints: []Constraint{{Coeffs: []float64{1, 2}, Rel: LE, RHS: 1}}},
		{Objective: []float64{1}, Lower: []float64{2}, Upper: []float64{1}},
		{Objective: []float64{1}, Lower: []float64{math.Inf(-1)}},
	}
	for i, p := range cases {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestSolveLPBasic2D(t *testing.T) {
	// max 3x + 2y s.t. x + y <= 4, x + 3y <= 6, x,y >= 0.
	// Optimum at (4, 0) with objective 12.
	p := &Problem{
		Sense:     Maximize,
		Objective: []float64{3, 2},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1}, Rel: LE, RHS: 4},
			{Coeffs: []float64{1, 3}, Rel: LE, RHS: 6},
		},
	}
	s, err := SolveLP(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != StatusOptimal {
		t.Fatalf("status = %v", s.Status)
	}
	if !approx(s.Objective, 12, 1e-8) {
		t.Errorf("objective = %v, want 12", s.Objective)
	}
	if !approx(s.X[0], 4, 1e-8) || !approx(s.X[1], 0, 1e-8) {
		t.Errorf("x = %v, want [4 0]", s.X)
	}
}

func TestSolveLPWithGEAndEQ(t *testing.T) {
	// min x + y s.t. x + y >= 2, x - y == 0.5, x,y >= 0.
	// Optimum: x+y = 2 with x - y = 0.5 -> x = 1.25, y = 0.75.
	p := &Problem{
		Sense:     Minimize,
		Objective: []float64{1, 1},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1}, Rel: GE, RHS: 2},
			{Coeffs: []float64{1, -1}, Rel: EQ, RHS: 0.5},
		},
	}
	s, err := SolveLP(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != StatusOptimal {
		t.Fatalf("status = %v", s.Status)
	}
	if !approx(s.Objective, 2, 1e-8) {
		t.Errorf("objective = %v, want 2", s.Objective)
	}
	if !approx(s.X[0], 1.25, 1e-8) || !approx(s.X[1], 0.75, 1e-8) {
		t.Errorf("x = %v", s.X)
	}
}

func TestSolveLPInfeasible(t *testing.T) {
	p := &Problem{
		Objective: []float64{1},
		Constraints: []Constraint{
			{Coeffs: []float64{1}, Rel: GE, RHS: 5},
			{Coeffs: []float64{1}, Rel: LE, RHS: 3},
		},
	}
	s, err := SolveLP(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != StatusInfeasible {
		t.Errorf("status = %v, want infeasible", s.Status)
	}
}

func TestSolveLPUnbounded(t *testing.T) {
	// max x with only x >= 1.
	p := &Problem{
		Sense:     Maximize,
		Objective: []float64{1},
		Constraints: []Constraint{
			{Coeffs: []float64{1}, Rel: GE, RHS: 1},
		},
	}
	s, err := SolveLP(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != StatusUnbounded {
		t.Errorf("status = %v, want unbounded", s.Status)
	}
}

func TestSolveLPUnconstrainedBox(t *testing.T) {
	// max 2x - y over 1 <= x <= 3, 0 <= y <= 5 with no rows.
	p := &Problem{
		Sense:     Maximize,
		Objective: []float64{2, -1},
		Lower:     []float64{1, 0},
		Upper:     []float64{3, 5},
	}
	s, err := SolveLP(p)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(s.Objective, 6, 1e-9) || !approx(s.X[0], 3, 1e-9) || !approx(s.X[1], 0, 1e-9) {
		t.Errorf("got %v obj %v", s.X, s.Objective)
	}
	// Unbounded box.
	p2 := &Problem{Sense: Maximize, Objective: []float64{1}}
	s2, err := SolveLP(p2)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Status != StatusUnbounded {
		t.Errorf("status = %v, want unbounded", s2.Status)
	}
}

func TestSolveLPRespectsBounds(t *testing.T) {
	// min x s.t. x >= -10 is modeled with Lower = 2 (no -Inf support).
	p := &Problem{
		Objective: []float64{1},
		Lower:     []float64{2},
		Upper:     []float64{9},
		Constraints: []Constraint{
			{Coeffs: []float64{1}, Rel: LE, RHS: 100},
		},
	}
	s, err := SolveLP(p)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(s.X[0], 2, 1e-9) {
		t.Errorf("x = %v, want lower bound 2", s.X[0])
	}
}

func TestSolveIntegerKnapsack(t *testing.T) {
	// Classic 0/1 knapsack: values {60,100,120}, weights {10,20,30},
	// capacity 50 -> optimal 220 (items 2 and 3).
	p := &Problem{
		Sense:     Maximize,
		Objective: []float64{60, 100, 120},
		Constraints: []Constraint{
			{Coeffs: []float64{10, 20, 30}, Rel: LE, RHS: 50},
		},
		Upper:   []float64{1, 1, 1},
		Integer: []bool{true, true, true},
	}
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != StatusOptimal {
		t.Fatalf("status = %v", s.Status)
	}
	if !approx(s.Objective, 220, 1e-6) {
		t.Errorf("objective = %v, want 220", s.Objective)
	}
	want := []float64{0, 1, 1}
	for i := range want {
		if !approx(s.X[i], want[i], 1e-6) {
			t.Errorf("x[%d] = %v, want %v", i, s.X[i], want[i])
		}
	}
}

func TestSolveIntegerVsLPGap(t *testing.T) {
	// max x + y s.t. 2x + 2y <= 5: LP gives 2.5, ILP gives 2.
	p := &Problem{
		Sense:     Maximize,
		Objective: []float64{1, 1},
		Constraints: []Constraint{
			{Coeffs: []float64{2, 2}, Rel: LE, RHS: 5},
		},
		Integer: []bool{true, true},
	}
	lp, err := SolveLP(p)
	if err != nil {
		t.Fatal(err)
	}
	ip, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(lp.Objective, 2.5, 1e-8) {
		t.Errorf("LP = %v, want 2.5", lp.Objective)
	}
	if !approx(ip.Objective, 2, 1e-8) {
		t.Errorf("ILP = %v, want 2", ip.Objective)
	}
}

func TestSolveIntegerInfeasible(t *testing.T) {
	// 0 <= x <= 1 integer with 0.4 <= x <= 0.6 has no integer point.
	p := &Problem{
		Objective: []float64{1},
		Constraints: []Constraint{
			{Coeffs: []float64{1}, Rel: GE, RHS: 0.4},
			{Coeffs: []float64{1}, Rel: LE, RHS: 0.6},
		},
		Upper:   []float64{1},
		Integer: []bool{true},
	}
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != StatusInfeasible {
		t.Errorf("status = %v, want infeasible", s.Status)
	}
}

func TestSolveMixedIntegerContinuous(t *testing.T) {
	// max 2x + y, x integer, y continuous; x + y <= 3.7; x <= 2.2.
	// Best: x = 2, y = 1.7 -> 5.7.
	p := &Problem{
		Sense:     Maximize,
		Objective: []float64{2, 1},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1}, Rel: LE, RHS: 3.7},
			{Coeffs: []float64{1, 0}, Rel: LE, RHS: 2.2},
		},
		Integer: []bool{true, false},
	}
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(s.Objective, 5.7, 1e-6) {
		t.Errorf("objective = %v, want 5.7", s.Objective)
	}
	if !approx(s.X[0], 2, 1e-6) || !approx(s.X[1], 1.7, 1e-6) {
		t.Errorf("x = %v", s.X)
	}
}

// bruteForceILP exhaustively enumerates integer points in the box and
// returns the best objective, or NaN when infeasible.
func bruteForceILP(p *Problem, hi []int) (float64, bool) {
	n := p.NumVars()
	x := make([]float64, n)
	best := math.NaN()
	found := false
	var rec func(int)
	rec = func(i int) {
		if i == n {
			for _, c := range p.Constraints {
				dot := 0.0
				for j := range x {
					dot += c.Coeffs[j] * x[j]
				}
				switch c.Rel {
				case LE:
					if dot > c.RHS+1e-9 {
						return
					}
				case GE:
					if dot < c.RHS-1e-9 {
						return
					}
				case EQ:
					if math.Abs(dot-c.RHS) > 1e-9 {
						return
					}
				}
			}
			obj := 0.0
			for j := range x {
				obj += p.Objective[j] * x[j]
			}
			if !found {
				best = obj
				found = true
				return
			}
			if p.Sense == Maximize && obj > best {
				best = obj
			}
			if p.Sense == Minimize && obj < best {
				best = obj
			}
			return
		}
		for v := 0; v <= hi[i]; v++ {
			x[i] = float64(v)
			rec(i + 1)
		}
	}
	rec(0)
	return best, found
}

func TestSolveMatchesBruteForceRandomILPs(t *testing.T) {
	rng := stats.NewRNG(42)
	for trial := 0; trial < 120; trial++ {
		n := 2 + rng.Intn(3) // 2-4 variables
		hiInt := make([]int, n)
		hi := make([]float64, n)
		for i := range hi {
			hiInt[i] = 1 + rng.Intn(5)
			hi[i] = float64(hiInt[i])
		}
		obj := make([]float64, n)
		for i := range obj {
			obj[i] = math.Round(rng.Uniform(-5, 5)*2) / 2
		}
		nCons := 1 + rng.Intn(3)
		cons := make([]Constraint, nCons)
		for k := range cons {
			co := make([]float64, n)
			for i := range co {
				co[i] = math.Round(rng.Uniform(-3, 3))
			}
			rel := LE
			if rng.Bernoulli(0.3) {
				rel = GE
			}
			cons[k] = Constraint{Coeffs: co, Rel: rel, RHS: math.Round(rng.Uniform(-5, 12))}
		}
		sense := Minimize
		if rng.Bernoulli(0.5) {
			sense = Maximize
		}
		ints := make([]bool, n)
		for i := range ints {
			ints[i] = true
		}
		p := &Problem{Sense: sense, Objective: obj, Constraints: cons, Upper: hi, Integer: ints}

		got, err := Solve(p)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want, feasible := bruteForceILP(p, hiInt)
		if !feasible {
			if got.Status != StatusInfeasible {
				t.Fatalf("trial %d: solver says %v, brute force says infeasible\nproblem: %+v", trial, got.Status, p)
			}
			continue
		}
		if got.Status != StatusOptimal {
			t.Fatalf("trial %d: solver says %v, brute force found %v\nproblem: %+v", trial, got.Status, want, p)
		}
		if !approx(got.Objective, want, 1e-6) {
			t.Fatalf("trial %d: solver %v != brute force %v\nproblem: %+v\nx=%v", trial, got.Objective, want, p, got.X)
		}
	}
}

func TestSolveLPDegenerateNoCycle(t *testing.T) {
	// A classically degenerate LP (Beale's example scaled); Bland's
	// rule must terminate.
	p := &Problem{
		Sense:     Minimize,
		Objective: []float64{-0.75, 150, -0.02, 6},
		Constraints: []Constraint{
			{Coeffs: []float64{0.25, -60, -0.04, 9}, Rel: LE, RHS: 0},
			{Coeffs: []float64{0.5, -90, -0.02, 3}, Rel: LE, RHS: 0},
			{Coeffs: []float64{0, 0, 1, 0}, Rel: LE, RHS: 1},
		},
	}
	s, err := SolveLP(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != StatusOptimal {
		t.Fatalf("status = %v", s.Status)
	}
	if !approx(s.Objective, -0.05, 1e-6) {
		t.Errorf("objective = %v, want -0.05", s.Objective)
	}
}

func TestSolutionSatisfiesConstraintsProperty(t *testing.T) {
	rng := stats.NewRNG(7)
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(4)
		hi := make([]float64, n)
		for i := range hi {
			hi[i] = float64(1 + rng.Intn(8))
		}
		obj := make([]float64, n)
		for i := range obj {
			obj[i] = rng.Uniform(-4, 4)
		}
		cons := []Constraint{}
		for k := 0; k < 1+rng.Intn(3); k++ {
			co := make([]float64, n)
			for i := range co {
				co[i] = rng.Uniform(0, 3)
			}
			cons = append(cons, Constraint{Coeffs: co, Rel: LE, RHS: rng.Uniform(2, 15)})
		}
		p := &Problem{Sense: Maximize, Objective: obj, Constraints: cons, Upper: hi}
		s, err := SolveLP(p)
		if err != nil {
			t.Fatal(err)
		}
		if s.Status != StatusOptimal {
			continue
		}
		for ci, c := range cons {
			dot := 0.0
			for j := range s.X {
				dot += c.Coeffs[j] * s.X[j]
			}
			if dot > c.RHS+1e-6 {
				t.Fatalf("trial %d: constraint %d violated: %v > %v", trial, ci, dot, c.RHS)
			}
		}
		for j, x := range s.X {
			if x < -1e-9 || x > hi[j]+1e-6 {
				t.Fatalf("trial %d: bound violated: x[%d]=%v hi=%v", trial, j, x, hi[j])
			}
		}
	}
}

func TestRelString(t *testing.T) {
	if LE.String() != "<=" || EQ.String() != "==" || GE.String() != ">=" {
		t.Error("Rel strings wrong")
	}
	if Rel(99).String() != "?" {
		t.Error("unknown Rel string wrong")
	}
	if StatusOptimal.String() != "optimal" || StatusInfeasible.String() != "infeasible" || StatusUnbounded.String() != "unbounded" || Status(9).String() != "unknown" {
		t.Error("Status strings wrong")
	}
}

func BenchmarkSolveKnapsack20(b *testing.B) {
	rng := stats.NewRNG(9)
	n := 20
	obj := make([]float64, n)
	w := make([]float64, n)
	hi := make([]float64, n)
	ints := make([]bool, n)
	for i := 0; i < n; i++ {
		obj[i] = rng.Uniform(1, 10)
		w[i] = rng.Uniform(1, 10)
		hi[i] = 1
		ints[i] = true
	}
	p := &Problem{
		Sense:       Maximize,
		Objective:   obj,
		Constraints: []Constraint{{Coeffs: w, Rel: LE, RHS: 30}},
		Upper:       hi,
		Integer:     ints,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(p); err != nil {
			b.Fatal(err)
		}
	}
}

func TestWarmStartSeedsIncumbent(t *testing.T) {
	// max x + y s.t. x + y <= 7, x,y in [0,5] integer. Optimum 7.
	p := &Problem{
		Sense:     Maximize,
		Objective: []float64{1, 1},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1}, Rel: LE, RHS: 7},
		},
		Upper:   []float64{5, 5},
		Integer: []bool{true, true},
		Initial: []float64{3, 4}, // feasible, objective 7 (optimal)
	}
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != StatusOptimal || !approx(s.Objective, 7, 1e-9) {
		t.Fatalf("solution = %+v", s)
	}
}

func TestWarmStartInfeasibleIgnored(t *testing.T) {
	p := &Problem{
		Sense:     Maximize,
		Objective: []float64{1},
		Constraints: []Constraint{
			{Coeffs: []float64{1}, Rel: LE, RHS: 3},
		},
		Upper:   []float64{10},
		Integer: []bool{true},
		Initial: []float64{9}, // violates the constraint
	}
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(s.Objective, 3, 1e-9) {
		t.Fatalf("infeasible warm start corrupted solve: %+v", s)
	}
}

func TestWarmStartFractionalIgnored(t *testing.T) {
	p := &Problem{
		Sense:     Maximize,
		Objective: []float64{1},
		Constraints: []Constraint{
			{Coeffs: []float64{2}, Rel: LE, RHS: 5},
		},
		Upper:   []float64{10},
		Integer: []bool{true},
		Initial: []float64{2.5}, // fractional: not a valid incumbent
	}
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(s.Objective, 2, 1e-9) {
		t.Fatalf("fractional warm start corrupted solve: %+v", s)
	}
	if math.Abs(s.X[0]-2) > 1e-6 {
		t.Fatalf("x = %v, want 2", s.X[0])
	}
}

func TestWarmStartMatchesBruteForceRandomILPs(t *testing.T) {
	// The warm-start path must never change optimality, only speed.
	rng := stats.NewRNG(77)
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(3)
		hiInt := make([]int, n)
		hi := make([]float64, n)
		initial := make([]float64, n)
		for i := range hi {
			hiInt[i] = 1 + rng.Intn(4)
			hi[i] = float64(hiInt[i])
			initial[i] = float64(rng.Intn(hiInt[i] + 1))
		}
		obj := make([]float64, n)
		for i := range obj {
			obj[i] = math.Round(rng.Uniform(-4, 4))
		}
		cons := []Constraint{}
		for k := 0; k < 1+rng.Intn(2); k++ {
			co := make([]float64, n)
			for i := range co {
				co[i] = math.Round(rng.Uniform(-2, 3))
			}
			cons = append(cons, Constraint{Coeffs: co, Rel: LE, RHS: math.Round(rng.Uniform(0, 10))})
		}
		ints := make([]bool, n)
		for i := range ints {
			ints[i] = true
		}
		p := &Problem{Sense: Maximize, Objective: obj, Constraints: cons, Upper: hi, Integer: ints, Initial: initial}
		got, err := Solve(p)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want, feasible := bruteForceILP(p, hiInt)
		if !feasible {
			if got.Status != StatusInfeasible {
				t.Fatalf("trial %d: status %v, want infeasible", trial, got.Status)
			}
			continue
		}
		if got.Status != StatusOptimal || !approx(got.Objective, want, 1e-6) {
			t.Fatalf("trial %d: solver %v (%v) vs brute force %v", trial, got.Objective, got.Status, want)
		}
	}
}
