package milp

import (
	"errors"
	"math"
	"testing"

	"diffserve/internal/stats"
)

// randomILP builds a small random integer program in the same family
// the brute-force suite uses.
func randomILP(rng *stats.RNG) (*Problem, []int) {
	n := 2 + rng.Intn(3)
	hiInt := make([]int, n)
	hi := make([]float64, n)
	for i := range hi {
		hiInt[i] = 1 + rng.Intn(5)
		hi[i] = float64(hiInt[i])
	}
	obj := make([]float64, n)
	for i := range obj {
		obj[i] = math.Round(rng.Uniform(-5, 5)*2) / 2
	}
	nCons := 1 + rng.Intn(3)
	cons := make([]Constraint, nCons)
	for k := range cons {
		co := make([]float64, n)
		for i := range co {
			co[i] = math.Round(rng.Uniform(-3, 3))
		}
		rel := LE
		if rng.Bernoulli(0.3) {
			rel = GE
		}
		cons[k] = Constraint{Coeffs: co, Rel: rel, RHS: math.Round(rng.Uniform(-5, 12))}
	}
	sense := Minimize
	if rng.Bernoulli(0.5) {
		sense = Maximize
	}
	ints := make([]bool, n)
	for i := range ints {
		ints[i] = true
	}
	return &Problem{Sense: sense, Objective: obj, Constraints: cons, Upper: hi, Integer: ints}, hiInt
}

// checkAgainstCold solves p with the persistent warm solver and a
// fresh cold solver and requires agreement on status and objective.
// It also pins the snapped-objective invariant: the reported
// Objective must equal c·X for the returned integral X.
func checkAgainstCold(t *testing.T, warm *IncrementalSolver, p *Problem, label string) {
	t.Helper()
	warmSol, warmErr := warm.Solve(p)
	var cold IncrementalSolver
	coldSol, coldErr := cold.Solve(p)
	if (warmErr == nil) != (coldErr == nil) {
		t.Fatalf("%s: warm err=%v cold err=%v", label, warmErr, coldErr)
	}
	if warmErr != nil {
		return
	}
	if warmSol.Status != coldSol.Status {
		t.Fatalf("%s: warm status %v != cold status %v\nproblem: %+v", label, warmSol.Status, coldSol.Status, p)
	}
	if warmSol.Status != StatusOptimal {
		return
	}
	tol := 1e-6 * math.Max(1, math.Abs(coldSol.Objective))
	if math.Abs(warmSol.Objective-coldSol.Objective) > tol {
		t.Fatalf("%s: warm objective %v != cold objective %v\nproblem: %+v\nwarm x=%v cold x=%v",
			label, warmSol.Objective, coldSol.Objective, p, warmSol.X, coldSol.X)
	}
	for _, sol := range []*Solution{warmSol, coldSol} {
		dot := 0.0
		for i, xi := range sol.X {
			dot += p.Objective[i] * xi
		}
		if math.Abs(dot-sol.Objective) > 1e-9*math.Max(1, math.Abs(dot)) {
			t.Fatalf("%s: reported objective %v does not match c·X=%v", label, sol.Objective, dot)
		}
	}
}

// TestWarmVsColdEquivalenceRandomSequences is the equivalence suite
// pinning the tentpole: one persistent solver walks a sequence of
// perturbed instances (RHS moves, coefficient moves, bound moves —
// the shapes a control-loop demand walk produces) and must agree with
// a from-scratch solve at every step.
func TestWarmVsColdEquivalenceRandomSequences(t *testing.T) {
	rng := stats.NewRNG(4242)
	var warm IncrementalSolver
	for trial := 0; trial < 40; trial++ {
		p, _ := randomILP(rng)
		checkAgainstCold(t, &warm, p, "base")
		for step := 0; step < 8; step++ {
			switch rng.Intn(3) {
			case 0: // RHS walk (demand moved)
				k := rng.Intn(len(p.Constraints))
				p.Constraints[k].RHS += math.Round(rng.Uniform(-2, 2))
			case 1: // coefficient walk (demand enters the matrix)
				k := rng.Intn(len(p.Constraints))
				i := rng.Intn(p.NumVars())
				p.Constraints[k].Coeffs[i] += math.Round(rng.Uniform(-1, 1))
			case 2: // bound walk
				i := rng.Intn(p.NumVars())
				hi := math.Max(1, math.Round(rng.Uniform(1, 6)))
				p.Upper[i] = hi
			}
			checkAgainstCold(t, &warm, p, "perturbed")
		}
	}
	if st := warm.Stats(); st.WarmLPs == 0 {
		t.Fatalf("suite never exercised the warm path: %+v", st)
	}
}

// TestWarmVsColdAcrossShapeChanges reuses one solver across problems
// of different sizes — adoption must drop stale state, not misuse it.
func TestWarmVsColdAcrossShapeChanges(t *testing.T) {
	rng := stats.NewRNG(99)
	var warm IncrementalSolver
	for trial := 0; trial < 60; trial++ {
		p, _ := randomILP(rng)
		checkAgainstCold(t, &warm, p, "shape-change")
	}
}

// TestWarmMatchesBruteForce validates the persistent solver against
// exhaustive enumeration, independent of the cold path.
func TestWarmMatchesBruteForce(t *testing.T) {
	rng := stats.NewRNG(2025)
	var warm IncrementalSolver
	for trial := 0; trial < 80; trial++ {
		p, hiInt := randomILP(rng)
		got, err := warm.Solve(p)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want, feasible := bruteForceILP(p, hiInt)
		if !feasible {
			if got.Status != StatusInfeasible {
				t.Fatalf("trial %d: solver says %v, brute force says infeasible\nproblem: %+v", trial, got.Status, p)
			}
			continue
		}
		if got.Status != StatusOptimal {
			t.Fatalf("trial %d: solver says %v, brute force found %v", trial, got.Status, want)
		}
		if !approx(got.Objective, want, 1e-6) {
			t.Fatalf("trial %d: solver %v != brute force %v\nproblem: %+v", trial, got.Objective, want, p)
		}
	}
}

// hardKnapsack builds a knapsack instance whose branch-and-bound tree
// is deliberately deep: near-identical value/weight ratios force many
// fractional relaxations.
func hardKnapsack(n int) *Problem {
	w := make([]float64, n)
	v := make([]float64, n)
	ints := make([]bool, n)
	hi := make([]float64, n)
	for i := 0; i < n; i++ {
		w[i] = float64(7 + (i*13)%11)
		v[i] = w[i] + 0.01*float64(i%5)
		ints[i] = true
		hi[i] = 1
	}
	cap := 0.0
	for _, wi := range w {
		cap += wi
	}
	return &Problem{
		Sense:       Maximize,
		Objective:   v,
		Constraints: []Constraint{{Coeffs: w, Rel: LE, RHS: math.Floor(cap / 2)}},
		Upper:       hi,
		Integer:     ints,
	}
}

// TestNodeLimitReturnsIncumbent pins the satellite bugfix: a solve
// that runs out of nodes with a feasible incumbent in hand returns it
// with StatusNodeLimit instead of failing.
func TestNodeLimitReturnsIncumbent(t *testing.T) {
	p := hardKnapsack(22)

	// Establish that the instance genuinely needs more than a couple
	// of nodes, so the capped run below cannot finish.
	full, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if full.Nodes <= 4 {
		t.Fatalf("instance too easy to exercise the node limit: %d nodes", full.Nodes)
	}

	// Seed a (suboptimal) feasible incumbent and cap hard.
	init := make([]float64, p.NumVars())
	init[0] = 1
	p.Initial = init
	p.NodeLimit = 2
	sol, err := Solve(p)
	if err != nil {
		t.Fatalf("want best-effort incumbent, got error %v", err)
	}
	if sol.Status != StatusNodeLimit {
		t.Fatalf("status = %v, want %v", sol.Status, StatusNodeLimit)
	}
	if !isFeasible(p, sol.X) {
		t.Fatalf("node-limit incumbent is infeasible: %v", sol.X)
	}
	if sol.Objective < p.Objective[0]-1e-9 {
		t.Fatalf("incumbent %v worse than the seeded plan %v", sol.Objective, p.Objective[0])
	}

	// Without any incumbent the same cap is a hard failure.
	p.Initial = nil
	if _, err := Solve(p); !errors.Is(err, ErrNodeLimit) {
		t.Fatalf("want ErrNodeLimit with no incumbent, got %v", err)
	}
}

// TestRelativePruneEpsilonScaledObjective pins the satellite bugfix:
// with an absolute 1e-9 pruning epsilon, a 1e-6-scaled objective's
// true optimum (1.0001e-6, only 1e-10 better than the seeded
// incumbent... scaled: 1e-4·1e-6 = 1e-10 < 1e-9) is wrongly pruned
// and the solver returns the seed. The relative epsilon keeps the
// band proportional to the coefficient scale.
func TestRelativePruneEpsilonScaledObjective(t *testing.T) {
	const scale = 1e-6
	p := &Problem{
		Sense:     Maximize,
		Objective: []float64{scale * (1 + 1e-4), scale},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1}, Rel: LE, RHS: 1},
		},
		Upper:   []float64{1, 1},
		Integer: []bool{true, true},
		Initial: []float64{0, 1}, // feasible seed, objective = scale
	}
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusOptimal {
		t.Fatalf("status = %v", sol.Status)
	}
	// The root LP lands exactly on the integral optimum (x0=1); the
	// only thing between it and the returned solution is the
	// bound-vs-incumbent prune, whose old absolute 1e-9 band swallows
	// the 1e-10 improvement over the seed.
	want := scale * (1 + 1e-4)
	if math.Abs(sol.Objective-want) > 1e-12 {
		t.Fatalf("objective = %.12g, want %.12g (absolute-epsilon pruning would return %.12g)",
			sol.Objective, want, scale)
	}
	if sol.X[0] != 1 {
		t.Fatalf("x = %v, want the better variable selected", sol.X)
	}
}

// TestIncrementalSolverAllocatesLittle pins the pooling: steady-state
// warm solves of an unchanged-shape problem allocate only the
// returned Solution, not fresh tableau slabs.
func TestIncrementalSolverAllocatesLittle(t *testing.T) {
	p := hardKnapsack(16)
	var s IncrementalSolver
	if _, err := s.Solve(p); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		p.Constraints[0].RHS += 1
		if p.Constraints[0].RHS > 80 {
			p.Constraints[0].RHS = 40
		}
		if _, err := s.Solve(p); err != nil {
			t.Fatal(err)
		}
	})
	// Solution struct + X slice + a small hash-probe budget; a fresh
	// tableau per node would be hundreds.
	if allocs > 20 {
		t.Fatalf("steady-state warm solve allocates too much: %.0f allocs/op", allocs)
	}
}

// FuzzWarmVsCold drives a persistent solver through fuzzer-chosen
// bound and RHS perturbations of a fuzzer-built instance and requires
// agreement with a fresh solve at every step.
func FuzzWarmVsCold(f *testing.F) {
	f.Add([]byte{3, 2, 5, 3, 1, 200, 100, 4, 7, 2, 9, 1, 30, 0, 2, 1, 1, 3})
	f.Add([]byte{2, 1, 1, 1, 128, 4, 128, 140, 3, 10, 2, 0, 250})
	f.Add([]byte{4, 3, 2, 2, 1, 1, 90, 10, 201, 5, 66, 3, 17, 120, 0, 1, 2, 2, 1, 7, 250, 250})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 6 {
			return
		}
		pos := 0
		next := func() byte {
			b := data[pos%len(data)]
			pos++
			return b
		}
		n := 1 + int(next())%4
		m := 1 + int(next())%3
		p := &Problem{
			Sense:     Sense(int(next()) % 2),
			Objective: make([]float64, n),
			Upper:     make([]float64, n),
			Integer:   make([]bool, n),
		}
		for i := 0; i < n; i++ {
			p.Objective[i] = float64(int(next())-128) / 16
			p.Upper[i] = float64(1 + int(next())%4)
			p.Integer[i] = true
		}
		for k := 0; k < m; k++ {
			co := make([]float64, n)
			for i := range co {
				co[i] = float64(int(next())-128) / 32
			}
			p.Constraints = append(p.Constraints, Constraint{
				Coeffs: co,
				Rel:    Rel(int(next()) % 3),
				RHS:    float64(int(next())-100) / 8,
			})
		}
		var warm IncrementalSolver
		for step := 0; step < 4; step++ {
			warmSol, warmErr := warm.Solve(p)
			var cold IncrementalSolver
			coldSol, coldErr := cold.Solve(p)
			if (warmErr == nil) != (coldErr == nil) {
				t.Fatalf("step %d: warm err=%v cold err=%v", step, warmErr, coldErr)
			}
			if warmErr == nil {
				if warmSol.Status != coldSol.Status {
					t.Fatalf("step %d: warm %v != cold %v\nproblem: %+v", step, warmSol.Status, coldSol.Status, p)
				}
				if warmSol.Status == StatusOptimal {
					tol := 1e-6 * math.Max(1, math.Abs(coldSol.Objective))
					if math.Abs(warmSol.Objective-coldSol.Objective) > tol {
						t.Fatalf("step %d: warm obj %v != cold obj %v\nproblem: %+v", step, warmSol.Objective, coldSol.Objective, p)
					}
				}
			}
			// Perturb for the next round: move one RHS and one bound.
			k := int(next()) % len(p.Constraints)
			p.Constraints[k].RHS += float64(int(next())-128) / 16
			i := int(next()) % n
			p.Upper[i] = float64(1 + int(next())%4)
		}
	})
}
