// Package milp provides a small, self-contained mixed-integer linear
// programming solver: a two-phase dense primal simplex for linear
// relaxations (Bland's rule, so it cannot cycle) and best-bound
// branch-and-bound for integrality. It stands in for Gurobi in the
// DiffServe resource allocator, whose instances are small (on the
// order of a hundred variables), and is cross-validated against
// exhaustive enumeration in the allocator's tests.
package milp

import (
	"errors"
	"fmt"
	"math"
)

// Sense is the optimization direction.
type Sense int

// Optimization directions.
const (
	Minimize Sense = iota
	Maximize
)

// Rel is a constraint relation.
type Rel int

// Constraint relations.
const (
	LE Rel = iota // <=
	EQ            // ==
	GE            // >=
)

func (r Rel) String() string {
	switch r {
	case LE:
		return "<="
	case EQ:
		return "=="
	case GE:
		return ">="
	}
	return "?"
}

// Constraint is a dense linear constraint over all problem variables.
type Constraint struct {
	Coeffs []float64
	Rel    Rel
	RHS    float64
	// Name is optional, for diagnostics.
	Name string
}

// Problem is a mixed-integer linear program.
type Problem struct {
	Sense       Sense
	Objective   []float64
	Constraints []Constraint
	// Lower and Upper are per-variable bounds. A nil Lower defaults to
	// all zeros; a nil Upper defaults to +Inf. Use math.Inf(1) for
	// unbounded-above variables.
	Lower, Upper []float64
	// Integer flags which variables must take integer values. Nil
	// means all continuous.
	Integer []bool
	// Initial optionally supplies a warm-start candidate. If it is
	// feasible and integral it becomes the incumbent before search
	// begins, letting branch-and-bound prune aggressively.
	Initial []float64
	// NodeLimit caps the number of branch-and-bound nodes explored
	// (0 means the package default). When the cap is hit with an
	// incumbent in hand, Solve returns it with StatusNodeLimit; with
	// no incumbent it returns ErrNodeLimit.
	NodeLimit int
}

// NumVars returns the number of decision variables.
func (p *Problem) NumVars() int { return len(p.Objective) }

// Validate checks structural consistency.
func (p *Problem) Validate() error {
	n := p.NumVars()
	if n == 0 {
		return errors.New("milp: problem has no variables")
	}
	if p.Lower != nil && len(p.Lower) != n {
		return fmt.Errorf("milp: Lower has %d entries, want %d", len(p.Lower), n)
	}
	if p.Upper != nil && len(p.Upper) != n {
		return fmt.Errorf("milp: Upper has %d entries, want %d", len(p.Upper), n)
	}
	if p.Integer != nil && len(p.Integer) != n {
		return fmt.Errorf("milp: Integer has %d entries, want %d", len(p.Integer), n)
	}
	for i, c := range p.Constraints {
		if len(c.Coeffs) != n {
			return fmt.Errorf("milp: constraint %d has %d coeffs, want %d", i, len(c.Coeffs), n)
		}
		if math.IsNaN(c.RHS) {
			return fmt.Errorf("milp: constraint %d has NaN RHS", i)
		}
	}
	for i := 0; i < n; i++ {
		lo, hi := p.boundsAt(i)
		if lo > hi {
			return fmt.Errorf("milp: variable %d has empty bound range [%v, %v]", i, lo, hi)
		}
		if math.IsInf(lo, -1) {
			return fmt.Errorf("milp: variable %d has -Inf lower bound (unsupported; shift or split)", i)
		}
	}
	return nil
}

func (p *Problem) boundsAt(i int) (lo, hi float64) {
	lo = 0
	if p.Lower != nil {
		lo = p.Lower[i]
	}
	hi = math.Inf(1)
	if p.Upper != nil {
		hi = p.Upper[i]
	}
	return lo, hi
}

// Status reports the outcome of a solve.
type Status int

// Solve outcomes.
const (
	StatusOptimal Status = iota
	StatusInfeasible
	StatusUnbounded
	// StatusNodeLimit marks a best-effort solution: branch-and-bound
	// hit its node budget before proving optimality, but a feasible
	// integral incumbent was in hand. Callers that need *a* plan (the
	// control loop) should accept it; callers that need proven
	// optimality should treat it as a failure.
	StatusNodeLimit
)

func (s Status) String() string {
	switch s {
	case StatusOptimal:
		return "optimal"
	case StatusInfeasible:
		return "infeasible"
	case StatusUnbounded:
		return "unbounded"
	case StatusNodeLimit:
		return "node-limit"
	}
	return "unknown"
}

// Solution is the result of a solve.
type Solution struct {
	Status     Status
	X          []float64
	Objective  float64
	Nodes      int // branch-and-bound nodes explored
	Iterations int // total simplex pivots
}

// ErrNodeLimit is returned when branch-and-bound exceeds its node
// budget without proving optimality.
var ErrNodeLimit = errors.New("milp: branch-and-bound node limit exceeded")

const (
	intTol     = 1e-6
	feasTol    = 1e-7
	defaultCap = 200000
)

// SolveLP solves the linear relaxation of the problem (ignoring
// integrality flags).
func SolveLP(p *Problem) (*Solution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	lo, hi := boundsOf(p)
	return solveLPBounds(p, lo, hi)
}

// Solve solves the mixed-integer program by best-bound branch and
// bound over LP relaxations. Each call runs cold; callers that solve
// a sequence of related problems (the control loop) should hold an
// IncrementalSolver instead, which reuses the tableau, basis, node
// pool, and previous incumbent across calls.
func Solve(p *Problem) (*Solution, error) {
	var s IncrementalSolver
	return s.Solve(p)
}

// isFeasible checks a candidate point against bounds, integrality,
// and all constraints within tolerance.
func isFeasible(p *Problem, x []float64) bool {
	for i := range x {
		lo, hi := p.boundsAt(i)
		if x[i] < lo-feasTol || x[i] > hi+feasTol {
			return false
		}
		if p.Integer != nil && p.Integer[i] && math.Abs(x[i]-math.Round(x[i])) > intTol {
			return false
		}
	}
	for _, c := range p.Constraints {
		dot := 0.0
		for i := range x {
			dot += c.Coeffs[i] * x[i]
		}
		switch c.Rel {
		case LE:
			if dot > c.RHS+1e-6 {
				return false
			}
		case GE:
			if dot < c.RHS-1e-6 {
				return false
			}
		case EQ:
			if math.Abs(dot-c.RHS) > 1e-6 {
				return false
			}
		}
	}
	return true
}

// orient converts an objective value into minimize orientation.
func orient(p *Problem, obj float64) float64 {
	if p.Sense == Maximize {
		return -obj
	}
	return obj
}

func boundsOf(p *Problem) (lo, hi []float64) {
	n := p.NumVars()
	lo = make([]float64, n)
	hi = make([]float64, n)
	for i := 0; i < n; i++ {
		lo[i], hi[i] = p.boundsAt(i)
	}
	return lo, hi
}
