package loadbalancer

import (
	"math"
	"testing"

	"diffserve/internal/queueing"
	"diffserve/internal/stats"
)

func TestCascadeRoutesLight(t *testing.T) {
	lb := New(ModeCascade, 10, stats.NewRNG(1))
	for i := 0; i < 10; i++ {
		if got := lb.Route(0, queueing.Item{ID: i}); got != PoolLight {
			t.Fatalf("cascade routed to %v", got)
		}
	}
	if lb.Light.Len() != 10 || lb.Heavy.Len() != 0 {
		t.Error("queue lengths wrong")
	}
}

func TestAllHeavyRoutesHeavy(t *testing.T) {
	lb := New(ModeAllHeavy, 10, stats.NewRNG(2))
	lb.Route(0, queueing.Item{ID: 1})
	if lb.Heavy.Len() != 1 || lb.Light.Len() != 0 {
		t.Error("all-heavy routing wrong")
	}
}

func TestRandomSplitProbability(t *testing.T) {
	lb := New(ModeRandomSplit, 10, stats.NewRNG(3))
	lb.SetSplit(0.3)
	n := 20000
	for i := 0; i < n; i++ {
		lb.Route(0, queueing.Item{ID: i})
	}
	frac := float64(lb.Heavy.Len()) / float64(n)
	if math.Abs(frac-0.3) > 0.02 {
		t.Errorf("heavy fraction = %.3f, want ~0.3", frac)
	}
}

func TestSetSplitClamps(t *testing.T) {
	lb := New(ModeRandomSplit, 10, stats.NewRNG(4))
	lb.SetSplit(-1)
	if lb.Split() != 0 {
		t.Errorf("split = %v, want 0", lb.Split())
	}
	lb.SetSplit(2)
	if lb.Split() != 1 {
		t.Errorf("split = %v, want 1", lb.Split())
	}
}

func TestDeferCountsAndQueues(t *testing.T) {
	lb := New(ModeCascade, 10, stats.NewRNG(5))
	lb.Route(0, queueing.Item{ID: 1})
	lb.Defer(1, queueing.Item{ID: 1, Arrival: 0})
	l, h, d := lb.Stats()
	if l != 1 || h != 0 || d != 1 {
		t.Errorf("stats = %d, %d, %d", l, h, d)
	}
	if lb.Heavy.Len() != 1 {
		t.Error("deferred item not on heavy queue")
	}
}

func TestQueueAccessor(t *testing.T) {
	lb := New(ModeCascade, 10, stats.NewRNG(6))
	if lb.Queue(PoolLight) != lb.Light || lb.Queue(PoolHeavy) != lb.Heavy {
		t.Error("Queue accessor wrong")
	}
}

func TestSnap(t *testing.T) {
	lb := New(ModeCascade, 10, stats.NewRNG(7))
	for i := 0; i < 5; i++ {
		lb.Route(float64(i), queueing.Item{ID: i})
	}
	s := lb.Snap(5)
	if s.Light.Len != 5 {
		t.Errorf("snapshot light len = %d", s.Light.Len)
	}
	if s.Light.ArrivalRate <= 0 {
		t.Error("snapshot rate missing")
	}
}

func TestModeString(t *testing.T) {
	for m, want := range map[Mode]string{
		ModeCascade: "cascade", ModeAllLight: "all-light",
		ModeAllHeavy: "all-heavy", ModeRandomSplit: "random-split",
		Mode(99): "unknown",
	} {
		if m.String() != want {
			t.Errorf("%d -> %q, want %q", m, m.String(), want)
		}
	}
	lb := New(ModeCascade, 10, stats.NewRNG(8))
	if lb.String() == "" {
		t.Error("empty LB string")
	}
	if lb.Mode() != ModeCascade {
		t.Error("Mode accessor wrong")
	}
}

func TestShardOfDeterministicAndBalanced(t *testing.T) {
	// Pure function of (id, shards): repeated calls and independent
	// processes must agree, so pin a few golden assignments.
	golden := map[[2]int]int{}
	for _, id := range []int{0, 1, 2, 1000, 123456} {
		for _, n := range []int{1, 2, 4, 8} {
			golden[[2]int{id, n}] = ShardOf(id, n)
		}
	}
	for k, want := range golden {
		if got := ShardOf(k[0], k[1]); got != want {
			t.Errorf("ShardOf(%d, %d) unstable: %d then %d", k[0], k[1], want, got)
		}
	}
	// Degenerate shard counts collapse to shard 0.
	for _, n := range []int{1, 0, -3} {
		if got := ShardOf(42, n); got != 0 {
			t.Errorf("ShardOf(42, %d) = %d, want 0", n, got)
		}
	}
	// Range and balance: sequential IDs (the trace replay pattern)
	// must spread near-uniformly, not stripe into one shard.
	for _, n := range []int{2, 3, 4, 8} {
		counts := make([]int, n)
		const total = 40000
		for id := 0; id < total; id++ {
			s := ShardOf(id, n)
			if s < 0 || s >= n {
				t.Fatalf("ShardOf(%d, %d) = %d out of range", id, n, s)
			}
			counts[s]++
		}
		want := float64(total) / float64(n)
		for s, c := range counts {
			if dev := (float64(c) - want) / want; dev < -0.1 || dev > 0.1 {
				t.Errorf("%d shards: shard %d holds %d of %d (%.1f%% off uniform)",
					n, s, c, total, 100*dev)
			}
		}
	}
}
