package loadbalancer

import (
	"encoding/binary"
	"math/bits"
	"testing"
)

// ringKeys is the ID population the ring properties are verified
// over: 1e5 sequential IDs, the shape real query streams have.
const ringKeys = 100000

// TestRingDeterminism pins the cross-process contract: two rings
// built from the same (members, vnodes) — including a permuted,
// duplicated member list — assign every key identically, and a
// modulus ring reproduces ShardOf bit for bit.
func TestRingDeterminism(t *testing.T) {
	a := NewRing([]int{0, 1, 2, 5}, 128)
	b := NewRing([]int{5, 2, 1, 0, 2}, 128) // permuted + duplicate
	for id := 0; id < ringKeys; id++ {
		if ao, bo := a.Owner(id), b.Owner(id); ao != bo {
			t.Fatalf("ring not order-independent: id %d -> %d vs %d", id, ao, bo)
		}
	}
	for _, n := range []int{1, 2, 3, 7} {
		m := NewModulusRing(n)
		if !m.Modulus() {
			t.Fatalf("NewModulusRing(%d) not flagged as modulus", n)
		}
		for id := 0; id < 2000; id++ {
			if got, want := m.Owner(id), ShardOf(id, n); got != want {
				t.Fatalf("modulus ring diverged from ShardOf at n=%d id=%d: %d vs %d", n, id, got, want)
			}
		}
	}
}

// TestRingBalance pins the load-spread property the tier depends on:
// at 128 vnodes the largest member's key share stays within 1.25x the
// smallest's for every membership size the tier runs, over 1e5 IDs.
func TestRingBalance(t *testing.T) {
	memberSets := [][]int{
		{0, 1},
		{0, 1, 2},
		{0, 1, 2, 3},
		{0, 1, 2, 3, 4},
		{3, 11, 42}, // non-contiguous survivors of earlier reshards
	}
	for _, ms := range memberSets {
		r := NewRing(ms, 128)
		counts := map[int]int{}
		for id := 0; id < ringKeys; id++ {
			counts[r.Owner(id)]++
		}
		if len(counts) != len(ms) {
			t.Fatalf("members %v: only %d of %d members own keys", ms, len(counts), len(ms))
		}
		min, max := ringKeys, 0
		for _, c := range counts {
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		if ratio := float64(max) / float64(min); ratio > 1.25 {
			t.Errorf("members %v: max/min key share %.3f > 1.25 (counts %v)", ms, ratio, counts)
		}
	}
}

// TestRingMinimalDisruption pins the property the modulus cannot
// offer: adding one member to an N-member ring moves at most
// (1/N)+eps of the keys, and every moved key moves TO the new member
// — no key ever moves between two surviving members.
func TestRingMinimalDisruption(t *testing.T) {
	for _, n := range []int{2, 3, 4, 7} {
		members := make([]int, n)
		for i := range members {
			members[i] = i
		}
		before := NewRing(members, 128)
		after := NewRing(append(append([]int{}, members...), n), 128)
		moved := 0
		for id := 0; id < ringKeys; id++ {
			ob, oa := before.Owner(id), after.Owner(id)
			if ob == oa {
				continue
			}
			if oa != n {
				t.Fatalf("n=%d: id %d moved %d -> %d, not to the new member %d", n, id, ob, oa, n)
			}
			moved++
		}
		// The new member should take ~1/(n+1); the satellite bound is
		// (1/n)+eps, comfortably above the expectation.
		limit := 1.0/float64(n) + 0.05
		if frac := float64(moved) / ringKeys; frac > limit {
			t.Errorf("n=%d: adding one member moved %.4f of keys, limit %.4f", n, frac, limit)
		}
		if moved == 0 {
			t.Errorf("n=%d: adding a member moved no keys", n)
		}
	}
}

// TestRingRemovalDisruption is the inverse property: removing one
// member moves exactly that member's keys, each to some survivor.
func TestRingRemovalDisruption(t *testing.T) {
	before := NewRing([]int{0, 1, 2, 3}, 128)
	after := NewRing([]int{0, 1, 3}, 128)
	for id := 0; id < ringKeys; id++ {
		ob, oa := before.Owner(id), after.Owner(id)
		if ob != 2 && ob != oa {
			t.Fatalf("id %d moved %d -> %d though its owner survived", id, ob, oa)
		}
		if ob == 2 && oa == 2 {
			t.Fatalf("id %d still owned by the removed member", id)
		}
	}
}

// TestRingEdgeCases covers the degenerate shapes callers can build.
func TestRingEdgeCases(t *testing.T) {
	if got := NewRing(nil, 128).Owner(7); got != -1 {
		t.Errorf("empty ring Owner = %d, want -1", got)
	}
	one := NewRing([]int{9}, 4)
	for id := 0; id < 100; id++ {
		if one.Owner(id) != 9 {
			t.Fatalf("single-member ring routed id %d to %d", id, one.Owner(id))
		}
	}
	if !one.Has(9) || one.Has(3) {
		t.Error("Has misreports membership")
	}
	if n := NewRing([]int{4, 4, 4}, 8).N(); n != 1 {
		t.Errorf("duplicate members collapsed to %d, want 1", n)
	}
	// Negative IDs hash like any other bit pattern and must still land
	// on a member.
	r := NewRing([]int{0, 1, 2}, 64)
	for id := -1000; id < 0; id++ {
		if o := r.Owner(id); !r.Has(o) {
			t.Fatalf("negative id %d routed to non-member %d", id, o)
		}
	}
}

// TestVnodeStratification pins the placement invariant the balance
// bound rests on: replica j of any member lands inside segment j of
// the circle for every vnode count — including non-powers of two,
// where a rounded-up fixed segment width would wrap the last
// replicas back into segment 0.
func TestVnodeStratification(t *testing.T) {
	for _, vnodes := range []int{2, 3, 100, 128, 257} {
		for _, member := range []int{0, 7, 4095} {
			for j := 0; j < vnodes; j++ {
				start, _ := bits.Div64(uint64(j), 0, uint64(vnodes))
				var end uint64
				if j+1 < vnodes {
					end, _ = bits.Div64(uint64(j+1), 0, uint64(vnodes))
				}
				h := vnodeHash(member, j, vnodes)
				if h < start || (end != 0 && h >= end) {
					t.Fatalf("vnodes=%d member=%d replica=%d: position %x outside segment [%x, %x)",
						vnodes, member, j, h, start, end)
				}
			}
		}
	}
}

// TestWeightedRingEqualWeightsIdentical pins the compatibility
// contract: uniform weights (explicit, implicit via missing entries,
// or any equal value) reproduce NewRing's placement bit for bit.
func TestWeightedRingEqualWeightsIdentical(t *testing.T) {
	members := []int{0, 1, 2, 5}
	plain := NewRing(members, 128)
	for _, weights := range []map[int]int{
		nil,
		{0: 1, 1: 1, 2: 1, 5: 1},
		{0: 3, 1: 3, 2: 3, 5: 3},
		{0: -2, 1: 0}, // non-positive and missing both default to 1
	} {
		w := NewWeightedRing(members, weights, 128)
		for id := 0; id < ringKeys; id++ {
			if po, wo := plain.Owner(id), w.Owner(id); po != wo {
				t.Fatalf("weights %v: id %d -> %d, plain ring -> %d", weights, id, wo, po)
			}
		}
	}
}

// TestWeightedRingProportionalShares pins the placement the thin-shard
// fix rests on: key shares track the weight ratio. With worker-group
// weights 3:2:2 (7 workers over 3 shards) the heavy member must own
// ~3/7 of the keys and each light member ~2/7, within 15% relative.
func TestWeightedRingProportionalShares(t *testing.T) {
	cases := []struct {
		members []int
		weights map[int]int
	}{
		{[]int{0, 1, 2}, map[int]int{0: 3, 1: 2, 2: 2}},
		{[]int{0, 1}, map[int]int{0: 3, 1: 1}},
		{[]int{3, 11, 42, 77}, map[int]int{3: 1, 11: 2, 42: 3, 77: 4}},
	}
	for _, tc := range cases {
		r := NewWeightedRing(tc.members, tc.weights, 128)
		counts := map[int]int{}
		for id := 0; id < ringKeys; id++ {
			counts[r.Owner(id)]++
		}
		total := 0
		for _, m := range tc.members {
			total += tc.weights[m]
		}
		for _, m := range tc.members {
			want := float64(ringKeys) * float64(tc.weights[m]) / float64(total)
			got := float64(counts[m])
			if rel := (got - want) / want; rel > 0.15 || rel < -0.15 {
				t.Errorf("members %v weights %v: member %d owns %.0f keys, want ~%.0f (rel %.3f)",
					tc.members, tc.weights, m, got, want, rel)
			}
		}
	}
}

// TestWeightedRingDeterminism pins order-independence and determinism
// for the weighted constructor, same contract as NewRing's.
func TestWeightedRingDeterminism(t *testing.T) {
	w := map[int]int{0: 2, 1: 1, 2: 4, 5: 1}
	a := NewWeightedRing([]int{0, 1, 2, 5}, w, 64)
	b := NewWeightedRing([]int{5, 2, 1, 0, 2}, w, 64) // permuted + duplicate
	for id := 0; id < ringKeys; id++ {
		ao, bo := a.Owner(id), b.Owner(id)
		if ao != bo {
			t.Fatalf("weighted ring not order-independent: id %d -> %d vs %d", id, ao, bo)
		}
		if !a.Has(ao) {
			t.Fatalf("weighted ring routed id %d to non-member %d", id, ao)
		}
	}
}

// TestRingDefaultVNodes pins the vnodes<=0 fallback.
func TestRingDefaultVNodes(t *testing.T) {
	a := NewRing([]int{0, 1, 2}, 0)
	b := NewRing([]int{0, 1, 2}, DefaultVNodes)
	for id := 0; id < 10000; id++ {
		if a.Owner(id) != b.Owner(id) {
			t.Fatalf("vnodes<=0 did not default to DefaultVNodes at id %d", id)
		}
	}
}

// FuzzRingLookup feeds arbitrary membership shapes, vnode counts, and
// IDs to the ring. Every lookup must return a member (never a panic,
// never a non-member), rebuilt rings must agree (determinism), and
// the modulus mode must match ShardOf.
func FuzzRingLookup(f *testing.F) {
	seed := func(members []int, vnodes int, id int) {
		data := []byte{byte(len(members))}
		for _, m := range members {
			data = binary.AppendUvarint(data, uint64(m))
		}
		data = binary.AppendUvarint(data, uint64(vnodes))
		data = binary.AppendUvarint(data, uint64(id))
		f.Add(data)
	}
	seed([]int{0, 1}, 128, 42)
	seed([]int{0, 1, 2, 3, 4}, 16, 99991)
	seed([]int{7, 300, 12}, 1, 0)
	seed(nil, 128, 5)
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		n := int(data[0] % 17) // 0..16 members
		rest := data[1:]
		members := make([]int, 0, n)
		for i := 0; i < n; i++ {
			v, used := binary.Uvarint(rest)
			if used <= 0 {
				break
			}
			rest = rest[used:]
			members = append(members, int(v%4096))
		}
		vn, used := binary.Uvarint(rest)
		if used > 0 {
			rest = rest[used:]
		}
		vnodes := int(vn % 256)
		idv, _ := binary.Uvarint(rest)
		id := int(idv)

		r := NewRing(members, vnodes)
		owner := r.Owner(id)
		if len(r.Members()) == 0 {
			if owner != -1 {
				t.Fatalf("empty ring returned owner %d", owner)
			}
			return
		}
		if !r.Has(owner) {
			t.Fatalf("Owner(%d) = %d is not a member of %v", id, owner, r.Members())
		}
		if again := NewRing(members, vnodes).Owner(id); again != owner {
			t.Fatalf("rebuilt ring disagreed: %d vs %d", again, owner)
		}
		if m := NewModulusRing(len(r.Members())); m.Owner(id) != ShardOf(id, len(r.Members())) {
			t.Fatalf("modulus ring diverged from ShardOf")
		}
	})
}

// BenchmarkShardOf is the static-modulus baseline the ring lookup is
// held against (acceptance: ring within 2x).
func BenchmarkShardOf(b *testing.B) {
	s := 0
	for i := 0; i < b.N; i++ {
		s += ShardOf(i, 3)
	}
	benchSink = s
}

// BenchmarkRingLookup measures the consistent-hash lookup on a
// 3-member, 128-vnode ring — the bucket table keeps it within the 2x
// bar over ShardOf.
func BenchmarkRingLookup(b *testing.B) {
	r := NewRing([]int{0, 1, 2}, 128)
	b.ResetTimer()
	s := 0
	for i := 0; i < b.N; i++ {
		s += r.Owner(i)
	}
	benchSink = s
}

var benchSink int
