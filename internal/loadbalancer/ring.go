package loadbalancer

import (
	"math/bits"
	"sort"
)

// This file implements the consistent-hash ring behind dynamic shard
// membership. ShardOf's static modulus fixes the shard count at
// process start: changing N remaps almost every query ID, so the
// sharded LB tier could only grow by restarting every process. The
// ring makes membership a runtime property — adding one shard moves
// only the ~1/N key share the new shard takes over, and removing one
// moves only the departing shard's share — while staying a pure
// function of (members, vnodes) so every process computes the same
// placement with no coordination, exactly like ShardOf.

// DefaultVNodes is the virtual-node count per member used when a ring
// is built with vnodes <= 0. 128 points per member keeps the max/min
// key-share ratio within ~1.25 for the membership sizes the tier runs
// (see ring_test.go's balance property).
const DefaultVNodes = 128

// Ring maps query IDs to shard members by consistent hashing: each
// member owns the key ranges preceding its virtual nodes on a 64-bit
// hash circle. A Ring is immutable; membership changes build a new
// Ring (a new "epoch" in the cluster tier's terms), and placement is
// deterministic across processes — the vnode positions and the key
// hash are both pure FNV-1a derivations.
//
// The zero-vnode constructor NewModulusRing reproduces ShardOf's
// static-modulus placement byte-identically, so existing static-N
// deployments keep their exact assignment; NewRing is the elastic
// placement used once membership can change.
type Ring struct {
	members []int // sorted ascending; Owner returns values from here
	modulus bool  // legacy ShardOf placement over len(members)

	// Vnode circle, sorted by hash. owners[i] indexes members.
	hashes []uint64
	owners []int32

	// Lookup acceleration: bucket b of table covers the hash range
	// [b<<shift, (b+1)<<shift) and holds the index of the first vnode
	// with hash >= b<<shift, so Owner is one table read plus a short
	// forward scan instead of a binary search over every vnode.
	shift uint
	table []int32
}

// hash64 is the FNV-1a mix shared by ShardOf and the ring's key
// placement: both hash the 8 little-endian bytes of the ID, so a
// modulus ring agrees with ShardOf bit for bit.
func hash64(v uint64) uint64 {
	h := uint64(14695981039346656037) // FNV-1a offset basis
	for i := 0; i < 8; i++ {
		h ^= v >> (8 * i) & 0xff
		h *= 1099511628211 // FNV-1a prime
	}
	return h
}

// fmix64 is the 64-bit avalanche finisher (SplitMix64/Murmur3 style).
// FNV-1a alone clusters vnode positions for small sequential inputs;
// the finisher spreads them uniformly over the circle, which is what
// keeps per-member key shares balanced.
func fmix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// vnodeHash positions replica r of member m on the circle. Placement
// is stratified: replica j lands inside segment j of the circle (the
// circle split into vnodes equal segments), at an offset derived from
// the member/replica FNV mix. Every member then has exactly one
// virtual node per segment, so a member's key share is the average of
// vnodes independent per-segment shares instead of the sum of fully
// random arcs — that averaging is what holds the max/min share ratio
// within 1.25 at 128 vnodes, where unstratified placement lands
// around 1.3. Segment bounds are the exact 128-bit quotients
// floor(j*2^64/vnodes), so the stratification holds for every vnode
// count, not just powers of two (a rounded-up fixed width would wrap
// the last replicas back into segment 0).
func vnodeHash(member, replica, vnodes int) uint64 {
	return vnodeHashRep(member, replica, 0, vnodes)
}

// vnodeHashRep positions repetition rep of replica r of member m — the
// weighted-placement generalization. A member of weight w contributes
// w points per segment (repetitions 0..w-1), all stratified into the
// same common vnodes-segment grid, so within every segment the point
// population mirrors the weight ratio and key shares stay proportional
// to weight. (Giving heavier members more segments of their own
// instead would skew shares: a finer-grained member quasi-regularizes
// the circle, and coarser members then capture only about half their
// fair gap.) Repetition 0 reduces to the unweighted position — the
// fmix of 0 is 0, so the XOR vanishes — which is what makes
// equal-weight rings bit-identical to NewRing's.
func vnodeHashRep(member, replica, rep, vnodes int) uint64 {
	off := fmix64(hash64(uint64(member)) ^
		fmix64(uint64(replica)*0x9e3779b97f4a7c15) ^
		fmix64(uint64(rep)*0xd1b54a32d192ed03))
	if vnodes == 1 {
		return off
	}
	start, _ := bits.Div64(uint64(replica), 0, uint64(vnodes))
	var end uint64 // segment end; 0 means 2^64 for the last segment
	if replica+1 < vnodes {
		end, _ = bits.Div64(uint64(replica+1), 0, uint64(vnodes))
	}
	return start + off%(end-start)
}

// NewRing builds a consistent-hash ring over the given members with
// vnodes virtual nodes each (vnodes <= 0 uses DefaultVNodes). Members
// are arbitrary non-negative IDs — they need not be contiguous, which
// is what lets a removed shard's ID stay retired forever. Duplicate
// members are collapsed. An empty member list yields a ring that owns
// nothing; callers guard against it.
func NewRing(members []int, vnodes int) *Ring {
	ms := dedupSorted(members)
	reps := make([]int, len(ms))
	for i := range reps {
		reps[i] = 1
	}
	return buildRing(ms, reps, vnodes)
}

// NewWeightedRing builds a ring whose members hold key shares
// proportional to their weights (a shard's worker-group capacity, in
// the cluster tier): a member of weight w contributes w points to
// every stratification segment, so within each segment — and hence
// over the whole circle — key shares track the weight ratio. Weights
// missing from the map or <= 0 count as 1; the weight vector is
// reduced by its GCD, so equal weights of any value reproduce NewRing
// bit for bit. Like NewRing, the result is a pure function of
// (members, weights, vnodes) — every process that knows the weights
// computes the same placement — and a member's points depend only on
// its own ID and weight, so membership changes keep the minimal-
// disruption property.
func NewWeightedRing(members []int, weights map[int]int, vnodes int) *Ring {
	ms := dedupSorted(members)
	reps := make([]int, len(ms))
	g := 0
	for i, m := range ms {
		w := weights[m]
		if w <= 0 {
			w = 1
		}
		reps[i] = w
		g = gcd(g, w)
	}
	for i := range reps {
		reps[i] /= g
	}
	return buildRing(ms, reps, vnodes)
}

// buildRing assembles the vnode circle and lookup table for the given
// (sorted, deduped) members, member i contributing reps[i] points per
// stratification segment (vnodes segments; <= 0 uses DefaultVNodes).
func buildRing(ms []int, reps []int, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	r := &Ring{members: ms}
	n := len(ms)
	if n == 0 {
		return r
	}
	type point struct {
		hash  uint64
		owner int32
	}
	totalPoints := 0
	for _, c := range reps {
		totalPoints += c * vnodes
	}
	points := make([]point, 0, totalPoints)
	for oi, m := range ms {
		for j := 0; j < vnodes; j++ {
			for rep := 0; rep < reps[oi]; rep++ {
				points = append(points, point{vnodeHashRep(m, j, rep, vnodes), int32(oi)})
			}
		}
	}
	// Sort by hash; ties (astronomically rare) break by owner index so
	// the ring is identical regardless of member insertion order.
	sort.Slice(points, func(i, j int) bool {
		if points[i].hash != points[j].hash {
			return points[i].hash < points[j].hash
		}
		return points[i].owner < points[j].owner
	})
	r.hashes = make([]uint64, len(points))
	r.owners = make([]int32, len(points))
	for i, p := range points {
		r.hashes[i] = p.hash
		r.owners[i] = p.owner
	}
	// Bucket table ~4x the vnode count, rounded to a power of two:
	// <=0.25 vnodes per bucket on average keeps the post-table scan a
	// step or two, which is what holds Owner within ~2x of ShardOf.
	size := 1
	for size < 4*len(points) {
		size <<= 1
	}
	shift := uint(64)
	for s := size; s > 1; s >>= 1 {
		shift--
	}
	r.shift = shift
	r.table = make([]int32, size)
	idx := 0
	for b := 0; b < size; b++ {
		start := uint64(b) << shift
		for idx < len(r.hashes) && r.hashes[idx] < start {
			idx++
		}
		r.table[b] = int32(idx)
	}
	return r
}

// NewModulusRing builds a ring that reproduces ShardOf(id, n) exactly,
// with members 0..n-1 — the compatibility placement for static-N
// tiers. Resharding away from it moves keys like any membership
// change would; resharding between true NewRing epochs moves only the
// minimal share.
func NewModulusRing(n int) *Ring {
	if n < 1 {
		n = 1
	}
	members := make([]int, n)
	for i := range members {
		members[i] = i
	}
	return &Ring{members: members, modulus: true}
}

// Owner returns the member that owns a query ID: the member whose
// virtual node is first at or clockwise of the ID's hash. A modulus
// ring delegates to ShardOf. Owner on an empty ring returns -1.
func (r *Ring) Owner(id int) int {
	if len(r.members) == 0 {
		return -1
	}
	if r.modulus {
		return r.members[ShardOf(id, len(r.members))]
	}
	h := hash64(uint64(id))
	i := int(r.table[h>>r.shift])
	for i < len(r.hashes) && r.hashes[i] < h {
		i++
	}
	if i == len(r.hashes) {
		i = 0 // wrap: the first vnode owns the top of the circle
	}
	return r.members[r.owners[i]]
}

// NextOwner returns the first member clockwise of id's hash whose ID
// differs from the primary owner — the spill target a frontend uses
// when the primary is unreachable (degraded). Walking the vnode circle
// (rather than the sorted member list) keeps the spill assignment
// consistent: every frontend computes the same fallback for a given
// ID, and keys spill to different successors instead of piling onto
// one neighbor. A modulus ring uses the next member index; a ring with
// fewer than two members has no distinct successor and returns the
// primary (or -1 when empty).
func (r *Ring) NextOwner(id int) int {
	n := len(r.members)
	if n == 0 {
		return -1
	}
	if n == 1 {
		return r.members[0]
	}
	if r.modulus {
		return r.members[(ShardOf(id, n)+1)%n]
	}
	h := hash64(uint64(id))
	i := int(r.table[h>>r.shift])
	for i < len(r.hashes) && r.hashes[i] < h {
		i++
	}
	if i == len(r.hashes) {
		i = 0
	}
	primary := r.owners[i]
	for step := 1; step <= len(r.owners); step++ {
		j := (i + step) % len(r.owners)
		if r.owners[j] != primary {
			return r.members[r.owners[j]]
		}
	}
	return r.members[primary]
}

// Members returns the ring's membership, sorted ascending.
func (r *Ring) Members() []int {
	out := make([]int, len(r.members))
	copy(out, r.members)
	return out
}

// N returns the member count.
func (r *Ring) N() int { return len(r.members) }

// Has reports whether m is a ring member.
func (r *Ring) Has(m int) bool {
	i := sort.SearchInts(r.members, m)
	return i < len(r.members) && r.members[i] == m
}

// Modulus reports whether the ring uses the legacy ShardOf placement.
func (r *Ring) Modulus() bool { return r.modulus }

// gcd returns the greatest common divisor (gcd(0, b) = b).
func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// dedupSorted returns a sorted copy of ms with duplicates removed.
func dedupSorted(ms []int) []int {
	out := make([]int, len(ms))
	copy(out, ms)
	sort.Ints(out)
	w := 0
	for i, m := range out {
		if i == 0 || m != out[w-1] {
			out[w] = m
			w++
		}
	}
	return out[:w]
}
