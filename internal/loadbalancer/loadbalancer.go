// Package loadbalancer implements DiffServe's data-path routing: the
// entry point that queues arriving queries for the light pool (cascade
// mode), routes everything to a single pool (the Clipper baselines),
// or splits randomly by capacity share (Proteus), plus the deferral
// path that moves low-confidence queries from the light to the heavy
// pool.
package loadbalancer

import (
	"fmt"

	"diffserve/internal/queueing"
	"diffserve/internal/stats"
)

// Mode is the routing policy.
type Mode int

// Routing policies.
const (
	// ModeCascade routes every query to the light pool first; the
	// discriminator decides deferral (DiffServe and its ablations).
	ModeCascade Mode = iota
	// ModeAllLight serves everything from the light pool
	// (Clipper-Light).
	ModeAllLight
	// ModeAllHeavy serves everything from the heavy pool
	// (Clipper-Heavy).
	ModeAllHeavy
	// ModeRandomSplit routes to the heavy pool with the configured
	// probability, query-agnostically (Proteus).
	ModeRandomSplit
)

func (m Mode) String() string {
	switch m {
	case ModeCascade:
		return "cascade"
	case ModeAllLight:
		return "all-light"
	case ModeAllHeavy:
		return "all-heavy"
	case ModeRandomSplit:
		return "random-split"
	}
	return "unknown"
}

// ShardOf maps a query ID to one of shards partitions of the query
// stream. It is the single source of truth for the sharded LB tier's
// consistent partitioning: a pure FNV-1a hash of the ID, so the
// assignment is identical across processes, transports, and runs —
// every component (frontend, workers, tests) that needs to know which
// LB shard owns a query computes it locally with no coordination.
// shards <= 1 always maps to shard 0.
//
// Ring compatibility: ShardOf is the static-modulus placement — it
// remaps ~everything when shards changes, so it only suits tiers
// whose shard count is fixed for the process lifetime. Tiers with
// dynamic membership use Ring instead; NewModulusRing(n) wraps this
// exact placement (same hash, same modulus, bit-identical assignment)
// so a static-N deployment can adopt the ring API without moving a
// single key, and NewRing provides the minimal-disruption placement
// once membership actually changes.
func ShardOf(id, shards int) int {
	if shards <= 1 {
		return 0
	}
	return int(hash64(uint64(id)) % uint64(shards))
}

// PoolID identifies a destination pool.
type PoolID int

// Destination pools.
const (
	PoolLight PoolID = iota
	PoolHeavy
)

// LB is the load balancer: two pool queues plus the routing policy.
type LB struct {
	mode      Mode
	splitProb float64
	rng       *stats.RNG

	Light *queueing.FIFO
	Heavy *queueing.FIFO

	routedLight, routedHeavy, deferred int
}

// New constructs a load balancer. windowSecs sizes the queues'
// arrival-rate estimation windows.
func New(mode Mode, windowSecs float64, rng *stats.RNG) *LB {
	return &LB{
		mode:  mode,
		rng:   rng.Stream("lb"),
		Light: queueing.NewFIFO(windowSecs),
		Heavy: queueing.NewFIFO(windowSecs),
	}
}

// Mode returns the routing policy.
func (lb *LB) Mode() Mode { return lb.mode }

// ClampProb clamps a probability to [0, 1].
func ClampProb(p float64) float64 {
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// SetSplit updates the random-split heavy probability (Proteus mode).
// Values are clamped to [0, 1].
func (lb *LB) SetSplit(p float64) {
	lb.splitProb = ClampProb(p)
}

// Split returns the current heavy-routing probability.
func (lb *LB) Split() float64 { return lb.splitProb }

// Decide picks the pool an arrival joins under the routing policy:
// the single source of truth shared by the simulator's LB and the
// cluster runtime's LBServer. rng is consulted only in
// ModeRandomSplit (one Bernoulli draw per arrival); the other modes
// never touch it.
func Decide(mode Mode, splitProb float64, rng *stats.RNG) PoolID {
	switch mode {
	case ModeAllHeavy:
		return PoolHeavy
	case ModeRandomSplit:
		if rng.Bernoulli(splitProb) {
			return PoolHeavy
		}
		return PoolLight
	default: // ModeCascade, ModeAllLight
		return PoolLight
	}
}

// Route enqueues an arriving query and returns the pool it joined.
func (lb *LB) Route(now float64, it queueing.Item) PoolID {
	pool := Decide(lb.mode, lb.splitProb, lb.rng)
	if pool == PoolHeavy {
		lb.Heavy.Push(now, it)
		lb.routedHeavy++
	} else {
		lb.Light.Push(now, it)
		lb.routedLight++
	}
	return pool
}

// Defer moves a low-confidence query to the heavy pool (cascade mode).
func (lb *LB) Defer(now float64, it queueing.Item) {
	lb.Heavy.Push(now, it)
	lb.deferred++
}

// Queue returns the queue for a pool.
func (lb *LB) Queue(p PoolID) *queueing.FIFO {
	if p == PoolHeavy {
		return lb.Heavy
	}
	return lb.Light
}

// Stats summarizes routing counters.
func (lb *LB) Stats() (routedLight, routedHeavy, deferred int) {
	return lb.routedLight, lb.routedHeavy, lb.deferred
}

// Snapshot captures both queues for the controller.
type Snapshot struct {
	Light, Heavy queueing.Snapshot
}

// Snap builds the controller-facing snapshot at time now.
func (lb *LB) Snap(now float64) Snapshot {
	return Snapshot{Light: lb.Light.Snap(now), Heavy: lb.Heavy.Snap(now)}
}

// String renders the LB state for diagnostics.
func (lb *LB) String() string {
	return fmt.Sprintf("lb[%s light=%d heavy=%d deferred=%d]", lb.mode, lb.Light.Len(), lb.Heavy.Len(), lb.deferred)
}
