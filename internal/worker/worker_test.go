package worker

import (
	"testing"
)

func TestNewWorkerIdle(t *testing.T) {
	w := New(3)
	if w.ID() != 3 {
		t.Errorf("ID = %d", w.ID())
	}
	if w.Role() != RoleIdle {
		t.Errorf("new worker role = %v", w.Role())
	}
	if w.Available(0) {
		t.Error("idle-role worker must not be available")
	}
	if _, ok := w.ReadyAt(); ok {
		t.Error("idle-role worker has no ReadyAt")
	}
}

func TestAssignAndLoadDelay(t *testing.T) {
	w := New(0)
	w.Assign(10, RoleLight, 4, 3)
	if w.Role() != RoleLight || w.Batch() != 4 {
		t.Errorf("role/batch = %v/%d", w.Role(), w.Batch())
	}
	if w.Available(11) {
		t.Error("worker should be loading until 13")
	}
	if !w.Available(13) {
		t.Error("worker should be ready at 13")
	}
	at, ok := w.ReadyAt()
	if !ok || at != 13 {
		t.Errorf("ReadyAt = %v, %v", at, ok)
	}
}

func TestAssignSameRoleNoReload(t *testing.T) {
	w := New(0)
	w.Assign(0, RoleHeavy, 2, 5)
	if !w.Available(5) {
		t.Fatal("not ready after load")
	}
	// Same role, new batch: no new load delay.
	w.Assign(6, RoleHeavy, 8, 5)
	if !w.Available(6) {
		t.Error("same-role reassignment must not reload")
	}
	if w.Batch() != 8 {
		t.Errorf("batch = %d", w.Batch())
	}
}

func TestAssignWaitsForInFlightBatch(t *testing.T) {
	w := New(0)
	w.Assign(0, RoleLight, 2, 0)
	w.StartBatch(0, 2, 4) // busy until 4
	w.Assign(1, RoleHeavy, 2, 3)
	// Load begins after the batch: ready at 4 + 3 = 7.
	if w.Available(6) {
		t.Error("should still be loading at 6")
	}
	if !w.Available(7) {
		t.Error("should be ready at 7")
	}
}

func TestStartBatchAccounting(t *testing.T) {
	w := New(0)
	w.Assign(0, RoleLight, 4, 0)
	done := w.StartBatch(1, 3, 2)
	if done != 3 {
		t.Errorf("done = %v", done)
	}
	if w.Available(2) {
		t.Error("busy worker available")
	}
	if !w.Available(3) {
		t.Error("worker should be free at completion time")
	}
	if w.Batches() != 1 || w.Queries() != 3 {
		t.Errorf("counters = %d batches, %d queries", w.Batches(), w.Queries())
	}
}

func TestStartBatchPanics(t *testing.T) {
	cases := []func(*Worker){
		func(w *Worker) { w.StartBatch(0, 1, 1) },                                // idle role
		func(w *Worker) { w.Assign(0, RoleLight, 1, 5); w.StartBatch(0, 1, 1) },  // loading
		func(w *Worker) { w.Assign(0, RoleLight, 1, 0); w.StartBatch(0, 0, 1) },  // empty batch
		func(w *Worker) { w.Assign(0, RoleLight, 1, 0); w.StartBatch(0, 1, -1) }, // negative exec
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn(New(0))
		}()
	}
}

func TestSetBatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for batch 0")
		}
	}()
	New(0).SetBatch(0)
}

func TestNegativeLoadClamped(t *testing.T) {
	w := New(0)
	w.Assign(5, RoleHeavy, 1, -2)
	if !w.Available(5) {
		t.Error("negative load seconds should clamp to 0")
	}
}

func TestPool(t *testing.T) {
	ws := []*Worker{New(0), New(1), New(2)}
	ws[0].Assign(0, RoleLight, 1, 0)
	ws[1].Assign(0, RoleLight, 1, 10) // loading
	p := NewPool(ws)
	if p.Size() != 3 {
		t.Errorf("Size = %d", p.Size())
	}
	avail := p.Available(1)
	if len(avail) != 1 || avail[0].ID() != 0 {
		t.Errorf("available = %v", avail)
	}
	if got := p.Available(10); len(got) != 2 {
		t.Errorf("available after load = %d", len(got))
	}
}

func TestRoleString(t *testing.T) {
	if RoleIdle.String() != "idle" || RoleLight.String() != "light" || RoleHeavy.String() != "heavy" || Role(9).String() != "unknown" {
		t.Error("role strings wrong")
	}
}
