// Package worker models a GPU worker's serving state machine: the
// role it currently hosts (light model + discriminator, heavy model,
// or idle), its configured batch size, busy/loading intervals, and
// execution accounting. The discrete-event simulator and the HTTP
// cluster runtime both drive this state machine.
package worker

import (
	"fmt"
)

// Role is the model a worker currently hosts.
type Role int

// Worker roles.
const (
	RoleIdle Role = iota
	RoleLight
	RoleHeavy
)

func (r Role) String() string {
	switch r {
	case RoleIdle:
		return "idle"
	case RoleLight:
		return "light"
	case RoleHeavy:
		return "heavy"
	}
	return "unknown"
}

// Worker is a single device's serving state. It is a passive state
// machine: the caller owns time and asks the worker what it may do.
type Worker struct {
	id    int
	role  Role
	batch int
	// busyUntil is the completion time of the in-flight batch, or 0.
	busyUntil float64
	// loadingUntil is when a model switch completes, or 0.
	loadingUntil float64
	// lifetime counters
	batches int
	queries int
}

// New returns an idle worker.
func New(id int) *Worker {
	return &Worker{id: id, batch: 1}
}

// ID returns the worker's identifier.
func (w *Worker) ID() int { return w.id }

// Role returns the current role.
func (w *Worker) Role() Role { return w.role }

// Batch returns the configured batch size.
func (w *Worker) Batch() int { return w.batch }

// Batches returns the number of batches executed.
func (w *Worker) Batches() int { return w.batches }

// Queries returns the number of queries executed.
func (w *Worker) Queries() int { return w.queries }

// SetBatch reconfigures the batch size without a model switch.
// It panics on non-positive sizes.
func (w *Worker) SetBatch(b int) {
	if b <= 0 {
		panic(fmt.Sprintf("worker %d: batch must be positive, got %d", w.id, b))
	}
	w.batch = b
}

// Assign switches the worker to a role at time now. A role change
// incurs loadSeconds of model-loading downtime, beginning after any
// in-flight batch finishes. Assigning the current role only updates
// the batch size.
func (w *Worker) Assign(now float64, role Role, batch int, loadSeconds float64) {
	if batch > 0 {
		w.SetBatch(batch)
	}
	if role == w.role {
		return
	}
	w.role = role
	start := now
	if w.busyUntil > start {
		start = w.busyUntil
	}
	if loadSeconds < 0 {
		loadSeconds = 0
	}
	w.loadingUntil = start + loadSeconds
}

// Available reports whether the worker can start a batch at time now:
// it has a serving role, is not mid-batch, and is not loading a model.
func (w *Worker) Available(now float64) bool {
	if w.role == RoleIdle {
		return false
	}
	return now >= w.busyUntil && now >= w.loadingUntil
}

// ReadyAt returns the earliest time the worker could start a batch
// (ignoring queue availability). Idle-role workers return +Inf via ok=false.
func (w *Worker) ReadyAt() (float64, bool) {
	if w.role == RoleIdle {
		return 0, false
	}
	t := w.busyUntil
	if w.loadingUntil > t {
		t = w.loadingUntil
	}
	return t, true
}

// StartBatch marks the worker busy executing n queries until
// now+execSeconds and returns the completion time. It panics when the
// worker is not available, or n is not positive — both indicate
// scheduler bugs.
func (w *Worker) StartBatch(now float64, n int, execSeconds float64) float64 {
	if !w.Available(now) {
		panic(fmt.Sprintf("worker %d: StartBatch while unavailable at %v", w.id, now))
	}
	if n <= 0 {
		panic(fmt.Sprintf("worker %d: empty batch", w.id))
	}
	if execSeconds < 0 {
		panic(fmt.Sprintf("worker %d: negative exec time", w.id))
	}
	w.busyUntil = now + execSeconds
	w.batches++
	w.queries += n
	return w.busyUntil
}

// Pool is a set of workers playing the same role.
type Pool struct {
	workers []*Worker
}

// NewPool wraps the given workers.
func NewPool(ws []*Worker) *Pool { return &Pool{workers: ws} }

// Available returns the workers able to start a batch at time now.
func (p *Pool) Available(now float64) []*Worker {
	var out []*Worker
	for _, w := range p.workers {
		if w.Available(now) {
			out = append(out, w)
		}
	}
	return out
}

// Size returns the pool size.
func (p *Pool) Size() int { return len(p.workers) }
