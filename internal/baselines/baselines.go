// Package baselines assembles runnable serving systems for every
// approach in the paper's evaluation (Table 1): Clipper-Light,
// Clipper-Heavy, Proteus, DiffServe-Static, and DiffServe, plus the
// §4.5 allocator ablations (static threshold, AIMD batching, no
// queuing model). Each approach pairs a routing mode with an
// allocator; the Env fixture shares the query space, model variants,
// discriminator, and deferral profile across approaches so comparisons
// are apples-to-apples.
package baselines

import (
	"fmt"

	"diffserve/internal/allocator"
	"diffserve/internal/cascade"
	"diffserve/internal/controller"
	"diffserve/internal/discriminator"
	"diffserve/internal/imagespace"
	"diffserve/internal/loadbalancer"
	"diffserve/internal/model"
	"diffserve/internal/stats"
	"diffserve/internal/system"
	"diffserve/internal/trace"
)

// Approach names a serving policy from the paper.
type Approach string

// The approaches of Table 1 and the §4.5 ablations.
const (
	ClipperLight    Approach = "clipper-light"
	ClipperHeavy    Approach = "clipper-heavy"
	Proteus         Approach = "proteus"
	DiffServeStatic Approach = "diffserve-static"
	DiffServe       Approach = "diffserve"

	// Ablations (§4.5).
	DiffServeStaticThreshold Approach = "diffserve-static-threshold"
	DiffServeAIMD            Approach = "diffserve-aimd"
	DiffServeNoQueue         Approach = "diffserve-no-queue"
)

// All returns the five headline approaches in presentation order.
func All() []Approach {
	return []Approach{ClipperLight, ClipperHeavy, Proteus, DiffServeStatic, DiffServe}
}

// Ablations returns DiffServe plus its §4.5 allocator ablations.
func Ablations() []Approach {
	return []Approach{DiffServe, DiffServeStaticThreshold, DiffServeNoQueue, DiffServeAIMD}
}

// Env is the shared experimental fixture for one cascade.
type Env struct {
	Space    *imagespace.Space
	Registry *model.Registry
	Spec     model.CascadeSpec
	Light    *model.Variant
	Heavy    *model.Variant
	Scorer   discriminator.Scorer
	Cascade  *cascade.Cascade
	Deferral *cascade.DeferralProfile
	Seed     uint64
}

// NewEnv builds the fixture for the named builtin cascade, profiling
// the deferral curve on calibrationQueries offline queries.
func NewEnv(cascadeName string, seed uint64, calibrationQueries int) (*Env, error) {
	spec, err := model.CascadeByName(cascadeName)
	if err != nil {
		return nil, err
	}
	rng := stats.NewRNG(seed)
	space, err := imagespace.NewSpace(imagespace.DefaultSpaceConfig(), rng.Stream("space"))
	if err != nil {
		return nil, err
	}
	reg := model.BuiltinRegistry()
	light, heavy := reg.MustGet(spec.Light), reg.MustGet(spec.Heavy)
	scorer, err := discriminator.New(discriminator.Config{
		Arch: discriminator.ArchEfficientNet, Train: discriminator.TrainGT,
	}, rng.Stream("disc"))
	if err != nil {
		return nil, err
	}
	casc, err := cascade.New(space, light, heavy, scorer)
	if err != nil {
		return nil, err
	}
	if calibrationQueries <= 0 {
		calibrationQueries = 2000
	}
	// Calibration queries draw from a disjoint ID range so serving
	// experiments never replay them.
	calib := space.SampleQueries(1_000_000, calibrationQueries)
	prof, err := cascade.ProfileDeferral(casc, calib)
	if err != nil {
		return nil, err
	}
	return &Env{
		Space: space, Registry: reg, Spec: spec,
		Light: light, Heavy: heavy,
		Scorer: scorer, Cascade: casc, Deferral: prof,
		Seed: seed,
	}, nil
}

// Options tune a system build.
type Options struct {
	// Workers is the device budget (default 16, the paper's testbed).
	Workers int
	// SLO overrides the cascade's default deadline when positive.
	SLO float64
	// OverProvision overrides the default 1.05 factor when positive.
	OverProvision float64
	// ControlInterval overrides the 2-second control period.
	ControlInterval float64
	// PeakDemand provisions the static baselines; defaults to the
	// trace's peak rate.
	PeakDemand float64
	// StaticThreshold pins the static-threshold ablation (default:
	// the threshold deferring 20% of queries, a peak-survivable level).
	StaticThreshold float64
	// StaticDeferTarget sets the DiffServe-Static baseline's frozen
	// deferral fraction (default 0.55).
	StaticDeferTarget float64
	// MaxDeferFraction overrides the allocator's deferral cap.
	MaxDeferFraction float64
	// Seed overrides the env seed for arrival synthesis.
	Seed uint64
	// QueryIDBase offsets the query population.
	QueryIDBase int
	// DisableModelLoadDelay makes role switches instantaneous.
	DisableModelLoadDelay bool
	// EWMAAlpha overrides the controller's demand-smoothing factor.
	EWMAAlpha float64
}

func (o Options) withDefaults(e *Env, tr *trace.Trace) Options {
	if o.Workers <= 0 {
		o.Workers = 16
	}
	if o.SLO <= 0 {
		o.SLO = e.Spec.SLOSeconds
	}
	if o.PeakDemand <= 0 {
		o.PeakDemand = tr.PeakRate()
	}
	if o.StaticThreshold <= 0 {
		// The static-threshold ablation pins the threshold at a
		// peak-survivable deferral level (an operator would choose a
		// value the heavy pool can absorb at peak), so it gives up the
		// off-peak quality headroom DiffServe exploits (§4.5).
		o.StaticThreshold = e.Deferral.ThresholdForFraction(0.2)
	}
	if o.Seed == 0 {
		o.Seed = e.Seed + 17
	}
	return o
}

// allocConfig builds the shared allocator configuration.
func (e *Env) allocConfig(opt Options) allocator.Config {
	return allocator.Config{
		Light: e.Light, Heavy: e.Heavy,
		DiscPerImage:     e.Scorer.PerImageLatency(),
		Deferral:         e.Deferral,
		TotalWorkers:     opt.Workers,
		SLO:              opt.SLO,
		OverProvision:    opt.OverProvision,
		MaxDeferFraction: opt.MaxDeferFraction,
	}
}

// NewSystem builds a runnable system for the approach on the trace.
func (e *Env) NewSystem(app Approach, tr *trace.Trace, opt Options) (*system.System, error) {
	opt = opt.withDefaults(e, tr)

	var (
		alloc allocfn
		mode  loadbalancer.Mode
		aimd  bool
	)
	switch app {
	case ClipperLight:
		mode = loadbalancer.ModeAllLight
		alloc = func() (allocator.Allocator, error) {
			return allocator.NewClipper(e.Light, false, opt.Workers, opt.SLO)
		}
	case ClipperHeavy:
		mode = loadbalancer.ModeAllHeavy
		alloc = func() (allocator.Allocator, error) {
			return allocator.NewClipper(e.Heavy, true, opt.Workers, opt.SLO)
		}
	case Proteus:
		mode = loadbalancer.ModeRandomSplit
		alloc = func() (allocator.Allocator, error) {
			return allocator.NewProteus(e.allocConfig(opt))
		}
	case DiffServeStatic:
		mode = loadbalancer.ModeCascade
		alloc = func() (allocator.Allocator, error) {
			return allocator.NewDiffServeStatic(e.allocConfig(opt), opt.PeakDemand, opt.StaticDeferTarget)
		}
	case DiffServe:
		mode = loadbalancer.ModeCascade
		alloc = func() (allocator.Allocator, error) {
			return allocator.NewMILP(e.allocConfig(opt))
		}
	case DiffServeStaticThreshold:
		mode = loadbalancer.ModeCascade
		alloc = func() (allocator.Allocator, error) {
			cfg := e.allocConfig(opt)
			thr := opt.StaticThreshold
			cfg.FixedThreshold = &thr
			return allocator.NewMILP(cfg)
		}
	case DiffServeAIMD:
		mode = loadbalancer.ModeCascade
		aimd = true
		alloc = func() (allocator.Allocator, error) {
			return allocator.NewMILP(e.allocConfig(opt))
		}
	case DiffServeNoQueue:
		mode = loadbalancer.ModeCascade
		alloc = func() (allocator.Allocator, error) {
			cfg := e.allocConfig(opt)
			cfg.Queue = allocator.QueueModelTwiceExec
			return allocator.NewMILP(cfg)
		}
	default:
		return nil, fmt.Errorf("baselines: unknown approach %q", app)
	}

	a, err := alloc()
	if err != nil {
		return nil, err
	}
	ctrl, err := controller.New(controller.Config{
		Alloc:     a,
		Interval:  opt.ControlInterval,
		EWMAAlpha: opt.EWMAAlpha,
		AIMD:      aimd,
	})
	if err != nil {
		return nil, err
	}
	return system.New(system.Config{
		Space: e.Space, Light: e.Light, Heavy: e.Heavy, Scorer: e.Scorer,
		Workers: opt.Workers, SLO: opt.SLO,
		Trace: tr, Controller: ctrl, Mode: mode,
		Seed:                  opt.Seed,
		QueryIDBase:           opt.QueryIDBase,
		DisableModelLoadDelay: opt.DisableModelLoadDelay,
	})
}

type allocfn = func() (allocator.Allocator, error)
