package baselines

import (
	"math"
	"testing"

	"diffserve/internal/metrics"
	"diffserve/internal/stats"
	"diffserve/internal/trace"
)

// runApproach executes an approach on the given trace and returns its
// summary.
func runApproach(t testing.TB, env *Env, app Approach, tr *trace.Trace, opt Options) metrics.Summary {
	t.Helper()
	sys, err := env.NewSystem(app, tr, opt)
	if err != nil {
		t.Fatalf("%s: build: %v", app, err)
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatalf("%s: run: %v", app, err)
	}
	return res.Summary()
}

func azureTrace(t testing.TB) *trace.Trace {
	t.Helper()
	raw, err := trace.AzureLike(stats.NewRNG(2025), 360, 1)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := raw.ScaleTo(4, 32)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestFigure5Ordering is the headline end-to-end regression: on the
// Azure-shaped dynamic trace with 16 workers, the approaches must
// reproduce the paper's Fig 5/6 ordering.
func TestFigure5Ordering(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end comparison skipped in -short mode")
	}
	env, err := NewEnv("cascade1", 31337, 2000)
	if err != nil {
		t.Fatal(err)
	}
	tr := azureTrace(t)

	sums := map[Approach]metrics.Summary{}
	for _, app := range All() {
		sums[app] = runApproach(t, env, app, tr, Options{})
		s := sums[app]
		t.Logf("%-18s FID=%6.2f viol=%6.3f drop=%6.3f defer=%5.2f meanLat=%5.2fs queries=%d",
			app, s.FID, s.ViolationRatio, s.DropRatio, s.DeferRatio, s.MeanLatency, s.Queries)
	}

	cl, ch := sums[ClipperLight], sums[ClipperHeavy]
	pr, ds, dd := sums[Proteus], sums[DiffServeStatic], sums[DiffServe]

	// Clipper-Light: lowest violations, worst quality.
	if cl.ViolationRatio > 0.02 {
		t.Errorf("Clipper-Light violations = %.3f, want ~0", cl.ViolationRatio)
	}
	for _, other := range []metrics.Summary{ch, ds, dd} {
		if !(cl.FID > other.FID) {
			t.Errorf("Clipper-Light FID %.2f should be worse than %.2f", cl.FID, other.FID)
		}
	}
	// Clipper-Heavy: massive violations at peak.
	if ch.ViolationRatio < 0.30 {
		t.Errorf("Clipper-Heavy violations = %.3f, want >= 0.30", ch.ViolationRatio)
	}
	// Proteus: better FID than Clipper-Light but only modestly
	// (query-agnostic), with controlled violations.
	if !(pr.FID < cl.FID) {
		t.Errorf("Proteus FID %.2f should beat Clipper-Light %.2f", pr.FID, cl.FID)
	}
	if pr.ViolationRatio > 0.15 {
		t.Errorf("Proteus violations = %.3f, too high", pr.ViolationRatio)
	}
	// DiffServe: best FID of all approaches and low violations.
	for app, other := range map[Approach]metrics.Summary{
		ClipperLight: cl, ClipperHeavy: ch, Proteus: pr,
	} {
		if !(dd.FID < other.FID) {
			t.Errorf("DiffServe FID %.2f should beat %s %.2f", dd.FID, app, other.FID)
		}
	}
	if dd.ViolationRatio > 0.10 {
		t.Errorf("DiffServe violations = %.3f, want <= 0.10", dd.ViolationRatio)
	}
	// DiffServe must beat DiffServe-Static on violations (dynamic
	// adaptation during peak).
	if !(dd.ViolationRatio <= ds.ViolationRatio+0.02) {
		t.Errorf("DiffServe violations %.3f should not exceed static %.3f", dd.ViolationRatio, ds.ViolationRatio)
	}
}

func TestApproachesDeterministic(t *testing.T) {
	env, err := NewEnv("cascade1", 7, 500)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := trace.Static(8, 60, 1)
	if err != nil {
		t.Fatal(err)
	}
	a := runApproach(t, env, DiffServe, tr, Options{Workers: 8})
	env2, err := NewEnv("cascade1", 7, 500)
	if err != nil {
		t.Fatal(err)
	}
	b := runApproach(t, env2, DiffServe, tr, Options{Workers: 8})
	if a.Queries != b.Queries || a.ViolationRatio != b.ViolationRatio || math.Abs(a.FID-b.FID) > 1e-9 {
		t.Errorf("runs not deterministic: %+v vs %+v", a, b)
	}
}

func TestUnknownApproach(t *testing.T) {
	env, err := NewEnv("cascade1", 7, 200)
	if err != nil {
		t.Fatal(err)
	}
	tr, _ := trace.Static(4, 10, 1)
	if _, err := env.NewSystem("bogus", tr, Options{}); err == nil {
		t.Error("unknown approach should fail")
	}
}

func TestNewEnvUnknownCascade(t *testing.T) {
	if _, err := NewEnv("cascade9", 1, 100); err == nil {
		t.Error("unknown cascade should fail")
	}
}

func TestAllAndAblationsLists(t *testing.T) {
	if len(All()) != 5 {
		t.Errorf("All() = %d approaches, want 5", len(All()))
	}
	if len(Ablations()) != 4 {
		t.Errorf("Ablations() = %d, want 4", len(Ablations()))
	}
}
