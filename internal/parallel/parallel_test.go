package parallel

import (
	"errors"
	"sync/atomic"
	"testing"
)

func TestMapOrderingAndFastPath(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 64} {
		got, err := Map(workers, 37, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 37 {
			t.Fatalf("workers=%d: len %d", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
	if out, err := Map(4, 0, func(i int) (int, error) { return 0, nil }); err != nil || len(out) != 0 {
		t.Fatalf("empty map: %v %v", out, err)
	}
}

func TestMapErrorPropagation(t *testing.T) {
	wantErr := errors.New("boom")
	for _, workers := range []int{1, 4} {
		_, err := Map(workers, 10, func(i int) (int, error) {
			if i >= 3 {
				return 0, wantErr
			}
			return i, nil
		})
		if err != wantErr {
			t.Fatalf("workers=%d: err = %v, want %v", workers, err, wantErr)
		}
	}
}

func TestMapBoundsConcurrency(t *testing.T) {
	var inFlight, peak atomic.Int64
	_, err := Map(3, 64, func(i int) (int, error) {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		defer inFlight.Add(-1)
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if peak.Load() > 3 {
		t.Errorf("peak concurrency %d exceeds worker cap 3", peak.Load())
	}
}
