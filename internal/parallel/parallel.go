// Package parallel provides the bounded, deterministic fan-out helper
// shared by the experiment drivers and the cascade calibration
// sweeps: index-ordered results, fail-fast error propagation, and a
// worker pool capped by caller or CPU count.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Map runs fn for every index in [0, n) on up to `workers` goroutines
// (0 or negative means one per available CPU) and returns the results
// in index order.
//
// Independent simulation runs, sweep points, and cascade curves each
// own their seeded RNG streams and mutate no shared state (the
// imagespace generation cache is internally synchronized and
// value-deterministic), so fanning them out is bit-for-bit
// deterministic: the result slice is identical to a serial loop
// regardless of worker count or scheduling order. The first error
// encountered in index order is returned, mirroring a serial loop's
// fail-fast behavior.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			v, err := fn(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				// Fail fast: once any job has errored, in-flight jobs
				// finish but no new jobs start.
				if failed.Load() {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i], errs[i] = fn(i)
				if errs[i] != nil {
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
