package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// A Package is one loaded, type-checked package: the unit RunPackage
// analyzes.
type Package struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
}

// A Loader type-checks packages against compiler export data produced
// by `go list -export`, so loading needs no network and no external
// modules: in-module packages are parsed from source, while every
// dependency (stdlib included) is imported from its cached export
// file. One Loader shares a FileSet and an importer cache across all
// the packages it loads.
type Loader struct {
	// Dir is the directory `go list` runs in (anywhere inside the
	// module). Defaults to the current directory.
	Dir string

	fset    *token.FileSet
	exports map[string]string // import path -> export data file
	imp     types.ImporterFrom
}

// listedPkg is the subset of `go list -json` output the loader needs.
type listedPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load lists patterns (e.g. "./...") with export data and returns the
// matched packages parsed from source and type-checked. Dependencies
// are resolved from export data only, so each package loads
// independently of the others' source.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := l.list(append([]string{"-deps"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, p := range listed {
		if p.DepOnly || len(p.GoFiles) == 0 {
			continue
		}
		pkg, err := l.loadSource(p.ImportPath, p.Dir, p.GoFiles)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadDir parses and type-checks the .go files of one directory that
// is not necessarily part of a module (analysistest fixture packages).
// Imports must resolve through export data, so the harness first calls
// EnsureExports for everything the fixtures import.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range ents {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".go" {
			files = append(files, e.Name())
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no .go files in %s", dir)
	}
	return l.loadSource(filepath.Base(dir), dir, files)
}

// EnsureExports resolves export data for the given import paths (and
// their dependencies) so later LoadDir calls can import them.
func (l *Loader) EnsureExports(importPaths ...string) error {
	if len(importPaths) == 0 {
		return nil
	}
	_, err := l.list(append([]string{"-deps"}, importPaths...)...)
	return err
}

// list runs `go list -export -json` with the given arguments and folds
// the export files into the loader's map.
func (l *Loader) list(args ...string) ([]*listedPkg, error) {
	cmd := exec.Command("go", append([]string{
		"list", "-export", "-json=ImportPath,Dir,GoFiles,Export,DepOnly,Error",
	}, args...)...)
	cmd.Dir = l.Dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %v: %v\n%s", args, err, stderr.String())
	}
	if l.exports == nil {
		l.exports = map[string]string{}
	}
	var pkgs []*listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listedPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("analysis: go list %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			l.exports[p.ImportPath] = p.Export
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// Fset returns the loader's shared FileSet.
func (l *Loader) Fset() *token.FileSet {
	if l.fset == nil {
		l.fset = token.NewFileSet()
	}
	return l.fset
}

func (l *Loader) importer() types.ImporterFrom {
	if l.imp == nil {
		lookup := func(path string) (io.ReadCloser, error) {
			file, ok := l.exports[path]
			if !ok {
				return nil, fmt.Errorf("analysis: no export data for %q", path)
			}
			return os.Open(file)
		}
		l.imp = importer.ForCompiler(l.Fset(), "gc", lookup).(types.ImporterFrom)
	}
	return l.imp
}

// loadSource parses the named files in dir and type-checks them as one
// package.
func (l *Loader) loadSource(importPath, dir string, fileNames []string) (*Package, error) {
	fset := l.Fset()
	var files []*ast.File
	for _, name := range fileNames {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: parse %s: %v", name, err)
		}
		files = append(files, f)
	}
	return l.TypeCheck(importPath, dir, files)
}

// TypeCheck type-checks already-parsed files (from the loader's own
// FileSet) as the package at importPath. Exposed so tests can
// re-typecheck a package with a mutated file without reloading its
// dependencies.
func (l *Loader) TypeCheck(importPath, dir string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: l.importer()}
	tpkg, err := conf.Check(importPath, l.Fset(), files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: typecheck %s: %v", importPath, err)
	}
	var names []string
	for _, f := range files {
		names = append(names, filepath.Base(l.Fset().Position(f.Pos()).Filename))
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		GoFiles:    names,
		Fset:       l.Fset(),
		Files:      files,
		Types:      tpkg,
		TypesInfo:  info,
	}, nil
}
