package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// allowPrefix introduces an escape-hatch comment:
//
//	//diffvet:allow walltime — lease sweeps are wall-clock by design
//	//diffvet:allow walltime,globalrand — reason covering both
//
// The comment suppresses the named analyzers' diagnostics on its own
// line and, when it is a standalone comment line, on the line directly
// below it. The reason text after the analyzer list is mandatory.
const allowPrefix = "//diffvet:allow"

// an allowSet maps "file base offset-independent" (filename, line) to
// the analyzer names allowed there.
type allowSet map[allowKey]bool

type allowKey struct {
	file     string
	line     int
	analyzer string
}

func (s allowSet) suppresses(fset *token.FileSet, analyzer string, pos token.Pos) bool {
	if !pos.IsValid() {
		return false
	}
	p := fset.Position(pos)
	return s[allowKey{p.Filename, p.Line, analyzer}]
}

// collectAllows scans every comment in the files for allow directives.
// It returns the suppression set plus diagnostics for malformed
// directives (missing analyzer names or missing reason), attributed to
// the pseudo-analyzer "allow" so the escape hatch itself cannot rot.
func collectAllows(fset *token.FileSet, files []*ast.File) (allowSet, []Diagnostic) {
	set := allowSet{}
	var diags []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				rest := c.Text[len(allowPrefix):]
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //diffvet:allowx — not a directive
				}
				names, reason := splitAllow(rest)
				if len(names) == 0 {
					diags = append(diags, Diagnostic{
						Pos:      c.Pos(),
						Message:  "diffvet:allow directive names no analyzer",
						Analyzer: "allow",
					})
					continue
				}
				if reason == "" {
					diags = append(diags, Diagnostic{
						Pos:      c.Pos(),
						Message:  "diffvet:allow directive has no reason (write //diffvet:allow " + strings.Join(names, ",") + " — why the invariant does not apply here)",
						Analyzer: "allow",
					})
					continue
				}
				p := fset.Position(c.Pos())
				for _, name := range names {
					set[allowKey{p.Filename, p.Line, name}] = true
					// A standalone comment line also covers the line
					// below it, so directives can sit above long lines.
					if onOwnLine(fset, f, c) {
						set[allowKey{p.Filename, p.Line + 1, name}] = true
					}
				}
			}
		}
	}
	return set, diags
}

// splitAllow parses " walltime,globalrand — reason..." into the
// analyzer names and the reason text. Separators between the list and
// the reason may be an em dash, a hyphen, a colon, or just whitespace.
func splitAllow(rest string) (names []string, reason string) {
	// A nested comment marker ("// want ..." in fixtures, editor
	// annotations) is never part of the reason.
	if i := strings.Index(rest, "//"); i >= 0 {
		rest = rest[:i]
	}
	rest = strings.TrimSpace(rest)
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return nil, ""
	}
	for _, n := range strings.Split(fields[0], ",") {
		// "walltime:" style — the colon separator binds to the last name.
		n = strings.TrimRight(strings.TrimSpace(n), ":")
		if n != "" {
			names = append(names, n)
		}
	}
	reason = strings.TrimSpace(rest[len(fields[0]):])
	reason = strings.TrimLeft(reason, "—–:- \t")
	return names, strings.TrimSpace(reason)
}

// onOwnLine reports whether comment c is the only thing on its source
// line (i.e. not trailing code), in which case the allow also applies
// to the following line.
func onOwnLine(fset *token.FileSet, f *ast.File, c *ast.Comment) bool {
	cLine := fset.Position(c.Pos()).Line
	own := true
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || !own {
			return false
		}
		if _, isComment := n.(*ast.Comment); isComment {
			return false
		}
		if _, isGroup := n.(*ast.CommentGroup); isGroup {
			return false
		}
		// Any non-comment node that starts or ends on the comment's
		// line and sits before the comment means trailing-code style.
		if n.Pos().IsValid() && n.End() <= c.Pos() &&
			fset.Position(n.End()-1).Line == cLine {
			own = false
			return false
		}
		return true
	})
	return own
}
