// Package poolownership implements the diffvet analyzer that enforces
// the pooled-message ownership discipline from internal/cluster/pool.go.
//
// A value obtained from a typed sync.Pool acquire helper is owned by
// exactly one goroutine and must end its life in exactly one of two
// ways: a release call (ReleaseMessage, putFrame, ... — any function
// that Puts into a sync.Pool) or an ownership handoff (returned,
// passed to another function, stored, or sent). Violating either
// direction corrupts the next decode silently: a use after release
// scribbles on storage the pool may already have handed to another
// goroutine, and an acquire that neither releases nor hands off leaks
// warm buffers until the pool refills them cold.
//
// The analyzer needs no configuration: it classifies package
// functions by body — a function whose body calls (*sync.Pool).Get
// and returns a result is an acquire helper; one whose body calls
// (*sync.Pool).Put is a release helper — and then checks every
// function in the package:
//
//   - use-after-release: after a non-deferred release of a variable,
//     any sequentially-reachable use of that variable in the same
//     function is reported (sibling branches and releases followed by
//     return/break/continue are understood to end the path; an
//     intervening reassignment starts a fresh value and clears the
//     taint).
//   - leaked acquire: a variable bound directly from an acquire
//     helper must be released, deferred-released, or handed off
//     (returned, passed as a call argument, assigned away, stored in
//     a composite, or sent on a channel) somewhere in the function.
//
// The checks are function-local and name-based by design: the wire
// path's handlers acquire and release within one frame dispatch, so
// the realistic bug shapes — releasing and then touching the message,
// or forgetting the release entirely — are all local.
package poolownership

import (
	"go/ast"
	"go/token"
	"go/types"

	"diffserve/internal/analysis"
)

// Analyzer is the instance cmd/diffvet runs. It self-scopes: packages
// with no sync.Pool helpers produce no work.
var Analyzer = &analysis.Analyzer{
	Name: "poolownership",
	Doc: "enforce pooled-message ownership: no use after ReleaseMessage/put-helper calls, " +
		"and every pool acquire must be released or handed off",
	Run: run,
}

func run(pass *analysis.Pass) error {
	acquires, releases := classifyHelpers(pass)
	if len(releases) == 0 && len(acquires) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Body != nil {
				checkFunc(pass, fd, acquires, releases)
			}
		}
	}
	return nil
}

// classifyHelpers splits the package's functions into acquire helpers
// (body calls (*sync.Pool).Get and the function returns something) and
// release helpers (body calls (*sync.Pool).Put).
func classifyHelpers(pass *analysis.Pass) (acquires, releases map[types.Object]bool) {
	acquires = map[types.Object]bool{}
	releases = map[types.Object]bool{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj := pass.TypesInfo.Defs[fd.Name]
			if obj == nil {
				continue
			}
			gets, puts := false, false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				switch poolMethod(pass, call) {
				case "Get":
					gets = true
				case "Put":
					puts = true
				}
				return true
			})
			if gets && fd.Type.Results != nil && len(fd.Type.Results.List) > 0 {
				acquires[obj] = true
			}
			if puts {
				releases[obj] = true
			}
		}
	}
	return acquires, releases
}

// poolMethod reports whether call is a method call on sync.Pool and
// returns the method name ("Get", "Put", or "").
func poolMethod(pass *analysis.Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return ""
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return ""
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	if named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == "Pool" {
		return fn.Name()
	}
	return ""
}

// releaseEvent is one release call inside the function under check.
type releaseEvent struct {
	call     *ast.CallExpr
	obj      types.Object // the released variable
	deferred bool
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, acquires, releases map[types.Object]bool) {
	info := pass.TypesInfo

	// calledHelper resolves a call to a package-level helper object.
	calledHelper := func(call *ast.CallExpr) types.Object {
		id, ok := call.Fun.(*ast.Ident)
		if !ok {
			return nil
		}
		return info.Uses[id]
	}
	// releasedVar returns the variable object a release call frees: the
	// single bare-identifier argument of a release helper or a
	// (*sync.Pool).Put call.
	releasedVar := func(call *ast.CallExpr) types.Object {
		isRelease := releases[calledHelper(call)] || poolMethod(pass, call) == "Put"
		if !isRelease {
			return nil
		}
		for _, arg := range call.Args {
			if id, ok := arg.(*ast.Ident); ok {
				if v, ok := info.Uses[id].(*types.Var); ok {
					return v
				}
			}
		}
		return nil
	}

	// Pass 1: collect events — acquires bound to variables, releases,
	// handoffs, and kills (reassignments).
	type acquireEvent struct {
		pos token.Pos
		obj types.Object
	}
	var acquired []acquireEvent
	var released []releaseEvent
	handedOff := map[types.Object]bool{}
	var kills []struct {
		pos token.Pos
		obj types.Object
	}

	markHandoffIdents := func(e ast.Expr) {
		if id, ok := e.(*ast.Ident); ok {
			if v, ok := info.Uses[id].(*types.Var); ok {
				handedOff[v] = true
			}
		}
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			if obj := releasedVar(n.Call); obj != nil {
				released = append(released, releaseEvent{call: n.Call, obj: obj, deferred: true})
				return false // don't double-count via the CallExpr case
			}
		case *ast.CallExpr:
			if obj := releasedVar(n); obj != nil {
				released = append(released, releaseEvent{call: n, obj: obj})
				return true
			}
			// Bare-identifier arguments to any non-release call are
			// ownership handoffs.
			for _, arg := range n.Args {
				markHandoffIdents(arg)
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				markHandoffIdents(r)
			}
		case *ast.SendStmt:
			markHandoffIdents(n.Value)
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				markHandoffIdents(el)
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					markHandoffIdents(kv.Value)
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					var obj types.Object
					if n.Tok == token.DEFINE {
						obj = info.Defs[id]
					} else {
						obj = info.Uses[id]
					}
					if obj != nil {
						kills = append(kills, struct {
							pos token.Pos
							obj types.Object
						}{id.Pos(), obj})
					}
				}
			}
			// RHS identifiers assigned somewhere else are handoffs
			// (aliasing: we can no longer track the value's lifetime) —
			// unless the RHS is the acquire call itself.
			if len(n.Lhs) == 1 && len(n.Rhs) == 1 {
				if call, ok := n.Rhs[0].(*ast.CallExpr); ok && acquires[calledHelper(call)] {
					if id, ok := n.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
						var obj types.Object
						if n.Tok == token.DEFINE {
							obj = info.Defs[id]
						} else {
							obj = info.Uses[id]
						}
						if obj != nil {
							acquired = append(acquired, acquireEvent{id.Pos(), obj})
						}
					}
					return true
				}
			}
			for _, rhs := range n.Rhs {
				markHandoffIdents(rhs)
			}
		}
		return true
	})

	// Leaked acquires: no release and no handoff anywhere in the
	// function.
	for _, a := range acquired {
		ok := handedOff[a.obj]
		for _, r := range released {
			if r.obj == a.obj {
				ok = true
			}
		}
		if !ok {
			pass.Reportf(a.pos,
				"%s acquired from a pool but never released or handed off: call the matching release helper (or hand ownership to another function)",
				a.obj.Name())
		}
	}

	// Use-after-release: poison sequentially-reachable statements after
	// each non-deferred release and flag uses of the released variable.
	for _, r := range released {
		if r.deferred {
			continue
		}
		poison := poisonRanges(fd.Body, r.call)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || info.Uses[id] != r.obj {
				return true
			}
			if id.Pos() <= r.call.End() {
				return true
			}
			if !inRanges(poison, id.Pos()) {
				return true
			}
			// A reassignment between release and use starts a fresh
			// value: the taint does not survive it. (The kill itself is
			// an LHS identifier — skip flagging it, too.)
			for _, k := range kills {
				if k.obj == r.obj && k.pos > r.call.End() && k.pos <= id.Pos() {
					return true
				}
			}
			pass.Reportf(id.Pos(),
				"use of %s after it was released to the pool at line %d: released storage may already back another goroutine's decode",
				id.Name, pass.Fset.Position(r.call.Pos()).Line)
			return true
		})
	}
}

// poisonRanges computes the position ranges sequentially reachable
// after a release call: the statements following the release in its
// innermost statement list, propagated outward through enclosing
// lists until a list terminates the path (return, branch, or panic at
// or after the release). Sibling branches of an if/switch never make
// it into the ranges, so path-exclusive uses are not flagged.
func poisonRanges(body *ast.BlockStmt, call *ast.CallExpr) []posRange {
	path := pathTo(body, call) // outermost ... innermost
	var out []posRange
	for i := len(path) - 1; i >= 0; i-- {
		var list []ast.Stmt
		switch n := path[i].(type) {
		case *ast.BlockStmt:
			list = n.List
		case *ast.CaseClause:
			list = n.Body
		case *ast.CommClause:
			list = n.Body
		default:
			continue
		}
		// The path node one step inward is (or is inside) a statement
		// of this list.
		idx := -1
		for j, s := range list {
			if i+1 < len(path) && s == path[i+1] {
				idx = j
				break
			}
		}
		if idx == -1 {
			continue
		}
		for _, s := range list[idx+1:] {
			out = append(out, posRange{s.Pos(), s.End()})
		}
		if terminates(list[idx:]) {
			return out
		}
	}
	return out
}

type posRange struct{ lo, hi token.Pos }

func inRanges(rs []posRange, p token.Pos) bool {
	for _, r := range rs {
		if p >= r.lo && p <= r.hi {
			return true
		}
	}
	return false
}

// pathTo returns the ancestor chain from root down to target
// (inclusive), or nil if target is not under root.
func pathTo(root, target ast.Node) []ast.Node {
	var stack, path []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		if n == target && path == nil {
			path = append([]ast.Node{}, stack...)
		}
		return path == nil
	})
	return path
}

// terminates reports whether the statement suffix unconditionally
// leaves the enclosing list: a return, a branch statement, or a call
// to panic at the top level of the suffix.
func terminates(suffix []ast.Stmt) bool {
	for _, s := range suffix {
		switch s := s.(type) {
		case *ast.ReturnStmt, *ast.BranchStmt:
			return true
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
					return true
				}
			}
		}
	}
	return false
}
