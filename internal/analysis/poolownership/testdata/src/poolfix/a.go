// Package poolfix exercises the poolownership analyzer against a
// miniature of internal/cluster/pool.go: a typed sync.Pool, an
// acquire helper, a release helper, and the ownership bug shapes the
// analyzer guards against.
package poolfix

import "sync"

type Msg struct{ Data []float64 }

var msgPool = sync.Pool{New: func() interface{} { return new(Msg) }}

// getMsg is classified as an acquire helper (body calls Pool.Get and
// returns a result).
func getMsg() *Msg { return msgPool.Get().(*Msg) }

// release is classified as a release helper (body calls Pool.Put).
func release(v interface{}) {
	if m, ok := v.(*Msg); ok {
		m.Data = m.Data[:0]
		msgPool.Put(m)
	}
}

func useAfterRelease() float64 {
	m := getMsg()
	m.Data = append(m.Data, 1)
	release(m)
	return m.Data[0] // want `use of m after it was released to the pool`
}

func useAfterDirectPut() {
	m := getMsg()
	msgPool.Put(m)
	m.Data = nil // want `use of m after it was released to the pool`
}

func leaks() {
	m := getMsg() // want `m acquired from a pool but never released or handed off`
	m.Data = append(m.Data, 2)
}

func cleanRoundTrip() {
	m := getMsg()
	m.Data = append(m.Data, 3)
	release(m)
}

func cleanDefer() {
	m := getMsg()
	defer release(m)
	m.Data = append(m.Data, 4) // deferred release runs at exit: no poison
}

func cleanHandoffReturn() *Msg {
	m := getMsg()
	return m // ownership moves to the caller
}

func cleanHandoffCall() {
	m := getMsg()
	consume(m) // ownership moves to the callee
}

func consume(m *Msg) {
	defer release(m)
	m.Data = append(m.Data, 5)
}

func cleanSiblingBranch(b bool) {
	m := getMsg()
	if b {
		release(m)
		return
	}
	m.Data = append(m.Data, 6) // the release path returned: not poisoned
	release(m)
}

func cleanReacquire() {
	m := getMsg()
	release(m)
	m = getMsg()
	m.Data = append(m.Data, 7) // fresh value: taint does not survive reassignment
	release(m)
}

func allowedUseAfterRelease() {
	m := getMsg()
	release(m)
	//diffvet:allow poolownership — fixture: demonstrating the escape hatch
	m.Data = nil
}

func poisonedBranchStillCaught(b bool) {
	m := getMsg()
	if b {
		release(m) // conditional release does not end the path ...
	}
	m.Data = nil // want `use of m after it was released to the pool`
}
