// Package poolclean exercises the sanctioned pooled-message patterns —
// acquire/use/release, deferred release, and handoff — and must
// produce no diagnostics.
package poolclean

import "sync"

type Msg struct {
	ID int
}

var msgPool = sync.Pool{New: func() interface{} { return new(Msg) }}

func getMsg() *Msg     { return msgPool.Get().(*Msg) }
func release(m *Msg)   { m.ID = 0; msgPool.Put(m) }
func consume(m *Msg)   { _ = m.ID }
func transform(id int) {}

func roundTrip() int {
	m := getMsg()
	m.ID = 7
	id := m.ID
	release(m)
	transform(id)
	return id
}

func deferred() int {
	m := getMsg()
	defer release(m)
	m.ID = 9
	return m.ID
}

func handoff() *Msg {
	m := getMsg()
	m.ID = 11
	return m
}

func handoffByCall() {
	m := getMsg()
	consume(m)
}
