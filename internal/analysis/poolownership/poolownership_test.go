package poolownership

import (
	"testing"

	"diffserve/internal/analysis/analysistest"
)

// TestPoolOwnership checks the ownership bug shapes against the
// poolfix fixture: use-after-release (via helper and direct Put),
// leaked acquires, and the clean patterns — round trip, deferred
// release, handoff by return or call, sibling branches, reassignment,
// and the allow escape.
func TestPoolOwnership(t *testing.T) {
	analysistest.Run(t, ".", Analyzer, "poolfix")
}

// TestPoolOwnershipClean checks the analyzer stays silent on a package
// that only uses the sanctioned acquire/use/release patterns.
func TestPoolOwnershipClean(t *testing.T) {
	diags := analysistest.Run(t, ".", Analyzer, "poolclean")
	if n := len(diags["poolclean"]); n != 0 {
		t.Fatalf("poolclean: want 0 diagnostics, got %d", n)
	}
}
