package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parseOne(t *testing.T, src string) (*token.FileSet, *ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fix.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, f
}

func TestSplitAllow(t *testing.T) {
	cases := []struct {
		rest   string
		names  []string
		reason string
	}{
		{" walltime — lease sweeps are wall-clock", []string{"walltime"}, "lease sweeps are wall-clock"},
		{" walltime,globalrand - shared reason", []string{"walltime", "globalrand"}, "shared reason"},
		{" walltime: colon separator", []string{"walltime"}, "colon separator"},
		{" walltime just whitespace", []string{"walltime"}, "just whitespace"},
		{" walltime", []string{"walltime"}, ""},
		{"", nil, ""},
		{" walltime — real reason // want `ignored`", []string{"walltime"}, "real reason"},
	}
	for _, c := range cases {
		names, reason := splitAllow(c.rest)
		if strings.Join(names, "|") != strings.Join(c.names, "|") || reason != c.reason {
			t.Errorf("splitAllow(%q) = %v, %q; want %v, %q", c.rest, names, reason, c.names, c.reason)
		}
	}
}

// TestAllowFiltering drives RunPackage with a fake analyzer and checks
// that same-line and line-above directives suppress, that directives
// for a different analyzer do not, and that malformed directives are
// reported by the pseudo-analyzer "allow".
func TestAllowFiltering(t *testing.T) {
	src := `package fix

func a() {} //diffvet:allow fake — trailing escape

//diffvet:allow fake — standalone escape covers next line
func b() {}

func c() {} //diffvet:allow other — different analyzer

func d() {} //diffvet:allow fake

func e() {}
`
	fset, f := parseOne(t, src)
	pkg := &Package{ImportPath: "fix", Fset: fset, Files: []*ast.File{f}}

	fake := &Analyzer{
		Name: "fake",
		Doc:  "reports every function declaration",
		Run: func(pass *Pass) error {
			for _, d := range pass.Files[0].Decls {
				if fd, ok := d.(*ast.FuncDecl); ok {
					pass.Reportf(fd.Pos(), "func %s flagged", fd.Name.Name)
				}
			}
			return nil
		},
	}
	diags, err := RunPackage(pkg, []*Analyzer{fake})
	if err != nil {
		t.Fatal(err)
	}

	var got []string
	for _, d := range diags {
		got = append(got, d.Analyzer+": "+d.Message)
	}
	want := []string{
		"fake: func c flagged",
		"fake: func d flagged", // reasonless directive must not suppress
		"allow: diffvet:allow directive has no reason (write //diffvet:allow fake — why the invariant does not apply here)",
		"fake: func e flagged",
	}
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Errorf("diagnostics:\n%s\nwant:\n%s", strings.Join(got, "\n"), strings.Join(want, "\n"))
	}
}

// TestAllowNamesNoAnalyzer checks the other malformed shape.
func TestAllowNamesNoAnalyzer(t *testing.T) {
	src := "package fix\n\n//diffvet:allow\nfunc a() {}\n"
	fset, f := parseOne(t, src)
	allows, diags := collectAllows(fset, []*ast.File{f})
	if len(allows) != 0 {
		t.Errorf("nameless directive produced suppressions: %v", allows)
	}
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "names no analyzer") {
		t.Errorf("diags = %v, want one names-no-analyzer finding", diags)
	}
}

// TestLoaderLoadsModulePackage checks the export-data loading path end
// to end on a real in-module package with both stdlib and in-module
// dependencies.
func TestLoaderLoadsModulePackage(t *testing.T) {
	loader := &Loader{Dir: "."}
	pkgs, err := loader.Load("diffserve/internal/analysis/...")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) < 5 {
		t.Fatalf("Load returned %d packages, want the framework plus four analyzers", len(pkgs))
	}
	for _, p := range pkgs {
		if p.Types == nil || p.TypesInfo == nil {
			t.Errorf("%s: missing type information", p.ImportPath)
		}
		if len(p.Files) == 0 {
			t.Errorf("%s: no parsed files", p.ImportPath)
		}
	}
}
