// Package walltime_trace is a walltime fixture standing in for a
// trace-time package: the test scopes the analyzer to this import
// path, so wall-clock reads and sleeps must be flagged while timer
// plumbing fed computed durations stays legal.
package walltime_trace

import (
	"context"
	"time"
)

func bad() {
	_ = time.Now()                 // want `wall-clock time\.Now in trace-time package`
	time.Sleep(time.Millisecond)   // want `wall-clock time\.Sleep`
	<-time.After(time.Millisecond) // want `wall-clock time\.After`
	<-time.Tick(time.Millisecond)  // want `wall-clock time\.Tick`
	_ = time.Since(time.Time{})    // want `wall-clock time\.Since`
	_ = time.Until(time.Time{})    // want `wall-clock time\.Until`
}

func allowedAbove() {
	//diffvet:allow walltime — fixture: deliberate wall-clock read
	_ = time.Now()
}

func allowedTrailing() {
	time.Sleep(0) //diffvet:allow walltime — fixture: deliberate wall sleep
}

func missingReason() {
	//diffvet:allow walltime // want `diffvet:allow directive has no reason`
	_ = time.Now() // want `wall-clock time\.Now`
}

func missingName() {
	//diffvet:allow // want `diffvet:allow directive names no analyzer`
	_ = 1
}

func wrongAnalyzerAllowed() {
	//diffvet:allow globalrand — fixture: names a different analyzer, so walltime still fires
	_ = time.Now() // want `wall-clock time\.Now`
}

func legalTimerPlumbing(ctx context.Context, wall time.Duration) bool {
	t := time.NewTimer(wall) // timers fed pre-computed wall durations are the Clock's job to build
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
