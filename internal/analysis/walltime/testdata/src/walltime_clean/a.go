// Package walltime_clean is a fixture whose import path is NOT in the
// analyzer's trace-time package list: wall-clock use here is legal, so
// the analyzer must stay silent.
package walltime_clean

import "time"

func wallClockIsFineHere() time.Time {
	time.Sleep(0)
	return time.Now()
}
