package walltime

import (
	"testing"

	"diffserve/internal/analysis/analysistest"
)

// TestWalltimeTracePackage runs the analyzer scoped to the fixture
// package and checks every forbidden call is flagged, the allow
// escapes (same-line and line-above) suppress, malformed allows are
// themselves reported, and timer plumbing stays legal.
func TestWalltimeTracePackage(t *testing.T) {
	analysistest.Run(t, ".", New("walltime_trace"), "walltime_trace")
}

// TestWalltimeOutOfScopePackage: a package not in the trace-time list
// may use the wall clock freely.
func TestWalltimeOutOfScopePackage(t *testing.T) {
	diags := analysistest.Run(t, ".", New("walltime_trace"), "walltime_clean")
	if n := len(diags["walltime_clean"]); n != 0 {
		t.Fatalf("out-of-scope package produced %d diagnostics, want 0", n)
	}
}

// TestTracePackagesPinned pins the module's authoritative trace-time
// list: shrinking it silently un-guards a package.
func TestTracePackagesPinned(t *testing.T) {
	want := map[string]bool{
		"diffserve/internal/cluster":  true,
		"diffserve/internal/simring":  true,
		"diffserve/internal/queueing": true,
		"diffserve/internal/system":   true,
	}
	if len(TracePackages) != len(want) {
		t.Fatalf("TracePackages = %v, want the 4 trace-time packages", TracePackages)
	}
	for _, p := range TracePackages {
		if !want[p] {
			t.Fatalf("unexpected trace package %q", p)
		}
	}
}
