// Package walltime implements the diffvet analyzer that keeps
// trace-time packages off the wall clock.
//
// The simulator, the queueing model, and the cluster runtime all
// reason in trace seconds, converted to wall time in exactly one
// place: cluster.Clock. A stray time.Now or time.Sleep in those
// packages silently couples trace math to the host's wall clock and
// breaks both timescale replay (a six-minute trace replayed at 50x)
// and sim-vs-cluster parity. The analyzer forbids the time functions
// that read or wait on the wall clock — Now, Sleep, After, Tick,
// Since, Until — in the configured trace-time packages. Deliberate
// wall-clock spots (the Clock implementation itself, long-poll wall
// deadlines, TCP dial timeouts) carry //diffvet:allow walltime
// escapes with a reason.
//
// Duration arithmetic (time.Duration, time.NewTimer fed from
// Clock.WallDuration, time.Millisecond literals) stays legal: only
// reading the clock or sleeping against it is the invariant.
package walltime

import (
	"go/ast"
	"go/types"
	"strings"

	"diffserve/internal/analysis"
)

// forbidden lists the package-level time functions that read or block
// on the wall clock.
var forbidden = map[string]bool{
	"Now":   true,
	"Sleep": true,
	"After": true,
	"Tick":  true,
	"Since": true,
	"Until": true,
}

// TracePackages are the import paths (matched exactly, or as a
// "/..."-style prefix) that must go through cluster.Clock for all
// time. This is the module's authoritative list; New lets tests build
// an analyzer scoped to fixture packages instead.
var TracePackages = []string{
	"diffserve/internal/cluster",
	"diffserve/internal/simring",
	"diffserve/internal/queueing",
	"diffserve/internal/system",
}

// Analyzer is the module-scoped instance cmd/diffvet runs.
var Analyzer = New(TracePackages...)

// New builds a walltime analyzer scoped to the given package paths.
func New(tracePkgs ...string) *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: "walltime",
		Doc: "forbid wall-clock time (time.Now/Sleep/After/Tick/Since/Until) in trace-time packages, " +
			"which must convert trace seconds through cluster.Clock",
		Run: func(pass *analysis.Pass) error {
			return run(pass, tracePkgs)
		},
	}
}

func applies(path string, tracePkgs []string) bool {
	for _, p := range tracePkgs {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass, tracePkgs []string) error {
	if !applies(pass.Pkg.Path(), tracePkgs) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj, ok := pass.TypesInfo.Uses[sel.Sel]
			if !ok {
				return true
			}
			fn, ok := obj.(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return true
			}
			if fn.Type().(*types.Signature).Recv() != nil {
				return true // methods on Timer/Ticker/Time are fine
			}
			if forbidden[fn.Name()] {
				pass.Reportf(sel.Pos(),
					"wall-clock time.%s in trace-time package %s: use the shared Clock (or annotate with //diffvet:allow walltime — reason)",
					fn.Name(), pass.Pkg.Path())
			}
			return true
		})
	}
	return nil
}
