// Package analysis is a self-contained static-analysis framework
// mirroring the shape of golang.org/x/tools/go/analysis, built only on
// the standard library so the repo's analyzers run without network
// access or external modules. Analyzers receive a type-checked package
// (AST + go/types info) and report diagnostics; the driver
// (cmd/diffvet) loads every package in the module, runs the registered
// analyzers, and fails the build on any finding.
//
// Suppression works through allow comments (see allow.go): a line
// carrying, or immediately preceded by,
//
//	//diffvet:allow <analyzer>[,<analyzer>...] — <reason>
//
// is exempt from those analyzers' diagnostics. The reason is
// mandatory: an allow comment without one is itself reported, so every
// escape hatch in the tree documents why the invariant does not apply.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer describes one invariant check. It is the unit the driver
// and the analysistest harness both run.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //diffvet:allow comments. Lowercase, no spaces.
	Name string
	// Doc is the one-paragraph description shown by cmd/diffvet -list.
	Doc string
	// Run inspects the package and reports diagnostics through
	// pass.Report. The returned error aborts the whole run (reserved
	// for internal analyzer failures, not findings).
	Run func(pass *Pass) error
}

// A Pass carries one type-checked package to one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report records a diagnostic. The framework applies allow-comment
	// filtering afterwards, so analyzers never need to check for
	// escapes themselves.
	Report func(Diagnostic)
}

// Reportf formats and reports a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding, positioned in the analyzed package.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string // filled in by RunPackage
}

// RunPackage runs the analyzers over pkg and returns the surviving
// diagnostics, sorted by position: allow-comment-suppressed findings
// are dropped, and malformed allow comments (no analyzer name, or no
// reason) are reported as findings of the pseudo-analyzer "allow".
func RunPackage(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	allows, allowDiags := collectAllows(pkg.Fset, pkg.Files)
	var out []Diagnostic
	out = append(out, allowDiags...)
	for _, a := range analyzers {
		var diags []Diagnostic
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			Report:    func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.ImportPath, err)
		}
		for _, d := range diags {
			d.Analyzer = a.Name
			if !allows.suppresses(pkg.Fset, a.Name, d.Pos) {
				out = append(out, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos != out[j].Pos {
			return out[i].Pos < out[j].Pos
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}
