// Package globalrand implements the diffvet analyzer that bans the
// global math/rand source.
//
// Every random draw in the simulator, the experiment harness, and the
// cluster runtime must come from a seeded per-component stream
// (stats.StreamRNG and friends): the global source is seeded once per
// process, shared across goroutines, and advanced by whoever calls it
// first, so one call to rand.Float64 in a hot path silently breaks
// run-to-run determinism and sim-vs-cluster parity. The analyzer
// forbids references to math/rand's package-level drawing functions —
// rand.New(rand.NewSource(seed)) and methods on a *rand.Rand remain
// the approved path.
package globalrand

import (
	"go/ast"
	"go/types"

	"diffserve/internal/analysis"
)

// forbidden lists the math/rand package-level functions backed by the
// shared global source. Constructors (New, NewSource, NewZipf) are the
// approved seeded path and stay legal.
var forbidden = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true, "Seed": true,
	// math/rand/v2 additions, should the module migrate.
	"N": true, "IntN": true, "Int32": true, "Int32N": true, "Int64N": true,
	"Uint32N": true, "Uint64N": true, "UintN": true, "Uint": true,
}

// randPkgs are the import paths whose package-level functions draw
// from a process-global source.
var randPkgs = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
}

// Analyzer is the module-wide instance cmd/diffvet runs: determinism
// is an invariant everywhere, so no package list scopes it.
var Analyzer = &analysis.Analyzer{
	Name: "globalrand",
	Doc: "forbid the global math/rand source (rand.Intn, rand.Float64, ...): randomness must flow " +
		"from seeded per-component streams or determinism and sim-vs-cluster parity break",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj, ok := pass.TypesInfo.Uses[sel.Sel]
			if !ok {
				return true
			}
			fn, ok := obj.(*types.Func)
			if !ok || fn.Pkg() == nil || !randPkgs[fn.Pkg().Path()] {
				return true
			}
			if fn.Type().(*types.Signature).Recv() != nil {
				return true // *rand.Rand methods are the approved path
			}
			if forbidden[fn.Name()] {
				pass.Reportf(sel.Pos(),
					"global %s.%s draws from the process-wide source: use a seeded per-component *rand.Rand (rand.New(rand.NewSource(seed)))",
					fn.Pkg().Name(), fn.Name())
			}
			return true
		})
	}
	return nil
}
