package globalrand

import (
	"testing"

	"diffserve/internal/analysis/analysistest"
)

// TestGlobalRand checks that global-source draws are flagged, the
// seeded rand.New(rand.NewSource(seed)) path and *rand.Rand methods
// stay legal, and the allow escape suppresses.
func TestGlobalRand(t *testing.T) {
	analysistest.Run(t, ".", Analyzer, "globalrand_fix")
}

// TestGlobalRandClean checks the analyzer stays silent on a package
// that only uses seeded per-component streams.
func TestGlobalRandClean(t *testing.T) {
	diags := analysistest.Run(t, ".", Analyzer, "globalrand_clean")
	if n := len(diags["globalrand_clean"]); n != 0 {
		t.Fatalf("globalrand_clean: want 0 diagnostics, got %d", n)
	}
}
