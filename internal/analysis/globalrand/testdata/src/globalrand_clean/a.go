// Package globalrand_clean uses math/rand the sanctioned way — seeded
// per-component streams — and must produce no diagnostics.
package globalrand_clean

import "math/rand"

type component struct {
	rng *rand.Rand
}

func newComponent(seed int64) *component {
	return &component{rng: rand.New(rand.NewSource(seed))}
}

func (c *component) draw() float64 {
	if c.rng.Intn(2) == 0 {
		return c.rng.Float64()
	}
	return c.rng.NormFloat64()
}

func (c *component) shuffle(xs []int) {
	c.rng.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}
