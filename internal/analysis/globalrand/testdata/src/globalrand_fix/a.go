// Package globalrand_fix exercises the globalrand analyzer: draws
// from the process-global math/rand source are flagged; seeded
// per-component streams and the constructors that build them stay
// legal.
package globalrand_fix

import "math/rand"

func bad() int {
	rand.Seed(42)                      // want `global rand\.Seed`
	x := rand.Intn(10)                 // want `global rand\.Intn`
	_ = rand.Float64()                 // want `global rand\.Float64`
	_ = rand.Perm(4)                   // want `global rand\.Perm`
	_ = rand.NormFloat64()             // want `global rand\.NormFloat64`
	rand.Shuffle(2, func(int, int) {}) // want `global rand\.Shuffle`
	return x
}

func seededStream(seed int64) float64 {
	r := rand.New(rand.NewSource(seed)) // constructors are the approved path
	return r.Float64()                  // methods on a seeded *rand.Rand are fine
}

func seededZipf(seed int64) uint64 {
	r := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(r, 1.5, 1, 100)
	return z.Uint64()
}

func allowedEscape() int {
	//diffvet:allow globalrand — fixture: demonstrating the escape hatch
	return rand.Intn(3)
}
