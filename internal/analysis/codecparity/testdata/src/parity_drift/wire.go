// Package parity_drift is the codecparity drift fixture: a copy of a
// real wire struct (cluster.PullRequest) with a freshly added field
// the codec was never taught about — the exact bug shape the analyzer
// exists to catch before a fuzzer has to — plus the tag-level parity
// breaks (json:"-", missing tag, unexported field) and a struct whose
// encode and decode sides drifted apart.
package parity_drift

// PullRequest copies the real wire struct; Priority is the
// deliberately added, never-encoded field.
type PullRequest struct {
	WorkerID int     `json:"worker_id"`
	Role     string  `json:"role"`
	Max      int     `json:"max"`
	Wait     float64 `json:"wait,omitempty"`
	Drain    bool    `json:"drain,omitempty"`
	Priority int     `json:"priority,omitempty"` // want `never read by the binary codec` // want `never written by the binary decode path`
	Legacy   int     `json:"-"`                  // want `tagged json:"-"`
	NoTag    int     // want `has no json tag`
	hidden   int     // want `unexported field`
}

// HalfCoded drifted: B is encoded but never decoded, C decoded but
// never encoded.
type HalfCoded struct {
	A int `json:"a"`
	B int `json:"b"` // want `never written by the binary decode path`
	C int `json:"c"` // want `never read by the binary codec`
	//diffvet:allow codecparity — json-only debug field, intentionally absent from the binary codec
	Spare int `json:"spare"`
}

// ReuseOnly's Xs is decoded with the capacity-reuse pattern
// (m.Xs = fill(m.Xs[:0], ...)) but never encoded: the self-reuse read
// on the decode line must not count as encode-side coverage.
type ReuseOnly struct {
	Xs []int `json:"xs"` // want `never read by the binary codec`
}

// touch keeps the unexported field referenced so the fixture
// type-checks without an unused-field warning from vet-style tools.
func (p *PullRequest) touch() int { return p.hidden }
