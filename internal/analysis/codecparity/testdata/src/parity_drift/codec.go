package parity_drift

import (
	"encoding/binary"
	"math"
)

// sizeHint mirrors cluster's binarySizeHint: reads here must NOT count
// as encode-side coverage (the analyzer ignores this function), so the
// fixture reads Priority and proves the exclusion works.
func binarySizeHint(m *PullRequest) int {
	return 40 + m.Priority
}

func appendPullRequest(b []byte, m *PullRequest) []byte {
	b = binary.AppendVarint(b, int64(m.WorkerID))
	b = binary.AppendUvarint(b, uint64(len(m.Role)))
	b = append(b, m.Role...)
	b = binary.AppendVarint(b, int64(m.Max))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(m.Wait))
	if m.Drain {
		return append(b, 1)
	}
	return append(b, 0)
}

func readPullRequest(data []byte, m *PullRequest) {
	id, n := binary.Varint(data)
	m.WorkerID = int(id)
	data = data[n:]
	rl, n := binary.Uvarint(data)
	data = data[n:]
	m.Role = string(data[:rl])
	data = data[rl:]
	mx, n := binary.Varint(data)
	m.Max = int(mx)
	data = data[n:]
	m.Wait = math.Float64frombits(binary.LittleEndian.Uint64(data))
	m.Drain = data[8] != 0
}

func appendHalfCoded(b []byte, m *HalfCoded) []byte {
	b = binary.AppendVarint(b, int64(m.A))
	return binary.AppendVarint(b, int64(m.B))
}

func readHalfCoded(data []byte, m *HalfCoded) {
	a, n := binary.Varint(data)
	m.A = int(a)
	c, _ := binary.Varint(data[n:])
	m.C = int(c)
}

func readReuseOnly(data []byte, m *ReuseOnly) {
	m.Xs = fillInts(m.Xs[:0], data)
}

func fillInts(dst []int, data []byte) []int {
	for _, b := range data {
		dst = append(dst, int(b))
	}
	return dst
}
