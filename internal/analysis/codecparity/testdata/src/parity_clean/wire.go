// Package parity_clean is a codecparity fixture whose wire/codec pair
// is in perfect sync: the analyzer must stay silent.
package parity_clean

// Ping is a message struct: exported, with json-tagged exported
// fields.
type Ping struct {
	ID   int     `json:"id"`
	Load float64 `json:"load"`
}

// ticker mirrors cluster.Clock: an internal helper struct in wire.go
// with no tagged exported fields is not a wire message and needs no
// codec coverage.
type ticker struct {
	start float64
	scale float64
}

// Elapsed keeps ticker's fields referenced so the fixture compiles
// cleanly.
func (t *ticker) Elapsed(now float64) float64 { return (now - t.start) * t.scale }
