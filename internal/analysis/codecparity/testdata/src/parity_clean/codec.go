package parity_clean

import (
	"encoding/binary"
	"math"
)

func appendPing(b []byte, m *Ping) []byte {
	b = binary.AppendVarint(b, int64(m.ID))
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(m.Load))
}

func readPing(data []byte, m *Ping) {
	v, n := binary.Varint(data)
	m.ID = int(v)
	m.Load = math.Float64frombits(binary.LittleEndian.Uint64(data[n:]))
}
