// Package codecparity implements the diffvet analyzer that keeps the
// wire-message structs and the hand-rolled binary codec in lockstep.
//
// The cluster package's wire messages are declared in wire.go and
// serialized by two codec paths in codec.go: encoding/json (which
// follows struct tags by reflection, so it tracks the struct
// automatically) and the hand-rolled binary codec (which reads and
// writes each field explicitly, so it does not). Adding a field to a
// wire struct without touching codec.go silently drops that field on
// the binary wire — the exact bug shape the codec fuzzers only catch
// probabilistically, and only for field values the corpus happens to
// exercise.
//
// The analyzer applies to any package containing both a wire.go and a
// codec.go. A message struct is any exported struct declared in
// wire.go with at least one exported, json-tagged field. For each
// message struct the analyzer requires:
//
//   - every exported field carries a json tag that is not "-" (the
//     JSON path serializes by tag; an untagged or omitted field breaks
//     cross-codec payload parity);
//   - no unexported fields (invisible to the JSON path, so they could
//     never round-trip equally on both codecs);
//   - every exported field is read at least once in codec.go outside
//     the size-hint helper (the binary encode path) and written at
//     least once in codec.go (the binary decode path). A read of the
//     written field inside its own assignment's RHS — the
//     capacity-reuse decode pattern `m.Xs = d.intsInto(m.Xs)` — is
//     buffer reuse, not encoding, and earns no encode-side credit.
//
// The read/write requirement is existence-based per field, which makes
// every scalar decode line (`m.Field = d.int()` and friends)
// individually load-bearing: deleting one leaves the field with no
// write and fails the build. The mutation regression test in this
// package pins that property against the real cluster codec.
package codecparity

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"reflect"
	"strings"

	"diffserve/internal/analysis"
)

// Config scopes the analyzer to a wire/codec file pair.
type Config struct {
	// WireFile and CodecFile are base names within the analyzed
	// package. Defaults: "wire.go", "codec.go".
	WireFile  string
	CodecFile string
	// IgnoreFuncs are codec-file functions whose field reads don't
	// count as encoding (size hints presize buffers; reading a slice's
	// length there must not satisfy the encode-side requirement).
	// Default: binarySizeHint.
	IgnoreFuncs []string
}

// Analyzer is the instance cmd/diffvet runs, with default file names.
var Analyzer = New(Config{})

// New builds a codecparity analyzer for a wire/codec file pair.
func New(cfg Config) *analysis.Analyzer {
	if cfg.WireFile == "" {
		cfg.WireFile = "wire.go"
	}
	if cfg.CodecFile == "" {
		cfg.CodecFile = "codec.go"
	}
	if cfg.IgnoreFuncs == nil {
		cfg.IgnoreFuncs = []string{"binarySizeHint"}
	}
	return &analysis.Analyzer{
		Name: "codecparity",
		Doc: "every exported field of every wire.go message struct must carry a json tag and be read " +
			"(encode) and written (decode) by the binary codec in codec.go",
		Run: func(pass *analysis.Pass) error {
			return run(pass, cfg)
		},
	}
}

// messageField is one exported field of a message struct.
type messageField struct {
	structName string
	name       string
	pos        ast.Node
	obj        *types.Var
}

func run(pass *analysis.Pass, cfg Config) error {
	var wireFile, codecFile *ast.File
	for _, f := range pass.Files {
		switch filepath.Base(pass.Fset.Position(f.Pos()).Filename) {
		case cfg.WireFile:
			wireFile = f
		case cfg.CodecFile:
			codecFile = f
		}
	}
	if wireFile == nil || codecFile == nil {
		return nil // not a wire/codec package
	}

	fields := collectMessageFields(pass, wireFile)
	if len(fields) == 0 {
		return nil
	}
	byObj := map[*types.Var]*messageField{}
	for i := range fields {
		byObj[fields[i].obj] = &fields[i]
	}

	reads, writes := collectCodecAccesses(pass, codecFile, cfg.IgnoreFuncs, byObj)

	for i := range fields {
		f := &fields[i]
		if reads[f.obj] == 0 {
			pass.Reportf(f.pos.Pos(),
				"wire field %s.%s is never read by the binary codec in %s: the encode path drops it on the wire",
				f.structName, f.name, cfg.CodecFile)
		}
		if writes[f.obj] == 0 {
			pass.Reportf(f.pos.Pos(),
				"wire field %s.%s is never written by the binary decode path in %s: decoded messages lose it",
				f.structName, f.name, cfg.CodecFile)
		}
	}
	return nil
}

// collectMessageFields finds the message structs in the wire file and
// returns their exported fields. Tag problems (missing json tag,
// json:"-", unexported fields) are reported here.
func collectMessageFields(pass *analysis.Pass, wireFile *ast.File) []messageField {
	var out []messageField
	for _, decl := range wireFile.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok {
			continue
		}
		for _, spec := range gd.Specs {
			ts, ok := spec.(*ast.TypeSpec)
			if !ok || !ts.Name.IsExported() {
				continue
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				continue
			}
			if !isMessageStruct(st) {
				continue
			}
			// Resolve the struct's type-checked field objects so codec
			// accesses can be matched by object identity.
			obj := pass.TypesInfo.Defs[ts.Name]
			named, _ := obj.Type().(*types.Named)
			tstruct, _ := named.Underlying().(*types.Struct)
			fieldObj := map[string]*types.Var{}
			if tstruct != nil {
				for i := 0; i < tstruct.NumFields(); i++ {
					fieldObj[tstruct.Field(i).Name()] = tstruct.Field(i)
				}
			}
			for _, fld := range st.Fields.List {
				for _, name := range fld.Names {
					if !name.IsExported() {
						pass.Reportf(name.Pos(),
							"wire struct %s has unexported field %s: invisible to the JSON codec, so it cannot round-trip equally on both codec paths",
							ts.Name.Name, name.Name)
						continue
					}
					tag, ok := jsonTag(fld)
					if !ok {
						pass.Reportf(name.Pos(),
							"wire field %s.%s has no json tag: the JSON codec would use the Go field name, diverging from the wire contract",
							ts.Name.Name, name.Name)
						continue
					} else if tag == "-" {
						pass.Reportf(name.Pos(),
							"wire field %s.%s is tagged json:\"-\": the JSON codec drops it while the binary codec may not — codec payloads diverge",
							ts.Name.Name, name.Name)
						continue
					}
					if fieldObj[name.Name] == nil {
						continue // unresolvable field: don't spuriously report
					}
					out = append(out, messageField{
						structName: ts.Name.Name,
						name:       name.Name,
						pos:        name,
						obj:        fieldObj[name.Name],
					})
				}
			}
		}
	}
	return out
}

// isMessageStruct: a struct with at least one exported field carrying
// a json tag. Internal helper structs (Clock) have neither.
func isMessageStruct(st *ast.StructType) bool {
	for _, fld := range st.Fields.List {
		if _, ok := jsonTag(fld); !ok {
			continue
		}
		for _, name := range fld.Names {
			if name.IsExported() {
				return true
			}
		}
	}
	return false
}

// jsonTag extracts the json tag name of a field, reporting whether a
// json tag exists at all.
func jsonTag(fld *ast.Field) (string, bool) {
	if fld.Tag == nil {
		return "", false
	}
	raw := strings.Trim(fld.Tag.Value, "`")
	tag, ok := reflect.StructTag(raw).Lookup("json")
	if !ok {
		return "", false
	}
	if i := strings.IndexByte(tag, ','); i >= 0 {
		tag = tag[:i]
	}
	return tag, true
}

// collectCodecAccesses counts, per message-struct field object, the
// selector reads and writes inside the codec file. A selector on the
// left-hand side of an assignment (or an inc/dec target) is a write;
// everything else is a read. Reads inside the ignored functions don't
// count.
func collectCodecAccesses(pass *analysis.Pass, codecFile *ast.File, ignoreFuncs []string, fields map[*types.Var]*messageField) (reads, writes map[*types.Var]int) {
	reads = map[*types.Var]int{}
	writes = map[*types.Var]int{}
	ignored := map[string]bool{}
	for _, n := range ignoreFuncs {
		ignored[n] = true
	}

	for _, decl := range codecFile.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		inIgnored := ignored[fd.Name.Name]

		// Mark write-position selector nodes first, then classify every
		// field selector in one walk. A read of the written field inside
		// its own assignment's RHS — the capacity-reuse decode pattern
		// `m.Xs = d.intsInto(m.Xs)` — is buffer reuse, not encoding, so
		// it must not satisfy the encode-side requirement.
		writePos := map[*ast.SelectorExpr]bool{}
		reuseRead := map[*ast.SelectorExpr]bool{}
		fieldOf := func(e ast.Expr) (*ast.SelectorExpr, *types.Var) {
			sel, ok := unparen(e).(*ast.SelectorExpr)
			if !ok {
				return nil, nil
			}
			selection, ok := pass.TypesInfo.Selections[sel]
			if !ok || selection.Kind() != types.FieldVal {
				return sel, nil
			}
			v, _ := selection.Obj().(*types.Var)
			return sel, v
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					sel, v := fieldOf(lhs)
					if sel == nil {
						continue
					}
					writePos[sel] = true
					if v == nil || len(n.Lhs) != len(n.Rhs) {
						continue
					}
					ast.Inspect(n.Rhs[i], func(rn ast.Node) bool {
						re, ok := rn.(ast.Expr)
						if !ok {
							return true
						}
						if rsel, rv := fieldOf(re); rsel != nil && rv == v {
							reuseRead[rsel] = true
						}
						return true
					})
				}
			case *ast.IncDecStmt:
				if sel, ok := unparen(n.X).(*ast.SelectorExpr); ok {
					writePos[sel] = true
				}
			}
			return true
		})
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			selection, ok := pass.TypesInfo.Selections[sel]
			if !ok || selection.Kind() != types.FieldVal {
				return true
			}
			v, ok := selection.Obj().(*types.Var)
			if !ok {
				return true
			}
			if _, tracked := fields[v]; !tracked {
				return true
			}
			if writePos[sel] {
				writes[v]++
			} else if !inIgnored && !reuseRead[sel] {
				reads[v]++
			}
			return true
		})
	}
	return reads, writes
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
