package codecparity

import (
	"go/ast"
	"go/parser"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"diffserve/internal/analysis"
	"diffserve/internal/analysis/analysistest"
)

// TestParityDrift checks every parity-break shape on a copy of a real
// wire struct with a deliberately added field: the added field must be
// reported on both the encode and decode sides, along with json:"-",
// missing-tag, unexported-field, and the half-coded drift pair. The
// allow escape on Spare must suppress its pair of diagnostics.
func TestParityDrift(t *testing.T) {
	analysistest.Run(t, ".", Analyzer, "parity_drift")
}

// TestParityClean checks the analyzer stays silent on a wire/codec
// pair in perfect sync, and that an untagged helper struct in wire.go
// is not mistaken for a message.
func TestParityClean(t *testing.T) {
	diags := analysistest.Run(t, ".", Analyzer, "parity_clean")
	if n := len(diags["parity_clean"]); n != 0 {
		t.Fatalf("parity_clean: want 0 diagnostics, got %d", n)
	}
}

// decodeAssign matches the per-field decode assignments in the real
// codec: `m.Field = d.xxx(...)` / `it.Field = d.xxx(...)`. Each such
// line is the sole writer of its field, so deleting it must trip the
// analyzer. Slice-header resets (m.Queries = nil and friends) are
// excluded: they share their field with the element-decode loop and
// are not the lines whose loss this criterion is about.
var decodeAssign = regexp.MustCompile(`^\s*(m|it)\.[A-Z]\w*\s*=\s*d\.`)

// TestDecodeLineMutations pins the acceptance criterion "removing any
// single field-handling line from the binary codec makes codecparity
// fail": for every per-field decode assignment in the real
// internal/cluster codec.go, re-typecheck the package with that one
// line blanked out and assert the analyzer reports a never-written
// field. Mutations that no longer compile are skipped — the compiler
// already guards those lines.
func TestDecodeLineMutations(t *testing.T) {
	if testing.Short() {
		t.Skip("mutation sweep skipped in -short mode")
	}
	loader := &analysis.Loader{Dir: "."}
	pkgs, err := loader.Load("diffserve/internal/cluster")
	if err != nil {
		t.Fatalf("loading internal/cluster: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("want 1 package, got %d", len(pkgs))
	}
	pkg := pkgs[0]

	base, err := analysis.RunPackage(pkg, []*analysis.Analyzer{Analyzer})
	if err != nil {
		t.Fatalf("baseline run: %v", err)
	}
	for _, d := range base {
		t.Errorf("baseline diagnostic (tree must start clean): %s", d.Message)
	}
	if t.Failed() {
		t.FailNow()
	}

	codecPath := filepath.Join(pkg.Dir, "codec.go")
	srcBytes, err := os.ReadFile(codecPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(string(srcBytes), "\n")

	mutated := 0
	for i, line := range lines {
		if !decodeAssign.MatchString(line) {
			continue
		}
		mut := make([]string, len(lines))
		copy(mut, lines)
		mut[i] = ""
		files, ok := reparse(loader, pkg, codecPath, strings.Join(mut, "\n"))
		if !ok {
			continue
		}
		mutPkg, err := loader.TypeCheck(pkg.ImportPath, pkg.Dir, files)
		if err != nil {
			// The mutation broke compilation; the compiler is the
			// guard for this line, not the analyzer.
			continue
		}
		mutated++
		diags, err := analysis.RunPackage(mutPkg, []*analysis.Analyzer{Analyzer})
		if err != nil {
			t.Fatalf("line %d: analyzer error: %v", i+1, err)
		}
		found := false
		for _, d := range diags {
			if strings.Contains(d.Message, "never written by the binary decode path") {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("deleting codec.go line %d (%s) was not caught by codecparity", i+1, strings.TrimSpace(line))
		}
	}
	if mutated < 20 {
		t.Fatalf("mutation sweep exercised only %d decode lines; expected the real codec to have many more", mutated)
	}
	t.Logf("codecparity caught all %d single-line decode deletions", mutated)
}

// encodeAppend matches the per-field encode lines in the real codec:
// `b = appendXxx(b, m.Field)`. Deleting one removes a field read on
// the encode path.
var encodeAppend = regexp.MustCompile(`^\s*b = append\w+\(b, (m|it)\.[A-Z]\w*\)$`)

// multiSiteEncoders are append functions whose message struct is ALSO
// encoded inline by the slice loops elsewhere in codec.go (PullResponse
// and SubmitRequest inline QueryMsg, CompleteRequest inlines
// CompleteItem, ResultsResponse inlines QueryResponse). Deleting a
// field read inside these functions leaves the inline read standing, so
// the existence-based analyzer legitimately stays silent; the inline
// loops keep the wire format honest for those structs.
var multiSiteEncoders = map[string]bool{
	"appendQueryMsg":      true,
	"appendQueryResponse": true,
	"appendCompleteItem":  true,
}

// TestEncodeLineMutations is the encode-side twin of
// TestDecodeLineMutations: deleting any single-site `b = appendXxx(b,
// m.Field)` line must make codecparity report the field as never read.
func TestEncodeLineMutations(t *testing.T) {
	if testing.Short() {
		t.Skip("mutation sweep skipped in -short mode")
	}
	loader := &analysis.Loader{Dir: "."}
	pkgs, err := loader.Load("diffserve/internal/cluster")
	if err != nil {
		t.Fatalf("loading internal/cluster: %v", err)
	}
	pkg := pkgs[0]

	codecPath := filepath.Join(pkg.Dir, "codec.go")
	srcBytes, err := os.ReadFile(codecPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(string(srcBytes), "\n")

	funcRe := regexp.MustCompile(`^func (\w+)`)
	currentFunc := ""
	mutated := 0
	for i, line := range lines {
		if m := funcRe.FindStringSubmatch(line); m != nil {
			currentFunc = m[1]
		}
		if !encodeAppend.MatchString(line) || multiSiteEncoders[currentFunc] {
			continue
		}
		mut := make([]string, len(lines))
		copy(mut, lines)
		mut[i] = ""
		files, ok := reparse(loader, pkg, codecPath, strings.Join(mut, "\n"))
		if !ok {
			continue
		}
		mutPkg, err := loader.TypeCheck(pkg.ImportPath, pkg.Dir, files)
		if err != nil {
			continue
		}
		mutated++
		diags, err := analysis.RunPackage(mutPkg, []*analysis.Analyzer{Analyzer})
		if err != nil {
			t.Fatalf("line %d: analyzer error: %v", i+1, err)
		}
		found := false
		for _, d := range diags {
			if strings.Contains(d.Message, "never read by the binary codec") {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("deleting codec.go line %d (%s) was not caught by codecparity", i+1, strings.TrimSpace(line))
		}
	}
	if mutated < 20 {
		t.Fatalf("mutation sweep exercised only %d encode lines; expected the real codec to have many more", mutated)
	}
	t.Logf("codecparity caught all %d single-line encode deletions", mutated)
}

// reparse rebuilds the package's file list into the loader's FileSet
// with codecPath's content replaced by mutSrc. Returns ok=false if the
// mutated source no longer parses.
func reparse(loader *analysis.Loader, pkg *analysis.Package, codecPath, mutSrc string) ([]*ast.File, bool) {
	var files []*ast.File
	for _, name := range pkg.GoFiles {
		path := filepath.Join(pkg.Dir, name)
		var src interface{}
		if path == codecPath {
			src = mutSrc
		}
		f, err := parser.ParseFile(loader.Fset(), path, src, parser.ParseComments)
		if err != nil {
			return nil, false
		}
		files = append(files, f)
	}
	return files, true
}
