// Package analysistest runs a diffvet analyzer over fixture packages
// under testdata/src and checks its diagnostics against `// want`
// expectations, mirroring golang.org/x/tools/go/analysis/analysistest
// on the standard library only.
//
// A fixture file marks each line expected to produce a diagnostic:
//
//	rand.Intn(4) // want `global rand\.Intn`
//
// The backquoted pattern is a regular expression matched against the
// diagnostic message. Lines without a want comment must produce no
// diagnostic; want comments without a matching diagnostic fail the
// test. Fixtures may import the standard library freely — dependencies
// type-check against compiler export data resolved through `go list`.
package analysistest

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"diffserve/internal/analysis"
)

var wantRe = regexp.MustCompile("// want `([^`]*)`")

// Run loads testdata/src/<pkg> relative to dir (usually the analyzer
// package's directory, t.Chdir-independent) for each named fixture
// package and checks a's diagnostics against the fixtures' want
// comments. It returns the diagnostics per package for tests that
// assert beyond the want matching.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgs ...string) map[string][]analysis.Diagnostic {
	t.Helper()
	loader := &analysis.Loader{Dir: dir}
	out := map[string][]analysis.Diagnostic{}
	for _, pkg := range pkgs {
		fixDir := filepath.Join(dir, "testdata", "src", pkg)
		if err := ensureImports(loader, fixDir); err != nil {
			t.Fatalf("%s: resolving fixture imports: %v", pkg, err)
		}
		loaded, err := loader.LoadDir(fixDir)
		if err != nil {
			t.Fatalf("%s: loading fixture: %v", pkg, err)
		}
		diags, err := analysis.RunPackage(loaded, []*analysis.Analyzer{a})
		if err != nil {
			t.Fatalf("%s: running %s: %v", pkg, a.Name, err)
		}
		out[pkg] = diags
		check(t, loaded.Fset, fixDir, diags)
	}
	return out
}

// ensureImports pre-resolves export data for everything the fixture
// files import.
func ensureImports(loader *analysis.Loader, fixDir string) error {
	ents, err := os.ReadDir(fixDir)
	if err != nil {
		return err
	}
	var imports []string
	seen := map[string]bool{}
	fset := token.NewFileSet()
	for _, e := range ents {
		if e.IsDir() || filepath.Ext(e.Name()) != ".go" {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(fixDir, e.Name()), nil, parser.ImportsOnly)
		if err != nil {
			return err
		}
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if !seen[path] {
				seen[path] = true
				imports = append(imports, path)
			}
		}
	}
	return loader.EnsureExports(imports...)
}

// check compares diagnostics against the want comments in the fixture
// files.
func check(t *testing.T, fset *token.FileSet, fixDir string, diags []analysis.Diagnostic) {
	t.Helper()

	type key struct {
		file string
		line int
	}
	wants := map[key][]*regexp.Regexp{}
	ents, err := os.ReadDir(fixDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if e.IsDir() || filepath.Ext(e.Name()) != ".go" {
			continue
		}
		path := filepath.Join(fixDir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %q: %v", path, i+1, m[1], err)
				}
				wants[key{path, i + 1}] = append(wants[key{path, i + 1}], re)
			}
		}
	}

	matched := map[key]int{}
	for _, d := range diags {
		p := fset.Position(d.Pos)
		k := key{p.Filename, p.Line}
		res := wants[k]
		found := false
		for _, re := range res {
			if re.MatchString(d.Message) {
				found = true
				matched[k]++
				break
			}
		}
		if !found {
			t.Errorf("%s:%d: unexpected diagnostic [%s]: %s", p.Filename, p.Line, d.Analyzer, d.Message)
		}
	}
	for k, res := range wants {
		if matched[k] < len(res) {
			t.Errorf("%s:%d: expected %d diagnostic(s), matched %d", k.file, k.line, len(res), matched[k])
		}
	}
}
