package cluster

import (
	"context"
	"math/rand"
	"testing"

	"diffserve/internal/loadbalancer"
)

// benchCompleteRequest is a representative hot-path payload: one
// 8-query light batch with 16-dim full-precision features, the shape
// every completion report carries on the Fig-harness trace.
func benchCompleteRequest() *CompleteRequest {
	req := &CompleteRequest{WorkerID: 3, Role: "light"}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 8; i++ {
		feats := make([]float64, 16)
		for j := range feats {
			feats[j] = rng.NormFloat64()
		}
		req.Items = append(req.Items, CompleteItem{
			ID: 1000 + i, Arrival: 12.25 + float64(i)*0.03125, Variant: "sdturbo",
			Features: feats, Artifact: rng.Float64(), Confidence: rng.Float64(),
		})
	}
	return req
}

// TestWireSizes pins the codecs' relative payload sizes and logs the
// absolute bytes/query recorded in PERFORMANCE.md.
func TestWireSizes(t *testing.T) {
	req := benchCompleteRequest()
	sizes := map[string]int{}
	for _, c := range []Codec{CodecJSON, CodecBinary} {
		d, err := c.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		sizes[c.Name()] = len(d)
		t.Logf("%-6s CompleteRequest(8x16dim): %d bytes, %.1f bytes/query", c.Name(), len(d), float64(len(d))/8)
	}
	if sizes["binary"]*2 > sizes["json"] {
		t.Errorf("binary payload %dB is not ≥2x smaller than JSON %dB", sizes["binary"], sizes["json"])
	}
}

// BenchmarkCodecCompleteRequest measures encode+decode of one 8-query
// completion batch per op.
func BenchmarkCodecCompleteRequest(b *testing.B) {
	for _, codec := range []Codec{CodecJSON, CodecBinary} {
		b.Run(codec.Name(), func(b *testing.B) {
			req := benchCompleteRequest()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				data, err := codec.Marshal(req)
				if err != nil {
					b.Fatal(err)
				}
				var out CompleteRequest
				if err := codec.Unmarshal(data, &out); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWirePath measures one full data-path cycle per op — an
// 8-query batch submitted, pulled, completed, and its results
// collected — through each transport. Divide B/op and allocs/op by 8
// for per-query numbers.
func BenchmarkWirePath(b *testing.B) {
	for _, name := range []string{TransportJSON, TransportBinary, TransportTCP, TransportInproc} {
		b.Run(name, func(b *testing.B) {
			tp, err := NewTransport(name)
			if err != nil {
				b.Fatal(err)
			}
			defer tp.Close()
			lb := NewLBServer(LBConfig{
				Mode: loadbalancer.ModeCascade, SLO: 1e9,
				LightMinExec: 0.1, HeavyMinExec: 1.78,
				Clock: NewClock(1), Seed: 1,
			})
			conn, err := tp.ServeLB(lb)
			if err != nil {
				b.Fatal(err)
			}
			ctx := context.Background()
			proto := benchCompleteRequest()
			queries := make([]QueryMsg, len(proto.Items))
			items := make([]CompleteItem, len(proto.Items))
			// Persistent response structs: the Into calls decode into
			// their existing capacity, so a steady-state client
			// allocates nothing per cycle.
			var pulled PullResponse
			var results ResultsResponse

			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := range queries {
					id := i*len(queries) + j
					// Zero arrival: the LB stamps the current trace
					// time, keeping queries inside the SLO horizon
					// however long the benchmark runs.
					queries[j] = QueryMsg{ID: id, Arrival: 0}
					items[j] = proto.Items[j]
					items[j].ID = id
					items[j].Arrival = 0.001
				}
				if err := conn.SubmitBatch(ctx, SubmitRequest{Queries: queries}); err != nil {
					b.Fatal(err)
				}
				if err := PullIntoConn(ctx, conn, PullRequest{Role: "light", Max: len(queries), Wait: 10}, &pulled); err != nil {
					b.Fatal(err)
				}
				if len(pulled.Queries) != len(queries) {
					b.Fatalf("pulled %d of %d", len(pulled.Queries), len(queries))
				}
				if err := conn.Complete(ctx, CompleteRequest{WorkerID: 0, Role: "light", Items: items}); err != nil {
					b.Fatal(err)
				}
				got := 0
				for got < len(queries) {
					if err := PollResultsIntoConn(ctx, conn, ResultsRequest{Max: len(queries), Wait: 10}, &results); err != nil {
						b.Fatal(err)
					}
					if len(results.Results) == 0 {
						b.Fatal("no results")
					}
					got += len(results.Results)
				}
			}
		})
	}
}

var benchSink string

// BenchmarkCodecQueryResponse isolates the per-message cost of the
// response path (the most frequent client-facing message).
func BenchmarkCodecQueryResponse(b *testing.B) {
	resp := &QueryResponse{
		ID: 42, Variant: "sdv15", Features: benchCompleteRequest().Items[0].Features,
		Artifact: 0.25, Confidence: 0.875, Deferred: true, Arrival: 10.5, Completion: 12.0,
	}
	for _, codec := range []Codec{CodecJSON, CodecBinary} {
		b.Run(codec.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				data, err := codec.Marshal(resp)
				if err != nil {
					b.Fatal(err)
				}
				var out QueryResponse
				if err := codec.Unmarshal(data, &out); err != nil {
					b.Fatal(err)
				}
				benchSink = out.Variant
			}
		})
	}
}
