package cluster

import (
	"math/rand"
	"reflect"
	"testing"
)

// codecRT round-trips a message through a codec into fresh storage.
func codecRT(t *testing.T, c Codec, in, out interface{}) {
	t.Helper()
	data, err := c.Marshal(in)
	if err != nil {
		t.Fatalf("%s marshal %T: %v", c.Name(), in, err)
	}
	if err := c.Unmarshal(data, out); err != nil {
		t.Fatalf("%s unmarshal %T: %v", c.Name(), out, err)
	}
}

// checkParity asserts that both codecs round-trip msg to the same
// value: binary(decode(encode)) == json(decode(encode)). mk must
// return a fresh zero pointer of msg's type.
func checkParity(t *testing.T, msg interface{}, mk func() interface{}) {
	t.Helper()
	fromJSON := mk()
	fromBinary := mk()
	codecRT(t, CodecJSON, msg, fromJSON)
	codecRT(t, CodecBinary, msg, fromBinary)
	if !reflect.DeepEqual(fromJSON, fromBinary) {
		t.Errorf("codec divergence on %T:\n  json:   %+v\n  binary: %+v\n  input:  %+v",
			msg, fromJSON, fromBinary, msg)
	}
}

// randFloats exercises the three slice shapes with distinct wire
// encodings: nil, empty, and populated.
func randFloats(rng *rand.Rand) []float64 {
	switch rng.Intn(4) {
	case 0:
		return nil
	case 1:
		return []float64{}
	default:
		out := make([]float64, rng.Intn(24))
		for i := range out {
			out[i] = rng.NormFloat64() * 1e3
		}
		return out
	}
}

func randString(rng *rand.Rand) string {
	alphabet := []rune("abcdefghijklmnopqrstuvwxyz-éλ日")
	n := rng.Intn(12)
	out := make([]rune, n)
	for i := range out {
		out[i] = alphabet[rng.Intn(len(alphabet))]
	}
	return string(out)
}

func randQueryMsg(rng *rand.Rand) QueryMsg {
	return QueryMsg{ID: rng.Intn(1 << 20), Arrival: rng.Float64() * 400}
}

func randQueryResponse(rng *rand.Rand) QueryResponse {
	return QueryResponse{
		ID:         rng.Intn(1 << 20),
		Dropped:    rng.Intn(2) == 0,
		Variant:    randString(rng),
		Features:   randFloats(rng),
		Artifact:   rng.NormFloat64(),
		Confidence: rng.Float64(),
		Deferred:   rng.Intn(2) == 0,
		Arrival:    rng.Float64() * 400,
		Completion: rng.Float64() * 400,
	}
}

func randCompleteItem(rng *rand.Rand) CompleteItem {
	return CompleteItem{
		ID:         rng.Intn(1 << 20),
		Arrival:    rng.Float64() * 400,
		Variant:    randString(rng),
		Features:   randFloats(rng),
		Artifact:   rng.NormFloat64(),
		Confidence: rng.Float64(),
	}
}

func TestCodecParityRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(20250610))
	for i := 0; i < 300; i++ {
		m := randQueryMsg(rng)
		checkParity(t, &m, func() interface{} { return new(QueryMsg) })

		qr := randQueryResponse(rng)
		checkParity(t, &qr, func() interface{} { return new(QueryResponse) })

		pr := PullRequest{
			WorkerID: rng.Intn(64), Role: randString(rng), Max: rng.Intn(32),
			Wait: rng.Float64(), Drain: rng.Intn(2) == 0,
		}
		checkParity(t, &pr, func() interface{} { return new(PullRequest) })

		var pq []QueryMsg
		if n := rng.Intn(5); n > 0 {
			for j := 0; j < n; j++ {
				pq = append(pq, randQueryMsg(rng))
			}
		}
		presp := PullResponse{Queries: pq, RingEpoch: rng.Intn(8)}
		checkParity(t, &presp, func() interface{} { return new(PullResponse) })

		var items []CompleteItem
		if n := rng.Intn(5); n > 0 {
			for j := 0; j < n; j++ {
				items = append(items, randCompleteItem(rng))
			}
		}
		cr := CompleteRequest{WorkerID: rng.Intn(64), Role: randString(rng), Items: items}
		checkParity(t, &cr, func() interface{} { return new(CompleteRequest) })

		cw := ConfigureWorkerRequest{Role: randString(rng), Batch: rng.Intn(32)}
		checkParity(t, &cw, func() interface{} { return new(ConfigureWorkerRequest) })

		var members, weights []int
		var addrs []string
		if n := rng.Intn(4); n > 0 {
			for j := 0; j < n; j++ {
				members = append(members, rng.Intn(16))
				addrs = append(addrs, randString(rng))
				weights = append(weights, 1+rng.Intn(4))
			}
		}
		cl := ConfigureLBRequest{
			Threshold: rng.Float64(), SplitProb: rng.Float64(), RingEpoch: rng.Intn(8),
			Members: members, MemberAddrs: addrs, MemberWeights: weights,
		}
		checkParity(t, &cl, func() interface{} { return new(ConfigureLBRequest) })

		mr := MembershipResponse{
			RingEpoch: rng.Intn(8), Members: members, Addrs: addrs, Weights: weights,
		}
		checkParity(t, &mr, func() interface{} { return new(MembershipResponse) })

		ws := WorkerStats{
			ID: rng.Intn(64), Role: randString(rng), Batch: rng.Intn(32),
			Busy: rng.Intn(2) == 0, Batches: rng.Intn(1000), Queries: rng.Intn(10000),
		}
		checkParity(t, &ws, func() interface{} { return new(WorkerStats) })

		lbs := LBStats{
			Now: rng.Float64() * 400, LightQueueLen: rng.Intn(100), HeavyQueueLen: rng.Intn(100),
			LightArrivalRate: rng.Float64() * 40, HeavyArrivalRate: rng.Float64() * 40,
			ArrivalsSinceTick: rng.Intn(100), TimeoutsSinceTick: rng.Intn(100),
			Completed: rng.Intn(100000), Dropped: rng.Intn(1000),
		}
		checkParity(t, &lbs, func() interface{} { return new(LBStats) })

		sr := SubmitRequest{Queries: pq, Pool: []string{"", "light", "heavy"}[rng.Intn(3)]}
		checkParity(t, &sr, func() interface{} { return new(SubmitRequest) })

		rr := ResultsRequest{Max: rng.Intn(1024), Wait: rng.Float64() * 2}
		checkParity(t, &rr, func() interface{} { return new(ResultsRequest) })

		var results []QueryResponse
		if n := rng.Intn(4); n > 0 {
			for j := 0; j < n; j++ {
				results = append(results, randQueryResponse(rng))
			}
		}
		rresp := ResultsResponse{Results: results}
		checkParity(t, &rresp, func() interface{} { return new(ResultsResponse) })
	}
}

func TestBinaryCodecRoundTripExact(t *testing.T) {
	// Binary round trips preserve nil vs empty on every field without
	// omitempty semantics.
	in := CompleteRequest{WorkerID: 3, Role: "light", Items: []CompleteItem{
		{ID: 1, Variant: "sdturbo", Features: nil, Confidence: 0.25},
		{ID: 2, Variant: "sdturbo", Features: []float64{}, Confidence: 0.75},
		{ID: 3, Variant: "sdturbo", Features: []float64{1.5, -2.25, 0}, Artifact: 0.125},
	}}
	var out CompleteRequest
	codecRT(t, CodecBinary, &in, &out)
	if !reflect.DeepEqual(in, out) {
		t.Errorf("binary round trip mutated message:\n  in:  %+v\n  out: %+v", in, out)
	}
	if out.Items[0].Features != nil {
		t.Error("nil features became non-nil")
	}
	if out.Items[1].Features == nil {
		t.Error("empty features became nil")
	}
}

func TestBinaryCodecRejectsMismatchedTag(t *testing.T) {
	data, err := CodecBinary.Marshal(&QueryMsg{ID: 1})
	if err != nil {
		t.Fatal(err)
	}
	var lbs LBStats
	if err := CodecBinary.Unmarshal(data, &lbs); err == nil {
		t.Error("decoding a QueryMsg frame as LBStats should fail")
	}
	var q QueryMsg
	if err := CodecBinary.Unmarshal(data[:len(data)-1], &q); err == nil {
		t.Error("truncated frame should fail")
	}
	if err := CodecBinary.Unmarshal(append(data, 0), &q); err == nil {
		t.Error("trailing bytes should fail")
	}
}

func TestCodecByName(t *testing.T) {
	for name, want := range map[string]Codec{"": CodecJSON, "json": CodecJSON, "binary": CodecBinary} {
		got, err := CodecByName(name)
		if err != nil || got != want {
			t.Errorf("CodecByName(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := CodecByName("protobuf"); err == nil {
		t.Error("unknown codec name should error")
	}
	if _, err := NewTransport("grpc"); err == nil {
		t.Error("unknown transport name should error")
	}
}
