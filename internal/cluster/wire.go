// Package cluster is the real-process runtime of DiffServe: a load
// balancer, GPU workers, and a controller, mirroring the paper's
// testbed implementation (§4.1, artifact Appendix A).
//
// Components are wired through a pluggable transport seam with three
// layers:
//
//   - wire messages (QueryMsg, PullRequest/Response, CompleteRequest,
//     stats and configure messages) — plain structs with stable
//     payload semantics;
//   - a Codec (CodecJSON, CodecBinary) that serializes those messages
//     — the binary codec is hand-rolled and length-prefixed, with no
//     reflection on the hot path;
//   - a Transport / LBConn / WorkerConn abstraction over how encoded
//     messages move: persistent HTTP connections (with either codec),
//     raw framed TCP (persistent multiplexed connections carrying
//     length-prefixed frames — no HTTP machinery on the hot path), or
//     an in-process fast path that dispatches direct calls with zero
//     serialization so the harness can validate at the highest
//     timescale factors.
//
// The data path is pull-based and latency-conscious: clients submit
// query batches asynchronously and long-poll for results; idle
// workers long-poll the load balancer for work (the pull blocks
// server-side until a batch is dispatchable or a deadline passes,
// instead of sleep-and-retry).
//
// # Buffer ownership
//
// The wire path is allocation-free in steady state, which makes slice
// ownership part of the API contract:
//
//   - Requests (SubmitRequest, CompleteRequest): the caller keeps
//     ownership of every slice it passes in. The server copies (or
//     interns into the metrics collector's append-only arena) anything
//     it retains, so callers may reuse or overwrite request buffers the
//     moment the call returns.
//   - By-value responses (Pull, PollResults): the returned message and
//     its slices belong to the caller; nothing else aliases them.
//   - Reused responses (PullInto, PollResultsInto — see ReusingLBConn):
//     the response struct's slices are decode targets. The caller owns
//     their contents only until its next *Into call on the same struct,
//     which overwrites them in place. Callers that retain results past
//     that point (or poll into a shared struct from two goroutines)
//     must copy.
//   - Pooled decodes (the TCP server's dispatch path): messages
//     acquired from the package pools are owned by exactly one
//     goroutine and returned via ReleaseMessage; released storage is
//     recycled into later decodes, so retaining any slice past release
//     is a use-after-free. The poolpoison build tag fills released
//     buffers with NaN sentinels so that class of bug fails loudly
//     under test.
//
// Model execution is simulated by sleeping for the profiled latency
// (the artifact's --do_simulate mode) scaled by a configurable
// timescale, so a six-minute trace can replay in seconds while
// preserving all queuing dynamics. All components share the same
// experiment seed, so worker processes regenerate identical images and
// confidences for a given query ID — exactly as the simulator does.
//
// Architecturally the cluster matches the discrete-event simulator:
// pool queues live at the load balancer and idle workers pull batches,
// which keeps the two implementations directly comparable (§4.3's
// simulator-vs-testbed validation).
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// QueryMsg is a query submission.
type QueryMsg struct {
	ID int `json:"id"`
	// Arrival is the trace-time arrival in seconds (assigned by the
	// load balancer if zero).
	Arrival float64 `json:"arrival"`
}

// QueryResponse is returned to the client when its query completes.
//
// Features follows the package's buffer-ownership rules: delivered
// by value it belongs to the caller; delivered through
// PollResultsInto it is valid until the next Into call on the same
// response struct.
type QueryResponse struct {
	ID         int       `json:"id"`
	Dropped    bool      `json:"dropped"`
	Variant    string    `json:"variant,omitempty"`
	Features   []float64 `json:"features,omitempty"`
	Artifact   float64   `json:"artifact,omitempty"`
	Confidence float64   `json:"confidence,omitempty"`
	Deferred   bool      `json:"deferred"`
	Arrival    float64   `json:"arrival"`
	Completion float64   `json:"completion"`
}

// SubmitRequest batches asynchronous query submissions: the call
// returns immediately and results are fetched with ResultsRequest.
// This is the persistent-connection client data path — one round
// trip admits a whole arrival batch instead of one blocking request
// per query.
//
// Pool is the resharding migration path's override: "" (normal
// admission) routes by the configured policy and counts the queries
// as fresh arrivals; "light" or "heavy" re-queues drained queries
// into that pool directly — a deferral migrated off a departing
// shard keeps its place in the cascade instead of re-running the
// light model — and leaves the arrival counters untouched, since the
// queries were already counted where they first arrived.
type SubmitRequest struct {
	Queries []QueryMsg `json:"queries"`
	Pool    string     `json:"pool,omitempty"`
}

// ResultsRequest long-polls for completed (or dropped) query results:
// the server blocks until at least one result is available or Wait
// trace-seconds pass.
type ResultsRequest struct {
	Max  int     `json:"max"`
	Wait float64 `json:"wait,omitempty"` // trace seconds
}

// ResultsResponse carries completed query results. Results belongs to
// the caller when polled by value; polled through PollResultsInto it
// is a decode target, valid until the next Into call on the same
// struct.
type ResultsResponse struct {
	Results []QueryResponse `json:"results"`
}

// PullRequest asks the load balancer for up to Max queued queries for
// the given pool. A positive Wait turns the pull into a long poll:
// the server blocks until a batch is dispatchable or Wait
// trace-seconds pass, which replaces client-side sleep-and-retry.
//
// Drain flips the pull into an ownership transfer used by the
// resharding path: the server pops up to Max queued queries without
// shedding or coalescing and forgets their async registrations, so
// the caller becomes responsible for re-submitting them (to their
// new owning shard). Queries with a blocking Submit waiter cannot
// migrate — their client is parked on this server — and resolve as
// drops instead; queries already resolved by a racing drop are not
// returned at all, which is what keeps migration double-resolve-free.
type PullRequest struct {
	WorkerID int     `json:"worker_id"`
	Role     string  `json:"role"` // "light" or "heavy"
	Max      int     `json:"max"`
	Wait     float64 `json:"wait,omitempty"` // trace seconds
	Drain    bool    `json:"drain,omitempty"`
}

// PullResponse carries the dequeued work. RingEpoch echoes the ring
// epoch the server last learned via ConfigureLBRequest: workers
// compare it against the epoch they pinned under and re-pin when the
// tier's membership has moved on.
//
// LeaseDeadline is the absolute trace time until which the server
// considers the pulled queries owned by this worker. Worker activity
// (further pulls or completions) heartbeats the lease forward; a
// worker that goes silent past the deadline forfeits the batch — the
// server's expiry sweep reclaims and re-queues it. Zero means the
// server is not leasing (leases disabled).
//
// Queries belongs to the caller when pulled by value; pulled through
// PullInto it is a decode target, valid until the next Into call on
// the same struct.
type PullResponse struct {
	Queries       []QueryMsg `json:"queries"`
	RingEpoch     int        `json:"ring_epoch,omitempty"`
	LeaseDeadline float64    `json:"lease_deadline,omitempty"`
}

// CompleteItem is one finished generation. The caller keeps ownership
// of Features: the server interns what it retains, so the slice may
// alias long-lived worker storage (the imagespace cache) and be reused
// as soon as Complete returns.
type CompleteItem struct {
	ID         int       `json:"id"`
	Arrival    float64   `json:"arrival"`
	Variant    string    `json:"variant"`
	Features   []float64 `json:"features"`
	Artifact   float64   `json:"artifact"`
	Confidence float64   `json:"confidence"`
}

// CompleteRequest reports a finished batch back to the load balancer.
//
// LeaseDeadline echoes the deadline the batch was pulled under (zero
// from pre-lease clients). The server uses it to tell a live
// completion from a zombie one — a worker reporting work whose lease
// already expired and was reclaimed. Zombie items still resolve
// idempotently (the first resolution is final either way); the echo
// only feeds the late-completion counter the control plane watches.
type CompleteRequest struct {
	WorkerID      int            `json:"worker_id"`
	Role          string         `json:"role"`
	Items         []CompleteItem `json:"items"`
	LeaseDeadline float64        `json:"lease_deadline,omitempty"`
}

// ConfigureWorkerRequest reassigns a worker.
type ConfigureWorkerRequest struct {
	Role  string `json:"role"` // "idle", "light", "heavy"
	Batch int    `json:"batch"`
}

// ConfigureLBRequest updates the data-path policy knobs. RingEpoch
// carries the sharded tier's current ring epoch; the server adopts it
// monotonically (a stale broadcast cannot regress the epoch) and
// echoes it in every PullResponse so shard-pinned workers observe
// membership changes without a dedicated control channel.
//
// Members / MemberAddrs / MemberWeights describe the epoch's shard
// membership (parallel slices: sorted member IDs, their advertised
// dial addresses, and the placement weight vector — addrs may hold
// empty strings where no address is known, and weights may be absent
// for unweighted placement). The server stores the view alongside the
// adopted epoch and republishes it through the Membership verb, which
// is how standalone frontends and workers follow flips without
// redialing from static address lists.
type ConfigureLBRequest struct {
	Threshold     float64  `json:"threshold"`
	SplitProb     float64  `json:"split_prob"`
	RingEpoch     int      `json:"ring_epoch,omitempty"`
	Members       []int    `json:"members,omitempty"`
	MemberAddrs   []string `json:"member_addrs,omitempty"`
	MemberWeights []int    `json:"member_weights,omitempty"`
}

// MembershipResponse is the membership-discovery verb's answer: the
// ring epoch and the member view last adopted via ConfigureLBRequest
// (or, served by a ShardedLB frontend, its own current view). Clients
// poll it only when they observe the epoch move — the response is
// deliberately small and read-only, so following a flip costs one
// round trip per membership change, not a poll per tick.
type MembershipResponse struct {
	RingEpoch int      `json:"ring_epoch"`
	Members   []int    `json:"members,omitempty"`
	Addrs     []string `json:"addrs,omitempty"`
	Weights   []int    `json:"weights,omitempty"`
}

// WorkerStats is a worker's control-plane report.
type WorkerStats struct {
	ID      int    `json:"id"`
	Role    string `json:"role"`
	Batch   int    `json:"batch"`
	Busy    bool   `json:"busy"`
	Batches int    `json:"batches"`
	Queries int    `json:"queries"`
}

// LBStats is the load balancer's control-plane report.
//
// The lease fields account for the failure model: InFlight is the
// number of currently leased (pulled, uncompleted) queries, Reclaims
// the lifetime count of queries re-queued after their worker's lease
// expired, ShedRedelivery the lifetime count dropped after exhausting
// the redelivery bound, and LateCompletions the lifetime count of
// completion items reported by a worker whose lease had already been
// reclaimed. DegradedShards is only set by the sharded frontend's
// merged report: the number of shards currently marked unreachable —
// a nonzero value is the controller's cue to reshard around them.
type LBStats struct {
	Now               float64 `json:"now"` // trace time, seconds
	LightQueueLen     int     `json:"light_queue_len"`
	HeavyQueueLen     int     `json:"heavy_queue_len"`
	LightArrivalRate  float64 `json:"light_arrival_rate"`
	HeavyArrivalRate  float64 `json:"heavy_arrival_rate"`
	ArrivalsSinceTick int     `json:"arrivals_since_tick"`
	TimeoutsSinceTick int     `json:"timeouts_since_tick"`
	Completed         int     `json:"completed"`
	Dropped           int     `json:"dropped"`
	InFlight          int     `json:"in_flight,omitempty"`
	Reclaims          int     `json:"reclaims,omitempty"`
	ShedRedelivery    int     `json:"shed_redelivery,omitempty"`
	LateCompletions   int     `json:"late_completions,omitempty"`
	DegradedShards    int     `json:"degraded_shards,omitempty"`
}

// postJSON is the shared JSON-over-HTTP helper (pre-codec wire path,
// kept for the tests and any external JSON clients).
func postJSON(client *http.Client, url string, in, out interface{}) error {
	body, err := json.Marshal(in)
	if err != nil {
		return fmt.Errorf("cluster: marshal %s: %w", url, err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("cluster: post %s: %w", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: post %s: status %s", url, resp.Status)
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("cluster: decode %s: %w", url, err)
	}
	return nil
}

// PostJSON posts a JSON document and decodes the JSON response.
// External JSON clients can use it to talk to the load balancer;
// in-repo components use an LBConn instead.
func PostJSON(client *http.Client, url string, in, out interface{}) error {
	return postJSON(client, url, in, out)
}

// getJSON fetches a JSON document.
func getJSON(client *http.Client, url string, out interface{}) error {
	resp, err := client.Get(url)
	if err != nil {
		return fmt.Errorf("cluster: get %s: %w", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: get %s: status %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Clock converts between wall time and trace time. Now and Restart
// are safe for concurrent use: the harness restarts the clock after
// setup while worker loops are already reading it.
type Clock struct {
	mu        sync.Mutex
	start     time.Time
	timescale float64 // wall seconds per trace second
}

// NewClock starts a clock with the given timescale. A timescale of
// 0.05 replays traces at 20x real time.
func NewClock(timescale float64) *Clock {
	if timescale <= 0 {
		timescale = 1
	}
	return &Clock{start: time.Now(), timescale: timescale} //diffvet:allow walltime — Clock anchors trace time to the wall clock; this is the boundary itself
}

// Now returns the current trace time in seconds.
func (c *Clock) Now() float64 {
	c.mu.Lock()
	start := c.start
	c.mu.Unlock()
	return time.Since(start).Seconds() / c.timescale //diffvet:allow walltime — trace time is derived from wall elapsed since the anchor; this is the boundary itself
}

// Restart rewinds trace time to zero. The harness calls this after
// component setup so that setup cost (server startup, the initial
// MILP solve) does not consume trace time.
func (c *Clock) Restart() {
	c.mu.Lock()
	c.start = time.Now() //diffvet:allow walltime — Restart re-anchors trace zero to the wall clock; this is the boundary itself
	c.mu.Unlock()
}

// WallDuration converts a trace-seconds interval to wall time.
func (c *Clock) WallDuration(traceSecs float64) time.Duration {
	return time.Duration(traceSecs * c.timescale * float64(time.Second))
}

// SleepTrace blocks for d trace-seconds.
func (c *Clock) SleepTrace(d float64) {
	if d <= 0 {
		return
	}
	time.Sleep(c.WallDuration(d)) //diffvet:allow walltime — SleepTrace realizes a trace interval as wall time; this is the boundary itself
}

// SleepTraceCtx blocks for d trace-seconds or until ctx is cancelled,
// whichever comes first. It reports whether the full sleep elapsed.
// Long-running loops use it so harness shutdown does not block on
// in-flight simulated sleeps at low timescales.
func (c *Clock) SleepTraceCtx(ctx context.Context, d float64) bool {
	if d <= 0 {
		return ctx == nil || ctx.Err() == nil
	}
	if ctx == nil || ctx.Done() == nil {
		time.Sleep(c.WallDuration(d)) //diffvet:allow walltime — SleepTraceCtx realizes a trace interval as wall time; this is the boundary itself
		return true
	}
	t := time.NewTimer(c.WallDuration(d))
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// Timescale returns the wall-seconds-per-trace-second factor.
func (c *Clock) Timescale() float64 { return c.timescale }
