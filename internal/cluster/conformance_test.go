package cluster

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"diffserve/internal/loadbalancer"
)

// transportCase is one transport × codec combination under
// conformance test.
type transportCase struct {
	name string
	mk   func() Transport
	// failsAfterClose: conn calls made after Transport.Close must
	// return an error (networked transports). The in-process
	// transport has nothing to tear down, so calls keep succeeding.
	failsAfterClose bool
}

// transportMatrix enumerates every transport × codec combination the
// package ships: in-process, HTTP with both codecs, and raw TCP with
// both codecs.
func transportMatrix() []transportCase {
	mkNamed := func(name string) func() Transport {
		return func() Transport {
			tp, err := NewTransport(name)
			if err != nil {
				panic(err)
			}
			return tp
		}
	}
	return []transportCase{
		{name: "inproc", mk: mkNamed(TransportInproc), failsAfterClose: false},
		{name: "http-json", mk: mkNamed(TransportJSON), failsAfterClose: true},
		{name: "http-binary", mk: mkNamed(TransportBinary), failsAfterClose: true},
		{name: "tcp-json", mk: func() Transport { return newTCPTransport(CodecJSON) }, failsAfterClose: true},
		{name: "tcp-binary", mk: mkNamed(TransportTCP), failsAfterClose: true},
	}
}

// TestTransportConformance runs the shared behavioral suite over
// every transport × codec combination.
func TestTransportConformance(t *testing.T) {
	for _, tc := range transportMatrix() {
		t.Run(tc.name, func(t *testing.T) {
			testTransportConformance(t, tc)
		})
	}
}

// testTransportConformance asserts the behavior every Transport must
// provide: full data-path round trips with field-exact payloads,
// worker control-plane round trips, batched submit + long-poll
// results, long-poll blocking and deadline semantics, prompt
// unblocking of long polls caught mid-shutdown, and well-defined
// behavior for calls after Close.
func testTransportConformance(t *testing.T, tc transportCase) {
	t.Run("query-roundtrip", func(t *testing.T) {
		tp := tc.mk()
		defer tp.Close()
		conn := serveTestLB(t, tp, newTestLB(0.001))

		respCh := make(chan QueryResponse, 1)
		errCh := make(chan error, 1)
		go func() {
			resp, err := conn.Submit(context.Background(), QueryMsg{ID: 7, Arrival: 0.001})
			errCh <- err
			respCh <- resp
		}()
		pulled, err := conn.Pull(context.Background(), PullRequest{Role: "light", Max: 1, Wait: 20})
		if err != nil || len(pulled.Queries) != 1 {
			t.Fatalf("pull = %+v, %v", pulled, err)
		}
		if pulled.Queries[0].ID != 7 || pulled.Queries[0].Arrival != 0.001 {
			t.Fatalf("pulled query = %+v", pulled.Queries[0])
		}
		err = conn.Complete(context.Background(), CompleteRequest{Role: "light", Items: []CompleteItem{{
			ID: 7, Arrival: 0.001, Variant: "sdturbo",
			Features: []float64{1, 2}, Artifact: 0.5, Confidence: 0.9,
		}}})
		if err != nil {
			t.Fatal(err)
		}
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
		resp := <-respCh
		if resp.ID != 7 || resp.Dropped || resp.Variant != "sdturbo" ||
			len(resp.Features) != 2 || resp.Features[0] != 1 || resp.Features[1] != 2 ||
			resp.Artifact != 0.5 || resp.Confidence != 0.9 {
			t.Errorf("response = %+v", resp)
		}

		if err := conn.Configure(context.Background(), ConfigureLBRequest{Threshold: 0.5}); err != nil {
			t.Fatal(err)
		}
		stats, err := conn.Stats(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if stats.Completed != 1 || stats.Dropped != 0 {
			t.Errorf("stats = %+v", stats)
		}
	})

	t.Run("worker-conn", func(t *testing.T) {
		tp := tc.mk()
		defer tp.Close()
		ws := NewWorkerServer(WorkerConfig{ID: 4, Clock: NewClock(0.001), DisableLoadDelay: true})
		conn, err := tp.ServeWorker(ws)
		if err != nil {
			t.Fatal(err)
		}
		if err := conn.Configure(context.Background(), ConfigureWorkerRequest{Role: "heavy", Batch: 6}); err != nil {
			t.Fatal(err)
		}
		st, err := conn.Stats(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if st.ID != 4 || st.Role != "heavy" || st.Batch != 6 {
			t.Errorf("stats = %+v", st)
		}
	})

	t.Run("batch-results", func(t *testing.T) {
		tp := tc.mk()
		defer tp.Close()
		conn := serveTestLB(t, tp, newTestLB(0.001))

		err := conn.SubmitBatch(context.Background(), SubmitRequest{Queries: []QueryMsg{
			{ID: 1, Arrival: 0.001}, {ID: 2, Arrival: 0.001},
		}})
		if err != nil {
			t.Fatal(err)
		}
		pulled, err := conn.Pull(context.Background(), PullRequest{Role: "light", Max: 2, Wait: 5})
		if err != nil || len(pulled.Queries) != 2 {
			t.Fatalf("pull = %+v, %v", pulled, err)
		}
		items := make([]CompleteItem, len(pulled.Queries))
		for i, q := range pulled.Queries {
			items[i] = CompleteItem{ID: q.ID, Arrival: q.Arrival, Variant: "sdturbo", Confidence: 0.9}
		}
		if err := conn.Complete(context.Background(), CompleteRequest{Role: "light", Items: items}); err != nil {
			t.Fatal(err)
		}
		got := map[int]bool{}
		for len(got) < 2 {
			resp, err := conn.PollResults(context.Background(), ResultsRequest{Max: 10, Wait: 5})
			if err != nil {
				t.Fatal(err)
			}
			if len(resp.Results) == 0 {
				t.Fatal("PollResults returned empty before all results arrived")
			}
			for _, r := range resp.Results {
				if r.Dropped || r.Variant != "sdturbo" {
					t.Errorf("result %+v", r)
				}
				got[r.ID] = true
			}
		}
		if !got[1] || !got[2] {
			t.Errorf("missing results: %v", got)
		}
	})

	t.Run("zero-wait-nonblocking", func(t *testing.T) {
		tp := tc.mk()
		defer tp.Close()
		lb := NewLBServer(LBConfig{
			Mode: loadbalancer.ModeCascade, SLO: 50,
			LightMinExec: 0.1, HeavyMinExec: 1.78,
			Clock: NewClock(0.01), Seed: 1, CoalesceWait: 1e-9,
		})
		conn := serveTestLB(t, tp, lb)

		// Empty queue, empty results: Wait <= 0 must return
		// immediately on every transport — a zero wait is an explicit
		// non-blocking poll, never a zero-deadline sleep. The clock
		// runs at 0.01, so any accidental blocking path (e.g. a
		// long-poll slice) would cost hundreds of milliseconds.
		start := time.Now()
		resp, err := conn.Pull(context.Background(), PullRequest{Role: "light", Max: 4})
		if err != nil || len(resp.Queries) != 0 {
			t.Fatalf("zero-wait pull on empty queue = %+v, %v", resp.Queries, err)
		}
		rres, err := conn.PollResults(context.Background(), ResultsRequest{Max: 4})
		if err != nil || len(rres.Results) != 0 {
			t.Fatalf("zero-wait results on empty buffer = %+v, %v", rres.Results, err)
		}
		if wall := time.Since(start); wall > 2*time.Second {
			t.Errorf("zero-wait polls took %v, want immediate", wall)
		}

		// With work queued and a result buffered, the same zero-wait
		// calls must return them without blocking.
		if err := conn.SubmitBatch(context.Background(), SubmitRequest{Queries: []QueryMsg{{ID: 3, Arrival: 0.001}}}); err != nil {
			t.Fatal(err)
		}
		resp, err = conn.Pull(context.Background(), PullRequest{Role: "light", Max: 4})
		if err != nil || len(resp.Queries) != 1 || resp.Queries[0].ID != 3 {
			t.Fatalf("zero-wait pull with queued work = %+v, %v", resp.Queries, err)
		}
		err = conn.Complete(context.Background(), CompleteRequest{Role: "light", Items: []CompleteItem{
			{ID: 3, Arrival: 0.001, Variant: "sdturbo", Confidence: 0.9},
		}})
		if err != nil {
			t.Fatal(err)
		}
		rres, err = conn.PollResults(context.Background(), ResultsRequest{Max: 4})
		if err != nil || len(rres.Results) != 1 || rres.Results[0].ID != 3 {
			t.Fatalf("zero-wait results with buffered result = %+v, %v", rres.Results, err)
		}
	})

	t.Run("sharded-topology", func(t *testing.T) {
		// A 2-shard tier over this transport: the frontend must
		// partition by loadbalancer.ShardOf identically to every other
		// transport, and merge both shards' result streams.
		tp := tc.mk()
		defer tp.Close()
		clock := NewClock(0.001)
		const shards, queries = 2, 16
		lbs := make([]*LBServer, shards)
		conns := make([]LBConn, shards)
		for i := range lbs {
			lbs[i] = NewLBServer(LBConfig{
				Mode: loadbalancer.ModeCascade, SLO: 1e9,
				LightMinExec: 0.1, HeavyMinExec: 1.78,
				Clock: clock, Seed: 1, RNGStream: fmt.Sprintf("lb/%d", i),
				CoalesceWait: 1e-9,
			})
			conns[i] = serveTestLB(t, tp, lbs[i])
		}
		fe, err := NewShardedLB(ShardedLBConfig{Shards: conns, Clock: clock})
		if err != nil {
			t.Fatal(err)
		}
		defer fe.Close()

		qs := make([]QueryMsg, queries)
		for i := range qs {
			qs[i] = QueryMsg{ID: i, Arrival: 0.001}
		}
		if err := fe.SubmitBatch(context.Background(), SubmitRequest{Queries: qs}); err != nil {
			t.Fatal(err)
		}
		// Shard-pinned pulls through the transport conns: each query
		// must surface on exactly the shard ShardOf names.
		for s, conn := range conns {
			for {
				resp, err := conn.Pull(context.Background(), PullRequest{Role: "light", Max: 8})
				if err != nil {
					t.Fatal(err)
				}
				if len(resp.Queries) == 0 {
					break
				}
				items := make([]CompleteItem, len(resp.Queries))
				for i, q := range resp.Queries {
					if want := loadbalancer.ShardOf(q.ID, shards); want != s {
						t.Errorf("query %d surfaced on shard %d, ShardOf says %d", q.ID, s, want)
					}
					items[i] = CompleteItem{ID: q.ID, Arrival: q.Arrival, Variant: "sdturbo", Confidence: 0.9}
				}
				if err := conn.Complete(context.Background(), CompleteRequest{Role: "light", Items: items}); err != nil {
					t.Fatal(err)
				}
			}
		}
		got := map[int]bool{}
		deadline := time.Now().Add(10 * time.Second)
		for len(got) < queries && time.Now().Before(deadline) {
			resp, err := fe.PollResults(context.Background(), ResultsRequest{Max: 32, Wait: 5})
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range resp.Results {
				if got[r.ID] || r.Dropped {
					t.Errorf("bad merged result %+v (dup=%v)", r, got[r.ID])
				}
				got[r.ID] = true
			}
		}
		if len(got) != queries {
			t.Fatalf("merged %d of %d results", len(got), queries)
		}
		st, err := fe.Stats(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if st.Completed != queries || st.Dropped != 0 {
			t.Errorf("merged stats = %+v", st)
		}
	})

	t.Run("drain-pull-ownership", func(t *testing.T) {
		// PullRequest.Drain must behave identically on every
		// transport: queued async queries are handed over exactly once
		// (their registration forgotten), a second drain finds
		// nothing, and the handed-over queries can be re-submitted and
		// resolved elsewhere without ever double-resolving. The ring
		// epoch set by Configure must echo in every pull response.
		tp := tc.mk()
		defer tp.Close()
		conn := serveTestLB(t, tp, newTestLB(0.001))
		ctx := context.Background()

		if err := conn.Configure(ctx, ConfigureLBRequest{Threshold: 0.5, RingEpoch: 7}); err != nil {
			t.Fatal(err)
		}
		err := conn.SubmitBatch(ctx, SubmitRequest{Queries: []QueryMsg{
			{ID: 1, Arrival: 0.001}, {ID: 2, Arrival: 0.001},
		}})
		if err != nil {
			t.Fatal(err)
		}
		drained, err := conn.Pull(ctx, PullRequest{Role: "light", Max: 8, Drain: true})
		if err != nil || len(drained.Queries) != 2 {
			t.Fatalf("drain pull = %+v, %v", drained, err)
		}
		if drained.RingEpoch != 7 {
			t.Errorf("drain pull echoed epoch %d, want 7", drained.RingEpoch)
		}
		if drained.Queries[0].Arrival != 0.001 {
			t.Errorf("drained query lost its arrival stamp: %+v", drained.Queries[0])
		}
		again, err := conn.Pull(ctx, PullRequest{Role: "light", Max: 8, Drain: true})
		if err != nil || len(again.Queries) != 0 {
			t.Fatalf("second drain pull = %+v, %v", again, err)
		}
		// The drained queries' registrations are forgotten: completing
		// them now must be a no-op, not a resolution.
		items := make([]CompleteItem, len(drained.Queries))
		for i, q := range drained.Queries {
			items[i] = CompleteItem{ID: q.ID, Arrival: q.Arrival, Variant: "sdturbo", Confidence: 0.9}
		}
		if err := conn.Complete(ctx, CompleteRequest{Role: "light", Items: items}); err != nil {
			t.Fatal(err)
		}
		if res, err := conn.PollResults(ctx, ResultsRequest{Max: 8}); err != nil || len(res.Results) != 0 {
			t.Fatalf("completion after drain resolved %d results, want 0 (err %v)", len(res.Results), err)
		}
		// Re-submission (the migration path) re-registers them; now
		// the same completion resolves each exactly once.
		if err := conn.SubmitBatch(ctx, SubmitRequest{Queries: drained.Queries}); err != nil {
			t.Fatal(err)
		}
		pulled, err := conn.Pull(ctx, PullRequest{Role: "light", Max: 8, Wait: 5})
		if err != nil || len(pulled.Queries) != 2 {
			t.Fatalf("post-migration pull = %+v, %v", pulled, err)
		}
		if pulled.RingEpoch != 7 {
			t.Errorf("pull echoed epoch %d, want 7", pulled.RingEpoch)
		}
		if err := conn.Complete(ctx, CompleteRequest{Role: "light", Items: items}); err != nil {
			t.Fatal(err)
		}
		got := map[int]bool{}
		for len(got) < 2 {
			res, err := conn.PollResults(ctx, ResultsRequest{Max: 8, Wait: 5})
			if err != nil || len(res.Results) == 0 {
				t.Fatalf("migrated results missing: %v (got %v)", err, got)
			}
			for _, r := range res.Results {
				if got[r.ID] {
					t.Fatalf("result %d delivered twice", r.ID)
				}
				got[r.ID] = true
			}
		}
		st, err := conn.Stats(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if st.Completed != 2 || st.Dropped != 0 {
			t.Errorf("stats after migration = %+v, want 2 completed / 0 dropped", st)
		}
	})

	t.Run("lease-reclaim-exactly-once", func(t *testing.T) {
		// A pulled batch is leased, not gone: when the puller dies
		// without completing, the expiry sweep reclaims the queries —
		// arrival stamps intact — and a second worker's pull receives
		// them. Whichever completion lands first resolves each query
		// and later reports are no-ops, with the lease counters
		// surfacing it all through Stats on every transport × codec.
		tp := tc.mk()
		defer tp.Close()
		clock := NewClock(0.001)
		lb := NewLBServer(LBConfig{
			Mode: loadbalancer.ModeCascade, SLO: 1e9,
			LightMinExec: 0.1, HeavyMinExec: 1.78,
			Clock: clock, Seed: 1, CoalesceWait: 1e-9,
			LeaseDuration: 0.5,
		})
		conn := serveTestLB(t, tp, lb)
		ctx := context.Background()

		err := conn.SubmitBatch(ctx, SubmitRequest{Queries: []QueryMsg{
			{ID: 1, Arrival: 0.25}, {ID: 2, Arrival: 0.25},
		}})
		if err != nil {
			t.Fatal(err)
		}
		pullA, err := conn.Pull(ctx, PullRequest{WorkerID: 1, Role: "light", Max: 8, Wait: 5})
		if err != nil || len(pullA.Queries) != 2 {
			t.Fatalf("first pull = %+v, %v", pullA, err)
		}
		if pullA.LeaseDeadline <= 0 {
			t.Fatalf("pull response carries no lease deadline: %+v", pullA)
		}
		// Worker 1 goes silent. Past the hard deadline (grant + 4x
		// the lease duration) worker 2's pull sweeps, reclaims, and
		// receives the re-queued batch.
		clock.SleepTraceCtx(ctx, 3)
		pullB, err := conn.Pull(ctx, PullRequest{WorkerID: 2, Role: "light", Max: 8, Wait: 5})
		if err != nil || len(pullB.Queries) != 2 {
			t.Fatalf("reclaim pull = %+v, %v", pullB, err)
		}
		for _, q := range pullB.Queries {
			if q.Arrival != 0.25 {
				t.Errorf("reclaimed query lost its arrival stamp: %+v", q)
			}
		}
		// The zombie (worker 1) reports first: its queries are still
		// live, so its completion wins; worker 2's later report must
		// be a no-op counted as late.
		complete := func(workerID int, pull PullResponse) error {
			req := CompleteRequest{WorkerID: workerID, Role: "light", LeaseDeadline: pull.LeaseDeadline}
			for _, q := range pull.Queries {
				req.Items = append(req.Items, CompleteItem{
					ID: q.ID, Arrival: q.Arrival, Variant: "sdturbo", Confidence: 0.9,
				})
			}
			return conn.Complete(ctx, req)
		}
		if err := complete(1, pullA); err != nil {
			t.Fatal(err)
		}
		if err := complete(2, pullB); err != nil {
			t.Fatal(err)
		}
		got := map[int]bool{}
		for len(got) < 2 {
			res, err := conn.PollResults(ctx, ResultsRequest{Max: 8, Wait: 5})
			if err != nil || len(res.Results) == 0 {
				t.Fatalf("reclaimed results missing: %v (got %v)", err, got)
			}
			for _, r := range res.Results {
				if got[r.ID] {
					t.Fatalf("result %d delivered twice", r.ID)
				}
				got[r.ID] = true
			}
		}
		st, err := conn.Stats(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if st.Completed != 2 || st.Dropped != 0 {
			t.Errorf("stats = %d completed / %d dropped, want 2 / 0", st.Completed, st.Dropped)
		}
		if st.Reclaims != 2 {
			t.Errorf("stats report %d reclaims, want 2", st.Reclaims)
		}
		if st.LateCompletions != 2 {
			t.Errorf("stats report %d late completions, want 2", st.LateCompletions)
		}
		if st.InFlight != 0 {
			t.Errorf("stats report %d leases in flight after resolution", st.InFlight)
		}
	})

	t.Run("buffer-reuse-no-alias", func(t *testing.T) {
		// The reuse discipline's user-visible guarantee: a delivered
		// result belongs to the caller alone. Scribbling over the
		// buffers the caller handed in (completion features), then
		// churning more traffic through the conn — recycling every
		// frame, pooled decode target, correlation slot, and dequeue
		// scratch the first query used, including one lease-reclaim
		// re-submit round — must not change a result already delivered
		// into a different response struct.
		tp := tc.mk()
		defer tp.Close()
		clock := NewClock(0.001)
		lb := NewLBServer(LBConfig{
			Mode: loadbalancer.ModeCascade, SLO: 1e9,
			LightMinExec: 0.1, HeavyMinExec: 1.78,
			Clock: clock, Seed: 1, CoalesceWait: 1e-9,
			LeaseDuration: 0.5,
		})
		conn := serveTestLB(t, tp, lb)
		ctx := context.Background()

		var pulled PullResponse
		resolve := func(id, workerID int, feats []float64) {
			t.Helper()
			if err := conn.SubmitBatch(ctx, SubmitRequest{Queries: []QueryMsg{{ID: id, Arrival: 0.25}}}); err != nil {
				t.Fatal(err)
			}
			err := PullIntoConn(ctx, conn, PullRequest{WorkerID: workerID, Role: "light", Max: 8, Wait: 5}, &pulled)
			if err != nil || len(pulled.Queries) != 1 {
				t.Fatalf("pull = %+v, %v", pulled, err)
			}
			err = conn.Complete(ctx, CompleteRequest{
				WorkerID: workerID, Role: "light", LeaseDeadline: pulled.LeaseDeadline,
				Items: []CompleteItem{{
					ID: id, Arrival: 0.25, Variant: "sdturbo", Features: feats, Confidence: 0.9,
				}},
			})
			if err != nil {
				t.Fatal(err)
			}
		}

		// Resolve query 1 with features the caller scribbles over the
		// moment Complete returns: the server must hold its own copy.
		featsA := []float64{10, 20, 30, 40}
		resolve(1, 1, featsA)
		for i := range featsA {
			featsA[i] = -999
		}

		var delivered ResultsResponse
		err := PollResultsIntoConn(ctx, conn, ResultsRequest{Max: 8, Wait: 5}, &delivered)
		if err != nil || len(delivered.Results) != 1 {
			t.Fatalf("poll = %+v, %v", delivered, err)
		}
		want := []float64{10, 20, 30, 40}
		checkDelivered := func(r QueryResponse) {
			t.Helper()
			if r.ID != 1 || len(r.Features) != len(want) {
				t.Fatalf("delivered result = %+v", r)
			}
			for i := range want {
				if r.Features[i] != want[i] {
					t.Fatalf("delivered features corrupted by buffer reuse: %v", r.Features)
				}
			}
		}
		checkDelivered(delivered.Results[0])

		// Churn: distinct feature values cycle through the same pooled
		// buffers, polled into a DIFFERENT response struct.
		churnFeats := []float64{-1, -2, -3, -4}
		for id := 2; id <= 5; id++ {
			resolve(id, 1, churnFeats)
		}
		var churn ResultsResponse
		got := 0
		for got < 4 {
			if err := PollResultsIntoConn(ctx, conn, ResultsRequest{Max: 8, Wait: 5}, &churn); err != nil || len(churn.Results) == 0 {
				t.Fatalf("churn poll = %v", err)
			}
			got += len(churn.Results)
		}

		// One lease-reclaim round: worker 1 pulls and goes silent, the
		// sweep re-queues the batch through the pooled dequeue scratch,
		// worker 2 re-pulls it, and both completions land.
		if err := conn.SubmitBatch(ctx, SubmitRequest{Queries: []QueryMsg{{ID: 6, Arrival: 0.25}}}); err != nil {
			t.Fatal(err)
		}
		pullA, err := conn.Pull(ctx, PullRequest{WorkerID: 1, Role: "light", Max: 8, Wait: 5})
		if err != nil || len(pullA.Queries) != 1 {
			t.Fatalf("lease pull = %+v, %v", pullA, err)
		}
		clock.SleepTraceCtx(ctx, 3)
		err = PullIntoConn(ctx, conn, PullRequest{WorkerID: 2, Role: "light", Max: 8, Wait: 5}, &pulled)
		if err != nil || len(pulled.Queries) != 1 {
			t.Fatalf("reclaim pull = %+v, %v", pulled, err)
		}
		complete := func(workerID int, lease float64) error {
			return conn.Complete(ctx, CompleteRequest{
				WorkerID: workerID, Role: "light", LeaseDeadline: lease,
				Items: []CompleteItem{{
					ID: 6, Arrival: 0.25, Variant: "sdturbo", Features: churnFeats, Confidence: 0.9,
				}},
			})
		}
		if err := complete(1, pullA.LeaseDeadline); err != nil {
			t.Fatal(err)
		}
		if err := complete(2, pulled.LeaseDeadline); err != nil {
			t.Fatal(err)
		}
		for got = 0; got < 1; {
			if err := PollResultsIntoConn(ctx, conn, ResultsRequest{Max: 8, Wait: 5}, &churn); err != nil || len(churn.Results) == 0 {
				t.Fatalf("reclaim result missing: %v", err)
			}
			got += len(churn.Results)
		}

		// The result delivered before all that churn is untouched.
		checkDelivered(delivered.Results[0])
	})

	t.Run("retry-after-sever", func(t *testing.T) {
		// A retrying conn over a FaultTransport-severed wire heals on
		// every transport: calls during the sever window fail with a
		// transient classified error, the backoff outlasts the window,
		// and the full round trip then resolves exactly once.
		clock := NewClock(0.001)
		ftp := NewFaultTransport(tc.mk(), FaultPlan{Clock: clock})
		defer ftp.Close()
		lb := NewLBServer(LBConfig{
			Mode: loadbalancer.ModeCascade, SLO: 1e9,
			LightMinExec: 0.1, HeavyMinExec: 1.78,
			Clock: clock, Seed: 1, CoalesceWait: 1e-9,
		})
		connA := serveTestLB(t, ftp, lb) // conn index 0
		connB := serveTestLB(t, ftp, lb) // conn index 1
		ctx := context.Background()

		// Conn 1 is severed for good: its calls fail immediately and
		// the failure is classified transient (the harness's
		// abort-on-fatal watcher must not kill a run over it).
		ftp.Partition(1, 0, 1e18, FaultSever)
		if err := connB.SubmitBatch(ctx, SubmitRequest{Queries: []QueryMsg{{ID: 9}}}); err == nil {
			t.Fatal("submit over a severed conn succeeded")
		} else if !IsTransientTransportError(err) {
			t.Fatalf("injected sever classified fatal: %v", err)
		}
		select {
		case err := <-ftp.Errors():
			if !IsTransientTransportError(err) {
				t.Fatalf("Errors() event classified fatal: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("injected fault never surfaced on Errors()")
		}

		// Conn 0 is severed for a bounded window; the retry policy's
		// minimum cumulative backoff crosses the window's end well
		// before the attempt budget runs out.
		now := clock.Now()
		ftp.Partition(0, now, now+50, FaultSever) // 50 trace-secs = 50 ms wall
		retry := NewRetryingLBConn(connA, RetryPolicy{
			Attempts: 8, Base: 10 * time.Millisecond, Cap: 50 * time.Millisecond, Seed: 3,
		})
		err := retry.SubmitBatch(ctx, SubmitRequest{Queries: []QueryMsg{
			{ID: 1, Arrival: 0.001}, {ID: 2, Arrival: 0.001},
		}})
		if err != nil {
			t.Fatalf("retrying submit never healed: %v", err)
		}
		pulled, err := retry.Pull(ctx, PullRequest{WorkerID: 1, Role: "light", Max: 8, Wait: 5})
		if err != nil || len(pulled.Queries) != 2 {
			t.Fatalf("pull after heal = %+v, %v", pulled, err)
		}
		items := make([]CompleteItem, len(pulled.Queries))
		for i, q := range pulled.Queries {
			items[i] = CompleteItem{ID: q.ID, Arrival: q.Arrival, Variant: "sdturbo", Confidence: 0.9}
		}
		err = retry.Complete(ctx, CompleteRequest{WorkerID: 1, Role: "light", LeaseDeadline: pulled.LeaseDeadline, Items: items})
		if err != nil {
			t.Fatal(err)
		}
		got := map[int]bool{}
		for len(got) < 2 {
			res, err := retry.PollResults(ctx, ResultsRequest{Max: 8, Wait: 5})
			if err != nil || len(res.Results) == 0 {
				t.Fatalf("results after heal missing: %v (got %v)", err, got)
			}
			for _, r := range res.Results {
				if got[r.ID] {
					t.Fatalf("result %d delivered twice", r.ID)
				}
				got[r.ID] = true
			}
		}
		st, err := retry.Stats(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if st.Completed != 2 || st.Dropped != 0 {
			t.Errorf("stats = %d completed / %d dropped, want 2 / 0", st.Completed, st.Dropped)
		}
	})

	t.Run("epoch-flip-atomic-submit", func(t *testing.T) {
		// A submit batch racing a reshard must land entirely in one
		// epoch on every transport: for each batch there is a single
		// epoch whose ring explains where every query of the batch
		// surfaced. A batch straddling two rings would split brains —
		// half the IDs on the old placement, half on the new.
		tp := tc.mk()
		defer tp.Close()
		clock := NewClock(0.001)
		const shards = 2
		mkShard := func(m int) (*LBServer, LBConn) {
			lb := NewLBServer(LBConfig{
				Mode: loadbalancer.ModeCascade, SLO: 1e9,
				LightMinExec: 0.1, HeavyMinExec: 1.78,
				Clock: clock, Seed: 1, RNGStream: fmt.Sprintf("lb/%d", m),
				CoalesceWait: 1e-9,
			})
			return lb, serveTestLB(t, tp, lb)
		}
		conns := make([]LBConn, shards)
		for i := range conns {
			_, conns[i] = mkShard(i)
		}
		fe, err := NewShardedLB(ShardedLBConfig{Shards: conns, Clock: clock, VNodes: 64})
		if err != nil {
			t.Fatal(err)
		}
		defer fe.Close()

		ctx := context.Background()
		const nBatches, perBatch = 40, 6
		stop := make(chan struct{})
		var submitWG sync.WaitGroup
		submitWG.Add(1)
		go func() { // submitter races the AddShard below
			defer submitWG.Done()
			for b := 0; b < nBatches; b++ {
				qs := make([]QueryMsg, perBatch)
				for i := range qs {
					qs[i] = QueryMsg{ID: b*perBatch + i, Arrival: 0.001}
				}
				if err := fe.SubmitBatch(ctx, SubmitRequest{Queries: qs}); err != nil {
					t.Errorf("submit: %v", err)
					return
				}
			}
			close(stop)
		}()
		time.Sleep(time.Millisecond)
		_, conn2 := mkShard(2)
		if err := fe.AddShard(ctx, 2, conn2); err != nil {
			t.Fatal(err)
		}
		<-stop
		submitWG.Wait()

		// Locate every query via drain pulls (adds migrate nothing, so
		// placement still reflects the submit-time epoch).
		loc := map[int]int{}
		for m := 0; m <= 2; m++ {
			conn := fe.MemberConn(m)
			for {
				resp, err := conn.Pull(ctx, PullRequest{Role: "light", Max: 64, Drain: true})
				if err != nil {
					t.Fatal(err)
				}
				if len(resp.Queries) == 0 {
					break
				}
				for _, q := range resp.Queries {
					if _, dup := loc[q.ID]; dup {
						t.Errorf("query %d queued on two shards", q.ID)
					}
					loc[q.ID] = m
				}
			}
		}
		if len(loc) != nBatches*perBatch {
			t.Fatalf("located %d of %d queries", len(loc), nBatches*perBatch)
		}
		rings := fe.epochRings()
		if len(rings) != 2 {
			t.Fatalf("%d epochs installed, want 2", len(rings))
		}
		for b := 0; b < nBatches; b++ {
			consistent := false
			for _, ring := range rings {
				all := true
				for i := 0; i < perBatch; i++ {
					id := b*perBatch + i
					if loc[id] != ring.Owner(id) {
						all = false
						break
					}
				}
				if all {
					consistent = true
					break
				}
			}
			if !consistent {
				placements := map[int]int{}
				for i := 0; i < perBatch; i++ {
					placements[b*perBatch+i] = loc[b*perBatch+i]
				}
				t.Errorf("batch %d straddles epochs: %v", b, placements)
			}
		}
	})

	t.Run("pull-longpoll-blocks-until-work", func(t *testing.T) {
		tp := tc.mk()
		defer tp.Close()
		lb := newTestLB(0.01)
		conn := serveTestLB(t, tp, lb)
		go func() {
			time.Sleep(30 * time.Millisecond)
			lb.SubmitBatch([]QueryMsg{{ID: 11, Arrival: 0.001}})
		}()
		start := time.Now()
		// Wait 10 trace seconds = 100ms wall; work arrives at ~30ms.
		resp, err := conn.Pull(context.Background(), PullRequest{Role: "light", Max: 1, Wait: 10})
		if err != nil || len(resp.Queries) != 1 || resp.Queries[0].ID != 11 {
			t.Fatalf("long poll returned %+v, %v", resp.Queries, err)
		}
		if wall := time.Since(start); wall < 20*time.Millisecond || wall > 3*time.Second {
			t.Errorf("long poll returned after %v, want ~30ms", wall)
		}
		lb.DrainRemaining()
	})

	t.Run("pull-longpoll-honors-deadline", func(t *testing.T) {
		tp := tc.mk()
		defer tp.Close()
		conn := serveTestLB(t, tp, newTestLB(0.01))
		start := time.Now()
		resp, err := conn.Pull(context.Background(), PullRequest{Role: "light", Max: 1, Wait: 3})
		if err != nil || len(resp.Queries) != 0 {
			t.Fatalf("empty queue long poll returned %+v, %v", resp.Queries, err)
		}
		// 3 trace seconds at 0.01 = 30ms wall.
		if wall := time.Since(start); wall < 20*time.Millisecond || wall > 3*time.Second {
			t.Errorf("long poll deadline after %v, want ~30ms", wall)
		}
	})

	t.Run("shutdown-while-longpolling", func(t *testing.T) {
		tp := tc.mk()
		conn := serveTestLB(t, tp, newTestLB(0.01))

		var wg sync.WaitGroup
		returned := make(chan struct{})
		wg.Add(1)
		go func() {
			defer wg.Done()
			// 120 trace seconds = 1.2s of wall time at this timescale;
			// a shutdown-aware transport unblocks the poll sooner, and
			// none may hang past the poll's own deadline.
			resp, err := conn.Pull(context.Background(), PullRequest{Role: "light", Max: 1, Wait: 120})
			if err == nil && len(resp.Queries) != 0 {
				t.Errorf("shutdown long poll returned work: %+v", resp.Queries)
			}
			close(returned)
		}()
		time.Sleep(50 * time.Millisecond) // let the poll reach the server
		tp.Close()
		select {
		case <-returned:
		case <-time.After(10 * time.Second):
			t.Fatal("long poll still blocked 10s after transport close")
		}
		wg.Wait()
	})

	t.Run("submit-after-close", func(t *testing.T) {
		tp := tc.mk()
		conn := serveTestLB(t, tp, newTestLB(0.001))
		tp.Close()

		done := make(chan error, 1)
		go func() {
			done <- conn.SubmitBatch(context.Background(), SubmitRequest{Queries: []QueryMsg{{ID: 1, Arrival: 0.001}}})
		}()
		select {
		case err := <-done:
			if tc.failsAfterClose && err == nil {
				t.Error("submit after close succeeded on a networked transport")
			}
			if !tc.failsAfterClose && err != nil {
				t.Errorf("submit after close failed on the in-process transport: %v", err)
			}
		case <-time.After(15 * time.Second):
			t.Fatal("submit after close hung")
		}
		if _, err := conn.Stats(context.Background()); tc.failsAfterClose && err == nil {
			t.Error("stats after close succeeded on a networked transport")
		}
	})
}

// serveTestLB registers lb on the transport and fails the test on
// error.
func serveTestLB(t *testing.T, tp Transport, lb *LBServer) LBConn {
	t.Helper()
	conn, err := tp.ServeLB(lb)
	if err != nil {
		t.Fatal(err)
	}
	return conn
}
