package cluster

import (
	"context"
	"math"
	"testing"
	"time"

	"diffserve/internal/loadbalancer"
	"diffserve/internal/trace"
)

func newTestLB(timescale float64) *LBServer {
	return NewLBServer(LBConfig{
		Mode: loadbalancer.ModeCascade, SLO: 50,
		LightMinExec: 0.1, HeavyMinExec: 1.78,
		Clock: NewClock(timescale), Seed: 1,
	})
}

func TestSleepTraceCtxInterruptible(t *testing.T) {
	c := NewClock(1) // 1 trace second = 1 wall second
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	if c.SleepTraceCtx(ctx, 30) {
		t.Error("interrupted sleep reported full elapse")
	}
	if wall := time.Since(start); wall > 5*time.Second {
		t.Errorf("cancelled sleep blocked for %v", wall)
	}
	if !c.SleepTraceCtx(context.Background(), 0.001) {
		t.Error("uninterrupted sleep should report true")
	}
	if c.SleepTraceCtx(ctx, 0.001) {
		t.Error("sleep under a cancelled context should report false")
	}
}

func TestPullLongPollCancellable(t *testing.T) {
	lb := newTestLB(1) // 60 trace seconds would be a minute of wall time
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	resp := lb.Pull(ctx, PullRequest{Role: "light", Max: 1, Wait: 60})
	if len(resp.Queries) != 0 {
		t.Fatalf("cancelled long poll returned %+v", resp.Queries)
	}
	if wall := time.Since(start); wall > 5*time.Second {
		t.Errorf("cancelled long poll blocked for %v", wall)
	}
}

func TestSubmitBatchResultsRoundTrip(t *testing.T) {
	lb := newTestLB(0.001)
	lb.SubmitBatch([]QueryMsg{{ID: 1, Arrival: 0.001}, {ID: 2, Arrival: 0.001}})

	pulled := lb.Pull(context.Background(), PullRequest{Role: "light", Max: 2, Wait: 5})
	if len(pulled.Queries) != 2 {
		t.Fatalf("pulled %+v", pulled.Queries)
	}
	items := make([]CompleteItem, len(pulled.Queries))
	for i, q := range pulled.Queries {
		items[i] = CompleteItem{ID: q.ID, Arrival: q.Arrival, Variant: "sdturbo", Confidence: 0.9}
	}
	lb.Complete(CompleteRequest{Role: "light", Items: items})

	got := map[int]bool{}
	for len(got) < 2 {
		resp := lb.PollResults(context.Background(), ResultsRequest{Max: 10, Wait: 5})
		if len(resp.Results) == 0 {
			t.Fatal("PollResults returned empty before all results arrived")
		}
		for _, r := range resp.Results {
			if r.Dropped || r.Variant != "sdturbo" {
				t.Errorf("result %+v", r)
			}
			got[r.ID] = true
		}
	}
	if !got[1] || !got[2] {
		t.Errorf("missing results: %v", got)
	}
	if lb.Collector().Len() != 2 {
		t.Errorf("collector has %d records", lb.Collector().Len())
	}
}

// TestDrainRefusesLatePushes pins the end-of-run shutdown semantics:
// once DrainRemaining has swept the queues, a submission or a
// cascade deferral that lost the race with the sweep must resolve as
// a drop — never sit stranded in a queue no worker will pull again.
func TestDrainRefusesLatePushes(t *testing.T) {
	lb := newTestLB(0.001)
	lb.Configure(ConfigureLBRequest{Threshold: 0.8})

	// A query pulled by a worker while the drain runs...
	lb.SubmitBatch([]QueryMsg{{ID: 1, Arrival: 0.001}})
	pulled := lb.Pull(context.Background(), PullRequest{Role: "light", Max: 1, Wait: 5})
	if len(pulled.Queries) != 1 {
		t.Fatalf("pulled %+v", pulled.Queries)
	}
	lb.DrainRemaining()

	// ...completes below threshold afterwards: the deferral must not
	// strand, and late submissions must drop too.
	lb.Complete(CompleteRequest{Role: "light", Items: []CompleteItem{
		{ID: 1, Arrival: 0.001, Variant: "sdturbo", Confidence: 0.2},
	}})
	lb.SubmitBatch([]QueryMsg{{ID: 2, Arrival: 0.002}})

	got := map[int]bool{}
	for len(got) < 2 {
		resp := lb.PollResults(context.Background(), ResultsRequest{Max: 10, Wait: 5})
		if len(resp.Results) == 0 {
			t.Fatalf("late pushes never resolved: have %v", got)
		}
		for _, r := range resp.Results {
			if !r.Dropped {
				t.Errorf("post-drain result %+v, want dropped", r)
			}
			got[r.ID] = true
		}
	}
	if stats := lb.Stats(); stats.HeavyQueueLen != 0 || stats.LightQueueLen != 0 {
		t.Errorf("post-drain queues not empty: %+v", stats)
	}
}

// Conn-level behavioral assertions (query round trips, worker conns,
// long-poll semantics, shutdown cases) live in the conformance suite:
// see TestTransportConformance in conformance_test.go, which runs
// them over every transport × codec combination.

// TestHarnessTransportEquivalence replays the same lightly loaded
// trace at a fixed seed through all four transports and requires
// identical completed/dropped outcomes: with ample capacity the
// outcome set is timing-insensitive, so any divergence indicates a
// transport bug rather than scheduling noise.
func TestHarnessTransportEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("transport equivalence harness skipped in -short mode")
	}
	f := newFixtures(t)
	tr, err := trace.Static(6, 15, 1)
	if err != nil {
		t.Fatal(err)
	}
	type outcome struct {
		completed, dropped, queries int
		fid                         float64
	}
	outcomes := map[string]outcome{}
	for _, name := range []string{TransportJSON, TransportBinary, TransportInproc, TransportTCP} {
		res, err := Run(HarnessConfig{
			Space: f.space, Light: f.light, Heavy: f.heavy, Scorer: f.scorer,
			Mode: loadbalancer.ModeCascade, Workers: 8, SLO: 5,
			Trace: tr, Ctrl: f.controller(t, 8, 5),
			Timescale: 0.02, Seed: 4242, DisableLoadDelay: true,
			Transport: name,
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		sum := res.Summary()
		dropped := int(math.Round(sum.DropRatio * float64(sum.Queries)))
		outcomes[name] = outcome{
			completed: sum.Queries - dropped, dropped: dropped,
			queries: res.Queries, fid: sum.FID,
		}
		t.Logf("%-7s completed=%d dropped=%d FID=%.2f wall=%.2fs",
			name, outcomes[name].completed, outcomes[name].dropped, sum.FID, res.WallSeconds)
	}
	base := outcomes[TransportJSON]
	if base.dropped != 0 {
		t.Errorf("json transport dropped %d queries under light load", base.dropped)
	}
	for name, o := range outcomes {
		if o.queries != base.queries || o.completed != base.completed || o.dropped != base.dropped {
			t.Errorf("%s outcome %+v != json %+v", name, o, base)
		}
	}
}
