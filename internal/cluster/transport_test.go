package cluster

import (
	"context"
	"math"
	"testing"
	"time"

	"diffserve/internal/loadbalancer"
	"diffserve/internal/trace"
)

func newTestLB(timescale float64) *LBServer {
	return NewLBServer(LBConfig{
		Mode: loadbalancer.ModeCascade, SLO: 50,
		LightMinExec: 0.1, HeavyMinExec: 1.78,
		Clock: NewClock(timescale), Seed: 1,
	})
}

func TestSleepTraceCtxInterruptible(t *testing.T) {
	c := NewClock(1) // 1 trace second = 1 wall second
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	if c.SleepTraceCtx(ctx, 30) {
		t.Error("interrupted sleep reported full elapse")
	}
	if wall := time.Since(start); wall > 5*time.Second {
		t.Errorf("cancelled sleep blocked for %v", wall)
	}
	if !c.SleepTraceCtx(context.Background(), 0.001) {
		t.Error("uninterrupted sleep should report true")
	}
	if c.SleepTraceCtx(ctx, 0.001) {
		t.Error("sleep under a cancelled context should report false")
	}
}

func TestPullLongPollBlocksUntilWork(t *testing.T) {
	lb := newTestLB(0.01)
	go func() {
		time.Sleep(30 * time.Millisecond)
		lb.SubmitBatch([]QueryMsg{{ID: 11, Arrival: 0.001}})
	}()
	start := time.Now()
	// Wait 10 trace seconds = 100ms wall; work arrives at ~30ms.
	resp := lb.Pull(context.Background(), PullRequest{Role: "light", Max: 1, Wait: 10})
	if len(resp.Queries) != 1 || resp.Queries[0].ID != 11 {
		t.Fatalf("long poll returned %+v", resp.Queries)
	}
	if wall := time.Since(start); wall < 20*time.Millisecond || wall > 3*time.Second {
		t.Errorf("long poll returned after %v, want ~30ms", wall)
	}
	lb.DrainRemaining()
}

func TestPullLongPollHonorsDeadline(t *testing.T) {
	lb := newTestLB(0.01)
	start := time.Now()
	resp := lb.Pull(context.Background(), PullRequest{Role: "light", Max: 1, Wait: 3})
	if len(resp.Queries) != 0 {
		t.Fatalf("empty queue long poll returned %+v", resp.Queries)
	}
	// 3 trace seconds at 0.01 = 30ms wall.
	if wall := time.Since(start); wall < 20*time.Millisecond || wall > 3*time.Second {
		t.Errorf("long poll deadline after %v, want ~30ms", wall)
	}
}

func TestPullLongPollCancellable(t *testing.T) {
	lb := newTestLB(1) // 60 trace seconds would be a minute of wall time
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	resp := lb.Pull(ctx, PullRequest{Role: "light", Max: 1, Wait: 60})
	if len(resp.Queries) != 0 {
		t.Fatalf("cancelled long poll returned %+v", resp.Queries)
	}
	if wall := time.Since(start); wall > 5*time.Second {
		t.Errorf("cancelled long poll blocked for %v", wall)
	}
}

func TestSubmitBatchResultsRoundTrip(t *testing.T) {
	lb := newTestLB(0.001)
	lb.SubmitBatch([]QueryMsg{{ID: 1, Arrival: 0.001}, {ID: 2, Arrival: 0.001}})

	pulled := lb.Pull(context.Background(), PullRequest{Role: "light", Max: 2, Wait: 5})
	if len(pulled.Queries) != 2 {
		t.Fatalf("pulled %+v", pulled.Queries)
	}
	items := make([]CompleteItem, len(pulled.Queries))
	for i, q := range pulled.Queries {
		items[i] = CompleteItem{ID: q.ID, Arrival: q.Arrival, Variant: "sdturbo", Confidence: 0.9}
	}
	lb.Complete(CompleteRequest{Role: "light", Items: items})

	got := map[int]bool{}
	for len(got) < 2 {
		resp := lb.PollResults(context.Background(), ResultsRequest{Max: 10, Wait: 5})
		if len(resp.Results) == 0 {
			t.Fatal("PollResults returned empty before all results arrived")
		}
		for _, r := range resp.Results {
			if r.Dropped || r.Variant != "sdturbo" {
				t.Errorf("result %+v", r)
			}
			got[r.ID] = true
		}
	}
	if !got[1] || !got[2] {
		t.Errorf("missing results: %v", got)
	}
	if lb.Collector().Len() != 2 {
		t.Errorf("collector has %d records", lb.Collector().Len())
	}
}

// TestTransportsAgreeOnHTTPAndLocal drives the same single-query flow
// through the binary HTTP conn and the local conn and checks the
// responses match field for field.
func TestTransportsAgreeOnHTTPAndLocal(t *testing.T) {
	for _, name := range []string{TransportJSON, TransportBinary, TransportInproc} {
		t.Run(name, func(t *testing.T) {
			tp, err := NewTransport(name)
			if err != nil {
				t.Fatal(err)
			}
			defer tp.Close()
			lb := newTestLB(0.001)
			conn, err := tp.ServeLB(lb)
			if err != nil {
				t.Fatal(err)
			}

			respCh := make(chan QueryResponse, 1)
			errCh := make(chan error, 1)
			go func() {
				resp, err := conn.Submit(context.Background(), QueryMsg{ID: 7, Arrival: 0.001})
				errCh <- err
				respCh <- resp
			}()
			pulled, err := conn.Pull(context.Background(), PullRequest{Role: "light", Max: 1, Wait: 20})
			if err != nil || len(pulled.Queries) != 1 {
				t.Fatalf("pull = %+v, %v", pulled, err)
			}
			err = conn.Complete(context.Background(), CompleteRequest{Role: "light", Items: []CompleteItem{{
				ID: 7, Arrival: 0.001, Variant: "sdturbo",
				Features: []float64{1, 2}, Artifact: 0.5, Confidence: 0.9,
			}}})
			if err != nil {
				t.Fatal(err)
			}
			if err := <-errCh; err != nil {
				t.Fatal(err)
			}
			resp := <-respCh
			if resp.ID != 7 || resp.Dropped || resp.Variant != "sdturbo" ||
				len(resp.Features) != 2 || resp.Artifact != 0.5 || resp.Confidence != 0.9 {
				t.Errorf("response = %+v", resp)
			}

			if err := conn.Configure(context.Background(), ConfigureLBRequest{Threshold: 0.5}); err != nil {
				t.Fatal(err)
			}
			stats, err := conn.Stats(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if stats.Completed != 1 || stats.Dropped != 0 {
				t.Errorf("stats = %+v", stats)
			}
		})
	}
}

func TestWorkerConnAcrossTransports(t *testing.T) {
	f := newFixtures(t)
	for _, name := range []string{TransportJSON, TransportBinary, TransportInproc} {
		t.Run(name, func(t *testing.T) {
			tp, err := NewTransport(name)
			if err != nil {
				t.Fatal(err)
			}
			defer tp.Close()
			ws := NewWorkerServer(WorkerConfig{
				ID: 4, Space: f.space, Light: f.light, Heavy: f.heavy,
				Scorer: f.scorer, Clock: NewClock(0.001), DisableLoadDelay: true,
			})
			conn, err := tp.ServeWorker(ws)
			if err != nil {
				t.Fatal(err)
			}
			if err := conn.Configure(context.Background(), ConfigureWorkerRequest{Role: "heavy", Batch: 6}); err != nil {
				t.Fatal(err)
			}
			st, err := conn.Stats(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if st.ID != 4 || st.Role != "heavy" || st.Batch != 6 {
				t.Errorf("stats = %+v", st)
			}
		})
	}
}

// TestHarnessTransportEquivalence replays the same lightly loaded
// trace at a fixed seed through all three transports and requires
// identical completed/dropped outcomes: with ample capacity the
// outcome set is timing-insensitive, so any divergence indicates a
// transport bug rather than scheduling noise.
func TestHarnessTransportEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("transport equivalence harness skipped in -short mode")
	}
	f := newFixtures(t)
	tr, err := trace.Static(6, 15, 1)
	if err != nil {
		t.Fatal(err)
	}
	type outcome struct {
		completed, dropped, queries int
		fid                         float64
	}
	outcomes := map[string]outcome{}
	for _, name := range []string{TransportJSON, TransportBinary, TransportInproc} {
		res, err := Run(HarnessConfig{
			Space: f.space, Light: f.light, Heavy: f.heavy, Scorer: f.scorer,
			Mode: loadbalancer.ModeCascade, Workers: 8, SLO: 5,
			Trace: tr, Ctrl: f.controller(t, 8, 5),
			Timescale: 0.02, Seed: 4242, DisableLoadDelay: true,
			Transport: name,
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		sum := res.Summary()
		dropped := int(math.Round(sum.DropRatio * float64(sum.Queries)))
		outcomes[name] = outcome{
			completed: sum.Queries - dropped, dropped: dropped,
			queries: res.Queries, fid: sum.FID,
		}
		t.Logf("%-7s completed=%d dropped=%d FID=%.2f wall=%.2fs",
			name, outcomes[name].completed, outcomes[name].dropped, sum.FID, res.WallSeconds)
	}
	base := outcomes[TransportJSON]
	if base.dropped != 0 {
		t.Errorf("json transport dropped %d queries under light load", base.dropped)
	}
	for name, o := range outcomes {
		if o.queries != base.queries || o.completed != base.completed || o.dropped != base.dropped {
			t.Errorf("%s outcome %+v != json %+v", name, o, base)
		}
	}
}
