package cluster

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"time"
)

// TransportError classifies an event on Transport.Errors(): transient
// faults (an injected fault, a conn that severed and redialed) versus
// fatal ones (dial retries exhausted for good, a listener gone).
// Harnesses abort a run only on fatal events. A bare error on the
// channel is fatal — classification is opt-in, so reporters that
// predate it keep their abort semantics.
type TransportError struct {
	Err       error
	Transient bool
}

func (e *TransportError) Error() string {
	if e.Transient {
		return "transient transport fault: " + e.Err.Error()
	}
	return e.Err.Error()
}

func (e *TransportError) Unwrap() error { return e.Err }

// TransientTransportError wraps err as a transient (non-aborting)
// transport event.
func TransientTransportError(err error) error {
	return &TransportError{Err: err, Transient: true}
}

// IsTransientTransportError reports whether err is classified as
// transient. Unclassified errors are fatal.
func IsTransientTransportError(err error) bool {
	var te *TransportError
	return errors.As(err, &te) && te.Transient
}

// RetryPolicy bounds the exponential backoff a retrying conn applies
// to failed calls. Zero fields take the defaults noted per field; the
// zero policy as a whole is a sane client-side stance (4 tries, 5 ms
// doubling to 250 ms, full attempts-left jitter).
type RetryPolicy struct {
	// Attempts is the total number of tries per call, first included
	// (0 defaults to 4).
	Attempts int
	// Base is the backoff after the first failure; it doubles per
	// retry (0 defaults to 5 ms).
	Base time.Duration
	// Cap ceilings the backoff growth (0 defaults to 250 ms).
	Cap time.Duration
	// AttemptTimeout, when positive, derives a context deadline for
	// each individual attempt, so one hung call cannot eat the whole
	// retry budget. Zero passes the caller's context through.
	AttemptTimeout time.Duration
	// Seed drives the backoff jitter deterministically (same seed,
	// same jitter sequence).
	Seed uint64
}

func (p RetryPolicy) norm() RetryPolicy {
	if p.Attempts <= 0 {
		p.Attempts = 4
	}
	if p.Base <= 0 {
		p.Base = 5 * time.Millisecond
	}
	if p.Cap <= 0 {
		p.Cap = 250 * time.Millisecond
	}
	return p
}

// retryLBConn wraps an LBConn with bounded, jittered exponential
// backoff on the data-path calls (SubmitBatch, PollResults, Pull,
// Complete). It works over every transport: HTTP conns surface
// per-call errors, TCP conns surface redial failures, and the
// in-process conn never fails (the wrapper is then a pass-through).
//
// Retried calls stay exactly-once where it matters: the server
// resolves each query at most once regardless of how many times a
// request is delivered (duplicate submits re-queue, but the first
// resolution is final and later completions no-op), so retrying
// cannot double-resolve. What a retry cannot recover is a response
// lost after the server acted — a PollResults reply dropped in
// transit is gone from the client's view (the server already handed
// the results out); run accounting that must survive that failure
// mode reads the server-side collectors instead.
type retryLBConn struct {
	inner LBConn
	pol   RetryPolicy

	mu  sync.Mutex
	rng *rand.Rand
}

// NewRetryingLBConn wraps inner with the given retry policy.
func NewRetryingLBConn(inner LBConn, pol RetryPolicy) LBConn {
	pol = pol.norm()
	return &retryLBConn{
		inner: inner,
		pol:   pol,
		rng:   rand.New(rand.NewSource(int64(pol.Seed) ^ 0x5ebf6a42)),
	}
}

// backoff returns the jittered sleep before retry number n (n >= 1):
// Base doubling per retry, capped, scaled by a uniform [0.5, 1.5)
// factor so synchronized clients fan out.
func (c *retryLBConn) backoff(n int) time.Duration {
	d := c.pol.Base << uint(n-1)
	if d > c.pol.Cap || d <= 0 {
		d = c.pol.Cap
	}
	c.mu.Lock()
	f := 0.5 + c.rng.Float64()
	c.mu.Unlock()
	return time.Duration(float64(d) * f)
}

// do runs call with the policy's attempt deadline and retries failures
// until the attempt budget or the caller's context runs out.
func (c *retryLBConn) do(ctx context.Context, call func(context.Context) error) error {
	var err error
	for n := 1; ; n++ {
		actx, cancel := ctx, context.CancelFunc(func() {})
		if c.pol.AttemptTimeout > 0 {
			actx, cancel = context.WithTimeout(ctx, c.pol.AttemptTimeout)
		}
		err = call(actx)
		cancel()
		if err == nil || n >= c.pol.Attempts || ctx.Err() != nil {
			return err
		}
		t := time.NewTimer(c.backoff(n))
		select {
		case <-ctx.Done():
			t.Stop()
			return err
		case <-t.C:
		}
	}
}

func (c *retryLBConn) Submit(ctx context.Context, q QueryMsg) (QueryResponse, error) {
	// Blocking submits are not retried: the server may be holding the
	// waiter from a first delivery whose reply was lost, and a
	// re-submit would strand it. Batch admission is the retryable path.
	return c.inner.Submit(ctx, q)
}

func (c *retryLBConn) SubmitBatch(ctx context.Context, req SubmitRequest) error {
	return c.do(ctx, func(ctx context.Context) error { return c.inner.SubmitBatch(ctx, req) })
}

func (c *retryLBConn) PollResults(ctx context.Context, req ResultsRequest) (ResultsResponse, error) {
	var out ResultsResponse
	err := c.do(ctx, func(ctx context.Context) error {
		var e error
		out, e = c.inner.PollResults(ctx, req)
		return e
	})
	return out, err
}

func (c *retryLBConn) Pull(ctx context.Context, req PullRequest) (PullResponse, error) {
	var out PullResponse
	err := c.do(ctx, func(ctx context.Context) error {
		var e error
		out, e = c.inner.Pull(ctx, req)
		return e
	})
	return out, err
}

func (c *retryLBConn) PollResultsInto(ctx context.Context, req ResultsRequest, resp *ResultsResponse) error {
	return c.do(ctx, func(ctx context.Context) error {
		return PollResultsIntoConn(ctx, c.inner, req, resp)
	})
}

func (c *retryLBConn) PullInto(ctx context.Context, req PullRequest, resp *PullResponse) error {
	return c.do(ctx, func(ctx context.Context) error {
		return PullIntoConn(ctx, c.inner, req, resp)
	})
}

func (c *retryLBConn) Complete(ctx context.Context, req CompleteRequest) error {
	return c.do(ctx, func(ctx context.Context) error { return c.inner.Complete(ctx, req) })
}

func (c *retryLBConn) Configure(ctx context.Context, req ConfigureLBRequest) error {
	return c.inner.Configure(ctx, req)
}

func (c *retryLBConn) Stats(ctx context.Context) (LBStats, error) {
	// Control-plane polls are not retried: the controller has its own
	// cadence, and masking consecutive misses here would defeat its
	// stale-plan failover.
	return c.inner.Stats(ctx)
}

func (c *retryLBConn) Membership(ctx context.Context) (MembershipResponse, error) {
	// Membership reads are idempotent (a pure snapshot, no server-side
	// effect), so unlike Stats they retry: a follower whose poll hits a
	// transient fault should still converge within the same interval.
	src, ok := c.inner.(MembershipSource)
	if !ok {
		return MembershipResponse{}, errors.New("cluster: inner conn does not report membership")
	}
	var out MembershipResponse
	err := c.do(ctx, func(ctx context.Context) error {
		var e error
		out, e = src.Membership(ctx)
		return e
	})
	return out, err
}
