package cluster

import (
	"encoding/json"
	"net/http"
	"sync"

	"diffserve/internal/loadbalancer"
	"diffserve/internal/metrics"
	"diffserve/internal/queueing"
	"diffserve/internal/stats"
)

// LBConfig parameterizes the load-balancer server.
type LBConfig struct {
	// Mode selects the routing policy.
	Mode loadbalancer.Mode
	// SLO is the latency deadline in trace seconds.
	SLO float64
	// LightMinExec and HeavyMinExec are the batch-1 execution times
	// used for predicted-deadline-miss shedding.
	LightMinExec, HeavyMinExec float64
	// Clock provides trace time.
	Clock *Clock
	// Seed drives random-split routing.
	Seed uint64
	// QueueWindow sizes arrival-rate windows (trace seconds).
	QueueWindow float64
	// CoalesceWait bounds how long a pull waits for a batch to fill:
	// a pull for Max items returns empty while the queue holds fewer
	// than Max items AND the oldest has been queued for less than
	// CoalesceWait. Without it, concurrently polling workers shred
	// deferral groups into batch-1 executions and halve pool
	// throughput. Zero defaults to min(0.5s, SLO/10).
	CoalesceWait float64
}

// LBServer is the data-path entry point: it queues queries per pool,
// hands batches to pulling workers, applies the cascade threshold to
// completed light generations, and resolves client waiters.
type LBServer struct {
	cfg LBConfig

	mu        sync.Mutex
	lb        *loadbalancer.LB
	threshold float64
	waiters   map[int]chan QueryResponse
	arrived   map[int]float64 // query ID -> arrival (trace time)
	col       *metrics.Collector
	arrivals  int // since last stats poll
	timeouts  int // since last stats poll
	completed int
	dropped   int
}

// NewLBServer constructs a load balancer.
func NewLBServer(cfg LBConfig) *LBServer {
	if cfg.QueueWindow <= 0 {
		cfg.QueueWindow = 10
	}
	if cfg.CoalesceWait <= 0 {
		cfg.CoalesceWait = cfg.SLO / 10
		if cfg.CoalesceWait > 0.5 {
			cfg.CoalesceWait = 0.5
		}
	}
	return &LBServer{
		cfg:     cfg,
		lb:      loadbalancer.New(cfg.Mode, cfg.QueueWindow, stats.NewRNG(cfg.Seed)),
		waiters: make(map[int]chan QueryResponse),
		arrived: make(map[int]float64),
		col:     metrics.NewCollector(),
	}
}

// Collector exposes the LB's metrics records (read after the run).
func (s *LBServer) Collector() *metrics.Collector { return s.col }

// Mux returns the HTTP handler exposing the LB API.
func (s *LBServer) Mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/pull", s.handlePull)
	mux.HandleFunc("/complete", s.handleComplete)
	mux.HandleFunc("/configure", s.handleConfigure)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	return mux
}

// handleQuery admits a query and blocks until it completes or drops.
func (s *LBServer) handleQuery(w http.ResponseWriter, r *http.Request) {
	var q QueryMsg
	if err := json.NewDecoder(r.Body).Decode(&q); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	now := s.cfg.Clock.Now()
	if q.Arrival == 0 {
		q.Arrival = now
	}
	ch := make(chan QueryResponse, 1)

	s.mu.Lock()
	s.waiters[q.ID] = ch
	s.arrived[q.ID] = q.Arrival
	s.arrivals++
	s.lb.Route(now, queueing.Item{ID: q.ID, Arrival: q.Arrival})
	s.mu.Unlock()

	select {
	case resp := <-ch:
		writeJSON(w, resp)
	case <-r.Context().Done():
		s.mu.Lock()
		delete(s.waiters, q.ID)
		s.mu.Unlock()
	}
}

// handlePull hands up to Max queued queries to a worker, shedding
// queries that can no longer meet their deadline.
func (s *LBServer) handlePull(w http.ResponseWriter, r *http.Request) {
	var req PullRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	pool := loadbalancer.PoolLight
	minExec := s.cfg.LightMinExec
	if req.Role == "heavy" {
		pool = loadbalancer.PoolHeavy
		minExec = s.cfg.HeavyMinExec
	}
	now := s.cfg.Clock.Now()

	s.mu.Lock()
	q := s.lb.Queue(pool)
	for _, it := range q.DropWhere(func(it queueing.Item) bool {
		return now+minExec > it.Arrival+s.cfg.SLO
	}) {
		s.dropLocked(it.ID, it.Arrival)
	}
	// Batch coalescing: let the batch fill unless the head of the
	// queue has already waited its share. Waiting longer than one
	// batch-1 execution is never worthwhile, so the wait is capped
	// per pool by its execution time.
	wait := s.cfg.CoalesceWait
	if minExec < wait {
		wait = minExec
	}
	var items []queueing.Item
	if q.Len() >= req.Max {
		items = q.Pop(now, req.Max)
	} else if oldest, ok := q.PeekEnqueue(); ok && now-oldest >= wait {
		items = q.Pop(now, req.Max)
	}
	s.mu.Unlock()

	resp := PullResponse{}
	for _, it := range items {
		resp.Queries = append(resp.Queries, QueryMsg{ID: it.ID, Arrival: it.Arrival})
	}
	writeJSON(w, resp)
}

// handleComplete receives a finished batch: light-pool results are
// thresholded (serve or defer); heavy-pool results always serve.
func (s *LBServer) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req CompleteRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	now := s.cfg.Clock.Now()

	s.mu.Lock()
	defer s.mu.Unlock()
	for _, item := range req.Items {
		cascadeLight := req.Role == "light" && s.cfg.Mode == loadbalancer.ModeCascade
		if cascadeLight && item.Confidence < s.threshold {
			s.lb.Defer(now, queueing.Item{ID: item.ID, Arrival: item.Arrival})
			continue
		}
		s.completeLocked(item, now, req.Role == "heavy")
	}
	w.WriteHeader(http.StatusOK)
}

// completeLocked resolves a waiter and records the outcome.
func (s *LBServer) completeLocked(item CompleteItem, now float64, deferred bool) {
	rec := metrics.QueryRecord{
		ID:         item.ID,
		Arrival:    item.Arrival,
		Completion: now,
		Deadline:   item.Arrival + s.cfg.SLO,
		Deferred:   deferred,
		ServedBy:   item.Variant,
		Confidence: item.Confidence,
		Features:   item.Features,
		Artifact:   item.Artifact,
	}
	if rec.Violated() {
		s.timeouts++
	}
	s.col.Record(rec)
	s.completed++
	if ch, ok := s.waiters[item.ID]; ok {
		ch <- QueryResponse{
			ID: item.ID, Variant: item.Variant, Features: item.Features,
			Artifact: item.Artifact, Confidence: item.Confidence,
			Deferred: deferred, Arrival: item.Arrival, Completion: now,
		}
		delete(s.waiters, item.ID)
	}
	delete(s.arrived, item.ID)
}

// dropLocked sheds a query.
func (s *LBServer) dropLocked(id int, arrival float64) {
	s.col.Record(metrics.QueryRecord{
		ID: id, Arrival: arrival, Deadline: arrival + s.cfg.SLO, Dropped: true,
	})
	s.dropped++
	s.timeouts++
	if ch, ok := s.waiters[id]; ok {
		ch <- QueryResponse{ID: id, Dropped: true, Arrival: arrival}
		delete(s.waiters, id)
	}
	delete(s.arrived, id)
}

// handleConfigure updates threshold / split probability.
func (s *LBServer) handleConfigure(w http.ResponseWriter, r *http.Request) {
	var req ConfigureLBRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	s.threshold = req.Threshold
	s.lb.SetSplit(req.SplitProb)
	s.mu.Unlock()
	w.WriteHeader(http.StatusOK)
}

// handleStats reports control-plane statistics and resets the
// per-tick counters.
func (s *LBServer) handleStats(w http.ResponseWriter, r *http.Request) {
	now := s.cfg.Clock.Now()
	s.mu.Lock()
	snap := s.lb.Snap(now)
	out := LBStats{
		Now:               now,
		LightQueueLen:     snap.Light.Len,
		HeavyQueueLen:     snap.Heavy.Len,
		LightArrivalRate:  snap.Light.ArrivalRate,
		HeavyArrivalRate:  snap.Heavy.ArrivalRate,
		ArrivalsSinceTick: s.arrivals,
		TimeoutsSinceTick: s.timeouts,
		Completed:         s.completed,
		Dropped:           s.dropped,
	}
	s.arrivals = 0
	s.timeouts = 0
	s.mu.Unlock()
	writeJSON(w, out)
}

// DrainRemaining drops every still-queued query (end of run).
func (s *LBServer) DrainRemaining() {
	now := s.cfg.Clock.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, pool := range []loadbalancer.PoolID{loadbalancer.PoolLight, loadbalancer.PoolHeavy} {
		q := s.lb.Queue(pool)
		for _, it := range q.Pop(now, q.Len()) {
			s.dropLocked(it.ID, it.Arrival)
		}
	}
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
