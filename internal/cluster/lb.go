package cluster

import (
	"context"
	"io"
	"net/http"
	"sync"
	"time"

	"diffserve/internal/loadbalancer"
	"diffserve/internal/metrics"
	"diffserve/internal/queueing"
	"diffserve/internal/stats"
)

// LBConfig parameterizes the load-balancer server.
type LBConfig struct {
	// Mode selects the routing policy.
	Mode loadbalancer.Mode
	// SLO is the latency deadline in trace seconds.
	SLO float64
	// LightMinExec and HeavyMinExec are the batch-1 execution times
	// used for predicted-deadline-miss shedding.
	LightMinExec, HeavyMinExec float64
	// Clock provides trace time.
	Clock *Clock
	// Seed drives random-split routing.
	Seed uint64
	// QueueWindow sizes arrival-rate windows (trace seconds).
	QueueWindow float64
	// CoalesceWait bounds how long a pull waits for a batch to fill:
	// a pull for Max items returns empty while the queue holds fewer
	// than Max items AND the oldest has been queued for less than
	// CoalesceWait. Without it, concurrently polling workers shred
	// deferral groups into batch-1 executions and halve pool
	// throughput. Zero defaults to min(0.5s, SLO/10).
	CoalesceWait float64
}

// LBServer is the data-path entry point: it queues queries per pool,
// hands batches to pulling workers (blocking long polls when asked),
// applies the cascade threshold to completed light generations, and
// resolves client waiters. Its core methods (Submit, SubmitBatch,
// PollResults, Pull, Complete, Configure, Stats) are
// transport-agnostic; Mux wraps them in codec-aware HTTP handlers and
// NewLocalLBConn dispatches to them directly.
type LBServer struct {
	cfg LBConfig

	mu        sync.Mutex
	lb        *loadbalancer.LB
	threshold float64
	waiters   map[int]chan QueryResponse
	async     map[int]struct{} // batch-submitted queries awaiting results
	results   []QueryResponse  // finished async results not yet fetched
	arrived   map[int]float64  // query ID -> arrival (trace time)
	col       *metrics.Collector
	arrivals  int // since last stats poll
	timeouts  int // since last stats poll
	completed int
	dropped   int
	// Long-poll wakeups: closed-and-replaced broadcast channels, one
	// for queued work (worker pulls) and one for finished results
	// (client polls). resultsDirty batches the results wakeup: a
	// whole Complete batch signals once, not once per query.
	wakeWork     chan struct{}
	wakeResults  chan struct{}
	resultsDirty bool
}

// NewLBServer constructs a load balancer.
func NewLBServer(cfg LBConfig) *LBServer {
	if cfg.QueueWindow <= 0 {
		cfg.QueueWindow = 10
	}
	if cfg.CoalesceWait <= 0 {
		cfg.CoalesceWait = cfg.SLO / 10
		if cfg.CoalesceWait > 0.5 {
			cfg.CoalesceWait = 0.5
		}
	}
	return &LBServer{
		cfg:         cfg,
		lb:          loadbalancer.New(cfg.Mode, cfg.QueueWindow, stats.NewRNG(cfg.Seed)),
		waiters:     make(map[int]chan QueryResponse),
		async:       make(map[int]struct{}),
		arrived:     make(map[int]float64),
		col:         metrics.NewCollector(),
		wakeWork:    make(chan struct{}),
		wakeResults: make(chan struct{}),
	}
}

// Collector exposes the LB's metrics records (read after the run).
func (s *LBServer) Collector() *metrics.Collector { return s.col }

// signal wakes every goroutine blocked on *ch and re-arms it. Callers
// must hold s.mu.
func signal(ch *chan struct{}) {
	close(*ch)
	*ch = make(chan struct{})
}

// Mux returns the HTTP handler exposing the LB API. Handlers decode
// the request with the codec named by its Content-Type (JSON when
// absent) and respond in kind.
func (s *LBServer) Mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/submit", s.handleSubmit)
	mux.HandleFunc("/results", s.handleResults)
	mux.HandleFunc("/pull", s.handlePull)
	mux.HandleFunc("/complete", s.handleComplete)
	mux.HandleFunc("/configure", s.handleConfigure)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	return mux
}

// Submit admits a query and blocks until it completes, drops, or ctx
// is cancelled (reported by ok=false).
func (s *LBServer) Submit(ctx context.Context, q QueryMsg) (resp QueryResponse, ok bool) {
	now := s.cfg.Clock.Now()
	if q.Arrival == 0 {
		q.Arrival = now
	}
	ch := make(chan QueryResponse, 1)

	s.mu.Lock()
	s.waiters[q.ID] = ch
	s.arrived[q.ID] = q.Arrival
	s.arrivals++
	s.lb.Route(now, queueing.Item{ID: q.ID, Arrival: q.Arrival})
	signal(&s.wakeWork)
	s.mu.Unlock()

	select {
	case resp = <-ch:
		return resp, true
	case <-ctx.Done():
		s.mu.Lock()
		delete(s.waiters, q.ID)
		s.mu.Unlock()
		return QueryResponse{}, false
	}
}

// SubmitBatch admits queries asynchronously: each will eventually
// surface exactly one result (completion or drop) via PollResults.
func (s *LBServer) SubmitBatch(qs []QueryMsg) {
	if len(qs) == 0 {
		return
	}
	now := s.cfg.Clock.Now()
	s.mu.Lock()
	for _, q := range qs {
		if q.Arrival == 0 {
			q.Arrival = now
		}
		s.async[q.ID] = struct{}{}
		s.arrived[q.ID] = q.Arrival
		s.arrivals++
		s.lb.Route(now, queueing.Item{ID: q.ID, Arrival: q.Arrival})
	}
	signal(&s.wakeWork)
	s.mu.Unlock()
}

// PollResults returns finished async results, blocking up to req.Wait
// trace-seconds for at least one to arrive.
func (s *LBServer) PollResults(ctx context.Context, req ResultsRequest) ResultsResponse {
	max := req.Max
	if max <= 0 {
		max = 256
	}
	var deadline time.Time
	if req.Wait > 0 {
		deadline = time.Now().Add(s.cfg.Clock.WallDuration(req.Wait))
	}
	for {
		s.mu.Lock()
		if n := len(s.results); n > 0 {
			if n > max {
				n = max
			}
			out := make([]QueryResponse, n)
			copy(out, s.results)
			s.results = append(s.results[:0], s.results[n:]...)
			s.mu.Unlock()
			return ResultsResponse{Results: out}
		}
		wake := s.wakeResults
		s.mu.Unlock()

		remain := time.Until(deadline)
		if req.Wait <= 0 || remain <= 0 {
			return ResultsResponse{}
		}
		t := time.NewTimer(remain)
		select {
		case <-ctx.Done():
			t.Stop()
			return ResultsResponse{}
		case <-wake:
			t.Stop()
		case <-t.C:
		}
	}
}

// handleQuery admits a query and blocks until it completes or drops.
func (s *LBServer) handleQuery(w http.ResponseWriter, r *http.Request) {
	var q QueryMsg
	codec, err := readMsg(r, &q)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	resp, ok := s.Submit(r.Context(), q)
	if !ok {
		return // client went away
	}
	writeMsg(w, codec, &resp)
}

// handleSubmit admits an async query batch.
func (s *LBServer) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if _, err := readMsg(r, &req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.SubmitBatch(req.Queries)
	w.WriteHeader(http.StatusOK)
}

// handleResults long-polls for async results.
func (s *LBServer) handleResults(w http.ResponseWriter, r *http.Request) {
	var req ResultsRequest
	codec, err := readMsg(r, &req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	resp := s.PollResults(r.Context(), req)
	writeMsg(w, codec, &resp)
}

// Pull hands up to req.Max queued queries to a worker, shedding
// queries that can no longer meet their deadline. With req.Wait > 0
// it long-polls: the call blocks until a batch is dispatchable under
// the coalescing policy or the wait expires.
func (s *LBServer) Pull(ctx context.Context, req PullRequest) PullResponse {
	pool := loadbalancer.PoolLight
	minExec := s.cfg.LightMinExec
	if req.Role == "heavy" {
		pool = loadbalancer.PoolHeavy
		minExec = s.cfg.HeavyMinExec
	}
	var deadline time.Time
	if req.Wait > 0 {
		deadline = time.Now().Add(s.cfg.Clock.WallDuration(req.Wait))
	}
	for {
		now := s.cfg.Clock.Now()
		s.mu.Lock()
		items, retry := s.dequeueLocked(pool, minExec, req.Max, now)
		s.flushResultsLocked() // dequeueLocked may have shed (dropped) queries
		wake := s.wakeWork
		s.mu.Unlock()

		if len(items) > 0 {
			resp := PullResponse{Queries: make([]QueryMsg, len(items))}
			for i, it := range items {
				resp.Queries[i] = QueryMsg{ID: it.ID, Arrival: it.Arrival}
			}
			return resp
		}
		remain := time.Until(deadline)
		if req.Wait <= 0 || remain <= 0 {
			return PullResponse{}
		}
		// Sleep until new work arrives, the head's coalesce window
		// expires, or the long-poll deadline — whichever is first.
		sleep := remain
		if retry > 0 {
			if d := s.cfg.Clock.WallDuration(retry); d < sleep {
				sleep = d
			}
		}
		if sleep < time.Millisecond {
			sleep = time.Millisecond
		}
		t := time.NewTimer(sleep)
		select {
		case <-ctx.Done():
			t.Stop()
			return PullResponse{}
		case <-wake:
			t.Stop()
		case <-t.C:
		}
	}
}

// dequeueLocked sheds expired queries, then dequeues a batch if one
// is dispatchable under the coalescing policy. When the queue holds a
// not-yet-dispatchable partial batch it returns the trace-seconds
// until the head's coalesce window expires, so long polls can wake
// exactly then.
func (s *LBServer) dequeueLocked(pool loadbalancer.PoolID, minExec float64, max int, now float64) (items []queueing.Item, retry float64) {
	q := s.lb.Queue(pool)
	for _, it := range q.DropWhere(func(it queueing.Item) bool {
		return now+minExec > it.Arrival+s.cfg.SLO
	}) {
		s.dropLocked(it.ID, it.Arrival)
	}
	// Batch coalescing: let the batch fill unless the head of the
	// queue has already waited its share. Waiting longer than one
	// batch-1 execution is never worthwhile, so the wait is capped
	// per pool by its execution time.
	wait := s.cfg.CoalesceWait
	if minExec < wait {
		wait = minExec
	}
	if q.Len() >= max {
		return q.Pop(now, max), 0
	}
	if oldest, ok := q.PeekEnqueue(); ok {
		if waited := now - oldest; waited >= wait {
			return q.Pop(now, max), 0
		} else {
			return nil, wait - waited
		}
	}
	return nil, 0
}

// handlePull serves worker pulls.
func (s *LBServer) handlePull(w http.ResponseWriter, r *http.Request) {
	var req PullRequest
	codec, err := readMsg(r, &req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	resp := s.Pull(r.Context(), req)
	writeMsg(w, codec, &resp)
}

// Complete receives a finished batch: light-pool results are
// thresholded (serve or defer); heavy-pool results always serve.
func (s *LBServer) Complete(req CompleteRequest) {
	now := s.cfg.Clock.Now()

	s.mu.Lock()
	defer s.mu.Unlock()
	deferred := false
	for _, item := range req.Items {
		cascadeLight := req.Role == "light" && s.cfg.Mode == loadbalancer.ModeCascade
		if cascadeLight && item.Confidence < s.threshold {
			s.lb.Defer(now, queueing.Item{ID: item.ID, Arrival: item.Arrival})
			deferred = true
			continue
		}
		s.completeLocked(item, now, req.Role == "heavy")
	}
	s.flushResultsLocked()
	if deferred {
		signal(&s.wakeWork)
	}
}

// handleComplete serves completion reports.
func (s *LBServer) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req CompleteRequest
	if _, err := readMsg(r, &req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.Complete(req)
	w.WriteHeader(http.StatusOK)
}

// completeLocked resolves a waiter and records the outcome.
func (s *LBServer) completeLocked(item CompleteItem, now float64, deferred bool) {
	rec := metrics.QueryRecord{
		ID:         item.ID,
		Arrival:    item.Arrival,
		Completion: now,
		Deadline:   item.Arrival + s.cfg.SLO,
		Deferred:   deferred,
		ServedBy:   item.Variant,
		Confidence: item.Confidence,
		Features:   item.Features,
		Artifact:   item.Artifact,
	}
	if rec.Violated() {
		s.timeouts++
	}
	s.col.Record(rec)
	s.completed++
	resp := QueryResponse{
		ID: item.ID, Variant: item.Variant, Features: item.Features,
		Artifact: item.Artifact, Confidence: item.Confidence,
		Deferred: deferred, Arrival: item.Arrival, Completion: now,
	}
	s.resolveLocked(item.ID, resp)
}

// dropLocked sheds a query.
func (s *LBServer) dropLocked(id int, arrival float64) {
	s.col.Record(metrics.QueryRecord{
		ID: id, Arrival: arrival, Deadline: arrival + s.cfg.SLO, Dropped: true,
	})
	s.dropped++
	s.timeouts++
	s.resolveLocked(id, QueryResponse{ID: id, Dropped: true, Arrival: arrival})
}

// resolveLocked delivers a query's final outcome to whichever side is
// waiting for it: a blocking Submit waiter, or the async results
// buffer drained by PollResults.
func (s *LBServer) resolveLocked(id int, resp QueryResponse) {
	if ch, ok := s.waiters[id]; ok {
		ch <- resp
		delete(s.waiters, id)
	}
	if _, ok := s.async[id]; ok {
		s.results = append(s.results, resp)
		delete(s.async, id)
		s.resultsDirty = true
	}
	delete(s.arrived, id)
}

// flushResultsLocked wakes result pollers once for however many
// results the caller just resolved. Callers must hold s.mu.
func (s *LBServer) flushResultsLocked() {
	if s.resultsDirty {
		signal(&s.wakeResults)
		s.resultsDirty = false
	}
}

// Configure updates threshold / split probability.
func (s *LBServer) Configure(req ConfigureLBRequest) {
	s.mu.Lock()
	s.threshold = req.Threshold
	s.lb.SetSplit(req.SplitProb)
	s.mu.Unlock()
}

// handleConfigure serves policy updates.
func (s *LBServer) handleConfigure(w http.ResponseWriter, r *http.Request) {
	var req ConfigureLBRequest
	if _, err := readMsg(r, &req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.Configure(req)
	w.WriteHeader(http.StatusOK)
}

// Stats reports control-plane statistics and resets the per-tick
// counters.
func (s *LBServer) Stats() LBStats {
	now := s.cfg.Clock.Now()
	s.mu.Lock()
	snap := s.lb.Snap(now)
	out := LBStats{
		Now:               now,
		LightQueueLen:     snap.Light.Len,
		HeavyQueueLen:     snap.Heavy.Len,
		LightArrivalRate:  snap.Light.ArrivalRate,
		HeavyArrivalRate:  snap.Heavy.ArrivalRate,
		ArrivalsSinceTick: s.arrivals,
		TimeoutsSinceTick: s.timeouts,
		Completed:         s.completed,
		Dropped:           s.dropped,
	}
	s.arrivals = 0
	s.timeouts = 0
	s.mu.Unlock()
	return out
}

// handleStats serves the control-plane report. The response codec
// follows the Accept header (GET has no body to infer from).
func (s *LBServer) handleStats(w http.ResponseWriter, r *http.Request) {
	out := s.Stats()
	writeMsg(w, codecForContentType(r.Header.Get("Accept")), &out)
}

// DrainRemaining drops every still-queued query (end of run).
func (s *LBServer) DrainRemaining() {
	now := s.cfg.Clock.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, pool := range []loadbalancer.PoolID{loadbalancer.PoolLight, loadbalancer.PoolHeavy} {
		q := s.lb.Queue(pool)
		for _, it := range q.Pop(now, q.Len()) {
			s.dropLocked(it.ID, it.Arrival)
		}
	}
	s.flushResultsLocked()
}

// readMsg decodes an HTTP request body with the codec named by its
// Content-Type header (JSON when absent) and returns that codec so
// the response can be written in kind.
func readMsg(r *http.Request, v interface{}) (Codec, error) {
	codec := codecForContentType(r.Header.Get("Content-Type"))
	body, err := io.ReadAll(r.Body)
	if err != nil {
		return codec, err
	}
	return codec, codec.Unmarshal(body, v)
}

// writeMsg encodes a response with the given codec.
func writeMsg(w http.ResponseWriter, codec Codec, v interface{}) {
	data, err := codec.Marshal(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", codec.ContentType())
	w.Write(data)
}
