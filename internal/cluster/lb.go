package cluster

import (
	"context"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"diffserve/internal/loadbalancer"
	"diffserve/internal/metrics"
	"diffserve/internal/queueing"
	"diffserve/internal/stats"
)

// LBConfig parameterizes the load-balancer server.
type LBConfig struct {
	// Mode selects the routing policy.
	Mode loadbalancer.Mode
	// SLO is the latency deadline in trace seconds.
	SLO float64
	// LightMinExec and HeavyMinExec are the batch-1 execution times
	// used for predicted-deadline-miss shedding.
	LightMinExec, HeavyMinExec float64
	// Clock provides trace time.
	Clock *Clock
	// Seed drives random-split routing.
	Seed uint64
	// QueueWindow sizes arrival-rate windows (trace seconds).
	QueueWindow float64
	// CoalesceWait bounds how long a pull waits for a batch to fill:
	// a pull for Max items returns empty while the queue holds fewer
	// than Max items AND the oldest has been queued for less than
	// CoalesceWait. Without it, concurrently polling workers shred
	// deferral groups into batch-1 executions and halve pool
	// throughput. Zero defaults to min(0.5s, SLO/10).
	CoalesceWait float64
	// RNGStream names the routing RNG stream derived from Seed (empty
	// defaults to "lb"). The sharded LB tier gives shard i the stream
	// "lb/<i>" so shards draw independent random-split decisions while
	// staying deterministic for a given (Seed, shard) pair.
	RNGStream string
	// LeaseDuration is how long (trace seconds) a pulled query stays
	// owned by its worker without further pull/complete activity from
	// that worker. Past the deadline the expiry sweep reclaims the
	// query and re-queues it into the pool it was pulled from, arrival
	// stamp intact. Zero defaults to 4x the SLO — generous enough that
	// a healthy worker never forfeits a batch mid-execution — and a
	// negative value disables leasing entirely (pre-lease behavior: a
	// dead worker's batch is silently lost).
	LeaseDuration float64
	// LeaseRedeliveries bounds how many times an unlucky query is
	// reclaimed and re-queued before the server sheds it to a drop
	// instead (a query that kills every worker it lands on must not
	// cycle forever). Zero defaults to 3.
	LeaseRedeliveries int
}

// lbLease is one pulled, uncompleted query's ownership record.
type lbLease struct {
	arrival float64
	// deadline is the lease granted at pull time; hard caps how far
	// worker heartbeats can push it. The cap is what reclaims a query
	// whose pull response was lost in transit: the worker never saw the
	// batch, but its later pulls keep heartbeating, so without the cap
	// the orphaned lease would extend forever.
	deadline, hard float64
	worker         int
	pool           string
	red            int // times already reclaimed and re-queued
}

// lbPool is one pool's share of the data path: its FIFO, its long-poll
// wakeup channel, and the lock that guards both. Sharding the state
// per pool keeps light pulls, heavy pulls, and submissions to
// different pools off each other's locks; the pool locks are leaves —
// no other LBServer lock is ever taken while one is held.
type lbPool struct {
	mu      sync.Mutex
	q       *queueing.FIFO
	wake    notifier
	minExec float64
	// draining is set by DrainRemaining under mu: once the end-of-run
	// sweep has emptied the queue, late pushes (a deferral or submit
	// racing the drain) are refused so the caller drops them instead
	// of stranding them in a queue nobody will pull again.
	draining bool
}

// push enqueues items and wakes blocked pulls. It reports false —
// enqueueing nothing — once the pool has been drained for shutdown.
func (p *lbPool) push(now float64, items ...queueing.Item) bool {
	p.mu.Lock()
	if p.draining {
		p.mu.Unlock()
		return false
	}
	for _, it := range items {
		p.q.Push(now, it)
	}
	p.wake.wake()
	p.mu.Unlock()
	return true
}

// LBServer is the data-path entry point: it queues queries per pool,
// hands batches to pulling workers (blocking long polls when asked),
// applies the cascade threshold to completed light generations, and
// resolves client waiters. Its core methods (Submit, SubmitBatch,
// PollResults, Pull, Complete, Configure, Stats) are
// transport-agnostic; Mux wraps them in codec-aware HTTP handlers,
// ServeLBTCP in framed-TCP handlers, and NewLocalLBConn dispatches to
// them directly.
//
// Locking is sharded so the hot paths do not contend on one mutex:
// each pool queue has its own lock (light pulls never wait on heavy
// pulls or on submissions routed to the other pool), the
// client-result state (waiters, async results, metrics, counters) is
// guarded by resMu, and the random-split routing state by splitMu.
type LBServer struct {
	cfg LBConfig

	// ringEpoch is the sharded tier's ring epoch this server last
	// learned via Configure (monotonic). It is echoed in every
	// PullResponse so shard-pinned workers notice membership changes.
	ringEpoch atomic.Int64

	// memberMu guards the tier-membership snapshot the server last
	// adopted from a Configure broadcast. Every shard server in an
	// elastic tier holds the same snapshot, so any of them can answer
	// Membership() for followers (standalone frontends and workers)
	// that track the tier through a single bootstrap address.
	memberMu      sync.Mutex
	memberEpoch   int
	members       []int
	memberAddrs   []string
	memberWeights []int

	// pools is indexed by loadbalancer.PoolID (PoolLight, PoolHeavy).
	pools [2]lbPool

	// splitMu guards the random-split routing state (Proteus mode).
	splitMu   sync.Mutex
	splitProb float64
	rng       *stats.RNG

	// resMu guards everything on the client-result side: waiters,
	// async-result buffering, the metrics collector, the control-plane
	// counters, and the cascade threshold.
	resMu     sync.Mutex
	threshold float64
	waiters   map[int]chan QueryResponse
	async     map[int]struct{} // batch-submitted queries awaiting results
	results   []QueryResponse  // finished async results not yet fetched
	col       *metrics.Collector
	arrivals  int // since last stats poll
	timeouts  int // since last stats poll
	completed int
	dropped   int
	// Result long-poll wakeup. resultsDirty batches the wakeup: a
	// whole Complete batch signals once, not once per query.
	wakeResults  notifier
	resultsDirty bool

	// leaseMu guards the pull-lease table. It is a leaf like the pool
	// locks: it is never held while acquiring another LBServer lock,
	// so it may be taken freely from any path (including under resMu).
	leaseMu    sync.Mutex
	leases     map[int]lbLease // query ID -> in-flight lease
	workerSeen map[int]float64 // worker ID -> last pull/complete time
	nextSweep  float64
	// lifetime failure-model counters, surfaced through Stats
	reclaims        int
	shedRedelivery  int
	lateCompletions int
}

// NewLBServer constructs a load balancer.
func NewLBServer(cfg LBConfig) *LBServer {
	if cfg.QueueWindow <= 0 {
		cfg.QueueWindow = 10
	}
	if cfg.CoalesceWait <= 0 {
		cfg.CoalesceWait = cfg.SLO / 10
		if cfg.CoalesceWait > 0.5 {
			cfg.CoalesceWait = 0.5
		}
	}
	stream := cfg.RNGStream
	if stream == "" {
		stream = "lb"
	}
	if cfg.LeaseDuration == 0 {
		cfg.LeaseDuration = 4 * cfg.SLO
	}
	if cfg.LeaseRedeliveries <= 0 {
		cfg.LeaseRedeliveries = 3
	}
	s := &LBServer{
		cfg:     cfg,
		rng:     stats.NewRNG(cfg.Seed).Stream(stream),
		waiters: make(map[int]chan QueryResponse),
		async:   make(map[int]struct{}),
		col:     metrics.NewCollector(),
	}
	if cfg.LeaseDuration > 0 {
		s.leases = make(map[int]lbLease)
		s.workerSeen = make(map[int]float64)
	}
	s.pools[loadbalancer.PoolLight] = lbPool{
		q: queueing.NewFIFO(cfg.QueueWindow), minExec: cfg.LightMinExec,
	}
	s.pools[loadbalancer.PoolHeavy] = lbPool{
		q: queueing.NewFIFO(cfg.QueueWindow), minExec: cfg.HeavyMinExec,
	}
	return s
}

// Collector exposes the LB's metrics records (read after the run).
func (s *LBServer) Collector() *metrics.Collector { return s.col }

// pool maps a worker role to its pool shard.
func (s *LBServer) pool(role string) *lbPool {
	if role == "heavy" {
		return &s.pools[loadbalancer.PoolHeavy]
	}
	return &s.pools[loadbalancer.PoolLight]
}

// routePool picks the pool an arrival joins. The decision itself is
// loadbalancer.Decide — the same policy the simulator runs — with the
// split state locked only in the one mode that uses it.
func (s *LBServer) routePool() loadbalancer.PoolID {
	if s.cfg.Mode != loadbalancer.ModeRandomSplit {
		return loadbalancer.Decide(s.cfg.Mode, 0, nil)
	}
	s.splitMu.Lock()
	defer s.splitMu.Unlock()
	return loadbalancer.Decide(s.cfg.Mode, s.splitProb, s.rng)
}

// notifier is a coalescing broadcast wakeup for goroutines that
// re-check shared state under a lock before sleeping. Every method
// must be called with the lock guarding the shared state held; that
// single rule closes the classic missed-wakeup window structurally —
// a push cannot slip between "state looks empty" and "channel
// captured" because both happen inside one critical section, and the
// matching wake runs under the same lock.
//
// Wakes with no armed waiter coalesce into nothing: the previous
// close-and-replace signal() allocated a fresh channel on every push
// even when no puller was parked, and (worse) made the no-missed-
// wakeup guarantee depend on each call site remembering to capture
// the channel before unlocking. Here arming is the capture.
type notifier struct {
	armed bool
	ch    chan struct{}
}

// wait arms the notifier and returns the channel to block on after
// the caller releases the lock. One wake resolves every armed waiter;
// wakers re-check state and call wait again before sleeping anew.
func (n *notifier) wait() <-chan struct{} {
	if n.ch == nil {
		n.ch = make(chan struct{})
	}
	n.armed = true
	return n.ch
}

// wake unblocks every waiter armed since the previous wake. When no
// waiter is armed it is a no-op (nothing can be selecting on n.ch),
// so back-to-back pushes with no parked puller cost nothing.
func (n *notifier) wake() {
	if !n.armed {
		return
	}
	close(n.ch)
	n.ch = make(chan struct{})
	n.armed = false
}

// Mux returns the HTTP handler exposing the LB API. Handlers decode
// the request with the codec named by its Content-Type (JSON when
// absent) and respond in kind.
func (s *LBServer) Mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/submit", s.handleSubmit)
	mux.HandleFunc("/results", s.handleResults)
	mux.HandleFunc("/pull", s.handlePull)
	mux.HandleFunc("/complete", s.handleComplete)
	mux.HandleFunc("/configure", s.handleConfigure)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/membership", s.handleMembership)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	return mux
}

// Submit admits a query and blocks until it completes, drops, or ctx
// is cancelled (reported by ok=false).
func (s *LBServer) Submit(ctx context.Context, q QueryMsg) (resp QueryResponse, ok bool) {
	now := s.cfg.Clock.Now()
	if q.Arrival == 0 {
		q.Arrival = now
	}
	ch := make(chan QueryResponse, 1)

	// Register the waiter before the query becomes pullable, so a
	// worker on another core cannot complete it first.
	s.resMu.Lock()
	s.waiters[q.ID] = ch
	s.arrivals++
	s.resMu.Unlock()

	if !s.pools[s.routePool()].push(now, queueing.Item{ID: q.ID, Arrival: q.Arrival}) {
		s.dropRejected([]queueing.Item{{ID: q.ID, Arrival: q.Arrival}})
	}

	select {
	case resp = <-ch:
		return resp, true
	case <-ctx.Done():
		s.resMu.Lock()
		delete(s.waiters, q.ID)
		s.resMu.Unlock()
		return QueryResponse{}, false
	}
}

// SubmitBatch admits queries asynchronously: each will eventually
// surface exactly one result (completion or drop) via PollResults.
func (s *LBServer) SubmitBatch(qs []QueryMsg) {
	s.submitBatch(qs, "")
}

// SubmitBatchReq admits a SubmitRequest, honoring its Pool override —
// the transport handlers' entry point, so a migration re-queue
// arriving over any wire lands in the pool it was drained from. Pool
// is wire-facing: anything but the two known pool names degrades to
// a normal policy-routed (and demand-counted) admission rather than
// silently picking a pool for a value the peer mistyped.
func (s *LBServer) SubmitBatchReq(req SubmitRequest) {
	pool := req.Pool
	if pool != "light" && pool != "heavy" {
		pool = ""
	}
	s.submitBatch(req.Queries, pool)
}

// submitBatch is the admission core. pool "" is a normal arrival:
// routed by policy and counted in the demand counters. A non-empty
// pool is a resharding migration re-queue: the queries go straight to
// that pool (a drained deferral keeps its place in the cascade) and
// the arrival counters stay untouched — they were already counted at
// the shard the queries first arrived on, which the merged Stats
// still sums.
func (s *LBServer) submitBatch(qs []QueryMsg, pool string) {
	if len(qs) == 0 {
		return
	}
	now := s.cfg.Clock.Now()
	item := func(q QueryMsg) queueing.Item {
		if q.Arrival == 0 {
			q.Arrival = now
		}
		return queueing.Item{ID: q.ID, Arrival: q.Arrival}
	}
	s.resMu.Lock()
	for _, q := range qs {
		s.async[q.ID] = struct{}{}
		if pool == "" {
			s.arrivals++
		}
	}
	s.resMu.Unlock()

	if pool != "" || s.cfg.Mode != loadbalancer.ModeRandomSplit {
		// Single-destination admissions (every policy but random
		// split, and all pool overrides): push the whole batch under
		// one pool lock with no per-query routing state or allocation.
		dest := loadbalancer.PoolLight
		switch {
		case pool == "heavy":
			dest = loadbalancer.PoolHeavy
		case pool == "":
			dest = s.routePool()
		}
		p := &s.pools[dest]
		p.mu.Lock()
		if p.draining {
			p.mu.Unlock()
			items := make([]queueing.Item, len(qs))
			for i, q := range qs {
				items[i] = item(q)
			}
			s.dropRejected(items)
			return
		}
		for _, q := range qs {
			p.q.Push(now, item(q))
		}
		p.wake.wake()
		p.mu.Unlock()
		return
	}
	for _, q := range qs {
		if it := item(q); !s.pools[s.routePool()].push(now, it) {
			s.dropRejected([]queueing.Item{it})
		}
	}
}

// PollResults returns finished async results, blocking up to req.Wait
// trace-seconds for at least one to arrive. req.Wait <= 0 is an
// explicit non-blocking poll: one buffer check, never a sleep —
// identical across every transport (the conformance suite pins it).
func (s *LBServer) PollResults(ctx context.Context, req ResultsRequest) ResultsResponse {
	var resp ResultsResponse
	s.PollResultsInto(ctx, req, &resp)
	return resp
}

// PollResultsInto is the buffer-reusing form of PollResults: results
// are copied into resp.Results' existing capacity instead of a fresh
// slice per poll, so a caller that polls in a loop with one persistent
// response struct allocates nothing in steady state. resp is
// overwritten entirely; the caller owns it and everything it
// references (result Features alias the collector's immutable arena
// and must not be mutated).
func (s *LBServer) PollResultsInto(ctx context.Context, req ResultsRequest, resp *ResultsResponse) {
	max := req.Max
	if max <= 0 {
		max = 256
	}
	if req.Wait <= 0 {
		s.resMu.Lock()
		s.takeResultsInto(max, resp)
		s.resMu.Unlock()
		return
	}
	deadline := time.Now().Add(s.cfg.Clock.WallDuration(req.Wait)) //diffvet:allow walltime — long-poll deadline in wall time; the trace wait is already Clock-converted
	for {
		s.resMu.Lock()
		s.takeResultsInto(max, resp)
		var wake <-chan struct{}
		if len(resp.Results) == 0 {
			wake = s.wakeResults.wait()
		}
		s.resMu.Unlock()
		if len(resp.Results) > 0 {
			return
		}

		remain := time.Until(deadline) //diffvet:allow walltime — remaining wall budget of the Clock-converted long-poll deadline
		if remain <= 0 {
			return
		}
		t := time.NewTimer(remain)
		select {
		case <-ctx.Done():
			t.Stop()
			return
		case <-wake:
			t.Stop()
		case <-t.C:
		}
	}
}

// takeResultsInto pops up to max buffered async results into
// resp.Results, reusing its capacity. An empty take keeps the
// caller's buffer (length zero) so the next non-empty poll is still
// allocation-free. Callers must hold resMu.
func (s *LBServer) takeResultsInto(max int, resp *ResultsResponse) {
	n := len(s.results)
	if n == 0 {
		resp.Results = resp.Results[:0]
		return
	}
	if n > max {
		n = max
	}
	resp.Results = append(resp.Results[:0], s.results[:n]...)
	s.results = append(s.results[:0], s.results[n:]...)
}

// handleQuery admits a query and blocks until it completes or drops.
func (s *LBServer) handleQuery(w http.ResponseWriter, r *http.Request) {
	var q QueryMsg
	codec, err := readMsg(r, &q)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	resp, ok := s.Submit(r.Context(), q)
	if !ok {
		return // client went away
	}
	writeMsg(w, codec, &resp)
}

// handleSubmit admits an async query batch.
func (s *LBServer) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if _, err := readMsg(r, &req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.SubmitBatchReq(req)
	w.WriteHeader(http.StatusOK)
}

// handleResults long-polls for async results.
func (s *LBServer) handleResults(w http.ResponseWriter, r *http.Request) {
	var req ResultsRequest
	codec, err := readMsg(r, &req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	resp := s.PollResults(r.Context(), req)
	writeMsg(w, codec, &resp)
}

// Pull hands up to req.Max queued queries to a worker, shedding
// queries that can no longer meet their deadline. With req.Wait > 0
// it long-polls: the call blocks until a batch is dispatchable under
// the coalescing policy or the wait expires. req.Wait <= 0 is an
// explicit non-blocking poll: one dequeue attempt, never a sleep —
// identical across every transport (the conformance suite pins it).
// Pulls only touch their own pool's lock, so light and heavy dispatch
// proceed concurrently.
func (s *LBServer) Pull(ctx context.Context, req PullRequest) PullResponse {
	var resp PullResponse
	s.PullInto(ctx, req, &resp)
	return resp
}

// PullInto is the buffer-reusing form of Pull: the pulled batch is
// written into resp.Queries' existing capacity, so a worker that
// pulls in a loop with one persistent response struct allocates
// nothing in steady state. resp is overwritten entirely (an empty
// pull leaves Queries nil, matching the by-value API and the wire
// codecs' nil-vs-empty normalization).
func (s *LBServer) PullInto(ctx context.Context, req PullRequest, resp *PullResponse) {
	if req.Drain {
		*resp = s.drainPull(req)
		return
	}
	epoch := int(s.ringEpoch.Load())
	resp.RingEpoch = epoch
	resp.LeaseDeadline = 0
	// Keep the caller's query buffer for reuse; empty returns hand back
	// nil (wire parity) without dropping the capacity they carried in.
	qbuf := resp.Queries[:0]
	resp.Queries = nil
	p := s.pool(req.Role)
	var deadline time.Time
	if req.Wait > 0 {
		deadline = time.Now().Add(s.cfg.Clock.WallDuration(req.Wait)) //diffvet:allow walltime — long-poll deadline in wall time; the trace wait is already Clock-converted
	}
	scratch := getItemScratch()
	defer putItemScratch(scratch)
	for {
		now := s.cfg.Clock.Now()
		// Heartbeat first, sweep if due: a reclaimed query re-queued by
		// the sweep is pullable by this very call.
		s.leaseTouch(req.WorkerID, now)
		p.mu.Lock()
		shed, items, retry := s.dequeuePool(p, req.Max, now, (*scratch)[:0])
		var wake <-chan struct{}
		if len(items) == 0 && req.Wait > 0 {
			// Arm the wakeup inside the same critical section as the
			// failed dequeue, so a push cannot race the sleep.
			wake = p.wake.wait()
		}
		p.mu.Unlock()
		if items != nil {
			*scratch = items[:0]
		}

		if len(shed) > 0 {
			s.resMu.Lock()
			for _, it := range shed {
				s.dropLocked(it.ID, it.Arrival)
			}
			s.flushResultsLocked()
			s.resMu.Unlock()
		}
		if len(items) > 0 {
			for _, it := range items {
				qbuf = append(qbuf, QueryMsg{ID: it.ID, Arrival: it.Arrival})
			}
			resp.Queries = qbuf
			resp.LeaseDeadline = s.leaseBatch(req.WorkerID, req.Role, items, now)
			return
		}
		if req.Wait <= 0 {
			resp.Queries = nil
			return
		}
		remain := time.Until(deadline) //diffvet:allow walltime — remaining wall budget of the Clock-converted long-poll deadline
		if remain <= 0 {
			resp.Queries = nil
			return
		}
		// Sleep until new work arrives, the head's coalesce window
		// expires, or the long-poll deadline — whichever is first.
		sleep := remain
		if retry > 0 {
			if d := s.cfg.Clock.WallDuration(retry); d < sleep {
				sleep = d
			}
		}
		if sleep < time.Millisecond {
			sleep = time.Millisecond
		}
		t := time.NewTimer(sleep)
		select {
		case <-ctx.Done():
			t.Stop()
			return
		case <-wake:
			t.Stop()
		case <-t.C:
		}
	}
}

// drainPull is the resharding path's ownership transfer (see
// PullRequest.Drain): it pops up to req.Max queued queries from the
// pool with no shedding and no coalescing, forgets their async
// registrations, and hands them to the caller for re-submission to
// their new owning shard. A query with a blocking waiter stays here
// and resolves as a drop (its client is parked on this server's
// Submit); a query with no live registration was already resolved by
// a racing drop and is silently discarded — returning it would let
// the re-submission resolve it a second time.
func (s *LBServer) drainPull(req PullRequest) PullResponse {
	epoch := int(s.ringEpoch.Load())
	max := req.Max
	if max <= 0 {
		max = 256
	}
	now := s.cfg.Clock.Now()
	p := s.pool(req.Role)
	resp := PullResponse{RingEpoch: epoch}
	// An empty response means "this pool is drained": a popped round
	// whose items all turn out non-migratable (waiter-backed, or
	// already resolved by a racing drop) must not end the caller's
	// drain loop while queries still sit in the queue, so keep
	// popping until a round yields something migratable or the queue
	// is empty.
	for len(resp.Queries) == 0 {
		p.mu.Lock()
		n := p.q.Len()
		if n > max {
			n = max
		}
		items := p.q.Pop(now, n)
		p.mu.Unlock()
		if len(items) == 0 {
			return resp
		}
		s.resMu.Lock()
		for _, it := range items {
			if _, ok := s.async[it.ID]; ok {
				delete(s.async, it.ID)
				resp.Queries = append(resp.Queries, QueryMsg{ID: it.ID, Arrival: it.Arrival})
				continue
			}
			if _, ok := s.waiters[it.ID]; ok {
				s.dropLocked(it.ID, it.Arrival)
			}
		}
		s.flushResultsLocked()
		s.resMu.Unlock()
	}
	return resp
}

// dequeuePool sheds expired queries, then dequeues a batch if one is
// dispatchable under the coalescing policy. Shed items are returned to
// the caller for drop accounting outside the pool lock; dequeued items
// are appended to dst (a pooled scratch slice on the hot path, so the
// dequeue itself is allocation-free). When the queue holds a
// not-yet-dispatchable partial batch it returns the trace-seconds
// until the head's coalesce window expires, so long polls can wake
// exactly then. Callers must hold p.mu.
func (s *LBServer) dequeuePool(p *lbPool, max int, now float64, dst []queueing.Item) (shed, items []queueing.Item, retry float64) {
	shed = p.q.DropWhere(func(it queueing.Item) bool {
		return now+p.minExec > it.Arrival+s.cfg.SLO
	})
	// Batch coalescing: let the batch fill unless the head of the
	// queue has already waited its share. Waiting longer than one
	// batch-1 execution is never worthwhile, so the wait is capped
	// per pool by its execution time.
	wait := s.cfg.CoalesceWait
	if p.minExec < wait {
		wait = p.minExec
	}
	if p.q.Len() >= max {
		return shed, p.q.PopAppend(now, max, dst), 0
	}
	if oldest, ok := p.q.PeekEnqueue(); ok {
		if waited := now - oldest; waited >= wait {
			return shed, p.q.PopAppend(now, max, dst), 0
		} else {
			return shed, dst, wait - waited
		}
	}
	return shed, dst, 0
}

// handlePull serves worker pulls.
func (s *LBServer) handlePull(w http.ResponseWriter, r *http.Request) {
	var req PullRequest
	codec, err := readMsg(r, &req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	resp := s.Pull(r.Context(), req)
	writeMsg(w, codec, &resp)
}

// Complete receives a finished batch: light-pool results are
// thresholded (serve or defer); heavy-pool results always serve.
func (s *LBServer) Complete(req CompleteRequest) {
	now := s.cfg.Clock.Now()
	s.clearLeases(&req, now)
	cascadeLight := req.Role == "light" && s.cfg.Mode == loadbalancer.ModeCascade

	var deferred []queueing.Item
	s.resMu.Lock()
	threshold := s.threshold
	for _, item := range req.Items {
		if cascadeLight && item.Confidence < threshold {
			// Only live queries defer: the resharding fan-out delivers
			// completions to every epoch's owner, so a shard that never
			// held (or already migrated away) this query must not
			// enqueue a phantom copy in its heavy pool.
			if s.liveLocked(item.ID) {
				deferred = append(deferred, queueing.Item{ID: item.ID, Arrival: item.Arrival})
			}
			continue
		}
		s.completeLocked(item, now, req.Role == "heavy")
	}
	s.flushResultsLocked()
	s.resMu.Unlock()

	if len(deferred) > 0 && !s.pools[loadbalancer.PoolHeavy].push(now, deferred...) {
		// The end-of-run drain already swept the heavy queue: these
		// deferrals arrived too late to ever be pulled, so they
		// resolve as drops instead of stranding their waiters.
		s.dropRejected(deferred)
	}
}

// dropRejected resolves queries a drained pool refused to enqueue.
func (s *LBServer) dropRejected(items []queueing.Item) {
	s.resMu.Lock()
	for _, it := range items {
		s.dropLocked(it.ID, it.Arrival)
	}
	s.flushResultsLocked()
	s.resMu.Unlock()
}

// leaseHardFactor caps how far heartbeats can extend a lease past its
// grant: effective deadline <= grant + leaseHardFactor*LeaseDuration.
// The cap is what reclaims a batch whose pull response was lost in
// transit — the worker never received it, but its later pulls keep
// heartbeating, so without the cap the orphaned lease would live
// forever.
const leaseHardFactor = 4

// leasing reports whether pull leases are enabled.
func (s *LBServer) leasing() bool { return s.leases != nil }

// leaseTouch records worker activity (the lease heartbeat) and runs
// the expiry sweep when its interval has elapsed. It is called on
// every pull attempt and every completion, so in any cluster with at
// least one live worker, dead workers' leases are reclaimed within a
// sweep interval.
func (s *LBServer) leaseTouch(workerID int, now float64) {
	if !s.leasing() {
		return
	}
	s.leaseMu.Lock()
	s.workerSeen[workerID] = now
	light, heavy, shed := s.collectExpiredLocked(now)
	s.leaseMu.Unlock()
	s.settleExpired(light, heavy, shed, now)
}

// sweepLeases runs the expiry sweep without attributing a heartbeat
// (the Stats path: the controller's poll must reclaim a fully dead
// worker set even when no worker is pulling).
func (s *LBServer) sweepLeases(now float64) {
	if !s.leasing() {
		return
	}
	s.leaseMu.Lock()
	light, heavy, shed := s.collectExpiredLocked(now)
	s.leaseMu.Unlock()
	s.settleExpired(light, heavy, shed, now)
}

// leaseBatch registers pulled items under a fresh lease for the
// worker and returns the deadline echoed in the PullResponse. A
// reclaimed item carries its redelivery count in Item.Payload, so the
// bound survives the trip through the queue.
func (s *LBServer) leaseBatch(workerID int, role string, items []queueing.Item, now float64) float64 {
	if !s.leasing() {
		return 0
	}
	pool := "light"
	if role == "heavy" {
		pool = "heavy"
	}
	dur := s.cfg.LeaseDuration
	deadline := now + dur
	s.leaseMu.Lock()
	for _, it := range items {
		red := 0
		if v, ok := it.Payload.(int); ok {
			red = v
		}
		s.leases[it.ID] = lbLease{
			arrival: it.Arrival, deadline: deadline, hard: now + leaseHardFactor*dur,
			worker: workerID, pool: pool, red: red,
		}
	}
	s.leaseMu.Unlock()
	return deadline
}

// clearLeases releases the leases of a completed batch (heartbeating
// the reporting worker) and counts zombie reports: items whose lease
// was already reclaimed — or resolved by someone else — before this
// completion arrived. Only lease-aware reports (a nonzero echoed
// deadline) are counted, so pre-lease clients do not inflate the
// counter. The lease is released regardless of which worker holds it:
// the query resolves (or re-queues as a deferral) under resMu right
// after this, so any copy still leased elsewhere is moot.
func (s *LBServer) clearLeases(req *CompleteRequest, now float64) {
	if !s.leasing() {
		return
	}
	s.leaseMu.Lock()
	s.workerSeen[req.WorkerID] = now
	for i := range req.Items {
		if _, ok := s.leases[req.Items[i].ID]; ok {
			delete(s.leases, req.Items[i].ID)
		} else if req.LeaseDeadline > 0 {
			s.lateCompletions++
		}
	}
	light, heavy, shed := s.collectExpiredLocked(now)
	s.leaseMu.Unlock()
	s.settleExpired(light, heavy, shed, now)
}

// collectExpiredLocked removes every lease past its effective
// deadline, splitting the expirations into per-pool re-queue lists
// and a shed list (queries that exhausted their redelivery bound).
// It self-throttles to one scan per quarter lease duration. Callers
// must hold leaseMu.
func (s *LBServer) collectExpiredLocked(now float64) (light, heavy, shed []queueing.Item) {
	if now < s.nextSweep {
		return nil, nil, nil
	}
	dur := s.cfg.LeaseDuration
	s.nextSweep = now + dur/4
	for id, l := range s.leases {
		eff := l.deadline
		if seen, ok := s.workerSeen[l.worker]; ok && seen+dur > eff {
			eff = seen + dur
		}
		if eff > l.hard {
			eff = l.hard
		}
		if now <= eff {
			continue
		}
		delete(s.leases, id)
		it := queueing.Item{ID: id, Arrival: l.arrival, Payload: l.red + 1}
		switch {
		case l.red+1 > s.cfg.LeaseRedeliveries:
			shed = append(shed, it)
			s.shedRedelivery++
		case l.pool == "heavy":
			heavy = append(heavy, it)
			s.reclaims++
		default:
			light = append(light, it)
			s.reclaims++
		}
	}
	return light, heavy, shed
}

// settleExpired disposes of a sweep's harvest: redelivery-exhausted
// queries resolve as drops, the rest re-queue into the pool they were
// pulled from. This is the same exactly-once shape as the resharding
// re-submit path (SubmitRequest.Pool): the arrival stamp rides along
// untouched, nothing is re-counted as an arrival, and — because a
// reclaim never crosses servers — the waiter/async registration is
// still in place, so no re-registration happens at all. A query whose
// registration is already gone (resolved by a zombie completion, or
// its blocking Submit was cancelled) is skipped rather than
// re-executed for nobody; a pool already draining for shutdown
// refuses the push and the queries resolve as drops like any late
// arrival.
func (s *LBServer) settleExpired(light, heavy, shed []queueing.Item, now float64) {
	if len(shed) > 0 {
		s.dropRejected(shed)
	}
	requeue := func(dest loadbalancer.PoolID, items []queueing.Item) {
		if len(items) == 0 {
			return
		}
		live := items[:0]
		s.resMu.Lock()
		for _, it := range items {
			if s.liveLocked(it.ID) {
				live = append(live, it)
			}
		}
		s.resMu.Unlock()
		if len(live) == 0 {
			return
		}
		if !s.pools[dest].push(now, live...) {
			s.dropRejected(live)
		}
	}
	requeue(loadbalancer.PoolLight, light)
	requeue(loadbalancer.PoolHeavy, heavy)
}

// handleComplete serves completion reports.
func (s *LBServer) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req CompleteRequest
	if _, err := readMsg(r, &req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.Complete(req)
	w.WriteHeader(http.StatusOK)
}

// liveLocked reports whether a query still awaits its resolution —
// a blocking waiter or an async entry exists. Once resolved, neither
// does, so completions and drops racing a drain (or arriving twice)
// become no-ops instead of double-counting in the collector and the
// control-plane counters. Callers must hold resMu.
func (s *LBServer) liveLocked(id int) bool {
	if _, ok := s.waiters[id]; ok {
		return true
	}
	_, ok := s.async[id]
	return ok
}

// completeLocked resolves a waiter and records the outcome. A query
// already resolved — e.g. dropped by DrainRemaining while this
// completion was in flight, or delivered twice by a retrying peer —
// is skipped: the first resolution is final and must not be
// double-recorded or resurrected in the results buffer. Callers must
// hold resMu.
func (s *LBServer) completeLocked(item CompleteItem, now float64, deferred bool) {
	if !s.liveLocked(item.ID) {
		return
	}
	// Intern the features once into the collector's immutable arena:
	// the stored record and the delivered result share that copy, so
	// neither retains the caller's slice — a pooled decode buffer can
	// be recycled the moment Complete returns.
	feats := s.col.InternFeatures(item.Features)
	rec := metrics.QueryRecord{
		ID:         item.ID,
		Arrival:    item.Arrival,
		Completion: now,
		Deadline:   item.Arrival + s.cfg.SLO,
		Deferred:   deferred,
		ServedBy:   item.Variant,
		Confidence: item.Confidence,
		Features:   feats,
		Artifact:   item.Artifact,
	}
	if rec.Violated() {
		s.timeouts++
	}
	s.col.Record(rec)
	s.completed++
	resp := QueryResponse{
		ID: item.ID, Variant: item.Variant, Features: feats,
		Artifact: item.Artifact, Confidence: item.Confidence,
		Deferred: deferred, Arrival: item.Arrival, Completion: now,
	}
	s.resolveLocked(item.ID, resp)
}

// dropLocked sheds a query. Like completeLocked it is idempotent:
// a query already resolved by a racing complete or an earlier drain
// sweep is left alone. Callers must hold resMu.
func (s *LBServer) dropLocked(id int, arrival float64) {
	if !s.liveLocked(id) {
		return
	}
	s.col.Record(metrics.QueryRecord{
		ID: id, Arrival: arrival, Deadline: arrival + s.cfg.SLO, Dropped: true,
	})
	s.dropped++
	s.timeouts++
	s.resolveLocked(id, QueryResponse{ID: id, Dropped: true, Arrival: arrival})
}

// resolveLocked delivers a query's final outcome to whichever side is
// waiting for it: a blocking Submit waiter, or the async results
// buffer drained by PollResults. Callers must hold resMu.
func (s *LBServer) resolveLocked(id int, resp QueryResponse) {
	if ch, ok := s.waiters[id]; ok {
		ch <- resp
		delete(s.waiters, id)
	}
	if _, ok := s.async[id]; ok {
		s.results = append(s.results, resp)
		delete(s.async, id)
		s.resultsDirty = true
	}
}

// flushResultsLocked wakes result pollers once for however many
// results the caller just resolved. Callers must hold resMu.
func (s *LBServer) flushResultsLocked() {
	if s.resultsDirty {
		s.wakeResults.wake()
		s.resultsDirty = false
	}
}

// Configure updates threshold / split probability, and adopts the
// ring epoch monotonically: a stale broadcast racing a reshard cannot
// regress the epoch workers observe in their pull responses.
func (s *LBServer) Configure(req ConfigureLBRequest) {
	for {
		cur := s.ringEpoch.Load()
		if int64(req.RingEpoch) <= cur || s.ringEpoch.CompareAndSwap(cur, int64(req.RingEpoch)) {
			break
		}
	}
	// Adopt the membership snapshot monotonically too, under its own
	// lock: the atomic above may already hold a newer epoch from a
	// racing broadcast, so the snapshot keeps its own high-water mark.
	if len(req.Members) > 0 {
		s.memberMu.Lock()
		if req.RingEpoch >= s.memberEpoch {
			s.memberEpoch = req.RingEpoch
			s.members = append(s.members[:0], req.Members...)
			s.memberAddrs = append(s.memberAddrs[:0], req.MemberAddrs...)
			s.memberWeights = append(s.memberWeights[:0], req.MemberWeights...)
		}
		s.memberMu.Unlock()
	}
	s.resMu.Lock()
	s.threshold = req.Threshold
	s.resMu.Unlock()

	s.splitMu.Lock()
	s.splitProb = loadbalancer.ClampProb(req.SplitProb)
	s.splitMu.Unlock()
}

// handleConfigure serves policy updates.
func (s *LBServer) handleConfigure(w http.ResponseWriter, r *http.Request) {
	var req ConfigureLBRequest
	if _, err := readMsg(r, &req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.Configure(req)
	w.WriteHeader(http.StatusOK)
}

// Stats reports control-plane statistics and resets the per-tick
// counters.
func (s *LBServer) Stats() LBStats {
	now := s.cfg.Clock.Now()
	// The stats poll doubles as the sweep of last resort: with every
	// worker dead nothing else ticks the lease table, and it is
	// exactly then that reclamation matters most.
	s.sweepLeases(now)
	snap := func(p *lbPool) queueing.Snapshot {
		p.mu.Lock()
		defer p.mu.Unlock()
		return p.q.Snap(now)
	}
	light := snap(&s.pools[loadbalancer.PoolLight])
	heavy := snap(&s.pools[loadbalancer.PoolHeavy])

	s.resMu.Lock()
	out := LBStats{
		Now:               now,
		LightQueueLen:     light.Len,
		HeavyQueueLen:     heavy.Len,
		LightArrivalRate:  light.ArrivalRate,
		HeavyArrivalRate:  heavy.ArrivalRate,
		ArrivalsSinceTick: s.arrivals,
		TimeoutsSinceTick: s.timeouts,
		Completed:         s.completed,
		Dropped:           s.dropped,
	}
	s.arrivals = 0
	s.timeouts = 0
	s.resMu.Unlock()

	if s.leasing() {
		s.leaseMu.Lock()
		out.InFlight = len(s.leases)
		out.Reclaims = s.reclaims
		out.ShedRedelivery = s.shedRedelivery
		out.LateCompletions = s.lateCompletions
		s.leaseMu.Unlock()
	}
	return out
}

// handleStats serves the control-plane report. The response codec
// follows the Accept header (GET has no body to infer from).
func (s *LBServer) handleStats(w http.ResponseWriter, r *http.Request) {
	out := s.Stats()
	writeMsg(w, codecForContentType(r.Header.Get("Accept")), &out)
}

// Membership reports the tier membership this server last adopted
// from a Configure broadcast — epoch, member IDs, dial addresses, and
// placement weights. A server that never saw a membership broadcast
// (a standalone single-shard LB) reports its bare ring epoch with no
// members; followers treat that as "nothing to follow".
func (s *LBServer) Membership() MembershipResponse {
	s.memberMu.Lock()
	defer s.memberMu.Unlock()
	out := MembershipResponse{RingEpoch: s.memberEpoch}
	if out.RingEpoch == 0 {
		out.RingEpoch = int(s.ringEpoch.Load())
	}
	out.Members = append([]int(nil), s.members...)
	out.Addrs = append([]string(nil), s.memberAddrs...)
	out.Weights = append([]int(nil), s.memberWeights...)
	return out
}

// handleMembership serves the membership snapshot; like /stats the
// response codec follows the Accept header.
func (s *LBServer) handleMembership(w http.ResponseWriter, r *http.Request) {
	out := s.Membership()
	writeMsg(w, codecForContentType(r.Header.Get("Accept")), &out)
}

// DrainRemaining drops every still-queued query (end of run) and
// marks the pools as draining: pushes that lose the race with the
// sweep — a deferral or submission in flight while the drain runs —
// are refused and resolve as drops rather than stranding forever in
// a queue no worker will pull again.
func (s *LBServer) DrainRemaining() {
	now := s.cfg.Clock.Now()
	for i := range s.pools {
		p := &s.pools[i]
		p.mu.Lock()
		items := p.q.Pop(now, p.q.Len())
		p.draining = true
		p.mu.Unlock()
		if len(items) == 0 {
			continue
		}
		s.dropRejected(items)
	}
}

// readMsg decodes an HTTP request body with the codec named by its
// Content-Type header (JSON when absent) and returns that codec so
// the response can be written in kind.
func readMsg(r *http.Request, v interface{}) (Codec, error) {
	codec := codecForContentType(r.Header.Get("Content-Type"))
	body, err := io.ReadAll(r.Body)
	if err != nil {
		return codec, err
	}
	return codec, codec.Unmarshal(body, v)
}

// writeMsg encodes a response with the given codec.
func writeMsg(w http.ResponseWriter, codec Codec, v interface{}) {
	data, err := codec.Marshal(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", codec.ContentType())
	w.Write(data)
}
