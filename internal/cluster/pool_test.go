package cluster

import (
	"fmt"
	"testing"
	"unsafe"
)

// TestInternStringBounded pins the intern table's two contracts: hot
// strings dedupe to one backing array, and adversarial input cannot
// grow the table past internLimit.
func TestInternStringBounded(t *testing.T) {
	// Earlier tests (the fuzz seed corpus in particular) may have
	// filled the table; evict one entry so the probe is storable. The
	// table is a cache, so this is always safe.
	internMu.Lock()
	if len(interns) >= internLimit {
		for k := range interns {
			delete(interns, k)
			break
		}
	}
	internMu.Unlock()

	a := internString([]byte("intern-bound-probe"))
	b := internString([]byte("intern-bound-probe"))
	if a != b || unsafe.StringData(a) != unsafe.StringData(b) {
		t.Fatalf("repeat intern did not dedupe: %p vs %p", unsafe.StringData(a), unsafe.StringData(b))
	}
	if got := internString(nil); got != "" {
		t.Fatalf("intern(nil) = %q", got)
	}

	// Flood with distinct values, as a fuzzer-driven decode would.
	for i := 0; i < 3*internLimit; i++ {
		s := fmt.Sprintf("intern-flood-%d", i)
		if got := internString([]byte(s)); got != s {
			t.Fatalf("intern(%q) = %q", s, got)
		}
	}
	internMu.RLock()
	n := len(interns)
	internMu.RUnlock()
	if n > internLimit {
		t.Fatalf("intern table grew to %d entries, limit %d", n, internLimit)
	}
}

// TestReleaseMessageResets pins what ReleaseMessage keeps (slice
// capacity, for the next allocation-free decode) and what it clears
// (lengths, scalars, and any pointer that may alias shared storage).
func TestReleaseMessageResets(t *testing.T) {
	t.Run("submit-request", func(t *testing.T) {
		m := &SubmitRequest{Pool: "heavy", Queries: make([]QueryMsg, 5, 8)}
		qs := m.Queries
		ReleaseMessage(m)
		if m.Pool != "" || len(m.Queries) != 0 {
			t.Fatalf("not reset: %+v", m)
		}
		if cap(m.Queries) != cap(qs) {
			t.Fatalf("capacity dropped: %d != %d", cap(m.Queries), cap(qs))
		}
	})
	t.Run("pull-response", func(t *testing.T) {
		m := &PullResponse{Queries: make([]QueryMsg, 3, 16), RingEpoch: 9, LeaseDeadline: 1.5}
		qs := m.Queries
		ReleaseMessage(m)
		if m.RingEpoch != 0 || m.LeaseDeadline != 0 || len(m.Queries) != 0 || cap(m.Queries) != cap(qs) {
			t.Fatalf("not reset with capacity kept: %+v cap=%d", m, cap(m.Queries))
		}
	})
	t.Run("complete-request", func(t *testing.T) {
		m := &CompleteRequest{
			WorkerID: 3, Role: "light", LeaseDeadline: 2,
			Items: []CompleteItem{{ID: 1, Features: make([]float64, 4, 4)}},
		}
		items := m.Items
		ReleaseMessage(m)
		if m.WorkerID != 0 || m.Role != "" || m.LeaseDeadline != 0 || len(m.Items) != 0 {
			t.Fatalf("not reset: %+v", m)
		}
		if cap(m.Items) != cap(items) {
			t.Fatalf("item capacity dropped: %d != %d", cap(m.Items), cap(items))
		}
		// The item structs (and their feature capacity) stay behind the
		// length for reuse by the next decode.
		if kept := items[:1]; kept[0].Features == nil {
			t.Fatalf("feature capacity dropped: %+v", kept[0])
		}
	})
	t.Run("results-response", func(t *testing.T) {
		// Result features alias the collector arena: release must nil
		// them out in place so a later decode cannot scribble on the
		// arena through a recycled element.
		arena := []float64{1, 2, 3}
		m := &ResultsResponse{Results: []QueryResponse{{ID: 7, Variant: "sdturbo", Features: arena}}}
		rs := m.Results
		ReleaseMessage(m)
		if len(m.Results) != 0 || cap(m.Results) != cap(rs) {
			t.Fatalf("not reset with capacity kept: %+v", m)
		}
		if got := rs[:1][0]; got.Features != nil || got.ID != 0 || got.Variant != "" {
			t.Fatalf("recycled element still aliases the arena: %+v", got)
		}
	})
	t.Run("query-response", func(t *testing.T) {
		m := &QueryResponse{ID: 4, Variant: "sdv15", Features: []float64{1}, Deferred: true}
		ReleaseMessage(m)
		if m.ID != 0 || m.Variant != "" || m.Features != nil || m.Deferred {
			t.Fatalf("not zeroed: %+v", m)
		}
	})
	t.Run("scalar-messages", func(t *testing.T) {
		pr := &PullRequest{WorkerID: 1, Role: "light", Max: 8, Wait: 2, Drain: true}
		ReleaseMessage(pr)
		if *pr != (PullRequest{}) {
			t.Fatalf("PullRequest not zeroed: %+v", pr)
		}
		rr := &ResultsRequest{Max: 4, Wait: 1}
		ReleaseMessage(rr)
		if *rr != (ResultsRequest{}) {
			t.Fatalf("ResultsRequest not zeroed: %+v", rr)
		}
	})
}

// TestTCPSlotReuse pins the correlation table's reuse discipline:
// sequential calls share one slot, the free list is LIFO, releasing
// bumps the generation so stale frame ids can never match, and a
// result that raced into the buffer is drained before the next
// occupant arrives.
func TestTCPSlotReuse(t *testing.T) {
	cs := &tcpConnState{}

	sl, id := cs.acquireSlotLocked()
	if idx, gen := uint32(id), uint32(id>>32); idx != 0 || gen != 0 {
		t.Fatalf("first acquire: idx=%d gen=%d", idx, gen)
	}
	if !sl.busy {
		t.Fatal("acquired slot not busy")
	}
	cs.releaseSlotLocked(id)
	if sl.busy || sl.gen != 1 {
		t.Fatalf("release did not retire: busy=%v gen=%d", sl.busy, sl.gen)
	}

	// Sequential reuse: same slot index, advancing generation, no
	// table growth.
	for i := 1; i <= 4; i++ {
		sl2, id2 := cs.acquireSlotLocked()
		if sl2 != sl {
			t.Fatalf("sequential call did not reuse slot 0")
		}
		if gen := uint32(id2 >> 32); gen != uint32(i) {
			t.Fatalf("call %d: gen=%d", i, gen)
		}
		cs.releaseSlotLocked(id2)
	}
	if len(cs.slots) != 1 {
		t.Fatalf("table grew to %d slots for sequential calls", len(cs.slots))
	}

	// Concurrent high-water: the table grows to the peak and is then
	// stable; released indexes come back LIFO.
	ids := make([]uint64, 3)
	for i := range ids {
		_, ids[i] = cs.acquireSlotLocked()
	}
	if len(cs.slots) != 3 {
		t.Fatalf("table = %d slots at concurrency 3", len(cs.slots))
	}
	for i := range ids {
		cs.releaseSlotLocked(ids[i])
	}
	if _, id := cs.acquireSlotLocked(); uint32(id) != 2 {
		t.Fatalf("free list not LIFO: reacquired idx %d", uint32(id))
	} else {
		cs.releaseSlotLocked(id)
	}

	// A response that races into the buffer just as its call gives up
	// is drained on release — the next occupant starts clean and the
	// frame buffer goes back to the pool.
	sl3, id3 := cs.acquireSlotLocked()
	bp := getFrame()
	sl3.ch <- tcpResult{bp: bp, payload: *bp}
	cs.releaseSlotLocked(id3)
	select {
	case res := <-sl3.ch:
		t.Fatalf("stale result leaked to next occupant: %+v", res)
	default:
	}
}
