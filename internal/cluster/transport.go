package cluster

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"time"
)

// LBConn is a client connection to the load balancer's data and
// control plane. Implementations: NewHTTPLBConn (persistent HTTP with
// a pluggable Codec) and NewLocalLBConn (in-process direct dispatch,
// zero serialization).
type LBConn interface {
	// Submit admits one query and blocks until it completes or drops.
	Submit(ctx context.Context, q QueryMsg) (QueryResponse, error)
	// SubmitBatch admits a batch of queries asynchronously; results
	// arrive via PollResults.
	SubmitBatch(ctx context.Context, req SubmitRequest) error
	// PollResults long-polls for completed results of batch-submitted
	// queries.
	PollResults(ctx context.Context, req ResultsRequest) (ResultsResponse, error)
	// Pull long-polls for up to req.Max queued queries.
	Pull(ctx context.Context, req PullRequest) (PullResponse, error)
	// Complete reports a finished batch.
	Complete(ctx context.Context, req CompleteRequest) error
	// Configure updates the LB policy knobs.
	Configure(ctx context.Context, req ConfigureLBRequest) error
	// Stats fetches the LB's control-plane report.
	Stats(ctx context.Context) (LBStats, error)
}

// ReusingLBConn is the optional buffer-reuse capability of an LBConn:
// the Into variants decode into a caller-owned response struct,
// reusing its slice capacity across calls instead of allocating fresh
// response slices per call. Callers on a hot loop keep one persistent
// response struct and go through PullResultsInto/PollResultsInto (the
// package-level helpers below fall back to the by-value methods on
// conns without the capability). The response is overwritten entirely
// on every call; anything the caller wants to retain across calls
// must be copied out first.
type ReusingLBConn interface {
	LBConn
	// PullInto is Pull with a caller-owned response buffer.
	PullInto(ctx context.Context, req PullRequest, resp *PullResponse) error
	// PollResultsInto is PollResults with a caller-owned response
	// buffer.
	PollResultsInto(ctx context.Context, req ResultsRequest, resp *ResultsResponse) error
}

// MembershipSource is the optional membership-discovery capability of
// an LBConn: it reports the serving tier's current ring epoch and
// member list (with dial addresses and placement weights when known).
// Followers — standalone frontends and workers tracking an elastic
// tier — poll it cheaply (the response is a few dozen bytes) and act
// only when the epoch advances, so steady state costs one tiny read
// per poll interval and a membership flip propagates within one
// interval with no redials or operator intervention. It is a separate
// interface rather than an LBConn method so existing LBConn
// implementations (including test doubles outside this package) keep
// compiling; MembershipFromConn is the capability-checking accessor.
type MembershipSource interface {
	// Membership returns the current ring epoch and member list.
	Membership(ctx context.Context) (MembershipResponse, error)
}

// MembershipFromConn fetches membership via the conn's capability if
// it has one; ok is false when the conn cannot report membership.
func MembershipFromConn(ctx context.Context, conn LBConn) (m MembershipResponse, ok bool, err error) {
	src, has := conn.(MembershipSource)
	if !has {
		return MembershipResponse{}, false, nil
	}
	m, err = src.Membership(ctx)
	return m, true, err
}

// PullIntoConn pulls via the conn's buffer-reusing fast path when it
// has one, falling back to the by-value Pull otherwise. resp is
// overwritten entirely either way.
func PullIntoConn(ctx context.Context, conn LBConn, req PullRequest, resp *PullResponse) error {
	if rc, ok := conn.(ReusingLBConn); ok {
		return rc.PullInto(ctx, req, resp)
	}
	out, err := conn.Pull(ctx, req)
	*resp = out
	return err
}

// PollResultsIntoConn polls via the conn's buffer-reusing fast path
// when it has one, falling back to the by-value PollResults otherwise.
func PollResultsIntoConn(ctx context.Context, conn LBConn, req ResultsRequest, resp *ResultsResponse) error {
	if rc, ok := conn.(ReusingLBConn); ok {
		return rc.PollResultsInto(ctx, req, resp)
	}
	out, err := conn.PollResults(ctx, req)
	*resp = out
	return err
}

// WorkerConn is a client connection to one worker's control plane.
type WorkerConn interface {
	// Configure reassigns the worker's role and batch size.
	Configure(ctx context.Context, req ConfigureWorkerRequest) error
	// Stats fetches the worker's control-plane report.
	Stats(ctx context.Context) (WorkerStats, error)
}

// Transport names accepted by NewTransport and the -transport flags.
const (
	TransportJSON   = "json"   // HTTP with the JSON codec
	TransportBinary = "binary" // HTTP with the binary codec
	TransportInproc = "inproc" // in-process direct dispatch
	TransportTCP    = "tcp"    // raw framed TCP with the binary codec
)

// Transport assembles a cluster's connections: it makes servers
// reachable and hands out conns for the workers, the controller, and
// the replay client. The HTTP transports serve components on loopback
// listeners and connect them with persistent keep-alive connections;
// the TCP transport uses persistent multiplexed framed connections;
// the in-process transport skips the network and the codec entirely.
type Transport interface {
	// Name returns the transport name ("json", "binary", "inproc",
	// "tcp").
	Name() string
	// ServeLB makes the LB reachable and returns a conn to it.
	ServeLB(s *LBServer) (LBConn, error)
	// ServeWorker makes a worker's control plane reachable.
	ServeWorker(s *WorkerServer) (WorkerConn, error)
	// Close tears down listeners (no-op for inproc).
	Close()
	// Errors exposes fatal transport failures (a connection lost for
	// good, dial retries exhausted). Harnesses watch it so a dead
	// transport aborts the run instead of silently dropping queries.
	// A nil channel means the transport never reports (inproc cannot
	// fail; HTTP failures surface per call).
	Errors() <-chan error
}

// NewTransport builds a transport by name. Empty defaults to JSON
// over HTTP, the compatibility wire path.
func NewTransport(name string) (Transport, error) {
	switch name {
	case "", TransportJSON:
		return &httpTransport{name: TransportJSON, codec: CodecJSON, client: NewWireClient(0)}, nil
	case TransportBinary:
		return &httpTransport{name: TransportBinary, codec: CodecBinary, client: NewWireClient(0)}, nil
	case TransportInproc:
		return localTransport{}, nil
	case TransportTCP:
		return newTCPTransport(CodecBinary), nil
	}
	return nil, fmt.Errorf("cluster: unknown transport %q (have json, binary, inproc, tcp)", name)
}

// DialLB connects to a standalone load balancer process. transport is
// "http" (or empty) for the HTTP wire path — addr is a base URL like
// "http://host:8100" — or "tcp" for the framed TCP path, with addr a
// "host:port". The cmd binaries use it behind their -transport flags.
func DialLB(transport, addr string, codec Codec) (LBConn, error) {
	switch transport {
	case "", "http":
		return NewHTTPLBConn(NewWireClient(0), addr, codec), nil
	case TransportTCP:
		if err := checkTCPAddr(addr); err != nil {
			return nil, err
		}
		return NewTCPLBConn(addr, codec), nil
	}
	return nil, fmt.Errorf("cluster: unknown dial transport %q (have http, tcp)", transport)
}

// DialWorker connects to a standalone worker's control plane; see
// DialLB for the transport names.
func DialWorker(transport, addr string, codec Codec) (WorkerConn, error) {
	switch transport {
	case "", "http":
		return NewHTTPWorkerConn(NewWireClient(0), addr, codec), nil
	case TransportTCP:
		if err := checkTCPAddr(addr); err != nil {
			return nil, err
		}
		return NewTCPWorkerConn(addr, codec), nil
	}
	return nil, fmt.Errorf("cluster: unknown dial transport %q (have http, tcp)", transport)
}

// NewWireClient returns an HTTP client tuned for the cluster data
// path: persistent connections with a per-host idle pool large enough
// that every worker's long-poll and every in-flight submit batch
// reuses a warm connection instead of redialing. A zero timeout
// defaults to 5 minutes (long polls hold requests open).
func NewWireClient(timeout time.Duration) *http.Client {
	if timeout <= 0 {
		timeout = 5 * time.Minute
	}
	tr := http.DefaultTransport.(*http.Transport).Clone()
	tr.MaxIdleConns = 256
	tr.MaxIdleConnsPerHost = 128
	return &http.Client{Transport: tr, Timeout: timeout}
}

// httpTransport serves components on loopback HTTP listeners.
type httpTransport struct {
	name   string
	codec  Codec
	client *http.Client
	srvs   []*httptest.Server
}

func (t *httpTransport) Name() string { return t.name }

func (t *httpTransport) ServeLB(s *LBServer) (LBConn, error) {
	srv := httptest.NewServer(s.Mux())
	t.srvs = append(t.srvs, srv)
	return NewHTTPLBConn(t.client, srv.URL, t.codec), nil
}

func (t *httpTransport) ServeWorker(s *WorkerServer) (WorkerConn, error) {
	srv := httptest.NewServer(s.Mux())
	t.srvs = append(t.srvs, srv)
	return NewHTTPWorkerConn(t.client, srv.URL, t.codec), nil
}

func (t *httpTransport) Close() {
	for _, s := range t.srvs {
		s.Close()
	}
	t.srvs = nil
}

func (t *httpTransport) Errors() <-chan error { return nil }

// localTransport wires components with direct calls.
type localTransport struct{}

func (localTransport) Name() string                        { return TransportInproc }
func (localTransport) ServeLB(s *LBServer) (LBConn, error) { return NewLocalLBConn(s), nil }
func (localTransport) ServeWorker(s *WorkerServer) (WorkerConn, error) {
	return NewLocalWorkerConn(s), nil
}
func (localTransport) Close() {}

func (localTransport) Errors() <-chan error { return nil }

// --- HTTP conns ---

// httpPeer is the shared request machinery of the HTTP conns.
type httpPeer struct {
	client *http.Client
	base   string
	codec  Codec
}

// call POSTs in (codec-encoded) to path and decodes the response into
// out when non-nil. The response body is always fully consumed so the
// underlying connection returns to the keep-alive pool.
func (p httpPeer) call(ctx context.Context, path string, in, out interface{}) error {
	body, err := p.codec.Marshal(in)
	if err != nil {
		return fmt.Errorf("cluster: marshal %s: %w", path, err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, p.base+path, bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("cluster: request %s: %w", path, err)
	}
	req.Header.Set("Content-Type", p.codec.ContentType())
	resp, err := p.client.Do(req)
	if err != nil {
		return fmt.Errorf("cluster: post %s: %w", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return fmt.Errorf("cluster: post %s: status %s", path, resp.Status)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("cluster: read %s: %w", path, err)
	}
	if out == nil {
		return nil
	}
	if err := p.codec.Unmarshal(data, out); err != nil {
		return fmt.Errorf("cluster: decode %s: %w", path, err)
	}
	return nil
}

// get GETs path with an Accept header selecting the codec.
func (p httpPeer) get(ctx context.Context, path string, out interface{}) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.base+path, nil)
	if err != nil {
		return fmt.Errorf("cluster: request %s: %w", path, err)
	}
	req.Header.Set("Accept", p.codec.ContentType())
	resp, err := p.client.Do(req)
	if err != nil {
		return fmt.Errorf("cluster: get %s: %w", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return fmt.Errorf("cluster: get %s: status %s", path, resp.Status)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("cluster: read %s: %w", path, err)
	}
	return p.codec.Unmarshal(data, out)
}

type httpLBConn struct{ httpPeer }

// NewHTTPLBConn connects to a load balancer at baseURL using the
// given codec. Pass a NewWireClient (or any keep-alive client); nil
// uses a default wire client.
func NewHTTPLBConn(client *http.Client, baseURL string, codec Codec) LBConn {
	if client == nil {
		client = NewWireClient(0)
	}
	if codec == nil {
		codec = CodecJSON
	}
	return httpLBConn{httpPeer{client: client, base: baseURL, codec: codec}}
}

func (c httpLBConn) Submit(ctx context.Context, q QueryMsg) (QueryResponse, error) {
	var resp QueryResponse
	err := c.call(ctx, "/query", &q, &resp)
	return resp, err
}

func (c httpLBConn) SubmitBatch(ctx context.Context, req SubmitRequest) error {
	return c.call(ctx, "/submit", &req, nil)
}

func (c httpLBConn) PollResults(ctx context.Context, req ResultsRequest) (ResultsResponse, error) {
	var resp ResultsResponse
	err := c.call(ctx, "/results", &req, &resp)
	return resp, err
}

func (c httpLBConn) Pull(ctx context.Context, req PullRequest) (PullResponse, error) {
	var resp PullResponse
	err := c.call(ctx, "/pull", &req, &resp)
	return resp, err
}

// PullInto and PollResultsInto decode into the caller's struct,
// reusing slice capacity under the binary codec (which overwrites
// every field); the JSON codec merges into dirty targets, so it falls
// back to a fresh decode.

func (c httpLBConn) PullInto(ctx context.Context, req PullRequest, resp *PullResponse) error {
	if c.codec.Name() != CodecNameBinary {
		out, err := c.Pull(ctx, req)
		*resp = out
		return err
	}
	return c.call(ctx, "/pull", &req, resp)
}

func (c httpLBConn) PollResultsInto(ctx context.Context, req ResultsRequest, resp *ResultsResponse) error {
	if c.codec.Name() != CodecNameBinary {
		out, err := c.PollResults(ctx, req)
		*resp = out
		return err
	}
	return c.call(ctx, "/results", &req, resp)
}

func (c httpLBConn) Complete(ctx context.Context, req CompleteRequest) error {
	return c.call(ctx, "/complete", &req, nil)
}

func (c httpLBConn) Configure(ctx context.Context, req ConfigureLBRequest) error {
	return c.call(ctx, "/configure", &req, nil)
}

func (c httpLBConn) Stats(ctx context.Context) (LBStats, error) {
	var out LBStats
	err := c.get(ctx, "/stats", &out)
	return out, err
}

func (c httpLBConn) Membership(ctx context.Context) (MembershipResponse, error) {
	var out MembershipResponse
	err := c.get(ctx, "/membership", &out)
	return out, err
}

type httpWorkerConn struct{ httpPeer }

// NewHTTPWorkerConn connects to a worker's control plane at baseURL.
func NewHTTPWorkerConn(client *http.Client, baseURL string, codec Codec) WorkerConn {
	if client == nil {
		client = NewWireClient(0)
	}
	if codec == nil {
		codec = CodecJSON
	}
	return httpWorkerConn{httpPeer{client: client, base: baseURL, codec: codec}}
}

func (c httpWorkerConn) Configure(ctx context.Context, req ConfigureWorkerRequest) error {
	return c.call(ctx, "/configure", &req, nil)
}

func (c httpWorkerConn) Stats(ctx context.Context) (WorkerStats, error) {
	var out WorkerStats
	err := c.get(ctx, "/stats", &out)
	return out, err
}

// --- in-process conns ---

type localLBConn struct{ s *LBServer }

// NewLocalLBConn returns an LBConn that dispatches into the server
// with direct calls — the in-process fast path: no serialization, no
// sockets, no goroutine-per-request.
func NewLocalLBConn(s *LBServer) LBConn { return localLBConn{s: s} }

func (c localLBConn) Submit(ctx context.Context, q QueryMsg) (QueryResponse, error) {
	resp, ok := c.s.Submit(ctx, q)
	if !ok {
		return QueryResponse{}, ctx.Err()
	}
	return resp, nil
}

func (c localLBConn) SubmitBatch(ctx context.Context, req SubmitRequest) error {
	c.s.SubmitBatchReq(req)
	return ctx.Err()
}

func (c localLBConn) PollResults(ctx context.Context, req ResultsRequest) (ResultsResponse, error) {
	return c.s.PollResults(ctx, req), ctx.Err()
}

func (c localLBConn) Pull(ctx context.Context, req PullRequest) (PullResponse, error) {
	return c.s.Pull(ctx, req), ctx.Err()
}

func (c localLBConn) PullInto(ctx context.Context, req PullRequest, resp *PullResponse) error {
	c.s.PullInto(ctx, req, resp)
	return ctx.Err()
}

func (c localLBConn) PollResultsInto(ctx context.Context, req ResultsRequest, resp *ResultsResponse) error {
	c.s.PollResultsInto(ctx, req, resp)
	return ctx.Err()
}

func (c localLBConn) Complete(ctx context.Context, req CompleteRequest) error {
	c.s.Complete(req)
	return ctx.Err()
}

func (c localLBConn) Configure(ctx context.Context, req ConfigureLBRequest) error {
	c.s.Configure(req)
	return ctx.Err()
}

func (c localLBConn) Stats(ctx context.Context) (LBStats, error) {
	return c.s.Stats(), ctx.Err()
}

func (c localLBConn) Membership(ctx context.Context) (MembershipResponse, error) {
	return c.s.Membership(), ctx.Err()
}

type localWorkerConn struct{ s *WorkerServer }

// NewLocalWorkerConn returns a WorkerConn dispatching direct calls.
func NewLocalWorkerConn(s *WorkerServer) WorkerConn { return localWorkerConn{s: s} }

func (c localWorkerConn) Configure(ctx context.Context, req ConfigureWorkerRequest) error {
	c.s.Configure(req)
	return ctx.Err()
}

func (c localWorkerConn) Stats(ctx context.Context) (WorkerStats, error) {
	return c.s.Stats(), ctx.Err()
}
