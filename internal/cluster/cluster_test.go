package cluster

import (
	"math"
	"net/http/httptest"
	"testing"
	"time"

	"diffserve/internal/allocator"
	"diffserve/internal/cascade"
	"diffserve/internal/controller"
	"diffserve/internal/discriminator"
	"diffserve/internal/imagespace"
	"diffserve/internal/loadbalancer"
	"diffserve/internal/model"
	"diffserve/internal/stats"
	"diffserve/internal/trace"
)

type fixtures struct {
	space  *imagespace.Space
	light  *model.Variant
	heavy  *model.Variant
	scorer discriminator.Scorer
	prof   *cascade.DeferralProfile
}

func newFixtures(t testing.TB) *fixtures {
	t.Helper()
	rng := stats.NewRNG(808)
	space, err := imagespace.NewSpace(imagespace.DefaultSpaceConfig(), rng.Stream("space"))
	if err != nil {
		t.Fatal(err)
	}
	reg := model.BuiltinRegistry()
	light, heavy := reg.MustGet("sdturbo"), reg.MustGet("sdv15")
	d, err := discriminator.New(discriminator.Config{
		Arch: discriminator.ArchEfficientNet, Train: discriminator.TrainGT,
	}, rng.Stream("disc"))
	if err != nil {
		t.Fatal(err)
	}
	casc, err := cascade.New(space, light, heavy, d)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := cascade.ProfileDeferral(casc, space.SampleQueries(900000, 600))
	if err != nil {
		t.Fatal(err)
	}
	return &fixtures{space: space, light: light, heavy: heavy, scorer: d, prof: prof}
}

func (f *fixtures) controller(t testing.TB, workers int, slo float64) *controller.Controller {
	t.Helper()
	a, err := allocator.NewMILP(allocator.Config{
		Light: f.light, Heavy: f.heavy,
		DiscPerImage: f.scorer.PerImageLatency(),
		Deferral:     f.prof,
		TotalWorkers: workers,
		SLO:          slo,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := controller.New(controller.Config{Alloc: a})
	if err != nil {
		t.Fatal(err)
	}
	return ctrl
}

func TestClockTimescale(t *testing.T) {
	c := NewClock(0.01)
	if c.Timescale() != 0.01 {
		t.Errorf("timescale = %v", c.Timescale())
	}
	start := time.Now()
	c.SleepTrace(1) // 1 trace second = 10ms wall
	if wall := time.Since(start); wall < 8*time.Millisecond || wall > 250*time.Millisecond {
		t.Errorf("scaled sleep took %v", wall)
	}
	if now := c.Now(); now < 0.5 || now > 30 {
		t.Errorf("trace now = %v", now)
	}
	c.SleepTrace(-1) // no-op
	if NewClock(0).Timescale() != 1 {
		t.Error("zero timescale should default to 1")
	}
}

func TestLBServerQueryCompleteRoundTrip(t *testing.T) {
	clock := NewClock(0.01)
	lb := NewLBServer(LBConfig{
		Mode: loadbalancer.ModeCascade, SLO: 5,
		LightMinExec: 0.1, HeavyMinExec: 1.78, Clock: clock, Seed: 1,
	})
	srv := httptest.NewServer(lb.Mux())
	defer srv.Close()
	client := srv.Client()

	// Submit asynchronously; the call blocks until completion.
	respCh := make(chan QueryResponse, 1)
	go func() {
		var resp QueryResponse
		if err := postJSON(client, srv.URL+"/query", QueryMsg{ID: 7, Arrival: 0.001}, &resp); err != nil {
			t.Error(err)
		}
		respCh <- resp
	}()

	// Pull it as a light worker.
	var pulled PullResponse
	deadline := time.Now().Add(5 * time.Second)
	for len(pulled.Queries) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("query never appeared on the light queue")
		}
		if err := postJSON(client, srv.URL+"/pull", PullRequest{WorkerID: 0, Role: "light", Max: 4}, &pulled); err != nil {
			t.Fatal(err)
		}
	}
	if pulled.Queries[0].ID != 7 {
		t.Fatalf("pulled %+v", pulled.Queries)
	}

	// Complete it above threshold (threshold defaults to 0).
	err := postJSON(client, srv.URL+"/complete", CompleteRequest{
		WorkerID: 0, Role: "light",
		Items: []CompleteItem{{ID: 7, Arrival: 0.001, Variant: "sdturbo", Features: []float64{1}, Confidence: 0.9}},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case resp := <-respCh:
		if resp.Dropped || resp.Variant != "sdturbo" || resp.Deferred {
			t.Errorf("response = %+v", resp)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("client never unblocked")
	}
	if lb.Collector().Len() != 1 {
		t.Errorf("collector has %d records", lb.Collector().Len())
	}
}

func TestLBServerDefersBelowThreshold(t *testing.T) {
	clock := NewClock(0.01)
	lb := NewLBServer(LBConfig{
		Mode: loadbalancer.ModeCascade, SLO: 50,
		LightMinExec: 0.1, HeavyMinExec: 1.78, Clock: clock, Seed: 1,
	})
	srv := httptest.NewServer(lb.Mux())
	defer srv.Close()
	// Resolve the deferred query's blocked waiter before Close.
	defer lb.DrainRemaining()
	client := srv.Client()

	// Raise the threshold so the completion defers.
	if err := postJSON(client, srv.URL+"/configure", ConfigureLBRequest{Threshold: 0.8}, nil); err != nil {
		t.Fatal(err)
	}
	go func() {
		var resp QueryResponse
		_ = postJSON(client, srv.URL+"/query", QueryMsg{ID: 1, Arrival: 0.001}, &resp)
	}()
	var pulled PullResponse
	deadline := time.Now().Add(5 * time.Second)
	for len(pulled.Queries) == 0 && time.Now().Before(deadline) {
		_ = postJSON(client, srv.URL+"/pull", PullRequest{Role: "light", Max: 1}, &pulled)
	}
	// Low-confidence completion: must land on the heavy queue.
	_ = postJSON(client, srv.URL+"/complete", CompleteRequest{
		Role:  "light",
		Items: []CompleteItem{{ID: 1, Arrival: 0.001, Variant: "sdturbo", Confidence: 0.2}},
	}, nil)
	var stats LBStats
	if err := getJSON(client, srv.URL+"/stats", &stats); err != nil {
		t.Fatal(err)
	}
	if stats.HeavyQueueLen != 1 {
		t.Errorf("heavy queue = %d, want 1 (deferred)", stats.HeavyQueueLen)
	}
}

func TestLBServerShedsExpired(t *testing.T) {
	clock := NewClock(0.001)
	lb := NewLBServer(LBConfig{
		Mode: loadbalancer.ModeCascade, SLO: 0.5,
		LightMinExec: 0.1, HeavyMinExec: 1.78, Clock: clock, Seed: 1,
	})
	srv := httptest.NewServer(lb.Mux())
	defer srv.Close()
	client := srv.Client()

	done := make(chan QueryResponse, 1)
	go func() {
		var resp QueryResponse
		_ = postJSON(client, srv.URL+"/query", QueryMsg{ID: 9, Arrival: 0.0001}, &resp)
		done <- resp
	}()
	// Wait past the deadline in trace time, then pull: the item must
	// be shed, not served.
	time.Sleep(5 * time.Millisecond) // 5 trace seconds at 0.001 scale
	var pulled PullResponse
	if err := postJSON(client, srv.URL+"/pull", PullRequest{Role: "light", Max: 4}, &pulled); err != nil {
		t.Fatal(err)
	}
	if len(pulled.Queries) != 0 {
		t.Errorf("expired query was handed out: %+v", pulled.Queries)
	}
	select {
	case resp := <-done:
		if !resp.Dropped {
			t.Errorf("response = %+v, want dropped", resp)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter never resolved after shed")
	}
}

func TestWorkerConfigureAndStats(t *testing.T) {
	f := newFixtures(t)
	clock := NewClock(0.001)
	ws := NewWorkerServer(WorkerConfig{
		ID: 3, Space: f.space,
		Light: f.light, Heavy: f.heavy, Scorer: f.scorer, Clock: clock,
		DisableLoadDelay: true,
	})
	srv := httptest.NewServer(ws.Mux())
	defer srv.Close()
	client := srv.Client()

	if err := postJSON(client, srv.URL+"/configure", ConfigureWorkerRequest{Role: "light", Batch: 8}, nil); err != nil {
		t.Fatal(err)
	}
	var st WorkerStats
	if err := getJSON(client, srv.URL+"/stats", &st); err != nil {
		t.Fatal(err)
	}
	if st.ID != 3 || st.Role != "light" || st.Batch != 8 {
		t.Errorf("stats = %+v", st)
	}
}

func TestHarnessEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster harness skipped in -short mode")
	}
	f := newFixtures(t)
	tr, err := trace.Static(8, 40, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(HarnessConfig{
		Space: f.space, Light: f.light, Heavy: f.heavy, Scorer: f.scorer,
		Mode: loadbalancer.ModeCascade, Workers: 8, SLO: 5,
		Trace: tr, Ctrl: f.controller(t, 8, 5),
		Timescale: 0.05, Seed: 42, DisableLoadDelay: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Queries == 0 {
		t.Fatal("no queries replayed")
	}
	if res.Collector.Len() < res.Queries*9/10 {
		t.Errorf("recorded %d of %d queries", res.Collector.Len(), res.Queries)
	}
	sum := res.Summary()
	if math.IsNaN(sum.FID) {
		t.Error("FID not computable")
	}
	// At 8 QPS with 8 workers, the cluster must serve nearly everything.
	if sum.ViolationRatio > 0.15 {
		t.Errorf("violation ratio = %v, too high for light load", sum.ViolationRatio)
	}
	// The cascade must actually defer some queries.
	if sum.DeferRatio == 0 {
		t.Error("no deferrals observed")
	}
	if len(res.Plans) == 0 {
		t.Error("no plans applied")
	}
	t.Logf("cluster run: FID=%.2f viol=%.3f defer=%.2f wall=%.1fs", sum.FID, sum.ViolationRatio, sum.DeferRatio, res.WallSeconds)
}

func TestHarnessValidation(t *testing.T) {
	f := newFixtures(t)
	tr, _ := trace.Static(2, 5, 1)
	good := HarnessConfig{
		Space: f.space, Light: f.light, Heavy: f.heavy, Scorer: f.scorer,
		Mode: loadbalancer.ModeCascade, Workers: 2, SLO: 5,
		Trace: tr, Ctrl: f.controller(t, 2, 5),
	}
	cases := []func(*HarnessConfig){
		func(c *HarnessConfig) { c.Space = nil },
		func(c *HarnessConfig) { c.Workers = 0 },
		func(c *HarnessConfig) { c.SLO = 0 },
		func(c *HarnessConfig) { c.Trace = nil },
		func(c *HarnessConfig) { c.Ctrl = nil },
		func(c *HarnessConfig) { c.Scorer = nil },
	}
	for i, mod := range cases {
		bad := good
		mod(&bad)
		if _, err := Run(bad); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}
