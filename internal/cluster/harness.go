package cluster

import (
	"context"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"time"

	"diffserve/internal/controller"
	"diffserve/internal/discriminator"
	"diffserve/internal/fid"
	"diffserve/internal/imagespace"
	"diffserve/internal/loadbalancer"
	"diffserve/internal/metrics"
	"diffserve/internal/model"
	"diffserve/internal/stats"
	"diffserve/internal/trace"
)

// HarnessConfig assembles an in-process cluster: LB + workers +
// controller on loopback HTTP, driven by a trace-replaying client.
// The same servers back the standalone cmd/ binaries; the harness
// exists so tests and the simulator-vs-cluster experiment can run the
// full network path in one process.
type HarnessConfig struct {
	Space        *imagespace.Space
	Light, Heavy *model.Variant
	Scorer       discriminator.Scorer
	Mode         loadbalancer.Mode
	Workers      int
	SLO          float64
	Trace        *trace.Trace
	// Ctrl owns the allocator; a fresh controller per run.
	Ctrl *controller.Controller
	// Timescale compresses trace time: 0.02 replays at 50x.
	Timescale float64
	// Seed drives arrival synthesis and random routing.
	Seed uint64
	// DisableLoadDelay makes model switches instantaneous.
	DisableLoadDelay bool
	// QueryIDBase offsets query IDs.
	QueryIDBase int
}

func (c *HarnessConfig) validate() error {
	switch {
	case c.Space == nil || c.Light == nil || c.Heavy == nil:
		return fmt.Errorf("cluster: space and variants required")
	case c.Workers <= 0:
		return fmt.Errorf("cluster: workers must be positive")
	case c.SLO <= 0:
		return fmt.Errorf("cluster: SLO must be positive")
	case c.Trace == nil:
		return fmt.Errorf("cluster: trace required")
	case c.Ctrl == nil:
		return fmt.Errorf("cluster: controller required")
	case c.Scorer == nil && c.Mode == loadbalancer.ModeCascade:
		return fmt.Errorf("cluster: scorer required in cascade mode")
	}
	return nil
}

// Result is the outcome of a harness run.
type Result struct {
	Collector *metrics.Collector
	Reference *fid.Reference
	Plans     []controller.PlanAt
	Queries   int
	// WallSeconds is the real elapsed time.
	WallSeconds float64
}

// Summary computes the end-to-end summary against the run's reference.
func (r *Result) Summary() metrics.Summary { return r.Collector.Summarize(r.Reference) }

// Run executes the full trace through the in-process cluster.
func Run(cfg HarnessConfig) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Timescale <= 0 {
		cfg.Timescale = 0.02
	}
	wallStart := time.Now()
	clock := NewClock(cfg.Timescale)
	rng := stats.NewRNG(cfg.Seed)

	discLat := 0.0
	if cfg.Scorer != nil && cfg.Mode == loadbalancer.ModeCascade {
		discLat = cfg.Scorer.PerImageLatency()
	}
	lb := NewLBServer(LBConfig{
		Mode: cfg.Mode, SLO: cfg.SLO,
		LightMinExec: cfg.Light.Latency.Latency(1) + discLat,
		HeavyMinExec: cfg.Heavy.Latency.Latency(1),
		Clock:        clock, Seed: cfg.Seed,
	})
	lbSrv := httptest.NewServer(lb.Mux())
	defer lbSrv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var scorer discriminator.Scorer
	if cfg.Mode == loadbalancer.ModeCascade {
		scorer = cfg.Scorer
	}
	workerURLs := make([]string, cfg.Workers)
	var workerSrvs []*httptest.Server
	for i := 0; i < cfg.Workers; i++ {
		ws := NewWorkerServer(WorkerConfig{
			ID: i, LBURL: lbSrv.URL,
			Space: cfg.Space, Light: cfg.Light, Heavy: cfg.Heavy,
			Scorer: scorer, Clock: clock,
			DisableLoadDelay: cfg.DisableLoadDelay,
		})
		srv := httptest.NewServer(ws.Mux())
		workerSrvs = append(workerSrvs, srv)
		workerURLs[i] = srv.URL
		go ws.Loop(ctx)
	}
	defer func() {
		for _, s := range workerSrvs {
			s.Close()
		}
	}()

	loop := NewControllerLoop(ControllerConfig{
		Ctrl: cfg.Ctrl, LBURL: lbSrv.URL, WorkerURLs: workerURLs,
		Mode: cfg.Mode, Clock: clock,
	})
	// Initial plan from the trace's starting rate, then periodic ticks.
	initialPlan, err := cfg.Ctrl.Tick(0, controller.TickInput{
		Arrivals: int(math.Round(cfg.Trace.RateAt(0) * cfg.Ctrl.Interval())),
	})
	if err != nil {
		return nil, err
	}
	loop.Apply(initialPlan)
	go loop.Run(ctx)

	// Setup is done (servers up, initial plan applied): rewind trace
	// time so setup cost does not eat into the replay.
	clock.Restart()

	// Replay the trace: one goroutine per query, submitted at its
	// arrival time.
	arrivals := cfg.Trace.Arrivals(rng.Stream("trace"))
	realFeats := make([][]float64, len(arrivals))
	client := &http.Client{Timeout: 5 * time.Minute}
	var wg sync.WaitGroup
	for i, at := range arrivals {
		id := cfg.QueryIDBase + i
		q := cfg.Space.SampleQuery(id)
		realFeats[i] = cfg.Space.RealImage(q)
		wg.Add(1)
		go func(id int, at float64) {
			defer wg.Done()
			clock.SleepTrace(at - clock.Now())
			var resp QueryResponse
			_ = postJSON(client, lbSrv.URL+"/query", QueryMsg{ID: id, Arrival: at}, &resp)
		}(id, at)
	}

	// Wait for the trace plus a drain grace, then shed leftovers.
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	grace := 3*cfg.SLO + cfg.Heavy.Latency.Latency(cfg.Heavy.Latency.MaxBatch())
	horizon := cfg.Trace.Duration() + grace
	select {
	case <-done:
	case <-time.After(time.Duration(horizon * cfg.Timescale * float64(time.Second))):
		lb.DrainRemaining()
		<-done
	}
	lb.DrainRemaining()
	cancel()

	ref, err := fid.NewReference(realFeats)
	if err != nil {
		return nil, fmt.Errorf("cluster: building FID reference: %w", err)
	}
	return &Result{
		Collector:   lb.Collector(),
		Reference:   ref,
		Plans:       loop.Plans(),
		Queries:     len(arrivals),
		WallSeconds: time.Since(wallStart).Seconds(),
	}, nil
}
