package cluster

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"diffserve/internal/controller"
	"diffserve/internal/discriminator"
	"diffserve/internal/fid"
	"diffserve/internal/imagespace"
	"diffserve/internal/loadbalancer"
	"diffserve/internal/metrics"
	"diffserve/internal/model"
	"diffserve/internal/stats"
	"diffserve/internal/trace"
)

// HarnessConfig assembles an in-process cluster: LB + workers +
// controller wired through a pluggable transport, driven by a
// trace-replaying client. The same servers back the standalone cmd/
// binaries; the harness exists so tests and the simulator-vs-cluster
// experiment can run the full data path in one process.
type HarnessConfig struct {
	Space        *imagespace.Space
	Light, Heavy *model.Variant
	Scorer       discriminator.Scorer
	Mode         loadbalancer.Mode
	Workers      int
	SLO          float64
	Trace        *trace.Trace
	// Ctrl owns the allocator; a fresh controller per run.
	Ctrl *controller.Controller
	// Timescale compresses trace time: 0.02 replays at 50x.
	Timescale float64
	// Seed drives arrival synthesis and random routing.
	Seed uint64
	// DisableLoadDelay makes model switches instantaneous.
	DisableLoadDelay bool
	// QueryIDBase offsets query IDs.
	QueryIDBase int
	// Transport selects how components are wired: "json" (HTTP +
	// JSON codec, the default), "binary" (HTTP + binary codec),
	// "tcp" (raw framed TCP + binary codec), or "inproc" (direct
	// calls, zero serialization — the fastest path for high timescale
	// factors).
	Transport string
	// TransportImpl overrides Transport with a pre-built transport.
	// The harness still owns and closes it. Tests use it to inject
	// failures mid-run.
	TransportImpl Transport
	// LBShards runs the sharded LB tier: the query stream is
	// partitioned across this many independent LBServer shards (each
	// with its own RNG stream "lb/<shard>"), worker i is pinned to
	// shard i mod LBShards, and the client plus controller speak to a
	// ShardedLB frontend. 0 or 1 runs the single-LB topology (unless
	// Reshard events are present, which force the frontend).
	LBShards int
	// RingVNodes selects the tier's placement exactly as
	// ShardedLBConfig.VNodes does: 0 keeps the legacy static modulus
	// (bit-identical to ShardOf), > 0 partitions by consistent-hash
	// ring — required for minimal-disruption resharding.
	RingVNodes int
	// Reshard schedules mid-trace membership changes: at each event's
	// trace time the harness adds a fresh shard (a new LBServer +
	// worker re-pin + role re-stripe) or removes one (draining its
	// queued work to the survivors). Events run in At order.
	Reshard []ReshardEvent
	// Autoscale, when set, hands frontend membership to the controller:
	// instead of (or in addition to) scheduled Reshard events, the
	// control loop grows and shrinks the shard tier from observed load.
	// Forces the ShardedLB frontend even over one initial shard.
	Autoscale *AutoscaleConfig
	// Steal enables cross-shard work stealing: a worker whose pinned
	// shard's long poll comes back empty tries zero-wait pulls on the
	// other members before sleeping. Soaks up the fractional capacity
	// mismatch integer worker striping leaves on non-divisible
	// worker/shard ratios.
	Steal bool
}

// AutoscaleConfig mirrors ElasticConfig's sizing knobs for harness
// runs (the harness supplies Frontend and Provision itself).
type AutoscaleConfig struct {
	// MinShards and MaxShards clamp the tier size (defaults 1 and the
	// initial shard count).
	MinShards, MaxShards int
	// ShardCapacityQPS is one shard's sustainable arrival rate.
	ShardCapacityQPS float64
	// UpTicks and DownTicks are the hysteresis bands (defaults 1, 3).
	UpTicks, DownTicks int
}

// ReshardEvent is one scheduled membership change in a harness run.
type ReshardEvent struct {
	// At is the trace time (seconds) the change applies.
	At float64
	// Action is "add" or "remove".
	Action string
	// Member is the ring member ID to add or remove. Added members
	// must be fresh IDs (never used before in the run).
	Member int
}

func (c *HarnessConfig) validate() error {
	switch {
	case c.Space == nil || c.Light == nil || c.Heavy == nil:
		return fmt.Errorf("cluster: space and variants required")
	case c.Workers <= 0:
		return fmt.Errorf("cluster: workers must be positive")
	case c.SLO <= 0:
		return fmt.Errorf("cluster: SLO must be positive")
	case c.Trace == nil:
		return fmt.Errorf("cluster: trace required")
	case c.Ctrl == nil:
		return fmt.Errorf("cluster: controller required")
	case c.Scorer == nil && c.Mode == loadbalancer.ModeCascade:
		return fmt.Errorf("cluster: scorer required in cascade mode")
	}
	for _, ev := range c.Reshard {
		if ev.Action != "add" && ev.Action != "remove" {
			return fmt.Errorf("cluster: reshard action %q (have add, remove)", ev.Action)
		}
		if ev.At < 0 {
			return fmt.Errorf("cluster: reshard event at negative trace time %g", ev.At)
		}
	}
	if c.Autoscale != nil && c.Autoscale.ShardCapacityQPS <= 0 {
		return fmt.Errorf("cluster: autoscale requires a positive shard capacity")
	}
	return nil
}

// Result is the outcome of a harness run.
type Result struct {
	Collector *metrics.Collector
	Reference *fid.Reference
	Plans     []controller.PlanAt
	Queries   int
	// Transport names the transport the run used.
	Transport string
	// LBShards is the LB shard count the run used (1 = single LB).
	LBShards int
	// PeakLBShards is the largest tier size the run reached (equals
	// LBShards unless resharding or autoscaling changed membership).
	PeakLBShards int
	// FinalLBShards is the tier size when the run ended.
	FinalLBShards int
	// LiveEpochs is the installed ring-epoch count at the end of the
	// run — with quiescence collapse it stays small (<= 2) no matter
	// how many membership changes the run made.
	LiveEpochs int
	// WallSeconds is the real elapsed time.
	WallSeconds float64
}

// Summary computes the end-to-end summary against the run's reference.
func (r *Result) Summary() metrics.Summary { return r.Collector.Summarize(r.Reference) }

// Run executes the full trace through the in-process cluster.
func Run(cfg HarnessConfig) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Timescale <= 0 {
		cfg.Timescale = 0.02
	}
	tp := cfg.TransportImpl
	if tp == nil {
		var err error
		if tp, err = NewTransport(cfg.Transport); err != nil {
			return nil, err
		}
	}
	defer tp.Close()

	wallStart := time.Now() //diffvet:allow walltime — WallSeconds measures real elapsed time for the run report
	clock := NewClock(cfg.Timescale)
	rng := stats.NewRNG(cfg.Seed)

	discLat := 0.0
	if cfg.Scorer != nil && cfg.Mode == loadbalancer.ModeCascade {
		discLat = cfg.Scorer.PerImageLatency()
	}
	// One LBServer per shard (one shard: the classic topology). Each
	// shard draws routing randomness from its own stream "lb/<member>"
	// of the run seed, so per-shard behavior is deterministic and
	// independent of the shard count of other runs — and of when the
	// shard joined.
	shardCount := cfg.LBShards
	if shardCount <= 0 {
		shardCount = 1
	}
	// Reshard events and autoscaling need the frontend even over one
	// initial shard.
	useFrontend := shardCount > 1 || len(cfg.Reshard) > 0 || cfg.Autoscale != nil
	newShardServer := func(member int) *LBServer {
		lbCfg := LBConfig{
			Mode: cfg.Mode, SLO: cfg.SLO,
			LightMinExec: cfg.Light.Latency.Latency(1) + discLat,
			HeavyMinExec: cfg.Heavy.Latency.Latency(1),
			Clock:        clock, Seed: cfg.Seed,
		}
		// Every shard of a sharded (or reshardable) tier draws from
		// its member's own stream, so shards added mid-run stay
		// decorrelated from the survivors; only the classic single-LB
		// topology keeps the default "lb" stream.
		if useFrontend {
			lbCfg.RNGStream = fmt.Sprintf("lb/%d", member)
		}
		return NewLBServer(lbCfg)
	}
	// servers tracks every LBServer the run ever creates — including
	// shards added or retired mid-trace — for the end-of-run drain and
	// the collector merge.
	var serverMu sync.Mutex
	var servers []*LBServer
	shardConns := make([]LBConn, shardCount)
	for i := 0; i < shardCount; i++ {
		lb := newShardServer(i)
		servers = append(servers, lb)
		var err error
		if shardConns[i], err = tp.ServeLB(lb); err != nil {
			return nil, err
		}
	}
	var lbConn LBConn
	var frontend *ShardedLB
	if !useFrontend {
		lbConn = shardConns[0]
	} else {
		var err error
		frontend, err = NewShardedLB(ShardedLBConfig{
			Shards: shardConns, Clock: clock, VNodes: cfg.RingVNodes,
			// Weight each member by the worker count pinned to it
			// (worker i serves member i mod N of the sorted ring), so
			// key shares track capacity when the worker count does not
			// divide the shard count. Divisible layouts yield uniform
			// weights, which keep the unweighted placement bit for bit.
			Weights: func(ms []int) map[int]int {
				w := make(map[int]int, len(ms))
				for i := 0; i < cfg.Workers; i++ {
					w[ms[i%len(ms)]]++
				}
				return w
			},
		})
		if err != nil {
			return nil, err
		}
		defer frontend.Close()
		lbConn = frontend
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Watch for fatal transport failures (a TCP peer gone for good,
	// dial retries exhausted): abort the run and surface the error
	// instead of silently dropping the submitted queries. Transient
	// events — an injected fault from a FaultTransport, a conn that
	// severed and recovered — are drained and ignored: a run under
	// fault injection must survive its own chaos, not abort on it.
	tpFailed := make(chan error, 1)
	if ch := tp.Errors(); ch != nil {
		go func() {
			for {
				select {
				case terr, ok := <-ch:
					if !ok {
						return
					}
					if terr == nil || IsTransientTransportError(terr) {
						continue
					}
					select {
					case tpFailed <- terr:
					default:
					}
					cancel()
					return
				case <-ctx.Done():
					return
				}
			}
		}()
	}

	var scorer discriminator.Scorer
	if cfg.Mode == loadbalancer.ModeCascade {
		scorer = cfg.Scorer
	}
	workerConns := make([]WorkerConn, cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		wCfg := WorkerConfig{
			// Workers pin themselves to their shard's LB: pulls,
			// completes, and deferrals all stay within the shard that
			// owns their queries.
			ID: i, LB: shardConns[i%shardCount],
			Space: cfg.Space, Light: cfg.Light, Heavy: cfg.Heavy,
			Scorer: scorer, Clock: clock,
			DisableLoadDelay: cfg.DisableLoadDelay,
		}
		if frontend != nil {
			// Dynamic membership: when a pull response carries a newer
			// ring epoch, worker i re-pins to the i-th member (mod N)
			// of the current ring — the same mapping the controller's
			// role striping assumes.
			id := i
			wCfg.RePin = func(epoch int) LBConn {
				ms := frontend.Members()
				if len(ms) == 0 {
					return nil
				}
				return frontend.MemberConn(ms[id%len(ms)])
			}
			// A dead conn re-resolves through the same member lookup:
			// if the worker's shard left the ring (or its conn died),
			// the current membership supplies the replacement pin.
			wCfg.Redial = wCfg.RePin
			if cfg.Steal {
				// Work stealing offers every other member's conn, own
				// pin included (the worker skips its current conn).
				wCfg.Steal = func() []LBConn {
					ms := frontend.Members()
					conns := make([]LBConn, 0, len(ms))
					for j, m := range ms {
						if j != id%len(ms) {
							conns = append(conns, frontend.MemberConn(m))
						}
					}
					return conns
				}
			}
		}
		ws := NewWorkerServer(wCfg)
		var err error
		if workerConns[i], err = tp.ServeWorker(ws); err != nil {
			return nil, err
		}
		go ws.Loop(ctx)
	}

	ctrlCfg := ControllerConfig{
		Ctrl: cfg.Ctrl, LB: lbConn, Workers: workerConns,
		Mode: cfg.Mode, Clock: clock, Shards: shardCount,
	}
	if a := cfg.Autoscale; a != nil {
		ctrlCfg.Elastic = &ElasticConfig{
			Frontend: frontend,
			Provision: func(ctx context.Context, member int) (LBConn, string, error) {
				lb := newShardServer(member)
				conn, err := tp.ServeLB(lb)
				if err != nil {
					return nil, "", err
				}
				serverMu.Lock()
				servers = append(servers, lb)
				serverMu.Unlock()
				return conn, "", nil
			},
			MinShards: a.MinShards, MaxShards: a.MaxShards,
			ShardCapacityQPS: a.ShardCapacityQPS,
			UpTicks:          a.UpTicks, DownTicks: a.DownTicks,
		}
	}
	loop := NewControllerLoop(ctrlCfg)
	// Initial plan from the trace's starting rate, then periodic ticks.
	initialPlan, err := cfg.Ctrl.Tick(0, controller.TickInput{
		Arrivals: int(math.Round(cfg.Trace.RateAt(0) * cfg.Ctrl.Interval())),
	})
	if err != nil {
		return nil, err
	}
	loop.Apply(ctx, initialPlan)
	go loop.Run(ctx)

	// Precompute arrivals and the FID reference features while setup
	// time is still free.
	arrivals := cfg.Trace.Arrivals(rng.Stream("trace"))
	realFeats := make([][]float64, len(arrivals))
	for i := range arrivals {
		q := cfg.Space.SampleQuery(cfg.QueryIDBase + i)
		realFeats[i] = cfg.Space.RealImage(q)
	}

	// Setup is done (servers up, initial plan applied): rewind trace
	// time so setup cost does not eat into the replay.
	clock.Restart()

	// Reshard driver: apply the scheduled membership changes at their
	// trace times. Each change installs a new ring epoch on the
	// frontend (adding a freshly served LBServer or retiring one),
	// updates the role-striping shard count, and forces an immediate
	// control tick so the new layout gets workers without waiting out
	// the control interval. A failed reshard is a configuration bug
	// and aborts the run like a fatal transport failure would.
	reshardFailed := make(chan error, 1)
	var peakMu sync.Mutex
	peakShards := shardCount
	if len(cfg.Reshard) > 0 {
		events := append([]ReshardEvent(nil), cfg.Reshard...)
		sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
		go func() {
			for _, ev := range events {
				if !clock.SleepTraceCtx(ctx, ev.At-clock.Now()) {
					return
				}
				var err error
				switch ev.Action {
				case "add":
					lb := newShardServer(ev.Member)
					var conn LBConn
					if conn, err = tp.ServeLB(lb); err == nil {
						serverMu.Lock()
						servers = append(servers, lb)
						serverMu.Unlock()
						err = frontend.AddShard(ctx, ev.Member, conn)
					}
				case "remove":
					err = frontend.RemoveShard(ctx, ev.Member)
				}
				if err != nil {
					select {
					case reshardFailed <- fmt.Errorf("cluster: reshard %s %d at t=%g: %w", ev.Action, ev.Member, ev.At, err):
					default:
					}
					cancel()
					return
				}
				n := frontend.Shards()
				peakMu.Lock()
				if n > peakShards {
					peakShards = n
				}
				peakMu.Unlock()
				loop.SetShards(n)
				loop.Restripe(ctx)
			}
		}()
	}

	// Replay the trace over the batched async submit path: one
	// submitter goroutine groups queries that are due together into a
	// single SubmitBatch round trip, and one collector goroutine
	// long-polls for results — persistent connections end to end
	// instead of a goroutine + blocking request per query.
	done := make(chan struct{})
	var collected sync.WaitGroup
	collected.Add(1)
	go func() { // collector
		defer collected.Done()
		got := 0
		var resp ResultsResponse // reused across polls
		for got < len(arrivals) && ctx.Err() == nil {
			err := PollResultsIntoConn(ctx, lbConn, ResultsRequest{Max: 1024, Wait: 1}, &resp)
			if err != nil {
				// Transient transport failure: back off briefly.
				clock.SleepTraceCtx(ctx, 0.05)
				continue
			}
			got += len(resp.Results)
		}
		if got >= len(arrivals) {
			close(done)
		}
	}()
	go func() { // submitter
		batch := make([]QueryMsg, 0, 64)
		i := 0
		for i < len(arrivals) {
			if !clock.SleepTraceCtx(ctx, arrivals[i]-clock.Now()) {
				return
			}
			now := clock.Now()
			batch = batch[:0]
			for i < len(arrivals) && arrivals[i] <= now {
				batch = append(batch, QueryMsg{ID: cfg.QueryIDBase + i, Arrival: arrivals[i]})
				i++
			}
			if err := lbConn.SubmitBatch(ctx, SubmitRequest{Queries: batch}); err != nil {
				return
			}
		}
	}()

	// Wait for every query to resolve, plus a drain grace; then shed
	// leftovers and, as a last resort, give up after a second grace
	// (a lost submit batch can leave the collector short). A fatal
	// transport failure aborts the wait immediately.
	var transportErr error
	drainAll := func() {
		serverMu.Lock()
		all := append([]*LBServer(nil), servers...)
		serverMu.Unlock()
		for _, lb := range all {
			lb.DrainRemaining()
		}
	}
	grace := 3*cfg.SLO + cfg.Heavy.Latency.Latency(cfg.Heavy.Latency.MaxBatch())
	horizon := cfg.Trace.Duration() + grace
	select {
	case <-done:
	case transportErr = <-tpFailed:
	case transportErr = <-reshardFailed:
	case <-time.After(clock.WallDuration(horizon)): //diffvet:allow walltime — shutdown watchdog must fire on wall time even if the trace clock stalls
		drainAll()
		select {
		case <-done:
		case transportErr = <-tpFailed:
		case transportErr = <-reshardFailed:
		case <-time.After(clock.WallDuration(grace) + 2*time.Second): //diffvet:allow walltime — drain grace watchdog must fire on wall time even if the trace clock stalls
		}
	}
	drainAll()
	cancel()
	collected.Wait()
	if transportErr == nil {
		// The failure may have raced with normal completion.
		select {
		case transportErr = <-tpFailed:
		default:
			select {
			case transportErr = <-reshardFailed:
			default:
			}
		}
	}
	if transportErr != nil {
		return nil, fmt.Errorf("cluster: %s transport failed mid-run: %w", tp.Name(), transportErr)
	}

	ref, err := fid.NewReference(realFeats)
	if err != nil {
		return nil, fmt.Errorf("cluster: building FID reference: %w", err)
	}
	serverMu.Lock()
	allServers := append([]*LBServer(nil), servers...)
	serverMu.Unlock()
	col := allServers[0].Collector()
	if len(allServers) > 1 {
		// Merge the per-shard collectors — retired shards included —
		// into one run-level view. The run is over: no shard is
		// recording anymore.
		col = metrics.NewCollector()
		for _, lb := range allServers {
			col.Merge(lb.Collector())
		}
	}
	res := &Result{
		Collector:     col,
		Reference:     ref,
		Plans:         loop.Plans(),
		Queries:       len(arrivals),
		Transport:     tp.Name(),
		LBShards:      shardCount,
		PeakLBShards:  shardCount,
		FinalLBShards: shardCount,
		LiveEpochs:    1,
		WallSeconds:   time.Since(wallStart).Seconds(), //diffvet:allow walltime — WallSeconds measures real elapsed time for the run report
	}
	if frontend != nil {
		peakMu.Lock()
		if peakShards > res.PeakLBShards {
			res.PeakLBShards = peakShards
		}
		peakMu.Unlock()
		if p := loop.PeakShards(); p > res.PeakLBShards {
			res.PeakLBShards = p
		}
		if n := frontend.Shards(); n > res.PeakLBShards {
			res.PeakLBShards = n
		}
		res.FinalLBShards = frontend.Shards()
		res.LiveEpochs = frontend.LiveEpochs()
	}
	return res, nil
}
