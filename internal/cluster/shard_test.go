package cluster

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"diffserve/internal/loadbalancer"
	"diffserve/internal/stats"
	"diffserve/internal/trace"
)

// newTestShards builds n LBServer shards on one clock with the
// per-shard "lb/<i>" RNG streams plus a frontend over direct conns.
func newTestShards(t testing.TB, n int, timescale, slo float64) ([]*LBServer, *ShardedLB) {
	t.Helper()
	clock := NewClock(timescale)
	lbs := make([]*LBServer, n)
	conns := make([]LBConn, n)
	for i := range lbs {
		lbs[i] = NewLBServer(LBConfig{
			Mode: loadbalancer.ModeCascade, SLO: slo,
			LightMinExec: 0.1, HeavyMinExec: 1.78,
			Clock: clock, Seed: 1, RNGStream: fmt.Sprintf("lb/%d", i),
			CoalesceWait: 1e-9, // dispatch partial batches immediately
		})
		conns[i] = NewLocalLBConn(lbs[i])
	}
	fe, err := NewShardedLB(ShardedLBConfig{Shards: conns, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fe.Close)
	return lbs, fe
}

// TestShardedLBRoutesByHash pins the frontend's partitioning to
// loadbalancer.ShardOf: every submitted query must be pullable only
// from its owning shard, and the merged result stream must return
// every ID exactly once.
func TestShardedLBRoutesByHash(t *testing.T) {
	const shards, queries = 3, 60
	lbs, fe := newTestShards(t, shards, 0.001, 1e9)
	ctx := context.Background()

	qs := make([]QueryMsg, queries)
	for i := range qs {
		qs[i] = QueryMsg{ID: i, Arrival: 0.001}
	}
	if err := fe.SubmitBatch(ctx, SubmitRequest{Queries: qs}); err != nil {
		t.Fatal(err)
	}

	// Drain each shard directly and check ownership.
	seen := map[int]int{}
	for s, lb := range lbs {
		for {
			resp := lb.Pull(ctx, PullRequest{Role: "light", Max: 16})
			if len(resp.Queries) == 0 {
				break
			}
			items := make([]CompleteItem, len(resp.Queries))
			for i, q := range resp.Queries {
				if want := loadbalancer.ShardOf(q.ID, shards); want != s {
					t.Errorf("query %d pulled from shard %d, ShardOf says %d", q.ID, s, want)
				}
				if _, dup := seen[q.ID]; dup {
					t.Errorf("query %d handed out twice", q.ID)
				}
				seen[q.ID] = s
				items[i] = CompleteItem{ID: q.ID, Arrival: q.Arrival, Variant: "sdturbo", Confidence: 0.9}
			}
			lb.Complete(CompleteRequest{Role: "light", Items: items})
		}
	}
	if len(seen) != queries {
		t.Fatalf("pulled %d of %d queries across shards", len(seen), queries)
	}

	// The merged result stream must surface each ID exactly once.
	got := map[int]bool{}
	deadline := time.Now().Add(10 * time.Second)
	for len(got) < queries && time.Now().Before(deadline) {
		resp, err := fe.PollResults(ctx, ResultsRequest{Max: 64, Wait: 5})
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range resp.Results {
			if got[r.ID] {
				t.Errorf("result %d delivered twice", r.ID)
			}
			if r.Dropped {
				t.Errorf("result %d dropped under unbounded SLO", r.ID)
			}
			got[r.ID] = true
		}
	}
	if len(got) != queries {
		t.Fatalf("collected %d of %d merged results", len(got), queries)
	}

	// Merged stats must sum the shards' counters.
	st, err := fe.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Completed != queries || st.Dropped != 0 || st.ArrivalsSinceTick != queries {
		t.Errorf("merged stats = %+v", st)
	}
}

// TestShardedLBAssignmentDeterminism replays the same trace-derived
// ID stream twice (fresh shard sets, same seed) and over a second
// transport, requiring the identical per-shard assignment each time.
func TestShardedLBAssignmentDeterminism(t *testing.T) {
	const shards = 2
	ids := make([]int, 0, 200)
	arr, err := trace.Static(10, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range arr.Arrivals(stats.NewRNG(3).Stream("trace")) {
		ids = append(ids, i)
	}
	if len(ids) == 0 {
		t.Fatal("empty trace")
	}

	assign := func(mk func() Transport) map[int]int {
		tp := mk()
		defer tp.Close()
		clock := NewClock(0.0005)
		conns := make([]LBConn, shards)
		lbs := make([]*LBServer, shards)
		for i := range conns {
			lbs[i] = NewLBServer(LBConfig{
				Mode: loadbalancer.ModeCascade, SLO: 1e9,
				LightMinExec: 0.1, HeavyMinExec: 1.78,
				Clock: clock, Seed: 7, RNGStream: fmt.Sprintf("lb/%d", i),
				CoalesceWait: 1e-9,
			})
			conn, err := tp.ServeLB(lbs[i])
			if err != nil {
				t.Fatal(err)
			}
			conns[i] = conn
		}
		fe, err := NewShardedLB(ShardedLBConfig{Shards: conns, Clock: clock})
		if err != nil {
			t.Fatal(err)
		}
		defer fe.Close()
		qs := make([]QueryMsg, len(ids))
		for i, id := range ids {
			qs[i] = QueryMsg{ID: id, Arrival: 0.001}
		}
		if err := fe.SubmitBatch(context.Background(), SubmitRequest{Queries: qs}); err != nil {
			t.Fatal(err)
		}
		out := map[int]int{}
		for s, lb := range lbs {
			for {
				resp := lb.Pull(context.Background(), PullRequest{Role: "light", Max: 64})
				if len(resp.Queries) == 0 {
					break
				}
				for _, q := range resp.Queries {
					out[q.ID] = s
				}
			}
			lb.DrainRemaining()
		}
		return out
	}

	mkInproc := func() Transport { return localTransport{} }
	mkTCP := func() Transport { return newTCPTransport(CodecBinary) }
	first := assign(mkInproc)
	if len(first) != len(ids) {
		t.Fatalf("first run assigned %d of %d", len(first), len(ids))
	}
	for name, mk := range map[string]func() Transport{"inproc-rerun": mkInproc, "tcp": mkTCP} {
		other := assign(mk)
		if len(other) != len(first) {
			t.Fatalf("%s: assigned %d of %d", name, len(other), len(first))
		}
		for id, s := range first {
			if other[id] != s {
				t.Errorf("%s: query %d on shard %d, first run had %d", name, id, other[id], s)
			}
		}
	}
}

// TestShardedLBStress hammers the frontend from concurrent batch
// submitters, per-shard pull/complete workers, frontend sweep
// pullers, and merged-result pollers, with cascade deferrals crossing
// pools inside each shard. Runs in -short mode on purpose: the verify
// script's -race leg executes it. Accounting must balance exactly.
func TestShardedLBStress(t *testing.T) {
	const (
		shards     = 2
		submitters = 4
		batches    = 40
		batchSize  = 8
		total      = submitters * batches * batchSize
	)
	lbs, fe := newTestShards(t, shards, 1e-5, 1e9)
	for _, lb := range lbs {
		lb.Configure(ConfigureLBRequest{Threshold: 0.5})
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var resolved atomic.Int64
	var wg sync.WaitGroup

	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for resolved.Load() < total && ctx.Err() == nil {
				resp, err := fe.PollResults(ctx, ResultsRequest{Max: 64, Wait: 50})
				if err != nil {
					return
				}
				resolved.Add(int64(len(resp.Results)))
			}
		}()
	}

	complete := func(conn LBConn, role string, qs []QueryMsg) {
		items := make([]CompleteItem, len(qs))
		for i, q := range qs {
			conf := 0.9
			if role == "light" && q.ID%2 == 0 {
				conf = 0.1 // defers to the heavy pool of the same shard
			}
			items[i] = CompleteItem{ID: q.ID, Arrival: q.Arrival, Variant: role, Confidence: conf}
		}
		_ = conn.Complete(ctx, CompleteRequest{Role: role, Items: items})
	}
	// Shard-pinned workers (the multi-host layout)...
	for s := 0; s < shards; s++ {
		conn := fe.ShardConn(s)
		for _, role := range []string{"light", "heavy"} {
			wg.Add(1)
			go func(conn LBConn, role string) {
				defer wg.Done()
				for resolved.Load() < total && ctx.Err() == nil {
					resp, err := conn.Pull(ctx, PullRequest{Role: role, Max: batchSize, Wait: 100})
					if err != nil || len(resp.Queries) == 0 {
						continue
					}
					complete(conn, role, resp.Queries)
				}
			}(conn, role)
		}
	}
	// ...plus frontend sweep pullers (Complete routes by ID hash).
	for _, role := range []string{"light", "heavy"} {
		wg.Add(1)
		go func(role string) {
			defer wg.Done()
			for resolved.Load() < total && ctx.Err() == nil {
				resp, err := fe.Pull(ctx, PullRequest{Role: role, Max: batchSize, Wait: 100})
				if err != nil || len(resp.Queries) == 0 {
					continue
				}
				complete(fe, role, resp.Queries)
			}
		}(role)
	}

	for sIdx := 0; sIdx < submitters; sIdx++ {
		wg.Add(1)
		go func(sIdx int) {
			defer wg.Done()
			base := sIdx * batches * batchSize
			for b := 0; b < batches; b++ {
				qs := make([]QueryMsg, batchSize)
				for i := range qs {
					qs[i] = QueryMsg{ID: base + b*batchSize + i}
				}
				if err := fe.SubmitBatch(ctx, SubmitRequest{Queries: qs}); err != nil {
					t.Errorf("submit: %v", err)
					return
				}
			}
		}(sIdx)
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		cancel()
		t.Fatalf("sharded stress wedged: resolved %d of %d", resolved.Load(), total)
	}
	if got := resolved.Load(); got != total {
		t.Fatalf("resolved %d of %d", got, total)
	}
	st, err := fe.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Completed+st.Dropped != total || st.Dropped != 0 {
		t.Errorf("merged accounting: completed %d dropped %d, want %d / 0", st.Completed, st.Dropped, total)
	}
	recorded := 0
	for _, lb := range lbs {
		recorded += lb.Collector().Len()
	}
	if recorded != total {
		t.Errorf("shard collectors recorded %d of %d", recorded, total)
	}
}

// TestShardQuotas pins the plan-striping math: proportional splits,
// capacity repair, and the per-shard starvation guard.
func TestShardQuotas(t *testing.T) {
	cases := []struct {
		name                 string
		needLight, needHeavy int
		sizes                []int
		wantLight, wantHeavy []int
	}{
		{"even split", 6, 2, []int{4, 4}, []int{3, 3}, []int{1, 1}},
		{"odd light", 5, 2, []int{4, 4}, []int{3, 2}, []int{1, 1}},
		{"single heavy spreads", 7, 1, []int{4, 4}, []int{3, 3}, []int{1, 1}},
		{"all light keeps shards lit", 8, 0, []int{4, 4}, []int{4, 4}, []int{0, 0}},
		{"uneven groups", 6, 2, []int{2, 6}, []int{1, 5}, []int{1, 1}},
		{"capacity repair", 2, 2, []int{1, 3}, []int{0, 2}, []int{1, 1}},
		{"three shards one heavy", 7, 1, []int{3, 3, 2}, []int{2, 2, 1}, []int{1, 1, 1}},
		// Regression: the starvation guard steals a heavy unit from
		// the full shard 0 to seat a light worker there, and must
		// re-grant that heavy unit on shard 1's spare slot instead of
		// silently idling a worker the plan needs (totals stay 2/10).
		{"steal re-grants displaced unit", 2, 10, []int{2, 10}, []int{1, 1}, []int{1, 9}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			light, heavy := shardQuotas(tc.needLight, tc.needHeavy, tc.sizes)
			totalCap, gotLight, gotHeavy := 0, 0, 0
			for i := range tc.sizes {
				totalCap += tc.sizes[i]
				gotLight += light[i]
				gotHeavy += heavy[i]
				if light[i]+heavy[i] > tc.sizes[i] {
					t.Errorf("shard %d over capacity: %d light + %d heavy > %d", i, light[i], heavy[i], tc.sizes[i])
				}
				if tc.needLight > 0 && light[i] == 0 && tc.sizes[i] > 1 {
					t.Errorf("shard %d starves light: light=%v heavy=%v", i, light, heavy)
				}
				if tc.needHeavy > 0 && heavy[i] == 0 && tc.sizes[i] > 1 {
					t.Errorf("shard %d starves heavy: light=%v heavy=%v", i, light, heavy)
				}
			}
			// Plans that fit must not lose workers to the striping:
			// the starvation guard may trade one role's unit for the
			// other's, but the total assigned never falls below the
			// plan's — a dropped unit would idle a worker the plan
			// wants busy.
			if need := tc.needLight + tc.needHeavy; need <= totalCap && gotLight+gotHeavy < need {
				t.Errorf("plan units dropped: assigned %d light + %d heavy < planned %d", gotLight, gotHeavy, need)
			}
			if fmt.Sprint(light) != fmt.Sprint(tc.wantLight) || fmt.Sprint(heavy) != fmt.Sprint(tc.wantHeavy) {
				t.Errorf("quotas light=%v heavy=%v, want %v / %v", light, heavy, tc.wantLight, tc.wantHeavy)
			}
		})
	}
}

// TestAssignRolesKeepsExisting pins the reload-minimizing behavior the
// sharded striping reuses per group.
func TestAssignRolesKeepsExisting(t *testing.T) {
	next := assignRoles([]string{"light", "heavy", "idle", "light"}, 1, 2)
	if next[0] != "light" || next[1] != "heavy" {
		t.Errorf("existing roles not kept: %v", next)
	}
	nLight, nHeavy := 0, 0
	for _, r := range next {
		switch r {
		case "light":
			nLight++
		case "heavy":
			nHeavy++
		}
	}
	if nLight != 1 || nHeavy != 2 {
		t.Errorf("assignment %v, want 1 light / 2 heavy", next)
	}
}

// TestHarnessShardedTopology replays a lightly loaded trace through
// the 2-shard TCP topology and requires the same loss-free outcome a
// single LB produces: every query resolves exactly once, none drop.
func TestHarnessShardedTopology(t *testing.T) {
	if testing.Short() {
		t.Skip("sharded harness skipped in -short mode")
	}
	f := newFixtures(t)
	tr, err := trace.Static(6, 15, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(HarnessConfig{
		Space: f.space, Light: f.light, Heavy: f.heavy, Scorer: f.scorer,
		Mode: loadbalancer.ModeCascade, Workers: 8, SLO: 5,
		Trace: tr, Ctrl: f.controller(t, 8, 5),
		// 0.05 like the reshard topology test: at 0.02 a GC pause on a
		// loaded 1-core box spans multiple trace seconds and sheds a
		// tail query past the SLO.
		Timescale: 0.05, Seed: 4242, DisableLoadDelay: true,
		Transport: TransportTCP, LBShards: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.LBShards != 2 {
		t.Errorf("result reports %d shards", res.LBShards)
	}
	if res.Collector.Len() != res.Queries {
		t.Errorf("recorded %d of %d queries", res.Collector.Len(), res.Queries)
	}
	sum := res.Summary()
	if sum.DropRatio != 0 {
		t.Errorf("sharded run dropped %.3f under light load", sum.DropRatio)
	}
	ids := map[int]bool{}
	for _, r := range res.Collector.Records() {
		if ids[r.ID] {
			t.Errorf("query %d recorded twice", r.ID)
		}
		ids[r.ID] = true
	}
	t.Logf("sharded harness: %d queries, FID=%.2f viol=%.3f wall=%.1fs",
		sum.Queries, sum.FID, sum.ViolationRatio, res.WallSeconds)
}

// flakyStatsConn wraps an LBConn and fails its Stats call while
// tripped, leaving the data path untouched.
type flakyStatsConn struct {
	LBConn
	fail atomic.Bool
}

func (c *flakyStatsConn) Stats(ctx context.Context) (LBStats, error) {
	if c.fail.Load() {
		return LBStats{}, fmt.Errorf("injected stats failure")
	}
	return c.LBConn.Stats(ctx)
}

// TestShardedLBStatsCarriesResetCounters pins the partial-failure
// behavior of the merged Stats: polling a shard destructively resets
// its since-tick counters, so counters gathered in a merge that then
// fails on another shard must surface in the next successful merge
// instead of silently vanishing from the controller's demand signal.
func TestShardedLBStatsCarriesResetCounters(t *testing.T) {
	clock := NewClock(0.001)
	lbs := make([]*LBServer, 2)
	conns := make([]LBConn, 2)
	for i := range lbs {
		lbs[i] = NewLBServer(LBConfig{
			Mode: loadbalancer.ModeCascade, SLO: 1e9,
			LightMinExec: 0.1, HeavyMinExec: 1.78,
			Clock: clock, Seed: 1, RNGStream: fmt.Sprintf("lb/%d", i),
		})
		conns[i] = NewLocalLBConn(lbs[i])
	}
	flaky := &flakyStatsConn{LBConn: conns[1]}
	conns[1] = flaky
	fe, err := NewShardedLB(ShardedLBConfig{Shards: conns, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	defer fe.Close()

	// Arrivals land on both shards, then shard 1's poll fails: the
	// merge must report the error, but shard 0's counters (already
	// reset by the poll) must not be lost.
	const queries = 40
	qs := make([]QueryMsg, queries)
	for i := range qs {
		qs[i] = QueryMsg{ID: i, Arrival: 0.001}
	}
	if err := fe.SubmitBatch(context.Background(), SubmitRequest{Queries: qs}); err != nil {
		t.Fatal(err)
	}
	flaky.fail.Store(true)
	if _, err := fe.Stats(context.Background()); err == nil {
		t.Fatal("merged stats did not surface the shard failure")
	}
	flaky.fail.Store(false)
	st, err := fe.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.ArrivalsSinceTick != queries {
		t.Errorf("arrivals after recovery = %d, want %d (reset counters dropped)", st.ArrivalsSinceTick, queries)
	}
	// And the carry is consumed: a further poll reports nothing new.
	st, err = fe.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.ArrivalsSinceTick != 0 {
		t.Errorf("carry not consumed: arrivals = %d", st.ArrivalsSinceTick)
	}
	for _, lb := range lbs {
		lb.DrainRemaining()
	}
}

// TestSplitShardAddrs pins the shared -shard-addrs parsing.
func TestSplitShardAddrs(t *testing.T) {
	got := SplitShardAddrs(" host:1 ,host:2,, host:3,")
	want := []string{"host:1", "host:2", "host:3"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("SplitShardAddrs = %v, want %v", got, want)
	}
	if SplitShardAddrs("") != nil {
		t.Errorf("empty list should parse to nil")
	}
	if _, err := DialShardedLB("tcp", " , ", CodecBinary, NewClock(1), 0); err == nil {
		t.Error("DialShardedLB accepted an empty shard list")
	}
}
