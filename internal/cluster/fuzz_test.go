package cluster

import (
	"bufio"
	"bytes"
	"encoding/binary"

	"testing"
)

// fuzzTargets enumerates the binary codec's message types as fresh
// zero-value constructors.
func fuzzTargets() []func() interface{} {
	return []func() interface{}{
		func() interface{} { return new(QueryMsg) },
		func() interface{} { return new(QueryResponse) },
		func() interface{} { return new(PullRequest) },
		func() interface{} { return new(PullResponse) },
		func() interface{} { return new(CompleteRequest) },
		func() interface{} { return new(ConfigureWorkerRequest) },
		func() interface{} { return new(ConfigureLBRequest) },
		func() interface{} { return new(WorkerStats) },
		func() interface{} { return new(LBStats) },
		func() interface{} { return new(SubmitRequest) },
		func() interface{} { return new(ResultsRequest) },
		func() interface{} { return new(ResultsResponse) },
		func() interface{} { return new(MembershipResponse) },
	}
}

// dirtyTargets mirrors fuzzTargets with targets that already hold
// data — the pooled-struct case. Decoding into one must produce the
// same message as decoding into a fresh struct: stale lengths, stale
// values, and stale nil-ness may not leak through capacity reuse.
func dirtyTargets() []func() interface{} {
	stale := func() []float64 { return []float64{99, 98, 97, 96, 95, 94, 93} }
	return []func() interface{}{
		func() interface{} { return &QueryMsg{ID: -1, Arrival: 99} },
		func() interface{} { return &QueryResponse{ID: -1, Variant: "stale", Features: stale(), Deferred: true} },
		func() interface{} { return &PullRequest{WorkerID: -1, Role: "stale", Max: 99, Drain: true} },
		func() interface{} {
			return &PullResponse{Queries: []QueryMsg{{ID: -1}, {ID: -2}, {ID: -3}}, RingEpoch: 99, LeaseDeadline: 99}
		},
		func() interface{} {
			return &CompleteRequest{WorkerID: -1, Role: "stale", LeaseDeadline: 99,
				Items: []CompleteItem{{ID: -1, Features: stale()}, {ID: -2, Features: stale()}}}
		},
		func() interface{} { return &ConfigureWorkerRequest{Role: "stale", Batch: 99} },
		func() interface{} {
			return &ConfigureLBRequest{Threshold: 99, SplitProb: 99, RingEpoch: 99,
				Members: []int{-1, -2, -3}, MemberAddrs: []string{"stale", "stale"}, MemberWeights: []int{99}}
		},
		func() interface{} { return &WorkerStats{ID: -1, Role: "stale", Busy: true, Batches: 99} },
		func() interface{} { return &LBStats{Now: 99, Completed: 99, Reclaims: 99} },
		func() interface{} { return &SubmitRequest{Queries: []QueryMsg{{ID: -1}, {ID: -2}}, Pool: "stale"} },
		func() interface{} { return &ResultsRequest{Max: 99, Wait: 99} },
		func() interface{} {
			return &ResultsResponse{Results: []QueryResponse{{ID: -1, Variant: "stale", Features: stale()}}}
		},
		func() interface{} {
			return &MembershipResponse{RingEpoch: 99,
				Members: []int{-1, -2, -3}, Addrs: []string{"stale"}, Weights: []int{99, 98}}
		},
	}
}

// FuzzCodecRoundTrip feeds arbitrary bytes to the binary codec's
// decoder for every message type. Raw network bytes reach this
// decoder on the TCP transport, so arbitrary input must produce a
// clean error — never a panic or a huge allocation — and anything
// that does decode must survive a re-encode/re-decode round trip
// unchanged.
func FuzzCodecRoundTrip(f *testing.F) {
	// Seed with one valid encoding per message type, plus hostile
	// length prefixes.
	seeds := []interface{}{
		&QueryMsg{ID: 7, Arrival: 12.5},
		&QueryResponse{ID: 9, Variant: "sdturbo", Features: []float64{1, 2}, Confidence: 0.875, Deferred: true},
		&PullRequest{WorkerID: 3, Role: "light", Max: 8, Wait: 0.25, Drain: true},
		&PullResponse{Queries: []QueryMsg{{ID: 1, Arrival: 2}}, RingEpoch: 3, LeaseDeadline: 4.5},
		&CompleteRequest{WorkerID: 1, Role: "heavy", LeaseDeadline: 6.25, Items: []CompleteItem{{ID: 4, Variant: "sdv15", Features: []float64{3}}}},
		&ConfigureWorkerRequest{Role: "light", Batch: 8},
		&ConfigureLBRequest{Threshold: 0.7, SplitProb: 0.25, RingEpoch: 2,
			Members: []int{0, 1, 4}, MemberAddrs: []string{"", ":8101", ":8104"}, MemberWeights: []int{3, 2, 2}},
		&WorkerStats{ID: 2, Role: "heavy", Batch: 4, Busy: true, Batches: 10, Queries: 40},
		&LBStats{Now: 100, LightQueueLen: 3, Completed: 50, InFlight: 4, Reclaims: 2, ShedRedelivery: 1, LateCompletions: 3, DegradedShards: 1},
		&SubmitRequest{Queries: []QueryMsg{{ID: 5, Arrival: 1}}, Pool: "heavy"},
		&ResultsRequest{Max: 64, Wait: 2},
		&ResultsResponse{Results: []QueryResponse{{ID: 6, Variant: "sdturbo"}}},
		&MembershipResponse{RingEpoch: 2, Members: []int{0, 2}, Addrs: []string{":8100", ":8102"}, Weights: []int{2, 1}},
	}
	for _, msg := range seeds {
		data, err := CodecBinary.Marshal(msg)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	// A declared element count of ~2^60: the decoder must reject it
	// by bounds-checking against the remaining bytes, not allocate.
	hostile := []byte{tagSubmitRequest}
	hostile = binary.AppendUvarint(hostile, 1<<60)
	f.Add(hostile)
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		dirty := dirtyTargets()
		for i, mk := range fuzzTargets() {
			v := mk()
			if err := CodecBinary.Unmarshal(data, v); err != nil {
				continue // rejected cleanly
			}
			out, err := CodecBinary.Marshal(v)
			if err != nil {
				t.Fatalf("decoded %T does not re-encode: %v", v, err)
			}
			v2 := mk()
			if err := CodecBinary.Unmarshal(out, v2); err != nil {
				t.Fatalf("re-encoded %T does not decode: %v", v, err)
			}
			// Compare the re-encodings, not the structs: NaN payloads
			// round-trip bit-faithfully but defeat reflect.DeepEqual.
			out2, err := CodecBinary.Marshal(v2)
			if err != nil {
				t.Fatalf("second encode of %T failed: %v", v, err)
			}
			if !bytes.Equal(out, out2) {
				t.Fatalf("round trip diverged for %T:\n  first:  %x (%+v)\n  second: %x (%+v)", v, out, v, out2, v2)
			}
			// Decode the canonical bytes into a dirty, pooled-style
			// target: it must re-encode identically to the fresh decode.
			dv := dirty[i]()
			if err := CodecBinary.Unmarshal(out, dv); err != nil {
				t.Fatalf("%T does not decode into a dirty target: %v", v, err)
			}
			out3, err := CodecBinary.Marshal(dv)
			if err != nil {
				t.Fatalf("dirty-target %T does not re-encode: %v", v, err)
			}
			if !bytes.Equal(out, out3) {
				t.Fatalf("dirty-target decode diverged for %T:\n  fresh: %x (%+v)\n  dirty: %x (%+v)", v, out, v2, out3, dv)
			}
		}
	})
}

// FuzzDecodeFrame feeds arbitrary byte streams to the TCP frame
// reader. Invalid frames must error without panicking, and a lying
// length prefix must not force an allocation beyond the bytes that
// actually arrived (the declared length is capped and the buffer
// grows incrementally).
func FuzzDecodeFrame(f *testing.F) {
	// Valid frames in both codecs, a frame followed by garbage, and
	// hostile length prefixes.
	mkFrame := func(kind, method, cID byte, id uint64, codec Codec, msg interface{}, errText string) []byte {
		b, err := appendFrame(nil, kind, method, cID, id, codec, msg, errText)
		if err != nil {
			f.Fatal(err)
		}
		return b
	}
	valid := mkFrame(frameRequest, methodPull, codecIDBinary, 1, CodecBinary, &PullRequest{Role: "light", Max: 4}, "")
	f.Add(valid)
	f.Add(mkFrame(frameRequest, methodSubmit, codecIDJSON, 2, CodecJSON, &SubmitRequest{Queries: []QueryMsg{{ID: 1}}}, ""))
	f.Add(mkFrame(frameResponse, methodLBStats, codecIDBinary, 3, CodecBinary, &LBStats{Completed: 5}, ""))
	f.Add(mkFrame(frameError, methodComplete, codecIDBinary, 4, CodecBinary, nil, "boom"))
	// Lease-era frames: a pull response carrying its lease deadline and
	// a completion echoing one, in both codecs.
	f.Add(mkFrame(frameResponse, methodPull, codecIDBinary, 5, CodecBinary,
		&PullResponse{Queries: []QueryMsg{{ID: 2, Arrival: 1.5}}, RingEpoch: 1, LeaseDeadline: 9.75}, ""))
	f.Add(mkFrame(frameRequest, methodComplete, codecIDJSON, 6, CodecJSON,
		&CompleteRequest{WorkerID: 2, Role: "light", LeaseDeadline: 9.75,
			Items: []CompleteItem{{ID: 2, Arrival: 1.5, Variant: "sdturbo", Confidence: 0.5}}}, ""))
	f.Add(append(append([]byte(nil), valid...), 0xde, 0xad, 0xbe, 0xef))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 1, 1}) // 4 GiB declared length
	f.Add([]byte{0, 0, 0, 0})                      // body shorter than header
	oversize := make([]byte, 4)
	binary.BigEndian.PutUint32(oversize, maxFrameBody+1)
	f.Add(oversize)

	f.Fuzz(func(t *testing.T, data []byte) {
		br := bufio.NewReader(bytes.NewReader(data))
		var buf []byte
		for frames := 0; frames < 16; frames++ {
			fr, nbuf, err := readFrame(br, buf[:0])
			buf = nbuf
			// The body buffer may only ever hold bytes that actually
			// arrived (plus append's geometric growth slack): a lying
			// length prefix must not translate into an allocation.
			if cap(buf) > 2*len(data)+frameReadChunk {
				t.Fatalf("frame buffer grew to %dB for %dB of input", cap(buf), len(data))
			}
			if err != nil {
				return
			}
			if fr.kind < frameRequest || fr.kind > frameError {
				t.Fatalf("invalid kind %d passed validation", fr.kind)
			}
			if len(fr.payload) > maxFrameBody {
				t.Fatalf("payload %dB exceeds the frame cap", len(fr.payload))
			}
		}
	})
}
