package cluster

import (
	"context"
	"math"
	"sync"
	"sync/atomic"

	"diffserve/internal/allocator"
	"diffserve/internal/controller"
	"diffserve/internal/loadbalancer"
)

// ControllerConfig parameterizes the cluster controller process.
type ControllerConfig struct {
	// Ctrl owns the allocator and demand estimation.
	Ctrl *controller.Controller
	// LB is the connection to the load balancer.
	LB LBConn
	// Workers are the control-plane connections to the workers.
	Workers []WorkerConn
	// Mode mirrors the LB's routing policy (decides whether plans set
	// a threshold or a split probability).
	Mode loadbalancer.Mode
	// Clock provides trace time.
	Clock *Clock
	// Shards is the initial LB shard count (0 or 1: single LB).
	// Worker i is pinned to shard group i mod Shards — the harness
	// and the cmd wiring both use that mapping — and role assignment
	// then stripes each plan across the shard-pinned worker groups so
	// every shard keeps at least one worker of every role the plan
	// uses: a shard whose partition of the query stream has no light
	// (or no heavy) worker would starve, which a global plan never
	// intends. Resharding updates the count at runtime via SetShards.
	Shards int
	// MaxStatsMisses is the consecutive stats-poll-failure budget:
	// after this many misses the loop stops trusting its stale plan
	// and fails over to a conservative one (threshold and split
	// forced to zero — every query served by the light pool — so a
	// blind controller cannot keep deferring load it can no longer
	// observe into the heavy pool). Zero defaults to 3.
	MaxStatsMisses int
	// Logf, when set, receives controller-loop events (stats misses,
	// the conservative failover, recovery). Nil discards them.
	Logf func(format string, args ...interface{})
	// Elastic, when set, closes the elasticity loop: the controller
	// decides frontend shard membership from the same observed load
	// that drives model scaling, growing and shrinking the sharded LB
	// tier at tick boundaries instead of waiting for an operator.
	Elastic *ElasticConfig
}

// ElasticConfig parameterizes controller-driven frontend scaling. The
// controller reuses its tick observations (arrival rate and queue
// backlog from the LBStats poll) to size the shard tier: desired =
// ceil(load / ShardCapacityQPS) clamped to [MinShards, MaxShards],
// with hysteresis bands (UpTicks consecutive over-capacity ticks to
// grow, DownTicks under-capacity ticks to shrink) so a bursty trace
// does not thrash membership. Scale-up jumps straight to the desired
// count — under-provisioning costs SLO violations — while scale-down
// retires one member per tick, because each removal migrates that
// member's queued share and slow shrinking bounds the migration burst.
type ElasticConfig struct {
	// Frontend is the sharded tier whose membership the controller
	// drives (AddShard / RemoveShard).
	Frontend *ShardedLB
	// Provision brings up a new shard member and returns its conn and
	// dial address (the address may be empty for in-process members).
	// Called once per added member; the member stays retired forever
	// after removal, so Provision never sees a reused ID.
	Provision func(ctx context.Context, member int) (LBConn, string, error)
	// MinShards and MaxShards clamp the tier size (defaults 1 and the
	// current membership size).
	MinShards, MaxShards int
	// ShardCapacityQPS is one shard's sustainable arrival rate — the
	// denominator of the sizing rule.
	ShardCapacityQPS float64
	// UpTicks and DownTicks are the hysteresis bands: consecutive
	// ticks the desired size must exceed (resp. fall below) the
	// current size before the controller acts. Zero defaults to 1 up
	// (react to overload within one control period) and 3 down
	// (shrink only on sustained slack).
	UpTicks, DownTicks int
}

// ControllerLoopStats is the control loop's own health report.
type ControllerLoopStats struct {
	// ConsecutiveStatsMisses is the current run of failed stats polls.
	ConsecutiveStatsMisses int
	// TotalStatsMisses counts failed stats polls over the loop's life.
	TotalStatsMisses int
	// Conservative reports whether the loop is currently running the
	// stats-blind fallback plan.
	Conservative bool
	// MeanSolveMs is the average allocator solve time per control
	// tick, in milliseconds — the number the warm-started MILP is
	// meant to keep flat as the shard tier grows.
	MeanSolveMs float64
	// WarmLPs and ColdLPs split the MILP solver's LP relaxations by
	// path: warm (reused basis) vs cold (fresh two-phase solve). Zero
	// for allocators without an internal solver.
	WarmLPs, ColdLPs int
}

// ControllerLoop polls runtime statistics, re-solves allocation, and
// pushes plans — the cluster analogue of the simulator's control tick.
type ControllerLoop struct {
	cfg ControllerConfig
	// mu serializes control ticks and plan applications: the periodic
	// Run loop and the resharding driver's Restripe may otherwise
	// interleave, racing the assignment cache and the controller's
	// demand estimator.
	mu       sync.Mutex
	lastTick float64
	// lastPlan caches the most recently applied plan so Restripe can
	// re-stripe it across a changed shard layout without polling stats
	// (a second poll would reset the since-tick counters and feed the
	// demand EWMA a phantom near-zero sample).
	lastPlan allocator.Plan
	hasPlan  bool
	// shards tracks the current LB shard count; resharding updates it
	// via SetShards and the next Apply re-stripes roles across the
	// new shard-pinned worker groups.
	shards atomic.Int32
	// assigned caches the last role pushed to each worker so ticks do
	// not need a per-worker stats round-trip.
	assigned []string
	// stats-poll failure tracking (guarded by mu): statsMisses is the
	// consecutive run, totalMisses the lifetime count, conservative
	// whether the blind-fallback plan is currently applied.
	statsMisses  int
	totalMisses  int
	conservative bool
	// elastic-scaling state (guarded by mu): the hysteresis streaks,
	// the next fresh member ID (member IDs are never reused — retired
	// members stay retired), and the peak tier size observed.
	upStreak   int
	downStreak int
	nextMember int
	peakShards int
}

// NewControllerLoop constructs the control loop.
func NewControllerLoop(cfg ControllerConfig) *ControllerLoop {
	if cfg.MaxStatsMisses <= 0 {
		cfg.MaxStatsMisses = 3
	}
	c := &ControllerLoop{cfg: cfg}
	c.shards.Store(int32(cfg.Shards))
	if e := cfg.Elastic; e != nil && e.Frontend != nil {
		if e.MinShards <= 0 {
			e.MinShards = 1
		}
		members := e.Frontend.Members()
		if e.MaxShards < e.MinShards {
			e.MaxShards = len(members)
			if e.MaxShards < e.MinShards {
				e.MaxShards = e.MinShards
			}
		}
		if e.UpTicks <= 0 {
			e.UpTicks = 1
		}
		if e.DownTicks <= 0 {
			e.DownTicks = 3
		}
		for _, m := range members {
			if m >= c.nextMember {
				c.nextMember = m + 1
			}
		}
		c.peakShards = len(members)
		c.shards.Store(int32(len(members)))
	}
	return c
}

func (c *ControllerLoop) logf(format string, args ...interface{}) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// LoopStats reports the control loop's own health (stats-poll misses
// and whether the conservative fallback is active).
func (c *ControllerLoop) LoopStats() ControllerLoopStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := ControllerLoopStats{
		ConsecutiveStatsMisses: c.statsMisses,
		TotalStatsMisses:       c.totalMisses,
		Conservative:           c.conservative,
		MeanSolveMs:            c.cfg.Ctrl.MeanSolveSeconds() * 1e3,
	}
	if ss, ok := c.cfg.Ctrl.SolveStats(); ok {
		st.WarmLPs, st.ColdLPs = ss.WarmLPs, ss.ColdLPs
	}
	return st
}

// SetShards updates the shard count the role striping targets — the
// resharding path calls it when LB membership changes so worker i's
// group becomes i mod the new count, matching the re-pinned layout.
func (c *ControllerLoop) SetShards(n int) {
	if n >= 1 {
		c.shards.Store(int32(n))
	}
}

// Plans returns the plans applied so far.
func (c *ControllerLoop) Plans() []controller.PlanAt { return c.cfg.Ctrl.Plans() }

// Run executes control ticks every controller interval (trace time)
// until the context is cancelled. Each tick (stats poll + MILP solve +
// plan push) runs asynchronously with at most one in flight, so solver
// time stays off the control cadence — the paper's design: "the MILP
// is called asynchronously and its execution is in the control path".
func (c *ControllerLoop) Run(ctx context.Context) {
	var busy int32
	for ctx.Err() == nil {
		if atomic.CompareAndSwapInt32(&busy, 0, 1) {
			go func() {
				defer atomic.StoreInt32(&busy, 0)
				c.TickOnce(ctx)
			}()
		}
		if !c.cfg.Clock.SleepTraceCtx(ctx, c.cfg.Ctrl.Interval()) {
			return
		}
	}
}

// TickOnce performs one control period: poll stats, solve, push.
//
// A failed stats poll is tolerated for MaxStatsMisses consecutive
// ticks — a transient wire fault should not perturb the plan — but
// not forever: past the budget the loop fails over to a conservative
// plan instead of steering the cluster with observations that may be
// arbitrarily stale. The first successful poll afterwards resumes
// normal planning.
func (c *ControllerLoop) TickOnce(ctx context.Context) {
	lbStats, err := c.cfg.LB.Stats(ctx)
	if err != nil {
		c.mu.Lock()
		c.statsMisses++
		c.totalMisses++
		misses := c.statsMisses
		failover := misses >= c.cfg.MaxStatsMisses && !c.conservative && c.hasPlan
		if failover {
			c.conservative = true
			plan := c.conservativePlanLocked()
			c.logf("controller: %d consecutive stats-poll failures (%v): failing over to conservative plan", misses, err)
			c.applyLocked(ctx, plan)
		}
		c.mu.Unlock()
		if !failover {
			c.logf("controller: stats poll failed (%d consecutive): keeping previous plan: %v", misses, err)
		}
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.statsMisses > 0 {
		c.logf("controller: stats poll recovered after %d misses", c.statsMisses)
		c.statsMisses = 0
	}
	c.conservative = false
	elapsed := lbStats.Now - c.lastTick
	c.lastTick = lbStats.Now
	plan, err := c.cfg.Ctrl.Tick(lbStats.Now, controller.TickInput{
		Arrivals:         lbStats.ArrivalsSinceTick,
		ElapsedSeconds:   elapsed,
		LightQueueLen:    lbStats.LightQueueLen,
		HeavyQueueLen:    lbStats.HeavyQueueLen,
		LightArrivalRate: lbStats.LightArrivalRate,
		HeavyArrivalRate: lbStats.HeavyArrivalRate,
		SLOTimeouts:      lbStats.TimeoutsSinceTick,
	})
	if err != nil {
		return
	}
	c.applyLocked(ctx, plan)
	c.elasticLocked(ctx, lbStats, elapsed)
}

// PeakShards reports the largest frontend tier size the elastic loop
// has observed (the initial size when scaling never triggered).
func (c *ControllerLoop) PeakShards() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.peakShards
}

// elasticLocked runs one elastic-sizing decision from the tick's
// stats sample. Callers hold mu (the tick lock), which serializes the
// hysteresis state and the membership changes against Restripe.
func (c *ControllerLoop) elasticLocked(ctx context.Context, st LBStats, elapsed float64) {
	e := c.cfg.Elastic
	if e == nil || e.Frontend == nil || e.ShardCapacityQPS <= 0 {
		return
	}
	members := e.Frontend.Members()
	cur := len(members)
	if cur > c.peakShards {
		c.peakShards = cur
	}
	if elapsed <= 0 {
		return
	}
	// Observed load: this tick's arrival rate plus the standing
	// backlog amortized over one control period — a tier that keeps up
	// with arrivals but cannot drain its queue is still undersized.
	load := float64(st.ArrivalsSinceTick)/elapsed +
		float64(st.LightQueueLen+st.HeavyQueueLen)/elapsed
	desired := int(math.Ceil(load / e.ShardCapacityQPS))
	if desired < e.MinShards {
		desired = e.MinShards
	}
	if desired > e.MaxShards {
		desired = e.MaxShards
	}
	switch {
	case desired > cur:
		c.upStreak++
		c.downStreak = 0
	case desired < cur:
		c.downStreak++
		c.upStreak = 0
	default:
		c.upStreak, c.downStreak = 0, 0
		return
	}
	changed := false
	if desired > cur && c.upStreak >= e.UpTicks && e.Provision != nil {
		// Scale up straight to the desired size: under-provisioning
		// costs SLO violations, and each member added later would pay
		// its own migration anyway.
		for len(members) < desired {
			id := c.nextMember
			conn, addr, err := e.Provision(ctx, id)
			if err != nil {
				c.logf("controller: provisioning shard member %d failed: %v", id, err)
				break
			}
			c.nextMember++
			if addr != "" {
				e.Frontend.SetMemberAddr(id, addr)
			}
			if err := e.Frontend.AddShard(ctx, id, conn); err != nil {
				c.logf("controller: adding shard member %d failed: %v", id, err)
				break
			}
			members = append(members, id)
			changed = true
			c.logf("controller: scaled frontend up to %d shards (member %d added, load %.1f qps)", len(members), id, load)
		}
		c.upStreak = 0
	} else if desired < cur && c.downStreak >= e.DownTicks {
		if st.DegradedShards > 0 {
			// A degraded member is already shedding its share onto the
			// survivors; shrinking now would compound the overload.
			c.downStreak = 0
			return
		}
		// Scale down one member per tick — each removal migrates the
		// departing member's queued share, and shrinking slowly bounds
		// that burst. Retire the highest ID (the youngest member, so
		// long-lived members keep their key shares stable).
		hi := members[0]
		for _, m := range members {
			if m > hi {
				hi = m
			}
		}
		if err := e.Frontend.RemoveShard(ctx, hi); err != nil {
			c.logf("controller: removing shard member %d failed: %v", hi, err)
		} else {
			changed = true
			c.logf("controller: scaled frontend down to %d shards (member %d retired, load %.1f qps)", cur-1, hi, load)
		}
		c.downStreak = 0
	}
	if changed {
		n := e.Frontend.Shards()
		if n > c.peakShards {
			c.peakShards = n
		}
		c.shards.Store(int32(n))
		// Re-stripe the cached plan across the new shard-pinned worker
		// groups immediately — a membership change that waited out the
		// control interval would leave some shard without a role.
		if c.hasPlan {
			c.applyLocked(ctx, c.lastPlan)
		}
	}
}

// conservativePlanLocked derives the stats-blind fallback from the
// last applied plan: the worker layout is kept (reassigning roles
// blind would only thrash model reloads) but the cascade threshold
// and the random split are forced to zero, so every new query is
// served by the light pool. Deferral volume is the one knob the
// controller actively steers with stats it no longer has — freezing
// it at zero bounds heavy-pool load instead of trusting a stale
// estimate of it. Callers hold mu.
func (c *ControllerLoop) conservativePlanLocked() allocator.Plan {
	plan := c.lastPlan
	plan.Threshold = 0
	plan.DeferFraction = 0
	return plan
}

// Restripe re-applies the last plan across the current shard layout —
// the resharding path's way to give a membership change workers
// immediately without waiting out the control interval. Unlike a full
// tick it does not poll stats, so the since-tick counters and the
// demand estimate are left untouched.
func (c *ControllerLoop) Restripe(ctx context.Context) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.hasPlan {
		c.applyLocked(ctx, c.lastPlan)
	}
}

// Apply pushes a plan to the LB and workers. Worker role assignment
// prefers keeping existing roles to minimize model reloads.
func (c *ControllerLoop) Apply(ctx context.Context, plan allocator.Plan) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.applyLocked(ctx, plan)
}

// applyLocked is Apply's core. Callers hold mu.
func (c *ControllerLoop) applyLocked(ctx context.Context, plan allocator.Plan) {
	c.lastPlan, c.hasPlan = plan, true
	// Configure the LB policy first so new completions observe the
	// fresh threshold.
	split := 0.0
	if c.cfg.Mode == loadbalancer.ModeRandomSplit {
		split = plan.DeferFraction
	}
	_ = c.cfg.LB.Configure(ctx, ConfigureLBRequest{
		Threshold: plan.Threshold,
		SplitProb: split,
	})

	// Current roles come from the assignment cache (the controller is
	// the only writer of worker roles, so the cache is authoritative
	// and avoids a per-worker stats round-trip each tick).
	if len(c.assigned) != len(c.cfg.Workers) {
		c.assigned = make([]string, len(c.cfg.Workers))
		for i := range c.assigned {
			c.assigned[i] = "idle"
		}
	}

	needLight, needHeavy := plan.LightWorkers, plan.HeavyWorkers
	if needLight+needHeavy > len(c.assigned) {
		needHeavy = len(c.assigned) - needLight
		if needHeavy < 0 {
			needLight, needHeavy = len(c.assigned), 0
		}
	}

	var next []string
	if shards := int(c.shards.Load()); shards > 1 {
		// Sharded LB tier: stripe the plan across the shard-pinned
		// worker groups (worker i serves shard i mod shards) so each
		// shard's partition of the query stream keeps both roles.
		groups := make([][]int, shards)
		for i := range c.assigned {
			s := i % shards
			groups[s] = append(groups[s], i)
		}
		sizes := make([]int, shards)
		for s, g := range groups {
			sizes[s] = len(g)
		}
		lightQ, heavyQ := shardQuotas(needLight, needHeavy, sizes)
		next = make([]string, len(c.assigned))
		for s, g := range groups {
			cur := make([]string, len(g))
			for j, i := range g {
				cur[j] = c.assigned[i]
			}
			sub := assignRoles(cur, lightQ[s], heavyQ[s])
			for j, i := range g {
				next[i] = sub[j]
			}
		}
	} else {
		next = assignRoles(c.assigned, needLight, needHeavy)
	}
	for i, conn := range c.cfg.Workers {
		batch := plan.LightBatch
		if next[i] == "heavy" {
			batch = plan.HeavyBatch
		}
		_ = conn.Configure(ctx, ConfigureWorkerRequest{
			Role: next[i], Batch: batch,
		})
	}
	c.assigned = next
}

// assignRoles computes the next role assignment for one worker group,
// keeping matching existing roles in place to minimize model reloads.
func assignRoles(current []string, needLight, needHeavy int) []string {
	next := make([]string, len(current))
	light, heavy := 0, 0
	for i, role := range current {
		switch {
		case role == "light" && light < needLight:
			next[i] = "light"
			light++
		case role == "heavy" && heavy < needHeavy:
			next[i] = "heavy"
			heavy++
		}
	}
	for i := range next {
		if next[i] != "" {
			continue
		}
		switch {
		case light < needLight:
			next[i] = "light"
			light++
		case heavy < needHeavy:
			next[i] = "heavy"
			heavy++
		default:
			next[i] = "idle"
		}
	}
	return next
}

// shardQuotas splits a global role plan across shard-pinned worker
// groups. Each role is divided proportionally to group size (largest
// remainder, ties to the lower shard for determinism), group capacity
// overflows are repaired by moving the excess to shards with spare
// workers, and finally every shard is guaranteed at least one worker
// of each role the plan uses at all — stealing from the shard's other
// role when it has workers to spare — because a shard-pinned
// partition with zero light (or zero heavy) workers starves its share
// of the query stream. The per-shard totals may therefore deviate
// from the plan by a worker or two near the minimum; the aggregate
// never exceeds the group capacities.
func shardQuotas(needLight, needHeavy int, sizes []int) (light, heavy []int) {
	n := len(sizes)
	total := 0
	for _, s := range sizes {
		total += s
	}
	split := func(need int) []int {
		q := make([]int, n)
		if total == 0 || need <= 0 {
			return q
		}
		rem := make([]float64, n)
		given := 0
		for i, s := range sizes {
			exact := float64(need) * float64(s) / float64(total)
			q[i] = int(exact)
			rem[i] = exact - float64(q[i])
			given += q[i]
		}
		for given < need {
			best := -1
			for i := 0; i < n; i++ {
				if q[i] >= sizes[i] {
					continue
				}
				if best < 0 || rem[i] > rem[best] {
					best = i
				}
			}
			if best < 0 {
				break
			}
			q[best]++
			rem[best] = -1
			given++
		}
		return q
	}
	light, heavy = split(needLight), split(needHeavy)

	// Capacity repair: the two roles were split independently, so a
	// group's quotas can sum past its size. Move the excess unit of
	// the group's larger role to the first shard with spare room (or
	// drop it — only reachable when the plan exceeds total capacity,
	// which Apply already clamps away).
	for i := 0; i < n; i++ {
		for light[i]+heavy[i] > sizes[i] {
			role := light
			if heavy[i] > light[i] {
				role = heavy
			}
			role[i]--
			for j := 0; j < n; j++ {
				if light[j]+heavy[j] < sizes[j] {
					role[j]++
					break
				}
			}
		}
	}

	// Starvation guard: every shard the plan can cover gets at least
	// one worker of each role in use. The unit comes from the richest
	// shard of that role when one has more than a single worker
	// (preserving the plan's totals); otherwise the role grows by one
	// at the expense of the shard's other role, because a starved
	// partition is strictly worse than a plan deviated by one worker.
	ensure := func(role, other []int, need int) {
		for i := 0; i < n; i++ {
			if need <= 0 || role[i] > 0 || sizes[i] == 0 {
				continue
			}
			freedOther := false
			if role[i]+other[i] >= sizes[i] {
				if other[i] > 1 {
					other[i]--
					freedOther = true
				} else {
					continue // one-worker group: the other role keeps it
				}
			}
			donor := -1
			for j := 0; j < n; j++ {
				if role[j] > 1 && (donor < 0 || role[j] > role[donor]) {
					donor = j
				}
			}
			if donor >= 0 {
				role[donor]--
			}
			role[i]++
			if freedOther {
				// The unit stolen from the shard's other role still
				// belongs to the plan: re-grant it to a shard with
				// spare capacity rather than silently idling a worker.
				for j := 0; j < n; j++ {
					if light[j]+heavy[j] < sizes[j] {
						other[j]++
						break
					}
				}
			}
		}
	}
	ensure(light, heavy, needLight)
	ensure(heavy, light, needHeavy)
	return light, heavy
}
