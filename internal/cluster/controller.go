package cluster

import (
	"context"
	"sync/atomic"

	"diffserve/internal/allocator"
	"diffserve/internal/controller"
	"diffserve/internal/loadbalancer"
)

// ControllerConfig parameterizes the cluster controller process.
type ControllerConfig struct {
	// Ctrl owns the allocator and demand estimation.
	Ctrl *controller.Controller
	// LB is the connection to the load balancer.
	LB LBConn
	// Workers are the control-plane connections to the workers.
	Workers []WorkerConn
	// Mode mirrors the LB's routing policy (decides whether plans set
	// a threshold or a split probability).
	Mode loadbalancer.Mode
	// Clock provides trace time.
	Clock *Clock
}

// ControllerLoop polls runtime statistics, re-solves allocation, and
// pushes plans — the cluster analogue of the simulator's control tick.
type ControllerLoop struct {
	cfg      ControllerConfig
	lastTick float64
	// assigned caches the last role pushed to each worker so ticks do
	// not need a per-worker stats round-trip.
	assigned []string
}

// NewControllerLoop constructs the control loop.
func NewControllerLoop(cfg ControllerConfig) *ControllerLoop {
	return &ControllerLoop{cfg: cfg}
}

// Plans returns the plans applied so far.
func (c *ControllerLoop) Plans() []controller.PlanAt { return c.cfg.Ctrl.Plans() }

// Run executes control ticks every controller interval (trace time)
// until the context is cancelled. Each tick (stats poll + MILP solve +
// plan push) runs asynchronously with at most one in flight, so solver
// time stays off the control cadence — the paper's design: "the MILP
// is called asynchronously and its execution is in the control path".
func (c *ControllerLoop) Run(ctx context.Context) {
	var busy int32
	for ctx.Err() == nil {
		if atomic.CompareAndSwapInt32(&busy, 0, 1) {
			go func() {
				defer atomic.StoreInt32(&busy, 0)
				c.TickOnce(ctx)
			}()
		}
		if !c.cfg.Clock.SleepTraceCtx(ctx, c.cfg.Ctrl.Interval()) {
			return
		}
	}
}

// TickOnce performs one control period: poll stats, solve, push.
func (c *ControllerLoop) TickOnce(ctx context.Context) {
	lbStats, err := c.cfg.LB.Stats(ctx)
	if err != nil {
		return // transient poll failure: keep the previous plan
	}
	elapsed := lbStats.Now - c.lastTick
	c.lastTick = lbStats.Now
	plan, err := c.cfg.Ctrl.Tick(lbStats.Now, controller.TickInput{
		Arrivals:         lbStats.ArrivalsSinceTick,
		ElapsedSeconds:   elapsed,
		LightQueueLen:    lbStats.LightQueueLen,
		HeavyQueueLen:    lbStats.HeavyQueueLen,
		LightArrivalRate: lbStats.LightArrivalRate,
		HeavyArrivalRate: lbStats.HeavyArrivalRate,
		SLOTimeouts:      lbStats.TimeoutsSinceTick,
	})
	if err != nil {
		return
	}
	c.Apply(ctx, plan)
}

// Apply pushes a plan to the LB and workers. Worker role assignment
// prefers keeping existing roles to minimize model reloads.
func (c *ControllerLoop) Apply(ctx context.Context, plan allocator.Plan) {
	// Configure the LB policy first so new completions observe the
	// fresh threshold.
	split := 0.0
	if c.cfg.Mode == loadbalancer.ModeRandomSplit {
		split = plan.DeferFraction
	}
	_ = c.cfg.LB.Configure(ctx, ConfigureLBRequest{
		Threshold: plan.Threshold,
		SplitProb: split,
	})

	// Current roles come from the assignment cache (the controller is
	// the only writer of worker roles, so the cache is authoritative
	// and avoids a per-worker stats round-trip each tick).
	if len(c.assigned) != len(c.cfg.Workers) {
		c.assigned = make([]string, len(c.cfg.Workers))
		for i := range c.assigned {
			c.assigned[i] = "idle"
		}
	}

	needLight, needHeavy := plan.LightWorkers, plan.HeavyWorkers
	if needLight+needHeavy > len(c.assigned) {
		needHeavy = len(c.assigned) - needLight
		if needHeavy < 0 {
			needLight, needHeavy = len(c.assigned), 0
		}
	}
	next := make([]string, len(c.assigned))
	light, heavy := 0, 0
	// Keep matching roles in place to minimize model reloads.
	for i, role := range c.assigned {
		switch {
		case role == "light" && light < needLight:
			next[i] = "light"
			light++
		case role == "heavy" && heavy < needHeavy:
			next[i] = "heavy"
			heavy++
		}
	}
	for i := range next {
		if next[i] != "" {
			continue
		}
		switch {
		case light < needLight:
			next[i] = "light"
			light++
		case heavy < needHeavy:
			next[i] = "heavy"
			heavy++
		default:
			next[i] = "idle"
		}
	}
	for i, conn := range c.cfg.Workers {
		batch := plan.LightBatch
		if next[i] == "heavy" {
			batch = plan.HeavyBatch
		}
		_ = conn.Configure(ctx, ConfigureWorkerRequest{
			Role: next[i], Batch: batch,
		})
	}
	c.assigned = next
}
