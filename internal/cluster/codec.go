package cluster

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
)

// Codec serializes cluster wire messages. Two codecs ship with the
// package: CodecJSON (the original encoding/json wire format, kept as
// the compatibility default) and CodecBinary (a hand-rolled
// length-prefixed binary encoding with no reflection on the hot
// path). Both carry identical payload semantics: for any message,
// decode(encode(msg)) yields the same value under either codec.
type Codec interface {
	// Name identifies the codec ("json", "binary").
	Name() string
	// ContentType is the HTTP content type used on the wire.
	ContentType() string
	// Marshal encodes a message (pass a wire-message value or pointer).
	Marshal(v interface{}) ([]byte, error)
	// Unmarshal decodes into a wire-message pointer.
	Unmarshal(data []byte, v interface{}) error
}

// Codec names accepted by CodecByName and the cmd binaries' -codec
// flags.
const (
	CodecNameJSON   = "json"
	CodecNameBinary = "binary"
)

// CodecJSON is the reflection-based encoding/json codec (the original
// wire format).
var CodecJSON Codec = jsonCodec{}

// CodecBinary is the length-prefixed binary codec.
var CodecBinary Codec = binaryCodec{}

// CodecByName resolves a -codec flag value.
func CodecByName(name string) (Codec, error) {
	switch name {
	case "", CodecNameJSON:
		return CodecJSON, nil
	case CodecNameBinary:
		return CodecBinary, nil
	}
	return nil, fmt.Errorf("cluster: unknown codec %q (have json, binary)", name)
}

// codecForContentType picks the codec matching an HTTP Content-Type
// (or Accept) header; anything unrecognized decodes as JSON, which
// keeps pre-codec clients working.
func codecForContentType(ct string) Codec {
	if ct == binaryContentType {
		return CodecBinary
	}
	return CodecJSON
}

type jsonCodec struct{}

func (jsonCodec) Name() string                            { return CodecNameJSON }
func (jsonCodec) ContentType() string                     { return "application/json" }
func (jsonCodec) Marshal(v interface{}) ([]byte, error)   { return json.Marshal(v) }
func (jsonCodec) Unmarshal(d []byte, v interface{}) error { return json.Unmarshal(d, v) }

const binaryContentType = "application/x-diffserve-binary"

// Message tags: one leading byte per frame so decode mismatches fail
// loudly instead of misreading fields.
const (
	tagQueryMsg = iota + 1
	tagQueryResponse
	tagPullRequest
	tagPullResponse
	tagCompleteRequest
	tagConfigureWorkerRequest
	tagConfigureLBRequest
	tagWorkerStats
	tagLBStats
	tagSubmitRequest
	tagResultsRequest
	tagResultsResponse
	tagMembershipResponse
)

// binaryCodec is a hand-rolled length-prefixed encoding: uvarints for
// counts and non-negative ints, zigzag varints for signed ints, fixed
// 8-byte little-endian IEEE-754 for floats, and length-prefixed bytes
// for strings and slices. Encoding and decoding dispatch on a type
// switch over the concrete wire-message types — no reflection.
type binaryCodec struct{}

func (binaryCodec) Name() string        { return CodecNameBinary }
func (binaryCodec) ContentType() string { return binaryContentType }

func (c binaryCodec) Marshal(v interface{}) ([]byte, error) {
	return c.MarshalAppend(make([]byte, 0, binarySizeHint(v)), v)
}

// binarySizeHint presizes the encode buffer for a message so the
// append chain rarely regrows it.
func binarySizeHint(v interface{}) int {
	switch m := v.(type) {
	case *QueryResponse:
		return 64 + 8*len(m.Features)
	case QueryResponse:
		return 64 + 8*len(m.Features)
	case *PullResponse:
		return 8 + 24*len(m.Queries)
	case PullResponse:
		return 8 + 24*len(m.Queries)
	case *CompleteRequest:
		return 16 + 192*len(m.Items)
	case CompleteRequest:
		return 16 + 192*len(m.Items)
	case *SubmitRequest:
		return 8 + 24*len(m.Queries)
	case SubmitRequest:
		return 8 + 24*len(m.Queries)
	case *ResultsResponse:
		return 8 + 96*len(m.Results)
	case ResultsResponse:
		return 8 + 96*len(m.Results)
	default:
		return 64
	}
}

// MarshalAppend appends v's binary encoding to b and returns the
// extended slice. The framed TCP transport uses it to encode payloads
// directly into a pooled frame buffer, with no intermediate copy.
func (binaryCodec) MarshalAppend(b []byte, v interface{}) ([]byte, error) {
	switch m := v.(type) {
	case *QueryMsg:
		return appendQueryMsg(b, m), nil
	case QueryMsg:
		return appendQueryMsg(b, &m), nil
	case *QueryResponse:
		return appendQueryResponse(b, m), nil
	case QueryResponse:
		return appendQueryResponse(b, &m), nil
	case *PullRequest:
		return appendPullRequest(b, m), nil
	case PullRequest:
		return appendPullRequest(b, &m), nil
	case *PullResponse:
		return appendPullResponse(b, m), nil
	case PullResponse:
		return appendPullResponse(b, &m), nil
	case *CompleteRequest:
		return appendCompleteRequest(b, m), nil
	case CompleteRequest:
		return appendCompleteRequest(b, &m), nil
	case *ConfigureWorkerRequest:
		return appendConfigureWorker(b, m), nil
	case ConfigureWorkerRequest:
		return appendConfigureWorker(b, &m), nil
	case *ConfigureLBRequest:
		return appendConfigureLB(b, m), nil
	case ConfigureLBRequest:
		return appendConfigureLB(b, &m), nil
	case *WorkerStats:
		return appendWorkerStats(b, m), nil
	case WorkerStats:
		return appendWorkerStats(b, &m), nil
	case *LBStats:
		return appendLBStats(b, m), nil
	case LBStats:
		return appendLBStats(b, &m), nil
	case *SubmitRequest:
		return appendSubmitRequest(b, m), nil
	case SubmitRequest:
		return appendSubmitRequest(b, &m), nil
	case *ResultsRequest:
		return appendResultsRequest(b, m), nil
	case ResultsRequest:
		return appendResultsRequest(b, &m), nil
	case *ResultsResponse:
		return appendResultsResponse(b, m), nil
	case ResultsResponse:
		return appendResultsResponse(b, &m), nil
	case *MembershipResponse:
		return appendMembershipResponse(b, m), nil
	case MembershipResponse:
		return appendMembershipResponse(b, &m), nil
	}
	return nil, fmt.Errorf("cluster: binary codec cannot marshal %T", v)
}

func (binaryCodec) Unmarshal(data []byte, v interface{}) error {
	d := &bdec{buf: data}
	switch m := v.(type) {
	case *QueryMsg:
		d.tag(tagQueryMsg)
		readQueryMsg(d, m)
	case *QueryResponse:
		d.tag(tagQueryResponse)
		readQueryResponse(d, m)
	case *PullRequest:
		d.tag(tagPullRequest)
		readPullRequest(d, m)
	case *PullResponse:
		d.tag(tagPullResponse)
		readPullResponse(d, m)
	case *CompleteRequest:
		d.tag(tagCompleteRequest)
		readCompleteRequest(d, m)
	case *ConfigureWorkerRequest:
		d.tag(tagConfigureWorkerRequest)
		m.Role = d.str()
		m.Batch = d.int()
	case *ConfigureLBRequest:
		d.tag(tagConfigureLBRequest)
		m.Threshold = d.f64()
		m.SplitProb = d.f64()
		m.RingEpoch = d.int()
		m.Members = d.intsInto(m.Members)
		m.MemberAddrs = d.strsInto(m.MemberAddrs)
		m.MemberWeights = d.intsInto(m.MemberWeights)
	case *MembershipResponse:
		d.tag(tagMembershipResponse)
		m.RingEpoch = d.int()
		m.Members = d.intsInto(m.Members)
		m.Addrs = d.strsInto(m.Addrs)
		m.Weights = d.intsInto(m.Weights)
	case *WorkerStats:
		d.tag(tagWorkerStats)
		readWorkerStats(d, m)
	case *LBStats:
		d.tag(tagLBStats)
		readLBStats(d, m)
	case *SubmitRequest:
		d.tag(tagSubmitRequest)
		readSubmitRequest(d, m)
	case *ResultsRequest:
		d.tag(tagResultsRequest)
		m.Max = d.int()
		m.Wait = d.f64()
	case *ResultsResponse:
		d.tag(tagResultsResponse)
		readResultsResponse(d, m)
	default:
		return fmt.Errorf("cluster: binary codec cannot unmarshal into %T", v)
	}
	if d.err != nil {
		return fmt.Errorf("cluster: binary decode %T: %w", v, d.err)
	}
	if d.off != len(d.buf) {
		return fmt.Errorf("cluster: binary decode %T: %d trailing bytes", v, len(d.buf)-d.off)
	}
	return nil
}

// --- encode helpers (append-style, zero intermediate allocation) ---

func appendInt(b []byte, v int) []byte     { return binary.AppendVarint(b, int64(v)) }
func appendUint(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }
func appendF64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}
func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}
func appendStr(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// appendFloats length-prefixes a float slice with len+1 so a nil
// slice (0) stays distinct from an empty one (1) — matching JSON's
// null vs [] round-trip semantics.
func appendFloats(b []byte, v []float64) []byte {
	if v == nil {
		return binary.AppendUvarint(b, 0)
	}
	b = binary.AppendUvarint(b, uint64(len(v))+1)
	for _, f := range v {
		b = appendF64(b, f)
	}
	return b
}

// appendInts and appendStrs length-prefix with the same len+1
// nil-vs-empty convention as appendFloats.
func appendInts(b []byte, v []int) []byte {
	if v == nil {
		return binary.AppendUvarint(b, 0)
	}
	b = binary.AppendUvarint(b, uint64(len(v))+1)
	for _, x := range v {
		b = appendInt(b, x)
	}
	return b
}

func appendStrs(b []byte, v []string) []byte {
	if v == nil {
		return binary.AppendUvarint(b, 0)
	}
	b = binary.AppendUvarint(b, uint64(len(v))+1)
	for _, s := range v {
		b = appendStr(b, s)
	}
	return b
}

func appendQueryMsg(b []byte, m *QueryMsg) []byte {
	b = append(b, tagQueryMsg)
	b = appendInt(b, m.ID)
	return appendF64(b, m.Arrival)
}

func appendQueryResponse(b []byte, m *QueryResponse) []byte {
	b = append(b, tagQueryResponse)
	b = appendInt(b, m.ID)
	b = appendBool(b, m.Dropped)
	b = appendStr(b, m.Variant)
	// Features carries JSON's omitempty semantics: an empty slice is
	// indistinguishable from an absent field on the JSON wire, so the
	// binary codec normalizes empty to nil the same way.
	feats := m.Features
	if len(feats) == 0 {
		feats = nil
	}
	b = appendFloats(b, feats)
	b = appendF64(b, m.Artifact)
	b = appendF64(b, m.Confidence)
	b = appendBool(b, m.Deferred)
	b = appendF64(b, m.Arrival)
	return appendF64(b, m.Completion)
}

func appendPullRequest(b []byte, m *PullRequest) []byte {
	b = append(b, tagPullRequest)
	b = appendInt(b, m.WorkerID)
	b = appendStr(b, m.Role)
	b = appendInt(b, m.Max)
	b = appendF64(b, m.Wait)
	return appendBool(b, m.Drain)
}

func appendPullResponse(b []byte, m *PullResponse) []byte {
	b = append(b, tagPullResponse)
	if m.Queries == nil {
		b = appendUint(b, 0)
	} else {
		b = appendUint(b, uint64(len(m.Queries))+1)
		for i := range m.Queries {
			b = appendInt(b, m.Queries[i].ID)
			b = appendF64(b, m.Queries[i].Arrival)
		}
	}
	b = appendInt(b, m.RingEpoch)
	return appendF64(b, m.LeaseDeadline)
}

func appendCompleteItem(b []byte, m *CompleteItem) []byte {
	b = appendInt(b, m.ID)
	b = appendF64(b, m.Arrival)
	b = appendStr(b, m.Variant)
	b = appendFloats(b, m.Features)
	b = appendF64(b, m.Artifact)
	return appendF64(b, m.Confidence)
}

func appendCompleteRequest(b []byte, m *CompleteRequest) []byte {
	b = append(b, tagCompleteRequest)
	b = appendInt(b, m.WorkerID)
	b = appendStr(b, m.Role)
	if m.Items == nil {
		b = appendUint(b, 0)
	} else {
		b = appendUint(b, uint64(len(m.Items))+1)
		for i := range m.Items {
			b = appendCompleteItem(b, &m.Items[i])
		}
	}
	return appendF64(b, m.LeaseDeadline)
}

func appendConfigureWorker(b []byte, m *ConfigureWorkerRequest) []byte {
	b = append(b, tagConfigureWorkerRequest)
	b = appendStr(b, m.Role)
	return appendInt(b, m.Batch)
}

func appendConfigureLB(b []byte, m *ConfigureLBRequest) []byte {
	b = append(b, tagConfigureLBRequest)
	b = appendF64(b, m.Threshold)
	b = appendF64(b, m.SplitProb)
	b = appendInt(b, m.RingEpoch)
	b = appendInts(b, m.Members)
	b = appendStrs(b, m.MemberAddrs)
	return appendInts(b, m.MemberWeights)
}

func appendMembershipResponse(b []byte, m *MembershipResponse) []byte {
	b = append(b, tagMembershipResponse)
	b = appendInt(b, m.RingEpoch)
	b = appendInts(b, m.Members)
	b = appendStrs(b, m.Addrs)
	return appendInts(b, m.Weights)
}

func appendWorkerStats(b []byte, m *WorkerStats) []byte {
	b = append(b, tagWorkerStats)
	b = appendInt(b, m.ID)
	b = appendStr(b, m.Role)
	b = appendInt(b, m.Batch)
	b = appendBool(b, m.Busy)
	b = appendInt(b, m.Batches)
	return appendInt(b, m.Queries)
}

func appendLBStats(b []byte, m *LBStats) []byte {
	b = append(b, tagLBStats)
	b = appendF64(b, m.Now)
	b = appendInt(b, m.LightQueueLen)
	b = appendInt(b, m.HeavyQueueLen)
	b = appendF64(b, m.LightArrivalRate)
	b = appendF64(b, m.HeavyArrivalRate)
	b = appendInt(b, m.ArrivalsSinceTick)
	b = appendInt(b, m.TimeoutsSinceTick)
	b = appendInt(b, m.Completed)
	b = appendInt(b, m.Dropped)
	b = appendInt(b, m.InFlight)
	b = appendInt(b, m.Reclaims)
	b = appendInt(b, m.ShedRedelivery)
	b = appendInt(b, m.LateCompletions)
	return appendInt(b, m.DegradedShards)
}

func appendSubmitRequest(b []byte, m *SubmitRequest) []byte {
	b = append(b, tagSubmitRequest)
	if m.Queries == nil {
		b = appendUint(b, 0)
	} else {
		b = appendUint(b, uint64(len(m.Queries))+1)
		for i := range m.Queries {
			b = appendInt(b, m.Queries[i].ID)
			b = appendF64(b, m.Queries[i].Arrival)
		}
	}
	return appendStr(b, m.Pool)
}

func appendResultsRequest(b []byte, m *ResultsRequest) []byte {
	b = append(b, tagResultsRequest)
	b = appendInt(b, m.Max)
	return appendF64(b, m.Wait)
}

func appendResultsResponse(b []byte, m *ResultsResponse) []byte {
	b = append(b, tagResultsResponse)
	if m.Results == nil {
		return appendUint(b, 0)
	}
	b = appendUint(b, uint64(len(m.Results))+1)
	for i := range m.Results {
		b = appendQueryResponse(b, &m.Results[i])
	}
	return b
}

// --- decode helpers ---

type bdec struct {
	buf []byte
	off int
	err error
}

func (d *bdec) fail(msg string) {
	if d.err == nil {
		d.err = fmt.Errorf("%s at offset %d", msg, d.off)
	}
}

func (d *bdec) tag(want byte) {
	if d.err != nil {
		return
	}
	if d.off >= len(d.buf) {
		d.fail("truncated tag")
		return
	}
	got := d.buf[d.off]
	d.off++
	if got != want {
		d.fail(fmt.Sprintf("message tag %d, want %d", got, want))
	}
}

func (d *bdec) uint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail("bad uvarint")
		return 0
	}
	d.off += n
	return v
}

func (d *bdec) int() int {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		d.fail("bad varint")
		return 0
	}
	d.off += n
	return int(v)
}

func (d *bdec) f64() float64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.buf) {
		d.fail("truncated float64")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.buf[d.off:]))
	d.off += 8
	return v
}

func (d *bdec) bool() bool {
	if d.err != nil {
		return false
	}
	if d.off >= len(d.buf) {
		d.fail("truncated bool")
		return false
	}
	v := d.buf[d.off]
	d.off++
	return v != 0
}

func (d *bdec) str() string {
	n := d.uint()
	if d.err != nil {
		return ""
	}
	if uint64(len(d.buf)-d.off) < n {
		d.fail("truncated string")
		return ""
	}
	// Wire strings are low-cardinality (roles, pool names, variant
	// names), so interning makes repeat decodes allocation-free.
	s := internString(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

// floatsInto decodes a length-prefixed float slice, reusing prev's
// backing array when it has the capacity. Decoding into a message
// that already carries a feature buffer from an earlier frame is the
// arena-reuse half of the zero-allocation wire path; the caller must
// own prev exclusively.
func (d *bdec) floatsInto(prev []float64) []float64 {
	n := d.uint()
	if d.err != nil || n == 0 {
		return nil
	}
	n--
	// Division form avoids overflow on an adversarial length prefix.
	if n > uint64(len(d.buf)-d.off)/8 {
		d.fail("truncated float slice")
		return nil
	}
	var out []float64
	if uint64(cap(prev)) >= n {
		out = prev[:n]
		if out == nil {
			out = []float64{} // wire says empty, not nil
		}
	} else {
		out = make([]float64, n)
	}
	for i := range out {
		out[i] = d.f64()
	}
	return out
}

// intsInto and strsInto decode length-prefixed slices with the same
// capacity-reuse and nil-vs-empty rules as floatsInto.
func (d *bdec) intsInto(prev []int) []int {
	n := d.count()
	if n < 0 {
		return nil
	}
	var out []int
	if cap(prev) >= n {
		out = prev[:n]
		if out == nil {
			out = []int{} // wire says empty, not nil
		}
	} else {
		out = make([]int, n)
	}
	for i := range out {
		out[i] = d.int()
	}
	return out
}

func (d *bdec) strsInto(prev []string) []string {
	n := d.count()
	if n < 0 {
		return nil
	}
	var out []string
	if cap(prev) >= n {
		out = prev[:n]
		if out == nil {
			out = []string{} // wire says empty, not nil
		}
	} else {
		out = make([]string, n)
	}
	for i := range out {
		out[i] = d.str()
	}
	return out
}

// count validates a length-prefixed element count against the bytes
// remaining (each element encodes to at least one byte), so a
// corrupted prefix cannot trigger a huge allocation.
func (d *bdec) count() int {
	n := d.uint()
	if d.err != nil || n == 0 {
		return -1 // nil slice
	}
	n--
	if n > uint64(len(d.buf)-d.off) {
		d.fail("slice count exceeds remaining bytes")
		return -1
	}
	return int(n)
}

func readQueryMsg(d *bdec, m *QueryMsg) {
	m.ID = d.int()
	m.Arrival = d.f64()
}

func readQueryResponse(d *bdec, m *QueryResponse) {
	m.ID = d.int()
	m.Dropped = d.bool()
	m.Variant = d.str()
	m.Features = d.floatsInto(m.Features)
	m.Artifact = d.f64()
	m.Confidence = d.f64()
	m.Deferred = d.bool()
	m.Arrival = d.f64()
	m.Completion = d.f64()
}

func readPullRequest(d *bdec, m *PullRequest) {
	m.WorkerID = d.int()
	m.Role = d.str()
	m.Max = d.int()
	m.Wait = d.f64()
	m.Drain = d.bool()
}

// Slice-valued messages decode with capacity reuse: when the target
// already holds a slice with room (left over from a previous decode
// into the same struct), its backing array is reused instead of
// reallocated. Every element field is overwritten, so stale contents
// never leak; a nil count still yields nil, preserving the codec's
// nil-vs-empty parity with JSON.

func readPullResponse(d *bdec, m *PullResponse) {
	n := d.count()
	if n < 0 {
		m.Queries = nil
	} else {
		if cap(m.Queries) >= n {
			m.Queries = m.Queries[:n]
		} else {
			m.Queries = make([]QueryMsg, n)
		}
		if m.Queries == nil {
			m.Queries = []QueryMsg{} // wire says empty, not nil
		}
		for i := range m.Queries {
			readQueryMsg(d, &m.Queries[i])
		}
	}
	m.RingEpoch = d.int()
	m.LeaseDeadline = d.f64()
}

func readCompleteRequest(d *bdec, m *CompleteRequest) {
	m.WorkerID = d.int()
	m.Role = d.str()
	n := d.count()
	if n < 0 {
		m.Items = nil
	} else {
		if cap(m.Items) >= n {
			m.Items = m.Items[:n]
		} else {
			m.Items = make([]CompleteItem, n)
		}
		if m.Items == nil {
			m.Items = []CompleteItem{} // wire says empty, not nil
		}
		for i := range m.Items {
			it := &m.Items[i]
			it.ID = d.int()
			it.Arrival = d.f64()
			it.Variant = d.str()
			it.Features = d.floatsInto(it.Features)
			it.Artifact = d.f64()
			it.Confidence = d.f64()
		}
	}
	m.LeaseDeadline = d.f64()
}

func readWorkerStats(d *bdec, m *WorkerStats) {
	m.ID = d.int()
	m.Role = d.str()
	m.Batch = d.int()
	m.Busy = d.bool()
	m.Batches = d.int()
	m.Queries = d.int()
}

func readLBStats(d *bdec, m *LBStats) {
	m.Now = d.f64()
	m.LightQueueLen = d.int()
	m.HeavyQueueLen = d.int()
	m.LightArrivalRate = d.f64()
	m.HeavyArrivalRate = d.f64()
	m.ArrivalsSinceTick = d.int()
	m.TimeoutsSinceTick = d.int()
	m.Completed = d.int()
	m.Dropped = d.int()
	m.InFlight = d.int()
	m.Reclaims = d.int()
	m.ShedRedelivery = d.int()
	m.LateCompletions = d.int()
	m.DegradedShards = d.int()
}

func readSubmitRequest(d *bdec, m *SubmitRequest) {
	n := d.count()
	if n < 0 {
		m.Queries = nil
	} else {
		if cap(m.Queries) >= n {
			m.Queries = m.Queries[:n]
		} else {
			m.Queries = make([]QueryMsg, n)
		}
		if m.Queries == nil {
			m.Queries = []QueryMsg{} // wire says empty, not nil
		}
		for i := range m.Queries {
			readQueryMsg(d, &m.Queries[i])
		}
	}
	m.Pool = d.str()
}

func readResultsResponse(d *bdec, m *ResultsResponse) {
	n := d.count()
	if n < 0 {
		m.Results = nil
		return
	}
	if cap(m.Results) >= n {
		m.Results = m.Results[:n]
	} else {
		m.Results = make([]QueryResponse, n)
	}
	if m.Results == nil {
		m.Results = []QueryResponse{} // wire says empty, not nil
	}
	for i := range m.Results {
		d.tag(tagQueryResponse)
		readQueryResponse(d, &m.Results[i])
	}
}
