package cluster

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"diffserve/internal/loadbalancer"
)

// This file implements the sharded load-balancer tier: a frontend
// that partitions the query stream across N independent LBServer
// shards, each reachable through any Transport (inproc, http, tcp).
// One LBServer process tops out on its result lock and admission path
// long before "millions of users" arrival rates; partitioning query
// IDs across shards multiplies the admission and result throughput
// without any new wire messages — the frontend speaks the existing
// LBConn verbs to each shard.
//
// Placement is a loadbalancer.Ring — a versioned consistent-hash ring
// over the shard membership. Every process computes the owning shard
// locally and deterministically from (members, vnodes), so a
// multi-host layout — one LB shard plus a worker group per host —
// needs no coordination service. With VNodes == 0 the epoch-0 ring is
// the legacy static modulus (bit-identical to loadbalancer.ShardOf),
// so fixed-N deployments keep their exact assignment.
//
// Membership is a runtime property. Resharding installs a new ring
// epoch: new submits atomically flip to the new ring (an RWMutex
// write barrier — a batch in flight lands entirely in the epoch it
// started under), queued queries owned by departing shards are
// drain-pulled back through the frontend and re-submitted to their
// new owners (PullRequest.Drain transfers ownership, so the move is
// exactly-once), and completions fan out to each epoch's owner —
// the idempotent complete/drop machinery makes the extra deliveries
// no-ops. Removed shards stay reachable as "retired" conns: their
// result pumps keep running and a background sweeper re-routes
// stragglers (e.g. a deferral pushed by a worker that had not yet
// re-pinned), so nothing a retired shard still holds is ever lost.
// Workers observe the flip through the ring-epoch field every pull
// response carries and re-pin via their RePin hook.
//
// Neither old epochs nor retired conns are kept forever. The frontend
// counts the in-flight queries dispatched under each epoch; an epoch
// whose count has drained to zero (and that has a newer successor) is
// quiesced and collapsed out of the installed list, so the Complete
// fan-out stays bounded under continuous resharding. A retired member
// finalizes once every epoch that knew it has collapsed and two
// consecutive straggler sweeps came back empty: its cumulative
// counters are folded into the merged Stats baseline, and its pump and
// sweeper terminate instead of polling a drained shard forever.
//
// Membership is also discoverable at runtime: every reshard broadcast
// carries the new (epoch, members, addrs, weights), each shard
// republishes it through the Membership verb, and SyncMembership lets
// a standalone frontend adopt the authority's flip — polled only on
// epoch change — without redialing from a static address list.

// shardPullSlice bounds, in trace seconds, how long a frontend Pull
// parks on one shard before re-sweeping the others for work.
const shardPullSlice = 0.25

// retiredSweepInterval is the trace-seconds cadence at which a
// removed shard is re-swept for straggler queries.
const retiredSweepInterval = 0.25

// retiredEmptySweeps is how many consecutive empty straggler sweeps a
// fully-quiesced retired member must report before it is finalized.
// The grace rounds cover the re-route window for stale foreign
// frontends that still route by a pre-flip membership.
const retiredEmptySweeps = 2

// ShardedLBConfig parameterizes the sharded frontend.
type ShardedLBConfig struct {
	// Shards are the per-shard connections, one per LBServer. With
	// the default modulus placement (VNodes == 0, Members nil),
	// Shards[i] must serve the shard loadbalancer.ShardOf assigns
	// index i.
	Shards []LBConn
	// Members are the ring member IDs, parallel to Shards. Nil
	// defaults to 0..len(Shards)-1. Member IDs are never reused: a
	// removed member stays retired for the frontend's lifetime.
	Members []int
	// VNodes selects the placement: 0 keeps the legacy static-modulus
	// assignment (bit-identical to ShardOf) as long as membership
	// stays contiguous 0..N-1, falling back to a consistent-hash ring
	// with loadbalancer.DefaultVNodes otherwise; > 0 always uses a
	// consistent-hash ring with that many virtual nodes per shard,
	// the minimal-disruption placement for tiers that reshard.
	VNodes int
	// Clock converts long-poll waits (trace seconds) to wall time,
	// exactly as the shards themselves do.
	Clock *Clock
	// PumpWait is the long-poll duration (trace seconds) of each
	// background result pump. Zero defaults to 0.5.
	PumpWait float64
	// DegradeThreshold is the number of consecutive failed dispatches
	// (or result-pump polls) against one shard before the frontend
	// marks the member degraded: new submits spill to the ring's next
	// owner and the degraded count surfaces in merged Stats, so the
	// controller can trigger a reshard. The first success un-degrades.
	// Zero defaults to 3; negative disables degradation.
	DegradeThreshold int
	// Weights, when set, makes placement capacity-aware: each epoch's
	// ring is built with loadbalancer.NewWeightedRing over the weights
	// the callback returns for that epoch's membership (a shard's
	// worker-group size, in the harness), so a shard with fewer workers
	// owns a proportionally smaller key share instead of its equal
	// 1/N slice. Weights missing from the map or <= 0 count as 1.
	// Every frontend of a tier must compute identical weights (or
	// follow the authority via SyncMembership, which carries them).
	Weights func(members []int) map[int]int
}

// epochRing is one installed placement epoch: the ring plus the
// member connections as of that epoch. Epochs are immutable once
// installed; the newest one routes submits, and completions fan out
// across all of them so a query registered under any epoch still
// finds its shard.
type epochRing struct {
	epoch   int
	ring    *loadbalancer.Ring
	members []int    // sorted ascending
	conns   []LBConn // parallel to members
	weights []int    // parallel to members; nil when placement is unweighted
	slot    map[int]int
}

func (e *epochRing) conn(member int) LBConn {
	if i, ok := e.slot[member]; ok {
		return e.conns[i]
	}
	return nil
}

// ShardedLB partitions queries across independent LBServer shards by
// consistent hashing and re-exposes them as one LBConn:
//
//   - Submit / SubmitBatch route each query to its owning shard under
//     the current ring epoch (batches fan out per shard concurrently,
//     and a whole batch lands in exactly one epoch);
//   - PollResults merges the shards' result streams: one background
//     pump per shard long-polls its shard and lands results in a
//     shared buffer with LBServer-identical wait semantics (pumps
//     start lazily on the first PollResults call, so a frontend used
//     only for control-plane fan-out never consumes results);
//   - Pull sweeps the shards (retired ones included) from a rotating
//     start for dispatchable work, parking on one shard at a time
//     between sweeps;
//   - Complete routes each finished item to its owning shard under
//     every epoch — the non-owners treat the delivery as a no-op;
//   - Configure broadcasts with the current ring epoch stamped;
//     Stats merges the shards' reports;
//   - Resharding / AddShard / RemoveShard change membership at
//     runtime (see the file comment for the migration protocol).
//
// Exactly one process may poll results through a given query's shard
// — the same destructive-read contract a single LBServer has.
type ShardedLB struct {
	cfg    ShardedLBConfig
	ctx    context.Context
	cancel context.CancelFunc

	// ringMu guards the epoch list and the retired set. Submit fan-out
	// holds it for reading across the whole batch flight, which is the
	// write barrier that makes a reshard flip atomic per batch.
	ringMu  sync.RWMutex
	epochs  []epochRing
	retired map[int]LBConn // removed member -> conn, kept for stragglers
	// sweep is the immutable conn list Pull sweeps (current members in
	// ascending order, then retired members), rebuilt on every
	// reshard so the per-pull snapshot is a slice read, not a copy.
	sweep []LBConn

	// reshardMu serializes membership changes end to end (flip +
	// drain), so two concurrent reshards cannot interleave their
	// migrations.
	reshardMu sync.Mutex

	// Epoch-liveness accounting, behind the quiescence collapse.
	// liveEpoch maps each in-flight query ID admitted through
	// SubmitBatch (or migrated by a drain) to the epoch it was
	// dispatched under; epochLive counts in-flight queries per epoch.
	// Blocking Submits count in epochLive without an ID entry — their
	// results return on the call itself, not through a pump. An epoch
	// with a zero count and a newer successor is quiesced:
	// collapseQuiescedLocked drops it from the installed list. liveMu
	// is a leaf lock, taken under ringMu; curEpoch mirrors the newest
	// epoch so decrement paths can skip the collapse attempt without
	// touching ringMu.
	liveMu    sync.Mutex
	liveEpoch map[int]int
	epochLive map[int]int
	curEpoch  atomic.Int64

	// addrMu guards the advertised member addresses (SetMemberAddr /
	// Membership): the dial strings a following frontend needs to reach
	// members it has never seen.
	addrMu      sync.Mutex
	memberAddrs map[int]string

	// cfgMu guards the last configured policy AND serializes policy
	// broadcasts: a reshard re-broadcasts lastCfg with the new epoch
	// stamp, and without the serialization it could interleave with a
	// concurrent Configure and overwrite a newer threshold with a
	// stale one on some shards.
	cfgMu   sync.Mutex
	lastCfg ConfigureLBRequest

	// Result merge state: pumps append, PollResults drains.
	resMu   sync.Mutex
	results []QueryResponse
	wake    notifier
	pumps   sync.WaitGroup

	// pumpMu guards lazy pump startup; pumped tracks the members whose
	// pump is already running (member IDs are never reused, so a
	// member maps to one conn forever). pumpsUp short-circuits
	// startPumps once the initial scan has run — PollResults calls it
	// on every poll, and reshardLocked starts pumps for members added
	// later, so re-scanning would be pure lock traffic. finished marks
	// retired members that finalized: their pump exits on its next
	// poll cycle and never restarts.
	pumpMu   sync.Mutex
	pumping  bool
	pumped   map[int]bool
	finished map[int]bool
	pumpsUp  atomic.Bool

	// rr rotates Pull's sweep start across calls so concurrent
	// frontend pullers spread over the shards.
	rr atomic.Uint64

	// statsMu guards the carried tick counters: a shard's Stats call
	// destructively resets its since-tick counters, so when a later
	// shard's poll fails mid-merge the already-reset counters are
	// stashed here and folded into the next successful merge instead
	// of vanishing from the controller's demand estimate. It is held
	// across the whole merge, which also serializes the merge against
	// retired-member finalization — a finalizing member's last poll
	// must fold into retiredBase exactly once, never alongside a
	// concurrent merge poll of the same conn. retiredBase accumulates
	// the cumulative counters of finalized members, so their completed
	// and dropped work stays visible after their conns stop being
	// polled.
	statsMu       sync.Mutex
	carryArrivals int
	carryTimeouts int
	retiredBase   LBStats

	// Degradation state. A member that fails DegradeThreshold
	// consecutive dispatches or pump polls is marked degraded; while
	// marked, new submits owned by it spill to the ring's next owner
	// (see shardFor) and the merged Stats report the count. The first
	// success resets the streak and restores normal placement.
	// degradeMu is a leaf lock (safe under ringMu); degradedN mirrors
	// len(degraded) so the healthy-tier placement fast path is one
	// atomic load, no lock.
	degradeMu   sync.Mutex
	memberFails map[int]int
	degraded    map[int]bool
	degradedN   atomic.Int32
}

// SplitShardAddrs parses a comma-separated shard address list,
// trimming whitespace and dropping empty entries (a trailing comma
// is not a shard). The cmd binaries share it so every -shard-addrs
// flag parses identically — the list order defines the initial ring
// members 0..N-1, and must match on every process.
func SplitShardAddrs(csv string) []string {
	var addrs []string
	for _, a := range strings.Split(csv, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	return addrs
}

// DialShardedLB dials every shard of a comma-separated address list
// with DialLB and wraps the connections in a ShardedLB frontend —
// the standalone client's and controller's way onto a sharded tier.
// vnodes selects the placement exactly as ShardedLBConfig.VNodes
// does: 0 is the legacy static modulus, > 0 a consistent-hash ring.
func DialShardedLB(transport, addrCSV string, codec Codec, clock *Clock, vnodes int) (*ShardedLB, error) {
	addrs := SplitShardAddrs(addrCSV)
	if len(addrs) == 0 {
		return nil, fmt.Errorf("cluster: no shard addresses in %q", addrCSV)
	}
	conns := make([]LBConn, len(addrs))
	for i, a := range addrs {
		conn, err := DialLB(transport, a, codec)
		if err != nil {
			return nil, fmt.Errorf("cluster: dialing shard %d: %w", i, err)
		}
		conns[i] = conn
	}
	s, err := NewShardedLB(ShardedLBConfig{Shards: conns, Clock: clock, VNodes: vnodes})
	if err != nil {
		return nil, err
	}
	for i, a := range addrs {
		s.SetMemberAddr(i, a)
	}
	return s, nil
}

// buildRing constructs the placement for one epoch's membership under
// the config's VNodes policy. weights, when non-nil, overrides the
// config's Weights callback — a following frontend builds the exact
// ring the authority advertised rather than re-deriving it. The
// returned weight vector is parallel to the sorted members and nil
// when the placement is unweighted.
func (cfg *ShardedLBConfig) buildRing(members []int, weights map[int]int) (*loadbalancer.Ring, []int) {
	if weights == nil && cfg.Weights != nil {
		weights = cfg.Weights(members)
	}
	vec := make([]int, len(members))
	uniform := true
	for i, m := range members {
		if w := weights[m]; w > 0 {
			vec[i] = w
		} else {
			vec[i] = 1
		}
		if vec[i] != vec[0] {
			uniform = false
		}
	}
	if uniform {
		// Equal weights are the unweighted placement bit for bit, so the
		// legacy modulus shape (and NewRing) stay reachable under a
		// Weights callback that happens to return a flat vector.
		if cfg.VNodes == 0 && contiguousMembers(members) {
			return loadbalancer.NewModulusRing(len(members)), nil
		}
		return loadbalancer.NewRing(members, cfg.VNodes), nil
	}
	return loadbalancer.NewWeightedRing(members, weights, cfg.VNodes), vec
}

// contiguousMembers reports whether sorted members are exactly 0..N-1
// — the only shape the legacy modulus placement is defined over.
func contiguousMembers(members []int) bool {
	for i, m := range members {
		if m != i {
			return false
		}
	}
	return true
}

// NewShardedLB builds the frontend over the given shard connections.
func NewShardedLB(cfg ShardedLBConfig) (*ShardedLB, error) {
	if len(cfg.Shards) == 0 {
		return nil, fmt.Errorf("cluster: sharded LB needs at least one shard conn")
	}
	if cfg.Clock == nil {
		return nil, fmt.Errorf("cluster: sharded LB needs a clock")
	}
	if cfg.PumpWait <= 0 {
		cfg.PumpWait = 0.5
	}
	if cfg.DegradeThreshold == 0 {
		cfg.DegradeThreshold = 3
	}
	members := cfg.Members
	if members == nil {
		members = make([]int, len(cfg.Shards))
		for i := range members {
			members[i] = i
		}
	}
	if len(members) != len(cfg.Shards) {
		return nil, fmt.Errorf("cluster: %d members for %d shard conns", len(members), len(cfg.Shards))
	}
	e := epochRing{
		epoch:   0,
		members: append([]int(nil), members...),
		conns:   append([]LBConn(nil), cfg.Shards...),
		slot:    make(map[int]int, len(members)),
	}
	sort.Sort(&memberSort{e.members, e.conns})
	for i, m := range e.members {
		if _, dup := e.slot[m]; dup {
			return nil, fmt.Errorf("cluster: duplicate shard member %d", m)
		}
		e.slot[m] = i
	}
	e.ring, e.weights = cfg.buildRing(e.members, nil)
	ctx, cancel := context.WithCancel(context.Background())
	s := &ShardedLB{
		cfg: cfg, ctx: ctx, cancel: cancel,
		epochs:      []epochRing{e},
		retired:     map[int]LBConn{},
		pumped:      map[int]bool{},
		finished:    map[int]bool{},
		sweep:       append([]LBConn(nil), e.conns...),
		memberFails: map[int]int{},
		degraded:    map[int]bool{},
		liveEpoch:   map[int]int{},
		epochLive:   map[int]int{},
		memberAddrs: map[int]string{},
	}
	s.curEpoch.Store(int64(e.epoch))
	return s, nil
}

// memberSort co-sorts a member list and its parallel conns.
type memberSort struct {
	members []int
	conns   []LBConn
}

func (s *memberSort) Len() int           { return len(s.members) }
func (s *memberSort) Less(i, j int) bool { return s.members[i] < s.members[j] }
func (s *memberSort) Swap(i, j int) {
	s.members[i], s.members[j] = s.members[j], s.members[i]
	s.conns[i], s.conns[j] = s.conns[j], s.conns[i]
}

// cur returns the newest epoch. Callers must hold ringMu.
func (s *ShardedLB) cur() *epochRing { return &s.epochs[len(s.epochs)-1] }

// Shards returns the number of shards currently in the ring.
func (s *ShardedLB) Shards() int {
	s.ringMu.RLock()
	defer s.ringMu.RUnlock()
	return len(s.cur().members)
}

// Epoch returns the current ring epoch (0 until the first reshard).
func (s *ShardedLB) Epoch() int {
	s.ringMu.RLock()
	defer s.ringMu.RUnlock()
	return s.cur().epoch
}

// Members returns the current ring membership, sorted ascending.
func (s *ShardedLB) Members() []int {
	s.ringMu.RLock()
	defer s.ringMu.RUnlock()
	return append([]int(nil), s.cur().members...)
}

// ShardConn returns the connection serving the i-th member (ascending
// member order) of the current ring — workers pin themselves to one
// shard with it (the harness assigns worker w to member index w mod
// N).
func (s *ShardedLB) ShardConn(i int) LBConn {
	s.ringMu.RLock()
	defer s.ringMu.RUnlock()
	return s.cur().conns[i]
}

// MemberConn returns the connection serving a member ID, retired
// members included (their stragglers still resolve there), or nil.
func (s *ShardedLB) MemberConn(m int) LBConn {
	s.ringMu.RLock()
	defer s.ringMu.RUnlock()
	if c := s.cur().conn(m); c != nil {
		return c
	}
	return s.retired[m]
}

// Close stops the result pumps and retired-shard sweepers. In-flight
// pump polls are cancelled; callers drain all expected results before
// closing, exactly as they would before tearing down a single
// LBServer's transport.
func (s *ShardedLB) Close() {
	s.cancel()
	s.pumps.Wait()
}

// shardFor returns the slot index query id routes to under cur:
// normally the ring owner, but a degraded owner's new submits spill to
// the ring's next owner while it is marked, so an unreachable shard
// does not blackhole its hash range. The spill target must itself be a
// current, healthy member; otherwise the primary keeps the query — a
// degraded shard is slow or unreachable, not forgotten, and whatever
// lands there still resolves once it recovers (or is migrated when the
// controller reshards it away). Callers hold ringMu for reading.
func (s *ShardedLB) shardFor(cur *epochRing, id int) int {
	owner := cur.ring.Owner(id)
	if s.degradedN.Load() == 0 {
		return cur.slot[owner]
	}
	s.degradeMu.Lock()
	defer s.degradeMu.Unlock()
	if !s.degraded[owner] {
		return cur.slot[owner]
	}
	if next := cur.ring.NextOwner(id); next != owner && !s.degraded[next] {
		if i, ok := cur.slot[next]; ok {
			return i
		}
	}
	return cur.slot[owner]
}

// recordDispatch feeds one per-shard call outcome into the degradation
// tracker: failures extend the member's streak (degrading it at the
// threshold), a success resets it.
func (s *ShardedLB) recordDispatch(member int, err error) {
	if err != nil {
		s.recordMemberFailure(member)
	} else {
		s.recordMemberSuccess(member)
	}
}

// recordMemberFailure counts one failed dispatch or pump poll against
// a member, marking it degraded at the configured threshold.
func (s *ShardedLB) recordMemberFailure(m int) {
	if s.cfg.DegradeThreshold <= 0 {
		return
	}
	s.degradeMu.Lock()
	defer s.degradeMu.Unlock()
	s.memberFails[m]++
	if s.memberFails[m] >= s.cfg.DegradeThreshold && !s.degraded[m] {
		s.degraded[m] = true
		s.degradedN.Add(1)
	}
}

// recordMemberSuccess resets a member's failure streak and, if it was
// degraded, restores normal placement for its hash range.
func (s *ShardedLB) recordMemberSuccess(m int) {
	if s.cfg.DegradeThreshold <= 0 {
		return
	}
	s.degradeMu.Lock()
	defer s.degradeMu.Unlock()
	if s.memberFails[m] == 0 && !s.degraded[m] {
		return
	}
	s.memberFails[m] = 0
	if s.degraded[m] {
		delete(s.degraded, m)
		s.degradedN.Add(-1)
	}
}

// DegradedMembers returns the member IDs currently marked degraded,
// sorted ascending. The controller reads the count from merged Stats
// (LBStats.DegradedShards); tests and operators read identities here.
func (s *ShardedLB) DegradedMembers() []int {
	s.degradeMu.Lock()
	defer s.degradeMu.Unlock()
	out := make([]int, 0, len(s.degraded))
	for m := range s.degraded {
		out = append(out, m)
	}
	sort.Ints(out)
	return out
}

// Submit admits one query on its owning shard (under the current
// epoch) and blocks until it completes or drops. Unlike SubmitBatch,
// the ring lock cannot be held for the call's duration (a blocking
// Submit lasts until the query resolves, which would stall every
// reshard behind it), so a reshard can slip between the owner lookup
// and the dispatch; the worst case is bounded and mirrors the
// documented migration semantics for blocking waiters — the query
// lands on a just-retired shard and the straggler sweep resolves it
// as a drop. It is never lost or left hanging.
func (s *ShardedLB) Submit(ctx context.Context, q QueryMsg) (QueryResponse, error) {
	s.ringMu.RLock()
	cur := s.cur()
	epoch := cur.epoch
	conn := cur.conns[s.shardFor(cur, q.ID)]
	// A blocking waiter keeps its dispatch epoch live (so Complete
	// fan-out still covers its shard) but needs no per-ID entry — the
	// result returns on this call, never through a pump.
	s.liveMu.Lock()
	s.epochLive[epoch]++
	s.liveMu.Unlock()
	s.ringMu.RUnlock()
	resp, err := conn.Submit(ctx, q)
	s.epochDone(epoch)
	return resp, err
}

// epochDone releases one blocking Submit's hold on its dispatch epoch,
// collapsing the epoch if the release drained it and it is no longer
// current.
func (s *ShardedLB) epochDone(epoch int) {
	s.liveMu.Lock()
	s.epochLive[epoch]--
	drained := s.epochLive[epoch] <= 0
	s.liveMu.Unlock()
	if drained && int(s.curEpoch.Load()) != epoch {
		s.maybeCollapse()
	}
}

// SubmitBatch splits the batch by owning shard under the current ring
// epoch and fans the per-shard batches out concurrently. The epoch is
// held (shared-locked) for the whole flight: a Resharding call
// barriers behind in-flight batches, so every batch lands entirely in
// one epoch — never straddling two rings.
func (s *ShardedLB) SubmitBatch(ctx context.Context, req SubmitRequest) error {
	s.ringMu.RLock()
	defer s.ringMu.RUnlock()
	cur := s.cur()
	n := len(cur.conns)
	if n == 1 {
		s.trackBatch(cur.epoch, req.Queries)
		err := cur.conns[0].SubmitBatch(ctx, req)
		s.recordDispatch(cur.members[0], err)
		if err != nil {
			s.untrackBatch(cur.epoch, req.Queries)
		}
		return err
	}
	// The fan-out scratch (per-shard groups and error slots) is pooled:
	// the goroutines all join before return, and errors.Join copies the
	// non-nil errors, so nothing references the scratch afterwards.
	sc := getSubmitScratch(n)
	defer putSubmitScratch(sc)
	groups, errs := sc.groups, sc.errs
	for _, q := range req.Queries {
		sh := s.shardFor(cur, q.ID)
		groups[sh] = append(groups[sh], q)
	}
	s.trackBatch(cur.epoch, req.Queries)
	var wg sync.WaitGroup
	for i, g := range groups {
		if len(g) == 0 {
			continue
		}
		wg.Add(1)
		go func(i int, g []QueryMsg) {
			defer wg.Done()
			errs[i] = cur.conns[i].SubmitBatch(ctx, SubmitRequest{Queries: g, Pool: req.Pool})
			s.recordDispatch(cur.members[i], errs[i])
			if errs[i] != nil {
				s.untrackBatch(cur.epoch, g)
			}
		}(i, g)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// trackBatch tags each query with its dispatch epoch BEFORE the
// dispatch flies: results race the submit call, and a landing result
// must find the tag to release it. Callers hold ringMu for reading,
// which pins epoch as current. A query already tagged (a client retry
// re-admitting an ID, or a drain migrating it) moves to the new epoch.
func (s *ShardedLB) trackBatch(epoch int, qs []QueryMsg) {
	s.liveMu.Lock()
	for i := range qs {
		id := qs[i].ID
		if old, ok := s.liveEpoch[id]; ok {
			s.epochLive[old]--
		}
		s.liveEpoch[id] = epoch
		s.epochLive[epoch]++
	}
	s.liveMu.Unlock()
}

// untrackBatch releases queries whose dispatch failed outright: the
// shard never admitted them (or, if it did and the reply was lost,
// their results land through the pump and find the tag already gone —
// a harmless no-op either way, though in the lost-reply corner the
// dispatch epoch may collapse while the silent registration persists;
// its completion then relies on the lease-expiry reclaim rather than
// the epoch fan-out). Skipping IDs re-tagged meanwhile keeps a
// concurrent re-admission's newer tag intact.
func (s *ShardedLB) untrackBatch(epoch int, qs []QueryMsg) {
	s.liveMu.Lock()
	drained := false
	for i := range qs {
		id := qs[i].ID
		if e, ok := s.liveEpoch[id]; ok && e == epoch {
			delete(s.liveEpoch, id)
			s.epochLive[epoch]--
			drained = drained || s.epochLive[epoch] <= 0
		}
	}
	s.liveMu.Unlock()
	if drained && int(s.curEpoch.Load()) != epoch {
		s.maybeCollapse()
	}
}

// untrackResults releases landed results' epoch tags and collapses any
// non-current epoch the landings drained.
func (s *ShardedLB) untrackResults(results []QueryResponse) {
	cur := int(s.curEpoch.Load())
	collapse := false
	s.liveMu.Lock()
	for i := range results {
		id := results[i].ID
		e, ok := s.liveEpoch[id]
		if !ok {
			continue
		}
		delete(s.liveEpoch, id)
		s.epochLive[e]--
		if s.epochLive[e] <= 0 && e != cur {
			collapse = true
		}
	}
	s.liveMu.Unlock()
	if collapse {
		s.maybeCollapse()
	}
}

// maybeCollapse takes the ring write lock and collapses quiesced
// epochs. Decrement paths call it only when they drained a non-current
// epoch, so the write-lock traffic is per quiescence event, not per
// result.
func (s *ShardedLB) maybeCollapse() {
	s.ringMu.Lock()
	s.collapseQuiescedLocked()
	s.ringMu.Unlock()
}

// collapseQuiescedLocked drops installed epochs with no live queries
// (the newest epoch always stays: it routes new submits). The kept
// epochs go into a fresh slice — Complete snapshots s.epochs by
// reference, so the array a snapshot points at must never be mutated.
// Callers hold ringMu exclusively.
func (s *ShardedLB) collapseQuiescedLocked() {
	if len(s.epochs) == 1 {
		return
	}
	s.liveMu.Lock()
	keep := make([]epochRing, 0, len(s.epochs))
	for i := range s.epochs {
		e := &s.epochs[i]
		if i == len(s.epochs)-1 || s.epochLive[e.epoch] > 0 {
			keep = append(keep, *e)
		} else {
			delete(s.epochLive, e.epoch)
		}
	}
	s.liveMu.Unlock()
	if len(keep) != len(s.epochs) {
		s.epochs = keep
	}
}

// submitScratch recycles SubmitBatch's fan-out state — the per-shard
// query groups (inner slice capacity included) and the error slots —
// so a steady stream of batches does not allocate per call. The
// grouped queries are value copies of the caller's, and every shard
// dispatch joins before the scratch is returned, so recycling cannot
// alias a batch still in flight.
type submitScratch struct {
	groups [][]QueryMsg
	errs   []error
}

var submitScratchPool = sync.Pool{New: func() interface{} { return new(submitScratch) }}

// getSubmitScratch returns a scratch sized for n shards with empty
// groups and nil error slots.
func getSubmitScratch(n int) *submitScratch {
	sc := submitScratchPool.Get().(*submitScratch)
	if cap(sc.groups) < n {
		old := sc.groups[:cap(sc.groups)]
		sc.groups = make([][]QueryMsg, n)
		copy(sc.groups, old) // keep the inner capacity already grown
		sc.errs = make([]error, n)
	}
	sc.groups = sc.groups[:n]
	sc.errs = sc.errs[:n]
	for i := range sc.groups {
		sc.groups[i] = sc.groups[i][:0]
		sc.errs[i] = nil
	}
	return sc
}

func putSubmitScratch(sc *submitScratch) { submitScratchPool.Put(sc) }

// startPumps launches the result pumps lazily on first use, and marks
// the frontend as pumping so later reshards start pumps for the
// shards they add.
func (s *ShardedLB) startPumps() {
	if s.pumpsUp.Load() {
		return
	}
	s.pumpMu.Lock()
	defer s.pumpMu.Unlock()
	s.pumping = true
	s.ringMu.RLock()
	cur := s.cur()
	members := append([]int(nil), cur.members...)
	conns := append([]LBConn(nil), cur.conns...)
	for m, c := range s.retired {
		members = append(members, m)
		conns = append(conns, c)
	}
	s.ringMu.RUnlock()
	for i, m := range members {
		if !s.pumped[m] {
			s.pumped[m] = true
			s.pumps.Add(1)
			go s.pump(m, conns[i])
		}
	}
	s.pumpsUp.Store(true)
}

// pump long-polls one shard for results and lands them in the merged
// buffer. Results are appended before the error is inspected: an
// in-process poll cancelled at shutdown still returns the batch it
// popped, and dropping it would lose resolved queries. Retired
// shards keep their pump — stragglers completed there after a
// reshard still surface in the merged stream — until the member
// finalizes, at which point the pump exits instead of long-polling a
// drained shard forever.
//
// The pump doubles as the degradation tracker's health probe: poll
// failures extend the member's failure streak, and each successful
// poll — empty or not — resets it, which is what un-degrades a shard
// that came back without any new submits being risked on it first.
func (s *ShardedLB) pump(member int, conn LBConn) {
	defer s.pumps.Done()
	// The poll response is reused across iterations; the merged buffer
	// takes value copies of the results, so each element's Features
	// pointer is handed off by zeroing the element before the next poll
	// decodes into the struct — reusing that capacity would scribble on
	// results already landed in the stream.
	var resp ResultsResponse
	for s.ctx.Err() == nil {
		if s.pumpFinished(member) {
			return
		}
		err := PollResultsIntoConn(s.ctx, conn, ResultsRequest{Max: 1024, Wait: s.cfg.PumpWait}, &resp)
		if len(resp.Results) > 0 {
			s.resMu.Lock()
			s.results = append(s.results, resp.Results...)
			s.wake.wake()
			s.resMu.Unlock()
			s.untrackResults(resp.Results)
			for i := range resp.Results {
				resp.Results[i] = QueryResponse{}
			}
		}
		if err != nil {
			// Transient transport failure (or shutdown): back off so a
			// dead shard cannot spin the pump.
			if s.ctx.Err() == nil {
				s.recordMemberFailure(member)
			}
			s.cfg.Clock.SleepTraceCtx(s.ctx, 0.05)
			continue
		}
		s.recordMemberSuccess(member)
	}
}

// pumpFinished reports whether a member's pump should exit: its
// retirement finalized, so no result can ever surface there again.
func (s *ShardedLB) pumpFinished(member int) bool {
	s.pumpMu.Lock()
	defer s.pumpMu.Unlock()
	return s.finished[member]
}

// PollResults drains the merged result buffer with the same wait
// semantics as LBServer.PollResults: req.Wait <= 0 is an explicit
// non-blocking poll; otherwise the call blocks until at least one
// result arrives from any shard or the wait expires.
func (s *ShardedLB) PollResults(ctx context.Context, req ResultsRequest) (ResultsResponse, error) {
	var resp ResultsResponse
	err := s.PollResultsInto(ctx, req, &resp)
	return resp, err
}

// PollResultsInto is PollResults decoding into the caller's response,
// reusing resp.Results' capacity. The caller owns the results until
// its next call with the same struct.
func (s *ShardedLB) PollResultsInto(ctx context.Context, req ResultsRequest, resp *ResultsResponse) error {
	s.startPumps()
	max := req.Max
	if max <= 0 {
		max = 256
	}
	if req.Wait <= 0 {
		s.resMu.Lock()
		s.takeInto(max, resp)
		s.resMu.Unlock()
		return nil
	}
	deadline := time.Now().Add(s.cfg.Clock.WallDuration(req.Wait)) //diffvet:allow walltime — long-poll deadline in wall time; the trace wait is already Clock-converted
	for {
		s.resMu.Lock()
		s.takeInto(max, resp)
		var wake <-chan struct{}
		if len(resp.Results) == 0 {
			wake = s.wake.wait()
		}
		s.resMu.Unlock()
		if len(resp.Results) > 0 {
			return nil
		}
		remain := time.Until(deadline) //diffvet:allow walltime — remaining wall budget of the Clock-converted long-poll deadline
		if remain <= 0 {
			return nil
		}
		t := time.NewTimer(remain)
		select {
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		case <-s.ctx.Done():
			t.Stop()
			return ErrTransportClosed
		case <-wake:
			t.Stop()
		case <-t.C:
		}
	}
}

// takeInto pops up to max merged results into resp.Results, reusing
// its capacity; an empty take leaves resp.Results at length zero (the
// buffer is kept). Callers must hold resMu.
func (s *ShardedLB) takeInto(max int, resp *ResultsResponse) {
	n := len(s.results)
	if n > max {
		n = max
	}
	resp.Results = append(resp.Results[:0], s.results[:n]...)
	s.results = append(s.results[:0], s.results[n:]...)
}

// sweepConns snapshots the connections Pull sweeps: current members
// in ascending order, then retired shards — a straggler parked in a
// retired shard's queue is still dispatchable work. The list is
// rebuilt only on reshard, so the per-pull cost is a pointer read.
func (s *ShardedLB) sweepConns() ([]LBConn, int) {
	s.ringMu.RLock()
	defer s.ringMu.RUnlock()
	return s.sweep, s.cur().epoch
}

// rebuildSweepLocked recomputes the Pull sweep list. Callers hold
// ringMu exclusively.
func (s *ShardedLB) rebuildSweepLocked() {
	cur := s.cur()
	out := append([]LBConn(nil), cur.conns...)
	if len(s.retired) > 0 {
		ms := make([]int, 0, len(s.retired))
		for m := range s.retired {
			ms = append(ms, m)
		}
		sort.Ints(ms)
		for _, m := range ms {
			out = append(out, s.retired[m])
		}
	}
	s.sweep = out
}

// Pull sweeps the shards for dispatchable work, starting each round
// at a rotating shard so concurrent frontend pullers spread out. With
// req.Wait > 0 an empty sweep parks on the round's first shard for a
// bounded slice of the remaining wait, then re-sweeps — work arriving
// on any shard is picked up within one slice. Workers that should
// stay pinned to one shard (the multi-host layout) dial their shard
// directly instead of pulling through the frontend.
func (s *ShardedLB) Pull(ctx context.Context, req PullRequest) (PullResponse, error) {
	var resp PullResponse
	err := s.PullInto(ctx, req, &resp)
	return resp, err
}

// PullInto is Pull decoding into the caller's response, reusing
// resp.Queries' capacity across the sweep and across calls. The
// frontend's ring epoch overwrites whatever epoch the shard reported.
func (s *ShardedLB) PullInto(ctx context.Context, req PullRequest, resp *PullResponse) error {
	conns, epoch := s.sweepConns()
	n := len(conns)
	if n == 1 {
		err := PullIntoConn(ctx, conns[0], req, resp)
		resp.RingEpoch = epoch
		return err
	}
	var deadline float64
	if req.Wait > 0 {
		deadline = s.cfg.Clock.Now() + req.Wait
	}
	for {
		start := int(s.rr.Add(1)-1) % n
		sweep := req
		sweep.Wait = 0
		for i := 0; i < n; i++ {
			err := PullIntoConn(ctx, conns[(start+i)%n], sweep, resp)
			if err != nil || len(resp.Queries) > 0 {
				resp.RingEpoch = epoch
				return err
			}
		}
		if req.Wait <= 0 {
			resp.RingEpoch = epoch
			return nil
		}
		remain := deadline - s.cfg.Clock.Now()
		if remain <= 0 {
			resp.RingEpoch = epoch
			return nil
		}
		park := req
		park.Wait = min(remain, shardPullSlice)
		err := PullIntoConn(ctx, conns[start], park, resp)
		if err != nil || len(resp.Queries) > 0 {
			resp.RingEpoch = epoch
			return err
		}
	}
}

// Complete routes each finished item to the shard that owns its query
// ID under every installed epoch, fanning the per-shard reports out
// concurrently. The item's registration lives on exactly one of those
// shards (wherever it was last submitted or migrated to); the others
// treat the delivery as a no-op thanks to the LBServer's idempotent
// resolve machinery. The fan-out is what lets a completion raced by a
// reshard — or reported by a worker that pulled before the flip —
// always reach the shard that can resolve it.
func (s *ShardedLB) Complete(ctx context.Context, req CompleteRequest) error {
	s.ringMu.RLock()
	// Snapshotting the epoch list is a reference, not a copy: epochs
	// are immutable once installed and reshard appends copy-on-grow,
	// so the captured prefix stays valid outside the lock.
	epochs := s.epochs
	s.ringMu.RUnlock()

	last := &epochs[len(epochs)-1]
	if len(epochs) == 1 && len(last.conns) == 1 {
		return last.conns[0].Complete(ctx, req)
	}

	// Group items by owning member. With a single epoch (no reshard
	// yet — the overwhelmingly common case, and the steady-state data
	// path) grouping is slot-indexed slices with no per-item map
	// traffic, exactly like SubmitBatch. After a reshard the rare
	// multi-epoch path groups by member ID across every epoch (member
	// IDs are stable over the frontend's lifetime, so a member names
	// one conn forever — current or retired).
	var groups [][]CompleteItem
	var conns []LBConn
	if len(epochs) == 1 {
		groups = make([][]CompleteItem, len(last.conns))
		conns = last.conns
		for _, it := range req.Items {
			sh := last.slot[last.ring.Owner(it.ID)]
			groups[sh] = append(groups[sh], it)
		}
	} else {
		byMember := map[int][]CompleteItem{}
		connOf := map[int]LBConn{}
		var owners []int // per-item dedup scratch
		for _, it := range req.Items {
			owners = owners[:0]
			for e := len(epochs) - 1; e >= 0; e-- {
				m := epochs[e].ring.Owner(it.ID)
				dup := false
				for _, o := range owners {
					if o == m {
						dup = true
						break
					}
				}
				if dup {
					continue
				}
				// An epoch's owner always has a conn in that epoch
				// (removed members keep theirs in the epochs that
				// owned them), so no retired-map fallback is needed.
				owners = append(owners, m)
				connOf[m] = epochs[e].conn(m)
				byMember[m] = append(byMember[m], it)
			}
		}
		for m, g := range byMember {
			groups = append(groups, g)
			conns = append(conns, connOf[m])
		}
	}
	errs := make([]error, 0, len(groups))
	var errMu sync.Mutex
	var wg sync.WaitGroup
	for i, g := range groups {
		if len(g) == 0 {
			continue
		}
		wg.Add(1)
		go func(conn LBConn, g []CompleteItem) {
			defer wg.Done()
			err := conn.Complete(ctx, CompleteRequest{
				WorkerID: req.WorkerID, Role: req.Role, Items: g,
			})
			if err != nil {
				errMu.Lock()
				errs = append(errs, err)
				errMu.Unlock()
			}
		}(conns[i], g)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// broadcastConns snapshots every reachable conn — current members and
// retired shards — for policy broadcasts.
func (s *ShardedLB) broadcastConns() []LBConn {
	s.ringMu.RLock()
	defer s.ringMu.RUnlock()
	out := append([]LBConn(nil), s.cur().conns...)
	for _, c := range s.retired {
		out = append(out, c)
	}
	return out
}

// Configure broadcasts the policy update to every shard — retired
// ones included, so their pinned workers see epoch flips too — with
// the current ring epoch and membership stamped. The policy is
// remembered and re-broadcast (with the new stamp) whenever
// membership changes.
func (s *ShardedLB) Configure(ctx context.Context, req ConfigureLBRequest) error {
	// cfgMu is held across the broadcast so a reshard's re-broadcast
	// of the remembered policy cannot interleave with (and partially
	// overwrite) a newer policy in flight.
	s.cfgMu.Lock()
	defer s.cfgMu.Unlock()
	s.lastCfg = req
	s.ringMu.RLock()
	cur := s.cur()
	s.ringMu.RUnlock()
	// cur stays valid outside the lock: epochs are immutable once
	// installed, and a collapse swaps the slice without touching the
	// array a snapshot points at.
	s.stampMembership(&req, cur)
	return s.broadcast(ctx, req)
}

// broadcast fans a configure message out to every reachable shard.
func (s *ShardedLB) broadcast(ctx context.Context, req ConfigureLBRequest) error {
	conns := s.broadcastConns()
	errs := make([]error, len(conns))
	var wg sync.WaitGroup
	for i, conn := range conns {
		wg.Add(1)
		go func(i int, conn LBConn) {
			defer wg.Done()
			errs[i] = conn.Configure(ctx, req)
		}(i, conn)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Stats merges the shards' control-plane reports — retired shards
// included, whose counters cover queries they resolved before (or
// while) being drained: queue lengths, arrival rates, and counters
// sum; Now is the latest shard clock. Every shard is polled even
// after a failure — a poll destructively resets that shard's
// since-tick counters, so the counters gathered alongside a failed
// shard are carried over and folded into the next successful merge
// rather than dropped from the demand estimate.
func (s *ShardedLB) Stats(ctx context.Context) (LBStats, error) {
	// statsMu is held across the whole merge (control-plane cadence, so
	// the hold is cheap): it guards the carried counters and serializes
	// the merge against retired-member finalization, whose last
	// destructive poll of a conn must never interleave with a merge
	// poll of the same conn.
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	conns := s.broadcastConns()
	var out LBStats
	var firstErr error
	for _, conn := range conns {
		st, err := conn.Stats(ctx)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if st.Now > out.Now {
			out.Now = st.Now
		}
		out.LightQueueLen += st.LightQueueLen
		out.HeavyQueueLen += st.HeavyQueueLen
		out.LightArrivalRate += st.LightArrivalRate
		out.HeavyArrivalRate += st.HeavyArrivalRate
		out.ArrivalsSinceTick += st.ArrivalsSinceTick
		out.TimeoutsSinceTick += st.TimeoutsSinceTick
		out.Completed += st.Completed
		out.Dropped += st.Dropped
		out.InFlight += st.InFlight
		out.Reclaims += st.Reclaims
		out.ShedRedelivery += st.ShedRedelivery
		out.LateCompletions += st.LateCompletions
		out.DegradedShards += st.DegradedShards
	}
	// The frontend's own degradation view rides on top of whatever the
	// shards reported (an LBServer never sets DegradedShards itself).
	out.DegradedShards += int(s.degradedN.Load())
	// Finalized retired members are no longer polled; their cumulative
	// counters live on in the accumulated baseline.
	out.Completed += s.retiredBase.Completed
	out.Dropped += s.retiredBase.Dropped
	out.Reclaims += s.retiredBase.Reclaims
	out.ShedRedelivery += s.retiredBase.ShedRedelivery
	out.LateCompletions += s.retiredBase.LateCompletions
	if firstErr != nil {
		s.carryArrivals += out.ArrivalsSinceTick
		s.carryTimeouts += out.TimeoutsSinceTick
		return LBStats{}, firstErr
	}
	out.ArrivalsSinceTick += s.carryArrivals
	out.TimeoutsSinceTick += s.carryTimeouts
	s.carryArrivals, s.carryTimeouts = 0, 0
	return out, nil
}

// Resharding installs a new ring epoch over the given membership.
// conns must provide a connection for every member not already in the
// ring; members being removed keep their existing connection and
// become retired. The flip is atomic with respect to submit batches
// (each lands entirely in one epoch); queued queries on departing
// shards are drain-pulled and re-submitted to their new owners, and a
// background sweeper keeps re-routing stragglers that reach a retired
// shard afterwards (a deferral from a not-yet-re-pinned worker).
// Member IDs are never reused: re-adding a retired member is an
// error, because its old conn may still hold registrations.
//
// Scope: the flip originates at THIS frontend (plus the workers,
// which follow the epoch their pull responses carry), but it is
// discoverable: the re-broadcast stamps every shard with the new
// (epoch, members, addrs, weights), each shard republishes them
// through the Membership verb, and another frontend — a standalone
// diffserve-client dialed with its own -shard-addrs — adopts the flip
// by calling SyncMembership when it notices the epoch move. Until it
// does, it keeps routing by its last-known membership: queries it
// sends to a retired shard are re-routed by the straggler sweep
// (within ~2 trace-seconds of added latency), which is also why a
// retired member keeps a grace window before finalizing.
func (s *ShardedLB) Resharding(ctx context.Context, members []int, conns map[int]LBConn) error {
	s.reshardMu.Lock()
	defer s.reshardMu.Unlock()
	return s.reshardLocked(ctx, members, conns, -1, nil)
}

// AddShard grows the ring by one member served by conn.
func (s *ShardedLB) AddShard(ctx context.Context, member int, conn LBConn) error {
	s.reshardMu.Lock()
	defer s.reshardMu.Unlock()
	cur := s.Members()
	for _, m := range cur {
		if m == member {
			return fmt.Errorf("cluster: shard member %d already in the ring", member)
		}
	}
	return s.reshardLocked(ctx, append(cur, member), map[int]LBConn{member: conn}, -1, nil)
}

// RemoveShard shrinks the ring by one member, migrating its queued
// queries to the survivors. The member's connection stays reachable
// (retired) so in-flight completions and deferrals still resolve.
func (s *ShardedLB) RemoveShard(ctx context.Context, member int) error {
	s.reshardMu.Lock()
	defer s.reshardMu.Unlock()
	cur := s.Members()
	next := make([]int, 0, len(cur))
	for _, m := range cur {
		if m != member {
			next = append(next, m)
		}
	}
	if len(next) == len(cur) {
		return fmt.Errorf("cluster: shard member %d not in the ring", member)
	}
	if len(next) == 0 {
		return fmt.Errorf("cluster: cannot remove the last shard member %d", member)
	}
	return s.reshardLocked(ctx, next, nil, -1, nil)
}

// reshardLocked is the membership-change core. targetEpoch < 0
// installs the next epoch number (a locally-originated flip);
// SyncMembership passes the authority's epoch so followers and
// authority agree on epoch identity. weights, when non-nil, overrides
// the config's Weights callback for this epoch's ring (the authority's
// advertised vector). Callers hold reshardMu.
func (s *ShardedLB) reshardLocked(ctx context.Context, members []int, newConns map[int]LBConn, targetEpoch int, weights map[int]int) error {
	if len(members) == 0 {
		return fmt.Errorf("cluster: resharding to an empty membership")
	}

	s.ringMu.Lock()
	cur := s.cur()
	if targetEpoch < 0 {
		targetEpoch = cur.epoch + 1
	} else if targetEpoch <= cur.epoch {
		s.ringMu.Unlock()
		return fmt.Errorf("cluster: resharding to epoch %d behind current epoch %d", targetEpoch, cur.epoch)
	}
	next := epochRing{
		epoch:   targetEpoch,
		members: append([]int(nil), members...),
		slot:    make(map[int]int, len(members)),
	}
	sort.Ints(next.members)
	next.conns = make([]LBConn, len(next.members))
	for i, m := range next.members {
		if _, dup := next.slot[m]; dup {
			s.ringMu.Unlock()
			return fmt.Errorf("cluster: duplicate shard member %d", m)
		}
		next.slot[m] = i
		switch {
		case cur.conn(m) != nil:
			next.conns[i] = cur.conn(m)
		case newConns[m] != nil:
			if _, was := s.retired[m]; was {
				s.ringMu.Unlock()
				return fmt.Errorf("cluster: member %d was retired and cannot rejoin; use a fresh member ID", m)
			}
			next.conns[i] = newConns[m]
		default:
			s.ringMu.Unlock()
			return fmt.Errorf("cluster: no connection for new shard member %d", m)
		}
	}
	next.ring, next.weights = s.cfg.buildRing(next.members, weights)
	var removed []LBConn
	var removedMembers []int
	for i, m := range cur.members {
		if _, keep := next.slot[m]; !keep {
			s.retired[m] = cur.conns[i]
			removed = append(removed, cur.conns[i])
			removedMembers = append(removedMembers, m)
		}
	}
	// The flip: acquiring ringMu exclusively barriered behind every
	// in-flight submit batch, so batches before this line routed
	// entirely by the old ring and batches after route by the new one.
	s.epochs = append(s.epochs, next)
	s.curEpoch.Store(int64(next.epoch))
	// Quiesced predecessors collapse under the same exclusive hold, so
	// 50 back-to-back reshards of an idle tier still leave a
	// single-digit epoch list, not 50 rings fanning every Complete.
	s.collapseQuiescedLocked()
	s.rebuildSweepLocked()
	s.ringMu.Unlock()

	// New shards join the merged result stream if pumping already
	// began (pump startup is otherwise lazy).
	s.pumpMu.Lock()
	if s.pumping {
		for i, m := range next.members {
			if !s.pumped[m] {
				s.pumped[m] = true
				s.pumps.Add(1)
				go s.pump(m, next.conns[i])
			}
		}
	}
	s.pumpMu.Unlock()

	// Re-broadcast the remembered policy with the new epoch AND the
	// new membership stamped, so shard-pinned workers (including those
	// on removed shards) observe the flip in their next pull response
	// and re-pin, and every shard can republish the membership to
	// standalone frontends. cfgMu is held across the broadcast so a
	// racing Configure cannot end up partially overwritten by this
	// stale policy.
	s.cfgMu.Lock()
	cfgMsg := s.lastCfg
	s.stampMembership(&cfgMsg, &next)
	_ = s.broadcast(ctx, cfgMsg)
	s.cfgMu.Unlock()

	// Migrate departing shards' queued work to the new owners, then
	// keep sweeping for stragglers in the background.
	for i, conn := range removed {
		s.drainShard(ctx, conn)
		s.pumps.Add(1)
		go s.sweepRetired(removedMembers[i], conn)
	}
	return nil
}

// stampMembership fills a configure broadcast's epoch and membership
// fields from one epoch's view: the members, their advertised dial
// addresses (empty where unknown), and the placement weight vector
// (nil when unweighted).
func (s *ShardedLB) stampMembership(req *ConfigureLBRequest, e *epochRing) {
	req.RingEpoch = e.epoch
	req.Members = append([]int(nil), e.members...)
	req.MemberWeights = append([]int(nil), e.weights...)
	req.MemberAddrs = make([]string, len(e.members))
	s.addrMu.Lock()
	for i, m := range e.members {
		req.MemberAddrs[i] = s.memberAddrs[m]
	}
	s.addrMu.Unlock()
}

// drainShard pulls everything queued on a departing shard with
// ownership transfer and re-queues it on the current (post-flip)
// ring's owners. Arrival stamps ride along, so migrated queries keep
// their SLO deadlines, and the pool rides along too: a deferral
// drained from the heavy queue re-enters its new shard's heavy queue
// instead of re-running the light model from scratch. It reports
// whether any round handed queries over.
//
// Like pump(), it
// re-queues whatever a drain round returned before inspecting the
// round's error: the departing shard has already forgotten those
// queries' registrations, so an errored-but-non-empty response (an
// in-process pull cancelled mid-call returns both) still carries
// queries that only this caller can keep alive. (A wire-level drain
// whose response is lost entirely after the server popped it remains
// unrecoverable — the same at-most-once pull semantics every worker
// pull has.)
func (s *ShardedLB) drainShard(ctx context.Context, conn LBConn) bool {
	moved := false
	for _, role := range []string{"light", "heavy"} {
		for {
			resp, err := conn.Pull(ctx, PullRequest{Role: role, Max: 512, Drain: true})
			if len(resp.Queries) > 0 {
				moved = true
				s.resubmitMigrated(resp.Queries, role)
			}
			if err != nil || len(resp.Queries) == 0 {
				break
			}
		}
	}
	return moved
}

// resubmitMigrated re-queues drained queries on their current ring
// owners, retrying failed shards until they land or the frontend
// closes: the departing shard already forgot these queries'
// registrations, so giving up would lose them outright — which is
// why the retries run under the frontend's own lifetime context, not
// the reshard caller's (an admin RPC's request context dying must
// not strand half-migrated queries).
//
// The grouping is computed ONCE, under the ring at entry, and every
// retry re-targets the same shard: a submit that errored after being
// applied server-side re-queues a duplicate, and the idempotent
// resolve machinery only collapses duplicates that live on the SAME
// shard (liveLocked state is per-LBServer). Re-grouping a retry
// under a ring that resharded mid-back-off could register the query
// on a second live shard and double-resolve it. If the targeted
// shard is itself removed while retries are in flight, the query
// still lands there (retired conns stay reachable) and that shard's
// straggler sweep migrates it onward — one registration at a time,
// always.
func (s *ShardedLB) resubmitMigrated(queries []QueryMsg, pool string) {
	ctx := s.ctx
	s.ringMu.RLock()
	cur := s.cur()
	conns := make([]LBConn, len(cur.conns))
	copy(conns, cur.conns)
	groups := make([][]QueryMsg, len(conns))
	for _, q := range queries {
		sh := cur.slot[cur.ring.Owner(q.ID)]
		groups[sh] = append(groups[sh], q)
	}
	// Migration re-tags the queries to the epoch whose ring grouped
	// them: their old shard forgot them, so their old epoch must not be
	// what keeps their new shard in the Complete fan-out.
	s.trackBatch(cur.epoch, queries)
	s.ringMu.RUnlock()
	for {
		pending := false
		for i, g := range groups {
			if len(g) == 0 {
				continue
			}
			if err := conns[i].SubmitBatch(ctx, SubmitRequest{Queries: g, Pool: pool}); err != nil {
				pending = true
				continue
			}
			groups[i] = nil
		}
		if !pending || s.ctx.Err() != nil {
			return
		}
		// Wall-clock floor, like sweepWait: at extreme timescales a
		// trace-seconds back-off rounds to nothing and a dead shard
		// would be hammered in a busy loop.
		t := time.NewTimer(s.sweepWait(0.05))
		select {
		case <-s.ctx.Done():
			t.Stop()
			return
		case <-t.C:
		}
	}
}

// sweepRetired periodically re-drains a removed shard: a worker that
// pulled before the flip can still push a deferral into the retired
// shard's heavy queue after the migration drain ran, and without a
// re-pinned worker pulling there that query would strand forever.
// Empty sweeps back off exponentially, but only up to 8x the base
// interval (2 trace-seconds): besides pre-flip worker stragglers, the
// sweep is the re-route path for any OTHER frontend that has not yet
// adopted the new membership (see SyncMembership) — its misdirected
// queries must reach their real owner with latency budget left under
// typical SLOs.
//
// The sweep does not run forever. Once every epoch that knew the
// member has collapsed (so no frontend-tracked query can live there)
// and retiredEmptySweeps consecutive drains came back empty (the
// grace window for stale foreign frontends), the member finalizes:
// its counters fold into the Stats baseline and the sweeper — and the
// member's result pump — terminate.
func (s *ShardedLB) sweepRetired(member int, conn LBConn) {
	defer s.pumps.Done()
	interval := retiredSweepInterval
	empty := 0
	t := time.NewTimer(s.sweepWait(interval))
	defer t.Stop()
	for {
		select {
		case <-s.ctx.Done():
			return
		case <-t.C:
			if s.drainShard(s.ctx, conn) {
				interval = retiredSweepInterval
				empty = 0
			} else {
				if s.memberQuiesced(member) {
					empty++
					if empty >= retiredEmptySweeps && s.finalizeRetired(member, conn) {
						return
					}
				} else {
					empty = 0
				}
				if interval < 8*retiredSweepInterval {
					interval *= 2
				}
			}
			t.Reset(s.sweepWait(interval))
		}
	}
}

// memberQuiesced reports whether no installed epoch knows the member:
// every epoch that routed to it has collapsed, so no query the
// frontend tracks can be registered there. Quiescence is monotonic —
// member IDs are never reused, so a collapsed epoch naming the member
// can never be reinstalled.
func (s *ShardedLB) memberQuiesced(member int) bool {
	s.ringMu.RLock()
	defer s.ringMu.RUnlock()
	for i := range s.epochs {
		if _, ok := s.epochs[i].slot[member]; ok {
			return false
		}
	}
	return true
}

// finalizeRetired retires a member for good: its last Stats snapshot
// folds into the merged-Stats baseline (cumulative counters stay
// visible forever; the destructively-read tick counters carry into
// the next merge), the conn leaves the retired set and the Pull
// sweep, and the member's pump is told to exit. A failed final poll
// postpones finalization to the next sweep round. Holding statsMu
// across poll+fold keeps the snapshot from interleaving with a
// concurrent merge's poll of the same conn, which would double-count.
func (s *ShardedLB) finalizeRetired(member int, conn LBConn) bool {
	s.statsMu.Lock()
	st, err := conn.Stats(s.ctx)
	if err != nil {
		s.statsMu.Unlock()
		return false
	}
	s.retiredBase.Completed += st.Completed
	s.retiredBase.Dropped += st.Dropped
	s.retiredBase.Reclaims += st.Reclaims
	s.retiredBase.ShedRedelivery += st.ShedRedelivery
	s.retiredBase.LateCompletions += st.LateCompletions
	s.carryArrivals += st.ArrivalsSinceTick
	s.carryTimeouts += st.TimeoutsSinceTick
	s.statsMu.Unlock()

	s.ringMu.Lock()
	delete(s.retired, member)
	s.rebuildSweepLocked()
	s.ringMu.Unlock()

	s.pumpMu.Lock()
	s.finished[member] = true
	s.pumpMu.Unlock()
	return true
}

// sweepWait converts a sweep interval to wall time with a floor, so
// extreme timescales cannot spin the sweeper.
func (s *ShardedLB) sweepWait(traceSecs float64) time.Duration {
	wait := s.cfg.Clock.WallDuration(traceSecs)
	if wait < time.Millisecond {
		wait = time.Millisecond
	}
	return wait
}

// SetMemberAddr records the dial address advertised for a member in
// membership broadcasts, so a following frontend can dial members it
// has never seen. DialShardedLB records the boot addresses; the
// harness and admin paths record provisioned shards' addresses.
func (s *ShardedLB) SetMemberAddr(member int, addr string) {
	s.addrMu.Lock()
	s.memberAddrs[member] = addr
	s.addrMu.Unlock()
}

// Membership reports the frontend's own current view: the ring epoch,
// the sorted members, their advertised dial addresses (empty where
// unknown), and the placement weight vector (nil when unweighted).
// Standalone shards answer the same verb with the last view their
// authority broadcast (see LBServer.Membership).
func (s *ShardedLB) Membership(ctx context.Context) (MembershipResponse, error) {
	s.ringMu.RLock()
	cur := s.cur()
	s.ringMu.RUnlock()
	resp := MembershipResponse{
		RingEpoch: cur.epoch,
		Members:   append([]int(nil), cur.members...),
		Weights:   append([]int(nil), cur.weights...),
		Addrs:     make([]string, len(cur.members)),
	}
	s.addrMu.Lock()
	for i, m := range cur.members {
		resp.Addrs[i] = s.memberAddrs[m]
	}
	s.addrMu.Unlock()
	return resp, ctx.Err()
}

// SyncMembership adopts a newer membership from src (any conn that
// serves the Membership verb — typically one of this frontend's own
// shard conns, which republish the authority's broadcasts). dial
// opens a connection to a member this frontend has never seen, from
// its advertised address. It returns whether a flip was adopted; an
// already-current epoch is a cheap no-op, which is why callers poll
// it only when the epoch stamped on a pull or configure moves.
//
// The adopted epoch keeps the authority's number and weight vector,
// so both sides compute identical placement and later syncs compare
// epochs meaningfully.
func (s *ShardedLB) SyncMembership(ctx context.Context, src MembershipSource, dial func(member int, addr string) (LBConn, error)) (bool, error) {
	m, err := src.Membership(ctx)
	if err != nil {
		return false, err
	}
	s.reshardMu.Lock()
	defer s.reshardMu.Unlock()
	if m.RingEpoch <= s.Epoch() {
		return false, nil
	}
	newConns := map[int]LBConn{}
	var weights map[int]int
	for i, mem := range m.Members {
		addr := ""
		if i < len(m.Addrs) {
			addr = m.Addrs[i]
		}
		if addr != "" {
			s.SetMemberAddr(mem, addr)
		}
		if i < len(m.Weights) {
			if weights == nil {
				weights = make(map[int]int, len(m.Members))
			}
			weights[mem] = m.Weights[i]
		}
		if s.MemberConn(mem) == nil {
			if dial == nil {
				return false, fmt.Errorf("cluster: membership epoch %d adds member %d but no dialer was given", m.RingEpoch, mem)
			}
			if addr == "" {
				return false, fmt.Errorf("cluster: membership epoch %d adds member %d with no advertised address", m.RingEpoch, mem)
			}
			conn, err := dial(mem, addr)
			if err != nil {
				return false, fmt.Errorf("cluster: dialing member %d at %s: %w", mem, addr, err)
			}
			newConns[mem] = conn
		}
	}
	return true, s.reshardLocked(ctx, m.Members, newConns, m.RingEpoch, weights)
}

// LiveEpochs returns the installed-epoch count — bounded by the
// quiescence collapse, and what the regression tests assert on.
func (s *ShardedLB) LiveEpochs() int {
	s.ringMu.RLock()
	defer s.ringMu.RUnlock()
	return len(s.epochs)
}

// RetiredMembers returns the removed members still awaiting
// finalization, sorted ascending.
func (s *ShardedLB) RetiredMembers() []int {
	s.ringMu.RLock()
	defer s.ringMu.RUnlock()
	out := make([]int, 0, len(s.retired))
	for m := range s.retired {
		out = append(out, m)
	}
	sort.Ints(out)
	return out
}

// epochRings snapshots the installed epochs' rings, oldest first —
// the conformance suite uses it to check that a batch raced by a
// reshard landed consistently under exactly one epoch.
func (s *ShardedLB) epochRings() []*loadbalancer.Ring {
	s.ringMu.RLock()
	defer s.ringMu.RUnlock()
	out := make([]*loadbalancer.Ring, len(s.epochs))
	for i := range s.epochs {
		out[i] = s.epochs[i].ring
	}
	return out
}

// ShardedLB is a full LBConn: clients, the controller, and frontend
// workers all speak to the shard tier through it.
var _ LBConn = (*ShardedLB)(nil)
