package cluster

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"diffserve/internal/loadbalancer"
)

// This file implements the sharded load-balancer tier: a frontend
// that partitions the query stream by ID hash across N independent
// LBServer shards, each reachable through any Transport (inproc,
// http, tcp). One LBServer process tops out on its result lock and
// admission path long before "millions of users" arrival rates;
// partitioning query IDs across shards multiplies the admission and
// result throughput without any new wire messages — the frontend
// speaks the existing LBConn verbs to each shard.
//
// The partition is loadbalancer.ShardOf, a pure hash of the query ID:
// every component (frontend, workers, tests, other processes)
// computes the owning shard locally and deterministically, so a
// multi-host layout — one LB shard plus a worker group per host —
// needs no coordination service. Workers pin themselves to a shard by
// dialing it directly with DialLB; the frontend's Pull exists for
// workers that want to serve all shards.

// shardPullSlice bounds, in trace seconds, how long a frontend Pull
// parks on one shard before re-sweeping the others for work.
const shardPullSlice = 0.25

// ShardedLBConfig parameterizes the sharded frontend.
type ShardedLBConfig struct {
	// Shards are the per-shard connections, one per LBServer, in
	// shard order: Shards[i] must serve the shard that
	// loadbalancer.ShardOf assigns index i.
	Shards []LBConn
	// Clock converts long-poll waits (trace seconds) to wall time,
	// exactly as the shards themselves do.
	Clock *Clock
	// PumpWait is the long-poll duration (trace seconds) of each
	// background result pump. Zero defaults to 0.5.
	PumpWait float64
}

// ShardedLB partitions queries by ID hash across independent LBServer
// shards and re-exposes them as one LBConn:
//
//   - Submit / SubmitBatch route each query to its owning shard
//     (batches fan out per shard concurrently);
//   - PollResults merges the shards' result streams: one background
//     pump per shard long-polls its shard and lands results in a
//     shared buffer with LBServer-identical wait semantics (pumps
//     start lazily on the first PollResults call, so a frontend used
//     only for control-plane fan-out never consumes results);
//   - Pull sweeps the shards from a rotating start for dispatchable
//     work, parking on one shard at a time between sweeps;
//   - Complete routes each finished item back to its owning shard;
//   - Configure broadcasts; Stats merges the shards' reports.
//
// Exactly one process may poll results through a given query's shard
// — the same destructive-read contract a single LBServer has.
type ShardedLB struct {
	cfg    ShardedLBConfig
	ctx    context.Context
	cancel context.CancelFunc

	// Result merge state: pumps append, PollResults drains.
	resMu   sync.Mutex
	results []QueryResponse
	wake    notifier
	pumpGo  sync.Once
	pumps   sync.WaitGroup

	// rr rotates Pull's sweep start across calls so concurrent
	// frontend pullers spread over the shards.
	rr atomic.Uint64

	// statsMu guards the carried tick counters: a shard's Stats call
	// destructively resets its since-tick counters, so when a later
	// shard's poll fails mid-merge the already-reset counters are
	// stashed here and folded into the next successful merge instead
	// of vanishing from the controller's demand estimate.
	statsMu       sync.Mutex
	carryArrivals int
	carryTimeouts int
}

// SplitShardAddrs parses a comma-separated shard address list,
// trimming whitespace and dropping empty entries (a trailing comma
// is not a shard). The cmd binaries share it so every -shard-addrs
// flag parses identically — the list order defines the shard indices
// loadbalancer.ShardOf routes to, and must match on every process.
func SplitShardAddrs(csv string) []string {
	var addrs []string
	for _, a := range strings.Split(csv, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	return addrs
}

// DialShardedLB dials every shard of a comma-separated address list
// with DialLB and wraps the connections in a ShardedLB frontend —
// the standalone client's and controller's way onto a sharded tier.
func DialShardedLB(transport, addrCSV string, codec Codec, clock *Clock) (*ShardedLB, error) {
	addrs := SplitShardAddrs(addrCSV)
	if len(addrs) == 0 {
		return nil, fmt.Errorf("cluster: no shard addresses in %q", addrCSV)
	}
	conns := make([]LBConn, len(addrs))
	for i, a := range addrs {
		conn, err := DialLB(transport, a, codec)
		if err != nil {
			return nil, fmt.Errorf("cluster: dialing shard %d: %w", i, err)
		}
		conns[i] = conn
	}
	return NewShardedLB(ShardedLBConfig{Shards: conns, Clock: clock})
}

// NewShardedLB builds the frontend over the given shard connections.
func NewShardedLB(cfg ShardedLBConfig) (*ShardedLB, error) {
	if len(cfg.Shards) == 0 {
		return nil, fmt.Errorf("cluster: sharded LB needs at least one shard conn")
	}
	if cfg.Clock == nil {
		return nil, fmt.Errorf("cluster: sharded LB needs a clock")
	}
	if cfg.PumpWait <= 0 {
		cfg.PumpWait = 0.5
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &ShardedLB{cfg: cfg, ctx: ctx, cancel: cancel}, nil
}

// Shards returns the number of shards behind the frontend.
func (s *ShardedLB) Shards() int { return len(s.cfg.Shards) }

// ShardConn returns the connection serving shard i — workers pin
// themselves to one shard with it (the harness assigns worker w to
// shard w mod N).
func (s *ShardedLB) ShardConn(i int) LBConn { return s.cfg.Shards[i] }

// shardOf maps a query ID to its owning shard connection index.
func (s *ShardedLB) shardOf(id int) int {
	return loadbalancer.ShardOf(id, len(s.cfg.Shards))
}

// Close stops the result pumps. In-flight pump polls are cancelled;
// callers drain all expected results before closing, exactly as they
// would before tearing down a single LBServer's transport.
func (s *ShardedLB) Close() {
	s.cancel()
	s.pumps.Wait()
}

// Submit admits one query on its owning shard and blocks until it
// completes or drops.
func (s *ShardedLB) Submit(ctx context.Context, q QueryMsg) (QueryResponse, error) {
	return s.cfg.Shards[s.shardOf(q.ID)].Submit(ctx, q)
}

// SubmitBatch splits the batch by owning shard and fans the per-shard
// batches out concurrently.
func (s *ShardedLB) SubmitBatch(ctx context.Context, req SubmitRequest) error {
	n := len(s.cfg.Shards)
	if n == 1 {
		return s.cfg.Shards[0].SubmitBatch(ctx, req)
	}
	groups := make([][]QueryMsg, n)
	for _, q := range req.Queries {
		sh := s.shardOf(q.ID)
		groups[sh] = append(groups[sh], q)
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i, g := range groups {
		if len(g) == 0 {
			continue
		}
		wg.Add(1)
		go func(i int, g []QueryMsg) {
			defer wg.Done()
			errs[i] = s.cfg.Shards[i].SubmitBatch(ctx, SubmitRequest{Queries: g})
		}(i, g)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// startPumps launches one result pump per shard, once.
func (s *ShardedLB) startPumps() {
	s.pumpGo.Do(func() {
		for _, conn := range s.cfg.Shards {
			s.pumps.Add(1)
			go s.pump(conn)
		}
	})
}

// pump long-polls one shard for results and lands them in the merged
// buffer. Results are appended before the error is inspected: an
// in-process poll cancelled at shutdown still returns the batch it
// popped, and dropping it would lose resolved queries.
func (s *ShardedLB) pump(conn LBConn) {
	defer s.pumps.Done()
	for s.ctx.Err() == nil {
		resp, err := conn.PollResults(s.ctx, ResultsRequest{Max: 1024, Wait: s.cfg.PumpWait})
		if len(resp.Results) > 0 {
			s.resMu.Lock()
			s.results = append(s.results, resp.Results...)
			s.wake.wake()
			s.resMu.Unlock()
		}
		if err != nil {
			// Transient transport failure (or shutdown): back off so a
			// dead shard cannot spin the pump.
			s.cfg.Clock.SleepTraceCtx(s.ctx, 0.05)
		}
	}
}

// PollResults drains the merged result buffer with the same wait
// semantics as LBServer.PollResults: req.Wait <= 0 is an explicit
// non-blocking poll; otherwise the call blocks until at least one
// result arrives from any shard or the wait expires.
func (s *ShardedLB) PollResults(ctx context.Context, req ResultsRequest) (ResultsResponse, error) {
	s.startPumps()
	max := req.Max
	if max <= 0 {
		max = 256
	}
	if req.Wait <= 0 {
		s.resMu.Lock()
		out := s.takeLocked(max)
		s.resMu.Unlock()
		return ResultsResponse{Results: out}, nil
	}
	deadline := time.Now().Add(s.cfg.Clock.WallDuration(req.Wait))
	for {
		s.resMu.Lock()
		out := s.takeLocked(max)
		var wake <-chan struct{}
		if out == nil {
			wake = s.wake.wait()
		}
		s.resMu.Unlock()
		if out != nil {
			return ResultsResponse{Results: out}, nil
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			return ResultsResponse{}, nil
		}
		t := time.NewTimer(remain)
		select {
		case <-ctx.Done():
			t.Stop()
			return ResultsResponse{}, ctx.Err()
		case <-s.ctx.Done():
			t.Stop()
			return ResultsResponse{}, ErrTransportClosed
		case <-wake:
			t.Stop()
		case <-t.C:
		}
	}
}

// takeLocked pops up to max merged results; nil when none. Callers
// must hold resMu.
func (s *ShardedLB) takeLocked(max int) []QueryResponse {
	n := len(s.results)
	if n == 0 {
		return nil
	}
	if n > max {
		n = max
	}
	out := make([]QueryResponse, n)
	copy(out, s.results)
	s.results = append(s.results[:0], s.results[n:]...)
	return out
}

// Pull sweeps the shards for dispatchable work, starting each round
// at a rotating shard so concurrent frontend pullers spread out. With
// req.Wait > 0 an empty sweep parks on the round's first shard for a
// bounded slice of the remaining wait, then re-sweeps — work arriving
// on any shard is picked up within one slice. Workers that should
// stay pinned to one shard (the multi-host layout) dial their shard
// directly instead of pulling through the frontend.
func (s *ShardedLB) Pull(ctx context.Context, req PullRequest) (PullResponse, error) {
	n := len(s.cfg.Shards)
	if n == 1 {
		return s.cfg.Shards[0].Pull(ctx, req)
	}
	var deadline float64
	if req.Wait > 0 {
		deadline = s.cfg.Clock.Now() + req.Wait
	}
	for {
		start := int(s.rr.Add(1)-1) % n
		sweep := req
		sweep.Wait = 0
		for i := 0; i < n; i++ {
			resp, err := s.cfg.Shards[(start+i)%n].Pull(ctx, sweep)
			if err != nil {
				return resp, err
			}
			if len(resp.Queries) > 0 {
				return resp, nil
			}
		}
		if req.Wait <= 0 {
			return PullResponse{}, nil
		}
		remain := deadline - s.cfg.Clock.Now()
		if remain <= 0 {
			return PullResponse{}, nil
		}
		park := req
		park.Wait = min(remain, shardPullSlice)
		resp, err := s.cfg.Shards[start].Pull(ctx, park)
		if err != nil || len(resp.Queries) > 0 {
			return resp, err
		}
	}
}

// Complete routes each finished item back to the shard that owns its
// query ID, fanning the per-shard reports out concurrently.
func (s *ShardedLB) Complete(ctx context.Context, req CompleteRequest) error {
	n := len(s.cfg.Shards)
	if n == 1 {
		return s.cfg.Shards[0].Complete(ctx, req)
	}
	groups := make([][]CompleteItem, n)
	for _, it := range req.Items {
		sh := s.shardOf(it.ID)
		groups[sh] = append(groups[sh], it)
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i, g := range groups {
		if len(g) == 0 {
			continue
		}
		wg.Add(1)
		go func(i int, g []CompleteItem) {
			defer wg.Done()
			errs[i] = s.cfg.Shards[i].Complete(ctx, CompleteRequest{
				WorkerID: req.WorkerID, Role: req.Role, Items: g,
			})
		}(i, g)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Configure broadcasts the policy update to every shard.
func (s *ShardedLB) Configure(ctx context.Context, req ConfigureLBRequest) error {
	errs := make([]error, len(s.cfg.Shards))
	var wg sync.WaitGroup
	for i, conn := range s.cfg.Shards {
		wg.Add(1)
		go func(i int, conn LBConn) {
			defer wg.Done()
			errs[i] = conn.Configure(ctx, req)
		}(i, conn)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Stats merges the shards' control-plane reports: queue lengths,
// arrival rates, and counters sum; Now is the latest shard clock.
// Every shard is polled even after a failure — a poll destructively
// resets that shard's since-tick counters, so the counters gathered
// alongside a failed shard are carried over and folded into the next
// successful merge rather than dropped from the demand estimate.
func (s *ShardedLB) Stats(ctx context.Context) (LBStats, error) {
	var out LBStats
	var firstErr error
	for _, conn := range s.cfg.Shards {
		st, err := conn.Stats(ctx)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if st.Now > out.Now {
			out.Now = st.Now
		}
		out.LightQueueLen += st.LightQueueLen
		out.HeavyQueueLen += st.HeavyQueueLen
		out.LightArrivalRate += st.LightArrivalRate
		out.HeavyArrivalRate += st.HeavyArrivalRate
		out.ArrivalsSinceTick += st.ArrivalsSinceTick
		out.TimeoutsSinceTick += st.TimeoutsSinceTick
		out.Completed += st.Completed
		out.Dropped += st.Dropped
	}
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	if firstErr != nil {
		s.carryArrivals += out.ArrivalsSinceTick
		s.carryTimeouts += out.TimeoutsSinceTick
		return LBStats{}, firstErr
	}
	out.ArrivalsSinceTick += s.carryArrivals
	out.TimeoutsSinceTick += s.carryTimeouts
	s.carryArrivals, s.carryTimeouts = 0, 0
	return out, nil
}

// ShardedLB is a full LBConn: clients, the controller, and frontend
// workers all speak to the shard tier through it.
var _ LBConn = (*ShardedLB)(nil)
