//go:build !poolpoison

package cluster

// Release-time poison hooks are no-ops in normal builds; see
// pool_poison.go for the poolpoison debug build.

const poolPoisonEnabled = false

func poisonFloats([]float64)   {}
func poisonQueries([]QueryMsg) {}
func poisonFrame([]byte)       {}
