package cluster

import (
	"sync"

	"diffserve/internal/queueing"
)

// This file implements the pooling half of the zero-allocation wire
// path: a bounded intern table for hot wire strings, typed pools for
// the request/response structs the framed TCP server decodes into,
// and ReleaseMessage, the single entry point that returns a message's
// backing storage to those pools.
//
// Ownership discipline (see also the "Buffer ownership" section of
// the package doc):
//
//   - A message obtained from a pooled decode (the TCP server's
//     dispatch path) is owned by exactly one goroutine. Handlers must
//     copy anything they retain past return — strings are immutable
//     and always safe; feature slices are interned into the metrics
//     collector's arena (Collector.InternFeatures) before they outlive
//     the handler.
//   - ReleaseMessage must be called only on messages the caller owns
//     exclusively, i.e. ones produced by a pooled decode. Releasing a
//     message whose slices alias shared storage (a worker's imagespace
//     cache, the collector arena) would hand shared memory to the next
//     decode; the poolpoison build tag exists to make exactly that
//     class of bug fail loudly in tests.
//   - Released messages keep their slice capacity (dirty), so the next
//     decode into them is allocation-free; every decoded field is
//     overwritten, so stale contents never leak.

// internLimit bounds the intern table so adversarial wire input (the
// fuzzers feed arbitrary strings) cannot grow it without bound. Real
// traffic uses a handful of role/pool/variant names.
const internLimit = 1024

var (
	internMu sync.RWMutex
	interns  = map[string]string{}
)

// internString returns a canonical string for b, allocating only the
// first time a value is seen (up to internLimit distinct values).
func internString(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	internMu.RLock()
	s, ok := interns[string(b)] // map lookup by []byte key does not allocate
	internMu.RUnlock()
	if ok {
		return s
	}
	s = string(b)
	internMu.Lock()
	if len(interns) < internLimit {
		interns[s] = s
	}
	internMu.Unlock()
	return s
}

// Typed message pools. Only the TCP dispatch path acquires from
// these; anyone may return messages via ReleaseMessage as long as
// they own them.
var (
	queryMsgPool        = sync.Pool{New: func() interface{} { return new(QueryMsg) }}
	queryResponsePool   = sync.Pool{New: func() interface{} { return new(QueryResponse) }}
	submitRequestPool   = sync.Pool{New: func() interface{} { return new(SubmitRequest) }}
	pullRequestPool     = sync.Pool{New: func() interface{} { return new(PullRequest) }}
	pullResponsePool    = sync.Pool{New: func() interface{} { return new(PullResponse) }}
	completeRequestPool = sync.Pool{New: func() interface{} { return new(CompleteRequest) }}
	resultsRequestPool  = sync.Pool{New: func() interface{} { return new(ResultsRequest) }}
	resultsResponsePool = sync.Pool{New: func() interface{} { return new(ResultsResponse) }}
	confLBRequestPool   = sync.Pool{New: func() interface{} { return new(ConfigureLBRequest) }}
	confWorkerPool      = sync.Pool{New: func() interface{} { return new(ConfigureWorkerRequest) }}
)

func getQueryMsg() *QueryMsg               { return queryMsgPool.Get().(*QueryMsg) }
func getQueryResponse() *QueryResponse     { return queryResponsePool.Get().(*QueryResponse) }
func getSubmitRequest() *SubmitRequest     { return submitRequestPool.Get().(*SubmitRequest) }
func getPullRequest() *PullRequest         { return pullRequestPool.Get().(*PullRequest) }
func getPullResponse() *PullResponse       { return pullResponsePool.Get().(*PullResponse) }
func getCompleteRequest() *CompleteRequest { return completeRequestPool.Get().(*CompleteRequest) }
func getResultsRequest() *ResultsRequest   { return resultsRequestPool.Get().(*ResultsRequest) }
func getResultsResponse() *ResultsResponse { return resultsResponsePool.Get().(*ResultsResponse) }
func getConfigureLBRequest() *ConfigureLBRequest {
	return confLBRequestPool.Get().(*ConfigureLBRequest)
}
func getConfigureWorkerRequest() *ConfigureWorkerRequest {
	return confWorkerPool.Get().(*ConfigureWorkerRequest)
}

// ReleaseMessage returns a wire message's backing storage to the
// package pools so the next pooled decode reuses it. It is safe only
// when the caller owns the message exclusively — in practice, when
// the message came from a pooled decode (the TCP server acquires and
// releases automatically around each handler; most callers never need
// this). Unknown types are a no-op.
//
// Decoder-owned float slices are kept (and poisoned under the
// poolpoison build tag) for reuse; outbound result messages instead
// drop their Features pointers, which alias the collector's immutable
// arena and must never become decode targets.
func ReleaseMessage(v interface{}) {
	switch m := v.(type) {
	case *QueryMsg:
		*m = QueryMsg{}
		queryMsgPool.Put(m)
	case *QueryResponse:
		// Features may alias the collector arena: drop, don't reuse.
		*m = QueryResponse{}
		queryResponsePool.Put(m)
	case *SubmitRequest:
		qs := m.Queries
		poisonQueries(qs)
		*m = SubmitRequest{Queries: qs[:0]}
		submitRequestPool.Put(m)
	case *PullRequest:
		*m = PullRequest{}
		pullRequestPool.Put(m)
	case *PullResponse:
		qs := m.Queries
		poisonQueries(qs)
		*m = PullResponse{Queries: qs[:0]}
		pullResponsePool.Put(m)
	case *CompleteRequest:
		items := m.Items
		for i := range items {
			poisonFloats(items[i].Features)
		}
		*m = CompleteRequest{Items: items[:0]}
		completeRequestPool.Put(m)
	case *ResultsRequest:
		*m = ResultsRequest{}
		resultsRequestPool.Put(m)
	case *ResultsResponse:
		// Result Features alias the collector arena; nil them out so a
		// later decode into this struct can never scribble on it.
		results := m.Results
		for i := range results {
			results[i] = QueryResponse{}
		}
		*m = ResultsResponse{Results: results[:0]}
		resultsResponsePool.Put(m)
	case *ConfigureLBRequest:
		*m = ConfigureLBRequest{}
		confLBRequestPool.Put(m)
	case *ConfigureWorkerRequest:
		*m = ConfigureWorkerRequest{}
		confWorkerPool.Put(m)
	}
}

// zeroWireMessage fully zeroes a pooled request before a decode whose
// codec merges into dirty targets (JSON leaves absent fields alone).
// The binary decoder overwrites every field, so it skips this and
// keeps the dirty capacity for reuse.
func zeroWireMessage(v interface{}) {
	switch m := v.(type) {
	case *QueryMsg:
		*m = QueryMsg{}
	case *QueryResponse:
		*m = QueryResponse{}
	case *SubmitRequest:
		*m = SubmitRequest{}
	case *PullRequest:
		*m = PullRequest{}
	case *PullResponse:
		*m = PullResponse{}
	case *CompleteRequest:
		*m = CompleteRequest{}
	case *ResultsRequest:
		*m = ResultsRequest{}
	case *ResultsResponse:
		*m = ResultsResponse{}
	case *ConfigureLBRequest:
		*m = ConfigureLBRequest{}
	case *ConfigureWorkerRequest:
		*m = ConfigureWorkerRequest{}
	}
}

// queueItemPool recycles the scratch slices Pull uses to dequeue
// batches, so the hot pull path never allocates for the dequeue.
var queueItemPool = sync.Pool{
	New: func() interface{} {
		s := make([]queueing.Item, 0, 64)
		return &s
	},
}

func getItemScratch() *[]queueing.Item { return queueItemPool.Get().(*[]queueing.Item) }

func putItemScratch(s *[]queueing.Item) {
	*s = (*s)[:0]
	queueItemPool.Put(s)
}
