package cluster

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"diffserve/internal/loadbalancer"
	"diffserve/internal/trace"
)

// TestHarnessReshardTopology replays a lightly loaded trace through a
// 2-shard TCP topology that grows to 3 shards and shrinks back to 2
// mid-trace, and requires the same loss-free outcome a static
// topology produces: every query resolves exactly once, none drop.
// The run covers the full resharding protocol end to end — epoch
// flips, worker re-pinning off pull responses, controller
// re-striping, the drain migration of the removed shard's queued
// work, and the retired-shard straggler sweeps.
func TestHarnessReshardTopology(t *testing.T) {
	if testing.Short() {
		t.Skip("reshard harness skipped in -short mode")
	}
	f := newFixtures(t)
	tr, err := trace.Static(4, 40, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(HarnessConfig{
		Space: f.space, Light: f.light, Heavy: f.heavy, Scorer: f.scorer,
		Mode: loadbalancer.ModeCascade, Workers: 9, SLO: 5,
		Trace: tr, Ctrl: f.controller(t, 9, 5),
		Timescale: 0.05, Seed: 4242, DisableLoadDelay: true,
		Transport: TransportTCP, LBShards: 2, RingVNodes: 128,
		Reshard: []ReshardEvent{
			{At: 12, Action: "add", Member: 2},
			{At: 26, Action: "remove", Member: 0},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Collector.Len() != res.Queries {
		t.Errorf("recorded %d of %d queries", res.Collector.Len(), res.Queries)
	}
	sum := res.Summary()
	if sum.DropRatio != 0 {
		t.Errorf("reshard run dropped %.3f under light load", sum.DropRatio)
	}
	ids := map[int]bool{}
	for _, r := range res.Collector.Records() {
		if ids[r.ID] {
			t.Errorf("query %d recorded twice", r.ID)
		}
		ids[r.ID] = true
	}
	t.Logf("reshard harness: %d queries, FID=%.2f viol=%.3f wall=%.1fs",
		sum.Queries, sum.FID, sum.ViolationRatio, res.WallSeconds)
}

// TestReshardChaosNoLostOrDoubleResolve is the resharding soak: while
// batch submitters, shard-pinned pull/complete workers, frontend
// sweep workers, and merged-result pollers all race, a chaos driver
// adds and removes shards — ending on a membership that shares no
// member with the starting one. Every query must resolve exactly
// once: zero lost (a migrated or straggler query that never
// resolves), zero double-resolved (a stale registration surviving a
// migration and resolving a second time). It extends
// TestDrainCompleteRaceNoDoubleResolve's idempotency guarantees to
// epoch flips and drain migration, and runs in -short mode on
// purpose: the verify script's race-reshard leg executes it under
// -race.
func TestReshardChaosNoLostOrDoubleResolve(t *testing.T) {
	const (
		submitters = 3
		batches    = 30
		batchSize  = 8
		total      = submitters * batches * batchSize
	)
	clock := NewClock(1e-5)
	newShard := func(member int) (*LBServer, LBConn) {
		lb := NewLBServer(LBConfig{
			Mode: loadbalancer.ModeCascade, SLO: 1e9,
			LightMinExec: 0.1, HeavyMinExec: 1.78,
			Clock: clock, Seed: 1, RNGStream: fmt.Sprintf("lb/%d", member),
			CoalesceWait: 1e-9,
		})
		return lb, NewLocalLBConn(lb)
	}
	servers := map[int]*LBServer{}
	lb0, conn0 := newShard(0)
	lb1, conn1 := newShard(1)
	servers[0], servers[1] = lb0, lb1
	fe, err := NewShardedLB(ShardedLBConfig{
		Shards: []LBConn{conn0, conn1}, Clock: clock, VNodes: 128,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fe.Close()
	fe.Configure(context.Background(), ConfigureLBRequest{Threshold: 0.5})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var resolved atomic.Int64
	var wg sync.WaitGroup

	// Merged-result pollers.
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for resolved.Load() < total && ctx.Err() == nil {
				resp, err := fe.PollResults(ctx, ResultsRequest{Max: 64, Wait: 50})
				if err != nil {
					return
				}
				resolved.Add(int64(len(resp.Results)))
			}
		}()
	}

	complete := func(conn LBConn, role string, qs []QueryMsg) {
		items := make([]CompleteItem, len(qs))
		for i, q := range qs {
			conf := 0.9
			if role == "light" && q.ID%2 == 0 {
				conf = 0.1 // defers to the owning shard's heavy pool
			}
			items[i] = CompleteItem{ID: q.ID, Arrival: q.Arrival, Variant: role, Confidence: conf}
		}
		_ = conn.Complete(ctx, CompleteRequest{Role: role, Items: items})
	}
	// Shard-pinned workers that re-consult the membership each round —
	// the cluster layout's analogue of RePin. Completions go back to
	// the conn the batch was pulled from, retired or not.
	for w := 0; w < 2; w++ {
		for _, role := range []string{"light", "heavy"} {
			wg.Add(1)
			go func(w int, role string) {
				defer wg.Done()
				for resolved.Load() < total && ctx.Err() == nil {
					ms := fe.Members()
					conn := fe.MemberConn(ms[w%len(ms)])
					if conn == nil {
						continue
					}
					resp, err := conn.Pull(ctx, PullRequest{Role: role, Max: batchSize, Wait: 20})
					if err != nil || len(resp.Queries) == 0 {
						continue
					}
					complete(conn, role, resp.Queries)
				}
			}(w, role)
		}
	}
	// Frontend sweep workers: their completions route by the epoch
	// fan-out, the path a reshard races hardest.
	for _, role := range []string{"light", "heavy"} {
		wg.Add(1)
		go func(role string) {
			defer wg.Done()
			for resolved.Load() < total && ctx.Err() == nil {
				resp, err := fe.Pull(ctx, PullRequest{Role: role, Max: batchSize, Wait: 20})
				if err != nil || len(resp.Queries) == 0 {
					continue
				}
				complete(fe, role, resp.Queries)
			}
		}(role)
	}

	// Submitters race the chaos driver below.
	for sIdx := 0; sIdx < submitters; sIdx++ {
		wg.Add(1)
		go func(sIdx int) {
			defer wg.Done()
			base := sIdx * batches * batchSize
			for b := 0; b < batches; b++ {
				qs := make([]QueryMsg, batchSize)
				for i := range qs {
					qs[i] = QueryMsg{ID: base + b*batchSize + i}
				}
				if err := fe.SubmitBatch(ctx, SubmitRequest{Queries: qs}); err != nil {
					t.Errorf("submit: %v", err)
					return
				}
			}
		}(sIdx)
	}

	// Chaos driver: grow to {0,1,2}, drop 0, grow to {1,2,3}, drop 1 —
	// the final membership shares nothing with the starting one, so
	// every key has migrated at least once.
	wg.Add(1)
	go func() {
		defer wg.Done()
		step := func(f func() error) bool {
			time.Sleep(2 * time.Millisecond)
			if ctx.Err() != nil {
				return false
			}
			if err := f(); err != nil {
				t.Errorf("chaos reshard: %v", err)
				return false
			}
			return true
		}
		lb2, conn2 := newShard(2)
		servers[2] = lb2
		if !step(func() error { return fe.AddShard(ctx, 2, conn2) }) {
			return
		}
		if !step(func() error { return fe.RemoveShard(ctx, 0) }) {
			return
		}
		lb3, conn3 := newShard(3)
		servers[3] = lb3
		if !step(func() error { return fe.AddShard(ctx, 3, conn3) }) {
			return
		}
		if !step(func() error { return fe.RemoveShard(ctx, 1) }) {
			return
		}
	}()

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		cancel()
		t.Fatalf("reshard chaos wedged: resolved %d of %d (lost queries)", resolved.Load(), total)
	}
	if got := resolved.Load(); got != total {
		t.Fatalf("resolved %d of %d queries", got, total)
	}
	if got, want := fmt.Sprint(fe.Members()), fmt.Sprint([]int{2, 3}); got != want {
		t.Errorf("final membership %s, want %s", got, want)
	}
	if fe.Epoch() != 4 {
		t.Errorf("final epoch %d, want 4", fe.Epoch())
	}

	// Exactly-once accounting across every shard that ever existed:
	// each ID recorded exactly once, nothing dropped (unbounded SLO,
	// no blocking waiters), merged counters balance.
	st, err := fe.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Completed != total || st.Dropped != 0 {
		t.Errorf("merged accounting: completed %d dropped %d, want %d / 0", st.Completed, st.Dropped, total)
	}
	seen := map[int]int{}
	recorded := 0
	for member, lb := range servers {
		for _, rec := range lb.Collector().Records() {
			if rec.Dropped {
				t.Errorf("query %d dropped on member %d", rec.ID, member)
			}
			seen[rec.ID]++
			recorded++
		}
	}
	if recorded != total {
		t.Errorf("collectors recorded %d of %d", recorded, total)
	}
	for id, n := range seen {
		if n != 1 {
			t.Errorf("query %d recorded %d times (double resolve)", id, n)
		}
	}
}
