//go:build poolpoison

package cluster

import "math"

// poolpoison is the aliasing safety net for the pooled wire path:
// every buffer returned to a pool is first overwritten with sentinel
// garbage. If any live query still referenced the buffer — a handler
// that retained a decoded feature slice instead of interning it, a
// frame payload aliased past its release, a lease reclaim or epoch
// drain holding a recycled batch — its data turns to poison and the
// conformance/chaos suites fail loudly instead of silently serving
// corrupt results. Enable with:
//
//	go test -race -tags poolpoison ./internal/cluster/
//
// The verify script and CI run the conformance, fuzz, and chaos legs
// under this tag.

const poolPoisonEnabled = true

// poisonF64 is a signaling-style sentinel: a NaN with a recognizable
// payload, so a poisoned feature leaking into FID moments or a served
// result is unmistakable.
var poisonF64 = math.Float64frombits(0x7ff8_dead_beef_0001)

const poisonID = -0x5005 // "SOOS": poisoned query/slot ID sentinel

func poisonFloats(f []float64) {
	f = f[:cap(f)]
	for i := range f {
		f[i] = poisonF64
	}
}

func poisonQueries(qs []QueryMsg) {
	qs = qs[:cap(qs)]
	for i := range qs {
		qs[i] = QueryMsg{ID: poisonID, Arrival: poisonF64}
	}
}

func poisonFrame(b []byte) {
	b = b[:cap(b)]
	for i := range b {
		b[i] = 0xDB
	}
}
