package cluster

import (
	"context"
	"math/rand"
	"net/http"
	"sync"

	"diffserve/internal/discriminator"
	"diffserve/internal/imagespace"
	"diffserve/internal/model"
	"diffserve/internal/worker"
)

// WorkerConfig parameterizes a worker process.
type WorkerConfig struct {
	ID int
	// LB is the connection to the load balancer (HTTP with either
	// codec, or the in-process fast path).
	LB LBConn
	// Space regenerates query content; all processes share its seed.
	Space *imagespace.Space
	// Light and Heavy are the variants this worker can host.
	Light, Heavy *model.Variant
	// Scorer runs on light workers.
	Scorer discriminator.Scorer
	// Clock provides trace time and scaled sleeping.
	Clock *Clock
	// PollInterval is the idle re-check delay in trace seconds, used
	// while the worker has no role assigned.
	PollInterval float64
	// PullWait is the long-poll duration in trace seconds: each pull
	// blocks server-side until work is dispatchable or PullWait
	// passes. It bounds how long a role change can go unnoticed, so
	// it stays well under the control interval.
	PullWait float64
	// DisableLoadDelay skips model-switch downtime.
	DisableLoadDelay bool
	// RePin, when set, is consulted whenever a pull response carries a
	// ring epoch newer than the one the worker pinned under: it
	// returns the connection the worker should pull from at that
	// epoch (nil keeps the current pin). The harness wires it so
	// shard-pinned workers follow dynamic membership; a batch already
	// pulled always completes to the connection it was pulled from,
	// because that shard holds the queries' registrations.
	RePin func(epoch int) LBConn
	// Redial, when set, is consulted after RedialAfter consecutive
	// pull failures: it returns a fresh connection to the worker's
	// shard (nil keeps the current one). It reuses the re-pin
	// machinery's shape — the harness typically wires both to the same
	// member lookup — so a conn that died for good is replaced instead
	// of being error-polled forever.
	Redial func(epoch int) LBConn
	// RedialAfter is the consecutive-pull-failure threshold that
	// triggers Redial (0 defaults to 3).
	RedialAfter int
	// CompleteRetries is the number of tries a completion report gets
	// before the worker gives up and lets the lease sweep reclaim the
	// batch (0 defaults to 4). Retries back off exponentially from
	// PollInterval with deterministic per-worker jitter.
	CompleteRetries int
	// Steal, when set, returns the other shard members' connections.
	// After a pull from the pinned shard comes back empty, the worker
	// tries one zero-wait pull from each in turn — cross-shard work
	// stealing. In a weighted tier the ring sizes key shares to
	// worker-group capacity, but integer striping still leaves
	// fractional mismatch; stealing soaks up that remainder so a
	// thin shard's spare worker-seconds serve the tier instead of
	// idling. A stolen batch completes to the shard it was pulled
	// from (that shard holds the queries' registrations).
	Steal func() []LBConn
}

// WorkerServer simulates one GPU worker: it long-polls batches from
// the load balancer, sleeps for the profiled execution latency
// (timescale-adjusted), generates images deterministically, scores
// them with the discriminator when hosting the light model, and
// reports completions.
type WorkerServer struct {
	cfg WorkerConfig
	rng *rand.Rand // completion-retry jitter; guarded by mu

	mu    sync.Mutex
	state *worker.Worker
	busy  bool
}

// NewWorkerServer constructs a worker.
func NewWorkerServer(cfg WorkerConfig) *WorkerServer {
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 0.05
	}
	if cfg.PullWait <= 0 {
		cfg.PullWait = 0.25
	}
	if cfg.RedialAfter <= 0 {
		cfg.RedialAfter = 3
	}
	if cfg.CompleteRetries <= 0 {
		cfg.CompleteRetries = 4
	}
	return &WorkerServer{
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(int64(cfg.ID)*0x9e3779b9 + 17)),
		state: worker.New(cfg.ID),
	}
}

// Mux returns the worker's control API.
func (s *WorkerServer) Mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/configure", s.handleConfigure)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	return mux
}

func parseRole(s string) worker.Role {
	switch s {
	case "light":
		return worker.RoleLight
	case "heavy":
		return worker.RoleHeavy
	default:
		return worker.RoleIdle
	}
}

func roleName(r worker.Role) string { return r.String() }

// Configure reassigns the worker's model and batch size. Role
// switches incur the variant's load time (timescale-adjusted) unless
// disabled.
func (s *WorkerServer) Configure(req ConfigureWorkerRequest) {
	role := parseRole(req.Role)
	load := 0.0
	if !s.cfg.DisableLoadDelay {
		switch role {
		case worker.RoleLight:
			load = s.cfg.Light.LoadSeconds
		case worker.RoleHeavy:
			load = s.cfg.Heavy.LoadSeconds
		}
	}
	now := s.cfg.Clock.Now()
	s.mu.Lock()
	s.state.Assign(now, role, maxInt(req.Batch, 1), load)
	s.mu.Unlock()
}

// handleConfigure serves role reassignments.
func (s *WorkerServer) handleConfigure(w http.ResponseWriter, r *http.Request) {
	var req ConfigureWorkerRequest
	if _, err := readMsg(r, &req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.Configure(req)
	w.WriteHeader(http.StatusOK)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Stats reports the worker's state.
func (s *WorkerServer) Stats() WorkerStats {
	s.mu.Lock()
	out := WorkerStats{
		ID:      s.state.ID(),
		Role:    roleName(s.state.Role()),
		Batch:   s.state.Batch(),
		Busy:    s.busy,
		Batches: s.state.Batches(),
		Queries: s.state.Queries(),
	}
	s.mu.Unlock()
	return out
}

// handleStats serves the worker's control-plane report.
func (s *WorkerServer) handleStats(w http.ResponseWriter, r *http.Request) {
	out := s.Stats()
	writeMsg(w, codecForContentType(r.Header.Get("Accept")), &out)
}

// Loop runs the worker's pull-execute-complete cycle until the context
// is cancelled. It is the cluster analogue of the simulator's
// dispatch/onBatchDone events. Pulls long-poll server-side, so an
// idle worker consumes no wire round-trips between arrivals.
func (s *WorkerServer) Loop(ctx context.Context) {
	// lb is the shard the worker is currently pinned to; epoch is the
	// ring epoch it pinned under. A pulled batch completes to the conn
	// it came from even if the worker re-pins before execution ends.
	lb := s.cfg.LB
	epoch := 0
	pullFails := 0
	// The pull response and completion-item scratch live for the whole
	// loop: each pull decodes into the same struct (reusing its query
	// buffer) and each batch reuses the item slice, so a steady-state
	// worker allocates nothing per cycle. Both are owned by this
	// goroutine alone.
	var pulled PullResponse
	var items []CompleteItem
	for ctx.Err() == nil {
		now := s.cfg.Clock.Now()
		s.mu.Lock()
		role := s.state.Role()
		batch := s.state.Batch()
		available := s.state.Available(now)
		s.mu.Unlock()

		if role == worker.RoleIdle || !available {
			if !s.cfg.Clock.SleepTraceCtx(ctx, s.cfg.PollInterval) {
				return
			}
			continue
		}

		err := PullIntoConn(ctx, lb, PullRequest{
			WorkerID: s.cfg.ID, Role: roleName(role), Max: batch, Wait: s.cfg.PullWait,
		}, &pulled)
		if err != nil {
			// Transient transport failure: back off briefly. Past the
			// redial threshold the conn is presumed dead for good —
			// replace it rather than error-polling a corpse.
			pullFails++
			if pullFails >= s.cfg.RedialAfter && s.cfg.Redial != nil {
				if c := s.cfg.Redial(epoch); c != nil {
					lb = c
					pullFails = 0
				}
			}
			if !s.cfg.Clock.SleepTraceCtx(ctx, s.cfg.PollInterval) {
				return
			}
			continue
		}
		pullFails = 0
		if len(pulled.Queries) > 0 {
			items = s.executeBatch(ctx, role, lb, &pulled, items)
		} else if s.cfg.Steal != nil {
			// The pinned shard's long poll expired empty: the worker has
			// spare capacity right now. Poach one batch from another
			// member with zero-wait pulls (never parking on a foreign
			// shard — the pinned shard stays the only long poll).
			for _, alt := range s.cfg.Steal() {
				if alt == nil || alt == lb || ctx.Err() != nil {
					continue
				}
				if PullIntoConn(ctx, alt, PullRequest{
					WorkerID: s.cfg.ID, Role: roleName(role), Max: batch, Wait: 0,
				}, &pulled) != nil {
					continue
				}
				if len(pulled.Queries) > 0 {
					items = s.executeBatch(ctx, role, alt, &pulled, items)
					break
				}
			}
		}
		if pulled.RingEpoch > epoch {
			// The tier resharded: re-pin after the in-flight batch has
			// completed back to the shard it was pulled from.
			epoch = pulled.RingEpoch
			if s.cfg.RePin != nil {
				if c := s.cfg.RePin(epoch); c != nil {
					lb = c
				}
			}
		}
	}
}

// executeBatch simulates execution and reports completions to lb, the
// connection the batch was pulled from. items is the caller's reusable
// completion scratch; the (possibly grown) slice is returned for the
// next batch — its Features fields point into the imagespace cache and
// are only ever replaced, never written through.
func (s *WorkerServer) executeBatch(ctx context.Context, role worker.Role, lb LBConn, pulled *PullResponse, items []CompleteItem) []CompleteItem {
	queries := pulled.Queries
	n := len(queries)
	variant := s.cfg.Light
	if role == worker.RoleHeavy {
		variant = s.cfg.Heavy
	}
	exec := variant.Latency.Latency(n)
	if role == worker.RoleLight && s.cfg.Scorer != nil {
		exec += float64(n) * s.cfg.Scorer.PerImageLatency()
	}

	now := s.cfg.Clock.Now()
	s.mu.Lock()
	if s.state.Available(now) {
		s.state.StartBatch(now, n, exec)
	}
	s.busy = true
	s.mu.Unlock()

	finished := s.cfg.Clock.SleepTraceCtx(ctx, exec)

	if finished {
		req := CompleteRequest{
			WorkerID: s.cfg.ID, Role: roleName(role), LeaseDeadline: pulled.LeaseDeadline,
		}
		req.Items = items[:0]
		for _, q := range queries {
			query := s.cfg.Space.SampleQuery(q.ID)
			img := s.cfg.Space.GenerateDeterministic(query, variant.Name, variant.Gen)
			item := CompleteItem{
				ID: q.ID, Arrival: q.Arrival,
				Variant: img.Variant, Features: img.Features, Artifact: img.Artifact,
			}
			if role == worker.RoleLight && s.cfg.Scorer != nil {
				item.Confidence = s.cfg.Scorer.Confidence(query, img)
			}
			req.Items = append(req.Items, item)
		}
		// A lost completion used to be a lost batch. Retry with
		// jittered exponential backoff; if every try fails, the lease
		// sweep reclaims and re-runs the batch — server-side
		// idempotent resolve makes the duplicate execution harmless.
		backoff := s.cfg.PollInterval
		for try := 1; ; try++ {
			if lb.Complete(ctx, req) == nil || try >= s.cfg.CompleteRetries || ctx.Err() != nil {
				break
			}
			s.mu.Lock()
			jitter := 0.5 + s.rng.Float64()
			s.mu.Unlock()
			if !s.cfg.Clock.SleepTraceCtx(ctx, backoff*jitter) {
				break
			}
			backoff *= 2
		}
		items = req.Items
	}

	s.mu.Lock()
	s.busy = false
	s.mu.Unlock()
	return items
}
