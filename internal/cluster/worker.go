package cluster

import (
	"context"
	"encoding/json"
	"net/http"
	"sync"
	"time"

	"diffserve/internal/discriminator"
	"diffserve/internal/imagespace"
	"diffserve/internal/model"
	"diffserve/internal/worker"
)

// WorkerConfig parameterizes a worker process.
type WorkerConfig struct {
	ID int
	// LBURL is the load balancer's base URL.
	LBURL string
	// Space regenerates query content; all processes share its seed.
	Space *imagespace.Space
	// Light and Heavy are the variants this worker can host.
	Light, Heavy *model.Variant
	// Scorer runs on light workers.
	Scorer discriminator.Scorer
	// Clock provides trace time and scaled sleeping.
	Clock *Clock
	// PollInterval is the idle re-poll delay in trace seconds.
	PollInterval float64
	// DisableLoadDelay skips model-switch downtime.
	DisableLoadDelay bool
}

// WorkerServer simulates one GPU worker: it pulls batches from the
// load balancer, sleeps for the profiled execution latency (timescale-
// adjusted), generates images deterministically, scores them with the
// discriminator when hosting the light model, and reports completions.
type WorkerServer struct {
	cfg    WorkerConfig
	client *http.Client

	mu    sync.Mutex
	state *worker.Worker
	busy  bool
}

// NewWorkerServer constructs a worker.
func NewWorkerServer(cfg WorkerConfig) *WorkerServer {
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 0.05
	}
	return &WorkerServer{
		cfg:    cfg,
		client: &http.Client{Timeout: 30 * time.Second},
		state:  worker.New(cfg.ID),
	}
}

// Mux returns the worker's control API.
func (s *WorkerServer) Mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/configure", s.handleConfigure)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	return mux
}

func parseRole(s string) worker.Role {
	switch s {
	case "light":
		return worker.RoleLight
	case "heavy":
		return worker.RoleHeavy
	default:
		return worker.RoleIdle
	}
}

func roleName(r worker.Role) string { return r.String() }

// handleConfigure reassigns the worker's model and batch size. Role
// switches incur the variant's load time (timescale-adjusted) unless
// disabled.
func (s *WorkerServer) handleConfigure(w http.ResponseWriter, r *http.Request) {
	var req ConfigureWorkerRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	role := parseRole(req.Role)
	load := 0.0
	if !s.cfg.DisableLoadDelay {
		switch role {
		case worker.RoleLight:
			load = s.cfg.Light.LoadSeconds
		case worker.RoleHeavy:
			load = s.cfg.Heavy.LoadSeconds
		}
	}
	now := s.cfg.Clock.Now()
	s.mu.Lock()
	s.state.Assign(now, role, maxInt(req.Batch, 1), load)
	s.mu.Unlock()
	w.WriteHeader(http.StatusOK)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// handleStats reports the worker's state.
func (s *WorkerServer) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	out := WorkerStats{
		ID:      s.state.ID(),
		Role:    roleName(s.state.Role()),
		Batch:   s.state.Batch(),
		Busy:    s.busy,
		Batches: s.state.Batches(),
		Queries: s.state.Queries(),
	}
	s.mu.Unlock()
	writeJSON(w, out)
}

// Loop runs the worker's pull-execute-complete cycle until the context
// is cancelled. It is the cluster analogue of the simulator's
// dispatch/onBatchDone events.
func (s *WorkerServer) Loop(ctx context.Context) {
	for ctx.Err() == nil {
		now := s.cfg.Clock.Now()
		s.mu.Lock()
		role := s.state.Role()
		batch := s.state.Batch()
		available := s.state.Available(now)
		s.mu.Unlock()

		if role == worker.RoleIdle || !available {
			s.cfg.Clock.SleepTrace(s.cfg.PollInterval)
			continue
		}

		var pulled PullResponse
		err := postJSON(s.client, s.cfg.LBURL+"/pull", PullRequest{
			WorkerID: s.cfg.ID, Role: roleName(role), Max: batch,
		}, &pulled)
		if err != nil || len(pulled.Queries) == 0 {
			s.cfg.Clock.SleepTrace(s.cfg.PollInterval)
			continue
		}

		s.executeBatch(role, pulled.Queries)
	}
}

// executeBatch simulates execution and reports completions.
func (s *WorkerServer) executeBatch(role worker.Role, queries []QueryMsg) {
	n := len(queries)
	variant := s.cfg.Light
	if role == worker.RoleHeavy {
		variant = s.cfg.Heavy
	}
	exec := variant.Latency.Latency(n)
	if role == worker.RoleLight && s.cfg.Scorer != nil {
		exec += float64(n) * s.cfg.Scorer.PerImageLatency()
	}

	now := s.cfg.Clock.Now()
	s.mu.Lock()
	if s.state.Available(now) {
		s.state.StartBatch(now, n, exec)
	}
	s.busy = true
	s.mu.Unlock()

	s.cfg.Clock.SleepTrace(exec)

	req := CompleteRequest{WorkerID: s.cfg.ID, Role: roleName(role)}
	for _, q := range queries {
		query := s.cfg.Space.SampleQuery(q.ID)
		img := s.cfg.Space.GenerateDeterministic(query, variant.Name, variant.Gen)
		item := CompleteItem{
			ID: q.ID, Arrival: q.Arrival,
			Variant: img.Variant, Features: img.Features, Artifact: img.Artifact,
		}
		if role == worker.RoleLight && s.cfg.Scorer != nil {
			item.Confidence = s.cfg.Scorer.Confidence(query, img)
		}
		req.Items = append(req.Items, item)
	}
	// Completion failures are dropped queries from the client's view;
	// nothing to retry meaningfully in a lossy run.
	_ = postJSON(s.client, s.cfg.LBURL+"/complete", req, nil)

	s.mu.Lock()
	s.busy = false
	s.mu.Unlock()
}
