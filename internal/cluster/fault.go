package cluster

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
)

// FaultMode selects what a fault window (or random per-call fault)
// does to a call.
type FaultMode int

const (
	// FaultSever fails the call outright, both directions: the request
	// never reaches the server (a cut conn).
	FaultSever FaultMode = iota
	// FaultDropRequests is the client->server half of a one-way
	// partition: the request is lost before the server sees it.
	// Indistinguishable from FaultSever at this layer — both return an
	// error without invoking the server — but kept distinct so scripts
	// read as what they model.
	FaultDropRequests
	// FaultDropResponses is the server->client half of a one-way
	// partition: the server executes the call, the reply is lost. This
	// is the mode that exercises duplicate-delivery idempotency — the
	// caller retries a call that already happened.
	FaultDropResponses
)

func (m FaultMode) String() string {
	switch m {
	case FaultSever:
		return "sever"
	case FaultDropRequests:
		return "drop-requests"
	case FaultDropResponses:
		return "drop-responses"
	}
	return fmt.Sprintf("FaultMode(%d)", int(m))
}

// FaultWindow scripts one deterministic fault against one conn: every
// call on conn index Conn (creation order; -1 matches every conn)
// during the trace-time interval [From, To) suffers Mode.
type FaultWindow struct {
	Conn     int
	From, To float64 // trace seconds
	Mode     FaultMode
}

// FaultPlan parameterizes a FaultTransport. Windows script exact
// fault intervals; the probability knobs add seeded random per-call
// faults on top. The zero plan injects nothing.
type FaultPlan struct {
	// Seed drives the per-call fault draws. Each wrapped conn derives
	// its own stream from (Seed, conn index), so one conn's call
	// pattern does not perturb another's faults.
	Seed uint64
	// Clock supplies trace time for window matching and latency
	// injection. Required when Windows or LatencyProb are used.
	Clock *Clock
	// DropRequestProb / DropResponseProb are per-call probabilities of
	// losing the request (server never sees it) or the response
	// (server acted, caller sees an error).
	DropRequestProb, DropResponseProb float64
	// LatencyProb injects LatencySecs trace-seconds of delay before
	// the call with the given per-call probability.
	LatencyProb float64
	LatencySecs float64
	// Windows are the scripted fault intervals.
	Windows []FaultWindow
}

// FaultTransport wraps any Transport and injects faults into the LB
// data path from a deterministic seeded plan: per-call frame drops
// (request or response side), latency spikes, scripted conn severs,
// and one-way partitions. Worker control-plane conns pass through
// unfaulted — the chaos under test is the data path; killing a worker
// is scripted by cancelling its loop, not by faulting Configure.
//
// Every injected fault surfaces on Errors() as a transient
// TransportError, so a harness watching the channel logs the chaos
// without aborting the run; the inner transport's own events are
// forwarded unchanged (a real dial-exhaustion stays fatal).
type FaultTransport struct {
	inner Transport
	plan  FaultPlan
	errs  chan error
	done  chan struct{}

	mu    sync.Mutex
	conns int
}

// NewFaultTransport wraps inner with the given fault plan.
func NewFaultTransport(inner Transport, plan FaultPlan) *FaultTransport {
	t := &FaultTransport{
		inner: inner,
		plan:  plan,
		errs:  make(chan error, 64),
		done:  make(chan struct{}),
	}
	if ch := inner.Errors(); ch != nil {
		go func() {
			for {
				select {
				case err, ok := <-ch:
					if !ok {
						return
					}
					t.report(err)
				case <-t.done:
					return
				}
			}
		}()
	}
	return t
}

func (t *FaultTransport) Name() string { return t.inner.Name() }

// ServeLB wraps the inner conn with the fault layer. Each call gets
// the next conn index, so a test that dials one conn per worker can
// script windows against specific workers.
func (t *FaultTransport) ServeLB(s *LBServer) (LBConn, error) {
	conn, err := t.inner.ServeLB(s)
	if err != nil {
		return nil, err
	}
	t.mu.Lock()
	idx := t.conns
	t.conns++
	t.mu.Unlock()
	return &faultLBConn{
		t: t, inner: conn, idx: idx,
		rng: rand.New(rand.NewSource(int64(t.plan.Seed)*0x9e3779b9 + int64(idx))),
	}, nil
}

func (t *FaultTransport) ServeWorker(s *WorkerServer) (WorkerConn, error) {
	return t.inner.ServeWorker(s)
}

func (t *FaultTransport) Close() {
	close(t.done)
	t.inner.Close()
}

func (t *FaultTransport) Errors() <-chan error { return t.errs }

// Partition scripts an extra fault window at runtime (a test reacting
// to its own progress). Safe for concurrent use with in-flight calls.
func (t *FaultTransport) Partition(conn int, from, to float64, mode FaultMode) {
	t.mu.Lock()
	t.plan.Windows = append(t.plan.Windows, FaultWindow{Conn: conn, From: from, To: to, Mode: mode})
	t.mu.Unlock()
}

// report publishes an event without ever blocking a data-path call; a
// full channel drops the event (the counterparty is not draining).
func (t *FaultTransport) report(err error) {
	select {
	case t.errs <- err:
	default:
	}
}

// window returns the scripted fault mode covering (conn, now), if any.
func (t *FaultTransport) window(conn int, now float64) (FaultMode, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, w := range t.plan.Windows {
		if (w.Conn == conn || w.Conn < 0) && now >= w.From && now < w.To {
			return w.Mode, true
		}
	}
	return 0, false
}

// faultLBConn applies the plan to every data- and control-plane call
// on one wrapped conn.
type faultLBConn struct {
	t     *FaultTransport
	inner LBConn
	idx   int

	mu  sync.Mutex
	rng *rand.Rand
}

// injected builds the transient error a faulted call returns and
// publishes it on the transport's event channel.
func (c *faultLBConn) injected(method string, mode FaultMode) error {
	err := TransientTransportError(
		fmt.Errorf("cluster: injected %s on conn %d %s", mode, c.idx, method))
	c.t.report(err)
	return err
}

// gate decides this call's fate before the inner conn sees it. It
// returns (dropResponse, err): a non-nil err means the request is
// lost (scripted sever/partition or a random request drop); a true
// dropResponse means the call must run but its reply is discarded.
func (c *faultLBConn) gate(ctx context.Context, method string) (bool, error) {
	plan := &c.t.plan
	now := 0.0
	if plan.Clock != nil {
		now = plan.Clock.Now()
	}
	if mode, ok := c.t.window(c.idx, now); ok {
		if mode == FaultDropResponses {
			return true, nil
		}
		return false, c.injected(method, mode)
	}
	var dropReq, dropResp, delay bool
	if plan.DropRequestProb > 0 || plan.DropResponseProb > 0 || plan.LatencyProb > 0 {
		c.mu.Lock()
		dropReq = plan.DropRequestProb > 0 && c.rng.Float64() < plan.DropRequestProb
		if !dropReq {
			dropResp = plan.DropResponseProb > 0 && c.rng.Float64() < plan.DropResponseProb
			delay = plan.LatencyProb > 0 && c.rng.Float64() < plan.LatencyProb
		}
		c.mu.Unlock()
	}
	if dropReq {
		return false, c.injected(method, FaultDropRequests)
	}
	if delay && plan.Clock != nil {
		plan.Clock.SleepTraceCtx(ctx, plan.LatencySecs)
	}
	return dropResp, nil
}

// run wraps one call with the gate and the response-drop outcome.
func (c *faultLBConn) run(ctx context.Context, method string, call func() error) error {
	dropResp, err := c.gate(ctx, method)
	if err != nil {
		return err
	}
	err = call()
	if dropResp {
		// The server acted; the caller must not learn the outcome.
		return c.injected(method, FaultDropResponses)
	}
	return err
}

func (c *faultLBConn) Submit(ctx context.Context, q QueryMsg) (QueryResponse, error) {
	var out QueryResponse
	err := c.run(ctx, "submit", func() error {
		var e error
		out, e = c.inner.Submit(ctx, q)
		return e
	})
	if err != nil {
		return QueryResponse{}, err
	}
	return out, nil
}

func (c *faultLBConn) SubmitBatch(ctx context.Context, req SubmitRequest) error {
	return c.run(ctx, "submit-batch", func() error { return c.inner.SubmitBatch(ctx, req) })
}

func (c *faultLBConn) PollResults(ctx context.Context, req ResultsRequest) (ResultsResponse, error) {
	var out ResultsResponse
	err := c.run(ctx, "poll-results", func() error {
		var e error
		out, e = c.inner.PollResults(ctx, req)
		return e
	})
	if err != nil {
		return ResultsResponse{}, err
	}
	return out, nil
}

func (c *faultLBConn) Pull(ctx context.Context, req PullRequest) (PullResponse, error) {
	var out PullResponse
	err := c.run(ctx, "pull", func() error {
		var e error
		out, e = c.inner.Pull(ctx, req)
		return e
	})
	if err != nil {
		return PullResponse{}, err
	}
	return out, nil
}

func (c *faultLBConn) PollResultsInto(ctx context.Context, req ResultsRequest, resp *ResultsResponse) error {
	return c.run(ctx, "poll-results", func() error {
		return PollResultsIntoConn(ctx, c.inner, req, resp)
	})
}

func (c *faultLBConn) PullInto(ctx context.Context, req PullRequest, resp *PullResponse) error {
	return c.run(ctx, "pull", func() error {
		return PullIntoConn(ctx, c.inner, req, resp)
	})
}

func (c *faultLBConn) Complete(ctx context.Context, req CompleteRequest) error {
	return c.run(ctx, "complete", func() error { return c.inner.Complete(ctx, req) })
}

func (c *faultLBConn) Configure(ctx context.Context, req ConfigureLBRequest) error {
	return c.run(ctx, "configure", func() error { return c.inner.Configure(ctx, req) })
}

func (c *faultLBConn) Stats(ctx context.Context) (LBStats, error) {
	var out LBStats
	err := c.run(ctx, "stats", func() error {
		var e error
		out, e = c.inner.Stats(ctx)
		return e
	})
	if err != nil {
		return LBStats{}, err
	}
	return out, nil
}

func (c *faultLBConn) Membership(ctx context.Context) (MembershipResponse, error) {
	src, ok := c.inner.(MembershipSource)
	if !ok {
		return MembershipResponse{}, errors.New("cluster: inner conn does not report membership")
	}
	var out MembershipResponse
	err := c.run(ctx, "membership", func() error {
		var e error
		out, e = src.Membership(ctx)
		return e
	})
	if err != nil {
		return MembershipResponse{}, err
	}
	return out, nil
}
