package cluster

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"diffserve/internal/loadbalancer"
	"diffserve/internal/trace"
)

// waitUntil polls cond every few milliseconds until it holds or the
// deadline passes.
func waitUntil(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// newLocalShard builds one LB shard on the chaos-test configuration:
// huge SLO (nothing sheds), near-zero coalesce wait, per-member RNG
// stream.
func newLocalShard(clock *Clock, member int) (*LBServer, LBConn) {
	lb := NewLBServer(LBConfig{
		Mode: loadbalancer.ModeCascade, SLO: 1e9,
		LightMinExec: 0.1, HeavyMinExec: 1.78,
		Clock: clock, Seed: 1, RNGStream: fmt.Sprintf("lb/%d", member),
		CoalesceWait: 1e-9,
	})
	return lb, NewLocalLBConn(lb)
}

// TestManyReshardsCollapseEpochs is the quiescence regression: 50
// membership changes, each with live traffic, must not accumulate 50
// ring epochs. Once every query resolves, the drained epochs collapse
// and at most the newest plus one straggler remain installed.
func TestManyReshardsCollapseEpochs(t *testing.T) {
	const (
		rounds    = 25 // add + remove per round = 50 reshards
		batchSize = 8
	)
	clock := NewClock(1e-5)
	ctx := context.Background()
	_, conn0 := newLocalShard(clock, 0)
	_, conn1 := newLocalShard(clock, 1)
	fe, err := NewShardedLB(ShardedLBConfig{
		Shards: []LBConn{conn0, conn1}, Clock: clock, VNodes: 128,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fe.Close()
	if err := fe.Configure(ctx, ConfigureLBRequest{Threshold: 0.5}); err != nil {
		t.Fatal(err)
	}

	seen := map[int]int{}
	nextID := 0
	for round := 0; round < rounds; round++ {
		member := 2 + round
		_, conn := newLocalShard(clock, member)
		if err := fe.AddShard(ctx, member, conn); err != nil {
			t.Fatalf("round %d: add %d: %v", round, member, err)
		}
		// One batch rides each membership: submitted into the new
		// epoch, executed, and resolved before the member retires.
		qs := make([]QueryMsg, batchSize)
		for i := range qs {
			qs[i] = QueryMsg{ID: nextID}
			nextID++
		}
		if err := fe.SubmitBatch(ctx, SubmitRequest{Queries: qs}); err != nil {
			t.Fatalf("round %d: submit: %v", round, err)
		}
		resolved := 0
		deadline := time.Now().Add(20 * time.Second)
		for resolved < batchSize {
			if time.Now().After(deadline) {
				t.Fatalf("round %d: drained %d of %d queries", round, resolved, batchSize)
			}
			if resp, err := fe.Pull(ctx, PullRequest{Role: "light", Max: batchSize, Wait: 5}); err == nil && len(resp.Queries) > 0 {
				items := make([]CompleteItem, len(resp.Queries))
				for i, q := range resp.Queries {
					items[i] = CompleteItem{ID: q.ID, Arrival: q.Arrival, Variant: "light", Confidence: 0.95}
				}
				if err := fe.Complete(ctx, CompleteRequest{Role: "light", Items: items}); err != nil {
					t.Fatalf("round %d: complete: %v", round, err)
				}
			}
			rr, err := fe.PollResults(ctx, ResultsRequest{Max: batchSize, Wait: 5})
			if err != nil {
				t.Fatalf("round %d: poll: %v", round, err)
			}
			for _, r := range rr.Results {
				seen[r.ID]++
				resolved++
			}
		}
		if err := fe.RemoveShard(ctx, member); err != nil {
			t.Fatalf("round %d: remove %d: %v", round, member, err)
		}
	}

	if got, want := fe.Epoch(), 2*rounds; got != want {
		t.Errorf("final epoch = %d, want %d", got, want)
	}
	if len(seen) != rounds*batchSize {
		t.Errorf("resolved %d distinct queries, want %d", len(seen), rounds*batchSize)
	}
	for id, n := range seen {
		if n != 1 {
			t.Errorf("query %d resolved %d times", id, n)
		}
	}
	waitUntil(t, 30*time.Second, "retired members to finalize", func() bool {
		return len(fe.RetiredMembers()) == 0
	})
	if live := fe.LiveEpochs(); live > 2 {
		t.Errorf("%d reshards left %d live epochs, want <= 2", 2*rounds, live)
	}
}

// TestRetiredPumpsTerminate checks that a retired member's result pump
// and straggler sweep both exit once the member quiesces, instead of
// long-polling a dead shard forever. Asserted by goroutine count so a
// regression shows up under -race as well.
func TestRetiredPumpsTerminate(t *testing.T) {
	clock := NewClock(1e-5)
	ctx := context.Background()
	_, conn0 := newLocalShard(clock, 0)
	_, conn1 := newLocalShard(clock, 1)
	fe, err := NewShardedLB(ShardedLBConfig{
		Shards: []LBConn{conn0, conn1}, Clock: clock, VNodes: 128,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fe.Close()
	if err := fe.Configure(ctx, ConfigureLBRequest{Threshold: 0.5}); err != nil {
		t.Fatal(err)
	}
	// Pump startup is lazy: one results poll ignites it, so members
	// added later get a pump goroutine each.
	if _, err := fe.PollResults(ctx, ResultsRequest{Max: 1, Wait: 0.01}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // let the two boot pumps settle
	base := runtime.NumGoroutine()

	const extra = 6
	for m := 2; m < 2+extra; m++ {
		_, conn := newLocalShard(clock, m)
		if err := fe.AddShard(ctx, m, conn); err != nil {
			t.Fatalf("add %d: %v", m, err)
		}
	}
	if g := runtime.NumGoroutine(); g < base+extra {
		t.Errorf("after adds: %d goroutines (base %d), want at least one pump per added member", g, base)
	}
	for m := 2; m < 2+extra; m++ {
		if err := fe.RemoveShard(ctx, m); err != nil {
			t.Fatalf("remove %d: %v", m, err)
		}
	}
	waitUntil(t, 30*time.Second, "retired members to finalize", func() bool {
		return len(fe.RetiredMembers()) == 0
	})
	// Every retired pump and sweep must exit; allow a little slack for
	// unrelated runtime goroutines.
	waitUntil(t, 30*time.Second, "retired pumps and sweeps to exit", func() bool {
		return runtime.NumGoroutine() <= base+2
	})
}

// TestMembershipEndpointHTTP round-trips the membership snapshot
// through a standalone LBServer over HTTP: the server adopts the view
// a Configure broadcast carries and republishes it on /membership.
func TestMembershipEndpointHTTP(t *testing.T) {
	clock := NewClock(1e-5)
	lb, _ := newLocalShard(clock, 0)
	srv := httptest.NewServer(lb.Mux())
	defer srv.Close()
	conn := NewHTTPLBConn(http.DefaultClient, srv.URL, CodecJSON)
	ctx := context.Background()

	m, ok, err := MembershipFromConn(ctx, conn)
	if err != nil || !ok {
		t.Fatalf("membership: ok=%v err=%v", ok, err)
	}
	if m.RingEpoch != 0 || len(m.Members) != 0 {
		t.Fatalf("fresh server membership = %+v, want empty epoch 0", m)
	}

	if err := conn.Configure(ctx, ConfigureLBRequest{
		Threshold: 0.5, RingEpoch: 3,
		Members:       []int{0, 2, 5},
		MemberAddrs:   []string{"", ":8102", ":8105"},
		MemberWeights: []int{3, 2, 2},
	}); err != nil {
		t.Fatal(err)
	}
	m, _, err = MembershipFromConn(ctx, conn)
	if err != nil {
		t.Fatal(err)
	}
	if m.RingEpoch != 3 {
		t.Errorf("adopted epoch = %d, want 3", m.RingEpoch)
	}
	if fmt.Sprint(m.Members) != "[0 2 5]" || fmt.Sprint(m.Weights) != "[3 2 2]" {
		t.Errorf("adopted members/weights = %v/%v", m.Members, m.Weights)
	}
	if len(m.Addrs) != 3 || m.Addrs[1] != ":8102" {
		t.Errorf("adopted addrs = %v", m.Addrs)
	}
	// A stale broadcast (older epoch) must not regress the snapshot.
	if err := conn.Configure(ctx, ConfigureLBRequest{
		Threshold: 0.5, RingEpoch: 2, Members: []int{0},
	}); err != nil {
		t.Fatal(err)
	}
	if m, _, _ = MembershipFromConn(ctx, conn); m.RingEpoch != 3 || len(m.Members) != 3 {
		t.Errorf("stale broadcast regressed membership to %+v", m)
	}
}

// TestMembershipFollowerSyncsOverTCP runs an authority frontend and a
// follower frontend against the same TCP shard servers. When the
// authority adds a member, the shards republish the broadcast view and
// the follower adopts it through SyncMembership, dialing the new
// member from its advertised address.
func TestMembershipFollowerSyncsOverTCP(t *testing.T) {
	clock := NewClock(1e-5)
	ctx := context.Background()
	serveTCP := func(member int) (addr string, authConn LBConn) {
		lb, _ := newLocalShard(clock, member)
		srv, err := ServeLBTCP("127.0.0.1:0", lb)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(srv.Close)
		return srv.Addr(), NewTCPLBConn(srv.Addr(), CodecBinary)
	}
	addr0, auth0 := serveTCP(0)
	addr1, auth1 := serveTCP(1)

	authority, err := NewShardedLB(ShardedLBConfig{
		Shards: []LBConn{auth0, auth1}, Clock: clock, VNodes: 128,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer authority.Close()
	authority.SetMemberAddr(0, addr0)
	authority.SetMemberAddr(1, addr1)

	follower, err := NewShardedLB(ShardedLBConfig{
		Shards: []LBConn{NewTCPLBConn(addr0, CodecBinary), NewTCPLBConn(addr1, CodecBinary)},
		Clock:  clock, VNodes: 128,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()

	addr2, authConn2 := serveTCP(2)
	authority.SetMemberAddr(2, addr2)
	if err := authority.AddShard(ctx, 2, authConn2); err != nil {
		t.Fatal(err)
	}

	src, ok := follower.MemberConn(0).(MembershipSource)
	if !ok {
		t.Fatal("tcp conn does not serve the membership verb")
	}
	dial := func(member int, addr string) (LBConn, error) {
		return NewTCPLBConn(addr, CodecBinary), nil
	}
	flipped, err := follower.SyncMembership(ctx, src, dial)
	if err != nil {
		t.Fatal(err)
	}
	if !flipped {
		t.Fatal("follower did not adopt the new membership")
	}
	am, _ := authority.Membership(ctx)
	fm, _ := follower.Membership(ctx)
	if am.RingEpoch != fm.RingEpoch || fmt.Sprint(am.Members) != fmt.Sprint(fm.Members) ||
		fmt.Sprint(am.Weights) != fmt.Sprint(fm.Weights) {
		t.Errorf("follower view %+v != authority view %+v", fm, am)
	}
	if follower.MemberConn(2) == nil {
		t.Error("follower did not dial the added member")
	}
	// Re-sync at the same epoch is a cheap no-op.
	if flipped, err = follower.SyncMembership(ctx, src, dial); err != nil || flipped {
		t.Errorf("idempotent sync: flipped=%v err=%v", flipped, err)
	}
}

// TestHarnessAutoscaleTopology is the elasticity soak: no scheduled
// reshard events — the controller alone, watching arrival rate and
// queue depth, must grow the frontend 1 -> 4 under the burst and
// shrink it back once the burst passes, losing nothing.
func TestHarnessAutoscaleTopology(t *testing.T) {
	if testing.Short() {
		t.Skip("autoscale harness skipped in -short mode")
	}
	f := newFixtures(t)
	// 2 qps base, a 10 qps burst, then a long cool-down tail.
	rates := []float64{2, 2, 10, 10, 10, 10, 10, 2, 2, 2, 2, 2, 2, 2, 2, 2}
	tr, err := trace.Steps(rates, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(HarnessConfig{
		Space: f.space, Light: f.light, Heavy: f.heavy, Scorer: f.scorer,
		Mode: loadbalancer.ModeCascade, Workers: 12, SLO: 8,
		Trace: tr, Ctrl: f.controller(t, 12, 8),
		Timescale: 0.05, Seed: 808808, DisableLoadDelay: true,
		Transport: TransportTCP, LBShards: 1, RingVNodes: 128,
		Steal: true,
		Autoscale: &AutoscaleConfig{
			MinShards: 1, MaxShards: 4,
			ShardCapacityQPS: 2.5,
			UpTicks:          1, DownTicks: 2,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.LBShards != 1 {
		t.Errorf("run started with %d shards, want 1", res.LBShards)
	}
	if res.PeakLBShards != 4 {
		t.Errorf("peak tier size = %d, want 4 (controller never scaled to the burst)", res.PeakLBShards)
	}
	if res.FinalLBShards > 2 {
		t.Errorf("final tier size = %d, want <= 2 after the cool-down", res.FinalLBShards)
	}
	if res.LiveEpochs > 2 {
		t.Errorf("%d live epochs at rest, want <= 2", res.LiveEpochs)
	}
	if res.Collector.Len() != res.Queries {
		t.Errorf("recorded %d of %d queries", res.Collector.Len(), res.Queries)
	}
	sum := res.Summary()
	if sum.DropRatio != 0 {
		t.Errorf("autoscale run dropped %.3f of queries", sum.DropRatio)
	}
	ids := map[int]bool{}
	for _, r := range res.Collector.Records() {
		if ids[r.ID] {
			t.Errorf("query %d recorded twice", r.ID)
		}
		ids[r.ID] = true
	}
	t.Logf("autoscale harness: %d queries, peak %d shards, final %d, %d live epochs, wall=%.1fs",
		sum.Queries, res.PeakLBShards, res.FinalLBShards, res.LiveEpochs, res.WallSeconds)
}
