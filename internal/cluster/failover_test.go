package cluster

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"diffserve/internal/allocator"
	"diffserve/internal/loadbalancer"
)

// blindStatsConn is an LBConn stub whose Stats calls fail while
// tripped, recording every Configure push so a test can observe the
// plans a blind controller applies.
type blindStatsConn struct {
	mu      sync.Mutex
	fail    bool
	lastCfg ConfigureLBRequest
	cfgs    int
}

func (c *blindStatsConn) setFail(v bool) {
	c.mu.Lock()
	c.fail = v
	c.mu.Unlock()
}

func (c *blindStatsConn) last() (ConfigureLBRequest, int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastCfg, c.cfgs
}

func (c *blindStatsConn) Submit(ctx context.Context, q QueryMsg) (QueryResponse, error) {
	return QueryResponse{}, nil
}
func (c *blindStatsConn) SubmitBatch(ctx context.Context, req SubmitRequest) error { return nil }
func (c *blindStatsConn) PollResults(ctx context.Context, req ResultsRequest) (ResultsResponse, error) {
	return ResultsResponse{}, nil
}
func (c *blindStatsConn) Pull(ctx context.Context, req PullRequest) (PullResponse, error) {
	return PullResponse{}, nil
}
func (c *blindStatsConn) Complete(ctx context.Context, req CompleteRequest) error { return nil }
func (c *blindStatsConn) Configure(ctx context.Context, req ConfigureLBRequest) error {
	c.mu.Lock()
	c.lastCfg = req
	c.cfgs++
	c.mu.Unlock()
	return nil
}
func (c *blindStatsConn) Stats(ctx context.Context) (LBStats, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.fail {
		return LBStats{}, errors.New("stats poll severed")
	}
	return LBStats{Now: 1}, nil
}

// TestControllerConservativeFailover pins the stats-blindness budget:
// the loop tolerates MaxStatsMisses-1 consecutive poll failures
// without touching its plan, fails over to the conservative plan
// (threshold and split zero, worker layout kept) at the budget, and
// resumes normal planning on the first successful poll.
func TestControllerConservativeFailover(t *testing.T) {
	f := newFixtures(t)
	conn := &blindStatsConn{}
	var logMu sync.Mutex
	var logs []string
	loop := NewControllerLoop(ControllerConfig{
		Ctrl: f.controller(t, 2, 5), LB: conn,
		Mode: loadbalancer.ModeCascade, Clock: NewClock(0.001),
		MaxStatsMisses: 3,
		Logf: func(format string, args ...interface{}) {
			logMu.Lock()
			logs = append(logs, fmt.Sprintf(format, args...))
			logMu.Unlock()
		},
	})
	ctx := context.Background()
	loop.Apply(ctx, allocator.Plan{Threshold: 0.7, DeferFraction: 0.4, LightWorkers: 1, HeavyWorkers: 1})
	if cfg, n := conn.last(); n != 1 || cfg.Threshold != 0.7 {
		t.Fatalf("initial plan push = %+v (%d pushes)", cfg, n)
	}

	conn.setFail(true)
	loop.TickOnce(ctx)
	loop.TickOnce(ctx)
	if st := loop.LoopStats(); st.Conservative || st.ConsecutiveStatsMisses != 2 {
		t.Fatalf("failed over before the miss budget: %+v", st)
	}
	if _, n := conn.last(); n != 1 {
		t.Fatalf("plan re-pushed during tolerated misses (%d pushes)", n)
	}
	loop.TickOnce(ctx) // third consecutive miss: the budget
	st := loop.LoopStats()
	if !st.Conservative || st.ConsecutiveStatsMisses != 3 || st.TotalStatsMisses != 3 {
		t.Fatalf("no conservative failover at the miss budget: %+v", st)
	}
	cfg, n := conn.last()
	if n != 2 || cfg.Threshold != 0 || cfg.SplitProb != 0 {
		t.Fatalf("conservative plan push = %+v (%d pushes), want zero threshold and split", cfg, n)
	}
	loop.TickOnce(ctx) // a fourth miss must not re-push
	if _, n := conn.last(); n != 2 {
		t.Fatalf("conservative plan re-pushed on further misses (%d pushes)", n)
	}

	conn.setFail(false)
	loop.TickOnce(ctx)
	st = loop.LoopStats()
	if st.Conservative || st.ConsecutiveStatsMisses != 0 || st.TotalStatsMisses != 4 {
		t.Fatalf("no recovery on first successful poll: %+v", st)
	}
	if _, n := conn.last(); n != 3 {
		t.Fatalf("recovered tick did not re-plan (%d pushes)", n)
	}

	logMu.Lock()
	joined := strings.Join(logs, "\n")
	logMu.Unlock()
	for _, want := range []string{"failing over to conservative plan", "recovered after"} {
		if !strings.Contains(joined, want) {
			t.Errorf("controller log missing %q:\n%s", want, joined)
		}
	}
}

// gateConn wraps an LBConn; while tripped, SubmitBatch and
// PollResults fail — the two calls the sharded frontend's degradation
// tracker watches.
type gateConn struct {
	LBConn
	mu   sync.Mutex
	down bool
}

func (c *gateConn) set(down bool) {
	c.mu.Lock()
	c.down = down
	c.mu.Unlock()
}

func (c *gateConn) isDown() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.down
}

func (c *gateConn) SubmitBatch(ctx context.Context, req SubmitRequest) error {
	if c.isDown() {
		return errors.New("shard unreachable")
	}
	return c.LBConn.SubmitBatch(ctx, req)
}

func (c *gateConn) PollResults(ctx context.Context, req ResultsRequest) (ResultsResponse, error) {
	if c.isDown() {
		return ResultsResponse{}, errors.New("shard unreachable")
	}
	return c.LBConn.PollResults(ctx, req)
}

// TestShardedLBDegradeSpill pins the shard-degradation lifecycle: an
// unreachable shard is marked degraded after the failure threshold,
// its hash range's new submits spill to the ring's next owner, the
// state surfaces through merged Stats, and recovery (the result pump
// probing successfully again) restores normal placement.
func TestShardedLBDegradeSpill(t *testing.T) {
	clock := NewClock(1e-3)
	newShard := func(member int) (*LBServer, LBConn) {
		lb := NewLBServer(LBConfig{
			Mode: loadbalancer.ModeCascade, SLO: 1e9,
			LightMinExec: 0.1, HeavyMinExec: 1.78,
			Clock: clock, Seed: 1, RNGStream: fmt.Sprintf("lb/%d", member),
			CoalesceWait: 1e-9,
		})
		return lb, NewLocalLBConn(lb)
	}
	_, conn0 := newShard(0)
	_, conn1 := newShard(1)
	gate := &gateConn{LBConn: conn0}
	fe, err := NewShardedLB(ShardedLBConfig{
		Shards: []LBConn{gate, conn1}, Clock: clock, VNodes: 64,
		DegradeThreshold: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fe.Close()
	ctx := context.Background()

	// IDs owned by each member under the (only) ring epoch.
	ring := fe.epochRings()[0]
	ownedBy := func(member, n, from int) []int {
		var ids []int
		for id := from; len(ids) < n; id++ {
			if ring.Owner(id) == member {
				ids = append(ids, id)
			}
		}
		return ids
	}
	submit := func(ids []int) error {
		qs := make([]QueryMsg, len(ids))
		for i, id := range ids {
			qs[i] = QueryMsg{ID: id}
		}
		return fe.SubmitBatch(ctx, SubmitRequest{Queries: qs})
	}
	pullIDs := func(conn LBConn) map[int]bool {
		got := map[int]bool{}
		for {
			resp, err := conn.Pull(ctx, PullRequest{WorkerID: 1, Role: "light", Max: 64, Wait: 2})
			if err != nil || len(resp.Queries) == 0 {
				return got
			}
			for _, q := range resp.Queries {
				got[q.ID] = true
			}
		}
	}

	// Healthy tier: submits to member 0 land on member 0.
	first := ownedBy(0, 2, 0)
	if err := submit(first); err != nil {
		t.Fatal(err)
	}
	got := pullIDs(gate)
	for _, id := range first {
		if !got[id] {
			t.Fatalf("healthy submit to owner 0 missing id %d on shard 0 (got %v)", id, got)
		}
	}

	// Shard 0 goes dark: dispatch failures past the threshold degrade
	// it. (The pump is not running yet — PollResults was never called
	// — so the dispatch path alone must trip the marker.)
	gate.set(true)
	down := ownedBy(0, 1, 100)
	for i := 0; i < 2; i++ {
		if err := submit(down); err == nil {
			t.Fatal("submit to an unreachable shard succeeded")
		}
	}
	if ms := fe.DegradedMembers(); len(ms) != 1 || ms[0] != 0 {
		t.Fatalf("degraded members = %v, want [0]", ms)
	}
	st, err := fe.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.DegradedShards != 1 {
		t.Fatalf("merged stats report %d degraded shards, want 1", st.DegradedShards)
	}

	// Spill: member 0's hash range now lands on the ring's next owner
	// (member 1 — the only other shard) with no error.
	spill := ownedBy(0, 3, 200)
	if err := submit(spill); err != nil {
		t.Fatalf("spill submit errored: %v", err)
	}
	got = pullIDs(conn1)
	for _, id := range spill {
		if !got[id] {
			t.Fatalf("spilled id %d missing on shard 1 (got %v)", id, got)
		}
	}

	// Recovery: the shard heals, the result pump's next successful
	// poll un-degrades it, and placement returns to the primary.
	if _, err := fe.PollResults(ctx, ResultsRequest{Max: 8}); err != nil {
		t.Fatal(err) // starts the pumps
	}
	gate.set(false)
	deadline := time.Now().Add(10 * time.Second)
	for len(fe.DegradedMembers()) != 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if ms := fe.DegradedMembers(); len(ms) != 0 {
		t.Fatalf("shard never recovered: degraded members = %v", ms)
	}
	after := ownedBy(0, 2, 300)
	if err := submit(after); err != nil {
		t.Fatal(err)
	}
	got = pullIDs(gate)
	for _, id := range after {
		if !got[id] {
			t.Fatalf("post-recovery id %d missing on shard 0 (got %v)", id, got)
		}
	}
}
