package cluster

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"diffserve/internal/loadbalancer"
)

// TestLBServerPerPoolLockStress hammers every LBServer entry point —
// batched submits, light and heavy pulls, completions that defer
// across pools, result polls, configuration, and stats — from
// concurrent goroutines. It runs in -short mode on purpose: the
// verify script's -race leg executes it, which is what actually
// checks the per-pool lock split for data races. The final accounting
// must balance: every submitted query resolves exactly once.
func TestLBServerPerPoolLockStress(t *testing.T) {
	const (
		submitters = 4
		pullers    = 4
		batches    = 60
		batchSize  = 8
		total      = submitters * batches * batchSize
	)
	lb := NewLBServer(LBConfig{
		Mode: loadbalancer.ModeCascade, SLO: 1e9, // nothing sheds
		LightMinExec: 0.01, HeavyMinExec: 0.02,
		Clock: NewClock(1e-5), Seed: 9, CoalesceWait: 1e-9,
	})
	// Half the light completions fall below the threshold and defer
	// to the heavy pool, so both pools stay busy.
	lb.Configure(ConfigureLBRequest{Threshold: 0.5})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var resolved atomic.Int64
	var wg sync.WaitGroup

	// Result pollers drain the async results until all queries have
	// resolved.
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for resolved.Load() < total && ctx.Err() == nil {
				resp := lb.PollResults(ctx, ResultsRequest{Max: 64, Wait: 50})
				resolved.Add(int64(len(resp.Results)))
			}
		}()
	}

	// Pullers play the worker side for both pools.
	pull := func(role string, confidence float64) {
		defer wg.Done()
		for resolved.Load() < total && ctx.Err() == nil {
			resp := lb.Pull(ctx, PullRequest{Role: role, Max: batchSize, Wait: 100})
			if len(resp.Queries) == 0 {
				continue
			}
			items := make([]CompleteItem, len(resp.Queries))
			for i, q := range resp.Queries {
				// Alternate confidences on the light pool: below the
				// 0.5 threshold defers the query to the heavy pool.
				conf := confidence
				if role == "light" && q.ID%2 == 0 {
					conf = 0.1
				}
				items[i] = CompleteItem{ID: q.ID, Arrival: q.Arrival, Variant: role, Confidence: conf}
			}
			lb.Complete(CompleteRequest{Role: role, Items: items})
		}
	}
	for i := 0; i < pullers; i++ {
		wg.Add(2)
		go pull("light", 0.9)
		go pull("heavy", 0.9)
	}

	// Control-plane hammering: stats polls and reconfigurations race
	// the data path. The threshold toggles but always stays above the
	// deferred queries' 0.1 confidence so the heavy pool still serves
	// them.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for resolved.Load() < total && ctx.Err() == nil {
			lb.Stats()
			lb.Configure(ConfigureLBRequest{Threshold: 0.5, SplitProb: 0.25})
			time.Sleep(time.Millisecond)
		}
	}()

	// Submitters: batched async admissions plus occasional blocking
	// Submits (resolved through the same waiters path).
	for s := 0; s < submitters; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			base := s * batches * batchSize
			for b := 0; b < batches; b++ {
				qs := make([]QueryMsg, batchSize)
				for i := range qs {
					qs[i] = QueryMsg{ID: base + b*batchSize + i}
				}
				lb.SubmitBatch(qs)
			}
		}(s)
	}

	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		cancel()
		t.Fatalf("stress run wedged: resolved %d of %d", resolved.Load(), total)
	}

	if got := resolved.Load(); got != total {
		t.Fatalf("resolved %d of %d queries", got, total)
	}
	stats := lb.Stats()
	if stats.Completed+stats.Dropped != total {
		t.Errorf("accounting: completed %d + dropped %d != %d", stats.Completed, stats.Dropped, total)
	}
	if stats.Dropped != 0 {
		t.Errorf("dropped %d queries despite an unbounded SLO", stats.Dropped)
	}
	if lb.Collector().Len() != total {
		t.Errorf("collector recorded %d of %d", lb.Collector().Len(), total)
	}
}

// TestNotifierCoalescing pins the notifier contract: arming under the
// lock always observes a wake that follows it, wakes with no armed
// waiter are no-ops (no channel churn), and one wake releases every
// armed waiter.
func TestNotifierCoalescing(t *testing.T) {
	var mu sync.Mutex
	var n notifier

	mu.Lock()
	ch1 := n.wait()
	ch2 := n.wait()
	mu.Unlock()
	if ch1 != ch2 {
		t.Fatal("consecutive waits without a wake returned different channels")
	}

	mu.Lock()
	n.wake()
	mu.Unlock()
	select {
	case <-ch1:
	default:
		t.Fatal("armed waiter's channel not closed by wake")
	}

	// Unarmed wakes must not replace the channel a future waiter gets.
	mu.Lock()
	n.wake()
	n.wake()
	ch3 := n.wait()
	mu.Unlock()
	select {
	case <-ch3:
		t.Fatal("fresh waiter's channel already closed")
	default:
	}
	mu.Lock()
	n.wake()
	mu.Unlock()
	select {
	case <-ch3:
	default:
		t.Fatal("wake after re-arm did not close the channel")
	}
}

// TestLBPoolWakeupStress is the missed-wakeup hammer: single-item
// pushes race pullers whose long-poll deadline is far beyond the test
// budget, so one dropped wakeup wedges a puller and fails the run.
// The tiny CoalesceWait makes every push immediately dispatchable —
// each one must produce a wakeup that some puller observes.
func TestLBPoolWakeupStress(t *testing.T) {
	const (
		pushers = 4
		pullers = 4
		perPush = 400
		total   = pushers * perPush
	)
	lb := NewLBServer(LBConfig{
		Mode: loadbalancer.ModeCascade, SLO: 1e9,
		LightMinExec: 0.01, HeavyMinExec: 0.02,
		Clock: NewClock(1e-5), Seed: 3, CoalesceWait: 1e-9,
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var pulled atomic.Int64
	var pullWG, pushWG sync.WaitGroup

	for i := 0; i < pullers; i++ {
		pullWG.Add(1)
		go func() {
			defer pullWG.Done()
			for pulled.Load() < total && ctx.Err() == nil {
				// 1e7 trace seconds = 100s of wall time at this
				// timescale: no puller may ever need the deadline.
				resp := lb.Pull(ctx, PullRequest{Role: "light", Max: 1, Wait: 1e7})
				if len(resp.Queries) == 0 {
					continue
				}
				items := make([]CompleteItem, len(resp.Queries))
				for j, q := range resp.Queries {
					items[j] = CompleteItem{ID: q.ID, Arrival: q.Arrival, Variant: "light", Confidence: 0.9}
				}
				pulled.Add(int64(len(resp.Queries)))
				lb.Complete(CompleteRequest{Role: "light", Items: items})
			}
		}()
	}
	for p := 0; p < pushers; p++ {
		pushWG.Add(1)
		go func(p int) {
			defer pushWG.Done()
			for i := 0; i < perPush; i++ {
				lb.SubmitBatch([]QueryMsg{{ID: p*perPush + i}})
			}
		}(p)
	}
	pushWG.Wait()

	// Every push is in: pullers must observe all of them well before
	// their own 100s long-poll deadline — a dropped wakeup strands the
	// last items in the queue until this deadline fires.
	deadline := time.Now().Add(30 * time.Second)
	for pulled.Load() < total && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	got := pulled.Load()
	// Unblock the pullers still parked on an empty queue (their
	// sibling consumed the final item and exited the loop).
	cancel()
	pullWG.Wait()
	if got != total {
		t.Fatalf("wakeup dropped: pullers saw %d of %d single-item pushes", got, total)
	}
}

// TestDrainCompleteRaceNoDoubleResolve interleaves DrainRemaining
// sweeps with in-flight completions — including duplicate deliveries
// and post-drain cascade deferrals — and requires every query to
// resolve exactly once: a Complete arriving after the drain resolved
// its query must neither double-record in the collector nor
// resurrect a result entry.
func TestDrainCompleteRaceNoDoubleResolve(t *testing.T) {
	const (
		rounds    = 30
		batchSize = 8
		total     = rounds * batchSize
	)
	lb := NewLBServer(LBConfig{
		Mode: loadbalancer.ModeCascade, SLO: 1e9,
		LightMinExec: 0.01, HeavyMinExec: 0.02,
		Clock: NewClock(1e-5), Seed: 5, CoalesceWait: 1e-9,
	})
	// Half the completions fall below the threshold and defer: after a
	// drain has marked the heavy pool, those deferrals must resolve as
	// drops exactly once.
	lb.Configure(ConfigureLBRequest{Threshold: 0.5})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var resolved atomic.Int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // merged-result accounting
		defer wg.Done()
		for resolved.Load() < total && ctx.Err() == nil {
			resp := lb.PollResults(ctx, ResultsRequest{Max: 64, Wait: 50})
			resolved.Add(int64(len(resp.Results)))
		}
	}()

	// Drain storms race the completions below.
	var drains sync.WaitGroup
	drains.Add(1)
	go func() {
		defer drains.Done()
		for resolved.Load() < total && ctx.Err() == nil {
			lb.DrainRemaining()
		}
	}()

	for r := 0; r < rounds; r++ {
		qs := make([]QueryMsg, batchSize)
		for i := range qs {
			qs[i] = QueryMsg{ID: r*batchSize + i}
		}
		lb.SubmitBatch(qs)
		// Pull whatever survived the racing drain; everything else
		// already resolved as a drop.
		pulledItems := []CompleteItem{}
		for {
			resp := lb.Pull(ctx, PullRequest{Role: "light", Max: batchSize})
			if len(resp.Queries) == 0 {
				break
			}
			for _, q := range resp.Queries {
				conf := 0.9
				if q.ID%2 == 0 {
					conf = 0.1 // deferral: races the heavy pool's drain state
				}
				pulledItems = append(pulledItems, CompleteItem{
					ID: q.ID, Arrival: q.Arrival, Variant: "light", Confidence: conf,
				})
			}
		}
		// Deliver every completion twice: the second must be a no-op.
		lb.Complete(CompleteRequest{Role: "light", Items: pulledItems})
		lb.Complete(CompleteRequest{Role: "light", Items: pulledItems})
		// Heavy side serves (or the drain already dropped) deferrals.
		for {
			resp := lb.Pull(ctx, PullRequest{Role: "heavy", Max: batchSize})
			if len(resp.Queries) == 0 {
				break
			}
			items := make([]CompleteItem, len(resp.Queries))
			for i, q := range resp.Queries {
				items[i] = CompleteItem{ID: q.ID, Arrival: q.Arrival, Variant: "heavy", Confidence: 0.9}
			}
			lb.Complete(CompleteRequest{Role: "heavy", Items: items})
			lb.Complete(CompleteRequest{Role: "heavy", Items: items})
		}
	}
	// Final sweeps resolve anything still parked in a queue.
	lb.DrainRemaining()

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		cancel()
		t.Fatalf("wedged: resolved %d of %d", resolved.Load(), total)
	}
	cancel()
	drains.Wait()

	if got := resolved.Load(); got != total {
		t.Fatalf("resolved %d of %d queries (double or lost resolutions)", got, total)
	}
	stats := lb.Stats()
	if stats.Completed+stats.Dropped != total {
		t.Errorf("counters: completed %d + dropped %d != %d", stats.Completed, stats.Dropped, total)
	}
	if lb.Collector().Len() != total {
		t.Errorf("collector recorded %d of %d (double records?)", lb.Collector().Len(), total)
	}
	seen := map[int]int{}
	for _, rec := range lb.Collector().Records() {
		seen[rec.ID]++
	}
	for id, n := range seen {
		if n != 1 {
			t.Errorf("query %d recorded %d times", id, n)
		}
	}
}
