package cluster

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"diffserve/internal/loadbalancer"
)

// TestLBServerPerPoolLockStress hammers every LBServer entry point —
// batched submits, light and heavy pulls, completions that defer
// across pools, result polls, configuration, and stats — from
// concurrent goroutines. It runs in -short mode on purpose: the
// verify script's -race leg executes it, which is what actually
// checks the per-pool lock split for data races. The final accounting
// must balance: every submitted query resolves exactly once.
func TestLBServerPerPoolLockStress(t *testing.T) {
	const (
		submitters = 4
		pullers    = 4
		batches    = 60
		batchSize  = 8
		total      = submitters * batches * batchSize
	)
	lb := NewLBServer(LBConfig{
		Mode: loadbalancer.ModeCascade, SLO: 1e9, // nothing sheds
		LightMinExec: 0.01, HeavyMinExec: 0.02,
		Clock: NewClock(1e-5), Seed: 9, CoalesceWait: 1e-9,
	})
	// Half the light completions fall below the threshold and defer
	// to the heavy pool, so both pools stay busy.
	lb.Configure(ConfigureLBRequest{Threshold: 0.5})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var resolved atomic.Int64
	var wg sync.WaitGroup

	// Result pollers drain the async results until all queries have
	// resolved.
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for resolved.Load() < total && ctx.Err() == nil {
				resp := lb.PollResults(ctx, ResultsRequest{Max: 64, Wait: 50})
				resolved.Add(int64(len(resp.Results)))
			}
		}()
	}

	// Pullers play the worker side for both pools.
	pull := func(role string, confidence float64) {
		defer wg.Done()
		for resolved.Load() < total && ctx.Err() == nil {
			resp := lb.Pull(ctx, PullRequest{Role: role, Max: batchSize, Wait: 100})
			if len(resp.Queries) == 0 {
				continue
			}
			items := make([]CompleteItem, len(resp.Queries))
			for i, q := range resp.Queries {
				// Alternate confidences on the light pool: below the
				// 0.5 threshold defers the query to the heavy pool.
				conf := confidence
				if role == "light" && q.ID%2 == 0 {
					conf = 0.1
				}
				items[i] = CompleteItem{ID: q.ID, Arrival: q.Arrival, Variant: role, Confidence: conf}
			}
			lb.Complete(CompleteRequest{Role: role, Items: items})
		}
	}
	for i := 0; i < pullers; i++ {
		wg.Add(2)
		go pull("light", 0.9)
		go pull("heavy", 0.9)
	}

	// Control-plane hammering: stats polls and reconfigurations race
	// the data path. The threshold toggles but always stays above the
	// deferred queries' 0.1 confidence so the heavy pool still serves
	// them.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for resolved.Load() < total && ctx.Err() == nil {
			lb.Stats()
			lb.Configure(ConfigureLBRequest{Threshold: 0.5, SplitProb: 0.25})
			time.Sleep(time.Millisecond)
		}
	}()

	// Submitters: batched async admissions plus occasional blocking
	// Submits (resolved through the same waiters path).
	for s := 0; s < submitters; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			base := s * batches * batchSize
			for b := 0; b < batches; b++ {
				qs := make([]QueryMsg, batchSize)
				for i := range qs {
					qs[i] = QueryMsg{ID: base + b*batchSize + i}
				}
				lb.SubmitBatch(qs)
			}
		}(s)
	}

	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		cancel()
		t.Fatalf("stress run wedged: resolved %d of %d", resolved.Load(), total)
	}

	if got := resolved.Load(); got != total {
		t.Fatalf("resolved %d of %d queries", got, total)
	}
	stats := lb.Stats()
	if stats.Completed+stats.Dropped != total {
		t.Errorf("accounting: completed %d + dropped %d != %d", stats.Completed, stats.Dropped, total)
	}
	if stats.Dropped != 0 {
		t.Errorf("dropped %d queries despite an unbounded SLO", stats.Dropped)
	}
	if lb.Collector().Len() != total {
		t.Errorf("collector recorded %d of %d", lb.Collector().Len(), total)
	}
}
