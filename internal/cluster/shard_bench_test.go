package cluster

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"

	"diffserve/internal/loadbalancer"
)

// BenchmarkShardedSubmit measures aggregate submit throughput of the
// LB tier under concurrent batch submitters, with per-shard workers
// draining the queues and a merged-result poller keeping the result
// buffers bounded — the full admission pipeline. One op is one
// 64-query SubmitBatch through the frontend. shards-1 is the classic
// single LBServer (its result lock and pool lock serialize every
// submitter); higher shard counts split the stream by ID hash across
// independent locks. PERFORMANCE.md records the measured scaling.
func BenchmarkShardedSubmit(b *testing.B) {
	const batchSize = 64
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards-%d", shards), func(b *testing.B) {
			clock := NewClock(1e-6)
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()

			lbs := make([]*LBServer, shards)
			conns := make([]LBConn, shards)
			for i := range lbs {
				lbs[i] = NewLBServer(LBConfig{
					Mode: loadbalancer.ModeCascade, SLO: 1e9,
					LightMinExec: 0.01, HeavyMinExec: 0.02,
					Clock: clock, Seed: 1, RNGStream: fmt.Sprintf("lb/%d", i),
					CoalesceWait: 1e-9,
				})
				conns[i] = NewLocalLBConn(lbs[i])
			}
			fe, err := NewShardedLB(ShardedLBConfig{Shards: conns, Clock: clock})
			if err != nil {
				b.Fatal(err)
			}
			defer fe.Close()

			// Shard-pinned workers drain and complete; the merged
			// poller discards results so buffers stay bounded.
			for _, conn := range conns {
				for w := 0; w < 2; w++ {
					go func(conn LBConn) {
						for ctx.Err() == nil {
							resp, err := conn.Pull(ctx, PullRequest{Role: "light", Max: 256, Wait: 1e6})
							if err != nil || len(resp.Queries) == 0 {
								continue
							}
							items := make([]CompleteItem, len(resp.Queries))
							for i, q := range resp.Queries {
								items[i] = CompleteItem{ID: q.ID, Arrival: q.Arrival, Variant: "light", Confidence: 0.9}
							}
							_ = conn.Complete(ctx, CompleteRequest{Role: "light", Items: items})
						}
					}(conn)
				}
			}
			go func() {
				for ctx.Err() == nil {
					_, _ = fe.PollResults(ctx, ResultsRequest{Max: 4096, Wait: 1e6})
				}
			}()

			var idc atomic.Int64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				batch := make([]QueryMsg, batchSize)
				for pb.Next() {
					base := int(idc.Add(batchSize)) - batchSize
					for i := range batch {
						batch[i] = QueryMsg{ID: base + i}
					}
					if err := fe.SubmitBatch(ctx, SubmitRequest{Queries: batch}); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.StopTimer()
			qps := float64(b.N) * batchSize / b.Elapsed().Seconds()
			b.ReportMetric(qps/1e6, "Mqueries/s")
		})
	}
}
