package cluster

import (
	"bufio"
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"diffserve/internal/loadbalancer"
	"diffserve/internal/trace"
)

// TestTCPFrameRoundTrip pins the frame encoding: appendFrame output
// must decode to the same header and payload.
func TestTCPFrameRoundTrip(t *testing.T) {
	msg := &PullRequest{WorkerID: 3, Role: "light", Max: 8, Wait: 0.25}
	for _, codec := range []Codec{CodecJSON, CodecBinary} {
		b, err := appendFrame(nil, frameRequest, methodPull, codecID(codec), 42, codec, msg, "")
		if err != nil {
			t.Fatal(err)
		}
		f, _, err := readFrame(bufio.NewReader(bytes.NewReader(b)), nil)
		if err != nil {
			t.Fatalf("%s: %v", codec.Name(), err)
		}
		if f.kind != frameRequest || f.method != methodPull || f.codec != codecID(codec) || f.id != 42 {
			t.Errorf("%s: header = %+v", codec.Name(), f)
		}
		var out PullRequest
		if err := codec.Unmarshal(f.payload, &out); err != nil {
			t.Fatal(err)
		}
		if out != *msg {
			t.Errorf("%s: payload = %+v, want %+v", codec.Name(), out, *msg)
		}
	}

	// Error frames carry the error text as their payload.
	b, err := appendFrame(nil, frameError, methodPull, codecIDBinary, 7, CodecBinary, nil, "boom")
	if err != nil {
		t.Fatal(err)
	}
	f, _, err := readFrame(bufio.NewReader(bytes.NewReader(b)), nil)
	if err != nil {
		t.Fatal(err)
	}
	if f.kind != frameError || string(f.payload) != "boom" {
		t.Errorf("error frame = %+v payload %q", f, f.payload)
	}
}

// TestTCPFrameRejectsCorruptHeaders exercises the decode guards:
// oversized and undersized declared lengths, invalid kind, method,
// and codec bytes must all fail without panicking.
func TestTCPFrameRejectsCorruptHeaders(t *testing.T) {
	valid, err := appendFrame(nil, frameRequest, methodPull, codecIDBinary, 1, CodecBinary, &PullRequest{}, "")
	if err != nil {
		t.Fatal(err)
	}
	corrupt := func(mut func(b []byte)) []byte {
		b := append([]byte(nil), valid...)
		mut(b)
		return b
	}
	cases := map[string][]byte{
		"oversized-length":  corrupt(func(b []byte) { b[0], b[1], b[2], b[3] = 0xff, 0xff, 0xff, 0xff }),
		"undersized-length": corrupt(func(b []byte) { b[0], b[1], b[2], b[3] = 0, 0, 0, frameHeaderLen-1 }),
		"bad-kind":          corrupt(func(b []byte) { b[4] = 99 }),
		"bad-method":        corrupt(func(b []byte) { b[5] = 0 }),
		"bad-codec":         corrupt(func(b []byte) { b[6] = 7 }),
		"truncated":         valid[:len(valid)-2],
	}
	for name, data := range cases {
		if _, _, err := readFrame(bufio.NewReader(bytes.NewReader(data)), nil); err == nil {
			t.Errorf("%s: corrupted frame decoded without error", name)
		}
	}
}

// TestTCPConcurrentCalls hammers one multiplexed connection from many
// goroutines and checks every response correlates to its own request.
func TestTCPConcurrentCalls(t *testing.T) {
	lb := newTestLB(0.001)
	srv, err := ServeLBTCP("127.0.0.1:0", lb)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn := NewTCPLBConn(srv.Addr(), CodecBinary)
	defer conn.(tcpLBConn).c.Close()

	const calls = 64
	var wg sync.WaitGroup
	errs := make(chan error, calls)
	for i := 0; i < calls; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Mix blocking long polls with instant control calls so
			// responses interleave out of request order.
			if i%4 == 0 {
				resp, err := conn.Pull(context.Background(), PullRequest{Role: "light", Max: 1, Wait: 2})
				if err != nil {
					errs <- err
				} else if len(resp.Queries) != 0 {
					t.Errorf("unexpected work: %+v", resp.Queries)
				}
				return
			}
			if _, err := conn.Stats(context.Background()); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestTCPClientRedialsAfterRestart kills the server and restarts one
// on the same address: the next call on the same conn must redial
// transparently.
func TestTCPClientRedialsAfterRestart(t *testing.T) {
	lb := newTestLB(0.001)
	srv, err := ServeLBTCP("127.0.0.1:0", lb)
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	conn := NewTCPLBConn(addr, CodecBinary)
	defer conn.(tcpLBConn).c.Close()
	if _, err := conn.Stats(context.Background()); err != nil {
		t.Fatal(err)
	}

	srv.Close()
	srv2, err := ServeLBTCP(addr, lb)
	if err != nil {
		t.Fatalf("rebinding %s: %v", addr, err)
	}
	defer srv2.Close()

	// The first call may observe the dead connection; the redial (with
	// retries) must succeed well within the dial budget.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err = conn.Stats(context.Background()); err == nil {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("conn never recovered after server restart: %v", err)
		}
	}
}

// TestHarnessReportsTransportFailure kills the TCP listeners midway
// through a harness run and asserts the run surfaces the transport
// failure instead of silently dropping the in-flight queries.
func TestHarnessReportsTransportFailure(t *testing.T) {
	if testing.Short() {
		t.Skip("harness failure injection skipped in -short mode")
	}
	f := newFixtures(t)
	tr, err := trace.Static(6, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	tp := newTCPTransport(CodecBinary)

	resCh := make(chan *Result, 1)
	errCh := make(chan error, 1)
	go func() {
		res, err := Run(HarnessConfig{
			Space: f.space, Light: f.light, Heavy: f.heavy, Scorer: f.scorer,
			Mode: loadbalancer.ModeCascade, Workers: 4, SLO: 5,
			Trace: tr, Ctrl: f.controller(t, 4, 5),
			Timescale: 0.1, Seed: 7, DisableLoadDelay: true,
			TransportImpl: tp,
		})
		resCh <- res
		errCh <- err
	}()

	// Let the replay get underway, then kill the server side. The
	// clients' redials must exhaust and abort the run.
	time.Sleep(700 * time.Millisecond)
	tp.closeServers()

	select {
	case res := <-resCh:
		err := <-errCh
		if err == nil {
			t.Fatalf("harness swallowed the transport failure: res=%+v", res)
		}
		if !strings.Contains(err.Error(), "transport failed mid-run") {
			t.Errorf("error %q does not name the transport failure", err)
		}
		t.Logf("harness reported: %v", err)
	case <-time.After(60 * time.Second):
		t.Fatal("harness did not return after the transport died")
	}
}
