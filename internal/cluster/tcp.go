package cluster

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// This file implements the raw-TCP framed transport: the same wire
// messages and Codec seam as the HTTP transport, but over persistent
// TCP connections with length-prefixed frames and multiplexed
// request/response correlation instead of net/http request plumbing.
//
// Frame layout (both directions):
//
//	uint32 big-endian  body length (header + payload, ≤ maxFrameBody)
//	byte               frame kind (request, response, error)
//	byte               method (methodQuery … methodWorkerStats)
//	byte               codec id (JSON or binary; responses echo it)
//	uint64 big-endian  request id (responses echo it)
//	payload            codec-encoded message, or UTF-8 error text
//
// A client writes request frames on one persistent connection and
// correlates responses by id, so any number of in-flight calls —
// including server-side-blocking long polls — share the connection.
// The server dispatches each request frame to its own goroutine and
// serializes response frames through a per-connection writer.

const (
	// frameHeaderLen is the fixed body header: kind + method + codec
	// id + request id.
	frameHeaderLen = 11
	// maxFrameBody caps the declared body length. Decoders reject
	// anything larger before allocating, so a corrupted or hostile
	// length prefix cannot trigger a huge allocation.
	maxFrameBody = 8 << 20
	// frameReadChunk is the read granularity when the body buffer must
	// grow: bytes are copied in at most this many at a time, so the
	// buffer never runs more than one chunk (plus append's geometric
	// slack) ahead of what actually arrived.
	frameReadChunk = 4096
)

// Frame kinds.
const (
	frameRequest byte = iota + 1
	frameResponse
	frameError
)

// Methods multiplexed over one connection (the TCP analogue of the
// HTTP mux paths).
const (
	methodQuery byte = iota + 1
	methodSubmit
	methodResults
	methodPull
	methodComplete
	methodConfigureLB
	methodLBStats
	methodConfigureWorker
	methodWorkerStats
	methodMembership
	methodMax = methodMembership
)

// Codec ids on the wire.
const (
	codecIDJSON byte = iota + 1
	codecIDBinary
	codecIDMax = codecIDBinary
)

func codecByID(id byte) Codec {
	if id == codecIDBinary {
		return CodecBinary
	}
	return CodecJSON
}

func codecID(c Codec) byte {
	if c != nil && c.Name() == CodecNameBinary {
		return codecIDBinary
	}
	return codecIDJSON
}

// ErrTransportClosed is returned by calls on a closed TCP conn or
// transport.
var ErrTransportClosed = errors.New("cluster: transport closed")

// marshalAppender is the optional codec fast path: encode straight
// into the frame buffer instead of allocating an intermediate slice.
type marshalAppender interface {
	MarshalAppend(b []byte, v interface{}) ([]byte, error)
}

// framePool recycles frame buffers across reads and writes. All
// returns go through putFrame, which poisons the buffer first under
// the poolpoison build tag — anything still aliasing a recycled frame
// (a decoded message that kept a payload reference, a response read
// after its call finished) turns to garbage in tests instead of
// silently decoding stale bytes.
var framePool = sync.Pool{New: func() interface{} { b := make([]byte, 0, 4096); return &b }}

func getFrame() *[]byte { return framePool.Get().(*[]byte) }

func putFrame(bp *[]byte) {
	poisonFrame(*bp)
	framePool.Put(bp)
}

// frame is a decoded frame header plus its payload (aliasing the read
// buffer).
type frame struct {
	kind, method, codec byte
	id                  uint64
	payload             []byte
}

// readFrame reads one length-prefixed frame, reusing buf when it is
// large enough. It returns the (possibly grown) buffer for the next
// call. The body buffer grows only as bytes actually arrive, so a
// lying length prefix wastes at most ~2x the received bytes.
func readFrame(br *bufio.Reader, buf []byte) (frame, []byte, error) {
	var lenb [4]byte
	if _, err := io.ReadFull(br, lenb[:]); err != nil {
		return frame{}, buf, err
	}
	n := int(binary.BigEndian.Uint32(lenb[:]))
	if n < frameHeaderLen {
		return frame{}, buf, fmt.Errorf("cluster: tcp frame body %dB shorter than %dB header", n, frameHeaderLen)
	}
	if n > maxFrameBody {
		return frame{}, buf, fmt.Errorf("cluster: tcp frame body %dB exceeds %dB cap", n, maxFrameBody)
	}
	if cap(buf) >= n {
		buf = buf[:n]
		if _, err := io.ReadFull(br, buf); err != nil {
			return frame{}, buf[:0], fmt.Errorf("cluster: tcp frame truncated: %w", err)
		}
	} else {
		buf = buf[:0]
		var chunk [frameReadChunk]byte
		for len(buf) < n {
			step := min(n-len(buf), len(chunk))
			m, err := io.ReadFull(br, chunk[:step])
			buf = append(buf, chunk[:m]...)
			if err != nil {
				return frame{}, buf, fmt.Errorf("cluster: tcp frame truncated: %w", err)
			}
		}
	}
	f := frame{
		kind:    buf[0],
		method:  buf[1],
		codec:   buf[2],
		id:      binary.BigEndian.Uint64(buf[3:frameHeaderLen]),
		payload: buf[frameHeaderLen:n],
	}
	switch {
	case f.kind < frameRequest || f.kind > frameError:
		return frame{}, buf, fmt.Errorf("cluster: tcp frame kind %d invalid", f.kind)
	case f.method < methodQuery || f.method > methodMax:
		return frame{}, buf, fmt.Errorf("cluster: tcp frame method %d invalid", f.method)
	case f.codec < codecIDJSON || f.codec > codecIDMax:
		return frame{}, buf, fmt.Errorf("cluster: tcp frame codec %d invalid", f.codec)
	}
	return f, buf, nil
}

// appendFrame encodes a whole frame into b (which must be the empty
// start of a frame buffer): length prefix, header, and either the
// codec-encoded msg or the error text.
func appendFrame(b []byte, kind, method, cID byte, id uint64, codec Codec, msg interface{}, errText string) ([]byte, error) {
	b = append(b, 0, 0, 0, 0, kind, method, cID)
	b = binary.BigEndian.AppendUint64(b, id)
	switch {
	case errText != "":
		b = append(b, errText...)
	case msg != nil:
		var err error
		if ma, ok := codec.(marshalAppender); ok {
			b, err = ma.MarshalAppend(b, msg)
		} else {
			var data []byte
			data, err = codec.Marshal(msg)
			b = append(b, data...)
		}
		if err != nil {
			return b, err
		}
	}
	if len(b)-4 > maxFrameBody {
		return b, fmt.Errorf("cluster: tcp frame body %dB exceeds %dB cap", len(b)-4, maxFrameBody)
	}
	binary.BigEndian.PutUint32(b[:4], uint32(len(b)-4))
	return b, nil
}

// --- server ---

// tcpService is the server side of the protocol: newRequest returns
// the message a method decodes into (nil for methods with no request
// payload, ok=false for methods the service does not serve), and
// serve runs the fully decoded request. Splitting decode from serve
// lets the dispatcher recycle the frame buffer before serve blocks —
// long polls hold requests open for seconds and must not pin pooled
// buffers.
//
// newRequest hands out pooled structs; the dispatcher owns them and
// returns both request and response to the pools via ReleaseMessage
// once the response frame is written. Handlers therefore must not
// retain anything a request references past serve's return (strings
// are immutable and exempt; the LB interns feature slices into the
// collector arena).
//
// blocking marks the methods that can park for a long-poll wait; only
// those get their own dispatch goroutine. Quick methods (submit,
// complete, configure, stats) serve inline on the read loop, saving
// the spawn and letting consecutive responses share one coalesced
// flush.
type tcpService interface {
	newRequest(method byte) (msg interface{}, ok bool)
	serve(ctx context.Context, method byte, req interface{}) (interface{}, error)
	blocking(method byte) bool
}

// TCPServer serves a component's API over the framed TCP protocol.
// Construct one with ServeLBTCP or ServeWorkerTCP.
type TCPServer struct {
	lis    net.Listener
	svc    tcpService
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
}

// ServeLBTCP listens on addr (e.g. ":8100", or "127.0.0.1:0" for an
// ephemeral loopback port) and serves the load balancer's full data
// and control plane over framed TCP.
func ServeLBTCP(addr string, s *LBServer) (*TCPServer, error) {
	return newTCPServer(addr, lbService{s})
}

// ServeWorkerTCP listens on addr and serves a worker's control plane
// over framed TCP.
func ServeWorkerTCP(addr string, s *WorkerServer) (*TCPServer, error) {
	return newTCPServer(addr, workerService{s})
}

// lbService adapts an LBServer to the framed-TCP protocol.
type lbService struct{ s *LBServer }

func (lbService) newRequest(method byte) (interface{}, bool) {
	switch method {
	case methodQuery:
		return getQueryMsg(), true
	case methodSubmit:
		return getSubmitRequest(), true
	case methodResults:
		return getResultsRequest(), true
	case methodPull:
		return getPullRequest(), true
	case methodComplete:
		return getCompleteRequest(), true
	case methodConfigureLB:
		return getConfigureLBRequest(), true
	case methodLBStats:
		return nil, true
	case methodMembership:
		return nil, true
	}
	return nil, false
}

func (lbService) blocking(method byte) bool {
	// Submit long-polls for its query's resolution; results and pull
	// park on their wait windows. Everything else returns promptly.
	return method == methodQuery || method == methodResults || method == methodPull
}

func (l lbService) serve(ctx context.Context, method byte, req interface{}) (interface{}, error) {
	switch method {
	case methodQuery:
		resp, ok := l.s.Submit(ctx, *req.(*QueryMsg))
		if !ok {
			return nil, errors.New("query cancelled")
		}
		return &resp, nil
	case methodSubmit:
		l.s.SubmitBatchReq(*req.(*SubmitRequest))
		return nil, nil
	case methodResults:
		resp := getResultsResponse()
		l.s.PollResultsInto(ctx, *req.(*ResultsRequest), resp)
		return resp, nil
	case methodPull:
		resp := getPullResponse()
		l.s.PullInto(ctx, *req.(*PullRequest), resp)
		return resp, nil
	case methodComplete:
		l.s.Complete(*req.(*CompleteRequest))
		return nil, nil
	case methodConfigureLB:
		l.s.Configure(*req.(*ConfigureLBRequest))
		return nil, nil
	case methodLBStats:
		out := l.s.Stats()
		return &out, nil
	case methodMembership:
		out := l.s.Membership()
		return &out, nil
	}
	return nil, fmt.Errorf("method %d not served by the load balancer", method)
}

// workerService adapts a WorkerServer's control plane to the
// framed-TCP protocol.
type workerService struct{ s *WorkerServer }

func (workerService) newRequest(method byte) (interface{}, bool) {
	switch method {
	case methodConfigureWorker:
		return getConfigureWorkerRequest(), true
	case methodWorkerStats:
		return nil, true
	}
	return nil, false
}

func (workerService) blocking(byte) bool { return false }

func (w workerService) serve(ctx context.Context, method byte, req interface{}) (interface{}, error) {
	switch method {
	case methodConfigureWorker:
		w.s.Configure(*req.(*ConfigureWorkerRequest))
		return nil, nil
	case methodWorkerStats:
		out := w.s.Stats()
		return &out, nil
	}
	return nil, fmt.Errorf("method %d not served by the worker", method)
}

func newTCPServer(addr string, svc tcpService) (*TCPServer, error) {
	lis, err := net.Listen("tcp", tcpAddr(addr))
	if err != nil {
		return nil, fmt.Errorf("cluster: tcp listen %s: %w", addr, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &TCPServer{
		lis: lis, svc: svc, ctx: ctx, cancel: cancel,
		conns: make(map[net.Conn]struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's listen address ("host:port").
func (s *TCPServer) Addr() string { return s.lis.Addr().String() }

// Close stops accepting, closes every connection (cancelling in-flight
// long polls), and waits for the serving goroutines to drain.
func (s *TCPServer) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	s.cancel()
	s.lis.Close()
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
}

func (s *TCPServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.lis.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *TCPServer) serveConn(conn net.Conn) {
	defer s.wg.Done()
	ctx, cancel := context.WithCancel(s.ctx)
	defer cancel()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()

	br := bufio.NewReaderSize(conn, 32<<10)
	w := &frameWriter{conn: conn, bw: bufio.NewWriterSize(conn, 32<<10)}
	for {
		bp := getFrame()
		f, buf, err := readFrame(br, (*bp)[:0])
		*bp = buf
		if err != nil {
			putFrame(bp)
			return // closed, EOF, or protocol violation: drop the conn
		}
		if f.kind != frameRequest {
			putFrame(bp)
			return
		}
		s.wg.Add(1)
		if s.svc.blocking(f.method) {
			// Long polls get their own goroutine so they never block the
			// connection's other in-flight requests.
			go s.dispatch(ctx, w, f, bp)
		} else {
			// Quick methods serve inline: no spawn, and consecutive
			// responses on a busy connection share one coalesced flush.
			s.dispatch(ctx, w, f, bp)
		}
	}
}

// dispatch runs one request to completion and writes its response.
// The frame buffer is recycled as soon as the request is decoded —
// before serve blocks — and the pooled request/response messages go
// back to their pools once the response frame is written (handlers
// must not retain them; see tcpService).
func (s *TCPServer) dispatch(ctx context.Context, w *frameWriter, f frame, bp *[]byte) {
	defer s.wg.Done()
	codec := codecByID(f.codec)
	req, known := s.svc.newRequest(f.method)
	if !known {
		putFrame(bp)
		w.write(frameError, f.method, f.codec, f.id, codec, nil,
			fmt.Sprintf("method %d not supported", f.method))
		return
	}
	if req != nil {
		if f.codec != codecIDBinary {
			// JSON merges into dirty targets (absent fields keep their
			// stale values), so pooled requests must be zeroed for it.
			// The binary decoder overwrites every field and may reuse
			// the dirty capacity directly.
			zeroWireMessage(req)
		}
		if err := codec.Unmarshal(f.payload, req); err != nil {
			putFrame(bp)
			ReleaseMessage(req)
			w.write(frameError, f.method, f.codec, f.id, codec, nil, err.Error())
			return
		}
	}
	putFrame(bp)
	resp, err := s.svc.serve(ctx, f.method, req)
	if req != nil {
		ReleaseMessage(req)
	}
	if err != nil {
		w.write(frameError, f.method, f.codec, f.id, codec, nil, err.Error())
		return
	}
	w.write(frameResponse, f.method, f.codec, f.id, codec, resp, "")
	if resp != nil {
		ReleaseMessage(resp)
	}
}

// frameWriter serializes response frames onto one connection. The
// first write failure closes the connection: responses can never be
// delivered again, so continuing to read and execute the peer's
// requests would apply side effects the peer never hears about.
// Closing unblocks the connection's read loop, which tears the
// serving state down and cancels in-flight handlers.
//
// Flushes are coalesced: writers announce themselves on the atomic
// counter before taking the lock, and only the writer that brings the
// counter back to zero flushes. Under a burst of concurrent responses
// (the sharded frontend resolving a fan-out, a worker group's pulls
// firing together) the buffered frames go out in one syscall instead
// of one per response; a lone writer still flushes immediately, so
// latency is unchanged when idle.
type frameWriter struct {
	conn    net.Conn
	writers atomic.Int32 // announced-but-not-yet-written frames
	mu      sync.Mutex
	bw      *bufio.Writer
	err     error
}

func (w *frameWriter) write(kind, method, cID byte, id uint64, codec Codec, msg interface{}, errText string) {
	bp := getFrame()
	b, err := appendFrame((*bp)[:0], kind, method, cID, id, codec, msg, errText)
	if err != nil {
		// Encoding failed: report the failure instead of the payload.
		b, err = appendFrame(b[:0], frameError, method, cID, id, codec, nil, err.Error())
	}
	if err == nil {
		w.writers.Add(1)
		w.mu.Lock()
		wasDead := w.err != nil
		if w.err == nil {
			if _, werr := w.bw.Write(b); werr != nil {
				w.err = werr
			}
		}
		// Last announced writer flushes for everyone; any writer that
		// announced after our Add(1) is guaranteed to reach its own
		// flush check, so buffered frames never strand.
		if w.writers.Add(-1) == 0 && w.err == nil {
			w.err = w.bw.Flush()
		}
		if w.err != nil && !wasDead {
			w.conn.Close()
		}
		w.mu.Unlock()
	}
	*bp = b
	putFrame(bp)
}

// --- client ---

// tcpDialAttempts bounds connection-establishment retries before a
// call fails and the transport reports the error.
const tcpDialAttempts = 5

// tcpClient multiplexes calls over one persistent framed connection,
// redialing (with backoff) when the connection is lost.
type tcpClient struct {
	addr  string
	codec Codec
	cID   byte
	errs  chan<- error // fatal transport errors (nil: unreported)

	// closed is atomic so Close takes effect immediately even while
	// a dial-retry cycle is in flight.
	closed atomic.Bool

	mu      sync.Mutex
	cs      *tcpConnState // nil when disconnected
	dialing chan struct{} // non-nil while one caller redials
}

// tcpConnState is the per-connection half of the client: the
// correlation slot table and the writer, both tied to one net.Conn's
// lifetime.
//
// Correlation is by reusable slot, not by per-call channel: a frame
// id encodes a slot index (low 32 bits) and that slot's generation
// (high 32 bits). A call acquires a free slot, bumps nothing, and
// waits on the slot's persistent 1-buffered channel; releasing the
// slot increments its generation, so a response that arrives after
// its call was cancelled fails the generation check and is discarded
// instead of being delivered to the slot's next occupant. The table
// grows to the connection's high-water concurrency and is then
// allocation-free.
type tcpConnState struct {
	client *tcpClient
	conn   net.Conn
	bw     *bufio.Writer

	// writers counts announced-but-not-yet-written request frames for
	// coalesced flushing (same discipline as frameWriter).
	writers atomic.Int32

	mu    sync.Mutex
	slots []*tcpSlot
	free  []uint32 // free slot indexes, LIFO for cache warmth
	dead  bool
	err   error
}

// tcpSlot is one reusable waiter: the channel survives across calls.
type tcpSlot struct {
	ch   chan tcpResult
	gen  uint32
	busy bool
}

// acquireSlotLocked returns a slot and the frame id encoding it.
// Callers must hold cs.mu.
func (cs *tcpConnState) acquireSlotLocked() (*tcpSlot, uint64) {
	var idx uint32
	if n := len(cs.free); n > 0 {
		idx = cs.free[n-1]
		cs.free = cs.free[:n-1]
	} else {
		idx = uint32(len(cs.slots))
		cs.slots = append(cs.slots, &tcpSlot{ch: make(chan tcpResult, 1)})
	}
	sl := cs.slots[idx]
	sl.busy = true
	return sl, uint64(sl.gen)<<32 | uint64(idx)
}

// releaseSlotLocked retires a call's slot: the generation bump
// invalidates any response still in flight, and a result that raced
// into the buffer is drained so the next occupant starts clean.
// Callers must hold cs.mu.
func (cs *tcpConnState) releaseSlotLocked(id uint64) {
	idx := uint32(id)
	sl := cs.slots[idx]
	sl.busy = false
	sl.gen++
	select {
	case res := <-sl.ch:
		if res.bp != nil {
			putFrame(res.bp)
		}
	default:
	}
	cs.free = append(cs.free, idx)
}

type tcpResult struct {
	bp      *[]byte // pooled payload buffer (nil on error)
	payload []byte
	err     error
}

func newTCPClient(addr string, codec Codec, errs chan<- error) *tcpClient {
	if codec == nil {
		codec = CodecBinary
	}
	return &tcpClient{addr: tcpAddr(addr), codec: codec, cID: codecID(codec), errs: errs}
}

// tcpAddr strips an optional tcp:// scheme so flags accept both
// "host:port" and "tcp://host:port".
func tcpAddr(addr string) string {
	return strings.TrimPrefix(addr, "tcp://")
}

// checkTCPAddr rejects addresses carrying a non-tcp scheme before
// they reach the dialer, where an http:// base URL (the HTTP flags'
// default) would otherwise burn the full retry budget resolving a
// nonsense host and fail without naming the actual mistake.
func checkTCPAddr(addr string) error {
	if i := strings.Index(addr, "://"); i >= 0 && addr[:i] != "tcp" {
		return fmt.Errorf("cluster: %q has scheme %q — the tcp transport takes host:port (or tcp://host:port) addresses", addr, addr[:i])
	}
	return nil
}

func (c *tcpClient) report(err error) {
	if c.errs == nil || c.closed.Load() {
		return // failures after Close are teardown, not faults
	}
	select {
	case c.errs <- err:
	default:
	}
}

// connState returns the live connection state, dialing if
// disconnected. Dialing is single-flight and runs WITHOUT holding
// c.mu, so concurrent callers wait on a channel and stay
// interruptible by their own contexts instead of queueing
// uninterruptibly on the mutex through a multi-second retry cycle.
func (c *tcpClient) connState(ctx context.Context) (*tcpConnState, error) {
	for {
		c.mu.Lock()
		if c.closed.Load() {
			c.mu.Unlock()
			return nil, ErrTransportClosed
		}
		if c.cs != nil {
			cs := c.cs
			c.mu.Unlock()
			return cs, nil
		}
		if c.dialing == nil {
			// This caller dials; everyone else waits on done.
			done := make(chan struct{})
			c.dialing = done
			c.mu.Unlock()

			cs, err := c.dial(ctx)
			c.mu.Lock()
			c.dialing = nil
			if err == nil {
				if c.closed.Load() {
					err = ErrTransportClosed
					cs.conn.Close()
				} else {
					c.cs = cs
					go cs.readLoop()
				}
			}
			c.mu.Unlock()
			close(done)
			if err != nil {
				return nil, err
			}
			continue
		}
		done := c.dialing
		c.mu.Unlock()
		select {
		case <-done:
			// Re-check: the dial succeeded or this caller retries it.
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// dial establishes one connection, retrying with backoff. It holds no
// client locks; the retry loop aborts early when the client is closed
// or ctx is cancelled. Exhausting the retries is a fatal transport
// error: it is pushed to the error channel and returned.
func (c *tcpClient) dial(ctx context.Context) (*tcpConnState, error) {
	var err error
	backoff := 10 * time.Millisecond
	for i := 0; i < tcpDialAttempts; i++ {
		if c.closed.Load() {
			return nil, ErrTransportClosed
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if i > 0 {
			t := time.NewTimer(backoff)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return nil, ctx.Err()
			}
			backoff *= 2
		}
		var conn net.Conn
		conn, err = net.DialTimeout("tcp", c.addr, 2*time.Second)
		if err != nil {
			continue
		}
		return &tcpConnState{
			client: c, conn: conn,
			bw: bufio.NewWriterSize(conn, 32<<10),
		}, nil
	}
	err = fmt.Errorf("cluster: tcp dial %s: %w (after %d attempts)", c.addr, err, tcpDialAttempts)
	c.report(err)
	return nil, err
}

// call performs one request/response round trip. in may be nil (empty
// request payload); out may be nil (response payload discarded).
func (c *tcpClient) call(ctx context.Context, method byte, in, out interface{}) error {
	if ctx == nil {
		ctx = context.Background()
	}
	// Encode the request frame before touching any lock; the request
	// id is patched in once assigned.
	bp := getFrame()
	b, err := appendFrame((*bp)[:0], frameRequest, method, c.cID, 0, c.codec, in, "")
	if err != nil {
		*bp = b
		putFrame(bp)
		return fmt.Errorf("cluster: tcp marshal method %d: %w", method, err)
	}

	cs, err := c.connState(ctx)
	if err != nil {
		*bp = b
		putFrame(bp)
		return err
	}

	// Announce the pending write before taking the lock so concurrent
	// callers' frames share one coalesced flush (see frameWriter).
	cs.writers.Add(1)
	cs.mu.Lock()
	if cs.dead {
		cs.writers.Add(-1)
		err := cs.err
		cs.mu.Unlock()
		*bp = b
		putFrame(bp)
		return err
	}
	sl, id := cs.acquireSlotLocked()
	binary.BigEndian.PutUint64(b[7:7+8], id)
	_, werr := cs.bw.Write(b)
	if cs.writers.Add(-1) == 0 && werr == nil {
		werr = cs.bw.Flush()
	}
	cs.mu.Unlock()
	*bp = b
	putFrame(bp)

	if werr != nil {
		cs.fail(fmt.Errorf("cluster: tcp write %s: %w", c.addr, werr))
		// fail resolved every busy slot, ours included — but a response
		// that raced in before the failure still counts, so the result
		// is handled exactly like the normal path.
	}
	var res tcpResult
	select {
	case res = <-sl.ch:
	case <-ctx.Done():
		cs.mu.Lock()
		cs.releaseSlotLocked(id)
		cs.mu.Unlock()
		return ctx.Err()
	}
	cs.mu.Lock()
	cs.releaseSlotLocked(id)
	cs.mu.Unlock()
	return c.finish(res, out)
}

// finish decodes one call's resolved result into out and recycles the
// response buffer.
func (c *tcpClient) finish(res tcpResult, out interface{}) error {
	if res.err != nil {
		return res.err
	}
	var err error
	if out != nil {
		err = c.codec.Unmarshal(res.payload, out)
	}
	if res.bp != nil {
		putFrame(res.bp)
	}
	return err
}

// Close tears down the connection and fails in-flight calls. Further
// calls return ErrTransportClosed. The atomic flag also aborts any
// dial-retry cycle in progress before taking the lock.
func (c *tcpClient) Close() {
	c.closed.Store(true)
	c.mu.Lock()
	cs := c.cs
	c.cs = nil
	c.mu.Unlock()
	if cs != nil {
		cs.fail(ErrTransportClosed)
	}
}

// fail marks the connection dead exactly once, resolving every
// busy slot with err. The next call on the client redials. Sends are
// non-blocking: a slot whose real response already raced into its
// buffer keeps that response.
func (cs *tcpConnState) fail(err error) {
	cs.conn.Close()
	cs.mu.Lock()
	if !cs.dead {
		cs.dead = true
		cs.err = err
		for _, sl := range cs.slots {
			if !sl.busy {
				continue
			}
			select {
			case sl.ch <- tcpResult{err: err}:
			default:
			}
		}
	}
	cs.mu.Unlock()

	c := cs.client
	c.mu.Lock()
	if c.cs == cs {
		c.cs = nil
	}
	c.mu.Unlock()
}

// readLoop receives response frames and resolves waiting calls by
// slot. The generation check and the channel send happen under cs.mu,
// so a concurrent cancel (which bumps the generation and drains the
// slot) can never be interleaved with a stale delivery.
func (cs *tcpConnState) readLoop() {
	br := bufio.NewReaderSize(cs.conn, 32<<10)
	for {
		bp := getFrame()
		f, buf, err := readFrame(br, (*bp)[:0])
		*bp = buf
		if err != nil {
			putFrame(bp)
			cs.fail(fmt.Errorf("cluster: tcp read %s: %w", cs.client.addr, err))
			return
		}
		if f.kind != frameResponse && f.kind != frameError {
			// A request frame from the server: protocol violation.
			putFrame(bp)
			cs.fail(fmt.Errorf("cluster: tcp %s sent frame kind %d", cs.client.addr, f.kind))
			return
		}
		idx, gen := uint32(f.id), uint32(f.id>>32)
		cs.mu.Lock()
		var sl *tcpSlot
		if int64(idx) < int64(len(cs.slots)) {
			if s := cs.slots[idx]; s.busy && s.gen == gen {
				sl = s
			}
		}
		if sl == nil {
			cs.mu.Unlock()
			putFrame(bp) // call cancelled (or never existed): drop it
			continue
		}
		var res tcpResult
		if f.kind == frameResponse {
			// The slot's waiter takes ownership of the frame buffer.
			res = tcpResult{bp: bp, payload: f.payload}
		} else {
			res = tcpResult{err: errors.New("cluster: tcp remote: " + string(f.payload))}
		}
		delivered := false
		select {
		case sl.ch <- res:
			delivered = true
		default: // duplicate response for the id: drop it
		}
		cs.mu.Unlock()
		if !delivered || res.bp == nil {
			putFrame(bp)
		}
	}
}

// --- conns ---

type tcpLBConn struct{ c *tcpClient }

// NewTCPLBConn connects to a framed-TCP load balancer at addr
// ("host:port"; a tcp:// prefix is accepted). A nil codec defaults to
// the binary codec. The connection is persistent and multiplexed;
// it is established lazily and redialed with backoff after failures.
func NewTCPLBConn(addr string, codec Codec) LBConn {
	return tcpLBConn{newTCPClient(addr, codec, nil)}
}

func (c tcpLBConn) Submit(ctx context.Context, q QueryMsg) (QueryResponse, error) {
	var resp QueryResponse
	err := c.c.call(ctx, methodQuery, &q, &resp)
	return resp, err
}

func (c tcpLBConn) SubmitBatch(ctx context.Context, req SubmitRequest) error {
	return c.c.call(ctx, methodSubmit, &req, nil)
}

func (c tcpLBConn) PollResults(ctx context.Context, req ResultsRequest) (ResultsResponse, error) {
	var resp ResultsResponse
	err := c.c.call(ctx, methodResults, &req, &resp)
	return resp, err
}

func (c tcpLBConn) Pull(ctx context.Context, req PullRequest) (PullResponse, error) {
	var resp PullResponse
	err := c.c.call(ctx, methodPull, &req, &resp)
	return resp, err
}

// PollResultsInto and PullInto decode straight into the caller's
// response struct, reusing its slice capacity across calls (the
// ReusingLBConn capability). Only the binary codec overwrites every
// field on decode; the JSON codec merges into dirty targets, so it
// falls back to a fresh decode.

func (c tcpLBConn) PollResultsInto(ctx context.Context, req ResultsRequest, resp *ResultsResponse) error {
	if c.c.cID != codecIDBinary {
		out, err := c.PollResults(ctx, req)
		*resp = out
		return err
	}
	return c.c.call(ctx, methodResults, &req, resp)
}

func (c tcpLBConn) PullInto(ctx context.Context, req PullRequest, resp *PullResponse) error {
	if c.c.cID != codecIDBinary {
		out, err := c.Pull(ctx, req)
		*resp = out
		return err
	}
	return c.c.call(ctx, methodPull, &req, resp)
}

func (c tcpLBConn) Complete(ctx context.Context, req CompleteRequest) error {
	return c.c.call(ctx, methodComplete, &req, nil)
}

func (c tcpLBConn) Configure(ctx context.Context, req ConfigureLBRequest) error {
	return c.c.call(ctx, methodConfigureLB, &req, nil)
}

func (c tcpLBConn) Stats(ctx context.Context) (LBStats, error) {
	var out LBStats
	err := c.c.call(ctx, methodLBStats, nil, &out)
	return out, err
}

func (c tcpLBConn) Membership(ctx context.Context) (MembershipResponse, error) {
	var out MembershipResponse
	err := c.c.call(ctx, methodMembership, nil, &out)
	return out, err
}

type tcpWorkerConn struct{ c *tcpClient }

// NewTCPWorkerConn connects to a worker's framed-TCP control plane.
func NewTCPWorkerConn(addr string, codec Codec) WorkerConn {
	return tcpWorkerConn{newTCPClient(addr, codec, nil)}
}

func (c tcpWorkerConn) Configure(ctx context.Context, req ConfigureWorkerRequest) error {
	return c.c.call(ctx, methodConfigureWorker, &req, nil)
}

func (c tcpWorkerConn) Stats(ctx context.Context) (WorkerStats, error) {
	var out WorkerStats
	err := c.c.call(ctx, methodWorkerStats, nil, &out)
	return out, err
}

// --- transport ---

// tcpTransport serves components on loopback TCP listeners and
// connects them with persistent multiplexed framed connections.
type tcpTransport struct {
	codec Codec
	errs  chan error

	mu    sync.Mutex
	srvs  []*TCPServer
	conns []*tcpClient
}

func newTCPTransport(codec Codec) *tcpTransport {
	return &tcpTransport{codec: codec, errs: make(chan error, 8)}
}

func (t *tcpTransport) Name() string { return TransportTCP }

func (t *tcpTransport) Errors() <-chan error { return t.errs }

func (t *tcpTransport) ServeLB(s *LBServer) (LBConn, error) {
	srv, err := ServeLBTCP("127.0.0.1:0", s)
	if err != nil {
		return nil, err
	}
	cl := newTCPClient(srv.Addr(), t.codec, t.errs)
	t.mu.Lock()
	t.srvs = append(t.srvs, srv)
	t.conns = append(t.conns, cl)
	t.mu.Unlock()
	return tcpLBConn{cl}, nil
}

func (t *tcpTransport) ServeWorker(s *WorkerServer) (WorkerConn, error) {
	srv, err := ServeWorkerTCP("127.0.0.1:0", s)
	if err != nil {
		return nil, err
	}
	cl := newTCPClient(srv.Addr(), t.codec, t.errs)
	t.mu.Lock()
	t.srvs = append(t.srvs, srv)
	t.conns = append(t.conns, cl)
	t.mu.Unlock()
	return tcpWorkerConn{cl}, nil
}

func (t *tcpTransport) Close() {
	t.mu.Lock()
	conns, srvs := t.conns, t.srvs
	t.conns, t.srvs = nil, nil
	t.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	for _, s := range srvs {
		s.Close()
	}
}

// closeServers kills only the server side — listeners and accepted
// connections — leaving the clients to discover the loss, redial, and
// exhaust their retries. Tests use it to inject mid-run failures.
func (t *tcpTransport) closeServers() {
	t.mu.Lock()
	srvs := t.srvs
	t.mu.Unlock()
	for _, s := range srvs {
		s.Close()
	}
}
