package cluster

import (
	"context"
	"testing"
	"time"

	"diffserve/internal/loadbalancer"
)

// TestChaosWorkerChurnNoLostQueries is the fault-tolerance soak: a
// full pull-lease cluster (real WorkerServers executing the simulated
// models) runs a trace while a chaos driver kills three busy workers,
// severs two worker conns mid-trace, and a FaultTransport injects
// random request drops, response drops, and latency spikes on every
// data-path call. A deterministic zombie — a puller that takes a
// batch and abandons it, then reports it long after the lease sweep
// reclaimed it — exercises the reclaim and late-completion paths
// end to end.
//
// The invariant is exactly-once resolution, accounted server-side
// (injected response drops make any client-side count lossy): every
// submitted query ends Completed or deliberately Dropped, the two sum
// to exactly the number submitted, and the result stream carries each
// ID exactly once. The verify script's race-chaos leg runs this test
// under -race.
func TestChaosWorkerChurnNoLostQueries(t *testing.T) {
	const (
		batches   = 40
		batchSize = 10
		total     = batches * batchSize
		leaseDur  = 10.0 // trace seconds
		nLight    = 4
		nHeavy    = 2
		threshold = 0.5
	)
	f := newFixtures(t)
	clock := NewClock(1e-3)
	lb := NewLBServer(LBConfig{
		Mode: loadbalancer.ModeCascade, SLO: 1e9,
		LightMinExec: 0.1, HeavyMinExec: 1.78,
		Clock: clock, Seed: 7, CoalesceWait: 1e-9,
		LeaseDuration: leaseDur, LeaseRedeliveries: 6,
	})
	lb.Configure(ConfigureLBRequest{Threshold: threshold})

	// Two fault layers over the same server. The client layer injects
	// request drops and latency only: a SubmitBatch whose RESPONSE is
	// dropped would be retried after the server admitted it, and a
	// duplicate admission that lands after the first copy resolved is
	// a second registration — at-least-once submit is the documented
	// client contract (see retryLBConn), but this test pins
	// exactly-once accounting, so the submit path only suffers faults
	// a retry can heal losslessly. The worker layer additionally drops
	// responses: a lost Pull reply strands a lease for the sweep to
	// reclaim, and a lost Complete reply makes the worker re-report a
	// batch the server already resolved — the duplicate-delivery
	// idempotency under test.
	ftClient := NewFaultTransport(localTransport{}, FaultPlan{
		Seed: 11, Clock: clock,
		DropRequestProb: 0.05, LatencyProb: 0.05, LatencySecs: 0.2,
	})
	defer ftClient.Close()
	ftWorker := NewFaultTransport(localTransport{}, FaultPlan{
		Seed: 13, Clock: clock,
		DropRequestProb: 0.03, DropResponseProb: 0.05,
		LatencyProb: 0.05, LatencySecs: 0.2,
	})
	defer ftWorker.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	pol := func(seed uint64) RetryPolicy {
		return RetryPolicy{Attempts: 5, Base: 200 * time.Microsecond, Cap: 2 * time.Millisecond, Seed: seed}
	}
	workerConn := func(seed uint64) LBConn {
		inner, err := ftWorker.ServeLB(lb)
		if err != nil {
			t.Fatal(err)
		}
		return NewRetryingLBConn(inner, pol(seed))
	}

	type liveWorker struct {
		ws     *WorkerServer
		cancel context.CancelFunc
		done   chan struct{}
	}
	startWorker := func(id int, role string) *liveWorker {
		ws := NewWorkerServer(WorkerConfig{
			ID: id, LB: workerConn(uint64(id)),
			Space: f.space, Light: f.light, Heavy: f.heavy, Scorer: f.scorer,
			Clock: clock, DisableLoadDelay: true,
			RedialAfter: 2, CompleteRetries: 5,
			Redial: func(epoch int) LBConn { return workerConn(uint64(id) + 100) },
		})
		ws.Configure(ConfigureWorkerRequest{Role: role, Batch: 4})
		wctx, wcancel := context.WithCancel(ctx)
		done := make(chan struct{})
		go func() { defer close(done); ws.Loop(wctx) }()
		return &liveWorker{ws: ws, cancel: wcancel, done: done}
	}

	workers := map[int]*liveWorker{}
	roleOf := func(id int) string {
		if id%(nLight+nHeavy) < nLight {
			return "light"
		}
		return "heavy"
	}
	for id := 0; id < nLight+nHeavy; id++ {
		workers[id] = startWorker(id, roleOf(id))
	}

	// Submitter: paced batches through the retrying faulted client
	// conn, so admission itself survives injected request drops.
	subConnRaw, err := ftClient.ServeLB(lb)
	if err != nil {
		t.Fatal(err)
	}
	subConn := NewRetryingLBConn(subConnRaw, pol(21))
	submitDone := make(chan struct{})
	go func() {
		defer close(submitDone)
		for b := 0; b < batches && ctx.Err() == nil; b++ {
			qs := make([]QueryMsg, batchSize)
			for i := range qs {
				qs[i] = QueryMsg{ID: b*batchSize + i}
			}
			if err := subConn.SubmitBatch(ctx, SubmitRequest{Queries: qs}); err != nil {
				t.Errorf("submit batch %d: %v", b, err)
				return
			}
			clock.SleepTraceCtx(ctx, 0.3)
		}
	}()

	// Result poller: single destructive reader on the client fault
	// layer (request drops retry losslessly; responses are never
	// dropped on this layer, so nothing popped here can vanish).
	pollConnRaw, err := ftClient.ServeLB(lb)
	if err != nil {
		t.Fatal(err)
	}
	pollConn := NewRetryingLBConn(pollConnRaw, pol(22))
	seen := make(map[int]int, total)
	pollDone := make(chan struct{})
	go func() {
		defer close(pollDone)
		for len(seen) < total && ctx.Err() == nil {
			resp, err := pollConn.PollResults(ctx, ResultsRequest{Max: 64, Wait: 5})
			if err != nil {
				continue
			}
			for _, r := range resp.Results {
				seen[r.ID]++
			}
		}
	}()

	// Zombie: pull a light batch directly, abandon it past the lease's
	// hard deadline so the sweep reclaims it, then report it anyway.
	// The late completion must be a no-op whoever won the race.
	zombie := NewLocalLBConn(lb)
	var zombiePull PullResponse
	for len(zombiePull.Queries) == 0 && ctx.Err() == nil {
		zombiePull, _ = zombie.Pull(ctx, PullRequest{WorkerID: 99, Role: "light", Max: 4, Wait: 5})
	}
	if zombiePull.LeaseDeadline <= 0 {
		t.Fatalf("pull response carries no lease deadline: %+v", zombiePull)
	}

	// Chaos: kill three workers while they hold leased batches, and
	// sever two of the survivors' conns for a window long enough to
	// exhaust their retries and force a redial.
	killBusy := func(id int) {
		w := workers[id]
		deadline := time.Now().Add(5 * time.Second)
		for !w.ws.Stats().Busy && time.Now().Before(deadline) && ctx.Err() == nil {
			time.Sleep(100 * time.Microsecond)
		}
		w.cancel()
		<-w.done
		delete(workers, id)
	}
	killBusy(0)
	killBusy(1)
	killBusy(nLight) // one heavy worker too
	now := clock.Now()
	ftWorker.Partition(2, now, now+40, FaultSever)
	ftWorker.Partition(3, now, now+40, FaultSever)
	// Replacements keep the cluster live (fresh IDs, fresh conns).
	for _, id := range []int{6, 7, 10} {
		workers[id] = startWorker(id, roleOf(id))
	}

	// The zombie's abandoned lease expires hard at grant + 4x the
	// duration; live workers' pulls run the sweep past that point.
	clock.SleepTraceCtx(ctx, 5*leaseDur)
	zreq := CompleteRequest{WorkerID: 99, Role: "light", LeaseDeadline: zombiePull.LeaseDeadline}
	for _, q := range zombiePull.Queries {
		zreq.Items = append(zreq.Items, CompleteItem{ID: q.ID, Arrival: q.Arrival, Variant: "light", Confidence: 0.9})
	}
	if err := zombie.Complete(ctx, zreq); err != nil {
		t.Fatalf("zombie complete: %v", err)
	}

	// Wait for full resolution. Stats polling doubles as the sweep of
	// last resort, so a tail where every worker is between pulls still
	// makes progress.
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		st := lb.Stats()
		if st.Completed+st.Dropped >= total {
			break
		}
		time.Sleep(time.Millisecond)
	}

	st := lb.Stats()
	if st.Completed+st.Dropped != total {
		t.Fatalf("resolved %d completed + %d dropped of %d submitted (lost or double-resolved)",
			st.Completed, st.Dropped, total)
	}
	if st.Reclaims == 0 {
		t.Errorf("lease sweep never reclaimed (zombie batch of %d abandoned)", len(zombiePull.Queries))
	}
	if st.InFlight != 0 {
		t.Errorf("%d leases still in flight after full resolution", st.InFlight)
	}

	<-submitDone
	select {
	case <-pollDone:
	case <-time.After(30 * time.Second):
		t.Fatalf("result stream wedged: saw %d of %d IDs", len(seen), total)
	}
	for id, n := range seen {
		if n != 1 {
			t.Errorf("query %d surfaced %d times in the result stream", id, n)
		}
	}
	if len(seen) != total {
		t.Errorf("result stream carried %d of %d IDs", len(seen), total)
	}
	cancel()
	for _, w := range workers {
		<-w.done
	}
	t.Logf("chaos soak: %d queries, %d reclaims, %d shed, %d late completions",
		total, st.Reclaims, st.ShedRedelivery, st.LateCompletions)
}
