package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomSymmetric(r *rand.Rand, n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := r.NormFloat64()
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
	return m
}

func randomPSD(r *rand.Rand, n int) *Matrix {
	// A^T A is PSD for any A.
	a := NewMatrix(n, n)
	for i := range a.Data {
		a.Data[i] = r.NormFloat64()
	}
	return a.Transpose().Mul(a).Symmetrize()
}

func matApproxEqual(a, b *Matrix, tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := range a.Data {
		if math.Abs(a.Data[i]-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 0, 1)
	m.Set(1, 2, 5)
	if m.At(0, 0) != 1 || m.At(1, 2) != 5 || m.At(0, 1) != 0 {
		t.Fatal("Set/At mismatch")
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 1 {
		t.Error("Clone shares storage")
	}
	tr := m.Transpose()
	if tr.Rows != 3 || tr.Cols != 2 || tr.At(2, 1) != 5 {
		t.Error("Transpose wrong")
	}
}

func TestMatrixAddSubScale(t *testing.T) {
	a := Diag([]float64{1, 2})
	b := Diag([]float64{3, 4})
	if got := a.Add(b).Trace(); got != 10 {
		t.Errorf("Add trace = %v", got)
	}
	if got := b.Sub(a).Trace(); got != 4 {
		t.Errorf("Sub trace = %v", got)
	}
	if got := a.Scale(3).Trace(); got != 9 {
		t.Errorf("Scale trace = %v", got)
	}
}

func TestMatrixMulIdentity(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	a := randomSymmetric(r, 5)
	if !matApproxEqual(a.Mul(Identity(5)), a, 1e-12) {
		t.Error("A*I != A")
	}
	if !matApproxEqual(Identity(5).Mul(a), a, 1e-12) {
		t.Error("I*A != A")
	}
}

func TestMatrixMulKnown(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 3)
	a.Set(1, 1, 4)
	b := a.Mul(a)
	want := [][]float64{{7, 10}, {15, 22}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if b.At(i, j) != want[i][j] {
				t.Errorf("(%d,%d) = %v, want %v", i, j, b.At(i, j), want[i][j])
			}
		}
	}
}

func TestShapePanics(t *testing.T) {
	a := NewMatrix(2, 3)
	b := NewMatrix(3, 3)
	for _, fn := range []func(){
		func() { a.Add(b) },
		func() { a.Sub(b) },
		func() { b.Mul(a.Transpose().Transpose()) }, // 3x3 * 2x3
		func() { a.Trace() },
		func() { NewMatrix(0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected shape panic")
				}
			}()
			fn()
		}()
	}
}

func TestEigSymReconstruction(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		n := 2 + r.Intn(10)
		a := randomSymmetric(r, n)
		w, v, err := EigSym(a)
		if err != nil {
			t.Fatalf("EigSym: %v", err)
		}
		// Reconstruct V diag(w) V^T.
		rec := v.Mul(Diag(w)).Mul(v.Transpose())
		if !matApproxEqual(rec, a, 1e-8) {
			t.Fatalf("trial %d: reconstruction mismatch", trial)
		}
		// Eigenvectors orthonormal: V^T V = I.
		if !matApproxEqual(v.Transpose().Mul(v), Identity(n), 1e-8) {
			t.Fatalf("trial %d: eigenvectors not orthonormal", trial)
		}
	}
}

func TestEigSymKnown(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 1 and 3.
	a := NewMatrix(2, 2)
	a.Set(0, 0, 2)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 2)
	w, _, err := EigSym(a)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := math.Min(w[0], w[1]), math.Max(w[0], w[1])
	if math.Abs(lo-1) > 1e-10 || math.Abs(hi-3) > 1e-10 {
		t.Errorf("eigenvalues = %v, want {1, 3}", w)
	}
}

func TestEigSymRejectsAsymmetric(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 1, 5)
	if _, _, err := EigSym(a); err != ErrNotSymmetric {
		t.Errorf("err = %v, want ErrNotSymmetric", err)
	}
	if _, _, err := EigSym(NewMatrix(2, 3)); err != ErrNotSymmetric {
		t.Errorf("non-square err = %v, want ErrNotSymmetric", err)
	}
}

func TestSqrtPSDSquares(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		n := 2 + r.Intn(8)
		a := randomPSD(r, n)
		s, err := SqrtPSD(a, 1e-8)
		if err != nil {
			t.Fatalf("SqrtPSD: %v", err)
		}
		if !matApproxEqual(s.Mul(s), a, 1e-7) {
			t.Fatalf("trial %d: sqrt(A)^2 != A", trial)
		}
		if !s.IsSymmetric(1e-9) {
			t.Fatalf("trial %d: sqrt not symmetric", trial)
		}
	}
}

func TestSqrtPSDIdentityAndDiag(t *testing.T) {
	s, err := SqrtPSD(Identity(4), 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	if !matApproxEqual(s, Identity(4), 1e-10) {
		t.Error("sqrt(I) != I")
	}
	d, err := SqrtPSD(Diag([]float64{4, 9, 16}), 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	if !matApproxEqual(d, Diag([]float64{2, 3, 4}), 1e-9) {
		t.Error("sqrt(diag) wrong")
	}
}

func TestSqrtPSDRejectsNegative(t *testing.T) {
	if _, err := SqrtPSD(Diag([]float64{1, -1}), 1e-8); err == nil {
		t.Error("expected error for indefinite matrix")
	}
}

func TestTraceSqrtProductCommutingCase(t *testing.T) {
	// For diagonal matrices tr((AB)^{1/2}) = sum sqrt(a_i b_i).
	a := Diag([]float64{1, 4, 9})
	b := Diag([]float64{16, 25, 36})
	got, err := TraceSqrtProduct(a, b, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt(16.0) + math.Sqrt(100.0) + math.Sqrt(324.0)
	if math.Abs(got-want) > 1e-8 {
		t.Errorf("TraceSqrtProduct = %v, want %v", got, want)
	}
}

func TestTraceSqrtProductSymmetryProperty(t *testing.T) {
	// tr((AB)^{1/2}) = tr((BA)^{1/2}) for PSD A, B.
	r := rand.New(rand.NewSource(4))
	for trial := 0; trial < 10; trial++ {
		n := 2 + r.Intn(6)
		a := randomPSD(r, n)
		b := randomPSD(r, n)
		x, err := TraceSqrtProduct(a, b, 1e-6)
		if err != nil {
			t.Fatal(err)
		}
		y, err := TraceSqrtProduct(b, a, 1e-6)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(x-y) > 1e-6*(1+math.Abs(x)) {
			t.Fatalf("trial %d: asymmetric: %v vs %v", trial, x, y)
		}
	}
}

func TestDotNormAXPY(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	if Dot(a, b) != 32 {
		t.Errorf("Dot = %v", Dot(a, b))
	}
	if math.Abs(Norm2([]float64{3, 4})-5) > 1e-12 {
		t.Error("Norm2 wrong")
	}
	dst := []float64{1, 1, 1}
	AXPY(2, a, dst)
	if dst[0] != 3 || dst[1] != 5 || dst[2] != 7 {
		t.Errorf("AXPY = %v", dst)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Dot length mismatch should panic")
			}
		}()
		Dot(a, []float64{1})
	}()
}

func TestEigenvaluePropertyTraceSum(t *testing.T) {
	// Sum of eigenvalues equals trace; product relates to determinant.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + int(uint(seed)%5)
		a := randomSymmetric(r, n)
		w, _, err := EigSym(a)
		if err != nil {
			return false
		}
		sum := 0.0
		for _, x := range w {
			sum += x
		}
		return math.Abs(sum-a.Trace()) < 1e-8*(1+math.Abs(a.Trace()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
