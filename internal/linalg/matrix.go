// Package linalg provides the small dense linear-algebra kernel needed
// for exact Fréchet Inception Distance computation: symmetric matrices,
// Jacobi eigendecomposition, and principal square roots of positive
// semi-definite matrices.
//
// Matrices are dense, row-major, and small (the image feature space is
// 16–64 dimensional), so simple O(n^3) algorithms are both adequate and
// easy to verify.
package linalg

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// NewMatrix returns a zero matrix with the given shape.
// It panics if rows or cols is not positive.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic("linalg: matrix dimensions must be positive")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Diag returns a square diagonal matrix with the given diagonal.
func Diag(d []float64) *Matrix {
	m := NewMatrix(len(d), len(d))
	for i, v := range d {
		m.Set(i, i, v)
	}
	return m
}

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy of the matrix.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Add returns m + o as a new matrix.
// It panics on shape mismatch.
func (m *Matrix) Add(o *Matrix) *Matrix {
	m.mustSameShape(o)
	r := NewMatrix(m.Rows, m.Cols)
	for i := range m.Data {
		r.Data[i] = m.Data[i] + o.Data[i]
	}
	return r
}

// Sub returns m - o as a new matrix.
// It panics on shape mismatch.
func (m *Matrix) Sub(o *Matrix) *Matrix {
	m.mustSameShape(o)
	r := NewMatrix(m.Rows, m.Cols)
	for i := range m.Data {
		r.Data[i] = m.Data[i] - o.Data[i]
	}
	return r
}

// Scale returns s*m as a new matrix.
func (m *Matrix) Scale(s float64) *Matrix {
	r := NewMatrix(m.Rows, m.Cols)
	for i := range m.Data {
		r.Data[i] = s * m.Data[i]
	}
	return r
}

// Mul returns the matrix product m*o as a new matrix.
// It panics if the inner dimensions disagree.
func (m *Matrix) Mul(o *Matrix) *Matrix {
	if m.Cols != o.Rows {
		panic(fmt.Sprintf("linalg: Mul shape mismatch (%dx%d)*(%dx%d)", m.Rows, m.Cols, o.Rows, o.Cols))
	}
	r := NewMatrix(m.Rows, o.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			for j := 0; j < o.Cols; j++ {
				r.Data[i*r.Cols+j] += a * o.At(k, j)
			}
		}
	}
	return r
}

// Transpose returns the transpose of m as a new matrix.
func (m *Matrix) Transpose() *Matrix {
	r := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			r.Set(j, i, m.At(i, j))
		}
	}
	return r
}

// Trace returns the sum of diagonal elements.
// It panics if the matrix is not square.
func (m *Matrix) Trace() float64 {
	m.mustSquare()
	t := 0.0
	for i := 0; i < m.Rows; i++ {
		t += m.At(i, i)
	}
	return t
}

// Symmetrize returns (m + m^T)/2, useful for cleaning accumulated
// floating-point asymmetry in covariance computations.
func (m *Matrix) Symmetrize() *Matrix {
	m.mustSquare()
	r := NewMatrix(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			r.Set(i, j, 0.5*(m.At(i, j)+m.At(j, i)))
		}
	}
	return r
}

// MaxAbsOffDiag returns the largest absolute off-diagonal element of a
// square matrix, used as a convergence measure by the Jacobi sweep.
func (m *Matrix) MaxAbsOffDiag() float64 {
	m.mustSquare()
	mx := 0.0
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if i == j {
				continue
			}
			if a := math.Abs(m.At(i, j)); a > mx {
				mx = a
			}
		}
	}
	return mx
}

// IsSymmetric reports whether m is symmetric within tolerance tol.
func (m *Matrix) IsSymmetric(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

func (m *Matrix) mustSameShape(o *Matrix) {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		panic(fmt.Sprintf("linalg: shape mismatch %dx%d vs %dx%d", m.Rows, m.Cols, o.Rows, o.Cols))
	}
}

func (m *Matrix) mustSquare() {
	if m.Rows != m.Cols {
		panic(fmt.Sprintf("linalg: matrix not square (%dx%d)", m.Rows, m.Cols))
	}
}

// Dot returns the inner product of two equal-length vectors.
// It panics on length mismatch.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("linalg: Dot length mismatch")
	}
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 { return math.Sqrt(Dot(v, v)) }

// AXPY computes dst[i] += a*x[i] in place.
// It panics on length mismatch.
func AXPY(a float64, x, dst []float64) {
	if len(x) != len(dst) {
		panic("linalg: AXPY length mismatch")
	}
	for i := range x {
		dst[i] += a * x[i]
	}
}
