package linalg

import (
	"errors"
	"math"
)

// ErrNotConverged is returned when an iterative routine fails to reach
// the requested tolerance within its iteration budget.
var ErrNotConverged = errors.New("linalg: iteration did not converge")

// ErrNotSymmetric is returned when a routine requiring a symmetric
// input receives an asymmetric matrix.
var ErrNotSymmetric = errors.New("linalg: matrix is not symmetric")

// EigSym computes the eigendecomposition of a symmetric matrix using
// the cyclic Jacobi rotation method. It returns the eigenvalues and a
// matrix whose columns are the corresponding orthonormal eigenvectors,
// so that a = v * diag(w) * v^T.
//
// The input must be symmetric within a small tolerance; otherwise
// ErrNotSymmetric is returned. Jacobi iteration is unconditionally
// stable for symmetric matrices; ErrNotConverged indicates a pathological
// input (e.g. NaNs).
func EigSym(a *Matrix) (w []float64, v *Matrix, err error) {
	if a.Rows != a.Cols {
		return nil, nil, ErrNotSymmetric
	}
	n := a.Rows
	scale := 0.0
	for _, x := range a.Data {
		if ax := math.Abs(x); ax > scale {
			scale = ax
		}
	}
	if !a.IsSymmetric(1e-8*math.Max(scale, 1) + 1e-12) {
		return nil, nil, ErrNotSymmetric
	}

	m := a.Symmetrize()
	v = Identity(n)
	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		// Sum of absolute off-diagonal values: the convergence measure.
		off := 0.0
		for i := 0; i < n-1; i++ {
			for j := i + 1; j < n; j++ {
				off += math.Abs(m.At(i, j))
			}
		}
		if off == 0 {
			w = make([]float64, n)
			for i := 0; i < n; i++ {
				w[i] = m.At(i, i)
			}
			return w, v, nil
		}
		// Rotation threshold: skip small elements during early sweeps
		// (Numerical Recipes style), then rotate everything.
		var thresh float64
		if sweep < 3 {
			thresh = 0.2 * off / float64(n*n)
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := m.At(p, q)
				app := m.At(p, p)
				aqq := m.At(q, q)
				// After a few sweeps, annihilate elements that are
				// negligible relative to their diagonal neighbors.
				small := 1e-13 * (math.Abs(app) + math.Abs(aqq))
				if sweep >= 3 && math.Abs(apq) <= small {
					m.Set(p, q, 0)
					m.Set(q, p, 0)
					continue
				}
				if math.Abs(apq) <= thresh {
					continue
				}
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c

				// Apply the rotation G(p, q, theta) on both sides.
				for k := 0; k < n; k++ {
					akp := m.At(k, p)
					akq := m.At(k, q)
					m.Set(k, p, c*akp-s*akq)
					m.Set(k, q, s*akp+c*akq)
				}
				for k := 0; k < n; k++ {
					apk := m.At(p, k)
					aqk := m.At(q, k)
					m.Set(p, k, c*apk-s*aqk)
					m.Set(q, k, s*apk+c*aqk)
				}
				// Accumulate the eigenvector rotation.
				for k := 0; k < n; k++ {
					vkp := v.At(k, p)
					vkq := v.At(k, q)
					v.Set(k, p, c*vkp-s*vkq)
					v.Set(k, q, s*vkp+c*vkq)
				}
			}
		}
	}
	return nil, nil, ErrNotConverged
}

// SqrtPSD computes the principal square root of a symmetric positive
// semi-definite matrix via eigendecomposition: if a = V diag(w) V^T
// then sqrt(a) = V diag(sqrt(w)) V^T. Small negative eigenvalues
// (within -tol, from floating-point noise) are clamped to zero; larger
// negative eigenvalues cause an error.
func SqrtPSD(a *Matrix, tol float64) (*Matrix, error) {
	w, v, err := EigSym(a)
	if err != nil {
		return nil, err
	}
	for i, x := range w {
		if x < 0 {
			if x < -tol {
				return nil, errors.New("linalg: matrix is not positive semi-definite")
			}
			w[i] = 0
		}
	}
	n := a.Rows
	r := NewMatrix(n, n)
	// r = V diag(sqrt(w)) V^T
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			s := 0.0
			for k := 0; k < n; k++ {
				s += v.At(i, k) * math.Sqrt(w[k]) * v.At(j, k)
			}
			r.Set(i, j, s)
			r.Set(j, i, s)
		}
	}
	return r, nil
}

// TraceSqrtProduct computes tr((A B)^{1/2}) for symmetric PSD matrices
// A and B, the cross term of the Fréchet distance. It uses the
// similarity trick: the eigenvalues of A·B equal the eigenvalues of the
// symmetric matrix sqrt(A)·B·sqrt(A), which is PSD, so the trace of the
// square root is the sum of square roots of those eigenvalues.
func TraceSqrtProduct(a, b *Matrix, tol float64) (float64, error) {
	sa, err := SqrtPSD(a, tol)
	if err != nil {
		return 0, err
	}
	m := sa.Mul(b).Mul(sa).Symmetrize()
	w, _, err := EigSym(m)
	if err != nil {
		return 0, err
	}
	t := 0.0
	for _, x := range w {
		if x < 0 {
			if x < -tol {
				return 0, errors.New("linalg: product has negative eigenvalue")
			}
			x = 0
		}
		t += math.Sqrt(x)
	}
	return t, nil
}
