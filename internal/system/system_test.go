package system

import (
	"math"
	"testing"

	"diffserve/internal/allocator"
	"diffserve/internal/cascade"
	"diffserve/internal/controller"
	"diffserve/internal/discriminator"
	"diffserve/internal/imagespace"
	"diffserve/internal/loadbalancer"
	"diffserve/internal/model"
	"diffserve/internal/stats"
	"diffserve/internal/trace"
)

// fixture builds a small cascade-1 system config on a given trace.
func fixture(t *testing.T, tr *trace.Trace, workers int, mode loadbalancer.Mode) Config {
	t.Helper()
	rng := stats.NewRNG(404)
	space, err := imagespace.NewSpace(imagespace.DefaultSpaceConfig(), rng.Stream("space"))
	if err != nil {
		t.Fatal(err)
	}
	reg := model.BuiltinRegistry()
	light, heavy := reg.MustGet("sdturbo"), reg.MustGet("sdv15")
	d, err := discriminator.New(discriminator.Config{
		Arch: discriminator.ArchEfficientNet, Train: discriminator.TrainGT,
	}, rng.Stream("disc"))
	if err != nil {
		t.Fatal(err)
	}
	casc, err := cascade.New(space, light, heavy, d)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := cascade.ProfileDeferral(casc, space.SampleQueries(900000, 800))
	if err != nil {
		t.Fatal(err)
	}
	a, err := allocator.NewMILP(allocator.Config{
		Light: light, Heavy: heavy,
		DiscPerImage: d.PerImageLatency(),
		Deferral:     prof,
		TotalWorkers: workers,
		SLO:          5,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := controller.New(controller.Config{Alloc: a})
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Space: space, Light: light, Heavy: heavy, Scorer: d,
		Workers: workers, SLO: 5, Trace: tr, Controller: ctrl,
		Mode: mode, Seed: 99,
	}
}

func TestConfigValidation(t *testing.T) {
	tr, _ := trace.Static(5, 20, 1)
	good := fixture(t, tr, 8, loadbalancer.ModeCascade)
	mods := []func(*Config){
		func(c *Config) { c.Space = nil },
		func(c *Config) { c.Light = nil },
		func(c *Config) { c.Scorer = nil },
		func(c *Config) { c.Workers = 0 },
		func(c *Config) { c.SLO = 0 },
		func(c *Config) { c.Trace = nil },
		func(c *Config) { c.Controller = nil },
	}
	for i, mod := range mods {
		bad := good
		mod(&bad)
		if _, err := New(bad); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
	if _, err := New(good); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestScorerOptionalOutsideCascade(t *testing.T) {
	tr, _ := trace.Static(5, 20, 1)
	cfg := fixture(t, tr, 8, loadbalancer.ModeAllLight)
	cfg.Scorer = nil
	if _, err := New(cfg); err != nil {
		t.Errorf("all-light mode should not need a scorer: %v", err)
	}
}

func TestRunAccountsEveryQuery(t *testing.T) {
	tr, _ := trace.Static(8, 60, 1)
	sys, err := New(fixture(t, tr, 8, loadbalancer.ModeCascade))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Queries == 0 {
		t.Fatal("no arrivals synthesized")
	}
	// Conservation: every arrival is recorded exactly once.
	if res.Collector.Len() != res.Queries {
		t.Errorf("recorded %d of %d queries", res.Collector.Len(), res.Queries)
	}
	seen := map[int]bool{}
	for _, r := range res.Collector.Records() {
		if seen[r.ID] {
			t.Fatalf("query %d recorded twice", r.ID)
		}
		seen[r.ID] = true
	}
}

func TestRunLatenciesNonNegativeAndOrdered(t *testing.T) {
	tr, _ := trace.Static(10, 40, 1)
	sys, err := New(fixture(t, tr, 8, loadbalancer.ModeCascade))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	minExec := 0.1 // light batch-1 execution
	for _, r := range res.Collector.Records() {
		if r.Dropped {
			continue
		}
		lat := r.Completion - r.Arrival
		if lat < minExec-1e-9 {
			t.Fatalf("query %d latency %v below execution floor", r.ID, lat)
		}
		if lat > 1000 {
			t.Fatalf("query %d latency %v absurd", r.ID, lat)
		}
	}
}

func TestCascadeDeferralsCarryConfidence(t *testing.T) {
	tr, _ := trace.Static(6, 60, 1)
	sys, err := New(fixture(t, tr, 8, loadbalancer.ModeCascade))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	light, heavy := 0, 0
	for _, r := range res.Collector.Records() {
		if r.Dropped {
			continue
		}
		switch r.ServedBy {
		case "sdturbo":
			light++
			if r.Confidence <= 0 {
				t.Error("light-served record missing confidence")
			}
		case "sdv15":
			heavy++
			if !r.Deferred {
				t.Error("heavy-served record not marked deferred")
			}
		default:
			t.Errorf("unexpected variant %q", r.ServedBy)
		}
	}
	if light == 0 || heavy == 0 {
		t.Errorf("cascade should use both pools: light=%d heavy=%d", light, heavy)
	}
}

func TestAllLightNeverUsesHeavy(t *testing.T) {
	tr, _ := trace.Static(6, 30, 1)
	cfg := fixture(t, tr, 8, loadbalancer.ModeAllLight)
	lightVariant := cfg.Light
	ctrl := clipperController(t, cfg, false)
	cfg.Controller = ctrl
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Collector.Records() {
		if r.Dropped {
			continue
		}
		if r.ServedBy != lightVariant.Name {
			t.Fatalf("all-light served by %q", r.ServedBy)
		}
	}
}

func clipperController(t *testing.T, cfg Config, heavy bool) *controller.Controller {
	t.Helper()
	v := cfg.Light
	if heavy {
		v = cfg.Heavy
	}
	a, err := allocator.NewClipper(v, heavy, cfg.Workers, cfg.SLO)
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := controller.New(controller.Config{Alloc: a})
	if err != nil {
		t.Fatal(err)
	}
	return ctrl
}

func TestOverloadShedsInsteadOfQueueing(t *testing.T) {
	// 2 workers, all-heavy at 20 QPS: massive overload; the system
	// must shed to bound latency rather than queue forever.
	tr, _ := trace.Static(20, 60, 1)
	cfg := fixture(t, tr, 2, loadbalancer.ModeAllHeavy)
	cfg.Controller = clipperController(t, cfg, true)
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	sum := res.Summary()
	if sum.DropRatio < 0.5 {
		t.Errorf("drop ratio = %v, want heavy shedding under 10x overload", sum.DropRatio)
	}
	// Completed queries must still have bounded latency.
	if p99 := res.Collector.LatencyQuantile(0.99); p99 > 30 {
		t.Errorf("p99 latency = %v, shedding failed to bound waits", p99)
	}
}

func TestDisableDropQueuesForever(t *testing.T) {
	tr, _ := trace.Static(20, 30, 1)
	cfg := fixture(t, tr, 2, loadbalancer.ModeAllHeavy)
	cfg.Controller = clipperController(t, cfg, true)
	cfg.DisableDrop = true
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	// With dropping disabled, queries are only dropped by final drain.
	late := 0
	for _, r := range res.Collector.Records() {
		if r.Late() {
			late++
		}
	}
	if late == 0 {
		t.Error("without shedding, lateness should appear under overload")
	}
}

func TestDeterministicRuns(t *testing.T) {
	tr, _ := trace.Static(8, 40, 1)
	run := func() float64 {
		sys, err := New(fixture(t, tr, 8, loadbalancer.ModeCascade))
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Run()
		if err != nil {
			t.Fatal(err)
		}
		s := res.Summary()
		return s.FID + s.ViolationRatio*1000 + float64(s.Queries)
	}
	if a, b := run(), run(); math.Abs(a-b) > 1e-9 {
		t.Errorf("runs differ: %v vs %v", a, b)
	}
}

func TestPlansLogged(t *testing.T) {
	tr, _ := trace.Static(8, 30, 1)
	sys, err := New(fixture(t, tr, 8, loadbalancer.ModeCascade))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Initial plan + one per 2s tick over 30s.
	if len(res.Plans) < 15 {
		t.Errorf("plan log = %d entries", len(res.Plans))
	}
	if res.MeanSolveSeconds <= 0 {
		t.Error("solver time not measured")
	}
}

func TestModelLoadDelayVisible(t *testing.T) {
	// With load delays disabled the system should perform at least as
	// well as with them enabled (sanity of the switching model).
	tr, err := trace.AzureLike(stats.NewRNG(5), 120, 1)
	if err != nil {
		t.Fatal(err)
	}
	tr, err = tr.ScaleTo(4, 24)
	if err != nil {
		t.Fatal(err)
	}
	cfgSlow := fixture(t, tr, 8, loadbalancer.ModeCascade)
	sysSlow, err := New(cfgSlow)
	if err != nil {
		t.Fatal(err)
	}
	resSlow, err := sysSlow.Run()
	if err != nil {
		t.Fatal(err)
	}
	cfgFast := fixture(t, tr, 8, loadbalancer.ModeCascade)
	cfgFast.DisableModelLoadDelay = true
	sysFast, err := New(cfgFast)
	if err != nil {
		t.Fatal(err)
	}
	resFast, err := sysFast.Run()
	if err != nil {
		t.Fatal(err)
	}
	slow := resSlow.Summary()
	fast := resFast.Summary()
	if fast.ViolationRatio > slow.ViolationRatio+0.05 {
		t.Errorf("instant model loads should not hurt: fast %.3f vs slow %.3f",
			fast.ViolationRatio, slow.ViolationRatio)
	}
}
