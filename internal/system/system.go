// Package system wires the complete DiffServe serving system inside a
// discrete-event simulator: trace-driven Poisson arrivals enter the
// load balancer, workers batch and execute model inference using
// profiled latencies, the discriminator cascades low-confidence
// queries from the light to the heavy pool, and the controller
// periodically re-solves resource allocation — the simulator
// counterpart of the paper's testbed (§4.1).
//
// One deliberate simplification: queues live at pool granularity (one
// light queue, one heavy queue) rather than per worker. Idle workers
// pull from their pool's queue, which is work-conserving and
// equivalent to per-worker queues with join-shortest-queue dispatch;
// the controller's Little's-law inputs aggregate identically.
package system

import (
	"fmt"
	"math"

	"diffserve/internal/allocator"
	"diffserve/internal/controller"
	"diffserve/internal/discriminator"
	"diffserve/internal/fid"
	"diffserve/internal/imagespace"
	"diffserve/internal/loadbalancer"
	"diffserve/internal/metrics"
	"diffserve/internal/model"
	"diffserve/internal/queueing"
	"diffserve/internal/simring"
	"diffserve/internal/stats"
	"diffserve/internal/trace"
	"diffserve/internal/worker"
)

// Config assembles a full serving system.
type Config struct {
	// Space generates queries and images.
	Space *imagespace.Space
	// Light and Heavy are the cascade's variants.
	Light, Heavy *model.Variant
	// Scorer is the cascade discriminator (used in ModeCascade).
	Scorer discriminator.Scorer
	// Workers is the device count S.
	Workers int
	// SLO is the latency deadline in seconds.
	SLO float64
	// Trace drives arrivals.
	Trace *trace.Trace
	// Controller owns the allocator and control loop settings.
	Controller *controller.Controller
	// Mode selects the routing policy.
	Mode loadbalancer.Mode
	// Seed drives arrival synthesis and random routing.
	Seed uint64
	// QueueWindow sizes arrival-rate estimation windows (default 10s).
	QueueWindow float64
	// DisableDrop turns off predicted-deadline-miss shedding.
	DisableDrop bool
	// DisableModelLoadDelay makes role switches instantaneous (used by
	// tests and the simulator-vs-cluster comparison).
	DisableModelLoadDelay bool
	// QueryIDBase offsets query IDs so distinct experiments can draw
	// disjoint query populations from the same space.
	QueryIDBase int
}

func (c *Config) validate() error {
	switch {
	case c.Space == nil:
		return fmt.Errorf("system: Space required")
	case c.Light == nil || c.Heavy == nil:
		return fmt.Errorf("system: Light and Heavy variants required")
	case c.Scorer == nil && c.Mode == loadbalancer.ModeCascade:
		return fmt.Errorf("system: Scorer required in cascade mode")
	case c.Workers <= 0:
		return fmt.Errorf("system: Workers must be positive")
	case c.SLO <= 0:
		return fmt.Errorf("system: SLO must be positive")
	case c.Trace == nil:
		return fmt.Errorf("system: Trace required")
	case c.Controller == nil:
		return fmt.Errorf("system: Controller required")
	}
	return nil
}

// Result is the outcome of a simulated run.
type Result struct {
	// Collector holds every query record.
	Collector *metrics.Collector
	// Reference holds the ground-truth image moments of all arrived
	// queries, for FID scoring.
	Reference *fid.Reference
	// Plans is the controller's plan log.
	Plans []controller.PlanAt
	// Queries is the number of arrivals.
	Queries int
	// MeanSolveSeconds is the allocator's average solve time.
	MeanSolveSeconds float64
}

// Summary computes the end-to-end summary against the run's own
// reference set.
func (r *Result) Summary() metrics.Summary { return r.Collector.Summarize(r.Reference) }

// System is a runnable simulated serving system.
type System struct {
	cfg Config
	sim *simring.Sim
	lb  *loadbalancer.LB
	ws  []*worker.Worker
	col *metrics.Collector
	rng *stats.RNG

	threshold float64
	plan      allocator.Plan

	arrivalsSinceTick int
	violationsSince   int

	queries map[int]*imagespace.Query
}

// New builds a system from the config.
func New(cfg Config) (*System, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.QueueWindow <= 0 {
		cfg.QueueWindow = 10
	}
	rng := stats.NewRNG(cfg.Seed)
	s := &System{
		cfg:     cfg,
		sim:     simring.New(),
		lb:      loadbalancer.New(cfg.Mode, cfg.QueueWindow, rng),
		col:     metrics.NewCollector(),
		rng:     rng,
		queries: make(map[int]*imagespace.Query),
	}
	s.ws = make([]*worker.Worker, cfg.Workers)
	for i := range s.ws {
		s.ws[i] = worker.New(i)
	}
	return s, nil
}

// discLatency returns the per-image discriminator cost (zero outside
// cascade mode: the Clipper/Proteus baselines run no discriminator).
func (s *System) discLatency() float64 {
	if s.cfg.Mode != loadbalancer.ModeCascade || s.cfg.Scorer == nil {
		return 0
	}
	return s.cfg.Scorer.PerImageLatency()
}

// lightExec is the light pool's batch execution latency for n queries.
func (s *System) lightExec(n int) float64 {
	return s.cfg.Light.Latency.Latency(n) + float64(n)*s.discLatency()
}

// heavyExec is the heavy pool's batch execution latency for n queries.
func (s *System) heavyExec(n int) float64 {
	return s.cfg.Heavy.Latency.Latency(n)
}

// Run simulates the full trace and returns the result.
func (s *System) Run() (*Result, error) {
	// Synthesize arrivals and pre-sample the query population,
	// streaming the ground-truth image moments for the FID reference
	// instead of materializing every real feature vector.
	arrivals := s.cfg.Trace.Arrivals(s.rng.Stream("trace"))
	realAcc := stats.NewMomentAccumulator(s.cfg.Space.Dim())
	for i, at := range arrivals {
		id := s.cfg.QueryIDBase + i
		q := s.cfg.Space.SampleQuery(id)
		s.queries[id] = q
		realAcc.Add(q.Truth)
		at, id := at, id
		s.sim.At(at, func() { s.onArrival(id, at) })
	}

	// Initial plan from the trace's starting rate, then periodic ticks.
	initialPlan, err := s.cfg.Controller.Tick(0, controller.TickInput{
		Arrivals: int(math.Round(s.cfg.Trace.RateAt(0) * s.cfg.Controller.Interval())),
	})
	if err != nil {
		return nil, err
	}
	s.applyPlan(0, initialPlan, true)

	interval := s.cfg.Controller.Interval()
	horizon := s.cfg.Trace.Duration()
	for t := interval; t <= horizon; t += interval {
		t := t
		s.sim.At(t, func() { s.onControlTick(t) })
	}

	// Run to the horizon plus a grace period that lets queued work
	// drain, then mark whatever is still queued as dropped.
	grace := 3*s.cfg.SLO + s.heavyExec(s.cfg.Heavy.Latency.MaxBatch())
	s.sim.Run(horizon + grace)
	s.sim.Drain()
	s.dropRemaining()

	ref, err := fid.NewReferenceFromAccumulator(realAcc)
	if err != nil {
		return nil, fmt.Errorf("system: building FID reference: %w", err)
	}
	return &Result{
		Collector:        s.col,
		Reference:        ref,
		Plans:            s.cfg.Controller.Plans(),
		Queries:          len(arrivals),
		MeanSolveSeconds: s.cfg.Controller.MeanSolveSeconds(),
	}, nil
}

// onArrival admits a query into the system.
func (s *System) onArrival(id int, at float64) {
	s.arrivalsSinceTick++
	it := queueing.Item{ID: id, Arrival: at}
	s.lb.Route(s.sim.Now(), it)
	s.dispatchAll()
}

// shedPool applies predicted-deadline-miss shedding to one pool
// queue: items that cannot finish in time even if started immediately
// with minimal service are dropped and recorded.
func (s *System) shedPool(pool loadbalancer.PoolID) {
	if s.cfg.DisableDrop {
		return
	}
	now := s.sim.Now()
	exec := s.execFor(pool, 1)
	for _, it := range s.lb.Queue(pool).DropWhere(func(it queueing.Item) bool {
		return now+exec > it.Arrival+s.cfg.SLO
	}) {
		s.recordDrop(it)
	}
}

// shedExpired drops queued items that can no longer meet their
// deadline even with immediate minimal service. Running this on the
// control tick (not only at dispatch) keeps queue state honest when a
// pool temporarily has no workers — otherwise stranded items inflate
// the Little's-law wait forever and wedge the allocator in its
// best-effort fallback.
func (s *System) shedExpired() {
	for _, pool := range []loadbalancer.PoolID{loadbalancer.PoolLight, loadbalancer.PoolHeavy} {
		s.shedPool(pool)
	}
}

// onControlTick runs one control period.
func (s *System) onControlTick(t float64) {
	s.shedExpired()
	snap := s.lb.Snap(t)
	in := controller.TickInput{
		Arrivals:         s.arrivalsSinceTick,
		LightQueueLen:    snap.Light.Len,
		HeavyQueueLen:    snap.Heavy.Len,
		LightArrivalRate: snap.Light.ArrivalRate,
		HeavyArrivalRate: snap.Heavy.ArrivalRate,
		SLOTimeouts:      s.violationsSince,
	}
	s.arrivalsSinceTick = 0
	s.violationsSince = 0
	plan, err := s.cfg.Controller.Tick(t, in)
	if err != nil {
		// Control failures must not halt the data path; keep the
		// previous plan.
		return
	}
	s.applyPlan(t, plan, false)
	s.dispatchAll()
}

// applyPlan reconfigures threshold, batch sizes, and worker roles.
func (s *System) applyPlan(now float64, plan allocator.Plan, initial bool) {
	s.plan = plan
	s.threshold = plan.Threshold
	if s.cfg.Mode == loadbalancer.ModeRandomSplit {
		s.lb.SetSplit(plan.DeferFraction)
	}

	// Decide target roles, preferring to keep workers in place.
	needLight, needHeavy := plan.LightWorkers, plan.HeavyWorkers
	if needLight+needHeavy > len(s.ws) {
		needHeavy = len(s.ws) - needLight
		if needHeavy < 0 {
			needLight, needHeavy = len(s.ws), 0
		}
	}
	var keepLight, keepHeavy, rest []*worker.Worker
	for _, w := range s.ws {
		switch {
		case w.Role() == worker.RoleLight && len(keepLight) < needLight:
			keepLight = append(keepLight, w)
		case w.Role() == worker.RoleHeavy && len(keepHeavy) < needHeavy:
			keepHeavy = append(keepHeavy, w)
		default:
			rest = append(rest, w)
		}
	}
	assign := func(w *worker.Worker, role worker.Role, batch int, load float64) {
		if s.cfg.DisableModelLoadDelay || initial {
			load = 0
		}
		w.Assign(now, role, batch, load)
		if at, ok := w.ReadyAt(); ok && at > now {
			at := at
			s.sim.At(at, func() { s.dispatchAll() })
		}
	}
	for _, w := range keepLight {
		assign(w, worker.RoleLight, plan.LightBatch, 0)
	}
	for _, w := range keepHeavy {
		assign(w, worker.RoleHeavy, plan.HeavyBatch, 0)
	}
	for _, w := range rest {
		switch {
		case len(keepLight) < needLight:
			assign(w, worker.RoleLight, plan.LightBatch, s.cfg.Light.LoadSeconds)
			keepLight = append(keepLight, w)
		case len(keepHeavy) < needHeavy:
			assign(w, worker.RoleHeavy, plan.HeavyBatch, s.cfg.Heavy.LoadSeconds)
			keepHeavy = append(keepHeavy, w)
		default:
			assign(w, worker.RoleIdle, 0, 0)
		}
	}
}

// dispatchAll starts batches on every available worker with queued work.
func (s *System) dispatchAll() {
	now := s.sim.Now()
	for _, w := range s.ws {
		if !w.Available(now) {
			continue
		}
		switch w.Role() {
		case worker.RoleLight:
			s.dispatch(w, loadbalancer.PoolLight)
		case worker.RoleHeavy:
			s.dispatch(w, loadbalancer.PoolHeavy)
		}
	}
}

// dispatch pulls work for one available worker from its pool queue.
func (s *System) dispatch(w *worker.Worker, pool loadbalancer.PoolID) {
	now := s.sim.Now()
	s.shedPool(pool)
	q := s.lb.Queue(pool)
	items := q.Pop(now, w.Batch())
	if len(items) == 0 {
		return
	}
	exec := s.execFor(pool, len(items))
	done := w.StartBatch(now, len(items), exec)
	s.sim.At(done, func() { s.onBatchDone(w, pool, items) })
}

// execFor returns the batch execution latency for a pool.
func (s *System) execFor(pool loadbalancer.PoolID, n int) float64 {
	if pool == loadbalancer.PoolHeavy {
		return s.heavyExec(n)
	}
	return s.lightExec(n)
}

// onBatchDone finalizes a batch: generates images, applies the
// cascade's discriminator, completes or defers each query.
func (s *System) onBatchDone(w *worker.Worker, pool loadbalancer.PoolID, items []queueing.Item) {
	now := s.sim.Now()
	for _, it := range items {
		q := s.queries[it.ID]
		if q == nil {
			continue // cannot happen; defensive
		}
		if pool == loadbalancer.PoolHeavy {
			img := s.cfg.Space.GenerateDeterministic(q, s.cfg.Heavy.Name, s.cfg.Heavy.Gen)
			s.complete(it, img, now, true)
			continue
		}
		img := s.cfg.Space.GenerateDeterministic(q, s.cfg.Light.Name, s.cfg.Light.Gen)
		if s.cfg.Mode == loadbalancer.ModeCascade {
			conf := s.cfg.Scorer.Confidence(q, img)
			if conf < s.threshold {
				it2 := it
				s.lb.Defer(now, it2)
				continue
			}
			rec := s.makeRecord(it, img, now, false)
			rec.Confidence = conf
			s.record(rec)
			continue
		}
		s.complete(it, img, now, false)
	}
	s.dispatchAll()
}

func (s *System) makeRecord(it queueing.Item, img imagespace.Image, now float64, deferred bool) metrics.QueryRecord {
	return metrics.QueryRecord{
		ID:         it.ID,
		Arrival:    it.Arrival,
		Completion: now,
		Deadline:   it.Arrival + s.cfg.SLO,
		Deferred:   deferred,
		ServedBy:   img.Variant,
		Features:   img.Features,
		Artifact:   img.Artifact,
	}
}

func (s *System) complete(it queueing.Item, img imagespace.Image, now float64, deferred bool) {
	s.record(s.makeRecord(it, img, now, deferred))
}

func (s *System) record(rec metrics.QueryRecord) {
	if rec.Violated() {
		s.violationsSince++
	}
	s.col.Record(rec)
}

func (s *System) recordDrop(it queueing.Item) {
	s.violationsSince++
	s.col.Record(metrics.QueryRecord{
		ID:       it.ID,
		Arrival:  it.Arrival,
		Deadline: it.Arrival + s.cfg.SLO,
		Dropped:  true,
	})
}

// dropRemaining records still-queued items as dropped after the run.
func (s *System) dropRemaining() {
	for _, pool := range []loadbalancer.PoolID{loadbalancer.PoolLight, loadbalancer.PoolHeavy} {
		q := s.lb.Queue(pool)
		for _, it := range q.Pop(s.sim.Now(), q.Len()) {
			s.recordDrop(it)
		}
	}
}
