// Package queueing provides the FIFO query queues used by workers and
// the Little's-law waiting-time estimation that DiffServe's resource
// allocator relies on (paper §3.3): W = L / lambda, where L is the
// observed queue length and lambda the arrival rate.
package queueing

import (
	"math"
)

// Item is a queued unit of work with its enqueue time.
type Item struct {
	ID      int
	Arrival float64 // time the query entered the system
	Enqueue float64 // time the item joined this queue
	Payload interface{}
}

// FIFO is a first-in-first-out queue with arrival-rate tracking.
// It is not safe for concurrent use; the simulator is single-threaded
// and the cluster runtime wraps it in a mutex.
type FIFO struct {
	items []Item
	// arrival-rate window
	arrivals   []float64
	windowSecs float64
	// counters
	enqueued, dequeued int
}

// NewFIFO returns a queue whose arrival rate is estimated over the
// given trailing window (seconds). A non-positive window defaults to
// 10 seconds.
func NewFIFO(windowSecs float64) *FIFO {
	if windowSecs <= 0 {
		windowSecs = 10
	}
	return &FIFO{windowSecs: windowSecs}
}

// Push enqueues an item at time now.
func (q *FIFO) Push(now float64, it Item) {
	it.Enqueue = now
	q.items = append(q.items, it)
	q.arrivals = append(q.arrivals, now)
	q.enqueued++
	q.trim(now)
}

// Pop dequeues up to n items at time now. It returns fewer when the
// queue holds fewer.
func (q *FIFO) Pop(now float64, n int) []Item {
	if n <= 0 || len(q.items) == 0 {
		return nil
	}
	return q.PopAppend(now, n, nil)
}

// PopAppend dequeues up to n items at time now, appending them to dst
// and returning the extended slice. Passing a buffer with spare
// capacity makes the dequeue allocation-free; the hot pull path feeds
// it a pooled scratch slice.
func (q *FIFO) PopAppend(now float64, n int, dst []Item) []Item {
	if n <= 0 || len(q.items) == 0 {
		return dst
	}
	if n > len(q.items) {
		n = len(q.items)
	}
	dst = append(dst, q.items[:n]...)
	q.items = append(q.items[:0], q.items[n:]...)
	q.dequeued += n
	q.trim(now)
	return dst
}

// PeekDeadline returns the arrival time of the oldest queued item and
// true, or 0 and false when empty.
func (q *FIFO) PeekDeadline() (float64, bool) {
	if len(q.items) == 0 {
		return 0, false
	}
	return q.items[0].Arrival, true
}

// PeekEnqueue returns the enqueue time of the oldest queued item and
// true, or 0 and false when empty. Batch-coalescing dispatchers use
// this to bound how long the head of the queue waits for a batch to
// fill.
func (q *FIFO) PeekEnqueue() (float64, bool) {
	if len(q.items) == 0 {
		return 0, false
	}
	return q.items[0].Enqueue, true
}

// DropWhere removes queued items for which drop returns true,
// returning the removed items (used for deadline-based shedding).
func (q *FIFO) DropWhere(drop func(Item) bool) []Item {
	var removed []Item
	kept := q.items[:0]
	for _, it := range q.items {
		if drop(it) {
			removed = append(removed, it)
		} else {
			kept = append(kept, it)
		}
	}
	q.items = kept
	return removed
}

// Len returns the current queue length.
func (q *FIFO) Len() int { return len(q.items) }

// Enqueued returns the lifetime number of enqueued items.
func (q *FIFO) Enqueued() int { return q.enqueued }

// trim drops arrival records older than the rate window.
func (q *FIFO) trim(now float64) {
	cut := now - q.windowSecs
	i := 0
	for i < len(q.arrivals) && q.arrivals[i] < cut {
		i++
	}
	if i > 0 {
		q.arrivals = append(q.arrivals[:0], q.arrivals[i:]...)
	}
}

// ArrivalRate estimates the recent arrival rate (items/second) over
// the trailing window at time now.
func (q *FIFO) ArrivalRate(now float64) float64 {
	q.trim(now)
	if len(q.arrivals) == 0 {
		return 0
	}
	span := q.windowSecs
	if now < span {
		span = math.Max(now, 1e-9)
	}
	return float64(len(q.arrivals)) / span
}

// LittleWait estimates the queuing delay via Little's law from a queue
// length and an arrival rate. A zero arrival rate yields zero wait for
// an empty queue, and +Inf for a non-empty one (the queue cannot drain
// through arrivals-based accounting).
func LittleWait(queueLen int, arrivalRate float64) float64 {
	if queueLen == 0 {
		return 0
	}
	if arrivalRate <= 0 {
		return math.Inf(1)
	}
	return float64(queueLen) / arrivalRate
}

// Snapshot is a point-in-time view of queue state consumed by the
// controller.
type Snapshot struct {
	Len         int
	ArrivalRate float64
	LittleWait  float64
}

// Snap builds a Snapshot at time now.
func (q *FIFO) Snap(now float64) Snapshot {
	rate := q.ArrivalRate(now)
	return Snapshot{
		Len:         q.Len(),
		ArrivalRate: rate,
		LittleWait:  LittleWait(q.Len(), rate),
	}
}
