package queueing

import (
	"math"
	"testing"
)

func TestFIFOOrdering(t *testing.T) {
	q := NewFIFO(10)
	for i := 0; i < 5; i++ {
		q.Push(float64(i), Item{ID: i, Arrival: float64(i)})
	}
	if q.Len() != 5 {
		t.Fatalf("Len = %d", q.Len())
	}
	got := q.Pop(5, 3)
	if len(got) != 3 || got[0].ID != 0 || got[2].ID != 2 {
		t.Errorf("Pop order wrong: %+v", got)
	}
	if q.Len() != 2 {
		t.Errorf("Len after pop = %d", q.Len())
	}
	rest := q.Pop(5, 10)
	if len(rest) != 2 || rest[0].ID != 3 {
		t.Errorf("remainder wrong: %+v", rest)
	}
	if q.Pop(5, 1) != nil {
		t.Error("Pop on empty should return nil")
	}
	if q.Pop(5, 0) != nil {
		t.Error("Pop(0) should return nil")
	}
}

func TestFIFOEnqueueStampsTime(t *testing.T) {
	q := NewFIFO(10)
	q.Push(3.5, Item{ID: 1, Arrival: 3.0})
	got := q.Pop(4, 1)
	if got[0].Enqueue != 3.5 {
		t.Errorf("Enqueue = %v, want 3.5", got[0].Enqueue)
	}
	if got[0].Arrival != 3.0 {
		t.Errorf("Arrival = %v, want 3.0", got[0].Arrival)
	}
}

func TestPeekDeadline(t *testing.T) {
	q := NewFIFO(10)
	if _, ok := q.PeekDeadline(); ok {
		t.Error("empty queue should have no deadline")
	}
	q.Push(1, Item{ID: 1, Arrival: 0.5})
	q.Push(2, Item{ID: 2, Arrival: 1.5})
	at, ok := q.PeekDeadline()
	if !ok || at != 0.5 {
		t.Errorf("PeekDeadline = %v, %v", at, ok)
	}
}

func TestDropWhere(t *testing.T) {
	q := NewFIFO(10)
	for i := 0; i < 6; i++ {
		q.Push(float64(i), Item{ID: i, Arrival: float64(i)})
	}
	dropped := q.DropWhere(func(it Item) bool { return it.ID%2 == 0 })
	if len(dropped) != 3 {
		t.Fatalf("dropped %d, want 3", len(dropped))
	}
	if q.Len() != 3 {
		t.Fatalf("kept %d, want 3", q.Len())
	}
	kept := q.Pop(10, 10)
	for _, it := range kept {
		if it.ID%2 == 0 {
			t.Errorf("even ID %d survived drop", it.ID)
		}
	}
}

func TestArrivalRateWindow(t *testing.T) {
	q := NewFIFO(10)
	// 20 arrivals over 10 seconds -> 2/s.
	for i := 0; i < 20; i++ {
		q.Push(float64(i)*0.5, Item{ID: i})
	}
	rate := q.ArrivalRate(10)
	if math.Abs(rate-2.0) > 0.25 {
		t.Errorf("rate = %v, want ~2", rate)
	}
	// After 15 seconds of silence the window should be empty.
	if rate := q.ArrivalRate(25); rate != 0 {
		t.Errorf("stale rate = %v, want 0", rate)
	}
}

func TestArrivalRateEarlyClock(t *testing.T) {
	q := NewFIFO(10)
	q.Push(0.5, Item{ID: 0})
	q.Push(1.0, Item{ID: 1})
	// Only 2 seconds elapsed: rate should use elapsed time, not window.
	rate := q.ArrivalRate(2)
	if math.Abs(rate-1.0) > 1e-9 {
		t.Errorf("early rate = %v, want 1.0", rate)
	}
}

func TestLittleWait(t *testing.T) {
	if got := LittleWait(0, 5); got != 0 {
		t.Errorf("empty queue wait = %v", got)
	}
	if got := LittleWait(10, 5); got != 2 {
		t.Errorf("wait = %v, want 2", got)
	}
	if got := LittleWait(3, 0); !math.IsInf(got, 1) {
		t.Errorf("zero-rate wait = %v, want +Inf", got)
	}
}

func TestSnap(t *testing.T) {
	q := NewFIFO(10)
	for i := 0; i < 8; i++ {
		q.Push(float64(i), Item{ID: i})
	}
	s := q.Snap(8)
	if s.Len != 8 {
		t.Errorf("Len = %d", s.Len)
	}
	if s.ArrivalRate <= 0 {
		t.Errorf("rate = %v", s.ArrivalRate)
	}
	if math.Abs(s.LittleWait-float64(s.Len)/s.ArrivalRate) > 1e-9 {
		t.Errorf("LittleWait inconsistent: %v", s.LittleWait)
	}
}

func TestLittleLawConsistencyUnderSteadyState(t *testing.T) {
	// Feed at rate lambda, drain at rate mu < lambda: queue builds and
	// the Little estimate grows accordingly; then drain fully and the
	// estimate returns to zero.
	q := NewFIFO(5)
	now := 0.0
	id := 0
	for step := 0; step < 50; step++ {
		now += 0.1
		q.Push(now, Item{ID: id, Arrival: now})
		id++
		if step%2 == 1 {
			q.Pop(now, 1)
		}
	}
	s := q.Snap(now)
	if s.Len == 0 || s.LittleWait <= 0 {
		t.Errorf("expected backlog: %+v", s)
	}
	q.Pop(now, q.Len())
	if w := q.Snap(now).LittleWait; w != 0 {
		t.Errorf("drained wait = %v, want 0", w)
	}
}

func TestDefaultWindow(t *testing.T) {
	q := NewFIFO(0)
	if q.windowSecs != 10 {
		t.Errorf("default window = %v, want 10", q.windowSecs)
	}
}

func TestEnqueuedCounter(t *testing.T) {
	q := NewFIFO(10)
	for i := 0; i < 4; i++ {
		q.Push(float64(i), Item{ID: i})
	}
	q.Pop(4, 2)
	if q.Enqueued() != 4 {
		t.Errorf("Enqueued = %d, want 4", q.Enqueued())
	}
}
