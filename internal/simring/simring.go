// Package simring is the discrete-event simulation core driving the
// DiffServe simulator: a virtual clock and a time-ordered event heap
// with deterministic FIFO tie-breaking for simultaneous events.
package simring

import (
	"fmt"
	"math"
)

// event is a scheduled callback.
type event struct {
	at  float64
	seq int64
	fn  func()
}

// eventHeap is a typed binary min-heap ordered by (at, seq). It
// replaces the container/heap adapter: pushing and popping concrete
// events avoids boxing every event into an interface{} on the
// simulator's hottest path, and the sift operations inline. The
// ordering predicate is identical to the old heap.Interface Less, so
// pop order is unchanged.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

// push appends e and sifts it up.
func (h *eventHeap) push(e event) {
	*h = append(*h, e)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

// pop removes and returns the minimum event.
func (h *eventHeap) pop() event {
	s := *h
	n := len(s) - 1
	s[0], s[n] = s[n], s[0]
	top := s[n]
	s[n] = event{} // release the closure for GC
	s = s[:n]
	*h = s
	// Sift the relocated root down.
	i := 0
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		least := left
		if right := left + 1; right < n && s.less(right, left) {
			least = right
		}
		if !s.less(least, i) {
			break
		}
		s[i], s[least] = s[least], s[i]
		i = least
	}
	return top
}

// Sim is a single-threaded discrete-event simulator. The zero value
// is ready to use.
type Sim struct {
	now      float64
	seq      int64
	events   eventHeap
	executed int
}

// New returns a simulator with the clock at zero.
func New() *Sim { return &Sim{} }

// Now returns the current virtual time in seconds.
func (s *Sim) Now() float64 { return s.now }

// Executed returns the number of events executed so far.
func (s *Sim) Executed() int { return s.executed }

// Pending returns the number of scheduled, unexecuted events.
func (s *Sim) Pending() int { return len(s.events) }

// At schedules fn to run at absolute time t. Scheduling in the past
// panics: it indicates a simulator bug.
func (s *Sim) At(t float64, fn func()) {
	if t < s.now {
		panic(fmt.Sprintf("simring: scheduling at %v before now %v", t, s.now))
	}
	if math.IsNaN(t) || math.IsInf(t, 0) {
		panic(fmt.Sprintf("simring: invalid event time %v", t))
	}
	s.seq++
	s.events.push(event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn to run d seconds from now.
func (s *Sim) After(d float64, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("simring: negative delay %v", d))
	}
	s.At(s.now+d, fn)
}

// Run executes events in time order until the queue empties or the
// clock passes until. Events scheduled exactly at until still run.
// It returns the number of events executed by this call.
func (s *Sim) Run(until float64) int {
	ran := 0
	for len(s.events) > 0 {
		if s.events[0].at > until {
			break
		}
		e := s.events.pop()
		s.now = e.at
		e.fn()
		s.executed++
		ran++
	}
	// Advance the clock to the horizon even if the queue drained, so
	// successive Run calls observe monotone time.
	if s.now < until {
		s.now = until
	}
	return ran
}

// Drain runs every remaining event regardless of time.
func (s *Sim) Drain() int { return s.Run(math.Inf(1)) }
