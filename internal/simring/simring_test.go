package simring

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// TestTypedHeapPopOrderMatchesReference pushes a large randomized
// schedule (with many duplicate timestamps to exercise FIFO
// tie-breaking) and checks the typed heap pops events in exactly the
// (at, seq) order a stable sort produces — the same total order the
// old container/heap adapter guaranteed.
func TestTypedHeapPopOrderMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(808))
	s := New()
	type stamp struct {
		at  float64
		idx int
	}
	const n = 5000
	want := make([]stamp, 0, n)
	got := make([]stamp, 0, n)
	for i := 0; i < n; i++ {
		at := float64(rng.Intn(200)) / 4 // heavy duplication
		i := i
		want = append(want, stamp{at: at, idx: i})
		s.At(at, func() { got = append(got, stamp{at: s.Now(), idx: i}) })
	}
	sort.SliceStable(want, func(a, b int) bool { return want[a].at < want[b].at })
	if ran := s.Drain(); ran != n {
		t.Fatalf("Drain ran %d of %d", ran, n)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestTypedHeapInterleavedPushPop interleaves scheduling with
// execution so sift-down paths from mid-heap states get exercised.
func TestTypedHeapInterleavedPushPop(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	s := New()
	executed := 0
	var last float64
	for round := 0; round < 50; round++ {
		for i := 0; i < 40; i++ {
			at := s.Now() + rng.Float64()*10
			s.At(at, func() {
				if s.Now() < last {
					t.Errorf("event time went backwards: %v after %v", s.Now(), last)
				}
				last = s.Now()
				executed++
			})
		}
		s.Run(s.Now() + 5)
	}
	s.Drain()
	if executed != 50*40 {
		t.Errorf("executed %d of %d", executed, 50*40)
	}
}

func TestEventOrdering(t *testing.T) {
	s := New()
	var order []int
	s.At(3, func() { order = append(order, 3) })
	s.At(1, func() { order = append(order, 1) })
	s.At(2, func() { order = append(order, 2) })
	s.Run(10)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
	if s.Now() != 10 {
		t.Errorf("Now = %v, want horizon 10", s.Now())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		s.At(1, func() { order = append(order, i) })
	}
	s.Run(1)
	for i, v := range order {
		if v != i {
			t.Fatalf("simultaneous events out of scheduling order: %v", order)
		}
	}
}

func TestRunHorizon(t *testing.T) {
	s := New()
	ran := []float64{}
	s.At(1, func() { ran = append(ran, 1) })
	s.At(5, func() { ran = append(ran, 5) })
	n := s.Run(3)
	if n != 1 || len(ran) != 1 {
		t.Errorf("Run(3) executed %d events: %v", n, ran)
	}
	if s.Pending() != 1 {
		t.Errorf("Pending = %d", s.Pending())
	}
	// Event exactly at the horizon still runs.
	n = s.Run(5)
	if n != 1 || len(ran) != 2 {
		t.Errorf("horizon-inclusive run failed: %v", ran)
	}
}

func TestAfterAndNestedScheduling(t *testing.T) {
	s := New()
	var times []float64
	s.At(1, func() {
		times = append(times, s.Now())
		s.After(2, func() { times = append(times, s.Now()) })
	})
	s.Run(10)
	if len(times) != 2 || times[0] != 1 || times[1] != 3 {
		t.Errorf("times = %v", times)
	}
}

func TestDrain(t *testing.T) {
	s := New()
	count := 0
	s.At(100, func() { count++ })
	s.At(1e6, func() { count++ })
	if n := s.Drain(); n != 2 || count != 2 {
		t.Errorf("Drain ran %d", n)
	}
	if s.Executed() != 2 {
		t.Errorf("Executed = %d", s.Executed())
	}
}

func TestSchedulePastPanics(t *testing.T) {
	s := New()
	s.At(5, func() {})
	s.Run(5)
	defer func() {
		if recover() == nil {
			t.Error("scheduling in the past should panic")
		}
	}()
	s.At(1, func() {})
}

func TestInvalidTimesPanics(t *testing.T) {
	s := New()
	for _, bad := range []float64{math.NaN(), math.Inf(1)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("time %v should panic", bad)
				}
			}()
			s.At(bad, func() {})
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("negative delay should panic")
			}
		}()
		s.After(-1, func() {})
	}()
}

func TestClockMonotoneAcrossRuns(t *testing.T) {
	s := New()
	s.Run(5)
	if s.Now() != 5 {
		t.Errorf("Now = %v", s.Now())
	}
	s.Run(3) // horizon behind clock: no-op
	if s.Now() != 5 {
		t.Errorf("clock moved backwards: %v", s.Now())
	}
}
