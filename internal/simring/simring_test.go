package simring

import (
	"math"
	"testing"
)

func TestEventOrdering(t *testing.T) {
	s := New()
	var order []int
	s.At(3, func() { order = append(order, 3) })
	s.At(1, func() { order = append(order, 1) })
	s.At(2, func() { order = append(order, 2) })
	s.Run(10)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
	if s.Now() != 10 {
		t.Errorf("Now = %v, want horizon 10", s.Now())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		s.At(1, func() { order = append(order, i) })
	}
	s.Run(1)
	for i, v := range order {
		if v != i {
			t.Fatalf("simultaneous events out of scheduling order: %v", order)
		}
	}
}

func TestRunHorizon(t *testing.T) {
	s := New()
	ran := []float64{}
	s.At(1, func() { ran = append(ran, 1) })
	s.At(5, func() { ran = append(ran, 5) })
	n := s.Run(3)
	if n != 1 || len(ran) != 1 {
		t.Errorf("Run(3) executed %d events: %v", n, ran)
	}
	if s.Pending() != 1 {
		t.Errorf("Pending = %d", s.Pending())
	}
	// Event exactly at the horizon still runs.
	n = s.Run(5)
	if n != 1 || len(ran) != 2 {
		t.Errorf("horizon-inclusive run failed: %v", ran)
	}
}

func TestAfterAndNestedScheduling(t *testing.T) {
	s := New()
	var times []float64
	s.At(1, func() {
		times = append(times, s.Now())
		s.After(2, func() { times = append(times, s.Now()) })
	})
	s.Run(10)
	if len(times) != 2 || times[0] != 1 || times[1] != 3 {
		t.Errorf("times = %v", times)
	}
}

func TestDrain(t *testing.T) {
	s := New()
	count := 0
	s.At(100, func() { count++ })
	s.At(1e6, func() { count++ })
	if n := s.Drain(); n != 2 || count != 2 {
		t.Errorf("Drain ran %d", n)
	}
	if s.Executed() != 2 {
		t.Errorf("Executed = %d", s.Executed())
	}
}

func TestSchedulePastPanics(t *testing.T) {
	s := New()
	s.At(5, func() {})
	s.Run(5)
	defer func() {
		if recover() == nil {
			t.Error("scheduling in the past should panic")
		}
	}()
	s.At(1, func() {})
}

func TestInvalidTimesPanics(t *testing.T) {
	s := New()
	for _, bad := range []float64{math.NaN(), math.Inf(1)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("time %v should panic", bad)
				}
			}()
			s.At(bad, func() {})
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("negative delay should panic")
			}
		}()
		s.After(-1, func() {})
	}()
}

func TestClockMonotoneAcrossRuns(t *testing.T) {
	s := New()
	s.Run(5)
	if s.Now() != 5 {
		t.Errorf("Now = %v", s.Now())
	}
	s.Run(3) // horizon behind clock: no-op
	if s.Now() != 5 {
		t.Errorf("clock moved backwards: %v", s.Now())
	}
}
