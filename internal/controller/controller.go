// Package controller implements DiffServe's control path: it collects
// runtime statistics from the data path (queue lengths, arrival rates,
// SLO timeouts), maintains an exponentially weighted moving average of
// demand, periodically invokes the resource allocator, and logs the
// resulting plans. The AIMD batching ablation lives here too: when
// enabled, the controller overrides the optimizer's batch sizes with
// reactive AIMD decisions.
package controller

import (
	"fmt"

	"diffserve/internal/allocator"
	"diffserve/internal/milp"
	"diffserve/internal/stats"
)

// PlanAt is a timestamped allocation decision.
type PlanAt struct {
	Time   float64
	Demand float64
	Plan   allocator.Plan
}

// Config parameterizes the controller.
type Config struct {
	// Alloc computes allocation plans.
	Alloc allocator.Allocator
	// Interval is the control period in seconds (default 2).
	Interval float64
	// EWMAAlpha smooths demand estimates (default 0.5).
	EWMAAlpha float64
	// AIMD enables the reactive batching ablation: batch sizes follow
	// additive-increase/multiplicative-decrease on SLO timeouts
	// instead of the optimizer's choice.
	AIMD bool
	// AIMDBatchSizes is the AIMD grid (defaults to the standard grid).
	AIMDBatchSizes []int
}

// Controller drives periodic re-allocation.
type Controller struct {
	cfg        Config
	demand     *stats.EWMA
	aimdLight  *allocator.AIMDBatcher
	aimdHeavy  *allocator.AIMDBatcher
	plans      []PlanAt
	ticks      int
	totalSolve float64
}

// New constructs a controller.
func New(cfg Config) (*Controller, error) {
	if cfg.Alloc == nil {
		return nil, fmt.Errorf("controller: allocator required")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 2
	}
	if cfg.EWMAAlpha <= 0 || cfg.EWMAAlpha > 1 {
		cfg.EWMAAlpha = 0.5
	}
	c := &Controller{cfg: cfg, demand: stats.NewEWMA(cfg.EWMAAlpha)}
	if cfg.AIMD {
		c.aimdLight = allocator.NewAIMDBatcher(cfg.AIMDBatchSizes)
		c.aimdHeavy = allocator.NewAIMDBatcher(cfg.AIMDBatchSizes)
	}
	return c, nil
}

// Interval returns the control period.
func (c *Controller) Interval() float64 { return c.cfg.Interval }

// TickInput carries the runtime statistics observed since the last
// control tick.
type TickInput struct {
	// Arrivals is the number of queries that arrived in the interval.
	Arrivals int
	// ElapsedSeconds is the measured time since the previous tick.
	// Zero means exactly one configured interval (the discrete-event
	// simulator's case); the cluster runtime reports wall-derived
	// elapsed time because control ticks there take nonzero time.
	ElapsedSeconds float64
	// LightQueueLen / HeavyQueueLen are current pool queue lengths.
	LightQueueLen, HeavyQueueLen int
	// LightArrivalRate / HeavyArrivalRate are observed pool arrival
	// rates (queries/second).
	LightArrivalRate, HeavyArrivalRate float64
	// SLOTimeouts is the number of violations observed in the interval
	// (drives AIMD).
	SLOTimeouts int
}

// Tick runs one control period at time now and returns the new plan.
func (c *Controller) Tick(now float64, in TickInput) (allocator.Plan, error) {
	c.ticks++
	elapsed := in.ElapsedSeconds
	if elapsed <= 0 {
		elapsed = c.cfg.Interval
	}
	instRate := float64(in.Arrivals) / elapsed
	estimate := c.demand.Add(instRate)

	obs := allocator.Observation{
		Demand:           estimate,
		LightQueueLen:    in.LightQueueLen,
		HeavyQueueLen:    in.HeavyQueueLen,
		LightArrivalRate: in.LightArrivalRate,
		HeavyArrivalRate: in.HeavyArrivalRate,
	}
	plan, err := c.cfg.Alloc.Allocate(obs)
	if err != nil {
		return allocator.Plan{}, fmt.Errorf("controller: allocation failed: %w", err)
	}
	if c.cfg.AIMD {
		c.aimdLight.Observe(in.SLOTimeouts > 0)
		c.aimdHeavy.Observe(in.SLOTimeouts > 0)
		plan.LightBatch = c.aimdLight.Batch()
		plan.HeavyBatch = c.aimdHeavy.Batch()
	}
	c.totalSolve += plan.SolveTime.Seconds()
	c.plans = append(c.plans, PlanAt{Time: now, Demand: estimate, Plan: plan})
	return plan, nil
}

// Plans returns the timestamped plan log.
func (c *Controller) Plans() []PlanAt { return c.plans }

// DemandEstimate returns the current EWMA demand.
func (c *Controller) DemandEstimate() float64 { return c.demand.Value() }

// Ticks returns the number of control periods executed.
func (c *Controller) Ticks() int { return c.ticks }

// MeanSolveSeconds returns the average allocator solve time.
func (c *Controller) MeanSolveSeconds() float64 {
	if c.ticks == 0 {
		return 0
	}
	return c.totalSolve / float64(c.ticks)
}

// SolverStatser is implemented by allocators that expose internal
// solver path counters; the MILP allocator reports its incremental
// solver's warm/cold split through it.
type SolverStatser interface {
	SolveStats() milp.IncrementalStats
}

// SolveStats returns the allocator's solver path counters when the
// allocator exposes them; ok is false for allocators without an
// internal solver (grid, AIMD).
func (c *Controller) SolveStats() (st milp.IncrementalStats, ok bool) {
	if s, isStatser := c.cfg.Alloc.(SolverStatser); isStatser {
		return s.SolveStats(), true
	}
	return milp.IncrementalStats{}, false
}
