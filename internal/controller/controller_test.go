package controller

import (
	"errors"
	"math"
	"testing"

	"diffserve/internal/allocator"
	"diffserve/internal/milp"
)

// fakeAlloc records observations and returns a canned plan.
type fakeAlloc struct {
	obs  []allocator.Observation
	plan allocator.Plan
	err  error
}

func (f *fakeAlloc) Name() string { return "fake" }
func (f *fakeAlloc) Allocate(o allocator.Observation) (allocator.Plan, error) {
	f.obs = append(f.obs, o)
	return f.plan, f.err
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("nil allocator should fail")
	}
	c, err := New(Config{Alloc: &fakeAlloc{}})
	if err != nil {
		t.Fatal(err)
	}
	if c.Interval() != 2 {
		t.Errorf("default interval = %v", c.Interval())
	}
}

func TestTickDemandEWMA(t *testing.T) {
	fa := &fakeAlloc{plan: allocator.Plan{Feasible: true, LightBatch: 1, HeavyBatch: 1}}
	c, err := New(Config{Alloc: fa, Interval: 2, EWMAAlpha: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	// First tick: 20 arrivals over 2s -> 10 QPS; EWMA initializes to 10.
	if _, err := c.Tick(2, TickInput{Arrivals: 20}); err != nil {
		t.Fatal(err)
	}
	if got := c.DemandEstimate(); got != 10 {
		t.Errorf("demand = %v, want 10", got)
	}
	// Second tick: 0 arrivals -> EWMA 0.5*0 + 0.5*10 = 5.
	if _, err := c.Tick(4, TickInput{Arrivals: 0}); err != nil {
		t.Fatal(err)
	}
	if got := c.DemandEstimate(); got != 5 {
		t.Errorf("demand = %v, want 5", got)
	}
	if fa.obs[1].Demand != 5 {
		t.Errorf("allocator saw demand %v", fa.obs[1].Demand)
	}
	if c.Ticks() != 2 {
		t.Errorf("Ticks = %d", c.Ticks())
	}
}

func TestTickPassesQueueState(t *testing.T) {
	fa := &fakeAlloc{plan: allocator.Plan{Feasible: true}}
	c, _ := New(Config{Alloc: fa})
	in := TickInput{
		Arrivals:      4,
		LightQueueLen: 7, HeavyQueueLen: 3,
		LightArrivalRate: 2.5, HeavyArrivalRate: 1.5,
	}
	if _, err := c.Tick(2, in); err != nil {
		t.Fatal(err)
	}
	got := fa.obs[0]
	if got.LightQueueLen != 7 || got.HeavyQueueLen != 3 ||
		got.LightArrivalRate != 2.5 || got.HeavyArrivalRate != 1.5 {
		t.Errorf("observation = %+v", got)
	}
}

func TestTickAllocatorError(t *testing.T) {
	fa := &fakeAlloc{err: errors.New("boom")}
	c, _ := New(Config{Alloc: fa})
	if _, err := c.Tick(2, TickInput{}); err == nil {
		t.Error("allocator error should propagate")
	}
}

func TestAIMDOverridesBatches(t *testing.T) {
	fa := &fakeAlloc{plan: allocator.Plan{Feasible: true, LightBatch: 32, HeavyBatch: 32}}
	c, err := New(Config{Alloc: fa, AIMD: true, AIMDBatchSizes: []int{1, 2, 4}})
	if err != nil {
		t.Fatal(err)
	}
	// No timeouts: AIMD grows from 1 to 2.
	plan, err := c.Tick(2, TickInput{})
	if err != nil {
		t.Fatal(err)
	}
	if plan.LightBatch != 2 || plan.HeavyBatch != 2 {
		t.Errorf("AIMD batches = %d/%d, want 2/2", plan.LightBatch, plan.HeavyBatch)
	}
	// Timeout: halves back to 1.
	plan, err = c.Tick(4, TickInput{SLOTimeouts: 3})
	if err != nil {
		t.Fatal(err)
	}
	if plan.LightBatch != 1 {
		t.Errorf("AIMD after timeout = %d, want 1", plan.LightBatch)
	}
}

func TestPlanLog(t *testing.T) {
	fa := &fakeAlloc{plan: allocator.Plan{Feasible: true, Threshold: 0.4}}
	c, _ := New(Config{Alloc: fa})
	c.Tick(2, TickInput{Arrivals: 10})
	c.Tick(4, TickInput{Arrivals: 12})
	plans := c.Plans()
	if len(plans) != 2 {
		t.Fatalf("plan log = %d entries", len(plans))
	}
	if plans[0].Time != 2 || plans[1].Time != 4 {
		t.Errorf("plan times = %v, %v", plans[0].Time, plans[1].Time)
	}
	if plans[0].Plan.Threshold != 0.4 {
		t.Errorf("logged threshold = %v", plans[0].Plan.Threshold)
	}
	if math.IsNaN(c.MeanSolveSeconds()) {
		t.Error("MeanSolveSeconds NaN")
	}
}

func TestMeanSolveSecondsEmpty(t *testing.T) {
	c, _ := New(Config{Alloc: &fakeAlloc{}})
	if c.MeanSolveSeconds() != 0 {
		t.Error("no ticks should mean 0 solve time")
	}
}

// statsAlloc is a fakeAlloc that also exposes solver path counters.
type statsAlloc struct {
	fakeAlloc
	stats milp.IncrementalStats
}

func (s *statsAlloc) SolveStats() milp.IncrementalStats { return s.stats }

func TestSolveStatsSurfacesAllocatorCounters(t *testing.T) {
	plain, err := New(Config{Alloc: &fakeAlloc{}})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := plain.SolveStats(); ok {
		t.Error("plain allocator should not report solver stats")
	}

	sa := &statsAlloc{stats: milp.IncrementalStats{Solves: 3, WarmLPs: 7, ColdLPs: 2}}
	c, err := New(Config{Alloc: sa})
	if err != nil {
		t.Fatal(err)
	}
	st, ok := c.SolveStats()
	if !ok {
		t.Fatal("stats-capable allocator not detected")
	}
	if st.WarmLPs != 7 || st.ColdLPs != 2 || st.Solves != 3 {
		t.Errorf("stats passthrough mangled: %+v", st)
	}
}
