package metrics

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestWriteRecordsCSV(t *testing.T) {
	c := NewCollector()
	c.Record(QueryRecord{ID: 1, Arrival: 0.5, Completion: 1.5, Deadline: 5.5, ServedBy: "sdturbo", Confidence: 0.7})
	c.Record(QueryRecord{ID: 2, Arrival: 1, Dropped: true, Deadline: 6})
	var buf bytes.Buffer
	if err := c.WriteRecordsCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d, want header + 2", len(lines))
	}
	if !strings.HasPrefix(lines[0], "id,arrival,completion") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "sdturbo") {
		t.Errorf("row 1 = %q", lines[1])
	}
	if !strings.Contains(lines[2], "true") {
		t.Errorf("dropped row = %q", lines[2])
	}
}

func TestTimelineCSVRoundTrip(t *testing.T) {
	in := []Bucket{
		{Start: 0, End: 10, Arrivals: 42, Served: 40, Dropped: 1, Late: 1, DemandQPS: 4.2, ViolationRatio: 2.0 / 42, FID: 16.5, DeferRatio: 0.5},
		{Start: 10, End: 20, Arrivals: 0, FID: math.NaN()},
	}
	var buf bytes.Buffer
	if err := WriteTimelineCSV(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadTimelineCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("rows = %d", len(out))
	}
	if out[0].Arrivals != 42 || out[0].Served != 40 || out[0].Dropped != 1 {
		t.Errorf("row 0 = %+v", out[0])
	}
	if math.Abs(out[0].FID-16.5) > 1e-9 || math.Abs(out[0].ViolationRatio-2.0/42) > 1e-9 {
		t.Errorf("row 0 floats = %+v", out[0])
	}
	if !math.IsNaN(out[1].FID) {
		t.Errorf("NaN FID did not round trip: %v", out[1].FID)
	}
}

func TestReadTimelineCSVErrors(t *testing.T) {
	if _, err := ReadTimelineCSV(strings.NewReader("")); err == nil {
		t.Error("empty input should fail")
	}
	if _, err := ReadTimelineCSV(strings.NewReader("h1,h2\n1,2\n")); err == nil {
		t.Error("wrong column count should fail")
	}
	bad := "start,end,arrivals,served,dropped,late,demand_qps,violation_ratio,fid,defer_ratio\nx,0,0,0,0,0,0,0,,0\n"
	if _, err := ReadTimelineCSV(strings.NewReader(bad)); err == nil {
		t.Error("garbage float should fail")
	}
}
