package metrics

import (
	"math"
	"testing"

	"diffserve/internal/fid"
	"diffserve/internal/stats"
)

func TestQueryRecordPredicates(t *testing.T) {
	onTime := QueryRecord{Arrival: 0, Completion: 3, Deadline: 5}
	if onTime.Late() || onTime.Violated() {
		t.Error("on-time record misclassified")
	}
	if onTime.Latency() != 3 {
		t.Errorf("latency = %v", onTime.Latency())
	}
	late := QueryRecord{Arrival: 0, Completion: 6, Deadline: 5}
	if !late.Late() || !late.Violated() {
		t.Error("late record misclassified")
	}
	dropped := QueryRecord{Dropped: true, Deadline: 5}
	if dropped.Late() {
		t.Error("dropped records are not late")
	}
	if !dropped.Violated() {
		t.Error("dropped records violate the SLO")
	}
	if !math.IsNaN(dropped.Latency()) {
		t.Error("dropped latency should be NaN")
	}
}

func TestCollectorRatios(t *testing.T) {
	c := NewCollector()
	if c.SLOViolationRatio() != 0 || c.DropRatio() != 0 || c.DeferRatio() != 0 {
		t.Error("empty collector ratios should be 0")
	}
	feats := []float64{1, 2}
	c.Record(QueryRecord{Arrival: 0, Completion: 1, Deadline: 5, Features: feats})
	c.Record(QueryRecord{Arrival: 0, Completion: 9, Deadline: 5, Features: feats, Deferred: true})
	c.Record(QueryRecord{Dropped: true, Deadline: 5})
	c.Record(QueryRecord{Arrival: 0, Completion: 2, Deadline: 5, Features: feats, Deferred: true})

	if got := c.SLOViolationRatio(); got != 0.5 {
		t.Errorf("violation ratio = %v, want 0.5", got)
	}
	if got := c.DropRatio(); got != 0.25 {
		t.Errorf("drop ratio = %v, want 0.25", got)
	}
	if got := c.DeferRatio(); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("defer ratio = %v, want 2/3", got)
	}
	if c.Len() != 4 {
		t.Errorf("Len = %d", c.Len())
	}
	if len(c.ServedFeatures()) != 3 {
		t.Errorf("served features = %d", len(c.ServedFeatures()))
	}
}

func TestCollectorLatencyStats(t *testing.T) {
	c := NewCollector()
	for i, lat := range []float64{1, 2, 3, 4} {
		c.Record(QueryRecord{ID: i, Arrival: 0, Completion: lat, Deadline: 10})
	}
	c.Record(QueryRecord{Dropped: true})
	if got := c.MeanLatency(); got != 2.5 {
		t.Errorf("mean latency = %v", got)
	}
	if got := c.LatencyQuantile(0.5); got != 2.5 {
		t.Errorf("median latency = %v", got)
	}
}

func TestCollectorFID(t *testing.T) {
	rng := stats.NewRNG(1)
	dim := 4
	ref := fid.ExactReference(dim)
	c := NewCollector()
	if _, err := c.FID(ref); err == nil {
		t.Error("FID with no served images should fail")
	}
	for i := 0; i < 1000; i++ {
		c.Record(QueryRecord{
			ID: i, Arrival: 0, Completion: 1, Deadline: 5,
			Features: rng.NormalVec(nil, dim, 0, 1),
		})
	}
	v, err := c.FID(ref)
	if err != nil {
		t.Fatal(err)
	}
	if v > 0.5 {
		t.Errorf("FID of reference-matching sample = %v, want near 0", v)
	}
}

func TestTimelineBuckets(t *testing.T) {
	c := NewCollector()
	// Bucket 0: two served (one late), one dropped. Bucket 2: one served.
	c.Record(QueryRecord{ID: 0, Arrival: 1, Completion: 2, Deadline: 6, Features: []float64{0, 0}})
	c.Record(QueryRecord{ID: 1, Arrival: 5, Completion: 20, Deadline: 10, Features: []float64{1, 1}, Deferred: true})
	c.Record(QueryRecord{ID: 2, Arrival: 8, Dropped: true, Deadline: 13})
	c.Record(QueryRecord{ID: 3, Arrival: 25, Completion: 26, Deadline: 30, Features: []float64{2, 2}})

	buckets, err := c.Timeline(10, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(buckets) != 3 {
		t.Fatalf("buckets = %d, want 3", len(buckets))
	}
	b0 := buckets[0]
	if b0.Arrivals != 3 || b0.Served != 2 || b0.Dropped != 1 || b0.Late != 1 {
		t.Errorf("bucket 0 = %+v", b0)
	}
	if math.Abs(b0.ViolationRatio-2.0/3) > 1e-12 {
		t.Errorf("bucket 0 violation = %v", b0.ViolationRatio)
	}
	if b0.DemandQPS != 0.3 {
		t.Errorf("bucket 0 demand = %v", b0.DemandQPS)
	}
	if math.Abs(b0.DeferRatio-0.5) > 1e-12 {
		t.Errorf("bucket 0 defer = %v", b0.DeferRatio)
	}
	if buckets[1].Arrivals != 0 {
		t.Errorf("bucket 1 should be empty")
	}
	if buckets[2].Served != 1 {
		t.Errorf("bucket 2 = %+v", buckets[2])
	}
	// FID skipped (below sample minimum): NaN.
	if !math.IsNaN(b0.FID) {
		t.Errorf("bucket FID should be NaN without reference")
	}
}

func TestTimelineWithFID(t *testing.T) {
	rng := stats.NewRNG(2)
	dim := 3
	ref := fid.ExactReference(dim)
	c := NewCollector()
	for i := 0; i < 200; i++ {
		c.Record(QueryRecord{
			ID: i, Arrival: float64(i) * 0.01, Completion: float64(i)*0.01 + 1,
			Deadline: float64(i)*0.01 + 5, Features: rng.NormalVec(nil, dim, 0, 1),
		})
	}
	buckets, err := c.Timeline(10, ref, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(buckets) != 1 {
		t.Fatalf("buckets = %d", len(buckets))
	}
	if math.IsNaN(buckets[0].FID) {
		t.Error("bucket FID should be computed with 200 >= 50 samples")
	}
}

func TestTimelineErrors(t *testing.T) {
	c := NewCollector()
	if _, err := c.Timeline(0, nil, 0); err == nil {
		t.Error("zero bucket width should fail")
	}
	bs, err := c.Timeline(10, nil, 0)
	if err != nil || bs != nil {
		t.Error("empty collector timeline should be nil, nil")
	}
}

func TestSummarize(t *testing.T) {
	rng := stats.NewRNG(3)
	ref := fid.ExactReference(2)
	c := NewCollector()
	for i := 0; i < 100; i++ {
		c.Record(QueryRecord{
			ID: i, Arrival: 0, Completion: 1, Deadline: 5,
			Features: rng.NormalVec(nil, 2, 0, 1),
		})
	}
	s := c.Summarize(ref)
	if s.Queries != 100 || s.ViolationRatio != 0 || math.IsNaN(s.FID) {
		t.Errorf("summary = %+v", s)
	}
	// Without a reference the FID is NaN but everything else works.
	s2 := c.Summarize(nil)
	if !math.IsNaN(s2.FID) {
		t.Error("FID without reference should be NaN")
	}
}
