// Package metrics collects per-query serving records and aggregates
// them into the two headline statistics of the paper's evaluation —
// response quality (FID of served images against the ground-truth
// set) and SLO violation ratio (late or dropped queries) — plus
// time-bucketed series for the timeline figures.
package metrics

import (
	"fmt"
	"math"
	"sort"

	"diffserve/internal/fid"
	"diffserve/internal/stats"
)

// QueryRecord is the outcome of one query.
type QueryRecord struct {
	ID         int
	Arrival    float64
	Completion float64 // meaningful only when !Dropped
	Deadline   float64 // arrival + SLO
	Dropped    bool
	Deferred   bool    // served by the heavy model after cascading
	ServedBy   string  // variant name; empty when dropped
	Confidence float64 // discriminator confidence of the light image
	Features   []float64
	Artifact   float64
}

// Late reports whether the query completed after its deadline.
func (r QueryRecord) Late() bool { return !r.Dropped && r.Completion > r.Deadline }

// Violated reports whether the query counts as an SLO violation
// (dropped or late), the paper's definition.
func (r QueryRecord) Violated() bool { return r.Dropped || r.Late() }

// Latency returns the end-to-end latency, or NaN when dropped.
func (r QueryRecord) Latency() float64 {
	if r.Dropped {
		return math.NaN()
	}
	return r.Completion - r.Arrival
}

// Collector accumulates query records.
type Collector struct {
	records []QueryRecord
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// Record appends a query outcome.
func (c *Collector) Record(r QueryRecord) { c.records = append(c.records, r) }

// Len returns the number of recorded queries.
func (c *Collector) Len() int { return len(c.records) }

// Records returns the raw records (not copied; treat as read-only).
func (c *Collector) Records() []QueryRecord { return c.records }

// SLOViolationRatio returns the fraction of queries dropped or late.
func (c *Collector) SLOViolationRatio() float64 {
	if len(c.records) == 0 {
		return 0
	}
	bad := 0
	for _, r := range c.records {
		if r.Violated() {
			bad++
		}
	}
	return float64(bad) / float64(len(c.records))
}

// DropRatio returns the fraction of queries dropped.
func (c *Collector) DropRatio() float64 {
	if len(c.records) == 0 {
		return 0
	}
	n := 0
	for _, r := range c.records {
		if r.Dropped {
			n++
		}
	}
	return float64(n) / float64(len(c.records))
}

// DeferRatio returns the fraction of completed queries served by the
// heavy model.
func (c *Collector) DeferRatio() float64 {
	total, deferred := 0, 0
	for _, r := range c.records {
		if r.Dropped {
			continue
		}
		total++
		if r.Deferred {
			deferred++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(deferred) / float64(total)
}

// ServedFeatures returns the feature vectors of all completed queries.
func (c *Collector) ServedFeatures() [][]float64 {
	var out [][]float64
	for _, r := range c.records {
		if !r.Dropped && r.Features != nil {
			out = append(out, r.Features)
		}
	}
	return out
}

// FID computes the response-quality FID of all served images against
// the reference. It returns an error when fewer than two images were
// served.
func (c *Collector) FID(ref *fid.Reference) (float64, error) {
	feats := c.ServedFeatures()
	if len(feats) < 2 {
		return 0, fmt.Errorf("metrics: %d served images, need >= 2 for FID", len(feats))
	}
	return ref.Score(feats)
}

// LatencyQuantile returns the q-quantile of completed-query latency.
func (c *Collector) LatencyQuantile(q float64) float64 {
	var ls []float64
	for _, r := range c.records {
		if !r.Dropped {
			ls = append(ls, r.Completion-r.Arrival)
		}
	}
	return stats.Quantile(ls, q)
}

// MeanLatency returns the mean completed-query latency.
func (c *Collector) MeanLatency() float64 {
	var ls []float64
	for _, r := range c.records {
		if !r.Dropped {
			ls = append(ls, r.Completion-r.Arrival)
		}
	}
	return stats.Mean(ls)
}

// Bucket is one time window of the serving timeline.
type Bucket struct {
	Start, End float64
	Arrivals   int
	Served     int
	Dropped    int
	Late       int
	// DemandQPS is arrivals divided by bucket width.
	DemandQPS float64
	// ViolationRatio is (dropped+late)/arrivals, 0 when no arrivals.
	ViolationRatio float64
	// FID of images served in the bucket; NaN when fewer than the
	// minimum sample count completed.
	FID float64
	// DeferRatio is the fraction of the bucket's served queries that
	// were deferred to the heavy model.
	DeferRatio float64
}

// Timeline aggregates records into fixed-width buckets by arrival
// time. ref may be nil to skip FID computation. minFIDSamples guards
// against meaningless small-sample FIDs (default 32 when <= 0).
func (c *Collector) Timeline(bucketSecs float64, ref *fid.Reference, minFIDSamples int) ([]Bucket, error) {
	if bucketSecs <= 0 {
		return nil, fmt.Errorf("metrics: bucketSecs must be positive")
	}
	if len(c.records) == 0 {
		return nil, nil
	}
	if minFIDSamples <= 0 {
		minFIDSamples = 32
	}
	recs := append([]QueryRecord(nil), c.records...)
	sort.Slice(recs, func(i, j int) bool { return recs[i].Arrival < recs[j].Arrival })
	last := recs[len(recs)-1].Arrival
	n := int(last/bucketSecs) + 1
	buckets := make([]Bucket, n)
	feats := make([][][]float64, n)
	for i := range buckets {
		buckets[i].Start = float64(i) * bucketSecs
		buckets[i].End = float64(i+1) * bucketSecs
	}
	for _, r := range recs {
		i := int(r.Arrival / bucketSecs)
		b := &buckets[i]
		b.Arrivals++
		switch {
		case r.Dropped:
			b.Dropped++
		case r.Late():
			b.Late++
			b.Served++
		default:
			b.Served++
		}
		if !r.Dropped && r.Features != nil {
			feats[i] = append(feats[i], r.Features)
			if r.Deferred {
				b.DeferRatio++ // numerator; normalized below
			}
		}
	}
	for i := range buckets {
		b := &buckets[i]
		b.DemandQPS = float64(b.Arrivals) / bucketSecs
		if b.Arrivals > 0 {
			b.ViolationRatio = float64(b.Dropped+b.Late) / float64(b.Arrivals)
		}
		if b.Served > 0 {
			b.DeferRatio /= float64(b.Served)
		}
		b.FID = math.NaN()
		if ref != nil && len(feats[i]) >= minFIDSamples {
			v, err := ref.Score(feats[i])
			if err != nil {
				return nil, err
			}
			b.FID = v
		}
	}
	return buckets, nil
}

// Summary is a compact end-to-end result for comparison tables.
type Summary struct {
	Queries        int
	FID            float64
	ViolationRatio float64
	DropRatio      float64
	DeferRatio     float64
	MeanLatency    float64
	P99Latency     float64
}

// Summarize computes the end-to-end summary. FID is NaN when not
// computable.
func (c *Collector) Summarize(ref *fid.Reference) Summary {
	s := Summary{
		Queries:        c.Len(),
		ViolationRatio: c.SLOViolationRatio(),
		DropRatio:      c.DropRatio(),
		DeferRatio:     c.DeferRatio(),
		MeanLatency:    c.MeanLatency(),
		P99Latency:     c.LatencyQuantile(0.99),
		FID:            math.NaN(),
	}
	if ref != nil {
		if v, err := c.FID(ref); err == nil {
			s.FID = v
		}
	}
	return s
}
