// Package metrics collects per-query serving records and aggregates
// them into the two headline statistics of the paper's evaluation —
// response quality (FID of served images against the ground-truth
// set) and SLO violation ratio (late or dropped queries) — plus
// time-bucketed series for the timeline figures.
package metrics

import (
	"fmt"
	"math"

	"diffserve/internal/fid"
	"diffserve/internal/stats"
)

// QueryRecord is the outcome of one query.
type QueryRecord struct {
	ID         int
	Arrival    float64
	Completion float64 // meaningful only when !Dropped
	Deadline   float64 // arrival + SLO
	Dropped    bool
	Deferred   bool    // served by the heavy model after cascading
	ServedBy   string  // variant name; empty when dropped
	Confidence float64 // discriminator confidence of the light image
	Features   []float64
	Artifact   float64
}

// Late reports whether the query completed after its deadline.
func (r QueryRecord) Late() bool { return !r.Dropped && r.Completion > r.Deadline }

// Violated reports whether the query counts as an SLO violation
// (dropped or late), the paper's definition.
func (r QueryRecord) Violated() bool { return r.Dropped || r.Late() }

// Latency returns the end-to-end latency, or NaN when dropped.
func (r QueryRecord) Latency() float64 {
	if r.Dropped {
		return math.NaN()
	}
	return r.Completion - r.Arrival
}

// Collector accumulates query records. All headline statistics are
// maintained incrementally at Record time (streaming moments for FID,
// counters for ratios), so Summarize, FID, and Timeline are cheap
// finalizations rather than re-scans of every record.
type Collector struct {
	records []QueryRecord

	// Streaming per-run state.
	violated int
	dropped  int
	served   int // completed (not dropped)
	deferred int // completed and served by the heavy model
	latSum   float64
	lats     []float64                // completed-query latencies, record order
	acc      *stats.MomentAccumulator // features of completed queries
	// dimErr records an inconsistent feature dimensionality seen at
	// Record time; FID and Timeline surface it as an error, matching
	// the pre-streaming behavior of the batch moments path.
	dimErr error

	// Streaming per-bucket state for Timeline, keyed to a bucket
	// width: built lazily on the first Timeline call and maintained
	// incrementally by Record afterwards.
	bucketSecs float64
	buckets    []bucketAcc

	// featSlab is the append-only arena backing InternFeatures copies.
	// Slabs are never shrunk or recycled while the collector lives, so
	// an interned slice stays valid (and immutable, by convention) for
	// the collector's lifetime even after the slab rolls over.
	featSlab []float64
}

// bucketAcc is the streaming state of one timeline bucket.
type bucketAcc struct {
	arrivals, served, dropped, late int
	// deferredServed counts completed-with-features deferred queries
	// (the timeline DeferRatio numerator).
	deferredServed int
	acc            *stats.MomentAccumulator
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// Record appends a query outcome and folds it into the streaming
// aggregates.
func (c *Collector) Record(r QueryRecord) {
	c.records = append(c.records, r)
	if r.Violated() {
		c.violated++
	}
	if r.Dropped {
		c.dropped++
	} else {
		c.served++
		if r.Deferred {
			c.deferred++
		}
		lat := r.Completion - r.Arrival
		c.latSum += lat
		c.lats = append(c.lats, lat)
		if r.Features != nil {
			if c.acc == nil {
				c.acc = stats.NewMomentAccumulator(len(r.Features))
			}
			if len(r.Features) == c.acc.Dim() {
				c.acc.Add(r.Features)
			} else if c.dimErr == nil {
				c.dimErr = fmt.Errorf("metrics: inconsistent feature dims %d vs %d", len(r.Features), c.acc.Dim())
			}
		}
	}
	if c.bucketSecs > 0 {
		c.bucketAdd(r)
	}
}

// featSlabSize is the float capacity of one arena slab. One slab
// serves ~4k 16-dim feature vectors before the next allocation, so
// interning is allocation-free in steady state.
const featSlabSize = 1 << 16

// InternFeatures copies f into the collector's append-only feature
// arena and returns the copy. The returned slice is owned by the
// collector, valid for its lifetime, and must be treated as
// immutable; the caller's slice is not retained and may be reused or
// recycled immediately. Callers on the pooled wire path intern a
// decoded feature vector once and hand the same interned slice to
// both Record and the query's result, so the decode buffer can go
// back to its pool the moment the handler returns.
func (c *Collector) InternFeatures(f []float64) []float64 {
	if f == nil {
		return nil
	}
	if len(c.featSlab)+len(f) > cap(c.featSlab) {
		sz := featSlabSize
		if len(f) > sz {
			sz = len(f)
		}
		// Earlier interned slices keep referencing the old slab; it is
		// simply abandoned to them.
		c.featSlab = make([]float64, 0, sz)
	}
	start := len(c.featSlab)
	c.featSlab = append(c.featSlab, f...)
	return c.featSlab[start:len(c.featSlab):len(c.featSlab)]
}

// Merge folds every record of other into c by replaying them through
// Record, so the streaming aggregates (counters, moments, lazily
// built timeline buckets) stay consistent with the merged record set.
// The sharded cluster harness uses it to combine per-shard collectors
// into one run-level view after a run ends; other must not be
// recording concurrently.
func (c *Collector) Merge(other *Collector) {
	for _, r := range other.records {
		c.Record(r)
	}
}

// Len returns the number of recorded queries.
func (c *Collector) Len() int { return len(c.records) }

// Records returns the raw records (not copied; treat as read-only).
func (c *Collector) Records() []QueryRecord { return c.records }

// SLOViolationRatio returns the fraction of queries dropped or late.
func (c *Collector) SLOViolationRatio() float64 {
	if len(c.records) == 0 {
		return 0
	}
	return float64(c.violated) / float64(len(c.records))
}

// DropRatio returns the fraction of queries dropped.
func (c *Collector) DropRatio() float64 {
	if len(c.records) == 0 {
		return 0
	}
	return float64(c.dropped) / float64(len(c.records))
}

// DeferRatio returns the fraction of completed queries served by the
// heavy model.
func (c *Collector) DeferRatio() float64 {
	if c.served == 0 {
		return 0
	}
	return float64(c.deferred) / float64(c.served)
}

// ServedFeatures returns the feature vectors of all completed queries.
func (c *Collector) ServedFeatures() [][]float64 {
	var out [][]float64
	for _, r := range c.records {
		if !r.Dropped && r.Features != nil {
			out = append(out, r.Features)
		}
	}
	return out
}

// ServedMoments returns the streaming moment accumulator of all
// completed-query features (nil when no features were recorded).
// Treat as read-only.
func (c *Collector) ServedMoments() *stats.MomentAccumulator { return c.acc }

// FID computes the response-quality FID of all served images against
// the reference from the streamed moments. It returns an error when
// fewer than two images were served.
func (c *Collector) FID(ref *fid.Reference) (float64, error) {
	if c.dimErr != nil {
		return 0, c.dimErr
	}
	n := 0
	if c.acc != nil {
		n = c.acc.Count()
	}
	if n < 2 {
		return 0, fmt.Errorf("metrics: %d served images, need >= 2 for FID", n)
	}
	return ref.ScoreMoments(c.acc)
}

// LatencyQuantile returns the q-quantile of completed-query latency.
func (c *Collector) LatencyQuantile(q float64) float64 {
	return stats.Quantile(c.lats, q)
}

// MeanLatency returns the mean completed-query latency.
func (c *Collector) MeanLatency() float64 {
	if c.served == 0 {
		return math.NaN()
	}
	return c.latSum / float64(c.served)
}

// Bucket is one time window of the serving timeline.
type Bucket struct {
	Start, End float64
	Arrivals   int
	Served     int
	Dropped    int
	Late       int
	// DemandQPS is arrivals divided by bucket width.
	DemandQPS float64
	// ViolationRatio is (dropped+late)/arrivals, 0 when no arrivals.
	ViolationRatio float64
	// FID of images served in the bucket; NaN when fewer than the
	// minimum sample count completed.
	FID float64
	// DeferRatio is the fraction of the bucket's served queries that
	// were deferred to the heavy model.
	DeferRatio float64
}

// bucketAdd folds one record into the streaming bucket state. Bucket
// assignment needs only the arrival index, so no global sort of the
// records is ever required.
func (c *Collector) bucketAdd(r QueryRecord) {
	i := int(r.Arrival / c.bucketSecs)
	for len(c.buckets) <= i {
		c.buckets = append(c.buckets, bucketAcc{})
	}
	b := &c.buckets[i]
	b.arrivals++
	switch {
	case r.Dropped:
		b.dropped++
	case r.Late():
		b.late++
		b.served++
	default:
		b.served++
	}
	if !r.Dropped && r.Features != nil {
		if b.acc == nil {
			b.acc = stats.NewMomentAccumulator(len(r.Features))
		}
		if len(r.Features) == b.acc.Dim() {
			b.acc.Add(r.Features)
		} else if c.dimErr == nil {
			c.dimErr = fmt.Errorf("metrics: inconsistent feature dims %d vs %d", len(r.Features), b.acc.Dim())
		}
		if r.Deferred {
			b.deferredServed++
		}
	}
}

// ensureBuckets (re)builds the streaming bucket state for the given
// width. After the first call, Record maintains it incrementally; a
// Timeline call with a different width triggers one rebuild.
func (c *Collector) ensureBuckets(bucketSecs float64) {
	if c.bucketSecs == bucketSecs && c.buckets != nil {
		return
	}
	c.bucketSecs = bucketSecs
	c.buckets = c.buckets[:0]
	for _, r := range c.records {
		c.bucketAdd(r)
	}
}

// Timeline aggregates records into fixed-width buckets by arrival
// time. ref may be nil to skip FID computation. minFIDSamples guards
// against meaningless small-sample FIDs (default 32 when <= 0).
func (c *Collector) Timeline(bucketSecs float64, ref *fid.Reference, minFIDSamples int) ([]Bucket, error) {
	if bucketSecs <= 0 {
		return nil, fmt.Errorf("metrics: bucketSecs must be positive")
	}
	if len(c.records) == 0 {
		return nil, nil
	}
	if minFIDSamples <= 0 {
		minFIDSamples = 32
	}
	c.ensureBuckets(bucketSecs)
	if ref != nil && c.dimErr != nil {
		return nil, c.dimErr
	}
	buckets := make([]Bucket, len(c.buckets))
	for i := range c.buckets {
		ba := &c.buckets[i]
		b := &buckets[i]
		b.Start = float64(i) * bucketSecs
		b.End = float64(i+1) * bucketSecs
		b.Arrivals = ba.arrivals
		b.Served = ba.served
		b.Dropped = ba.dropped
		b.Late = ba.late
		b.DemandQPS = float64(ba.arrivals) / bucketSecs
		if ba.arrivals > 0 {
			b.ViolationRatio = float64(ba.dropped+ba.late) / float64(ba.arrivals)
		}
		if ba.served > 0 {
			b.DeferRatio = float64(ba.deferredServed) / float64(ba.served)
		}
		b.FID = math.NaN()
		if ref != nil && ba.acc != nil && ba.acc.Count() >= minFIDSamples {
			v, err := ref.ScoreMoments(ba.acc)
			if err != nil {
				return nil, err
			}
			b.FID = v
		}
	}
	return buckets, nil
}

// Summary is a compact end-to-end result for comparison tables.
type Summary struct {
	Queries        int
	FID            float64
	ViolationRatio float64
	DropRatio      float64
	DeferRatio     float64
	MeanLatency    float64
	P99Latency     float64
}

// Summarize computes the end-to-end summary. FID is NaN when not
// computable.
func (c *Collector) Summarize(ref *fid.Reference) Summary {
	s := Summary{
		Queries:        c.Len(),
		ViolationRatio: c.SLOViolationRatio(),
		DropRatio:      c.DropRatio(),
		DeferRatio:     c.DeferRatio(),
		MeanLatency:    c.MeanLatency(),
		P99Latency:     c.LatencyQuantile(0.99),
		FID:            math.NaN(),
	}
	if ref != nil {
		if v, err := c.FID(ref); err == nil {
			s.FID = v
		}
	}
	return s
}
