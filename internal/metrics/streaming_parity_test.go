package metrics

import (
	"math"
	"sort"
	"testing"

	"diffserve/internal/fid"
	"diffserve/internal/stats"
)

// synthRecords fabricates a mixed population of served, late, dropped,
// and deferred records with feature vectors, in non-sorted arrival
// order (as a simulator emits them).
func synthRecords(seed uint64, n, dim int) []QueryRecord {
	rng := stats.NewRNG(seed)
	recs := make([]QueryRecord, n)
	for i := range recs {
		arrival := rng.Uniform(0, 100)
		r := QueryRecord{
			ID:       i,
			Arrival:  arrival,
			Deadline: arrival + 5,
		}
		switch {
		case rng.Bernoulli(0.1):
			r.Dropped = true
		default:
			r.Completion = arrival + rng.Uniform(0.1, 7)
			r.Deferred = rng.Bernoulli(0.4)
			r.ServedBy = "v"
			r.Features = rng.NormalVec(nil, dim, 0.2, 1.1)
		}
		recs[i] = r
	}
	return recs
}

// batchSummarize recomputes the summary the way the pre-streaming
// Collector did: full scans over the records.
func batchSummarize(recs []QueryRecord, ref *fid.Reference) Summary {
	s := Summary{Queries: len(recs), FID: math.NaN()}
	var feats [][]float64
	var lats []float64
	served, deferred, violated, dropped := 0, 0, 0, 0
	for _, r := range recs {
		if r.Violated() {
			violated++
		}
		if r.Dropped {
			dropped++
			continue
		}
		served++
		if r.Deferred {
			deferred++
		}
		lats = append(lats, r.Completion-r.Arrival)
		if r.Features != nil {
			feats = append(feats, r.Features)
		}
	}
	if len(recs) > 0 {
		s.ViolationRatio = float64(violated) / float64(len(recs))
		s.DropRatio = float64(dropped) / float64(len(recs))
	}
	if served > 0 {
		s.DeferRatio = float64(deferred) / float64(served)
	}
	s.MeanLatency = stats.Mean(lats)
	s.P99Latency = stats.Quantile(lats, 0.99)
	if ref != nil && len(feats) >= 2 {
		if v, err := ref.Score(feats); err == nil {
			s.FID = v
		}
	}
	return s
}

// batchTimeline is the pre-streaming Timeline implementation
// (sort-and-rescan) kept as a reference oracle.
func batchTimeline(recs []QueryRecord, bucketSecs float64, ref *fid.Reference, minFIDSamples int) ([]Bucket, error) {
	if len(recs) == 0 {
		return nil, nil
	}
	if minFIDSamples <= 0 {
		minFIDSamples = 32
	}
	sorted := append([]QueryRecord(nil), recs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Arrival < sorted[j].Arrival })
	last := sorted[len(sorted)-1].Arrival
	n := int(last/bucketSecs) + 1
	buckets := make([]Bucket, n)
	feats := make([][][]float64, n)
	for i := range buckets {
		buckets[i].Start = float64(i) * bucketSecs
		buckets[i].End = float64(i+1) * bucketSecs
	}
	for _, r := range sorted {
		i := int(r.Arrival / bucketSecs)
		b := &buckets[i]
		b.Arrivals++
		switch {
		case r.Dropped:
			b.Dropped++
		case r.Late():
			b.Late++
			b.Served++
		default:
			b.Served++
		}
		if !r.Dropped && r.Features != nil {
			feats[i] = append(feats[i], r.Features)
			if r.Deferred {
				b.DeferRatio++
			}
		}
	}
	for i := range buckets {
		b := &buckets[i]
		b.DemandQPS = float64(b.Arrivals) / bucketSecs
		if b.Arrivals > 0 {
			b.ViolationRatio = float64(b.Dropped+b.Late) / float64(b.Arrivals)
		}
		if b.Served > 0 {
			b.DeferRatio /= float64(b.Served)
		}
		b.FID = math.NaN()
		if ref != nil && len(feats[i]) >= minFIDSamples {
			v, err := ref.Score(feats[i])
			if err != nil {
				return nil, err
			}
			b.FID = v
		}
	}
	return buckets, nil
}

func closeOrBothNaN(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	return math.Abs(a-b) <= tol
}

// TestStreamingSummarizeMatchesBatch checks the streaming Collector
// against full-scan recomputation on synthetic populations.
func TestStreamingSummarizeMatchesBatch(t *testing.T) {
	const dim = 16
	ref := fid.ExactReference(dim)
	for _, n := range []int{0, 1, 5, 900} {
		c := NewCollector()
		recs := synthRecords(uint64(n)+3, n, dim)
		for _, r := range recs {
			c.Record(r)
		}
		got := c.Summarize(ref)
		want := batchSummarize(recs, ref)
		if got.Queries != want.Queries {
			t.Fatalf("n=%d: queries %d vs %d", n, got.Queries, want.Queries)
		}
		// Counter-based ratios must be exactly equal; the FID may
		// differ by streaming-vs-batch floating-point noise only.
		if got.ViolationRatio != want.ViolationRatio || got.DropRatio != want.DropRatio || got.DeferRatio != want.DeferRatio {
			t.Errorf("n=%d: ratios %+v vs %+v", n, got, want)
		}
		if !closeOrBothNaN(got.MeanLatency, want.MeanLatency, 0) {
			t.Errorf("n=%d: mean latency %v vs %v", n, got.MeanLatency, want.MeanLatency)
		}
		if !closeOrBothNaN(got.P99Latency, want.P99Latency, 0) {
			t.Errorf("n=%d: p99 latency %v vs %v", n, got.P99Latency, want.P99Latency)
		}
		if !closeOrBothNaN(got.FID, want.FID, 1e-9) {
			t.Errorf("n=%d: FID %v vs %v", n, got.FID, want.FID)
		}
	}
}

// TestStreamingTimelineMatchesBatch checks the incrementally
// maintained timeline against the sort-and-rescan oracle, including
// interleaving Timeline calls with further Records and switching
// bucket widths.
func TestStreamingTimelineMatchesBatch(t *testing.T) {
	const dim = 16
	ref := fid.ExactReference(dim)
	recs := synthRecords(42, 1200, dim)
	c := NewCollector()
	half := len(recs) / 2
	for _, r := range recs[:half] {
		c.Record(r)
	}

	check := func(label string, width float64, minSamples int, upto int) {
		t.Helper()
		got, err := c.Timeline(width, ref, minSamples)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		want, err := batchTimeline(recs[:upto], width, ref, minSamples)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: %d buckets vs %d", label, len(got), len(want))
		}
		for i := range got {
			g, w := got[i], want[i]
			if g.Arrivals != w.Arrivals || g.Served != w.Served || g.Dropped != w.Dropped || g.Late != w.Late {
				t.Fatalf("%s: bucket %d counts %+v vs %+v", label, i, g, w)
			}
			if g.Start != w.Start || g.End != w.End || g.DemandQPS != w.DemandQPS ||
				g.ViolationRatio != w.ViolationRatio || g.DeferRatio != w.DeferRatio {
				t.Fatalf("%s: bucket %d stats %+v vs %+v", label, i, g, w)
			}
			if !closeOrBothNaN(g.FID, w.FID, 1e-9) {
				t.Fatalf("%s: bucket %d FID %v vs %v", label, i, g.FID, w.FID)
			}
		}
	}

	check("first half", 10, 20, half)
	// Record more after the first Timeline call: the bucket state must
	// update incrementally.
	for _, r := range recs[half:] {
		c.Record(r)
	}
	check("full incremental", 10, 20, len(recs))
	// Width change triggers a rebuild.
	check("rebucketed", 7, 20, len(recs))
	// And back.
	check("re-rebucketed", 10, 20, len(recs))
}

// TestInconsistentFeatureDimsSurfaceAsError checks that a feature
// dimension mismatch seen at Record time surfaces as an error from
// FID and Timeline (as the batch moments path used to report) rather
// than a panic.
func TestInconsistentFeatureDimsSurfaceAsError(t *testing.T) {
	ref := fid.ExactReference(4)
	c := NewCollector()
	c.Record(QueryRecord{ID: 0, Arrival: 0, Completion: 1, Deadline: 5, Features: []float64{1, 2, 3, 4}})
	c.Record(QueryRecord{ID: 1, Arrival: 1, Completion: 2, Deadline: 6, Features: []float64{1, 2}})
	c.Record(QueryRecord{ID: 2, Arrival: 2, Completion: 3, Deadline: 7, Features: []float64{4, 3, 2, 1}})
	if _, err := c.FID(ref); err == nil {
		t.Fatal("FID should report inconsistent feature dims")
	}
	if _, err := c.Timeline(10, ref, 1); err == nil {
		t.Fatal("Timeline should report inconsistent feature dims")
	}
	// Without a reference, the timeline's count statistics remain
	// available.
	buckets, err := c.Timeline(10, nil, 1)
	if err != nil || len(buckets) == 0 {
		t.Fatalf("ref-less timeline: %v %v", buckets, err)
	}
	if buckets[0].Arrivals != 3 {
		t.Fatalf("arrivals = %d", buckets[0].Arrivals)
	}
}
