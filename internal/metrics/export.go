package metrics

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"
)

// WriteRecordsCSV exports the raw per-query records in the artifact's
// log format: one row per query with arrival, completion, deadline,
// outcome, serving variant, and confidence. Plotting scripts consume
// these files to regenerate the timeline figures.
func (c *Collector) WriteRecordsCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{"id", "arrival", "completion", "deadline", "dropped", "late", "deferred", "served_by", "confidence"}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range c.records {
		row := []string{
			strconv.Itoa(r.ID),
			fmtF(r.Arrival),
			fmtF(r.Completion),
			fmtF(r.Deadline),
			strconv.FormatBool(r.Dropped),
			strconv.FormatBool(r.Late()),
			strconv.FormatBool(r.Deferred),
			r.ServedBy,
			fmtF(r.Confidence),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTimelineCSV exports time-bucketed statistics (demand, FID,
// violation ratio, defer ratio) — the series behind Figs 5 and 8.
func WriteTimelineCSV(w io.Writer, buckets []Bucket) error {
	cw := csv.NewWriter(w)
	header := []string{"start", "end", "arrivals", "served", "dropped", "late", "demand_qps", "violation_ratio", "fid", "defer_ratio"}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, b := range buckets {
		fid := ""
		if !math.IsNaN(b.FID) {
			fid = fmtF(b.FID)
		}
		row := []string{
			fmtF(b.Start), fmtF(b.End),
			strconv.Itoa(b.Arrivals), strconv.Itoa(b.Served),
			strconv.Itoa(b.Dropped), strconv.Itoa(b.Late),
			fmtF(b.DemandQPS), fmtF(b.ViolationRatio), fid, fmtF(b.DeferRatio),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func fmtF(v float64) string { return strconv.FormatFloat(v, 'g', 8, 64) }

// ReadTimelineCSV parses a timeline written by WriteTimelineCSV,
// enabling round-trip tooling (diffing runs, re-plotting).
func ReadTimelineCSV(r io.Reader) ([]Bucket, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("metrics: empty timeline CSV")
	}
	var out []Bucket
	for i, row := range rows[1:] {
		if len(row) != 10 {
			return nil, fmt.Errorf("metrics: row %d has %d fields, want 10", i+1, len(row))
		}
		var b Bucket
		var errs []error
		parse := func(s string) float64 {
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				errs = append(errs, err)
			}
			return v
		}
		parseI := func(s string) int {
			v, err := strconv.Atoi(s)
			if err != nil {
				errs = append(errs, err)
			}
			return v
		}
		b.Start = parse(row[0])
		b.End = parse(row[1])
		b.Arrivals = parseI(row[2])
		b.Served = parseI(row[3])
		b.Dropped = parseI(row[4])
		b.Late = parseI(row[5])
		b.DemandQPS = parse(row[6])
		b.ViolationRatio = parse(row[7])
		if row[8] == "" {
			b.FID = math.NaN()
		} else {
			b.FID = parse(row[8])
		}
		b.DeferRatio = parse(row[9])
		if len(errs) > 0 {
			return nil, fmt.Errorf("metrics: row %d: %v", i+1, errs[0])
		}
		out = append(out, b)
	}
	return out, nil
}
