package model

import (
	"fmt"
	"sort"

	"diffserve/internal/imagespace"
)

// Variant describes a servable diffusion-model variant: its identity,
// its profiled execution latency, and its calibrated generation
// parameters in the synthetic feature space.
type Variant struct {
	// Name is the registry key (e.g. "sdv15", "sdturbo").
	Name string
	// DisplayName is the human-readable name used in reports.
	DisplayName string
	// Steps is the number of denoising steps the variant runs.
	Steps int
	// Resolution is the output image resolution (square, pixels).
	Resolution int
	// Latency is the profiled batch execution latency.
	Latency *Profile
	// Gen holds the feature-space generation parameters.
	Gen imagespace.GenParams
	// LoadSeconds is the time to load the variant onto a worker when
	// the controller re-assigns models.
	LoadSeconds float64
}

// BaseLatency returns the batch-1 execution latency in seconds.
func (v *Variant) BaseLatency() float64 { return v.Latency.Latency(1) }

// Registry maps variant names to variants.
type Registry struct {
	variants map[string]*Variant
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{variants: make(map[string]*Variant)}
}

// Register adds a variant. It returns an error on duplicate names or
// invalid parameters.
func (r *Registry) Register(v *Variant) error {
	if v.Name == "" {
		return fmt.Errorf("model: variant name must be non-empty")
	}
	if _, ok := r.variants[v.Name]; ok {
		return fmt.Errorf("model: duplicate variant %q", v.Name)
	}
	if v.Latency == nil {
		return fmt.Errorf("model: variant %q has no latency profile", v.Name)
	}
	if err := v.Gen.Validate(); err != nil {
		return fmt.Errorf("model: variant %q: %w", v.Name, err)
	}
	r.variants[v.Name] = v
	return nil
}

// Get returns the named variant or an error.
func (r *Registry) Get(name string) (*Variant, error) {
	v, ok := r.variants[name]
	if !ok {
		return nil, fmt.Errorf("model: unknown variant %q", name)
	}
	return v, nil
}

// MustGet returns the named variant, panicking if absent. Use only
// with the built-in registry where presence is a program invariant.
func (r *Registry) MustGet(name string) *Variant {
	v, err := r.Get(name)
	if err != nil {
		panic(err)
	}
	return v
}

// Names returns all registered variant names, sorted.
func (r *Registry) Names() []string {
	names := make([]string, 0, len(r.variants))
	for n := range r.variants {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func mustProfile(base, overhead float64) *Profile {
	p, err := LinearProfile(base, overhead, StandardBatchSizes)
	if err != nil {
		panic(err)
	}
	return p
}

// BuiltinRegistry returns the registry of all variants evaluated in
// the paper, with batch-1 latencies matching the reported A100-80GB
// measurements (SDv1.5 ≈ 1.78 s, SD-Turbo ≈ 0.1 s, SDXS ≈ 0.05 s,
// SDXL-Lightning ≈ 0.5 s, SDXL ≈ 6 s) and batch-scaling overheads set
// so SDXL is ≈ 4.6× slower than SDXL-Lightning at batch 16 (§1 of the
// paper). Generation parameters are calibrated so standalone FIDs land
// near the paper's figures (see calibration tests).
func BuiltinRegistry() *Registry {
	r := NewRegistry()
	add := func(v *Variant) {
		if err := r.Register(v); err != nil {
			panic(err)
		}
	}

	// Cascade 1 & 2 heavyweight: Stable Diffusion v1.5, 50 steps.
	add(&Variant{
		Name: "sdv15", DisplayName: "SDv1.5", Steps: 50, Resolution: 512,
		Latency: mustProfile(1.78, 0.62),
		Gen: imagespace.GenParams{
			ArtifactBase: 4.00, ArtifactSlope: 0.90, ArtifactNoise: 0.35,
			DirSkew: 0.05, DirAxis: 1, Contraction: 0.93, NoiseStd: 0.18,
		},
		LoadSeconds: 8,
	})

	// Cascade 1 lightweight: SD-Turbo, 1 step.
	add(&Variant{
		Name: "sdturbo", DisplayName: "SD-Turbo", Steps: 1, Resolution: 512,
		Latency: mustProfile(0.10, 0.35),
		Gen: imagespace.GenParams{
			ArtifactBase: 2.90, ArtifactSlope: 5.50, ArtifactNoise: 0.55,
			DirSkew: 0.28, DirAxis: 2, Contraction: 0.88, NoiseStd: 0.30,
		},
		LoadSeconds: 3,
	})

	// Cascade 2 lightweight: SDXS-512-0.9, 1 step.
	add(&Variant{
		Name: "sdxs", DisplayName: "SDXS", Steps: 1, Resolution: 512,
		Latency: mustProfile(0.05, 0.30),
		Gen: imagespace.GenParams{
			ArtifactBase: 3.00, ArtifactSlope: 5.60, ArtifactNoise: 0.60,
			DirSkew: 0.34, DirAxis: 3, Contraction: 0.85, NoiseStd: 0.35,
		},
		LoadSeconds: 3,
	})

	// Cascade 3 heavyweight: SDXL, 50 steps, 1024x1024.
	add(&Variant{
		Name: "sdxl", DisplayName: "SDXL", Steps: 50, Resolution: 1024,
		Latency: mustProfile(6.0, 0.70),
		Gen: imagespace.GenParams{
			ArtifactBase: 4.20, ArtifactSlope: 0.80, ArtifactNoise: 0.35,
			DirSkew: 0.05, DirAxis: 1, Contraction: 0.92, NoiseStd: 0.20,
		},
		LoadSeconds: 15,
	})

	// Cascade 3 lightweight: SDXL-Lightning, 2 steps, 1024x1024.
	add(&Variant{
		Name: "sdxl-lightning", DisplayName: "SDXL-Lightning", Steps: 2, Resolution: 1024,
		Latency: mustProfile(0.50, 0.10),
		Gen: imagespace.GenParams{
			ArtifactBase: 3.60, ArtifactSlope: 5.00, ArtifactNoise: 0.55,
			DirSkew: 0.30, DirAxis: 2, Contraction: 0.87, NoiseStd: 0.30,
		},
		LoadSeconds: 6,
	})

	// Independent variants shown in the Fig 1a scatter.
	add(&Variant{
		Name: "sdv15-dpms", DisplayName: "SDv1.5 (DPMS++)", Steps: 20, Resolution: 512,
		Latency: mustProfile(0.75, 0.55),
		Gen: imagespace.GenParams{
			ArtifactBase: 4.05, ArtifactSlope: 1.30, ArtifactNoise: 0.40,
			DirSkew: 0.08, DirAxis: 1, Contraction: 0.92, NoiseStd: 0.20,
		},
		LoadSeconds: 8,
	})
	add(&Variant{
		Name: "sdxl-turbo", DisplayName: "SDXL-Turbo", Steps: 1, Resolution: 512,
		Latency: mustProfile(0.15, 0.35),
		Gen: imagespace.GenParams{
			ArtifactBase: 3.40, ArtifactSlope: 3.60, ArtifactNoise: 0.50,
			DirSkew: 0.22, DirAxis: 2, Contraction: 0.89, NoiseStd: 0.28,
		},
		LoadSeconds: 4,
	})
	add(&Variant{
		Name: "tinysd-dpms", DisplayName: "TinySD (DPMS++)", Steps: 20, Resolution: 512,
		Latency: mustProfile(0.40, 0.45),
		Gen: imagespace.GenParams{
			ArtifactBase: 3.90, ArtifactSlope: 3.80, ArtifactNoise: 0.55,
			DirSkew: 0.26, DirAxis: 3, Contraction: 0.88, NoiseStd: 0.30,
		},
		LoadSeconds: 3,
	})

	return r
}

// CascadeSpec names a light–heavy pair evaluated in the paper, its SLO
// and the dataset driving it.
type CascadeSpec struct {
	// Name is the cascade key ("cascade1", "cascade2", "cascade3").
	Name string
	// Light and Heavy are variant registry names.
	Light, Heavy string
	// SLOSeconds is the latency deadline for the cascade's experiments.
	SLOSeconds float64
	// Dataset is the evaluation dataset label (MS-COCO or DiffusionDB).
	Dataset string
}

// BuiltinCascades returns the three cascades of the paper's evaluation.
func BuiltinCascades() []CascadeSpec {
	return []CascadeSpec{
		{Name: "cascade1", Light: "sdturbo", Heavy: "sdv15", SLOSeconds: 5, Dataset: "mscoco-2017"},
		{Name: "cascade2", Light: "sdxs", Heavy: "sdv15", SLOSeconds: 5, Dataset: "mscoco-2017"},
		{Name: "cascade3", Light: "sdxl-lightning", Heavy: "sdxl", SLOSeconds: 15, Dataset: "diffusiondb"},
	}
}

// CascadeByName returns the named builtin cascade spec.
func CascadeByName(name string) (CascadeSpec, error) {
	for _, c := range BuiltinCascades() {
		if c.Name == name {
			return c, nil
		}
	}
	return CascadeSpec{}, fmt.Errorf("model: unknown cascade %q", name)
}
