package model

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewProfileValidation(t *testing.T) {
	cases := []struct {
		bs  []int
		lat []float64
	}{
		{nil, nil},
		{[]int{1, 2}, []float64{1}},
		{[]int{0, 2}, []float64{1, 2}},
		{[]int{2, 1}, []float64{1, 2}},
		{[]int{1, 2}, []float64{2, 1}},
		{[]int{1, 2}, []float64{-1, 1}},
	}
	for i, c := range cases {
		if _, err := NewProfile(c.bs, c.lat); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
	if _, err := NewProfile([]int{1, 4}, []float64{1, 2}); err != nil {
		t.Errorf("valid profile rejected: %v", err)
	}
}

func TestProfileInterpolation(t *testing.T) {
	p, err := NewProfile([]int{1, 4, 8}, []float64{1.0, 2.0, 4.0})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Latency(1); got != 1.0 {
		t.Errorf("Latency(1) = %v", got)
	}
	if got := p.Latency(4); got != 2.0 {
		t.Errorf("Latency(4) = %v", got)
	}
	// Midpoint between 1 and 4 at b=2: 1 + (1/3)*(2-1)
	if got := p.Latency(2); math.Abs(got-4.0/3) > 1e-12 {
		t.Errorf("Latency(2) = %v, want %v", got, 4.0/3)
	}
	// Extrapolation beyond 8 uses the final marginal (4-2)/(8-4)=0.5/unit.
	if got := p.Latency(10); math.Abs(got-5.0) > 1e-12 {
		t.Errorf("Latency(10) = %v, want 5", got)
	}
}

func TestProfileLatencyPanicsOnNonPositive(t *testing.T) {
	p, _ := NewProfile([]int{1}, []float64{1})
	defer func() {
		if recover() == nil {
			t.Error("expected panic for b=0")
		}
	}()
	p.Latency(0)
}

func TestProfileThroughputMonotoneForLinear(t *testing.T) {
	p, err := LinearProfile(1.0, 0.5, StandardBatchSizes)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for _, b := range StandardBatchSizes {
		tput := p.Throughput(b)
		if tput < prev {
			t.Fatalf("throughput decreased at batch %d: %v < %v", b, tput, prev)
		}
		prev = tput
	}
}

func TestLinearProfileBaseAndOverhead(t *testing.T) {
	p, err := LinearProfile(2.0, 0.25, []int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Latency(1); math.Abs(got-2.0) > 1e-12 {
		t.Errorf("batch-1 latency = %v, want base 2.0", got)
	}
	// e(4) = 2 * (0.25 + 0.75*4) = 6.5
	if got := p.Latency(4); math.Abs(got-6.5) > 1e-12 {
		t.Errorf("Latency(4) = %v, want 6.5", got)
	}
	if _, err := LinearProfile(0, 0.5, []int{1}); err == nil {
		t.Error("expected error for base 0")
	}
	if _, err := LinearProfile(1, 1.0, []int{1}); err == nil {
		t.Error("expected error for overhead 1")
	}
}

func TestBestBatchWithin(t *testing.T) {
	p, _ := NewProfile([]int{1, 2, 4, 8}, []float64{1, 1.5, 2.5, 4.5})
	b, ok := p.BestBatchWithin(3.0)
	if !ok || b != 4 {
		t.Errorf("BestBatchWithin(3) = %d, %v; want 4, true", b, ok)
	}
	if _, ok := p.BestBatchWithin(0.5); ok {
		t.Error("BestBatchWithin below batch-1 latency should fail")
	}
	b, ok = p.BestBatchWithin(100)
	if !ok || b != 8 {
		t.Errorf("BestBatchWithin(100) = %d, want 8", b)
	}
}

func TestProfileInterpolationMonotoneProperty(t *testing.T) {
	p, err := LinearProfile(1.0, 0.3, StandardBatchSizes)
	if err != nil {
		t.Fatal(err)
	}
	f := func(aRaw, bRaw uint8) bool {
		a := 1 + int(aRaw)%64
		b := 1 + int(bRaw)%64
		if a > b {
			a, b = b, a
		}
		return p.Latency(a) <= p.Latency(b)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestRegistryRegisterAndGet(t *testing.T) {
	r := NewRegistry()
	v := BuiltinRegistry().MustGet("sdv15")
	if err := r.Register(v); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(v); err == nil {
		t.Error("duplicate registration should fail")
	}
	got, err := r.Get("sdv15")
	if err != nil || got != v {
		t.Errorf("Get = %v, %v", got, err)
	}
	if _, err := r.Get("nope"); err == nil {
		t.Error("expected error for unknown variant")
	}
	if err := r.Register(&Variant{Name: ""}); err == nil {
		t.Error("empty name should fail")
	}
	if err := r.Register(&Variant{Name: "x"}); err == nil {
		t.Error("nil latency profile should fail")
	}
}

func TestBuiltinRegistryPaperNumbers(t *testing.T) {
	r := BuiltinRegistry()
	// Batch-1 latencies from the paper.
	cases := []struct {
		name string
		want float64
	}{
		{"sdv15", 1.78},
		{"sdturbo", 0.10},
		{"sdxs", 0.05},
		{"sdxl-lightning", 0.50},
		{"sdxl", 6.0},
	}
	for _, c := range cases {
		v := r.MustGet(c.name)
		if math.Abs(v.BaseLatency()-c.want) > 1e-9 {
			t.Errorf("%s base latency = %v, want %v", c.name, v.BaseLatency(), c.want)
		}
	}
	// SDXL is ~4.6x slower than SDXL-Lightning at batch 16 (paper §1).
	xl := r.MustGet("sdxl").Latency.Latency(16)
	xll := r.MustGet("sdxl-lightning").Latency.Latency(16)
	ratio := xl / xll
	if ratio < 4.0 || ratio > 5.2 {
		t.Errorf("SDXL/SDXL-Lightning batch-16 ratio = %.2f, want ~4.6", ratio)
	}
}

func TestBuiltinCascades(t *testing.T) {
	specs := BuiltinCascades()
	if len(specs) != 3 {
		t.Fatalf("want 3 cascades, got %d", len(specs))
	}
	r := BuiltinRegistry()
	for _, s := range specs {
		light := r.MustGet(s.Light)
		heavy := r.MustGet(s.Heavy)
		if light.BaseLatency() >= heavy.BaseLatency() {
			t.Errorf("%s: light %q not faster than heavy %q", s.Name, s.Light, s.Heavy)
		}
		if s.SLOSeconds <= 0 {
			t.Errorf("%s: SLO must be positive", s.Name)
		}
	}
	if _, err := CascadeByName("cascade2"); err != nil {
		t.Error(err)
	}
	if _, err := CascadeByName("bogus"); err == nil {
		t.Error("expected error for unknown cascade")
	}
}

func TestRegistryNamesSorted(t *testing.T) {
	names := BuiltinRegistry().Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not sorted: %v", names)
		}
	}
	if len(names) != 8 {
		t.Errorf("builtin registry has %d variants, want 8", len(names))
	}
}

func TestMustGetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustGet on missing variant should panic")
		}
	}()
	NewRegistry().MustGet("missing")
}
